#include "flint/rpc/executor_worker.h"

#include <chrono>
#include <utility>

#include "flint/obs/telemetry.h"
#include "flint/util/check.h"
#include "flint/util/logging.h"

namespace flint::rpc {

namespace {

using Clock = std::chrono::steady_clock;

double now_s() {
  return std::chrono::duration<double>(Clock::now().time_since_epoch()).count();
}

constexpr double kRegisterAckTimeoutS = 30.0;

}  // namespace

ExecutorWorker::ExecutorWorker(Transport& transport, TrainService& service,
                               std::string name, bool ship_telemetry)
    : transport_(transport),
      service_(service),
      name_(std::move(name)),
      ship_telemetry_(ship_telemetry) {}

void ExecutorWorker::send_heartbeat() {
  HeartbeatMsg beat;
  beat.executor_id = executor_id_;
  beat.seq = ++heartbeat_seq_;
  beat.busy_leases = 0;  // the worker is synchronous: idle whenever it beats
  if (ship_telemetry_) {
    if (obs::Telemetry* t = obs::current(); t != nullptr && t->config().metrics_enabled) {
      obs::TelemetrySnapshot snapshot = snapshot_encoder_.encode(t->metrics());
      if (!snapshot.empty()) beat.telemetry = snapshot.serialize();
    }
  }
  transport_.send(Frame{MessageType::kHeartbeat, beat.serialize()});
}

void ExecutorWorker::adopt_executor_identity(const RegisterAckMsg& ack) {
  if (!ship_telemetry_) return;  // shared-process telemetry is the leader's
  std::string role = "executor-" + std::to_string(ack.executor_id);
  util::Logger::instance().set_role(role);
  obs::Telemetry* t = obs::current();
  if (t == nullptr) return;
  // Span-id base keeps leader- and executor-minted ids disjoint fleet-wide.
  t->tracer().set_span_id_base(ack.executor_id << 32);
  t->tracer().set_process_info(role, static_cast<int>(ack.executor_id));
  // Clock alignment (DESIGN.md §15): the ack's leader timestamp, sampled at
  // receipt, estimates this tracer's offset from the leader's wall clock
  // (within one-way transit time — plenty for trace readability).
  if (ack.leader_wall_us != 0.0)
    t->tracer().set_clock_offset_us(ack.leader_wall_us - t->tracer().wall_now_us());
}

void ExecutorWorker::run() {
  RegisterExecutorMsg reg;
  reg.name = name_;
  reg.slots = 1;
  bool sent = transport_.send(Frame{MessageType::kRegisterExecutor, reg.serialize()});
  FLINT_CHECK_MSG(sent, "leader hung up before registration");

  Frame frame;
  RecvStatus status = transport_.recv(frame, kRegisterAckTimeoutS);
  FLINT_CHECK_MSG(status == RecvStatus::kFrame, "no RegisterAck from leader");
  FLINT_CHECK_MSG(frame.type == MessageType::kRegisterAck,
                  "expected RegisterAck, got " << message_type_name(frame.type));
  RegisterAckMsg ack = RegisterAckMsg::deserialize(frame.payload);
  executor_id_ = ack.executor_id;
  heartbeat_interval_s_ = ack.heartbeat_interval_s;
  FLINT_CHECK_GT(heartbeat_interval_s_, 0.0);
  adopt_executor_identity(ack);
  service_.configure(ack);

  double last_beat_s = 0.0;  // force an immediate first beat
  for (;;) {
    double now = now_s();
    if (now - last_beat_s >= heartbeat_interval_s_) {
      send_heartbeat();
      last_beat_s = now;
    }
    double wait = heartbeat_interval_s_ - (now_s() - last_beat_s);
    if (wait < 0.0) wait = 0.0;
    status = transport_.recv(frame, wait);
    if (status == RecvStatus::kTimeout) continue;  // loop top sends the beat
    if (status == RecvStatus::kClosed) return;     // leader gone: exit quietly
    switch (frame.type) {
      case MessageType::kTaskLease: {
        TaskLeaseMsg lease = TaskLeaseMsg::deserialize(frame.payload);
        TaskResultMsg result;
        {
          // Child span under the leader's dispatch span; the braces close it
          // before the result ships so its duration covers exactly the local
          // training work.
          obs::RpcSpanGuard span("rpc.lease_execute", "rpc",
                                 obs::SpanContext{lease.trace_id, lease.parent_span_id});
          result = service_.run_lease(lease);
          result.trace_id = span.context().trace_id;
          result.span_id = span.context().span_id;
        }
        result.lease_id = lease.lease_id;
        result.task_id = lease.task_id;
        result.executor_id = executor_id_;
        if (!transport_.send(Frame{MessageType::kTaskResult, result.serialize()})) return;
        ++leases_served_;
        obs::add_counter("rpc.leases_served");
        // Executing a long lease may have eaten the heartbeat budget; beat
        // if it did, but never per-lease — a burst of fast leases would turn
        // into a snapshot per result and dominate the wire. The result frame
        // itself is proof of life (the leader refreshes the deadline on any
        // frame), so rate-limiting only delays telemetry deltas.
        if (now_s() - last_beat_s >= heartbeat_interval_s_) {
          send_heartbeat();
          last_beat_s = now_s();
        }
        break;
      }
      case MessageType::kShutdown:
        return;
      default:
        FLINT_CHECK_MSG(false, "executor received unexpected "
                                   << message_type_name(frame.type));
    }
  }
}

}  // namespace flint::rpc
