#include "flint/rpc/executor_worker.h"

#include <chrono>
#include <utility>

#include "flint/obs/telemetry.h"
#include "flint/util/check.h"

namespace flint::rpc {

namespace {

using Clock = std::chrono::steady_clock;

double now_s() {
  return std::chrono::duration<double>(Clock::now().time_since_epoch()).count();
}

constexpr double kRegisterAckTimeoutS = 30.0;

}  // namespace

ExecutorWorker::ExecutorWorker(Transport& transport, TrainService& service, std::string name)
    : transport_(transport), service_(service), name_(std::move(name)) {}

void ExecutorWorker::send_heartbeat() {
  HeartbeatMsg beat;
  beat.executor_id = executor_id_;
  beat.seq = ++heartbeat_seq_;
  beat.busy_leases = 0;  // the worker is synchronous: idle whenever it beats
  transport_.send(Frame{MessageType::kHeartbeat, beat.serialize()});
}

void ExecutorWorker::run() {
  RegisterExecutorMsg reg;
  reg.name = name_;
  reg.slots = 1;
  bool sent = transport_.send(Frame{MessageType::kRegisterExecutor, reg.serialize()});
  FLINT_CHECK_MSG(sent, "leader hung up before registration");

  Frame frame;
  RecvStatus status = transport_.recv(frame, kRegisterAckTimeoutS);
  FLINT_CHECK_MSG(status == RecvStatus::kFrame, "no RegisterAck from leader");
  FLINT_CHECK_MSG(frame.type == MessageType::kRegisterAck,
                  "expected RegisterAck, got " << message_type_name(frame.type));
  RegisterAckMsg ack = RegisterAckMsg::deserialize(frame.payload);
  executor_id_ = ack.executor_id;
  heartbeat_interval_s_ = ack.heartbeat_interval_s;
  FLINT_CHECK_GT(heartbeat_interval_s_, 0.0);
  service_.configure(ack);

  double last_beat_s = 0.0;  // force an immediate first beat
  for (;;) {
    double now = now_s();
    if (now - last_beat_s >= heartbeat_interval_s_) {
      send_heartbeat();
      last_beat_s = now;
    }
    double wait = heartbeat_interval_s_ - (now_s() - last_beat_s);
    if (wait < 0.0) wait = 0.0;
    status = transport_.recv(frame, wait);
    if (status == RecvStatus::kTimeout) continue;  // loop top sends the beat
    if (status == RecvStatus::kClosed) return;     // leader gone: exit quietly
    switch (frame.type) {
      case MessageType::kTaskLease: {
        TaskLeaseMsg lease = TaskLeaseMsg::deserialize(frame.payload);
        TaskResultMsg result = service_.run_lease(lease);
        result.lease_id = lease.lease_id;
        result.task_id = lease.task_id;
        result.executor_id = executor_id_;
        if (!transport_.send(Frame{MessageType::kTaskResult, result.serialize()})) return;
        ++leases_served_;
        obs::add_counter("rpc.leases_served");
        // Executing a long lease may have eaten the heartbeat budget; beat
        // immediately rather than risking the deadline.
        send_heartbeat();
        last_beat_s = now_s();
        break;
      }
      case MessageType::kShutdown:
        return;
      default:
        FLINT_CHECK_MSG(false, "executor received unexpected "
                                   << message_type_name(frame.type));
    }
  }
}

}  // namespace flint::rpc
