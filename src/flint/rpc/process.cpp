#include "flint/rpc/process.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "flint/util/check.h"

namespace flint::rpc {

SpawnedProcess::SpawnedProcess(const std::vector<std::string>& argv) {
  FLINT_CHECK_GT(argv.size(), std::size_t{0});
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& arg : argv) cargv.push_back(const_cast<char*>(arg.c_str()));
  cargv.push_back(nullptr);
  pid_t pid = ::fork();
  FLINT_CHECK_MSG(pid >= 0, "fork() failed: " << std::strerror(errno));
  if (pid == 0) {
    ::execv(cargv[0], cargv.data());
    // Exec failed; nothing of the parent's state is safe to touch.
    ::_exit(127);
  }
  pid_ = pid;
}

SpawnedProcess::SpawnedProcess(SpawnedProcess&& other) noexcept
    : pid_(other.pid_), reaped_(other.reaped_) {
  other.pid_ = -1;
  other.reaped_ = true;
}

SpawnedProcess::~SpawnedProcess() {
  if (!running()) return;
  // A cooperative child (Shutdown already delivered) exits on its own but may
  // still be writing trace/metrics files; killing it instantly would truncate
  // them. Only a child that outlives the grace window is forced down.
  if (!wait_for_exit(/*timeout_s=*/10.0)) {
    kill();
    wait();
  }
}

void SpawnedProcess::kill() {
  if (!running()) return;
  ::kill(pid_, SIGKILL);
}

bool SpawnedProcess::wait_for_exit(double timeout_s) {
  if (!running()) return true;
  constexpr long kPollUs = 10 * 1000;
  long budget_us = static_cast<long>(timeout_s * 1e6);
  while (true) {
    int status = 0;
    pid_t rc = ::waitpid(pid_, &status, WNOHANG);
    if (rc == pid_ || (rc < 0 && errno != EINTR)) {
      reaped_ = true;
      return true;
    }
    if (budget_us <= 0) return false;
    ::usleep(kPollUs);
    budget_us -= kPollUs;
  }
}

int SpawnedProcess::wait() {
  if (!running()) return 0;
  int status = 0;
  pid_t rc;
  do {
    rc = ::waitpid(pid_, &status, 0);
  } while (rc < 0 && errno == EINTR);
  reaped_ = true;
  return rc == pid_ ? status : 0;
}

}  // namespace flint::rpc
