#include "flint/rpc/process.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "flint/util/check.h"

namespace flint::rpc {

SpawnedProcess::SpawnedProcess(const std::vector<std::string>& argv) {
  FLINT_CHECK_GT(argv.size(), std::size_t{0});
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& arg : argv) cargv.push_back(const_cast<char*>(arg.c_str()));
  cargv.push_back(nullptr);
  pid_t pid = ::fork();
  FLINT_CHECK_MSG(pid >= 0, "fork() failed: " << std::strerror(errno));
  if (pid == 0) {
    ::execv(cargv[0], cargv.data());
    // Exec failed; nothing of the parent's state is safe to touch.
    ::_exit(127);
  }
  pid_ = pid;
}

SpawnedProcess::SpawnedProcess(SpawnedProcess&& other) noexcept
    : pid_(other.pid_), reaped_(other.reaped_) {
  other.pid_ = -1;
  other.reaped_ = true;
}

SpawnedProcess::~SpawnedProcess() {
  if (!running()) return;
  kill();
  wait();
}

void SpawnedProcess::kill() {
  if (!running()) return;
  ::kill(pid_, SIGKILL);
}

int SpawnedProcess::wait() {
  if (!running()) return 0;
  int status = 0;
  pid_t rc;
  do {
    rc = ::waitpid(pid_, &status, 0);
  } while (rc < 0 && errno == EINTR);
  reaped_ = true;
  return rc == pid_ ? status : 0;
}

}  // namespace flint::rpc
