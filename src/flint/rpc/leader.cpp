#include "flint/rpc/leader.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "flint/obs/telemetry.h"
#include "flint/util/check.h"

namespace flint::rpc {

namespace {

using Clock = std::chrono::steady_clock;

double now_s() {
  return std::chrono::duration<double>(Clock::now().time_since_epoch()).count();
}

// Small blocking slice used while pumping: long enough to sleep instead of
// spin, short enough that deadline checks stay responsive.
constexpr double kPumpSliceS = 0.05;

// Per-executor fleet gauge (rpc.executor.<id>.<field>), read back by
// obs::StatusReporter. The name string materializes only when metrics are on.
void set_executor_gauge(std::uint64_t executor_id, const char* field, double value) {
  obs::Telemetry* t = obs::current();
  if (t == nullptr || !t->config().metrics_enabled) return;
  std::string name = "rpc.executor." + std::to_string(executor_id) + "." + field;
  t->metrics().gauge(name).set(value);
}

}  // namespace

struct Leader::ExecutorState {
  std::unique_ptr<Transport> transport;
  std::string name;
  double last_heartbeat_s = 0.0;
  bool alive = true;
  std::vector<std::uint64_t> outstanding;  ///< lease ids dispatched, unresolved
};

struct Leader::LeaseState {
  TaskLeaseMsg request;
  std::uint64_t executor = 0;
  double dispatched_s = 0.0;
  bool completed = false;
  TaskResultMsg result;
};

Leader::Leader(LeaderConfig config) : config_(std::move(config)) {
  FLINT_CHECK_GT(config_.heartbeat_interval_s, 0.0);
  FLINT_CHECK_GT(config_.heartbeat_timeout_s, config_.heartbeat_interval_s);
  FLINT_CHECK_GT(config_.lease_timeout_s, 0.0);
}

Leader::~Leader() {
  if (!shut_down_) shutdown("leader destroyed");
}

void Leader::add_transport(std::unique_ptr<Transport> transport) {
  FLINT_CHECK(transport != nullptr);
  Frame frame;
  RecvStatus status = transport->recv(frame, config_.register_timeout_s);
  FLINT_CHECK_MSG(status == RecvStatus::kFrame,
                  "executor connected but never sent RegisterExecutor");
  FLINT_CHECK_MSG(frame.type == MessageType::kRegisterExecutor,
                  "expected RegisterExecutor, got " << message_type_name(frame.type));
  RegisterExecutorMsg reg = RegisterExecutorMsg::deserialize(frame.payload);

  std::uint64_t id = next_executor_id_++;
  RegisterAckMsg ack;
  ack.executor_id = id;
  ack.heartbeat_interval_s = config_.heartbeat_interval_s;
  ack.heartbeat_timeout_s = config_.heartbeat_timeout_s;
  ack.dense_dim = config_.dense_dim;
  // Clock-alignment anchor (DESIGN.md §15): the executor subtracts its own
  // wall clock at receipt to estimate its offset from the leader's tracer.
  if (obs::Telemetry* t = obs::current(); t != nullptr && t->tracer().enabled())
    ack.leader_wall_us = t->tracer().wall_now_us();
  ack.model_blob = config_.model_blob;
  bool sent = transport->send(Frame{MessageType::kRegisterAck, ack.serialize()});
  FLINT_CHECK_MSG(sent, "executor " << reg.name << " died during registration");

  ExecutorState state;
  state.transport = std::move(transport);
  state.name = reg.name;
  state.last_heartbeat_s = now_s();
  executors_.emplace(id, std::move(state));
  obs::set_gauge("rpc.executors_alive", static_cast<double>(alive_executors()));
  set_executor_gauge(id, "alive", 1.0);
  set_executor_gauge(id, "outstanding", 0.0);
}

void Leader::add_listener(Listener listener) {
  FLINT_CHECK_MSG(listener_ == nullptr, "leader already has a listener");
  listener_ = std::make_unique<Listener>(std::move(listener));
}

void Leader::wait_for_executors(std::size_t n) {
  double deadline = now_s() + config_.register_timeout_s;
  while (alive_executors() < n) {
    FLINT_CHECK_MSG(listener_ != nullptr,
                    "waiting for " << n << " executors with only "
                                   << alive_executors() << " registered and no listener");
    double remaining = deadline - now_s();
    FLINT_CHECK_MSG(remaining > 0.0, "timed out waiting for " << n << " executors ("
                                                              << alive_executors()
                                                              << " registered)");
    std::unique_ptr<Transport> conn = listener_->accept(std::min(remaining, 1.0));
    if (conn != nullptr) add_transport(std::move(conn));
  }
}

std::uint64_t Leader::pick_executor() {
  FLINT_CHECK_MSG(alive_executors() > 0, "no live executors left to dispatch to");
  // Round-robin in ascending id order, resuming after the previous pick —
  // a deterministic function of dispatch history, never of arrival timing.
  auto it = executors_.upper_bound(rr_last_);
  for (std::size_t scanned = 0; scanned <= executors_.size(); ++scanned) {
    if (it == executors_.end()) it = executors_.begin();
    if (it->second.alive) {
      rr_last_ = it->first;
      return it->first;
    }
    ++it;
  }
  FLINT_CHECK_MSG(false, "no live executors left to dispatch to");
  return 0;  // unreachable
}

void Leader::update_fleet_gauges(std::uint64_t executor_id) {
  if (obs::Telemetry* t = obs::current(); t == nullptr || !t->config().metrics_enabled)
    return;
  auto it = executors_.find(executor_id);
  if (it != executors_.end())
    set_executor_gauge(executor_id, "outstanding",
                       static_cast<double>(it->second.outstanding.size()));
  std::size_t in_flight = 0;
  for (const auto& [id, lease] : leases_)
    if (!lease.completed) ++in_flight;
  obs::set_gauge("rpc.leases_in_flight", static_cast<double>(in_flight));
}

void Leader::dispatch(std::uint64_t lease_id) {
  LeaseState& lease = leases_.at(lease_id);
  // Each dispatch attempt is its own span, rooted at the lease id so the
  // executor's child span lands in the same trace (DESIGN.md §15).
  obs::RpcSpanGuard span("rpc.dispatch", "rpc", obs::SpanContext{},
                         /*trace_id=*/lease_id);
  lease.request.trace_id = span.context().trace_id;
  lease.request.parent_span_id = span.context().span_id;
  for (;;) {
    std::uint64_t executor_id = pick_executor();
    ExecutorState& executor = executors_.at(executor_id);
    if (executor.transport->send(
            Frame{MessageType::kTaskLease, lease.request.serialize()})) {
      lease.executor = executor_id;
      lease.dispatched_s = now_s();
      executor.outstanding.push_back(lease_id);
      update_fleet_gauges(executor_id);
      return;
    }
    // The send itself found the peer dead; lose it (which re-dispatches its
    // other leases) and try the next executor for this one.
    lose_executor(executor_id, "send failed");
  }
}

std::uint64_t Leader::submit(TaskLeaseMsg lease) {
  std::uint64_t lease_id = next_lease_id_++;
  lease.lease_id = lease_id;
  LeaseState state;
  state.request = std::move(lease);
  leases_.emplace(lease_id, std::move(state));
  dispatch(lease_id);
  return lease_id;
}

void Leader::handle_frame(std::uint64_t executor_id, const Frame& frame) {
  ExecutorState& executor = executors_.at(executor_id);
  switch (frame.type) {
    case MessageType::kHeartbeat: {
      HeartbeatMsg beat = HeartbeatMsg::deserialize(frame.payload);
      FLINT_CHECK_EQ(beat.executor_id, executor_id);
      executor.last_heartbeat_s = now_s();
      if (!beat.telemetry.empty()) {
        if (obs::Telemetry* t = obs::current();
            t != nullptr && t->config().metrics_enabled) {
          obs::TelemetrySnapshot snapshot =
              obs::TelemetrySnapshot::deserialize(beat.telemetry);
          telemetry_merger_.apply(executor_id, snapshot, t->metrics());
        }
      }
      return;
    }
    case MessageType::kTaskResult: {
      // Any frame is proof of life.
      executor.last_heartbeat_s = now_s();
      TaskResultMsg result = TaskResultMsg::deserialize(frame.payload);
      auto it = leases_.find(result.lease_id);
      if (it == leases_.end() || it->second.completed) {
        // A re-dispatched lease can resolve twice (the original executor was
        // slow, not dead). First result wins; duplicates are dropped — both
        // are byte-identical anyway, the lease being a pure function.
        obs::add_counter("rpc.duplicate_results");
        return;
      }
      double latency = now_s() - it->second.dispatched_s;
      obs::record_histogram("rpc.lease_latency_s", latency, 0.0, 60.0, 60);
      it->second.completed = true;
      it->second.result = std::move(result);
      std::erase(executors_.at(it->second.executor).outstanding, it->first);
      update_fleet_gauges(it->second.executor);
      return;
    }
    default:
      FLINT_CHECK_MSG(false, "leader received unexpected "
                                 << message_type_name(frame.type) << " from executor "
                                 << executor_id);
  }
}

void Leader::lose_executor(std::uint64_t executor_id, const char* why) {
  ExecutorState& executor = executors_.at(executor_id);
  if (!executor.alive) return;
  executor.alive = false;
  executor.transport->close();
  obs::add_counter("rpc.executors_lost");
  obs::set_gauge("rpc.executors_alive", static_cast<double>(alive_executors()));
  set_executor_gauge(executor_id, "alive", 0.0);
  set_executor_gauge(executor_id, "outstanding", 0.0);

  // Stamp-ordered re-dispatch: ascending lease id, so the recovery path is a
  // deterministic function of which executor died — not of arrival timing.
  std::vector<std::uint64_t> orphans = std::move(executor.outstanding);
  executor.outstanding.clear();
  std::sort(orphans.begin(), orphans.end());
  for (std::uint64_t lease_id : orphans) {
    LeaseState& lease = leases_.at(lease_id);
    if (lease.completed) continue;
    obs::add_counter("rpc.redispatches");
    dispatch(lease_id);
  }
  (void)why;
}

void Leader::check_deadlines() {
  double now = now_s();
  // Collect first: lose_executor mutates outstanding lists and re-dispatches.
  std::vector<std::uint64_t> dead;
  for (auto& [id, executor] : executors_) {
    if (!executor.alive) continue;
    if (now - executor.last_heartbeat_s > config_.heartbeat_timeout_s) {
      obs::add_counter("rpc.heartbeat_misses");
      dead.push_back(id);
    }
  }
  for (std::uint64_t id : dead) lose_executor(id, "heartbeat deadline missed");

  std::vector<std::uint64_t> expired;
  for (auto& [lease_id, lease] : leases_) {
    if (lease.completed) continue;
    if (lease.dispatched_s > 0.0 && now - lease.dispatched_s > config_.lease_timeout_s)
      expired.push_back(lease_id);
  }
  for (std::uint64_t lease_id : expired) {
    LeaseState& lease = leases_.at(lease_id);
    if (lease.completed) continue;
    std::erase(executors_.at(lease.executor).outstanding, lease_id);
    obs::add_counter("rpc.redispatches");
    dispatch(lease_id);
  }
}

void Leader::pump(std::uint64_t focus, double block_s) {
  // Non-blocking drain of every live transport, so heartbeats and results
  // from non-focused executors never back up.
  for (auto& [id, executor] : executors_) {
    if (!executor.alive) continue;
    for (;;) {
      Frame frame;
      RecvStatus status = executor.transport->recv(frame, 0.0);
      if (status == RecvStatus::kFrame) {
        handle_frame(id, frame);
        continue;
      }
      if (status == RecvStatus::kClosed) lose_executor(id, "connection closed");
      break;
    }
  }
  // Then block briefly on the executor we are actually waiting for.
  auto it = executors_.find(focus);
  if (it != executors_.end() && it->second.alive) {
    Frame frame;
    RecvStatus status = it->second.transport->recv(frame, block_s);
    if (status == RecvStatus::kFrame)
      handle_frame(focus, frame);
    else if (status == RecvStatus::kClosed)
      lose_executor(focus, "connection closed");
  }
  check_deadlines();
  // The pump is the leader's wall-clock-driven loop; a long lease wait must
  // still produce live status lines.
  obs::tick_status();
}

TaskResultMsg Leader::wait(std::uint64_t lease_id) {
  auto it = leases_.find(lease_id);
  FLINT_CHECK_MSG(it != leases_.end(), "wait() on unknown lease " << lease_id);
  while (!it->second.completed) {
    pump(it->second.executor, kPumpSliceS);
  }
  TaskResultMsg result = std::move(it->second.result);
  leases_.erase(it);
  FLINT_CHECK_MSG(result.ok, "executor " << result.executor_id << " failed task "
                                         << result.task_id << ": " << result.error);
  return result;
}

std::uint16_t Leader::listen_port() const {
  return listener_ != nullptr ? listener_->port() : 0;
}

std::size_t Leader::alive_executors() const {
  std::size_t n = 0;
  for (const auto& [id, executor] : executors_)
    if (executor.alive) ++n;
  return n;
}

void Leader::shutdown(const std::string& reason) {
  shut_down_ = true;
  ShutdownMsg msg;
  msg.reason = reason;
  Frame frame{MessageType::kShutdown, msg.serialize()};
  for (auto& [id, executor] : executors_) {
    if (!executor.alive) continue;
    executor.transport->send(frame);
    executor.transport->close();
    executor.alive = false;
  }
  obs::set_gauge("rpc.executors_alive", 0.0);
}

}  // namespace flint::rpc
