#include "flint/rpc/messages.h"

#include <cmath>
#include <utility>

#include "flint/util/bytes.h"
#include "flint/util/check.h"

namespace flint::rpc {

namespace {

// Sanity ceilings applied before any sized allocation during deserialize, so
// a corrupt count that slipped past the frame CRC still cannot drive an OOM.
constexpr std::uint64_t kMaxStringBytes = 1u << 16;
constexpr std::uint64_t kMaxVectorElems = 1u << 26;   // 64M floats = 256 MB
constexpr std::uint64_t kMaxExamples = 1u << 22;      // 4M examples per lease

void append_string(std::vector<char>& out, const std::string& s) {
  FLINT_CHECK_LE(s.size(), static_cast<std::size_t>(kMaxStringBytes));
  util::append_pod(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

std::string read_string(const std::vector<char>& in, std::size_t& offset) {
  auto size = util::read_pod<std::uint32_t>(in, offset);
  FLINT_CHECK_LE(static_cast<std::uint64_t>(size), kMaxStringBytes);
  FLINT_CHECK_LE(offset, in.size());
  FLINT_CHECK_LE(static_cast<std::size_t>(size), in.size() - offset);
  std::string s(in.data() + offset, size);
  offset += size;
  return s;
}

template <typename T>
void append_vector(std::vector<char>& out, const std::vector<T>& v) {
  util::append_pod(out, static_cast<std::uint64_t>(v.size()));
  util::append_pod_array(out, v.data(), v.size());
}

template <typename T>
std::vector<T> read_vector(const std::vector<char>& in, std::size_t& offset,
                           std::uint64_t max_elems = kMaxVectorElems) {
  auto count = util::read_pod<std::uint64_t>(in, offset);
  FLINT_CHECK_LE(count, max_elems);
  std::vector<T> v(static_cast<std::size_t>(count));
  util::read_pod_array(in, offset, v.data(), v.size());
  return v;
}

void append_bytes(std::vector<char>& out, const std::vector<char>& blob) {
  util::append_pod(out, static_cast<std::uint64_t>(blob.size()));
  out.insert(out.end(), blob.begin(), blob.end());
}

std::vector<char> read_bytes(const std::vector<char>& in, std::size_t& offset) {
  auto size = util::read_pod<std::uint64_t>(in, offset);
  FLINT_CHECK_LE(offset, in.size());
  FLINT_CHECK_LE(size, static_cast<std::uint64_t>(in.size() - offset));
  std::vector<char> blob(in.begin() + static_cast<std::ptrdiff_t>(offset),
                         in.begin() + static_cast<std::ptrdiff_t>(offset + size));
  offset += static_cast<std::size_t>(size);
  return blob;
}

void append_example(std::vector<char>& out, const ml::Example& e) {
  append_vector(out, e.dense);
  append_vector(out, e.tokens);
  util::append_pod(out, e.label);
  util::append_pod(out, e.label2);
  util::append_pod(out, e.group);
}

ml::Example read_example(const std::vector<char>& in, std::size_t& offset) {
  ml::Example e;
  e.dense = read_vector<float>(in, offset);
  e.tokens = read_vector<std::int32_t>(in, offset);
  e.label = util::read_pod<float>(in, offset);
  e.label2 = util::read_pod<float>(in, offset);
  e.group = util::read_pod<std::int32_t>(in, offset);
  return e;
}

void check_schema(const char* what, std::uint16_t got, std::uint16_t expect) {
  FLINT_CHECK_MSG(got == expect, what << " schema version " << got
                                      << " does not match this build's " << expect);
}

void check_consumed(const char* what, std::size_t offset, std::size_t size) {
  FLINT_CHECK_MSG(offset == size, what << " payload has " << size - offset
                                       << " trailing byte(s)");
}

}  // namespace

std::vector<char> RegisterExecutorMsg::serialize() const {
  std::vector<char> out;
  util::append_pod(out, kSchemaVersion);
  append_string(out, name);
  util::append_pod(out, slots);
  return out;
}

RegisterExecutorMsg RegisterExecutorMsg::deserialize(const std::vector<char>& bytes) {
  std::size_t offset = 0;
  check_schema("RegisterExecutor", util::read_pod<std::uint16_t>(bytes, offset),
               kSchemaVersion);
  RegisterExecutorMsg msg;
  msg.name = read_string(bytes, offset);
  msg.slots = util::read_pod<std::uint32_t>(bytes, offset);
  check_consumed("RegisterExecutor", offset, bytes.size());
  return msg;
}

std::vector<char> RegisterAckMsg::serialize() const {
  std::vector<char> out;
  util::append_pod(out, kSchemaVersion);
  util::append_pod(out, executor_id);
  util::append_pod(out, heartbeat_interval_s);
  util::append_pod(out, heartbeat_timeout_s);
  util::append_pod(out, dense_dim);
  util::append_pod(out, leader_wall_us);
  append_bytes(out, model_blob);
  return out;
}

RegisterAckMsg RegisterAckMsg::deserialize(const std::vector<char>& bytes) {
  std::size_t offset = 0;
  check_schema("RegisterAck", util::read_pod<std::uint16_t>(bytes, offset), kSchemaVersion);
  RegisterAckMsg msg;
  msg.executor_id = util::read_pod<std::uint64_t>(bytes, offset);
  msg.heartbeat_interval_s = util::read_pod<double>(bytes, offset);
  msg.heartbeat_timeout_s = util::read_pod<double>(bytes, offset);
  msg.dense_dim = util::read_pod<std::uint64_t>(bytes, offset);
  msg.leader_wall_us = util::read_pod<double>(bytes, offset);
  msg.model_blob = read_bytes(bytes, offset);
  check_consumed("RegisterAck", offset, bytes.size());
  return msg;
}

std::vector<char> HeartbeatMsg::serialize() const {
  std::vector<char> out;
  util::append_pod(out, kSchemaVersion);
  util::append_pod(out, executor_id);
  util::append_pod(out, seq);
  util::append_pod(out, busy_leases);
  append_bytes(out, telemetry);
  return out;
}

HeartbeatMsg HeartbeatMsg::deserialize(const std::vector<char>& bytes) {
  std::size_t offset = 0;
  check_schema("Heartbeat", util::read_pod<std::uint16_t>(bytes, offset), kSchemaVersion);
  HeartbeatMsg msg;
  msg.executor_id = util::read_pod<std::uint64_t>(bytes, offset);
  msg.seq = util::read_pod<std::uint64_t>(bytes, offset);
  msg.busy_leases = util::read_pod<std::uint32_t>(bytes, offset);
  msg.telemetry = read_bytes(bytes, offset);
  check_consumed("Heartbeat", offset, bytes.size());
  return msg;
}

std::vector<char> TaskLeaseMsg::serialize() const {
  std::vector<char> out;
  util::append_pod(out, kSchemaVersion);
  util::append_pod(out, lease_id);
  util::append_pod(out, task_id);
  util::append_pod(out, client_id);
  util::append_pod(out, round);
  util::append_pod(out, seed);
  util::append_pod(out, dp_participants);
  util::append_pod(out, lr);
  util::append_pod(out, epochs);
  util::append_pod(out, batch_size);
  util::append_pod(out, loss_kind);
  util::append_pod(out, clip_norm);
  util::append_pod(out, momentum);
  util::append_pod(out, prox_mu);
  util::append_pod(out, static_cast<std::uint8_t>(has_dp ? 1 : 0));
  util::append_pod(out, dp_clip_norm);
  util::append_pod(out, dp_noise_multiplier);
  util::append_pod(out, dp_delta);
  util::append_pod(out, compression_kind);
  util::append_pod(out, top_k_fraction);
  util::append_pod(out, trace_id);
  util::append_pod(out, parent_span_id);
  append_vector(out, params);
  FLINT_CHECK_LE(examples.size(), static_cast<std::size_t>(kMaxExamples));
  util::append_pod(out, static_cast<std::uint64_t>(examples.size()));
  for (const ml::Example& e : examples) append_example(out, e);
  return out;
}

TaskLeaseMsg TaskLeaseMsg::deserialize(const std::vector<char>& bytes) {
  std::size_t offset = 0;
  check_schema("TaskLease", util::read_pod<std::uint16_t>(bytes, offset), kSchemaVersion);
  TaskLeaseMsg msg;
  msg.lease_id = util::read_pod<std::uint64_t>(bytes, offset);
  msg.task_id = util::read_pod<std::uint64_t>(bytes, offset);
  msg.client_id = util::read_pod<std::uint64_t>(bytes, offset);
  msg.round = util::read_pod<std::uint64_t>(bytes, offset);
  msg.seed = util::read_pod<std::uint64_t>(bytes, offset);
  msg.dp_participants = util::read_pod<std::uint64_t>(bytes, offset);
  msg.lr = util::read_pod<double>(bytes, offset);
  msg.epochs = util::read_pod<std::int32_t>(bytes, offset);
  msg.batch_size = util::read_pod<std::uint64_t>(bytes, offset);
  msg.loss_kind = util::read_pod<std::uint32_t>(bytes, offset);
  msg.clip_norm = util::read_pod<double>(bytes, offset);
  msg.momentum = util::read_pod<double>(bytes, offset);
  msg.prox_mu = util::read_pod<double>(bytes, offset);
  msg.has_dp = util::read_pod<std::uint8_t>(bytes, offset) != 0;
  msg.dp_clip_norm = util::read_pod<double>(bytes, offset);
  msg.dp_noise_multiplier = util::read_pod<double>(bytes, offset);
  msg.dp_delta = util::read_pod<double>(bytes, offset);
  msg.compression_kind = util::read_pod<std::uint32_t>(bytes, offset);
  msg.top_k_fraction = util::read_pod<double>(bytes, offset);
  msg.trace_id = util::read_pod<std::uint64_t>(bytes, offset);
  msg.parent_span_id = util::read_pod<std::uint64_t>(bytes, offset);
  msg.params = read_vector<float>(bytes, offset);
  auto example_count = util::read_pod<std::uint64_t>(bytes, offset);
  FLINT_CHECK_LE(example_count, kMaxExamples);
  msg.examples.reserve(static_cast<std::size_t>(example_count));
  for (std::uint64_t i = 0; i < example_count; ++i)
    msg.examples.push_back(read_example(bytes, offset));
  check_consumed("TaskLease", offset, bytes.size());
  return msg;
}

void TaskResultMsg::encode_delta(std::vector<float> dense,
                                 const compress::CompressionConfig& config) {
  compression_kind = static_cast<std::uint32_t>(config.kind);
  switch (config.kind) {
    case compress::CompressionKind::kNone:
      delta = std::move(dense);
      return;
    case compress::CompressionKind::kInt8:
      quantized = compress::quantize_int8(dense);
      return;
    case compress::CompressionKind::kTopK: {
      FLINT_CHECK(config.top_k_fraction > 0.0 && config.top_k_fraction <= 1.0);
      auto k = static_cast<std::size_t>(
          std::ceil(config.top_k_fraction * static_cast<double>(dense.size())));
      sparse = compress::top_k_sparsify(dense, k);
      return;
    }
  }
  FLINT_CHECK_MSG(false, "unknown compression kind " << compression_kind);
}

std::vector<float> TaskResultMsg::take_delta() {
  switch (static_cast<compress::CompressionKind>(compression_kind)) {
    case compress::CompressionKind::kNone:
      return std::move(delta);
    case compress::CompressionKind::kInt8: {
      std::vector<float> dense = compress::dequantize(quantized);
      quantized = {};
      return dense;
    }
    case compress::CompressionKind::kTopK: {
      std::vector<float> dense = compress::densify(sparse);
      sparse = {};
      return dense;
    }
  }
  FLINT_CHECK_MSG(false, "unknown compression kind " << compression_kind);
  return {};
}

std::size_t TaskResultMsg::payload_bytes() const {
  switch (static_cast<compress::CompressionKind>(compression_kind)) {
    case compress::CompressionKind::kNone:
      return delta.size() * sizeof(float);
    case compress::CompressionKind::kInt8:
      return quantized.payload_bytes();
    case compress::CompressionKind::kTopK:
      return sparse.payload_bytes();
  }
  return delta.size() * sizeof(float);
}

std::vector<char> TaskResultMsg::serialize() const {
  std::vector<char> out;
  util::append_pod(out, kSchemaVersion);
  util::append_pod(out, lease_id);
  util::append_pod(out, task_id);
  util::append_pod(out, executor_id);
  util::append_pod(out, static_cast<std::uint8_t>(ok ? 1 : 0));
  append_string(out, error);
  util::append_pod(out, trace_id);
  util::append_pod(out, span_id);
  util::append_pod(out, compression_kind);
  switch (static_cast<compress::CompressionKind>(compression_kind)) {
    case compress::CompressionKind::kNone:
      append_vector(out, delta);
      break;
    case compress::CompressionKind::kInt8:
      util::append_pod(out, quantized.scale);
      append_vector(out, quantized.values);
      break;
    case compress::CompressionKind::kTopK:
      util::append_pod(out, sparse.dim);
      append_vector(out, sparse.indices);
      append_vector(out, sparse.values);
      break;
  }
  util::append_pod(out, weight);
  util::append_pod(out, mean_loss);
  util::append_pod(out, examples);
  return out;
}

TaskResultMsg TaskResultMsg::deserialize(const std::vector<char>& bytes) {
  std::size_t offset = 0;
  check_schema("TaskResult", util::read_pod<std::uint16_t>(bytes, offset), kSchemaVersion);
  TaskResultMsg msg;
  msg.lease_id = util::read_pod<std::uint64_t>(bytes, offset);
  msg.task_id = util::read_pod<std::uint64_t>(bytes, offset);
  msg.executor_id = util::read_pod<std::uint64_t>(bytes, offset);
  msg.ok = util::read_pod<std::uint8_t>(bytes, offset) != 0;
  msg.error = read_string(bytes, offset);
  msg.trace_id = util::read_pod<std::uint64_t>(bytes, offset);
  msg.span_id = util::read_pod<std::uint64_t>(bytes, offset);
  msg.compression_kind = util::read_pod<std::uint32_t>(bytes, offset);
  switch (msg.compression_kind) {
    case static_cast<std::uint32_t>(compress::CompressionKind::kNone):
      msg.delta = read_vector<float>(bytes, offset);
      break;
    case static_cast<std::uint32_t>(compress::CompressionKind::kInt8):
      msg.quantized.scale = util::read_pod<float>(bytes, offset);
      msg.quantized.values = read_vector<std::int8_t>(bytes, offset);
      break;
    case static_cast<std::uint32_t>(compress::CompressionKind::kTopK):
      msg.sparse.dim = util::read_pod<std::uint32_t>(bytes, offset);
      msg.sparse.indices = read_vector<std::uint32_t>(bytes, offset);
      msg.sparse.values = read_vector<float>(bytes, offset);
      FLINT_CHECK_MSG(msg.sparse.indices.size() == msg.sparse.values.size(),
                      "TaskResult sparse payload: " << msg.sparse.indices.size()
                                                    << " indices vs "
                                                    << msg.sparse.values.size() << " values");
      break;
    default:
      FLINT_CHECK_MSG(false,
                      "TaskResult has unknown compression kind " << msg.compression_kind);
  }
  msg.weight = util::read_pod<double>(bytes, offset);
  msg.mean_loss = util::read_pod<double>(bytes, offset);
  msg.examples = util::read_pod<std::uint64_t>(bytes, offset);
  check_consumed("TaskResult", offset, bytes.size());
  return msg;
}

std::vector<char> ShutdownMsg::serialize() const {
  std::vector<char> out;
  util::append_pod(out, kSchemaVersion);
  append_string(out, reason);
  return out;
}

ShutdownMsg ShutdownMsg::deserialize(const std::vector<char>& bytes) {
  std::size_t offset = 0;
  check_schema("Shutdown", util::read_pod<std::uint16_t>(bytes, offset), kSchemaVersion);
  ShutdownMsg msg;
  msg.reason = read_string(bytes, offset);
  check_consumed("Shutdown", offset, bytes.size());
  return msg;
}

}  // namespace flint::rpc
