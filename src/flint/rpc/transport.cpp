#include "flint/rpc/transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "flint/obs/telemetry.h"
#include "flint/util/check.h"

namespace flint::rpc {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_until(Clock::time_point deadline) {
  return std::chrono::duration<double>(deadline - Clock::now()).count();
}

void set_cloexec(int fd) {
  int flags = ::fcntl(fd, F_GETFD);
  if (flags >= 0) ::fcntl(fd, F_SETFD, flags | FD_CLOEXEC);
}

}  // namespace

// ---------------------------------------------------------------------------
// LoopbackTransport

struct LoopbackTransport::Shared {
  util::Mutex mu;
  util::CondVar cv;
  /// queue[i] holds wire bytes awaiting endpoint i's recv().
  std::array<std::vector<char>, 2> queue FLINT_GUARDED_BY(mu);
  std::array<bool, 2> closed FLINT_GUARDED_BY(mu) = {false, false};
};

std::pair<std::unique_ptr<LoopbackTransport>, std::unique_ptr<LoopbackTransport>>
LoopbackTransport::make_pair() {
  auto shared = std::make_shared<Shared>();
  return {std::unique_ptr<LoopbackTransport>(new LoopbackTransport(shared, 0)),
          std::unique_ptr<LoopbackTransport>(new LoopbackTransport(shared, 1))};
}

LoopbackTransport::LoopbackTransport(std::shared_ptr<Shared> shared, int side)
    : shared_(std::move(shared)), side_(side) {}

LoopbackTransport::~LoopbackTransport() { close(); }

bool LoopbackTransport::send(const Frame& frame) {
  std::vector<char> bytes = encode_frame(frame);
  {
    util::MutexLock lock(shared_->mu);
    if (shared_->closed[1 - side_] || shared_->closed[side_]) return false;
    std::vector<char>& peer_queue = shared_->queue[1 - side_];
    peer_queue.insert(peer_queue.end(), bytes.begin(), bytes.end());
    shared_->cv.notify_all();
  }
  obs::add_counter("rpc.bytes_sent", bytes.size());
  return true;
}

RecvStatus LoopbackTransport::recv(Frame& out, double timeout_s) {
  // Frames already buffered in the decoder win over new bytes and even over
  // a concurrent close — drain before reporting kClosed.
  if (std::optional<Frame> frame = decoder_.next()) {
    out = std::move(*frame);
    return RecvStatus::kFrame;
  }
  Clock::time_point deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(timeout_s));
  for (;;) {
    std::vector<char> bytes;
    bool closed = false;
    {
      util::MutexLock lock(shared_->mu);
      for (;;) {
        if (!shared_->queue[side_].empty()) {
          bytes.swap(shared_->queue[side_]);
          break;
        }
        if (shared_->closed[side_] || shared_->closed[1 - side_]) {
          closed = true;
          break;
        }
        double remaining = seconds_until(deadline);
        if (remaining <= 0.0) return RecvStatus::kTimeout;
        shared_->cv.wait_for(shared_->mu, remaining);
      }
    }
    if (!bytes.empty()) {
      obs::add_counter("rpc.bytes_received", bytes.size());
      decoder_.feed(bytes.data(), bytes.size());
      if (std::optional<Frame> frame = decoder_.next()) {
        out = std::move(*frame);
        return RecvStatus::kFrame;
      }
      continue;  // partial frame: wait for the rest
    }
    if (closed) return RecvStatus::kClosed;
  }
}

void LoopbackTransport::close() {
  util::MutexLock lock(shared_->mu);
  shared_->closed[side_] = true;
  shared_->cv.notify_all();
}

// ---------------------------------------------------------------------------
// SocketTransport

SocketTransport::SocketTransport(int fd, const char* kind) : fd_(fd), kind_(kind) {
  FLINT_CHECK_GE(fd, 0);
  set_cloexec(fd);
}

SocketTransport::~SocketTransport() { close(); }

bool SocketTransport::send(const Frame& frame) {
  if (fd_ < 0) return false;
  std::vector<char> bytes = encode_frame(frame);
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    // MSG_NOSIGNAL: a dead peer must surface as EPIPE, not a process-killing
    // SIGPIPE — the leader survives executor death by design.
    ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET) return false;
      FLINT_CHECK_MSG(false, "send() on " << kind_ << " transport failed: "
                                          << std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
  obs::add_counter("rpc.bytes_sent", bytes.size());
  return true;
}

RecvStatus SocketTransport::recv(Frame& out, double timeout_s) {
  if (std::optional<Frame> frame = decoder_.next()) {
    out = std::move(*frame);
    return RecvStatus::kFrame;
  }
  if (fd_ < 0) return RecvStatus::kClosed;
  Clock::time_point deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(timeout_s));
  char buf[65536];
  for (;;) {
    double remaining = seconds_until(deadline);
    if (remaining < 0.0) remaining = 0.0;
    struct pollfd pfd;
    pfd.fd = fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    int timeout_ms = static_cast<int>(remaining * 1000.0);
    int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      FLINT_CHECK_MSG(false, "poll() on " << kind_ << " transport failed: "
                                          << std::strerror(errno));
    }
    if (ready == 0) return RecvStatus::kTimeout;
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == ECONNRESET) return RecvStatus::kClosed;
      FLINT_CHECK_MSG(false, "recv() on " << kind_ << " transport failed: "
                                          << std::strerror(errno));
    }
    if (n == 0) return RecvStatus::kClosed;  // EOF; any partial frame is moot
    obs::add_counter("rpc.bytes_received", static_cast<std::uint64_t>(n));
    decoder_.feed(buf, static_cast<std::size_t>(n));
    if (std::optional<Frame> frame = decoder_.next()) {
      out = std::move(*frame);
      return RecvStatus::kFrame;
    }
  }
}

void SocketTransport::close() {
  if (fd_ < 0) return;
  ::shutdown(fd_, SHUT_RDWR);
  ::close(fd_);
  fd_ = -1;
}

// ---------------------------------------------------------------------------
// Connectors

std::unique_ptr<Transport> connect_unix(const std::string& path) {
  struct sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  FLINT_CHECK_MSG(path.size() < sizeof(addr.sun_path),
                  "unix socket path too long (" << path.size() << " bytes): " << path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  FLINT_CHECK_MSG(fd >= 0, "socket(AF_UNIX) failed: " << std::strerror(errno));
  int rc;
  do {
    // flint-lint: allow(byte-punning): the sockaddr* cast the POSIX API requires
    rc = ::connect(fd, reinterpret_cast<const struct sockaddr*>(&addr), sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    int saved = errno;
    ::close(fd);
    FLINT_CHECK_MSG(false, "connect(" << path << ") failed: " << std::strerror(saved));
  }
  return std::make_unique<SocketTransport>(fd, "unix");
}

std::unique_ptr<Transport> connect_tcp(const std::string& host, std::uint16_t port) {
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  FLINT_CHECK_MSG(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
                  "not an IPv4 address: " << host);
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  FLINT_CHECK_MSG(fd >= 0, "socket(AF_INET) failed: " << std::strerror(errno));
  int rc;
  do {
    // flint-lint: allow(byte-punning): the sockaddr* cast the POSIX API requires
    rc = ::connect(fd, reinterpret_cast<const struct sockaddr*>(&addr), sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    int saved = errno;
    ::close(fd);
    FLINT_CHECK_MSG(false, "connect(" << host << ":" << port
                                      << ") failed: " << std::strerror(saved));
  }
  return std::make_unique<SocketTransport>(fd, "tcp");
}

// ---------------------------------------------------------------------------
// Listener

Listener::Listener(int fd, const char* kind, std::string path, std::uint16_t port)
    : fd_(fd), kind_(kind), path_(std::move(path)), port_(port) {
  set_cloexec(fd);
}

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_), kind_(other.kind_), path_(std::move(other.path_)), port_(other.port_) {
  other.fd_ = -1;
  other.path_.clear();
}

Listener::~Listener() {
  if (fd_ >= 0) ::close(fd_);
  if (!path_.empty()) ::unlink(path_.c_str());
}

Listener Listener::listen_unix(const std::string& path) {
  struct sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  FLINT_CHECK_MSG(path.size() < sizeof(addr.sun_path),
                  "unix socket path too long (" << path.size() << " bytes): " << path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());  // a stale socket from a dead leader must not block bind
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  FLINT_CHECK_MSG(fd >= 0, "socket(AF_UNIX) failed: " << std::strerror(errno));
  // flint-lint: allow(byte-punning): the sockaddr* cast the POSIX API requires
  if (::bind(fd, reinterpret_cast<const struct sockaddr*>(&addr), sizeof(addr)) < 0) {
    int saved = errno;
    ::close(fd);
    FLINT_CHECK_MSG(false, "bind(" << path << ") failed: " << std::strerror(saved));
  }
  if (::listen(fd, 16) < 0) {
    int saved = errno;
    ::close(fd);
    FLINT_CHECK_MSG(false, "listen(" << path << ") failed: " << std::strerror(saved));
  }
  return Listener(fd, "unix", path, 0);
}

Listener Listener::listen_tcp(std::uint16_t port) {
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  FLINT_CHECK_MSG(fd >= 0, "socket(AF_INET) failed: " << std::strerror(errno));
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  // flint-lint: allow(byte-punning): the sockaddr* cast the POSIX API requires
  if (::bind(fd, reinterpret_cast<const struct sockaddr*>(&addr), sizeof(addr)) < 0) {
    int saved = errno;
    ::close(fd);
    FLINT_CHECK_MSG(false, "bind(127.0.0.1:" << port << ") failed: " << std::strerror(saved));
  }
  if (::listen(fd, 16) < 0) {
    int saved = errno;
    ::close(fd);
    FLINT_CHECK_MSG(false, "listen(127.0.0.1:" << port
                                               << ") failed: " << std::strerror(saved));
  }
  struct sockaddr_in bound;
  socklen_t len = sizeof(bound);
  std::uint16_t actual = port;
  // flint-lint: allow(byte-punning): the sockaddr* cast the POSIX API requires
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&bound), &len) == 0)
    actual = ntohs(bound.sin_port);
  return Listener(fd, "tcp", "", actual);
}

std::unique_ptr<Transport> Listener::accept(double timeout_s) {
  FLINT_CHECK_GE(fd_, 0);
  Clock::time_point deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(timeout_s));
  for (;;) {
    double remaining = seconds_until(deadline);
    if (remaining < 0.0) remaining = 0.0;
    struct pollfd pfd;
    pfd.fd = fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    int ready = ::poll(&pfd, 1, static_cast<int>(remaining * 1000.0));
    if (ready < 0) {
      if (errno == EINTR) continue;
      FLINT_CHECK_MSG(false, "poll() on " << kind_ << " listener failed: "
                                          << std::strerror(errno));
    }
    if (ready == 0) return nullptr;
    int client = ::accept(fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      FLINT_CHECK_MSG(false, "accept() on " << kind_ << " listener failed: "
                                            << std::strerror(errno));
    }
    return std::make_unique<SocketTransport>(client, kind_);
  }
}

}  // namespace flint::rpc
