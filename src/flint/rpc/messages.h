// The five leader/executor message schemas (DESIGN.md §14), each serialized
// with util/bytes pod helpers into a frame payload. Every schema leads with
// its own u16 version — independent of the frame protocol version — so a
// single message can evolve without bumping the whole wire.
//
// A TaskLease carries the *complete* input set of
// fl::compute_client_update: global params, the client's examples, the local
// train config, the run seed, and the DP/compression settings. That makes
// remote execution a pure function of the lease — any executor, any process,
// any arrival order produces the same bytes — which is what keeps multi-
// process runs bit-identical to the loopback path.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "flint/compress/quantize.h"
#include "flint/ml/batch.h"

namespace flint::rpc {

/// executor -> leader: first message on a fresh connection.
struct RegisterExecutorMsg {
  static constexpr std::uint16_t kSchemaVersion = 1;

  std::string name;         ///< diagnostic label, e.g. "pid:4242"
  std::uint32_t slots = 1;  ///< concurrent leases the executor will accept

  std::vector<char> serialize() const;
  static RegisterExecutorMsg deserialize(const std::vector<char>& bytes);
};

/// leader -> executor: admission + the run-static context. The model blob
/// (ml::serialize_model) and dense_dim configure the executor's LocalTrainer
/// replica once; everything per-run-per-trial (seed, hyper-parameters)
/// travels in each TaskLease so one registration serves many trials.
struct RegisterAckMsg {
  static constexpr std::uint16_t kSchemaVersion = 2;

  std::uint64_t executor_id = 0;
  double heartbeat_interval_s = 0.5;  ///< cadence the executor must beat at
  double heartbeat_timeout_s = 10.0;  ///< leader declares death after this
  std::uint64_t dense_dim = 0;
  /// Leader tracer wall clock (microseconds since leader tracer epoch) at the
  /// moment the ack was built; 0 when the leader runs without telemetry. The
  /// executor's clock-alignment offset is `leader_wall_us - local_wall_us`
  /// sampled at receipt (DESIGN.md §15).
  double leader_wall_us = 0.0;
  std::vector<char> model_blob;  ///< empty for model-free runs

  std::vector<char> serialize() const;
  static RegisterAckMsg deserialize(const std::vector<char>& bytes);
};

/// executor -> leader: liveness beacon, optionally carrying one delta window
/// of the executor's metric registry.
struct HeartbeatMsg {
  static constexpr std::uint16_t kSchemaVersion = 2;

  std::uint64_t executor_id = 0;
  std::uint64_t seq = 0;          ///< monotonic per executor
  std::uint32_t busy_leases = 0;  ///< leases held but not yet resulted
  /// Serialized obs::TelemetrySnapshot (independently versioned); empty when
  /// the executor ships no telemetry. Opaque at this layer on purpose: metric
  /// shipping evolves without touching the liveness protocol.
  std::vector<char> telemetry;

  std::vector<char> serialize() const;
  static HeartbeatMsg deserialize(const std::vector<char>& bytes);
};

/// leader -> executor: one client-training task, self-contained.
struct TaskLeaseMsg {
  static constexpr std::uint16_t kSchemaVersion = 2;

  std::uint64_t lease_id = 0;  ///< leader-assigned, unique per dispatch attempt
  std::uint64_t task_id = 0;   ///< simulation task id (RNG stream key)
  std::uint64_t client_id = 0;
  std::uint64_t round = 0;
  std::uint64_t seed = 0;              ///< run seed (kRngStreamDp derivation)
  std::uint64_t dp_participants = 0;   ///< cohort size for DP noise splitting

  // fl::LocalTrainConfig, field for field.
  double lr = 0.05;
  std::int32_t epochs = 1;
  std::uint64_t batch_size = 16;
  std::uint32_t loss_kind = 0;  ///< data::LossKind as its underlying value
  double clip_norm = 0.0;
  double momentum = 0.0;
  double prox_mu = 0.0;

  // privacy::DpConfig, present iff has_dp.
  bool has_dp = false;
  double dp_clip_norm = 1.0;
  double dp_noise_multiplier = 1.0;
  double dp_delta = 1e-6;

  // compress::CompressionConfig.
  std::uint32_t compression_kind = 0;  ///< compress::CompressionKind value
  double top_k_fraction = 0.1;

  // Trace-context propagation (DESIGN.md §15): the leader's dispatch span.
  // Zero when the leader runs without tracing; diagnostic only — never an
  // input to compute_client_update, so stamping cannot perturb results.
  std::uint64_t trace_id = 0;         ///< groups this lease's spans fleet-wide
  std::uint64_t parent_span_id = 0;   ///< the dispatch span to parent under

  std::vector<float> params;          ///< global model parameters
  std::vector<ml::Example> examples;  ///< the client's local shard

  std::vector<char> serialize() const;
  static TaskLeaseMsg deserialize(const std::vector<char>& bytes);
};

/// executor -> leader: the computed update for one lease.
///
/// Schema v3 makes compression real on the wire: the delta travels in the
/// representation `compression_kind` names — raw f32 (kNone), int8 quantized
/// (kInt8: scale + one byte per coordinate), or top-k sparse (kTopK: dim +
/// index/value pairs) — instead of always being a dense float vector. The
/// executor encodes with encode_delta(); the leader reconstructs with
/// take_delta(), whose output is bit-identical to the in-process
/// compress::apply_compression round trip, so remote aggregation stays on
/// the PR 4 bit-identity contract (within a pinned kernel path).
struct TaskResultMsg {
  static constexpr std::uint16_t kSchemaVersion = 3;

  std::uint64_t lease_id = 0;
  std::uint64_t task_id = 0;
  std::uint64_t executor_id = 0;
  bool ok = false;
  std::string error;  ///< CheckError text when !ok

  // Trace-context propagation: echoes the lease's trace id plus the
  // executor's lease-execution span id. Zero when tracing is off either side.
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;

  /// compress::CompressionKind of the delta payload. Exactly one of `delta`,
  /// `quantized`, `sparse` is populated, matching this tag.
  std::uint32_t compression_kind = 0;
  std::vector<float> delta;             ///< kNone: post-DP parameter delta
  compress::QuantizedUpdate quantized;  ///< kInt8 payload
  compress::SparseUpdate sparse;        ///< kTopK payload

  double weight = 0.0;  ///< aggregation weight (1.0 under DP)
  double mean_loss = 0.0;
  std::uint64_t examples = 0;

  /// Move `dense` into the representation `config` selects and set
  /// compression_kind. kTopK keeps ceil(top_k_fraction * dim) coordinates —
  /// the same k compress::apply_compression uses, so decode matches the
  /// in-process lossy round trip exactly.
  void encode_delta(std::vector<float> dense, const compress::CompressionConfig& config);

  /// Reconstruct the dense delta from whichever representation is populated,
  /// consuming it. For kInt8/kTopK this equals apply_compression's output on
  /// the executor's dense delta, bit for bit.
  std::vector<float> take_delta();

  /// Bytes the encoded delta contributes to the serialized payload
  /// (excluding the per-representation length/dim headers).
  std::size_t payload_bytes() const;

  std::vector<char> serialize() const;
  static TaskResultMsg deserialize(const std::vector<char>& bytes);
};

/// leader -> executor: drain outstanding work and exit cleanly.
struct ShutdownMsg {
  static constexpr std::uint16_t kSchemaVersion = 1;

  std::string reason;

  std::vector<char> serialize() const;
  static ShutdownMsg deserialize(const std::vector<char>& bytes);
};

}  // namespace flint::rpc
