// rpc::ExecutorWorker — the executor side of the leader/executor runtime.
//
// The worker is transport- and model-agnostic: it speaks the wire protocol
// (register, heartbeat, serve leases, obey shutdown) and delegates the actual
// training to a TrainService. The concrete service (fl::LeaseTrainService)
// lives in the fl layer, which keeps rpc below fl in the dependency order —
// rpc knows about frames and leases, never about simulators.
#pragma once

#include <memory>
#include <string>

#include "flint/obs/telemetry_snapshot.h"
#include "flint/rpc/messages.h"
#include "flint/rpc/transport.h"

namespace flint::rpc {

/// What an executor process actually computes. configure() is called once
/// with the RegisterAck (model blob, dense_dim); run_lease() once per lease.
class TrainService {
 public:
  virtual ~TrainService() = default;

  virtual void configure(const RegisterAckMsg& ack) = 0;

  /// Compute the update for one lease. Fills the payload fields of the
  /// result (delta, weight, mean_loss, examples, ok/error); the worker
  /// stamps lease_id/task_id/executor_id. Must not throw — report failures
  /// via ok=false.
  virtual TaskResultMsg run_lease(const TaskLeaseMsg& lease) = 0;
};

/// Serve loop bound to one transport. run() performs the registration
/// handshake, then alternates between heartbeats and lease execution until
/// the leader sends Shutdown or the connection drops.
class ExecutorWorker {
 public:
  /// `ship_telemetry` marks a worker that owns its process's ambient
  /// telemetry (executor_main): it delta-ships its MetricRegistry on each
  /// heartbeat and claims the tracer for this executor's identity (span-id
  /// base, process label, leader clock offset, log role). Loopback workers
  /// must leave it false — they share the leader's registry, and shipping it
  /// back would re-count leader metrics under an executor label.
  ExecutorWorker(Transport& transport, TrainService& service, std::string name,
                 bool ship_telemetry = false);

  /// Blocks until shutdown/disconnect. Safe to call from a thread-pool
  /// worker (loopback mode) or a process main() (unix/tcp mode).
  void run();

  std::uint64_t executor_id() const { return executor_id_; }
  std::uint64_t leases_served() const { return leases_served_; }

 private:
  void send_heartbeat();
  void adopt_executor_identity(const RegisterAckMsg& ack);

  Transport& transport_;
  TrainService& service_;
  std::string name_;
  bool ship_telemetry_ = false;
  std::uint64_t executor_id_ = 0;
  std::uint64_t heartbeat_seq_ = 0;
  std::uint64_t leases_served_ = 0;
  double heartbeat_interval_s_ = 0.5;
  obs::TelemetrySnapshotEncoder snapshot_encoder_;
};

}  // namespace flint::rpc
