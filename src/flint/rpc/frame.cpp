#include "flint/rpc/frame.h"

#include "flint/util/bytes.h"
#include "flint/util/check.h"
#include "flint/util/crc32.h"

namespace flint::rpc {

namespace {

bool known_type(std::uint16_t raw) {
  return raw >= static_cast<std::uint16_t>(MessageType::kRegisterExecutor) &&
         raw <= static_cast<std::uint16_t>(MessageType::kShutdown);
}

}  // namespace

const char* message_type_name(MessageType type) {
  switch (type) {
    case MessageType::kRegisterExecutor: return "RegisterExecutor";
    case MessageType::kRegisterAck: return "RegisterAck";
    case MessageType::kHeartbeat: return "Heartbeat";
    case MessageType::kTaskLease: return "TaskLease";
    case MessageType::kTaskResult: return "TaskResult";
    case MessageType::kShutdown: return "Shutdown";
  }
  return "Unknown";
}

std::vector<char> encode_frame(const Frame& frame) {
  FLINT_CHECK_LE(frame.payload.size(), static_cast<std::size_t>(kMaxFramePayload));
  std::vector<char> out;
  out.reserve(kFrameHeaderBytes + frame.payload.size() + kFrameTrailerBytes);
  util::append_pod(out, kFrameMagic);
  util::append_pod(out, kProtocolVersion);
  util::append_pod(out, static_cast<std::uint16_t>(frame.type));
  util::append_pod(out, static_cast<std::uint32_t>(frame.payload.size()));
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
  // CRC over everything after the magic: protocol, type, length, payload.
  std::uint32_t crc = util::crc32(out.data() + sizeof(std::uint32_t),
                                  out.size() - sizeof(std::uint32_t));
  util::append_pod(out, crc);
  return out;
}

Frame decode_frame(const std::vector<char>& bytes) {
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  std::optional<Frame> frame = decoder.next();
  FLINT_CHECK_MSG(frame.has_value(), "truncated frame: " << bytes.size() << " byte(s), need "
                                                         << kFrameHeaderBytes +
                                                                kFrameTrailerBytes
                                                         << "+payload");
  FLINT_CHECK_MSG(decoder.buffered() == 0,
                  "trailing garbage after frame: " << decoder.buffered() << " byte(s)");
  return *frame;
}

void FrameDecoder::feed(const char* data, std::size_t size) {
  buffer_.insert(buffer_.end(), data, data + size);
}

std::optional<Frame> FrameDecoder::next() {
  std::size_t available = buffer_.size() - consumed_;
  if (available < kFrameHeaderBytes) return std::nullopt;

  // Header first: validate magic / protocol / type / length before waiting
  // for (or trusting) any payload byte.
  std::size_t offset = consumed_;
  auto magic = util::read_pod<std::uint32_t>(buffer_, offset);
  FLINT_CHECK_MSG(magic == kFrameMagic, "bad frame magic 0x" << std::hex << magic << std::dec
                                                             << " (not an FLRP stream)");
  auto protocol = util::read_pod<std::uint16_t>(buffer_, offset);
  FLINT_CHECK_MSG(protocol == kProtocolVersion,
                  "unsupported rpc protocol version " << protocol << " (this build speaks "
                                                      << kProtocolVersion << ")");
  auto raw_type = util::read_pod<std::uint16_t>(buffer_, offset);
  FLINT_CHECK_MSG(known_type(raw_type), "unknown rpc message type " << raw_type);
  auto payload_len = util::read_pod<std::uint32_t>(buffer_, offset);
  FLINT_CHECK_MSG(payload_len <= kMaxFramePayload,
                  "frame payload length " << payload_len << " exceeds the "
                                          << kMaxFramePayload << "-byte ceiling");

  std::size_t total = kFrameHeaderBytes + static_cast<std::size_t>(payload_len) +
                      kFrameTrailerBytes;
  if (available < total) return std::nullopt;

  std::size_t crc_offset = consumed_ + kFrameHeaderBytes + payload_len;
  std::uint32_t stored_crc = util::read_pod<std::uint32_t>(buffer_, crc_offset);
  std::uint32_t computed = util::crc32(buffer_.data() + consumed_ + sizeof(std::uint32_t),
                                       kFrameHeaderBytes - sizeof(std::uint32_t) + payload_len);
  FLINT_CHECK_MSG(stored_crc == computed, "frame CRC mismatch (stored 0x"
                                              << std::hex << stored_crc << ", computed 0x"
                                              << computed << std::dec
                                              << "): corrupt or torn frame");

  Frame frame;
  frame.type = static_cast<MessageType>(raw_type);
  frame.payload.assign(buffer_.begin() + static_cast<std::ptrdiff_t>(offset),
                       buffer_.begin() + static_cast<std::ptrdiff_t>(offset + payload_len));
  consumed_ += total;
  compact();
  return frame;
}

void FrameDecoder::compact() {
  // Reclaim consumed prefix once it dominates the buffer, so a long-lived
  // connection does not grow its receive buffer without bound.
  if (consumed_ < 4096 || consumed_ * 2 < buffer_.size()) return;
  buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
  consumed_ = 0;
}

}  // namespace flint::rpc
