// Frame transports for the leader/executor wire (DESIGN.md §14).
//
// Three implementations of one interface:
//   - LoopbackTransport: an in-process byte pipe. Frames are still fully
//     encoded and decoded (CRC and all), so loopback runs exercise the exact
//     wire path multi-process runs do — only the file descriptor is missing.
//   - Unix-socket / TCP: both are SocketTransport over a connected stream fd;
//     connect_unix/connect_tcp and Listener::listen_unix/listen_tcp choose
//     the address family.
//
// Error model: send() returns false when the peer is gone (closed, EPIPE,
// ECONNRESET) — the leader treats that executor as dead and re-dispatches.
// recv() returns kTimeout/kClosed for the benign cases and throws CheckError
// for malformed bytes (bad magic, CRC mismatch, oversized length): a corrupt
// peer is a protocol violation, not a recoverable condition.
//
// This is the only directory where raw socket calls are allowed
// (tools/flint_lint.py `rpc` rule); everything above speaks Frame.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "flint/rpc/frame.h"
#include "flint/util/thread_annotations.h"

namespace flint::rpc {

enum class RecvStatus {
  kFrame,    ///< a complete frame was produced
  kTimeout,  ///< nothing arrived within the timeout
  kClosed,   ///< peer closed the connection (EOF)
};

class Transport {
 public:
  virtual ~Transport() = default;

  /// Queue one frame to the peer. Returns false if the peer is gone; the
  /// frame is dropped in that case. Thread-compatible: one sender at a time.
  virtual bool send(const Frame& frame) = 0;

  /// Receive the next frame, waiting up to `timeout_s` (0 polls). Throws
  /// CheckError on malformed wire bytes.
  virtual RecvStatus recv(Frame& out, double timeout_s) = 0;

  /// Close this endpoint; pending recv() on the peer sees kClosed.
  virtual void close() = 0;

  /// "loopback", "unix", or "tcp" — for diagnostics and obs labels.
  virtual const char* kind() const = 0;
};

/// In-process transport: a pair of endpoints over shared byte queues.
class LoopbackTransport final : public Transport {
 public:
  /// Two connected endpoints; send() on one is recv()'d on the other. Either
  /// side may be handed to another thread (the queues are mutex-guarded).
  static std::pair<std::unique_ptr<LoopbackTransport>, std::unique_ptr<LoopbackTransport>>
  make_pair();

  ~LoopbackTransport() override;
  bool send(const Frame& frame) override;
  RecvStatus recv(Frame& out, double timeout_s) override;
  void close() override;
  const char* kind() const override { return "loopback"; }

 private:
  struct Shared;
  LoopbackTransport(std::shared_ptr<Shared> shared, int side);

  std::shared_ptr<Shared> shared_;
  int side_;              ///< 0 or 1: which end of the pipe this endpoint is
  FrameDecoder decoder_;  ///< touched only by this endpoint's receiving thread
};

/// Stream-socket transport over a connected fd (AF_UNIX or AF_INET).
class SocketTransport final : public Transport {
 public:
  /// Takes ownership of a connected stream socket.
  SocketTransport(int fd, const char* kind);
  ~SocketTransport() override;

  bool send(const Frame& frame) override;
  RecvStatus recv(Frame& out, double timeout_s) override;
  void close() override;
  const char* kind() const override { return kind_; }

 private:
  int fd_;
  const char* kind_;
  FrameDecoder decoder_;
};

/// Connect to a leader's Unix-domain socket at `path`. Throws CheckError if
/// the connect fails.
std::unique_ptr<Transport> connect_unix(const std::string& path);

/// Connect to a leader's TCP endpoint. Throws CheckError on failure.
std::unique_ptr<Transport> connect_tcp(const std::string& host, std::uint16_t port);

/// Listening socket the leader accepts executor connections on.
class Listener {
 public:
  /// Bind + listen on a Unix-domain socket (unlinks a stale path first).
  static Listener listen_unix(const std::string& path);
  /// Bind + listen on 127.0.0.1:`port` (0 picks an ephemeral port).
  static Listener listen_tcp(std::uint16_t port);

  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&&) = delete;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;
  ~Listener();

  /// Accept one connection, waiting up to `timeout_s`; nullptr on timeout.
  std::unique_ptr<Transport> accept(double timeout_s);

  /// The bound TCP port (resolves 0 -> the ephemeral port); 0 for Unix.
  std::uint16_t port() const { return port_; }

  /// The Unix-socket path ("" for TCP).
  const std::string& path() const { return path_; }

 private:
  Listener(int fd, const char* kind, std::string path, std::uint16_t port);

  int fd_;
  const char* kind_;
  std::string path_;
  std::uint16_t port_;
};

}  // namespace flint::rpc
