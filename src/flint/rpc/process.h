// Child-process management for multi-process runs: the leader fork/execs one
// `flint_executor` per requested worker and reaps them at shutdown. Kept
// inside rpc/ so process plumbing (like raw sockets) never leaks into the
// simulation layers.
#pragma once

#include <string>
#include <vector>

#include <sys/types.h>

namespace flint::rpc {

/// One spawned executor child.
class SpawnedProcess {
 public:
  /// fork/exec `argv[0]` with the given argument list. Throws CheckError if
  /// the fork fails; exec failure surfaces as the child exiting 127.
  explicit SpawnedProcess(const std::vector<std::string>& argv);

  SpawnedProcess(SpawnedProcess&& other) noexcept;
  SpawnedProcess& operator=(SpawnedProcess&&) = delete;
  SpawnedProcess(const SpawnedProcess&) = delete;
  SpawnedProcess& operator=(const SpawnedProcess&) = delete;

  /// Reaps the child: grants a grace window for an orderly exit (the leader
  /// has sent Shutdown by then, and the executor may still be flushing its
  /// telemetry files), then SIGKILLs whatever is left.
  ~SpawnedProcess();

  pid_t pid() const { return pid_; }
  bool running() const { return pid_ > 0 && !reaped_; }

  /// SIGKILL the child (no-op if already reaped). The fault tests use this
  /// to simulate executor death mid-round.
  void kill();

  /// Blocking waitpid; returns the raw wait status (0 if already reaped).
  int wait();

  /// Non-blocking reap loop: polls for up to `timeout_s` seconds, returning
  /// true once the child exited (and was reaped). Returns false — child
  /// still alive, not reaped — on timeout.
  bool wait_for_exit(double timeout_s);

 private:
  pid_t pid_ = -1;
  bool reaped_ = false;
};

}  // namespace flint::rpc
