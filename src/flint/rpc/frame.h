// Length-prefixed, CRC-guarded binary framing for the leader/executor wire
// (DESIGN.md §14). Every message the rpc subsystem moves — over a Unix
// socket, TCP, or the in-process loopback — travels inside one frame:
//
//   u32 magic "FLRP" | u16 protocol | u16 type | u32 payload_len
//   | payload bytes | u32 crc32(protocol..payload)
//
// The CRC covers everything after the magic, so a torn, truncated, or
// bit-flipped frame is rejected before any payload field is trusted —
// corruption fails loudly (CheckError), never deserializes into garbage.
// The length prefix is validated against kMaxFramePayload *before* any
// allocation, so a corrupt length cannot drive an OOM or a huge resize.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace flint::rpc {

inline constexpr std::uint32_t kFrameMagic = 0x464C5250u;  // "FLRP" big-endian spelled
inline constexpr std::uint16_t kProtocolVersion = 1;

/// Hard ceiling on one frame's payload. Large enough for a model-blob
/// registration ack or a dense lease (params + client examples) with room to
/// spare; small enough that a corrupt length prefix fails fast.
inline constexpr std::uint32_t kMaxFramePayload = 64u * 1024u * 1024u;

/// magic + protocol + type + payload_len.
inline constexpr std::size_t kFrameHeaderBytes =
    sizeof(std::uint32_t) + sizeof(std::uint16_t) + sizeof(std::uint16_t) + sizeof(std::uint32_t);
/// Trailing crc32.
inline constexpr std::size_t kFrameTrailerBytes = sizeof(std::uint32_t);

/// Wire message kinds (DESIGN.md §14 lists each schema).
enum class MessageType : std::uint16_t {
  kRegisterExecutor = 1,  ///< executor -> leader: join the pool
  kRegisterAck = 2,       ///< leader -> executor: id + run context (model blob)
  kHeartbeat = 3,         ///< executor -> leader: liveness + load
  kTaskLease = 4,         ///< leader -> executor: one client-training task
  kTaskResult = 5,        ///< executor -> leader: the computed update
  kShutdown = 6,          ///< leader -> executor: drain and exit
};

const char* message_type_name(MessageType type);

/// One decoded message: its type plus the raw (schema-versioned) payload.
struct Frame {
  MessageType type = MessageType::kHeartbeat;
  std::vector<char> payload;
};

/// Encode a frame into wire bytes (header + payload + CRC).
std::vector<char> encode_frame(const Frame& frame);

/// Strict whole-buffer decode: `bytes` must hold exactly one valid frame.
/// Throws CheckError on bad magic, unsupported protocol version, oversized
/// or truncated length, trailing garbage, unknown type, or CRC mismatch.
Frame decode_frame(const std::vector<char>& bytes);

/// Incremental decoder for stream transports: feed() arbitrary byte chunks,
/// next() yields complete frames as they materialize. Validation is the same
/// as decode_frame (the magic and length prefix are checked as soon as the
/// header is complete, the CRC once the whole frame is buffered); malformed
/// input throws CheckError and the stream must be torn down — framing offers
/// no resynchronization by design, a corrupt peer is a dead peer.
class FrameDecoder {
 public:
  void feed(const char* data, std::size_t size);

  /// The next complete frame, or nullopt when more bytes are needed.
  std::optional<Frame> next();

  /// Bytes buffered but not yet consumed by next().
  std::size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  void compact();

  std::vector<char> buffer_;
  std::size_t consumed_ = 0;
};

}  // namespace flint::rpc
