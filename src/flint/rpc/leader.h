// rpc::Leader — the simulation side of the leader/executor runtime.
//
// The leader is *synchronous*: it owns every transport and is driven entirely
// from the simulation thread (submit() dispatches, wait() pumps). No
// background thread exists, so the simulation's deterministic-reduction
// contract is untouched — the leader is just a different way to evaluate the
// same pure function.
//
// Fault model (DESIGN.md §14): an executor is *lost* when its connection
// closes (SIGKILL'd child: the kernel sends EOF) or when it misses its
// heartbeat deadline (hung child). Losing an executor re-dispatches its
// outstanding leases to surviving executors in ascending lease-id order
// ("stamp order"). Because a lease is self-contained and
// compute_client_update is a pure function of it, the re-computed result is
// byte-identical to what the dead executor would have produced — which is
// why a mid-round SIGKILL leaves the run artifact bit-identical to loopback.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "flint/obs/telemetry_snapshot.h"
#include "flint/rpc/messages.h"
#include "flint/rpc/transport.h"

namespace flint::rpc {

struct LeaderConfig {
  double heartbeat_interval_s = 0.5;  ///< cadence executors beat at
  double heartbeat_timeout_s = 10.0;  ///< miss deadline: executor declared dead
  double lease_timeout_s = 120.0;     ///< result deadline: lease re-dispatched
  double register_timeout_s = 30.0;   ///< wait_for_executors gives up after this
  std::uint64_t dense_dim = 0;        ///< run context for RegisterAck
  std::vector<char> model_blob;       ///< ml::serialize_model output ("" = model-free)
};

class Leader {
 public:
  explicit Leader(LeaderConfig config);
  ~Leader();
  Leader(const Leader&) = delete;
  Leader& operator=(const Leader&) = delete;

  /// Adopt an already-connected transport (loopback pairs): performs the
  /// Register/Ack handshake and adds the executor to the pool.
  void add_transport(std::unique_ptr<Transport> transport);

  /// Accept executor connections on this listener (wait_for_executors pumps
  /// it). At most one listener.
  void add_listener(Listener listener);

  /// Block until `n` executors are registered (throws CheckError after
  /// register_timeout_s).
  void wait_for_executors(std::size_t n);

  /// Dispatch one lease to the next executor (round-robin over alive
  /// executors, ascending id). Fills lease.lease_id; returns it.
  std::uint64_t submit(TaskLeaseMsg lease);

  /// Block until `lease_id` has a result, pumping heartbeats, detecting
  /// lost executors, and re-dispatching as needed. Throws CheckError if the
  /// remote reported a failure or every executor died.
  TaskResultMsg wait(std::uint64_t lease_id);

  std::size_t alive_executors() const;

  /// Bound TCP port of the listener (0 when there is none / it is Unix).
  std::uint16_t listen_port() const;

  /// Send Shutdown to every live executor and close all transports.
  void shutdown(const std::string& reason);

  const LeaderConfig& config() const { return config_; }

 private:
  struct ExecutorState;
  struct LeaseState;

  /// Drain every live transport without blocking; then, if `focus` is a live
  /// executor, block on it for up to `block_s`.
  void pump(std::uint64_t focus, double block_s);
  void handle_frame(std::uint64_t executor_id, const Frame& frame);
  void check_deadlines();
  void lose_executor(std::uint64_t executor_id, const char* why);
  void dispatch(std::uint64_t lease_id);
  std::uint64_t pick_executor();
  void update_fleet_gauges(std::uint64_t executor_id);

  LeaderConfig config_;
  std::unique_ptr<Listener> listener_;
  // std::map (not unordered): dispatch and re-dispatch iterate these, and
  // iteration order must be deterministic.
  std::map<std::uint64_t, ExecutorState> executors_;
  std::map<std::uint64_t, LeaseState> leases_;
  std::uint64_t next_executor_id_ = 1;
  std::uint64_t next_lease_id_ = 1;
  std::uint64_t rr_last_ = 0;  ///< executor id that got the previous dispatch
  bool shut_down_ = false;
  /// Folds heartbeat-carried executor snapshots into the ambient registry
  /// under `name{executor=N}` labels (DESIGN.md §15).
  obs::TelemetrySnapshotMerger telemetry_merger_;
};

}  // namespace flint::rpc
