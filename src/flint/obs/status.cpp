#include "flint/obs/status.h"

#include <cctype>
#include <cstdint>
#include <sstream>
#include <vector>

#include "flint/obs/metrics.h"
#include "flint/obs/telemetry.h"
#include "flint/util/check.h"

namespace flint::obs {

namespace {

// Snapshot lookups: the sample vector is sorted by name and small (dozens of
// series), so a linear scan per field is fine at a 1 Hz cadence.
const MetricSample* find_sample(const std::vector<MetricSample>& samples,
                                const std::string& name) {
  for (const MetricSample& s : samples) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

double value_or(const std::vector<MetricSample>& samples, const std::string& name,
                double fallback) {
  const MetricSample* s = find_sample(samples, name);
  return s == nullptr ? fallback : s->value;
}

/// Parse "rpc.executor.<id>.<field>" series names into per-executor rows.
struct ExecutorRow {
  std::uint64_t id = 0;
  double alive = 0.0;
  double outstanding = 0.0;
};

std::vector<ExecutorRow> executor_rows(const std::vector<MetricSample>& samples) {
  constexpr const char* kPrefix = "rpc.executor.";
  std::vector<ExecutorRow> rows;
  for (const MetricSample& s : samples) {
    if (s.name.rfind(kPrefix, 0) != 0) continue;
    std::size_t pos = std::char_traits<char>::length(kPrefix);
    std::uint64_t id = 0;
    bool any_digit = false;
    while (pos < s.name.size() && std::isdigit(static_cast<unsigned char>(s.name[pos]))) {
      id = id * 10 + static_cast<std::uint64_t>(s.name[pos] - '0');
      ++pos;
      any_digit = true;
    }
    if (!any_digit || pos >= s.name.size() || s.name[pos] != '.') continue;
    std::string field = s.name.substr(pos + 1);
    ExecutorRow* row = nullptr;
    for (ExecutorRow& r : rows) {
      if (r.id == id) row = &r;
    }
    if (row == nullptr) {
      rows.push_back(ExecutorRow{id, 0.0, 0.0});
      row = &rows.back();
    }
    if (field == "alive") row->alive = s.value;
    if (field == "outstanding") row->outstanding = s.value;
  }
  return rows;  // samples are name-sorted, so rows come out id-sorted
}

}  // namespace

std::uint64_t resident_bytes() {
  // flint-analyze: allow(nondet-source): resident memory is diagnostic status
  // output only and never feeds simulated results or run artifacts.
  std::ifstream statm("/proc/self/statm");
  if (!statm.good()) return 0;
  std::uint64_t total_pages = 0;
  std::uint64_t resident_pages = 0;
  statm >> total_pages >> resident_pages;
  if (!statm.good()) return 0;
  return resident_pages * 4096;  // page size on every platform FLINT targets
}

StatusReporter::StatusReporter(StatusReporterConfig config) : config_(std::move(config)) {
  FLINT_CHECK_MSG(!config_.path.empty(), "StatusReporter needs an output path");
  FLINT_CHECK_FINITE(config_.every_wall_s);
  FLINT_CHECK_GE(config_.every_wall_s, 0.0);
  util::MutexLock lock(mu_);
  out_.open(config_.path);
  FLINT_CHECK_MSG(out_.good(), "cannot write " << config_.path);
}

bool StatusReporter::maybe_report(Telemetry& telemetry, bool force) {
  util::MutexLock lock(mu_);
  const double wall_s = telemetry.tracer().wall_now_us() / 1e6;
  if (!force && wall_s < next_due_wall_s_) return false;
  next_due_wall_s_ = wall_s + config_.every_wall_s;

  auto samples = telemetry.metrics().snapshot();
  // Update throughput: leases served across the fleet when the rpc runtime is
  // active — the bare counter for loopback workers (shared registry) plus the
  // merged `rpc.leases_served{executor=N}` series shipped by executor
  // processes — and local SGD calls otherwise (single-process runs).
  double updates_total = 0.0;
  bool any_leases = false;
  for (const MetricSample& s : samples) {
    if (s.name == "rpc.leases_served" ||
        s.name.rfind("rpc.leases_served{executor=", 0) == 0) {
      updates_total += s.value;
      any_leases = true;
    }
  }
  if (!any_leases) updates_total = value_or(samples, "fl.local_sgd_calls", 0.0);
  const double dt = wall_s - last_wall_s_;
  const double updates_per_s =
      (lines_ == 0 || dt <= 0.0) ? 0.0 : (updates_total - last_updates_total_) / dt;
  last_wall_s_ = wall_s;
  last_updates_total_ = updates_total;

  // Fleet aggregates fall out of the per-executor gauge rows; there is no
  // separate aggregate gauge to drift out of sync with them.
  const std::vector<ExecutorRow> rows = executor_rows(samples);
  std::size_t alive = 0;
  for (const ExecutorRow& row : rows) {
    if (row.alive != 0.0) ++alive;
  }

  std::ostringstream line;
  line.precision(12);
  line << "{\"t_wall_s\":" << wall_s << ",\"t_virtual_s\":" << telemetry.virtual_now()
       << ",\"round\":" << value_or(samples, "fl.round", 0.0)
       << ",\"tasks_in_flight\":" << value_or(samples, "fl.tasks_in_flight", 0.0)
       << ",\"queue_depth\":" << value_or(samples, "sim.queue_depth", 0.0)
       << ",\"executors_alive\":" << alive
       << ",\"executors_lost\":" << (rows.size() - alive)
       << ",\"leases_in_flight\":" << value_or(samples, "rpc.leases_in_flight", 0.0)
       << ",\"updates_total\":" << updates_total << ",\"updates_per_s\":" << updates_per_s
       << ",\"rss_bytes\":" << resident_bytes() << ",\"executors\":[";
  bool first = true;
  for (const ExecutorRow& row : rows) {
    if (!first) line << ",";
    first = false;
    line << "{\"id\":" << row.id << ",\"alive\":" << (row.alive != 0.0 ? "true" : "false")
         << ",\"outstanding\":" << row.outstanding << "}";
  }
  line << "]}";

  out_ << line.str() << "\n";
  out_.flush();  // followers read the file while the run is live
  ++lines_;
  return true;
}

std::uint64_t StatusReporter::lines_written() const {
  util::MutexLock lock(mu_);
  return lines_;
}

}  // namespace flint::obs
