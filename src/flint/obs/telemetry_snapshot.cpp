#include "flint/obs/telemetry_snapshot.h"

#include "flint/util/bytes.h"
#include "flint/util/check.h"

namespace flint::obs {

namespace {

// Sanity ceilings applied before any sized allocation during deserialize
// (the rpc/messages.cpp convention): a corrupt count that slipped past the
// frame CRC must not drive an OOM.
constexpr std::uint64_t kMaxSeries = 4096;
constexpr std::uint64_t kMaxNameBytes = 256;
constexpr std::uint64_t kMaxBuckets = 4096;

void append_name(std::vector<char>& out, const std::string& s) {
  FLINT_CHECK_LE(s.size(), static_cast<std::size_t>(kMaxNameBytes));
  util::append_pod(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

std::string read_name(const std::vector<char>& in, std::size_t& offset) {
  auto size = util::read_pod<std::uint32_t>(in, offset);
  FLINT_CHECK_LE(static_cast<std::uint64_t>(size), kMaxNameBytes);
  FLINT_CHECK_LE(offset, in.size());
  FLINT_CHECK_LE(static_cast<std::size_t>(size), in.size() - offset);
  std::string s(in.data() + offset, size);
  offset += size;
  return s;
}

std::uint32_t read_section_count(const char* what, const std::vector<char>& in,
                                 std::size_t& offset) {
  auto count = util::read_pod<std::uint32_t>(in, offset);
  FLINT_CHECK_MSG(count <= kMaxSeries,
                  "TelemetrySnapshot " << what << " count " << count << " exceeds ceiling "
                                       << kMaxSeries);
  return count;
}

}  // namespace

std::vector<char> TelemetrySnapshot::serialize() const {
  std::vector<char> out;
  util::append_pod(out, kSchemaVersion);
  util::append_pod(out, seq);
  FLINT_CHECK_LE(counters.size(), static_cast<std::size_t>(kMaxSeries));
  util::append_pod(out, static_cast<std::uint32_t>(counters.size()));
  for (const CounterDelta& c : counters) {
    append_name(out, c.name);
    util::append_pod(out, c.delta);
  }
  FLINT_CHECK_LE(gauges.size(), static_cast<std::size_t>(kMaxSeries));
  util::append_pod(out, static_cast<std::uint32_t>(gauges.size()));
  for (const GaugeValue& g : gauges) {
    append_name(out, g.name);
    util::append_pod(out, g.value);
  }
  FLINT_CHECK_LE(histograms.size(), static_cast<std::size_t>(kMaxSeries));
  util::append_pod(out, static_cast<std::uint32_t>(histograms.size()));
  for (const HistogramDelta& h : histograms) {
    append_name(out, h.name);
    util::append_pod(out, h.lo);
    util::append_pod(out, h.hi);
    util::append_pod(out, h.count_delta);
    util::append_pod(out, h.sum_delta);
    FLINT_CHECK_LE(h.bucket_deltas.size(), static_cast<std::size_t>(kMaxBuckets));
    util::append_pod(out, static_cast<std::uint32_t>(h.bucket_deltas.size()));
    util::append_pod_array(out, h.bucket_deltas.data(), h.bucket_deltas.size());
  }
  return out;
}

TelemetrySnapshot TelemetrySnapshot::deserialize(const std::vector<char>& bytes) {
  std::size_t offset = 0;
  auto version = util::read_pod<std::uint16_t>(bytes, offset);
  FLINT_CHECK_MSG(version == kSchemaVersion,
                  "TelemetrySnapshot schema version " << version
                                                      << " does not match this build's "
                                                      << kSchemaVersion);
  TelemetrySnapshot snap;
  snap.seq = util::read_pod<std::uint64_t>(bytes, offset);
  std::uint32_t n_counters = read_section_count("counter", bytes, offset);
  snap.counters.reserve(n_counters);
  for (std::uint32_t i = 0; i < n_counters; ++i) {
    CounterDelta c;
    c.name = read_name(bytes, offset);
    c.delta = util::read_pod<std::uint64_t>(bytes, offset);
    snap.counters.push_back(std::move(c));
  }
  std::uint32_t n_gauges = read_section_count("gauge", bytes, offset);
  snap.gauges.reserve(n_gauges);
  for (std::uint32_t i = 0; i < n_gauges; ++i) {
    GaugeValue g;
    g.name = read_name(bytes, offset);
    g.value = util::read_pod<double>(bytes, offset);
    snap.gauges.push_back(std::move(g));
  }
  std::uint32_t n_histograms = read_section_count("histogram", bytes, offset);
  snap.histograms.reserve(n_histograms);
  for (std::uint32_t i = 0; i < n_histograms; ++i) {
    HistogramDelta h;
    h.name = read_name(bytes, offset);
    h.lo = util::read_pod<double>(bytes, offset);
    h.hi = util::read_pod<double>(bytes, offset);
    h.count_delta = util::read_pod<std::uint64_t>(bytes, offset);
    h.sum_delta = util::read_pod<double>(bytes, offset);
    auto n_buckets = util::read_pod<std::uint32_t>(bytes, offset);
    FLINT_CHECK_MSG(n_buckets <= kMaxBuckets,
                    "TelemetrySnapshot histogram bucket count "
                        << n_buckets << " exceeds ceiling " << kMaxBuckets);
    h.bucket_deltas.resize(n_buckets);
    util::read_pod_array(bytes, offset, h.bucket_deltas.data(), h.bucket_deltas.size());
    snap.histograms.push_back(std::move(h));
  }
  FLINT_CHECK_MSG(offset == bytes.size(), "TelemetrySnapshot payload has "
                                              << bytes.size() - offset
                                              << " trailing byte(s)");
  return snap;
}

TelemetrySnapshot TelemetrySnapshotEncoder::encode(const MetricRegistry& registry) {
  TelemetrySnapshot snap;
  snap.seq = ++seq_;
  for (const MetricSample& sample : registry.snapshot()) {
    switch (sample.kind) {
      case MetricSample::Kind::kCounter: {
        // Counter values are exact in a double far beyond any realistic count.
        auto value = static_cast<std::uint64_t>(sample.value);
        std::uint64_t& baseline = counter_baseline_[sample.name];
        if (value > baseline) {
          snap.counters.push_back({sample.name, value - baseline});
          baseline = value;
        }
        break;
      }
      case MetricSample::Kind::kGauge:
        // Gauges ship absolute: last-write-wins semantics survive loss.
        snap.gauges.push_back({sample.name, sample.value});
        break;
      case MetricSample::Kind::kHistogram: {
        std::uint64_t& count_baseline = histogram_count_baseline_[sample.name];
        if (sample.count == count_baseline) break;
        double& sum_baseline = histogram_sum_baseline_[sample.name];
        std::vector<std::uint64_t>& bucket_baseline =
            histogram_bucket_baseline_[sample.name];
        bucket_baseline.resize(sample.buckets.size(), 0);
        TelemetrySnapshot::HistogramDelta delta;
        delta.name = sample.name;
        delta.lo = sample.lo;
        delta.hi = sample.hi;
        delta.count_delta = sample.count - count_baseline;
        delta.sum_delta = sample.sum - sum_baseline;
        delta.bucket_deltas.reserve(sample.buckets.size());
        for (std::size_t i = 0; i < sample.buckets.size(); ++i)
          delta.bucket_deltas.push_back(sample.buckets[i] - bucket_baseline[i]);
        count_baseline = sample.count;
        sum_baseline = sample.sum;
        bucket_baseline = sample.buckets;
        snap.histograms.push_back(std::move(delta));
        break;
      }
    }
  }
  return snap;
}

std::string executor_series_label(const std::string& name, std::uint64_t executor_id) {
  return name + "{executor=" + std::to_string(executor_id) + "}";
}

bool TelemetrySnapshotMerger::apply(std::uint64_t executor_id,
                                    const TelemetrySnapshot& snapshot,
                                    MetricRegistry& registry) {
  std::uint64_t& last_seq = last_applied_seq_[executor_id];
  if (snapshot.seq <= last_seq) return false;  // duplicated or reordered heartbeat
  last_seq = snapshot.seq;
  for (const TelemetrySnapshot::CounterDelta& c : snapshot.counters)
    registry.counter(executor_series_label(c.name, executor_id)).add(c.delta);
  for (const TelemetrySnapshot::GaugeValue& g : snapshot.gauges)
    registry.gauge(executor_series_label(g.name, executor_id)).set(g.value);
  for (const TelemetrySnapshot::HistogramDelta& h : snapshot.histograms) {
    FLINT_CHECK_GT(h.bucket_deltas.size(), std::size_t{0});
    registry.histogram(executor_series_label(h.name, executor_id), h.lo, h.hi,
                       h.bucket_deltas.size())
        .merge_delta(h.count_delta, h.sum_delta, h.bucket_deltas);
  }
  return true;
}

}  // namespace flint::obs
