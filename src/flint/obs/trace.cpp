#include "flint/obs/trace.h"

#include <algorithm>

#include "flint/util/check.h"

namespace flint::obs {

namespace {

/// Minimal JSON string escaping. Span names are code literals, but escaping
/// keeps the exporter safe if a caller ever passes user data.
void write_escaped(std::ostream& os, const char* s) {
  for (; *s != '\0'; ++s) {
    char c = *s;
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      os << ' ';
    } else {
      os << c;
    }
  }
}

void write_event(std::ostream& os, const TraceEvent& e, int pid, double ts_us,
                 double dur_us) {
  os << "{\"name\":\"";
  write_escaped(os, e.name);
  os << "\",\"cat\":\"";
  write_escaped(os, e.category);
  os << "\",\"ph\":\"X\",\"pid\":" << pid << ",\"tid\":1,\"ts\":" << ts_us
     << ",\"dur\":" << dur_us << ",\"args\":{\"virtual_start_s\":" << e.virtual_start_s
     << ",\"virtual_dur_s\":" << e.virtual_dur_s << ",\"wall_dur_us\":" << e.wall_dur_us
     << "}}";
}

void write_process_name(std::ostream& os, int pid, const char* name) {
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
     << ",\"tid\":1,\"args\":{\"name\":\"" << name << "\"}}";
}

}  // namespace

Tracer::Tracer(std::size_t max_events)
    : max_events_(max_events), epoch_(std::chrono::steady_clock::now()) {
  FLINT_CHECK_GT(max_events, std::size_t{0});
}

double Tracer::wall_now_us() const {
  auto elapsed = std::chrono::steady_clock::now() - epoch_;
  return std::chrono::duration<double, std::micro>(elapsed).count();
}

Tracer::SpanToken Tracer::begin_span(double virtual_now_s) {
  SpanToken token;
  if (!enabled()) return token;
  token.wall_start_us = wall_now_us();
  token.virtual_start_s = virtual_now_s;
  token.active = true;
  return token;
}

void Tracer::end_span(const SpanToken& token, double virtual_now_s, const char* name,
                      const char* category) {
  if (!token.active || !enabled()) return;
  TraceEvent e;
  e.name = name;
  e.category = category;
  e.wall_start_us = token.wall_start_us;
  e.wall_dur_us = wall_now_us() - token.wall_start_us;
  e.virtual_start_s = token.virtual_start_s;
  // The virtual clock is monotone but a span can close in the same instant it
  // opened (callbacks are instantaneous in virtual time).
  e.virtual_dur_s = std::max(0.0, virtual_now_s - token.virtual_start_s);
  util::MutexLock lock(mu_);
  if (events_.size() >= max_events_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  events_.push_back(e);
}

std::size_t Tracer::event_count() const {
  util::MutexLock lock(mu_);
  return events_.size();
}

void Tracer::write_chrome_trace(std::ostream& os) const {
  util::MutexLock lock(mu_);
  os.precision(12);
  os << "{\"traceEvents\":[\n";
  write_process_name(os, 1, "wall clock");
  os << ",\n";
  write_process_name(os, 2, "virtual clock");
  for (const auto& e : events_) {
    os << ",\n";
    write_event(os, e, /*pid=*/1, e.wall_start_us, e.wall_dur_us);
    os << ",\n";
    // Virtual seconds rendered as trace microseconds: 1 virtual second shows
    // as 1 "microsecond" tick, keeping both tracks readable in one UI.
    write_event(os, e, /*pid=*/2, e.virtual_start_s * 1e6, e.virtual_dur_s * 1e6);
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

}  // namespace flint::obs
