#include "flint/obs/trace.h"

#include <unistd.h>

#include <algorithm>

#include "flint/util/check.h"

namespace flint::obs {

namespace {

/// Minimal JSON string escaping. Span names are code literals, but escaping
/// keeps the exporter safe if a caller ever passes user data.
void write_escaped(std::ostream& os, const char* s) {
  for (; *s != '\0'; ++s) {
    char c = *s;
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      os << ' ';
    } else {
      os << c;
    }
  }
}

void write_event(std::ostream& os, const TraceEvent& e, long long pid, double ts_us,
                 double dur_us) {
  os << "{\"name\":\"";
  write_escaped(os, e.name);
  os << "\",\"cat\":\"";
  write_escaped(os, e.category);
  os << "\",\"ph\":\"X\",\"pid\":" << pid << ",\"tid\":1,\"ts\":" << ts_us
     << ",\"dur\":" << dur_us << ",\"args\":{\"virtual_start_s\":" << e.virtual_start_s
     << ",\"virtual_dur_s\":" << e.virtual_dur_s << ",\"wall_dur_us\":" << e.wall_dur_us;
  // Propagation ids only when present, so plain local spans stay compact.
  if (e.span_id != 0) {
    os << ",\"trace_id\":" << e.trace_id << ",\"span_id\":" << e.span_id
       << ",\"parent_span_id\":" << e.parent_span_id;
  }
  os << "}}";
}

void write_process_name(std::ostream& os, long long pid, const std::string& name) {
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
     << ",\"tid\":1,\"args\":{\"name\":\"";
  write_escaped(os, name.c_str());
  os << "\"}}";
}

void write_process_sort_index(std::ostream& os, long long pid, long long sort_index) {
  os << "{\"name\":\"process_sort_index\",\"ph\":\"M\",\"pid\":" << pid
     << ",\"tid\":1,\"args\":{\"sort_index\":" << sort_index << "}}";
}

}  // namespace

Tracer::Tracer(std::size_t max_events)
    : max_events_(max_events), epoch_(std::chrono::steady_clock::now()) {
  FLINT_CHECK_GT(max_events, std::size_t{0});
}

double Tracer::wall_now_us() const {
  auto elapsed = std::chrono::steady_clock::now() - epoch_;
  return std::chrono::duration<double, std::micro>(elapsed).count();
}

Tracer::SpanToken Tracer::begin_span(double virtual_now_s) {
  SpanToken token;
  if (!enabled()) return token;
  token.wall_start_us = wall_now_us();
  token.virtual_start_s = virtual_now_s;
  token.active = true;
  return token;
}

void Tracer::end_span(const SpanToken& token, double virtual_now_s, const char* name,
                      const char* category) {
  end_span(token, virtual_now_s, name, category, /*trace_id=*/0, /*span_id=*/0,
           /*parent_span_id=*/0);
}

void Tracer::end_span(const SpanToken& token, double virtual_now_s, const char* name,
                      const char* category, std::uint64_t trace_id, std::uint64_t span_id,
                      std::uint64_t parent_span_id) {
  if (!token.active || !enabled()) return;
  TraceEvent e;
  e.name = name;
  e.category = category;
  e.wall_start_us = token.wall_start_us;
  e.wall_dur_us = wall_now_us() - token.wall_start_us;
  e.virtual_start_s = token.virtual_start_s;
  // The virtual clock is monotone but a span can close in the same instant it
  // opened (callbacks are instantaneous in virtual time).
  e.virtual_dur_s = std::max(0.0, virtual_now_s - token.virtual_start_s);
  e.trace_id = trace_id;
  e.span_id = span_id;
  e.parent_span_id = parent_span_id;
  util::MutexLock lock(mu_);
  if (events_.size() >= max_events_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  events_.push_back(e);
}

void Tracer::set_process_info(const std::string& label, int sort_index) {
  util::MutexLock lock(mu_);
  process_label_ = label;
  process_sort_index_ = sort_index;
}

std::size_t Tracer::event_count() const {
  util::MutexLock lock(mu_);
  return events_.size();
}

std::vector<TraceEvent> Tracer::events_snapshot() const {
  util::MutexLock lock(mu_);
  return events_;
}

void Tracer::write_chrome_trace(std::ostream& os) const {
  util::MutexLock lock(mu_);
  // Single-process recordings keep the historical {1, 2} track pids; labeled
  // multi-process recordings derive theirs from the OS pid so a merged trace
  // never collides (pid-uniqueness is checked by validate_trace.py --merged).
  // flint-analyze: allow(nondet-source): track ids and role labels are
  // diagnostic trace metadata and never feed simulated results or artifacts.
  const long long os_pid = static_cast<long long>(::getpid());
  const bool labeled = !process_label_.empty();
  const long long wall_pid = labeled ? 2 * os_pid : 1;
  const long long virtual_pid = labeled ? 2 * os_pid + 1 : 2;
  const std::string wall_name =
      labeled ? process_label_ + " wall clock" : std::string("wall clock");
  const std::string virtual_name =
      labeled ? process_label_ + " virtual clock" : std::string("virtual clock");
  const long long sort_base = labeled ? 2LL * process_sort_index_ : 0;

  os.precision(12);
  os << "{\"traceEvents\":[\n";
  write_process_name(os, wall_pid, wall_name);
  os << ",\n";
  write_process_name(os, virtual_pid, virtual_name);
  os << ",\n";
  write_process_sort_index(os, wall_pid, sort_base);
  os << ",\n";
  write_process_sort_index(os, virtual_pid, sort_base + 1);
  for (const auto& e : events_) {
    os << ",\n";
    write_event(os, e, wall_pid, e.wall_start_us, e.wall_dur_us);
    os << ",\n";
    // Virtual seconds rendered as trace microseconds: 1 virtual second shows
    // as 1 "microsecond" tick, keeping both tracks readable in one UI.
    write_event(os, e, virtual_pid, e.virtual_start_s * 1e6, e.virtual_dur_s * 1e6);
  }
  os << "\n],\"displayTimeUnit\":\"ms\",\"flint\":{\"role\":\"";
  write_escaped(os, process_label_.c_str());
  os << "\",\"os_pid\":" << os_pid << ",\"wall_pid\":" << wall_pid
     << ",\"virtual_pid\":" << virtual_pid << ",\"sort_index\":" << process_sort_index_
     << ",\"clock_offset_us\":" << clock_offset_us_.load(std::memory_order_relaxed)
     << "}}\n";
}

}  // namespace flint::obs
