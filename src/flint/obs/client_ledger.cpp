#include "flint/obs/client_ledger.h"

#include <algorithm>

#include "flint/util/check.h"

namespace flint::obs {

const char* ledger_outcome_name(LedgerOutcome outcome) {
  switch (outcome) {
    case LedgerOutcome::kSucceeded: return "succeeded";
    case LedgerOutcome::kInterrupted: return "interrupted";
    case LedgerOutcome::kStale: return "stale";
    case LedgerOutcome::kFailed: return "failed";
  }
  return "?";
}

ClientLedger::ClientLedger()
    : tier_labels_{"high-end", "mid-range", "low-end"},
      cohort_labels_{"rare", "regular", "always-on"} {}

void ClientLedger::set_tier_labels(std::vector<std::string> labels) {
  FLINT_CHECK_MSG(!labels.empty(), "ledger needs at least one tier label");
  tier_labels_ = std::move(labels);
}

void ClientLedger::set_cohort_labels(std::vector<std::string> labels) {
  FLINT_CHECK_MSG(!labels.empty(), "ledger needs at least one cohort label");
  cohort_labels_ = std::move(labels);
}

ClientLedgerEntry& ClientLedger::entry(std::uint64_t client_id) {
  auto [it, inserted] = entries_.try_emplace(client_id);
  if (inserted) it->second.client_id = client_id;
  return it->second;
}

void ClientLedger::register_client(std::uint64_t client_id, std::uint32_t tier,
                                   std::uint32_t cohort, std::uint32_t executor) {
  ClientLedgerEntry& e = entry(client_id);
  e.tier = tier;
  e.cohort = cohort;
  e.executor = executor;
}

void ClientLedger::restore_account(const ClientLedgerEntry& account) {
  FLINT_CHECK_FINITE(account.compute_s);
  FLINT_CHECK_GE(account.compute_s, 0.0);
  FLINT_CHECK_FINITE(account.wasted_compute_s);
  FLINT_CHECK_GE(account.wasted_compute_s, 0.0);
  ClientLedgerEntry& e = entry(account.client_id);
  e.tasks_succeeded = account.tasks_succeeded;
  e.tasks_interrupted = account.tasks_interrupted;
  e.tasks_stale = account.tasks_stale;
  e.tasks_failed = account.tasks_failed;
  e.compute_s = account.compute_s;
  e.wasted_compute_s = account.wasted_compute_s;
  e.bytes_down = account.bytes_down;
  e.bytes_up = account.bytes_up;
}

void ClientLedger::on_task_finished(std::uint64_t client_id, LedgerOutcome outcome,
                                    double compute_s, std::uint64_t update_bytes) {
  FLINT_CHECK_FINITE(compute_s);
  FLINT_CHECK_GE(compute_s, 0.0);
  ClientLedgerEntry& e = entry(client_id);
  e.compute_s += compute_s;
  e.bytes_down += update_bytes;
  switch (outcome) {
    case LedgerOutcome::kSucceeded:
      ++e.tasks_succeeded;
      e.bytes_up += update_bytes;
      break;
    case LedgerOutcome::kInterrupted:
      // Left the availability window mid-task: partial compute, no upload.
      ++e.tasks_interrupted;
      e.wasted_compute_s += compute_s;
      break;
    case LedgerOutcome::kStale:
      // Ran to completion and uploaded, but the update was discarded.
      ++e.tasks_stale;
      e.wasted_compute_s += compute_s;
      e.bytes_up += update_bytes;
      break;
    case LedgerOutcome::kFailed:
      ++e.tasks_failed;
      e.wasted_compute_s += compute_s;
      break;
  }
}

namespace {

void fold(LedgerRollup& rollup, const ClientLedgerEntry& e) {
  ++rollup.clients;
  rollup.tasks_succeeded += e.tasks_succeeded;
  rollup.tasks_interrupted += e.tasks_interrupted;
  rollup.tasks_stale += e.tasks_stale;
  rollup.tasks_failed += e.tasks_failed;
  rollup.compute_s += e.compute_s;
  rollup.wasted_compute_s += e.wasted_compute_s;
  rollup.bytes_down += e.bytes_down;
  rollup.bytes_up += e.bytes_up;
}

}  // namespace

ClientLedgerSummary ClientLedger::summary(std::size_t top_k) const {
  ClientLedgerSummary out;
  out.totals.key = "all";
  out.by_tier.resize(tier_labels_.size());
  for (std::size_t i = 0; i < tier_labels_.size(); ++i) out.by_tier[i].key = tier_labels_[i];
  out.by_cohort.resize(cohort_labels_.size());
  for (std::size_t i = 0; i < cohort_labels_.size(); ++i)
    out.by_cohort[i].key = cohort_labels_[i];

  std::uint32_t max_executor = 0;
  for (const auto& [id, e] : entries_) max_executor = std::max(max_executor, e.executor);
  out.by_executor.resize(static_cast<std::size_t>(max_executor) + 1);
  for (std::size_t i = 0; i < out.by_executor.size(); ++i)
    out.by_executor[i].key = "executor-" + std::to_string(i);

  // Fold in ascending client-id order, never unordered_map iteration order.
  // The rollups accumulate doubles, and float addition does not commute at
  // the bit level: folding in hash order would make the summary depend on
  // insertion history — a fresh run (task-completion order) and a resumed
  // run (restore_account in client-id order) would produce artifacts that
  // differ in the last ulp, breaking the bit-identical resume contract.
  std::vector<const ClientLedgerEntry*> ordered;
  ordered.reserve(entries_.size());
  for (const auto& [id, e] : entries_) {
    if (e.tasks_finished() == 0) continue;  // registered but never ran
    ordered.push_back(&e);
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const ClientLedgerEntry* a, const ClientLedgerEntry* b) {
              return a->client_id < b->client_id;
            });

  std::vector<const ClientLedgerEntry*> ranked;
  ranked.reserve(ordered.size());
  for (const ClientLedgerEntry* e : ordered) {
    fold(out.totals, *e);
    fold(out.by_tier[std::min<std::size_t>(e->tier, out.by_tier.size() - 1)], *e);
    fold(out.by_cohort[std::min<std::size_t>(e->cohort, out.by_cohort.size() - 1)], *e);
    fold(out.by_executor[e->executor], *e);
    ranked.push_back(e);
  }
  // Drop trailing executors with no work so sparse assignments stay compact.
  while (!out.by_executor.empty() && out.by_executor.back().clients == 0)
    out.by_executor.pop_back();

  // Stragglers: worst wasted compute first; ties broken by client id so the
  // ranking (and therefore the artifact) is deterministic.
  std::size_t k = std::min(top_k, ranked.size());
  std::partial_sort(ranked.begin(), ranked.begin() + static_cast<std::ptrdiff_t>(k),
                    ranked.end(), [](const ClientLedgerEntry* a, const ClientLedgerEntry* b) {
                      if (a->wasted_compute_s != b->wasted_compute_s)
                        return a->wasted_compute_s > b->wasted_compute_s;
                      return a->client_id < b->client_id;
                    });
  out.stragglers.reserve(k);
  for (std::size_t i = 0; i < k; ++i) out.stragglers.push_back(*ranked[i]);
  return out;
}

}  // namespace flint::obs
