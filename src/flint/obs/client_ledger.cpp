#include "flint/obs/client_ledger.h"

#include <algorithm>

#include "flint/util/check.h"

namespace flint::obs {

const char* ledger_outcome_name(LedgerOutcome outcome) {
  switch (outcome) {
    case LedgerOutcome::kSucceeded: return "succeeded";
    case LedgerOutcome::kInterrupted: return "interrupted";
    case LedgerOutcome::kStale: return "stale";
    case LedgerOutcome::kFailed: return "failed";
  }
  return "?";
}

ClientLedger::ClientLedger()
    : tier_labels_{"high-end", "mid-range", "low-end"},
      cohort_labels_{"rare", "regular", "always-on"} {}

void ClientLedger::set_tier_labels(std::vector<std::string> labels) {
  FLINT_CHECK_MSG(!labels.empty(), "ledger needs at least one tier label");
  tier_labels_ = std::move(labels);
}

void ClientLedger::set_cohort_labels(std::vector<std::string> labels) {
  FLINT_CHECK_MSG(!labels.empty(), "ledger needs at least one cohort label");
  cohort_labels_ = std::move(labels);
}

std::uint32_t ClientLedger::slot(std::uint64_t client_id) {
  std::uint32_t s = keys_.intern(client_id);
  if (s == tier_.size()) {
    // First touch: append one zeroed row across every column.
    tier_.push_back(0);
    cohort_.push_back(0);
    executor_.push_back(0);
    tasks_succeeded_.push_back(0);
    tasks_interrupted_.push_back(0);
    tasks_stale_.push_back(0);
    tasks_failed_.push_back(0);
    compute_s_.push_back(0.0);
    wasted_compute_s_.push_back(0.0);
    bytes_down_.push_back(0);
    bytes_up_.push_back(0);
  }
  return s;
}

ClientLedgerEntry ClientLedger::entry_at(std::uint32_t s) const {
  FLINT_CHECK_LT(s, keys_.size());
  ClientLedgerEntry e;
  e.client_id = keys_.key_at(s);
  e.tier = tier_[s];
  e.cohort = cohort_[s];
  e.executor = executor_[s];
  e.tasks_succeeded = tasks_succeeded_[s];
  e.tasks_interrupted = tasks_interrupted_[s];
  e.tasks_stale = tasks_stale_[s];
  e.tasks_failed = tasks_failed_[s];
  e.compute_s = compute_s_[s];
  e.wasted_compute_s = wasted_compute_s_[s];
  e.bytes_down = bytes_down_[s];
  e.bytes_up = bytes_up_[s];
  return e;
}

void ClientLedger::register_client(std::uint64_t client_id, std::uint32_t tier,
                                   std::uint32_t cohort, std::uint32_t executor) {
  std::uint32_t s = slot(client_id);
  tier_[s] = tier;
  cohort_[s] = cohort;
  executor_[s] = executor;
}

void ClientLedger::restore_account(const ClientLedgerEntry& account) {
  FLINT_CHECK_FINITE(account.compute_s);
  FLINT_CHECK_GE(account.compute_s, 0.0);
  FLINT_CHECK_FINITE(account.wasted_compute_s);
  FLINT_CHECK_GE(account.wasted_compute_s, 0.0);
  std::uint32_t s = slot(account.client_id);
  tasks_succeeded_[s] = account.tasks_succeeded;
  tasks_interrupted_[s] = account.tasks_interrupted;
  tasks_stale_[s] = account.tasks_stale;
  tasks_failed_[s] = account.tasks_failed;
  compute_s_[s] = account.compute_s;
  wasted_compute_s_[s] = account.wasted_compute_s;
  bytes_down_[s] = account.bytes_down;
  bytes_up_[s] = account.bytes_up;
}

void ClientLedger::on_task_finished(std::uint64_t client_id, LedgerOutcome outcome,
                                    double compute_s, std::uint64_t update_bytes) {
  FLINT_CHECK_FINITE(compute_s);
  FLINT_CHECK_GE(compute_s, 0.0);
  std::uint32_t s = slot(client_id);
  compute_s_[s] += compute_s;
  bytes_down_[s] += update_bytes;
  switch (outcome) {
    case LedgerOutcome::kSucceeded:
      ++tasks_succeeded_[s];
      bytes_up_[s] += update_bytes;
      break;
    case LedgerOutcome::kInterrupted:
      // Left the availability window mid-task: partial compute, no upload.
      ++tasks_interrupted_[s];
      wasted_compute_s_[s] += compute_s;
      break;
    case LedgerOutcome::kStale:
      // Ran to completion and uploaded, but the update was discarded.
      ++tasks_stale_[s];
      wasted_compute_s_[s] += compute_s;
      bytes_up_[s] += update_bytes;
      break;
    case LedgerOutcome::kFailed:
      ++tasks_failed_[s];
      wasted_compute_s_[s] += compute_s;
      break;
  }
}

namespace {

void fold(LedgerRollup& rollup, const ClientLedgerEntry& e) {
  ++rollup.clients;
  rollup.tasks_succeeded += e.tasks_succeeded;
  rollup.tasks_interrupted += e.tasks_interrupted;
  rollup.tasks_stale += e.tasks_stale;
  rollup.tasks_failed += e.tasks_failed;
  rollup.compute_s += e.compute_s;
  rollup.wasted_compute_s += e.wasted_compute_s;
  rollup.bytes_down += e.bytes_down;
  rollup.bytes_up += e.bytes_up;
}

}  // namespace

ClientLedgerSummary ClientLedger::summary(std::size_t top_k) const {
  ClientLedgerSummary out;
  out.totals.key = "all";
  out.by_tier.resize(tier_labels_.size());
  for (std::size_t i = 0; i < tier_labels_.size(); ++i) out.by_tier[i].key = tier_labels_[i];
  out.by_cohort.resize(cohort_labels_.size());
  for (std::size_t i = 0; i < cohort_labels_.size(); ++i)
    out.by_cohort[i].key = cohort_labels_[i];

  // Materialize the active accounts and fold them in ascending client-id
  // order, never slot (first-touch) order. The rollups accumulate doubles,
  // and float addition does not commute at the bit level: folding in touch
  // order would make the summary depend on insertion history — a fresh run
  // (task-completion order) and a resumed run (restore_account in client-id
  // order) would produce artifacts that differ in the last ulp, breaking the
  // bit-identical resume contract.
  std::vector<ClientLedgerEntry> ordered;
  ordered.reserve(keys_.size());
  std::uint32_t max_executor = 0;
  for (std::uint32_t s = 0; s < keys_.size(); ++s) {
    ClientLedgerEntry e = entry_at(s);
    max_executor = std::max(max_executor, e.executor);
    if (e.tasks_finished() == 0) continue;  // registered but never ran
    ordered.push_back(e);
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const ClientLedgerEntry& a, const ClientLedgerEntry& b) {
              return a.client_id < b.client_id;
            });

  out.by_executor.resize(static_cast<std::size_t>(max_executor) + 1);
  for (std::size_t i = 0; i < out.by_executor.size(); ++i)
    out.by_executor[i].key = "executor-" + std::to_string(i);

  for (const ClientLedgerEntry& e : ordered) {
    fold(out.totals, e);
    fold(out.by_tier[std::min<std::size_t>(e.tier, out.by_tier.size() - 1)], e);
    fold(out.by_cohort[std::min<std::size_t>(e.cohort, out.by_cohort.size() - 1)], e);
    fold(out.by_executor[e.executor], e);
  }
  // Drop trailing executors with no work so sparse assignments stay compact.
  while (!out.by_executor.empty() && out.by_executor.back().clients == 0)
    out.by_executor.pop_back();

  // Stragglers: worst wasted compute first; ties broken by client id so the
  // ranking (and therefore the artifact) is deterministic.
  std::size_t k = std::min(top_k, ordered.size());
  std::partial_sort(ordered.begin(), ordered.begin() + static_cast<std::ptrdiff_t>(k),
                    ordered.end(), [](const ClientLedgerEntry& a, const ClientLedgerEntry& b) {
                      if (a.wasted_compute_s != b.wasted_compute_s)
                        return a.wasted_compute_s > b.wasted_compute_s;
                      return a.client_id < b.client_id;
                    });
  out.stragglers.assign(ordered.begin(), ordered.begin() + static_cast<std::ptrdiff_t>(k));
  return out;
}

}  // namespace flint::obs
