// Per-client attribution ledger for the observability subsystem.
//
// SimMetrics answers "what did the run cost in aggregate"; the ledger answers
// "which clients paid for it". Every task completion is attributed to its
// client, and clients carry two classification axes assigned at registration
// time by the feeder (the FL runner, which sits above device/):
//
//   tier    — device hardware tier (high-end / mid-range / low-end)
//   cohort  — availability cohort (how much of the trace horizon the client
//             was eligible for work: rare / regular / always-on)
//
// obs sits below device/ in the layering, so tiers and cohorts arrive here as
// small label indices plus display names; the ledger never names a
// DeviceProfile. Aggregation happens at summary() time: per-tier and
// per-cohort rollups, whole-run totals (which must reconcile with SimMetrics
// — a ctest enforces it), and the top-K stragglers by wasted compute.
//
// Single-writer: the runners feed it from the (single-threaded) event pump,
// like SimMetrics itself. Not thread-safe by design.
// Storage is struct-of-arrays (DESIGN.md §17): client keys are interned to
// dense slots and every counter lives in a fixed-chunk column, so a
// million-client run costs ~100 bytes per *touched* client with no hash-map
// node overhead and no reallocation spikes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "flint/util/client_pool.h"

namespace flint::obs {

/// Task fate as the ledger sees it; mirrors sim::TaskOutcome without
/// depending on sim (obs is below it).
enum class LedgerOutcome { kSucceeded, kInterrupted, kStale, kFailed };

const char* ledger_outcome_name(LedgerOutcome outcome);

/// One client's accumulated account.
struct ClientLedgerEntry {
  std::uint64_t client_id = 0;
  std::uint32_t tier = 0;      ///< index into ClientLedger::tier_labels()
  std::uint32_t cohort = 0;    ///< index into ClientLedger::cohort_labels()
  std::uint32_t executor = 0;  ///< owning executor in the simulated cluster

  std::uint64_t tasks_succeeded = 0;
  std::uint64_t tasks_interrupted = 0;
  std::uint64_t tasks_stale = 0;
  std::uint64_t tasks_failed = 0;

  double compute_s = 0.0;         ///< on-device compute consumed, all tasks
  double wasted_compute_s = 0.0;  ///< compute on tasks that never aggregated
  std::uint64_t bytes_down = 0;   ///< model downloads
  std::uint64_t bytes_up = 0;     ///< update uploads (interrupted tasks skip)

  std::uint64_t tasks_finished() const {
    return tasks_succeeded + tasks_interrupted + tasks_stale + tasks_failed;
  }
};

/// One aggregation bucket (a tier, a cohort, or the whole run).
struct LedgerRollup {
  std::string key;  ///< display label ("high-end", "always-on", "all", ...)
  std::uint64_t clients = 0;  ///< clients with at least one finished task
  std::uint64_t tasks_succeeded = 0;
  std::uint64_t tasks_interrupted = 0;
  std::uint64_t tasks_stale = 0;
  std::uint64_t tasks_failed = 0;
  double compute_s = 0.0;
  double wasted_compute_s = 0.0;
  std::uint64_t bytes_down = 0;
  std::uint64_t bytes_up = 0;

  std::uint64_t tasks_finished() const {
    return tasks_succeeded + tasks_interrupted + tasks_stale + tasks_failed;
  }
  /// Fraction of this bucket's compute that was wasted.
  double waste_fraction() const {
    return compute_s > 0.0 ? wasted_compute_s / compute_s : 0.0;
  }
};

/// Aggregated view of a finished run's ledger, embedded in RunResult and the
/// run artifact.
struct ClientLedgerSummary {
  std::vector<LedgerRollup> by_tier;      ///< one row per tier label, in order
  std::vector<LedgerRollup> by_cohort;    ///< one row per cohort label
  std::vector<LedgerRollup> by_executor;  ///< one row per executor with work
  LedgerRollup totals;                    ///< whole-run account (key "all")
  /// Clients ranked by wasted compute, worst first (at most the requested K).
  std::vector<ClientLedgerEntry> stragglers;

  bool empty() const { return totals.tasks_finished() == 0; }
};

/// The ledger itself. register_client() is optional per client: a completion
/// for an unregistered client lands in tier/cohort index 0 with executor 0,
/// so partially-wired feeders still reconcile in totals.
class ClientLedger {
 public:
  ClientLedger();

  /// Install display names for the tier/cohort axes (defaults cover the
  /// standard three-tier / three-cohort classification).
  void set_tier_labels(std::vector<std::string> labels);
  void set_cohort_labels(std::vector<std::string> labels);
  const std::vector<std::string>& tier_labels() const { return tier_labels_; }
  const std::vector<std::string>& cohort_labels() const { return cohort_labels_; }

  /// Classify a client. Indices beyond the label vectors are clamped at
  /// summary time. Re-registering overwrites the classification but keeps
  /// the accumulated account.
  void register_client(std::uint64_t client_id, std::uint32_t tier, std::uint32_t cohort,
                       std::uint32_t executor);

  /// Attribute one finished task. `compute_s` is the compute actually spent
  /// (partial for interrupted tasks); it counts as wasted unless the outcome
  /// is kSucceeded. `update_bytes` is the model/update transfer size M: the
  /// download always happened, the upload only when the task ran to
  /// completion (succeeded or stale).
  void on_task_finished(std::uint64_t client_id, LedgerOutcome outcome, double compute_s,
                        std::uint64_t update_bytes);

  /// Distinct clients touched (registered or attributed).
  std::size_t client_count() const { return keys_.size(); }

  /// Assemble the account at dense slot `slot` (slots are first-touch order,
  /// 0 <= slot < client_count()). Consumers that need a canonical order sort
  /// by ClientLedgerEntry::client_id.
  ClientLedgerEntry entry_at(std::uint32_t slot) const;

  /// Overwrite one client's accumulated counters from a checkpoint (resume
  /// path), keeping whatever tier/cohort/executor classification this run's
  /// feeder registered.
  void restore_account(const ClientLedgerEntry& account);

  /// Aggregate the account: per-tier / per-cohort / per-executor rollups,
  /// totals, and the top_k clients by wasted compute.
  ClientLedgerSummary summary(std::size_t top_k = 10) const;

 private:
  /// Dense slot for `client_id`, appending zeroed columns on first touch.
  std::uint32_t slot(std::uint64_t client_id);

  // Struct-of-arrays per-client state, indexed by the interned slot.
  util::KeyInterner keys_;
  util::ChunkedColumn<std::uint32_t> tier_;
  util::ChunkedColumn<std::uint32_t> cohort_;
  util::ChunkedColumn<std::uint32_t> executor_;
  util::ChunkedColumn<std::uint64_t> tasks_succeeded_;
  util::ChunkedColumn<std::uint64_t> tasks_interrupted_;
  util::ChunkedColumn<std::uint64_t> tasks_stale_;
  util::ChunkedColumn<std::uint64_t> tasks_failed_;
  util::ChunkedColumn<double> compute_s_;
  util::ChunkedColumn<double> wasted_compute_s_;
  util::ChunkedColumn<std::uint64_t> bytes_down_;
  util::ChunkedColumn<std::uint64_t> bytes_up_;
  std::vector<std::string> tier_labels_;
  std::vector<std::string> cohort_labels_;
};

}  // namespace flint::obs
