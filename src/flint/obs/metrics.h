// Runtime metric registry for the observability subsystem (flint::obs).
//
// The paper's pitch is that FL experiments land in the same monitoring
// surface as centralized ML (Figure 3); core/report covers the after-the-fact
// half of that, and this registry covers the live half: counters, gauges, and
// fixed-bucket histograms that hot simulator code records into through cheap,
// stable handles. Recording is lock-free (plain atomics); only handle
// creation and snapshotting take the registry mutex, so a disabled or absent
// registry costs a pointer load per instrumented site (see telemetry.h).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "flint/util/thread_annotations.h"

namespace flint::obs {

/// Monotone event count. add() is safe from any thread.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (queue depth, buffer occupancy).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed uniform-bucket histogram over [lo, hi); out-of-range samples land in
/// the saturating edge buckets (the util::Histogram convention) so nothing is
/// silently dropped. record() is safe from any thread.
class HistogramMetric {
 public:
  HistogramMetric(double lo, double hi, std::size_t buckets);

  void record(double x);

  /// Fold a remote delta window into this histogram (the telemetry-shipping
  /// merge path, telemetry_snapshot.h): bucket-wise counts plus count/sum
  /// increments. `bucket_deltas.size()` must equal bucket_count(). Safe from
  /// any thread, like record().
  void merge_delta(std::uint64_t count_delta, double sum_delta,
                   const std::vector<std::uint64_t>& bucket_deltas);

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  std::size_t bucket_count() const { return buckets_.size(); }
  std::uint64_t bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const;
  /// Estimated q-quantile (see histogram_quantile); 0 when empty.
  double quantile(double q) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// One series' state at snapshot time.
struct MetricSample {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  Kind kind = Kind::kCounter;
  double value = 0.0;  ///< counter/gauge value; histogram mean
  // Histogram-only fields.
  std::uint64_t count = 0;
  double sum = 0.0;
  double lo = 0.0;
  double hi = 0.0;
  std::vector<std::uint64_t> buckets;

  /// One JSONL line: {"series":...,"type":...,"t_virtual_s":...,...}.
  std::string to_jsonl(double virtual_time_s) const;

  /// Estimated q-quantile of a histogram sample (0 for other kinds / empty).
  double quantile(double q) const;
};

const char* kind_name(MetricSample::Kind kind);

/// Estimate the q-quantile (q in [0,1]) of a fixed-uniform-bucket histogram
/// over [lo, hi) by linear interpolation inside the covering bucket. Samples
/// beyond the range sit in the saturating edge buckets, so estimates clamp to
/// [lo, hi] — tails wider than the configured range are reported at the edge
/// rather than invented. Returns 0 when the histogram is empty.
double histogram_quantile(double q, double lo, double hi,
                          const std::vector<std::uint64_t>& buckets);

/// Name -> metric map with stable handle addresses. Handle creation is
/// idempotent: asking for an existing name returns the same object, so call
/// sites can re-resolve after a telemetry swap without duplicating series.
class MetricRegistry {
 public:
  Counter& counter(const std::string& name) FLINT_EXCLUDES(mu_);
  Gauge& gauge(const std::string& name) FLINT_EXCLUDES(mu_);
  /// Requesting an existing histogram ignores the shape arguments.
  HistogramMetric& histogram(const std::string& name, double lo, double hi,
                             std::size_t buckets) FLINT_EXCLUDES(mu_);

  std::size_t series_count() const FLINT_EXCLUDES(mu_);

  /// Point-in-time copy of every series, sorted by name.
  std::vector<MetricSample> snapshot() const FLINT_EXCLUDES(mu_);

 private:
  // mu_ guards handle creation and snapshots only; recording goes through the
  // returned handles' atomics and never takes it.
  mutable util::Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_ FLINT_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ FLINT_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<HistogramMetric>> histograms_ FLINT_GUARDED_BY(mu_);
};

}  // namespace flint::obs
