// Live fleet status stream (DESIGN.md §15).
//
// A long multi-process run is opaque between artifact writes: metrics land in
// files at exit and traces are post-mortem. StatusReporter closes that gap on
// the leader: every `every_wall_s` wall seconds it distills the ambient
// registry — round, tasks in flight, queue depth, per-executor liveness,
// update throughput, resident memory — into one JSONL line appended to a
// `--status-out` file that `tools/flint_top.py` follows like `top`. The
// stream is derived read-only from the registry and never feeds artifacts, so
// enabling it cannot perturb a run's config fingerprint.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>

#include "flint/util/thread_annotations.h"

namespace flint::obs {

class Telemetry;

struct StatusReporterConfig {
  std::string path;           ///< JSONL destination (truncated at start)
  double every_wall_s = 1.0;  ///< min wall seconds between lines
};

/// Periodic JSONL status emitter. maybe_report() is cheap when not due (one
/// clock read under the mutex) and is called from the leader's pump loop and
/// from advance_virtual_time; the first call and force=true always emit.
class StatusReporter {
 public:
  explicit StatusReporter(StatusReporterConfig config);

  /// Emit a status line if the cadence has elapsed (or `force`). Returns true
  /// when a line was written.
  bool maybe_report(Telemetry& telemetry, bool force = false) FLINT_EXCLUDES(mu_);

  std::uint64_t lines_written() const FLINT_EXCLUDES(mu_);

 private:
  StatusReporterConfig config_;
  mutable util::Mutex mu_;
  std::ofstream out_ FLINT_GUARDED_BY(mu_);
  double next_due_wall_s_ FLINT_GUARDED_BY(mu_) = 0.0;  ///< 0 = emit immediately
  double last_wall_s_ FLINT_GUARDED_BY(mu_) = 0.0;
  double last_updates_total_ FLINT_GUARDED_BY(mu_) = 0.0;
  std::uint64_t lines_ FLINT_GUARDED_BY(mu_) = 0;
};

/// Resident set size of this process in bytes (VmRSS), or 0 where /proc is
/// unavailable. Diagnostic only.
std::uint64_t resident_bytes();

}  // namespace flint::obs
