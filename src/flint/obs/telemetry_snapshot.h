// Delta-encoded metric shipping for the distributed runtime (DESIGN.md §15).
//
// An executor process records into its own MetricRegistry; a TelemetrySnapshot
// is the schema-versioned wire form of "what changed since my last snapshot":
// counter increments and histogram bucket/count/sum increments (deltas, so a
// lost heartbeat costs only the window it carried, never double-counts), plus
// absolute gauge values (last-write-wins by nature). The executor-side
// TelemetrySnapshotEncoder produces them against its remembered baseline; the
// leader-side TelemetrySnapshotMerger folds them into the leader's ambient
// registry under `name{executor=N}` labels, and drops duplicated or reordered
// snapshots by sequence number so a replayed heartbeat is a no-op.
//
// The payload piggybacks on HeartbeatMsg (src/flint/rpc/messages.h) but is
// versioned independently: metric shipping can evolve without touching the
// liveness protocol.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "flint/obs/metrics.h"

namespace flint::obs {

/// One delta window of an executor's registry, wire-serializable.
struct TelemetrySnapshot {
  static constexpr std::uint16_t kSchemaVersion = 1;

  std::uint64_t seq = 0;  ///< monotone per producer; the merger's dedup key

  struct CounterDelta {
    std::string name;
    std::uint64_t delta = 0;
  };
  struct GaugeValue {
    std::string name;
    double value = 0.0;
  };
  struct HistogramDelta {
    std::string name;
    double lo = 0.0;
    double hi = 0.0;
    std::uint64_t count_delta = 0;
    double sum_delta = 0.0;
    std::vector<std::uint64_t> bucket_deltas;
  };

  std::vector<CounterDelta> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramDelta> histograms;

  bool empty() const { return counters.empty() && gauges.empty() && histograms.empty(); }

  std::vector<char> serialize() const;
  /// Throws CheckError on truncation, trailing bytes, a schema-version
  /// mismatch, or any count above the sanity ceilings — same contract as the
  /// rpc message deserializers.
  static TelemetrySnapshot deserialize(const std::vector<char>& bytes);
};

/// Executor-side: remembers the last-shipped value of every series and emits
/// the delta since. Single-threaded by design (the worker's serve loop owns
/// it); the registry it reads from stays fully concurrent.
class TelemetrySnapshotEncoder {
 public:
  /// Snapshot `registry`, advance the baseline, and bump the sequence number.
  /// Counters/histograms with no change since the last call are omitted.
  TelemetrySnapshot encode(const MetricRegistry& registry);

 private:
  std::uint64_t seq_ = 0;
  // std::map for deterministic iteration (flint_analyze unordered-iter rule).
  std::map<std::string, std::uint64_t> counter_baseline_;
  std::map<std::string, std::uint64_t> histogram_count_baseline_;
  std::map<std::string, double> histogram_sum_baseline_;
  std::map<std::string, std::vector<std::uint64_t>> histogram_bucket_baseline_;
};

/// Leader-side: applies executor snapshots to a registry under
/// `name{executor=N}` labels. Duplicate or stale sequence numbers (a
/// re-delivered heartbeat) are dropped, which makes apply() idempotent.
class TelemetrySnapshotMerger {
 public:
  /// Returns true when the snapshot was applied, false when it was a
  /// duplicate/stale sequence number for this executor.
  bool apply(std::uint64_t executor_id, const TelemetrySnapshot& snapshot,
             MetricRegistry& registry);

 private:
  std::map<std::uint64_t, std::uint64_t> last_applied_seq_;
};

/// The `name{executor=N}` label convention the merger writes under.
std::string executor_series_label(const std::string& name, std::uint64_t executor_id);

}  // namespace flint::obs
