#include "flint/obs/telemetry.h"

#include <fstream>

#include "flint/obs/status.h"
#include "flint/util/check.h"

namespace flint::obs {

namespace {

std::atomic<Telemetry*> g_current{nullptr};
// Starts at 1 so the default-constructed cache generation (0) never matches.
std::atomic<std::uint64_t> g_generation{1};

}  // namespace

Telemetry::Telemetry(TelemetryConfig config)
    : config_(std::move(config)), tracer_(config_.max_trace_events) {
  FLINT_CHECK_FINITE(config_.snapshot_every_virtual_s);
  FLINT_CHECK_GE(config_.snapshot_every_virtual_s, 0.0);
  FLINT_CHECK_GT(config_.max_trace_events, std::size_t{0});
  tracer_.set_enabled(config_.tracing_enabled);
  next_snapshot_vt_ = config_.snapshot_every_virtual_s;
  if (!config_.status_out.empty() && config_.metrics_enabled) {
    StatusReporterConfig status_config;
    status_config.path = config_.status_out;
    status_config.every_wall_s = config_.status_every_wall_s;
    status_ = std::make_unique<StatusReporter>(std::move(status_config));
  }
}

Telemetry::~Telemetry() = default;

void Telemetry::maybe_status_line(bool force) {
  if (status_ != nullptr) status_->maybe_report(*this, force);
}

void Telemetry::maybe_snapshot() {
  if (!config_.metrics_enabled || config_.snapshot_every_virtual_s <= 0.0) return;
  double now = virtual_now();
  if (now < next_snapshot_vt_) return;
  // Catch up past idle gaps: one snapshot, cadence re-anchored after `now`.
  while (next_snapshot_vt_ <= now) next_snapshot_vt_ += config_.snapshot_every_virtual_s;
  snapshot_now();
}

void Telemetry::snapshot_now() {
  if (!config_.metrics_enabled) return;
  double now = virtual_now();
  auto samples = metrics_.snapshot();
  util::MutexLock lock(snapshot_mu_);
  for (const auto& s : samples) snapshot_rows_.push_back(s.to_jsonl(now));
}

std::size_t Telemetry::snapshot_row_count() const {
  util::MutexLock lock(snapshot_mu_);
  return snapshot_rows_.size();
}

bool Telemetry::write_metrics_jsonl(const std::string& path) {
  if (!config_.metrics_enabled) return false;
  snapshot_now();  // final state always lands in the file
  std::ofstream out(path);
  FLINT_CHECK_MSG(out.good(), "cannot write " << path);
  util::MutexLock lock(snapshot_mu_);
  for (const auto& row : snapshot_rows_) out << row << "\n";
  return true;
}

bool Telemetry::write_trace(const std::string& path) const {
  if (!config_.tracing_enabled) return false;
  std::ofstream out(path);
  FLINT_CHECK_MSG(out.good(), "cannot write " << path);
  tracer_.write_chrome_trace(out);
  return true;
}

void Telemetry::export_all() {
  maybe_status_line(/*force=*/true);
  if (!config_.metrics_out.empty()) write_metrics_jsonl(config_.metrics_out);
  if (!config_.trace_out.empty()) write_trace(config_.trace_out);
}

Telemetry* current() { return g_current.load(std::memory_order_acquire); }

std::uint64_t current_generation() {
  return g_generation.load(std::memory_order_acquire);
}

ScopedTelemetry::ScopedTelemetry(Telemetry* t) {
  previous_ = g_current.exchange(t, std::memory_order_acq_rel);
  g_generation.fetch_add(1, std::memory_order_acq_rel);
}

ScopedTelemetry::~ScopedTelemetry() {
  g_current.store(previous_, std::memory_order_release);
  g_generation.fetch_add(1, std::memory_order_acq_rel);
}

Counter* CachedCounter::resolve(const char* name) {
  std::uint64_t generation = current_generation();
  if (generation_ != generation) {
    generation_ = generation;
    Telemetry* t = current();
    ptr_ = (t != nullptr && t->config().metrics_enabled) ? &t->metrics().counter(name)
                                                         : nullptr;
  }
  return ptr_;
}

Gauge* CachedGauge::resolve(const char* name) {
  std::uint64_t generation = current_generation();
  if (generation_ != generation) {
    generation_ = generation;
    Telemetry* t = current();
    ptr_ = (t != nullptr && t->config().metrics_enabled) ? &t->metrics().gauge(name)
                                                         : nullptr;
  }
  return ptr_;
}

HistogramMetric* CachedHistogram::resolve(const char* name, double lo, double hi,
                                          std::size_t buckets) {
  std::uint64_t generation = current_generation();
  if (generation_ != generation) {
    generation_ = generation;
    Telemetry* t = current();
    ptr_ = (t != nullptr && t->config().metrics_enabled)
               ? &t->metrics().histogram(name, lo, hi, buckets)
               : nullptr;
  }
  return ptr_;
}

void add_counter(const char* name, std::uint64_t n) {
  Telemetry* t = current();
  if (t != nullptr && t->config().metrics_enabled) t->metrics().counter(name).add(n);
}

void set_gauge(const char* name, double value) {
  Telemetry* t = current();
  if (t != nullptr && t->config().metrics_enabled) t->metrics().gauge(name).set(value);
}

void record_histogram(const char* name, double value, double lo, double hi,
                      std::size_t buckets) {
  Telemetry* t = current();
  if (t != nullptr && t->config().metrics_enabled)
    t->metrics().histogram(name, lo, hi, buckets).record(value);
}

void advance_virtual_time(double t) {
  Telemetry* telemetry = current();
  if (telemetry == nullptr) return;
  telemetry->set_virtual_now(t);
  telemetry->maybe_snapshot();
  telemetry->maybe_status_line();
}

void tick_status() {
  Telemetry* telemetry = current();
  if (telemetry != nullptr) telemetry->maybe_status_line();
}

RpcSpanGuard::RpcSpanGuard(const char* name, const char* category, SpanContext parent,
                           std::uint64_t trace_id)
    : name_(name), category_(category) {
  Telemetry* t = obs::current();
  if (t == nullptr || !t->tracer().enabled()) return;
  telemetry_ = t;
  context_.trace_id = trace_id != 0 ? trace_id : parent.trace_id;
  context_.span_id = t->tracer().mint_span_id();
  parent_span_id_ = parent.span_id;
  token_ = t->tracer().begin_span(t->virtual_now());
}

RpcSpanGuard::~RpcSpanGuard() {
  if (telemetry_ == nullptr) return;
  telemetry_->tracer().end_span(token_, telemetry_->virtual_now(), name_, category_,
                                context_.trace_id, context_.span_id, parent_span_id_);
}

}  // namespace flint::obs
