// Dual-clock span tracer for the observability subsystem (flint::obs).
//
// The simulator reports results over a virtual clock computed independently
// of the hardware clock (§3.4), so a useful profile must answer two distinct
// questions: where does *virtual* time go (round pacing, staleness windows)
// and where does *wall* time go (the actual cost of running the simulation).
// Every span therefore carries both clocks, and the exporter emits each span
// on two Perfetto/chrome://tracing tracks — pid 1 plots wall microseconds,
// pid 2 plots virtual seconds scaled to microseconds — from one recording.
//
// Spans are opened and closed only through the RAII FLINT_TRACE_SPAN macro in
// telemetry.h (tools/flint_lint.py enforces this outside obs/): manual
// begin/end pairs in simulator code inevitably leak across the event-driven
// control flow.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "flint/util/thread_annotations.h"

namespace flint::obs {

/// One completed span on both clocks.
struct TraceEvent {
  const char* name = "";  ///< span sites pass string literals
  const char* category = "";
  double wall_start_us = 0.0;  ///< since tracer construction
  double wall_dur_us = 0.0;
  double virtual_start_s = 0.0;
  double virtual_dur_s = 0.0;
};

/// Bounded in-memory span buffer with Chrome trace-event JSON export.
/// Recording is mutex-serialized (spans are orders of magnitude rarer than
/// metric updates); the enabled() gate is an atomic so disabled tracing costs
/// one load at each span site.
class Tracer {
 public:
  explicit Tracer(std::size_t max_events = 1'000'000);

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  /// Wall microseconds since tracer construction (steady clock).
  double wall_now_us() const;

  struct SpanToken {
    double wall_start_us = 0.0;
    double virtual_start_s = 0.0;
    bool active = false;
  };

  // Low-level span API — call only through FLINT_TRACE_SPAN (lint-enforced
  // outside obs/). begin_span returns an inactive token when tracing is off.
  SpanToken begin_span(double virtual_now_s);
  void end_span(const SpanToken& token, double virtual_now_s, const char* name,
                const char* category) FLINT_EXCLUDES(mu_);

  std::size_t event_count() const FLINT_EXCLUDES(mu_);
  /// Spans discarded after the buffer filled.
  std::uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  /// Chrome trace-event JSON ({"traceEvents":[...]}), loadable in Perfetto.
  void write_chrome_trace(std::ostream& os) const FLINT_EXCLUDES(mu_);

 private:
  std::size_t max_events_;
  std::atomic<bool> enabled_{true};
  std::atomic<std::uint64_t> dropped_{0};
  std::chrono::steady_clock::time_point epoch_;
  mutable util::Mutex mu_;
  std::vector<TraceEvent> events_ FLINT_GUARDED_BY(mu_);
};

}  // namespace flint::obs
