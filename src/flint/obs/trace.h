// Dual-clock span tracer for the observability subsystem (flint::obs).
//
// The simulator reports results over a virtual clock computed independently
// of the hardware clock (§3.4), so a useful profile must answer two distinct
// questions: where does *virtual* time go (round pacing, staleness windows)
// and where does *wall* time go (the actual cost of running the simulation).
// Every span therefore carries both clocks, and the exporter emits each span
// on two Perfetto/chrome://tracing tracks — one plots wall microseconds, one
// plots virtual seconds scaled to microseconds — from one recording. A
// single-process run keeps the historical track pids {1, 2}; a process that
// calls set_process_info() derives its track pids from the OS pid so that the
// per-process traces of a multi-process run can be merged without collisions
// (tools/flint_trace_merge.py, DESIGN.md §15).
//
// Spans are opened and closed only through the RAII FLINT_TRACE_SPAN macro in
// telemetry.h (tools/flint_lint.py enforces this outside obs/): manual
// begin/end pairs in simulator code inevitably leak across the event-driven
// control flow. Cross-process spans additionally carry trace/span ids minted
// through mint_span_id() so an executor's lease span can name the leader's
// dispatch span as its parent across the wire (obs::RpcSpanGuard).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "flint/util/thread_annotations.h"

namespace flint::obs {

/// One completed span on both clocks. The id triple is zero for plain local
/// spans; rpc propagation spans carry leader-minted ids (DESIGN.md §15).
struct TraceEvent {
  const char* name = "";  ///< span sites pass string literals
  const char* category = "";
  double wall_start_us = 0.0;  ///< since tracer construction
  double wall_dur_us = 0.0;
  double virtual_start_s = 0.0;
  double virtual_dur_s = 0.0;
  std::uint64_t trace_id = 0;        ///< groups one lease's spans across processes
  std::uint64_t span_id = 0;         ///< unique within a run (see set_span_id_base)
  std::uint64_t parent_span_id = 0;  ///< 0 = root span of its trace
};

/// A span's identity as it travels across the wire (TaskLease/TaskResult
/// stamps). Zero-valued when tracing is off — receivers must treat a zero id
/// as "no context" rather than a real parent.
struct SpanContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
};

/// Bounded in-memory span buffer with Chrome trace-event JSON export.
/// Recording is mutex-serialized (spans are orders of magnitude rarer than
/// metric updates); the enabled() gate is an atomic so disabled tracing costs
/// one load at each span site.
class Tracer {
 public:
  explicit Tracer(std::size_t max_events = 1'000'000);

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  /// Wall microseconds since tracer construction (steady clock).
  double wall_now_us() const;

  struct SpanToken {
    double wall_start_us = 0.0;
    double virtual_start_s = 0.0;
    bool active = false;
  };

  // Low-level span API — call only through FLINT_TRACE_SPAN (lint-enforced
  // outside obs/). begin_span returns an inactive token when tracing is off.
  SpanToken begin_span(double virtual_now_s);
  void end_span(const SpanToken& token, double virtual_now_s, const char* name,
                const char* category) FLINT_EXCLUDES(mu_);
  /// Identified variant used by rpc propagation spans: also records the
  /// trace/span/parent ids so the merged cross-process trace can reconstruct
  /// the dispatch -> execute parentage.
  void end_span(const SpanToken& token, double virtual_now_s, const char* name,
                const char* category, std::uint64_t trace_id, std::uint64_t span_id,
                std::uint64_t parent_span_id) FLINT_EXCLUDES(mu_);

  /// Next process-unique span id: `base | counter`. The leader keeps the
  /// default base 0; executor processes set base = executor_id << 32 after
  /// registration so ids never collide across the fleet.
  std::uint64_t mint_span_id() {
    return span_id_base_.load(std::memory_order_relaxed) +
           next_span_id_.fetch_add(1, std::memory_order_relaxed);
  }
  void set_span_id_base(std::uint64_t base) {
    span_id_base_.store(base, std::memory_order_relaxed);
  }

  /// Label this recording as one role of a multi-process run ("leader",
  /// "executor-3"). Switches the exported track pids from the historical
  /// {1, 2} to OS-pid-derived values (wall 2*pid, virtual 2*pid+1) so merged
  /// traces stay collision-free, and orders Perfetto's process list by
  /// `sort_index` (leader 0, executor N at N).
  void set_process_info(const std::string& label, int sort_index) FLINT_EXCLUDES(mu_);

  /// Leader-clock alignment (DESIGN.md §15): `leader_wall_us - local_wall_us`
  /// sampled at the RegisterAck handshake. Stored verbatim into the exported
  /// file's `flint.clock_offset_us`; the merge tool shifts this process's
  /// wall timestamps by it. 0 for the leader itself.
  void set_clock_offset_us(double offset_us) {
    clock_offset_us_.store(offset_us, std::memory_order_relaxed);
  }
  double clock_offset_us() const { return clock_offset_us_.load(std::memory_order_relaxed); }

  std::size_t event_count() const FLINT_EXCLUDES(mu_);
  /// Point-in-time copy of the recorded spans (tests and tools).
  std::vector<TraceEvent> events_snapshot() const FLINT_EXCLUDES(mu_);
  /// Spans discarded after the buffer filled.
  std::uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  /// Chrome trace-event JSON ({"traceEvents":[...]}), loadable in Perfetto.
  /// Also carries a top-level "flint" object (role, os pid, clock offset)
  /// consumed by tools/flint_trace_merge.py.
  void write_chrome_trace(std::ostream& os) const FLINT_EXCLUDES(mu_);

 private:
  std::size_t max_events_;
  std::atomic<bool> enabled_{true};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> next_span_id_{1};
  std::atomic<std::uint64_t> span_id_base_{0};
  std::atomic<double> clock_offset_us_{0.0};
  std::chrono::steady_clock::time_point epoch_;
  mutable util::Mutex mu_;
  std::vector<TraceEvent> events_ FLINT_GUARDED_BY(mu_);
  std::string process_label_ FLINT_GUARDED_BY(mu_);  ///< empty = single-process
  int process_sort_index_ FLINT_GUARDED_BY(mu_) = 0;
};

}  // namespace flint::obs
