#include "flint/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "flint/util/check.h"

namespace flint::obs {

HistogramMetric::HistogramMetric(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), buckets_(buckets) {
  FLINT_CHECK_FINITE(lo);
  FLINT_CHECK_FINITE(hi);
  FLINT_CHECK_LT(lo, hi);
  FLINT_CHECK_GT(buckets, std::size_t{0});
}

void HistogramMetric::record(double x) {
  if (std::isnan(x)) return;  // a NaN sample has no bucket; drop it
  double pos = (x - lo_) / (hi_ - lo_) * static_cast<double>(buckets_.size());
  std::size_t idx;
  if (pos <= 0.0) {
    idx = 0;
  } else if (pos >= static_cast<double>(buckets_.size())) {
    idx = buckets_.size() - 1;
  } else {
    idx = static_cast<std::size_t>(pos);
  }
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // fetch_add on atomic<double> is C++20 but not universally lock-free; a CAS
  // loop keeps the sum exact and portable.
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + x, std::memory_order_relaxed)) {
  }
}

double HistogramMetric::mean() const {
  std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

const char* kind_name(MetricSample::Kind kind) {
  switch (kind) {
    case MetricSample::Kind::kCounter: return "counter";
    case MetricSample::Kind::kGauge: return "gauge";
    case MetricSample::Kind::kHistogram: return "histogram";
  }
  return "unknown";
}

namespace {

void append_json_number(std::ostringstream& os, double v) {
  // JSON has no NaN/inf literals; clamp to null which every parser accepts.
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  os << v;
}

// Series names are usually literals, but executor counters splice in ids, so
// escape defensively — an unescaped quote would corrupt the whole JSONL file.
void append_json_string(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

std::string MetricSample::to_jsonl(double virtual_time_s) const {
  std::ostringstream os;
  os.precision(12);
  os << "{\"series\":";
  append_json_string(os, name);
  os << ",\"type\":\"" << kind_name(kind) << "\",\"t_virtual_s\":";
  append_json_number(os, virtual_time_s);
  if (kind == Kind::kHistogram) {
    os << ",\"count\":" << count << ",\"sum\":";
    append_json_number(os, sum);
    os << ",\"mean\":";
    append_json_number(os, value);
    os << ",\"lo\":";
    append_json_number(os, lo);
    os << ",\"hi\":";
    append_json_number(os, hi);
    os << ",\"buckets\":[";
    for (std::size_t i = 0; i < buckets.size(); ++i) {
      if (i > 0) os << ",";
      os << buckets[i];
    }
    os << "]";
  } else {
    os << ",\"value\":";
    append_json_number(os, value);
  }
  os << "}";
  return os.str();
}

Counter& MetricRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

HistogramMetric& MetricRegistry::histogram(const std::string& name, double lo, double hi,
                                           std::size_t buckets) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<HistogramMetric>(lo, hi, buckets);
  return *slot;
}

std::size_t MetricRegistry::series_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

std::vector<MetricSample> MetricRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSample> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, c] : counters_) {
    MetricSample s;
    s.name = name;
    s.kind = MetricSample::Kind::kCounter;
    s.value = static_cast<double>(c->value());
    out.push_back(std::move(s));
  }
  for (const auto& [name, g] : gauges_) {
    MetricSample s;
    s.name = name;
    s.kind = MetricSample::Kind::kGauge;
    s.value = g->value();
    out.push_back(std::move(s));
  }
  for (const auto& [name, h] : histograms_) {
    MetricSample s;
    s.name = name;
    s.kind = MetricSample::Kind::kHistogram;
    s.count = h->count();
    s.sum = h->sum();
    s.value = s.count == 0 ? 0.0 : s.sum / static_cast<double>(s.count);
    s.lo = h->lo();
    s.hi = h->hi();
    s.buckets.reserve(h->bucket_count());
    for (std::size_t i = 0; i < h->bucket_count(); ++i) s.buckets.push_back(h->bucket(i));
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) { return a.name < b.name; });
  return out;
}

}  // namespace flint::obs
