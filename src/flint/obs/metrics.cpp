#include "flint/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "flint/util/check.h"

namespace flint::obs {

HistogramMetric::HistogramMetric(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), buckets_(buckets) {
  FLINT_CHECK_FINITE(lo);
  FLINT_CHECK_FINITE(hi);
  FLINT_CHECK_LT(lo, hi);
  FLINT_CHECK_GT(buckets, std::size_t{0});
}

void HistogramMetric::record(double x) {
  if (std::isnan(x)) return;  // a NaN sample has no bucket; drop it
  double pos = (x - lo_) / (hi_ - lo_) * static_cast<double>(buckets_.size());
  std::size_t idx;
  if (pos <= 0.0) {
    idx = 0;
  } else if (pos >= static_cast<double>(buckets_.size())) {
    idx = buckets_.size() - 1;
  } else {
    idx = static_cast<std::size_t>(pos);
  }
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // fetch_add on atomic<double> is C++20 but not universally lock-free; a CAS
  // loop keeps the sum exact and portable.
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + x, std::memory_order_relaxed)) {
  }
}

void HistogramMetric::merge_delta(std::uint64_t count_delta, double sum_delta,
                                  const std::vector<std::uint64_t>& bucket_deltas) {
  FLINT_CHECK_EQ(bucket_deltas.size(), buckets_.size());
  for (std::size_t i = 0; i < bucket_deltas.size(); ++i) {
    if (bucket_deltas[i] != 0)
      buckets_[i].fetch_add(bucket_deltas[i], std::memory_order_relaxed);
  }
  count_.fetch_add(count_delta, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + sum_delta, std::memory_order_relaxed)) {
  }
}

double HistogramMetric::mean() const {
  std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double HistogramMetric::quantile(double q) const {
  std::vector<std::uint64_t> counts;
  counts.reserve(buckets_.size());
  for (const auto& b : buckets_) counts.push_back(b.load(std::memory_order_relaxed));
  return histogram_quantile(q, lo_, hi_, counts);
}

double histogram_quantile(double q, double lo, double hi,
                          const std::vector<std::uint64_t>& buckets) {
  FLINT_CHECK_PROB(q);
  std::uint64_t total = 0;
  for (std::uint64_t b : buckets) total += b;
  if (total == 0 || buckets.empty()) return 0.0;
  // Rank of the target sample (1-based, midpoint convention): the smallest
  // rank r with cumulative(r) >= q * total, interpolated within its bucket
  // under a uniform-within-bucket assumption.
  double target = q * static_cast<double>(total);
  if (target < 1.0) target = 1.0;
  double width = (hi - lo) / static_cast<double>(buckets.size());
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    double before = static_cast<double>(cum);
    cum += buckets[i];
    if (static_cast<double>(cum) >= target) {
      double frac = (target - before) / static_cast<double>(buckets[i]);
      return lo + (static_cast<double>(i) + frac) * width;
    }
  }
  return hi;  // unreachable given total > 0, but keeps the compiler honest
}

double MetricSample::quantile(double q) const {
  if (kind != Kind::kHistogram) return 0.0;
  return histogram_quantile(q, lo, hi, buckets);
}

const char* kind_name(MetricSample::Kind kind) {
  switch (kind) {
    case MetricSample::Kind::kCounter: return "counter";
    case MetricSample::Kind::kGauge: return "gauge";
    case MetricSample::Kind::kHistogram: return "histogram";
  }
  return "unknown";
}

namespace {

void append_json_number(std::ostringstream& os, double v) {
  // JSON has no NaN/inf literals; clamp to null which every parser accepts.
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  os << v;
}

// Series names are usually literals, but executor counters splice in ids, so
// escape defensively — an unescaped quote would corrupt the whole JSONL file.
void append_json_string(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

std::string MetricSample::to_jsonl(double virtual_time_s) const {
  std::ostringstream os;
  os.precision(12);
  os << "{\"series\":";
  append_json_string(os, name);
  os << ",\"type\":\"" << kind_name(kind) << "\",\"t_virtual_s\":";
  append_json_number(os, virtual_time_s);
  if (kind == Kind::kHistogram) {
    os << ",\"count\":" << count << ",\"sum\":";
    append_json_number(os, sum);
    os << ",\"mean\":";
    append_json_number(os, value);
    os << ",\"p50\":";
    append_json_number(os, quantile(0.50));
    os << ",\"p95\":";
    append_json_number(os, quantile(0.95));
    os << ",\"p99\":";
    append_json_number(os, quantile(0.99));
    os << ",\"lo\":";
    append_json_number(os, lo);
    os << ",\"hi\":";
    append_json_number(os, hi);
    os << ",\"buckets\":[";
    for (std::size_t i = 0; i < buckets.size(); ++i) {
      if (i > 0) os << ",";
      os << buckets[i];
    }
    os << "]";
  } else {
    os << ",\"value\":";
    append_json_number(os, value);
  }
  os << "}";
  return os.str();
}

Counter& MetricRegistry::counter(const std::string& name) {
  util::MutexLock lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricRegistry::gauge(const std::string& name) {
  util::MutexLock lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

HistogramMetric& MetricRegistry::histogram(const std::string& name, double lo, double hi,
                                           std::size_t buckets) {
  util::MutexLock lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<HistogramMetric>(lo, hi, buckets);
  return *slot;
}

std::size_t MetricRegistry::series_count() const {
  util::MutexLock lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

std::vector<MetricSample> MetricRegistry::snapshot() const {
  util::MutexLock lock(mu_);
  std::vector<MetricSample> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, c] : counters_) {
    MetricSample s;
    s.name = name;
    s.kind = MetricSample::Kind::kCounter;
    s.value = static_cast<double>(c->value());
    out.push_back(std::move(s));
  }
  for (const auto& [name, g] : gauges_) {
    MetricSample s;
    s.name = name;
    s.kind = MetricSample::Kind::kGauge;
    s.value = g->value();
    out.push_back(std::move(s));
  }
  for (const auto& [name, h] : histograms_) {
    MetricSample s;
    s.name = name;
    s.kind = MetricSample::Kind::kHistogram;
    s.count = h->count();
    s.sum = h->sum();
    s.value = s.count == 0 ? 0.0 : s.sum / static_cast<double>(s.count);
    s.lo = h->lo();
    s.hi = h->hi();
    s.buckets.reserve(h->bucket_count());
    for (std::size_t i = 0; i < h->bucket_count(); ++i) s.buckets.push_back(h->bucket(i));
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) { return a.name < b.name; });
  return out;
}

}  // namespace flint::obs
