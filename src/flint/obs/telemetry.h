// Telemetry context: the integration point of flint::obs.
//
// A Telemetry object bundles one MetricRegistry and one Tracer behind a
// TelemetryConfig, tracks the simulator's virtual clock, and accumulates
// periodic JSONL metric snapshots. Exactly one Telemetry can be "ambient" at
// a time (ScopedTelemetry installs it); instrumented code reads it through
// obs::current(), which is a single atomic pointer load — when no telemetry
// is installed, every instrumented site reduces to load + branch, which is
// how the whole subsystem stays out of the hot path's way by default.
//
// Hot single-threaded sites cache their metric handles in Cached{Counter,
// Gauge,Histogram} members; the cache re-resolves when the ambient telemetry
// generation changes, so a stale handle can never dangle across runs.
// Cold or multi-threaded sites use the record_*/add_counter free functions,
// which do a registry lookup per call.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "flint/obs/metrics.h"
#include "flint/obs/trace.h"

namespace flint::obs {

class StatusReporter;

/// What to observe and where to put it.
struct TelemetryConfig {
  bool metrics_enabled = true;
  bool tracing_enabled = true;
  /// Output paths for export_all(); empty skips that file.
  std::string trace_out;
  std::string metrics_out;
  /// Live status stream (status.h): JSONL destination, empty = off. Written
  /// incrementally during the run, unlike the exit-time exports above.
  std::string status_out;
  double status_every_wall_s = 1.0;
  /// Virtual seconds between metric snapshots (0 = final snapshot only).
  double snapshot_every_virtual_s = 600.0;
  std::size_t max_trace_events = 1'000'000;

  bool enabled() const { return metrics_enabled || tracing_enabled; }
};

/// One run's (or one process's) observability state.
class Telemetry {
 public:
  explicit Telemetry(TelemetryConfig config);
  ~Telemetry();  // out-of-line: StatusReporter is incomplete here

  const TelemetryConfig& config() const { return config_; }
  MetricRegistry& metrics() { return metrics_; }
  const MetricRegistry& metrics() const { return metrics_; }
  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }

  /// Simulator-published virtual time, read by spans and snapshots.
  double virtual_now() const { return virtual_now_.load(std::memory_order_relaxed); }
  void set_virtual_now(double t) { virtual_now_.store(t, std::memory_order_relaxed); }

  /// Append a snapshot row set if the snapshot cadence has elapsed. Called
  /// from the event-queue pump; cheap when not due (one comparison).
  void maybe_snapshot();

  /// Unconditionally append a snapshot at the current virtual time.
  void snapshot_now() FLINT_EXCLUDES(snapshot_mu_);

  std::size_t snapshot_row_count() const FLINT_EXCLUDES(snapshot_mu_);

  /// Write accumulated snapshot rows plus one final snapshot as JSONL.
  /// Returns false (and writes nothing) when metrics are disabled.
  bool write_metrics_jsonl(const std::string& path) FLINT_EXCLUDES(snapshot_mu_);

  /// Write the Chrome trace-event JSON. Returns false (and writes nothing)
  /// when tracing is disabled.
  bool write_trace(const std::string& path) const;

  /// Export to the configured paths; no-op for empty/disabled outputs.
  /// Also forces a final status line so the stream ends with the end state.
  void export_all();

  /// The live status reporter, or nullptr when `status_out` is empty or
  /// metrics are disabled.
  StatusReporter* status() { return status_.get(); }

  /// Emit a status line if one is due; called from pump/advance paths.
  void maybe_status_line(bool force = false);

 private:
  TelemetryConfig config_;
  MetricRegistry metrics_;
  Tracer tracer_;
  std::unique_ptr<StatusReporter> status_;
  std::atomic<double> virtual_now_{0.0};
  // Touched only by the single-threaded event pump (maybe_snapshot), so it
  // needs no capability; the rows themselves are appended under the mutex.
  double next_snapshot_vt_ = 0.0;
  mutable util::Mutex snapshot_mu_;
  std::vector<std::string> snapshot_rows_ FLINT_GUARDED_BY(snapshot_mu_);
};

/// The ambient telemetry, or nullptr when none is installed.
Telemetry* current();

/// Bumped on every install/uninstall; cached handles key off it.
std::uint64_t current_generation();

/// Installs `t` as the ambient telemetry for this scope (nullptr allowed:
/// it masks an outer telemetry). Restores the previous one on destruction.
class ScopedTelemetry {
 public:
  explicit ScopedTelemetry(Telemetry* t);
  ~ScopedTelemetry();
  ScopedTelemetry(const ScopedTelemetry&) = delete;
  ScopedTelemetry& operator=(const ScopedTelemetry&) = delete;

 private:
  Telemetry* previous_;
};

// --- Cached handles for hot single-threaded call sites. --------------------

// Names are `const char*` on purpose: the common (disabled / already-cached)
// path must not construct a std::string — most series names exceed SSO, and
// a per-call heap allocation in the scheduler pick loop is a measurable
// bench regression. The string materializes only on an actual registry
// lookup.

class CachedCounter {
 public:
  /// The counter under the ambient telemetry, or nullptr when metrics are
  /// off. Re-resolves only when the telemetry generation changes.
  Counter* resolve(const char* name);

 private:
  Counter* ptr_ = nullptr;
  std::uint64_t generation_ = 0;  ///< 0 never matches a live generation
};

class CachedGauge {
 public:
  Gauge* resolve(const char* name);

 private:
  Gauge* ptr_ = nullptr;
  std::uint64_t generation_ = 0;
};

class CachedHistogram {
 public:
  HistogramMetric* resolve(const char* name, double lo, double hi, std::size_t buckets);

 private:
  HistogramMetric* ptr_ = nullptr;
  std::uint64_t generation_ = 0;
};

// --- Free-function recording for cold or multi-threaded sites. -------------

/// Increment a counter under the ambient telemetry (no-op when absent).
void add_counter(const char* name, std::uint64_t n = 1);

/// Set a gauge under the ambient telemetry (no-op when absent).
void set_gauge(const char* name, double value);

/// Record into a histogram under the ambient telemetry (no-op when absent).
void record_histogram(const char* name, double value, double lo, double hi,
                      std::size_t buckets);

/// Publish the simulator's virtual clock and fire any due snapshot (and, when
/// configured, any due status line). Runners that do not drive an EventQueue
/// (the sync FedAvg loop) call this directly.
void advance_virtual_time(double t);

/// Emit a live status line if one is due under the ambient telemetry (no-op
/// when absent or unconfigured). Called from wall-clock-driven loops — the
/// rpc leader's pump — that may spin without advancing virtual time.
void tick_status();

// --- RAII span guard (use via FLINT_TRACE_SPAN). ---------------------------

class SpanGuard {
 public:
  SpanGuard(const char* name, const char* category) : name_(name), category_(category) {
    Telemetry* t = obs::current();
    if (t != nullptr && t->tracer().enabled()) {
      telemetry_ = t;
      token_ = t->tracer().begin_span(t->virtual_now());
    }
  }
  ~SpanGuard() {
    if (telemetry_ != nullptr)
      telemetry_->tracer().end_span(token_, telemetry_->virtual_now(), name_, category_);
  }
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

 private:
  const char* name_;
  const char* category_;
  Telemetry* telemetry_ = nullptr;
  Tracer::SpanToken token_;
};

/// RAII span for rpc code that crosses process boundaries (DESIGN.md §15).
/// Unlike FLINT_TRACE_SPAN, the span has an identity: a trace id (the lease id
/// groups one task's spans fleet-wide), a freshly minted span id, and the
/// parent span id received over the wire. context() exposes the identity to
/// stamp onto the outgoing message. tools/flint_lint.py requires rpc code to
/// use this guard instead of the raw begin/end span API.
class RpcSpanGuard {
 public:
  /// `parent` is the wire-received context ({0,0} at a trace root);
  /// `trace_id` overrides the parent's trace id when non-zero (the leader
  /// passes the lease id when minting a root span).
  RpcSpanGuard(const char* name, const char* category, SpanContext parent,
               std::uint64_t trace_id = 0);
  ~RpcSpanGuard();
  RpcSpanGuard(const RpcSpanGuard&) = delete;
  RpcSpanGuard& operator=(const RpcSpanGuard&) = delete;

  /// This span's identity ({0,0} when tracing is off): stamp it onto the
  /// message whose handling it wraps.
  const SpanContext& context() const { return context_; }

 private:
  const char* name_;
  const char* category_;
  SpanContext context_;
  std::uint64_t parent_span_id_ = 0;
  Telemetry* telemetry_ = nullptr;
  Tracer::SpanToken token_;
};

/// Measures the wall latency of a scope into a cached histogram. Resolves the
/// histogram up front so a disabled telemetry costs one branch.
class LatencyTimer {
 public:
  LatencyTimer(CachedHistogram& cache, const char* name, double lo_us, double hi_us,
               std::size_t buckets)
      : histogram_(cache.resolve(name, lo_us, hi_us, buckets)) {
    if (histogram_ != nullptr) start_ = current()->tracer().wall_now_us();
  }
  ~LatencyTimer() {
    if (histogram_ != nullptr)
      histogram_->record(current()->tracer().wall_now_us() - start_);
  }
  LatencyTimer(const LatencyTimer&) = delete;
  LatencyTimer& operator=(const LatencyTimer&) = delete;

 private:
  HistogramMetric* histogram_;
  double start_ = 0.0;
};

}  // namespace flint::obs

#define FLINT_OBS_CONCAT_INNER_(a, b) a##b
#define FLINT_OBS_CONCAT_(a, b) FLINT_OBS_CONCAT_INNER_(a, b)

/// Open a dual-clock span for the rest of the enclosing scope. Near-zero cost
/// when no telemetry is installed or tracing is disabled (one pointer load
/// and branch). The only sanctioned way to create spans outside flint::obs.
#define FLINT_TRACE_SPAN(name, category) \
  ::flint::obs::SpanGuard FLINT_OBS_CONCAT_(flint_trace_span_, __LINE__)(name, category)
