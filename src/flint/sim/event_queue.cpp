#include "flint/sim/event_queue.h"

#include "flint/util/check.h"

namespace flint::sim {

void EventQueue::schedule(VirtualTime t, std::function<void()> fn) {
  FLINT_CHECK_FINITE(t);
  FLINT_CHECK_GE(t, now_);
  heap_.push({t, next_seq_++, std::move(fn)});
}

void EventQueue::schedule_in(VirtualTime delay, std::function<void()> fn) {
  FLINT_CHECK_FINITE(delay);
  FLINT_CHECK_GE(delay, 0.0);
  schedule(now_ + delay, std::move(fn));
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  // Copy out before pop so the callback can schedule new events freely.
  Event ev = heap_.top();
  heap_.pop();
  // Virtual-clock monotonicity: the heap can never yield an event earlier
  // than the last one executed (schedule() rejects past times, so a
  // violation here means heap-order corruption).
  FLINT_CHECK_GE(ev.time, now_);
  now_ = ev.time;
  ++executed_;
  if (obs::Telemetry* telemetry = obs::current(); telemetry != nullptr) {
    telemetry->set_virtual_now(now_);
    if (auto* c = events_counter_.resolve("sim.events_executed")) c->add(1);
    if (auto* g = depth_gauge_.resolve("sim.queue_depth"))
      g->set(static_cast<double>(heap_.size()));
    telemetry->maybe_snapshot();
  }
  ev.fn();
  return true;
}

void EventQueue::run(std::uint64_t max_events) {
  std::uint64_t budget = max_events;
  while (budget-- > 0 && step()) {
  }
}

void EventQueue::run_until(VirtualTime t) {
  FLINT_CHECK_FINITE(t);
  FLINT_CHECK_GE(t, now_);
  while (!heap_.empty() && heap_.top().time <= t) step();
  now_ = t;
}

void EventQueue::advance_to(VirtualTime t) {
  FLINT_CHECK_FINITE(t);
  FLINT_CHECK_GE(t, now_);
  if (!heap_.empty()) FLINT_CHECK_GE(heap_.top().time, t);
  now_ = t;
}

}  // namespace flint::sim
