// Client task descriptors shared by the leader, executors, and metrics.
#pragma once

#include <cstdint>
#include <vector>

#include "flint/sim/event_queue.h"

namespace flint::sim {

/// Why a client task ended.
enum class TaskOutcome {
  kSucceeded,    ///< update delivered and aggregated (or buffered)
  kInterrupted,  ///< device left availability before finishing
  kStale,        ///< finished, but update discarded (staleness / round over)
  kFailed,       ///< infrastructure failure (executor outage)
};

inline const char* outcome_name(TaskOutcome o) {
  switch (o) {
    case TaskOutcome::kSucceeded: return "succeeded";
    case TaskOutcome::kInterrupted: return "interrupted";
    case TaskOutcome::kStale: return "stale";
    case TaskOutcome::kFailed: return "failed";
  }
  return "?";
}

/// A dispatched client task.
struct TaskSpec {
  std::uint64_t task_id = 0;
  std::uint64_t client_id = 0;
  std::size_t device_index = 0;
  std::uint64_t model_version = 0;  ///< global version the client trained on
  VirtualTime dispatch_time = 0.0;
  double compute_s = 0.0;  ///< on-device training time (t * E * |D_k|)
  double comm_s = 0.0;     ///< model down+up transfer time (2M / N)
  std::size_t examples = 0;
  /// Update size M in bytes (also the model download size); attribution
  /// bookkeeping derives per-client bytes up/down from it.
  std::uint64_t update_bytes = 0;

  double duration_s() const { return compute_s + comm_s; }
};

/// A finished task with its payload.
struct TaskResult {
  TaskSpec spec;
  TaskOutcome outcome = TaskOutcome::kSucceeded;
  VirtualTime finish_time = 0.0;
  double spent_compute_s = 0.0;  ///< device compute actually consumed
  std::vector<float> update;     ///< parameter delta (empty if discarded early)
  double train_loss = 0.0;
};

}  // namespace flint::sim
