// System metrics the experimental framework reports alongside model metrics:
// task accounting (Figure 8), client compute time (Table 3), round/buffer
// durations (Figure 7), and aggregation throughput for TEE sizing (§3.5).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "flint/obs/client_ledger.h"
#include "flint/sim/task.h"
#include "flint/store/checkpoint.h"

namespace flint::sim {

/// One aggregation round's record.
struct RoundRecord {
  std::uint64_t round = 0;
  VirtualTime start = 0.0;
  VirtualTime end = 0.0;
  std::size_t updates_aggregated = 0;
  double mean_staleness = 0.0;

  double duration_s() const { return end - start; }
};

/// Periodic model evaluation point.
struct EvalPoint {
  VirtualTime time = 0.0;
  std::uint64_t round = 0;
  double metric = 0.0;  ///< AUPR / NDCG
  double train_loss = 0.0;
};

/// One leader checkpoint write, for the run timeline.
struct CheckpointRecord {
  std::uint64_t round = 0;
  VirtualTime time = 0.0;
};

/// Accumulated system metrics for one simulation run.
class SimMetrics {
 public:
  void on_task_started() { ++tasks_started_; }
  void on_task_finished(const TaskResult& result);
  void on_round(const RoundRecord& record);
  void on_checkpoint(const CheckpointRecord& record) { checkpoints_.push_back(record); }

  /// Attach a per-client attribution ledger (non-owning; must outlive the
  /// metrics' use). Every subsequent on_task_finished is mirrored into it,
  /// so ledger totals reconcile with the aggregate counters by construction.
  void attach_ledger(obs::ClientLedger* ledger) { ledger_ = ledger; }

  std::uint64_t tasks_started() const { return tasks_started_; }
  std::uint64_t tasks_succeeded() const { return tasks_succeeded_; }
  std::uint64_t tasks_interrupted() const { return tasks_interrupted_; }
  std::uint64_t tasks_stale() const { return tasks_stale_; }
  std::uint64_t tasks_failed() const { return tasks_failed_; }

  /// Total on-device compute consumed, including wasted work ("client
  /// computation is the projected sum of processing time on all devices").
  double client_compute_s() const { return client_compute_s_; }

  std::uint64_t updates_aggregated() const { return updates_aggregated_; }
  std::uint64_t aggregations() const { return rounds_.size(); }
  const std::vector<RoundRecord>& rounds() const { return rounds_; }
  const std::vector<CheckpointRecord>& checkpoints() const { return checkpoints_; }

  /// Mean round (buffer-fill) duration over completed rounds.
  double mean_round_duration_s() const;

  /// Aggregated updates per virtual second over [0, horizon]. A non-positive
  /// or non-finite horizon returns 0 (never NaN/inf, never throws).
  double updates_per_second(VirtualTime horizon) const;

  /// Fraction of started tasks whose work was wasted (not aggregated).
  double waste_fraction() const;

  std::string summary() const;

  /// Checkpointable copy of the accumulated state (counters, round records,
  /// checkpoint-write records). The attached ledger is snapshotted separately
  /// by the attribution layer that owns it.
  store::CheckpointMetrics snapshot() const;

  /// Restore state captured by snapshot() (checkpoint resume). Leaves the
  /// attached ledger untouched.
  void restore(const store::CheckpointMetrics& snapshot);

 private:
  std::uint64_t tasks_started_ = 0;
  std::uint64_t tasks_succeeded_ = 0;
  std::uint64_t tasks_interrupted_ = 0;
  std::uint64_t tasks_stale_ = 0;
  std::uint64_t tasks_failed_ = 0;
  double client_compute_s_ = 0.0;
  std::uint64_t updates_aggregated_ = 0;
  std::vector<RoundRecord> rounds_;
  std::vector<CheckpointRecord> checkpoints_;
  obs::ClientLedger* ledger_ = nullptr;  ///< non-owning; null = no attribution
};

}  // namespace flint::sim
