#include "flint/sim/scheduler.h"

#include "flint/util/check.h"

namespace flint::sim {

ArrivalScheduler::ArrivalScheduler(const device::AvailabilityTrace& trace) : trace_(&trace) {}

ArrivalScheduler::ArrivalScheduler(device::WindowStream& stream) : stream_(&stream) {}

const device::AvailabilityWindow* ArrivalScheduler::peek_window() {
  if (trace_ != nullptr) {
    const auto& windows = trace_->windows();
    return cursor_ < windows.size() ? &windows[cursor_] : nullptr;
  }
  if (!lookahead_.has_value() && !stream_exhausted_) {
    lookahead_ = stream_->next();
    if (!lookahead_.has_value()) stream_exhausted_ = true;
  }
  return lookahead_.has_value() ? &*lookahead_ : nullptr;
}

void ArrivalScheduler::pop_window() {
  ++cursor_;
  lookahead_.reset();
}

std::optional<Arrival> ArrivalScheduler::trace_candidate(VirtualTime t) {
  while (const auto* w = peek_window()) {
    if (w->end <= t) {
      pop_window();  // window fully in the past: consume silently
      continue;
    }
    return Arrival{std::max<VirtualTime>(w->start, t), w->client_id, w->device_index, w->end};
  }
  return std::nullopt;
}

std::optional<Arrival> ArrivalScheduler::next(VirtualTime t) {
  FLINT_CHECK_FINITE(t);
  // Pick latency is the leader's per-task scheduling cost (§3.4's "priority
  // queue-based task scheduler"); it bounds dispatch throughput.
  obs::LatencyTimer timer(pick_latency_, "sim.pick_latency_us", 0.0, 50.0, 50);
  if (auto* c = picks_counter_.resolve("sim.scheduler_picks")) c->add(1);
  // Drop requeued arrivals whose window has closed.
  while (!requeued_.empty() && requeued_.top().arrival.window_end <= t) requeued_.pop();

  std::optional<Arrival> picked;
  std::optional<Arrival> from_trace = trace_candidate(t);
  if (!requeued_.empty()) {
    Arrival r = requeued_.top().arrival;
    r.time = std::max(r.time, t);
    if (!from_trace.has_value() || r.time <= from_trace->time) {
      requeued_.pop();
      picked = r;
    }
  }
  if (!picked.has_value() && from_trace.has_value()) {
    pop_window();  // consume the source window
    picked = from_trace;
  }
  if (picked.has_value()) {
    // Priority order: arrivals are delivered at or after the query time and
    // strictly inside their availability window.
    FLINT_CHECK_GE(picked->time, t);
    FLINT_CHECK_LT(picked->time, picked->window_end);
  }
  return picked;
}

std::optional<VirtualTime> ArrivalScheduler::peek_time(VirtualTime t) {
  while (!requeued_.empty() && requeued_.top().arrival.window_end <= t) requeued_.pop();
  std::optional<Arrival> from_trace = trace_candidate(t);
  std::optional<VirtualTime> best;
  if (from_trace.has_value()) best = from_trace->time;
  if (!requeued_.empty()) {
    VirtualTime rt = std::max(requeued_.top().arrival.time, t);
    if (!best.has_value() || rt < *best) best = rt;
  }
  return best;
}

void ArrivalScheduler::requeue(Arrival arrival, VirtualTime retry_time) {
  FLINT_CHECK_FINITE(retry_time);
  FLINT_CHECK_GE(retry_time, arrival.time);
  if (retry_time >= arrival.window_end) return;  // nothing left of the window
  arrival.time = retry_time;
  requeued_.push({arrival, next_requeue_seq_++});
}

std::size_t ArrivalScheduler::remaining_windows() const {
  FLINT_CHECK_MSG(trace_ != nullptr, "remaining_windows() needs a trace-backed scheduler");
  return trace_->windows().size() - cursor_;
}

std::vector<Arrival> ArrivalScheduler::requeued_snapshot() const {
  auto copy = requeued_;
  std::vector<Arrival> out;
  out.reserve(copy.size());
  while (!copy.empty()) {
    out.push_back(copy.top().arrival);
    copy.pop();
  }
  return out;
}

void ArrivalScheduler::restore(std::size_t cursor, const std::vector<Arrival>& requeued) {
  if (trace_ != nullptr) {
    FLINT_CHECK_LE(cursor, trace_->windows().size());
    cursor_ = cursor;
  } else {
    // A stream only moves forward: replay (discard) windows up to the
    // checkpoint cursor. Restoring backwards would need a fresh stream.
    FLINT_CHECK_GE(cursor, cursor_);
    while (cursor_ < cursor) {
      FLINT_CHECK_MSG(peek_window() != nullptr, "restore cursor past end of window stream");
      pop_window();
    }
  }
  requeued_ = {};
  next_requeue_seq_ = 0;
  // Re-inserting in snapshot (pop) order with fresh sequence numbers keeps
  // the pop order identical, and any retry requeued after the resume gets a
  // larger seq — exactly as it would have in the uninterrupted run.
  for (const Arrival& a : requeued) requeued_.push({a, next_requeue_seq_++});
}

}  // namespace flint::sim
