// Leader-node plumbing shared by the sync (FedAvg) and async (FedBuff)
// runners: the event queue, the arrival scheduler, the executor pool with
// health gating, metrics, and periodic checkpointing (§3.4).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "flint/sim/event_queue.h"
#include "flint/sim/executor.h"
#include "flint/sim/scheduler.h"
#include "flint/sim/sim_metrics.h"
#include "flint/store/checkpoint.h"

namespace flint::sim {

/// Leader configuration.
struct LeaderConfig {
  std::size_t executor_count = 20;
  /// Write a checkpoint every N aggregation rounds (0 disables).
  std::uint64_t checkpoint_every_rounds = 0;
  /// Where checkpoints go; required when checkpoint_every_rounds > 0.
  store::CheckpointStore* checkpoint_store = nullptr;
};

/// Shared leader state. FL runners own one and drive it.
class Leader {
 public:
  Leader(const LeaderConfig& config, const device::AvailabilityTrace& trace);
  /// Streaming variant: arrivals come from a lazy window stream instead of a
  /// materialized trace (DESIGN.md §17). The stream must outlive the leader.
  Leader(const LeaderConfig& config, device::WindowStream& windows);

  EventQueue& queue() { return queue_; }
  ArrivalScheduler& arrivals() { return arrivals_; }
  ExecutorPool& executors() { return executors_; }
  SimMetrics& metrics() { return metrics_; }
  const SimMetrics& metrics() const { return metrics_; }

  /// Earliest time >= t at which tasks may be dispatched: the leader halts
  /// dispatching while any executor is unhealthy.
  VirtualTime dispatch_gate(VirtualTime t) const { return executors_.next_all_healthy(t); }

  /// Record an aggregation; writes a checkpoint when the cadence triggers.
  /// `fill_state`, when provided, is called on the partially-built checkpoint
  /// (base fields set) so the runner can add its full resume state — server
  /// optimizer/RNG, scheduler cursors, metrics, the FedBuff buffer. It runs
  /// only when a checkpoint is actually written.
  void on_aggregation(std::uint64_t round, const std::vector<float>& model_parameters,
                      std::uint64_t tasks_completed,
                      const std::function<void(store::SimCheckpoint&)>& fill_state = nullptr);

  /// Restore aggregation progress from a checkpoint (resume path): the last
  /// aggregation round, the checkpoints-written count, and the metrics state.
  void restore(const store::SimCheckpoint& checkpoint);

  /// Checkpoints written so far (including those before a resume).
  std::uint64_t checkpoints_written() const { return checkpoints_written_; }

 private:
  LeaderConfig config_;
  EventQueue queue_;
  ArrivalScheduler arrivals_;
  ExecutorPool executors_;
  SimMetrics metrics_;
  std::uint64_t checkpoints_written_ = 0;
  std::uint64_t last_aggregation_round_ = 0;
};

}  // namespace flint::sim
