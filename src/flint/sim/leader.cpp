#include "flint/sim/leader.h"

#include "flint/obs/telemetry.h"
#include "flint/util/check.h"

namespace flint::sim {

Leader::Leader(const LeaderConfig& config, const device::AvailabilityTrace& trace)
    : config_(config), arrivals_(trace), executors_(config.executor_count) {
  if (config_.checkpoint_every_rounds > 0)
    FLINT_CHECK_MSG(config_.checkpoint_store != nullptr,
                    "checkpoint cadence set but no checkpoint store provided");
}

Leader::Leader(const LeaderConfig& config, device::WindowStream& windows)
    : config_(config), arrivals_(windows), executors_(config.executor_count) {
  if (config_.checkpoint_every_rounds > 0)
    FLINT_CHECK_MSG(config_.checkpoint_store != nullptr,
                    "checkpoint cadence set but no checkpoint store provided");
}

void Leader::on_aggregation(std::uint64_t round, const std::vector<float>& model_parameters,
                            std::uint64_t tasks_completed,
                            const std::function<void(store::SimCheckpoint&)>& fill_state) {
  // Aggregations are numbered from 1 and arrive in order on the virtual
  // clock; a regression here means a runner replayed or skipped a round.
  FLINT_CHECK_GT(round, std::uint64_t{0});
  FLINT_CHECK_GT(round, last_aggregation_round_);
  last_aggregation_round_ = round;
  if (config_.checkpoint_every_rounds == 0) return;
  if (round % config_.checkpoint_every_rounds != 0) return;
  FLINT_TRACE_SPAN("leader.checkpoint", "store");
  // The sync runner drives virtual time by hand and never pumps queue_, so
  // the just-recorded round's end (on_round always precedes on_aggregation)
  // is the authoritative clock for both runners.
  VirtualTime now = metrics_.rounds().empty() ? queue_.now() : metrics_.rounds().back().end;
  // Record this write before snapshotting so a run resumed from the
  // checkpoint replays it in its own timeline, keeping the checkpoint-record
  // list bit-identical to an uninterrupted run's.
  ++checkpoints_written_;
  metrics_.on_checkpoint({round, now});
  store::SimCheckpoint ckpt;
  ckpt.virtual_time_s = now;
  ckpt.round = round;
  ckpt.tasks_completed = tasks_completed;
  ckpt.model_parameters = model_parameters;
  ckpt.checkpoints_written = checkpoints_written_;
  if (fill_state) fill_state(ckpt);
  config_.checkpoint_store->write(ckpt);
  obs::add_counter("leader.checkpoints_written");
}

void Leader::restore(const store::SimCheckpoint& checkpoint) {
  last_aggregation_round_ = checkpoint.round;
  checkpoints_written_ = checkpoint.checkpoints_written;
  metrics_.restore(checkpoint.metrics);
}

}  // namespace flint::sim
