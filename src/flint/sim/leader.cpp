#include "flint/sim/leader.h"

#include "flint/util/check.h"

namespace flint::sim {

Leader::Leader(const LeaderConfig& config, const device::AvailabilityTrace& trace)
    : config_(config), arrivals_(trace), executors_(config.executor_count) {
  if (config_.checkpoint_every_rounds > 0)
    FLINT_CHECK_MSG(config_.checkpoint_store != nullptr,
                    "checkpoint cadence set but no checkpoint store provided");
}

void Leader::on_aggregation(std::uint64_t round, const std::vector<float>& model_parameters,
                            std::uint64_t tasks_completed) {
  if (config_.checkpoint_every_rounds == 0) return;
  if (round % config_.checkpoint_every_rounds != 0) return;
  store::SimCheckpoint ckpt;
  ckpt.virtual_time_s = queue_.now();
  ckpt.round = round;
  ckpt.tasks_completed = tasks_completed;
  ckpt.model_parameters = model_parameters;
  config_.checkpoint_store->write(ckpt);
  ++checkpoints_written_;
}

}  // namespace flint::sim
