// Fault injection for the scalability/fault-tolerance tests (§3.4): "a job
// could run for days on more than 100 machines. At this scale, the job needs
// to be fault-tolerant and self-healing."
#pragma once

#include <vector>

#include "flint/sim/executor.h"
#include "flint/util/rng.h"

namespace flint::sim {

/// Random outage plan parameters.
struct FaultPlanConfig {
  double mean_time_between_failures_s = 4.0 * 3600.0;  ///< per executor
  double mean_outage_s = 300.0;
  VirtualTime horizon_s = 24.0 * 3600.0;
};

/// Draw a random outage schedule for `executors` executors over the horizon
/// (exponential inter-failure times, exponential outage durations).
std::vector<ExecutorOutage> plan_faults(std::size_t executors, const FaultPlanConfig& config,
                                        util::Rng& rng);

}  // namespace flint::sim
