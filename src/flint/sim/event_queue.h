// Discrete-event simulation kernel with a virtual clock. The experimental
// framework "reports results over a virtual time that's calculated
// independently of the underlying hardware clock" (§3.4); every FL runner is
// built on this queue.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "flint/obs/telemetry.h"

namespace flint::sim {

/// Virtual seconds since simulation start.
using VirtualTime = double;

/// Min-heap of timed callbacks. Ties are broken by insertion order, which
/// makes execution deterministic (the paper's async scheduler must "dispatch
/// them to workers in the correct order").
class EventQueue {
 public:
  /// Schedule `fn` at absolute virtual time `t` (must be >= now()).
  void schedule(VirtualTime t, std::function<void()> fn);

  /// Schedule `fn` `delay` seconds from now.
  void schedule_in(VirtualTime delay, std::function<void()> fn);

  /// Pop and run the earliest event, advancing the clock. Returns false when
  /// the queue is empty.
  bool step();

  /// Run until the queue is empty or `max_events` have executed.
  void run(std::uint64_t max_events = UINT64_MAX);

  /// Run events with time <= t, then set the clock to exactly t.
  void run_until(VirtualTime t);

  /// Set the clock to exactly t without executing anything. Every pending
  /// event must be at or after t. Checkpoint resume uses this to fast-forward
  /// to the snapshot's virtual time before re-scheduling restored events.
  void advance_to(VirtualTime t);

  VirtualTime now() const { return now_; }
  std::size_t pending() const { return heap_.size(); }
  std::uint64_t executed() const { return executed_; }

 private:
  struct Event {
    VirtualTime time;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  VirtualTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  // The pump is the simulator's hottest loop, so telemetry handles are cached
  // rather than looked up per event; without ambient telemetry the per-event
  // cost is one pointer load and branch.
  obs::CachedCounter events_counter_;
  obs::CachedGauge depth_gauge_;
};

}  // namespace flint::sim
