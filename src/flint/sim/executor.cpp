#include "flint/sim/executor.h"

#include <algorithm>

#include "flint/util/check.h"

namespace flint::sim {

ExecutorPool::ExecutorPool(std::size_t count)
    : count_(count), tasks_run_(count, 0), task_counters_(count) {
  FLINT_CHECK(count > 0);
  task_counter_names_.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    task_counter_names_.push_back("sim.executor." + std::to_string(i) + ".tasks");
}

void ExecutorPool::set_partitioning(const data::ExecutorPartitioning& partitioning) {
  FLINT_CHECK_MSG(partitioning.executor_count() == count_,
                  "partitioning has " << partitioning.executor_count() << " executors, pool has "
                                      << count_);
  std::uint64_t max_client = 0;
  for (const auto& part : partitioning.partitions)
    for (std::uint64_t c : part) max_client = std::max(max_client, c);
  client_executor_.assign(max_client + 1, 0);
  for (std::size_t p = 0; p < partitioning.partitions.size(); ++p)
    for (std::uint64_t c : partitioning.partitions[p])
      client_executor_[c] = static_cast<std::uint32_t>(p);
  has_partitioning_ = true;
}

std::size_t ExecutorPool::executor_of(std::uint64_t client) const {
  if (has_partitioning_ && client < client_executor_.size()) return client_executor_[client];
  return static_cast<std::size_t>(client % count_);
}

void ExecutorPool::add_outage(ExecutorOutage outage) {
  FLINT_CHECK(outage.executor < count_);
  FLINT_CHECK(outage.end > outage.start);
  outages_.push_back(outage);
}

bool ExecutorPool::healthy_at(std::size_t executor, VirtualTime t) const {
  FLINT_CHECK(executor < count_);
  for (const auto& o : outages_)
    if (o.executor == executor && t >= o.start && t < o.end) return false;
  return true;
}

bool ExecutorPool::all_healthy_at(VirtualTime t) const {
  for (const auto& o : outages_)
    if (t >= o.start && t < o.end) return false;
  return true;
}

VirtualTime ExecutorPool::next_all_healthy(VirtualTime t) const {
  // Advance past overlapping outages until a fixed point.
  VirtualTime cur = t;
  bool moved = true;
  while (moved) {
    moved = false;
    for (const auto& o : outages_) {
      if (cur >= o.start && cur < o.end) {
        cur = o.end;
        moved = true;
      }
    }
  }
  return cur;
}

void ExecutorPool::record_task(std::size_t executor) {
  FLINT_CHECK(executor < count_);
  ++tasks_run_[executor];
  if (auto* c = task_counters_[executor].resolve(task_counter_names_[executor].c_str()))
    c->add(1);
}

std::uint64_t ExecutorPool::tasks_run(std::size_t executor) const {
  FLINT_CHECK(executor < count_);
  return tasks_run_[executor];
}

std::uint64_t ExecutorPool::total_tasks_run() const {
  std::uint64_t total = 0;
  for (std::uint64_t n : tasks_run_) total += n;
  return total;
}

}  // namespace flint::sim
