#include "flint/sim/fault_injector.h"

#include "flint/util/check.h"

namespace flint::sim {

std::vector<ExecutorOutage> plan_faults(std::size_t executors, const FaultPlanConfig& config,
                                        util::Rng& rng) {
  FLINT_CHECK(executors > 0);
  FLINT_CHECK(config.mean_time_between_failures_s > 0.0);
  FLINT_CHECK(config.mean_outage_s > 0.0);
  std::vector<ExecutorOutage> outages;
  for (std::size_t e = 0; e < executors; ++e) {
    VirtualTime t = 0.0;
    while (true) {
      t += rng.exponential(1.0 / config.mean_time_between_failures_s);
      if (t >= config.horizon_s) break;
      double outage = rng.exponential(1.0 / config.mean_outage_s);
      outages.push_back({e, t, std::min(t + outage, config.horizon_s)});
      t += outage;
    }
  }
  return outages;
}

}  // namespace flint::sim
