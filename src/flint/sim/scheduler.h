// Streaming client-arrival scheduler. The paper's leader "directly selects
// the next available device from the input sessions at a given virtual time"
// and, for async mode, "uses a priority queue-based task scheduler to
// generate tasks in a streaming fashion and dispatch them in the correct
// order" (§3.4). ArrivalScheduler merges the time-sorted availability windows
// with a requeue heap (clients deferred because they were busy or the
// concurrency limit was reached).
#pragma once

#include <cstdint>
#include <optional>
#include <queue>
#include <vector>

#include "flint/device/availability.h"
#include "flint/obs/telemetry.h"
#include "flint/sim/event_queue.h"

namespace flint::sim {

/// A client becoming available for work.
struct Arrival {
  VirtualTime time = 0.0;          ///< when the device can start
  std::uint64_t client_id = 0;
  std::size_t device_index = 0;
  VirtualTime window_end = 0.0;    ///< end of the availability window
};

/// Ordered stream of arrivals over an availability trace, or over a lazy
/// WindowStream (same arrival sequence, no materialized window vector).
class ArrivalScheduler {
 public:
  explicit ArrivalScheduler(const device::AvailabilityTrace& trace);
  /// Streaming source (DESIGN.md §17). The stream must outlive the scheduler
  /// and yield windows non-decreasing in start; the scheduler consumes it
  /// through a one-window lookahead, so population size never lands in
  /// resident memory here.
  explicit ArrivalScheduler(device::WindowStream& stream);

  /// Earliest arrival with effective time >= t. Windows already open at t
  /// arrive at exactly t; windows fully before t are skipped (consumed).
  /// Consumes the returned arrival. nullopt when the trace is exhausted and
  /// the requeue heap is empty.
  std::optional<Arrival> next(VirtualTime t);

  /// Time of the arrival next() would return, without consuming it.
  std::optional<VirtualTime> peek_time(VirtualTime t);

  /// Put an arrival back to be re-offered at `retry_time` (if still within
  /// its window). Used when a client was selected but could not be
  /// dispatched (busy executor, concurrency cap).
  void requeue(Arrival arrival, VirtualTime retry_time);

  /// Windows not yet consumed from the trace (requeued arrivals excluded).
  /// Trace-backed schedulers only: a stream does not know its length.
  std::size_t remaining_windows() const;

  /// Windows already consumed from the source — the checkpoint cursor.
  std::size_t cursor() const { return cursor_; }

  /// Requeued arrivals in deterministic pop order (time, then requeue order),
  /// without consuming them. Pairs with restore() for checkpointing.
  std::vector<Arrival> requeued_snapshot() const;

  /// Restore checkpointed state: the window cursor plus requeued arrivals in
  /// the order requeued_snapshot() returned them. The trace (or stream)
  /// passed to the constructor must match the one the checkpointed run used;
  /// a stream-backed scheduler can only restore forward (it replays the
  /// stream up to the cursor).
  void restore(std::size_t cursor, const std::vector<Arrival>& requeued);

 private:
  // The requeue heap orders by retry time with insertion order breaking ties,
  // so equal-time retries pop in the order they were requeued — a stable
  // order a resumed run can reproduce exactly.
  struct QueuedArrival {
    Arrival arrival;
    std::uint64_t seq = 0;
  };
  struct LaterArrival {
    bool operator()(const QueuedArrival& a, const QueuedArrival& b) const {
      if (a.arrival.time != b.arrival.time) return a.arrival.time > b.arrival.time;
      return a.seq > b.seq;
    }
  };

  std::optional<Arrival> trace_candidate(VirtualTime t);
  // Unified view over the two sources: the head window not yet consumed
  // (nullptr when exhausted), and its consumption.
  const device::AvailabilityWindow* peek_window();
  void pop_window();

  const device::AvailabilityTrace* trace_ = nullptr;
  device::WindowStream* stream_ = nullptr;
  std::optional<device::AvailabilityWindow> lookahead_;
  bool stream_exhausted_ = false;
  std::size_t cursor_ = 0;
  std::priority_queue<QueuedArrival, std::vector<QueuedArrival>, LaterArrival> requeued_;
  std::uint64_t next_requeue_seq_ = 0;
  obs::CachedHistogram pick_latency_;  ///< wall cost of next(), microseconds
  obs::CachedCounter picks_counter_;
};

}  // namespace flint::sim
