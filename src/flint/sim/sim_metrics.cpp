#include "flint/sim/sim_metrics.h"

#include <cmath>
#include <sstream>

#include "flint/util/check.h"

namespace flint::sim {

void SimMetrics::on_task_finished(const TaskResult& result) {
  // Task-state transition: a task can only finish after being started, and
  // only once (finished counts never exceed started).
  std::uint64_t finished =
      tasks_succeeded_ + tasks_interrupted_ + tasks_stale_ + tasks_failed_;
  FLINT_CHECK_LT(finished, tasks_started_);
  FLINT_CHECK_GE(result.spent_compute_s, 0.0);
  FLINT_CHECK_FINITE(result.spent_compute_s);
  FLINT_CHECK_GE(result.finish_time, result.spec.dispatch_time);
  client_compute_s_ += result.spent_compute_s;
  obs::LedgerOutcome ledger_outcome = obs::LedgerOutcome::kSucceeded;
  switch (result.outcome) {
    case TaskOutcome::kSucceeded:
      ++tasks_succeeded_;
      ++updates_aggregated_;
      ledger_outcome = obs::LedgerOutcome::kSucceeded;
      break;
    case TaskOutcome::kInterrupted:
      ++tasks_interrupted_;
      ledger_outcome = obs::LedgerOutcome::kInterrupted;
      break;
    case TaskOutcome::kStale:
      ++tasks_stale_;
      ledger_outcome = obs::LedgerOutcome::kStale;
      break;
    case TaskOutcome::kFailed:
      ++tasks_failed_;
      ledger_outcome = obs::LedgerOutcome::kFailed;
      break;
  }
  if (ledger_ != nullptr)
    ledger_->on_task_finished(result.spec.client_id, ledger_outcome, result.spent_compute_s,
                              result.spec.update_bytes);
}

void SimMetrics::on_round(const RoundRecord& record) {
  // Rounds are recorded in aggregation order over a monotone virtual clock.
  FLINT_CHECK_GE(record.end, record.start);
  FLINT_CHECK_FINITE(record.mean_staleness);
  FLINT_CHECK_GE(record.mean_staleness, 0.0);
  if (!rounds_.empty()) {
    FLINT_CHECK_GT(record.round, rounds_.back().round);
    FLINT_CHECK_GE(record.start, rounds_.back().start);
  }
  rounds_.push_back(record);
}

double SimMetrics::mean_round_duration_s() const {
  if (rounds_.empty()) return 0.0;
  double total = 0.0;
  for (const auto& r : rounds_) total += r.duration_s();
  return total / static_cast<double>(rounds_.size());
}

double SimMetrics::updates_per_second(VirtualTime horizon) const {
  // A degenerate horizon (zero-length run, or a caller passing an unset
  // duration) yields a well-defined 0 rather than a throw or a NaN/inf that
  // would poison downstream report arithmetic.
  if (!(horizon > 0.0) || !std::isfinite(horizon)) return 0.0;
  std::uint64_t updates = 0;
  for (const auto& r : rounds_) updates += r.updates_aggregated;
  return static_cast<double>(updates) / horizon;
}

double SimMetrics::waste_fraction() const {
  if (tasks_started_ == 0) return 0.0;
  std::uint64_t wasted = tasks_interrupted_ + tasks_stale_ + tasks_failed_;
  return static_cast<double>(wasted) / static_cast<double>(tasks_started_);
}

std::string SimMetrics::summary() const {
  std::ostringstream os;
  os << "tasks: started=" << tasks_started_ << " succeeded=" << tasks_succeeded_
     << " interrupted=" << tasks_interrupted_ << " stale=" << tasks_stale_
     << " failed=" << tasks_failed_ << "; rounds=" << rounds_.size()
     << "; client_compute_h=" << client_compute_s_ / 3600.0;
  return os.str();
}

}  // namespace flint::sim
