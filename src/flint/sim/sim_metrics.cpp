#include "flint/sim/sim_metrics.h"

#include <cmath>
#include <sstream>

#include "flint/util/check.h"

namespace flint::sim {

void SimMetrics::on_task_finished(const TaskResult& result) {
  // Task-state transition: a task can only finish after being started, and
  // only once (finished counts never exceed started).
  std::uint64_t finished =
      tasks_succeeded_ + tasks_interrupted_ + tasks_stale_ + tasks_failed_;
  FLINT_CHECK_LT(finished, tasks_started_);
  FLINT_CHECK_GE(result.spent_compute_s, 0.0);
  FLINT_CHECK_FINITE(result.spent_compute_s);
  FLINT_CHECK_GE(result.finish_time, result.spec.dispatch_time);
  client_compute_s_ += result.spent_compute_s;
  obs::LedgerOutcome ledger_outcome = obs::LedgerOutcome::kSucceeded;
  switch (result.outcome) {
    case TaskOutcome::kSucceeded:
      ++tasks_succeeded_;
      ++updates_aggregated_;
      ledger_outcome = obs::LedgerOutcome::kSucceeded;
      break;
    case TaskOutcome::kInterrupted:
      ++tasks_interrupted_;
      ledger_outcome = obs::LedgerOutcome::kInterrupted;
      break;
    case TaskOutcome::kStale:
      ++tasks_stale_;
      ledger_outcome = obs::LedgerOutcome::kStale;
      break;
    case TaskOutcome::kFailed:
      ++tasks_failed_;
      ledger_outcome = obs::LedgerOutcome::kFailed;
      break;
  }
  if (ledger_ != nullptr)
    ledger_->on_task_finished(result.spec.client_id, ledger_outcome, result.spent_compute_s,
                              result.spec.update_bytes);
}

void SimMetrics::on_round(const RoundRecord& record) {
  // Rounds are recorded in aggregation order over a monotone virtual clock.
  FLINT_CHECK_GE(record.end, record.start);
  FLINT_CHECK_FINITE(record.mean_staleness);
  FLINT_CHECK_GE(record.mean_staleness, 0.0);
  if (!rounds_.empty()) {
    FLINT_CHECK_GT(record.round, rounds_.back().round);
    FLINT_CHECK_GE(record.start, rounds_.back().start);
  }
  rounds_.push_back(record);
}

double SimMetrics::mean_round_duration_s() const {
  if (rounds_.empty()) return 0.0;
  double total = 0.0;
  for (const auto& r : rounds_) total += r.duration_s();
  return total / static_cast<double>(rounds_.size());
}

double SimMetrics::updates_per_second(VirtualTime horizon) const {
  // A degenerate horizon (zero-length run, or a caller passing an unset
  // duration) yields a well-defined 0 rather than a throw or a NaN/inf that
  // would poison downstream report arithmetic.
  if (!(horizon > 0.0) || !std::isfinite(horizon)) return 0.0;
  std::uint64_t updates = 0;
  for (const auto& r : rounds_) updates += r.updates_aggregated;
  return static_cast<double>(updates) / horizon;
}

double SimMetrics::waste_fraction() const {
  if (tasks_started_ == 0) return 0.0;
  std::uint64_t wasted = tasks_interrupted_ + tasks_stale_ + tasks_failed_;
  return static_cast<double>(wasted) / static_cast<double>(tasks_started_);
}

store::CheckpointMetrics SimMetrics::snapshot() const {
  store::CheckpointMetrics m;
  m.tasks_started = tasks_started_;
  m.tasks_succeeded = tasks_succeeded_;
  m.tasks_interrupted = tasks_interrupted_;
  m.tasks_stale = tasks_stale_;
  m.tasks_failed = tasks_failed_;
  m.updates_aggregated = updates_aggregated_;
  m.client_compute_s = client_compute_s_;
  m.rounds.reserve(rounds_.size());
  for (const auto& r : rounds_)
    m.rounds.push_back({r.round, r.start, r.end,
                        static_cast<std::uint64_t>(r.updates_aggregated), r.mean_staleness});
  m.checkpoints.reserve(checkpoints_.size());
  for (const auto& c : checkpoints_) m.checkpoints.push_back({c.round, c.time});
  return m;
}

void SimMetrics::restore(const store::CheckpointMetrics& snapshot) {
  std::uint64_t finished = snapshot.tasks_succeeded + snapshot.tasks_interrupted +
                           snapshot.tasks_stale + snapshot.tasks_failed;
  FLINT_CHECK_LE(finished, snapshot.tasks_started);
  FLINT_CHECK_FINITE(snapshot.client_compute_s);
  FLINT_CHECK_GE(snapshot.client_compute_s, 0.0);
  tasks_started_ = snapshot.tasks_started;
  tasks_succeeded_ = snapshot.tasks_succeeded;
  tasks_interrupted_ = snapshot.tasks_interrupted;
  tasks_stale_ = snapshot.tasks_stale;
  tasks_failed_ = snapshot.tasks_failed;
  updates_aggregated_ = snapshot.updates_aggregated;
  client_compute_s_ = snapshot.client_compute_s;
  rounds_.clear();
  rounds_.reserve(snapshot.rounds.size());
  for (const auto& r : snapshot.rounds)
    rounds_.push_back({r.round, r.start, r.end, static_cast<std::size_t>(r.updates_aggregated),
                       r.mean_staleness});
  checkpoints_.clear();
  checkpoints_.reserve(snapshot.checkpoints.size());
  for (const auto& c : snapshot.checkpoints) checkpoints_.push_back({c.round, c.time});
}

std::string SimMetrics::summary() const {
  std::ostringstream os;
  os << "tasks: started=" << tasks_started_ << " succeeded=" << tasks_succeeded_
     << " interrupted=" << tasks_interrupted_ << " stale=" << tasks_stale_
     << " failed=" << tasks_failed_ << "; rounds=" << rounds_.size()
     << "; client_compute_h=" << client_compute_s_ / 3600.0;
  return os.str();
}

}  // namespace flint::sim
