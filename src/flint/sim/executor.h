// Executor pool: the simulated cluster workers that "poll tasks to run from
// a leader node" (§3.4). Each executor owns a partition of clients (one
// partition per executor, not one file per client) and can suffer outages;
// the leader halts dispatching while any executor is unhealthy.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "flint/data/client_dataset.h"
#include "flint/obs/telemetry.h"
#include "flint/sim/event_queue.h"

namespace flint::sim {

/// A planned executor outage window.
struct ExecutorOutage {
  std::size_t executor = 0;
  VirtualTime start = 0.0;
  VirtualTime end = 0.0;
};

/// Health and ownership bookkeeping for a pool of executors.
class ExecutorPool {
 public:
  explicit ExecutorPool(std::size_t count);

  std::size_t size() const { return count_; }

  /// Install a client->executor assignment (defaults to client_id % size()).
  void set_partitioning(const data::ExecutorPartitioning& partitioning);

  /// The executor owning `client`.
  std::size_t executor_of(std::uint64_t client) const;

  void add_outage(ExecutorOutage outage);
  const std::vector<ExecutorOutage>& outages() const { return outages_; }

  bool healthy_at(std::size_t executor, VirtualTime t) const;
  bool all_healthy_at(VirtualTime t) const;

  /// Earliest time >= t at which every executor is healthy ("the leader node
  /// halts dispatching tasks until all executors have pinged it with a
  /// healthy status-code").
  VirtualTime next_all_healthy(VirtualTime t) const;

  void record_task(std::size_t executor);
  std::uint64_t tasks_run(std::size_t executor) const;
  std::uint64_t total_tasks_run() const;

 private:
  std::size_t count_;
  std::vector<ExecutorOutage> outages_;
  std::vector<std::uint64_t> tasks_run_;
  // Per-executor task counters exported as sim.executor.<i>.tasks so a trace
  // viewer can spot partition skew (one hot executor stalling the leader).
  // Names are built once here — record_task runs per dispatched task, and a
  // per-call std::string materialization was measurable in capacity runs.
  std::vector<obs::CachedCounter> task_counters_;
  std::vector<std::string> task_counter_names_;
  // Sparse map from client to executor; empty = hash assignment.
  std::vector<std::uint32_t> client_executor_;
  bool has_partitioning_ = false;
};

}  // namespace flint::sim
