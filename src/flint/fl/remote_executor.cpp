#include "flint/fl/remote_executor.h"

#include <optional>
#include <utility>

#include "flint/fl/trainer_pool.h"
#include "flint/ml/serialize.h"
#include "flint/obs/telemetry.h"
#include "flint/util/check.h"

namespace flint::fl {

void LeaseTrainService::configure(const rpc::RegisterAckMsg& ack) {
  if (ack.model_blob.empty()) {
    trainer_.reset();  // model-free run: leases should never arrive
    return;
  }
  trainer_ = std::make_unique<LocalTrainer>(ml::deserialize_model(ack.model_blob),
                                            static_cast<std::size_t>(ack.dense_dim));
}

rpc::TaskResultMsg LeaseTrainService::run_lease(const rpc::TaskLeaseMsg& lease) {
  rpc::TaskResultMsg result;
  try {
    FLINT_CHECK_MSG(trainer_ != nullptr,
                    "TaskLease received but no model was configured (model-free run?)");
    LocalTrainConfig local;
    local.lr = lease.lr;
    local.epochs = lease.epochs;
    local.batch_size = static_cast<std::size_t>(lease.batch_size);
    local.loss = static_cast<data::LossKind>(lease.loss_kind);
    local.clip_norm = lease.clip_norm;
    local.momentum = lease.momentum;
    local.prox_mu = lease.prox_mu;
    std::optional<privacy::DpConfig> dp;
    if (lease.has_dp)
      dp = privacy::DpConfig{lease.dp_clip_norm, lease.dp_noise_multiplier, lease.dp_delta};
    compress::CompressionConfig compression;
    compression.kind = static_cast<compress::CompressionKind>(lease.compression_kind);
    compression.top_k_fraction = lease.top_k_fraction;
    // Train without the in-process lossy round trip: the raw delta is encoded
    // into the wire representation instead, and the leader's take_delta()
    // reproduces apply_compression's output bit for bit (schema v3).
    ClientUpdate update = compute_client_update_raw(
        *trainer_, lease.examples, lease.params, local, lease.seed, lease.task_id, dp,
        static_cast<std::size_t>(lease.dp_participants), compress::CompressionConfig{});
    result.ok = true;
    const std::size_t raw_bytes = update.train.delta.size() * sizeof(float);
    result.encode_delta(std::move(update.train.delta), compression);
    const std::size_t wire_bytes = result.payload_bytes();
    if (wire_bytes < raw_bytes)
      obs::add_counter("rpc.bytes_saved_compression",
                       static_cast<std::uint64_t>(raw_bytes - wire_bytes));
    result.weight = update.weight;
    result.mean_loss = update.train.mean_loss;
    result.examples = update.train.examples;
  } catch (const util::CheckError& e) {
    result.ok = false;
    result.error = e.what();
  }
  return result;
}

}  // namespace flint::fl
