#include "flint/fl/trainer.h"

#include <algorithm>

#include "flint/ml/kernels/kernels.h"
#include "flint/ml/loss.h"
#include "flint/obs/telemetry.h"
#include "flint/util/check.h"

namespace flint::fl {

LocalTrainer::LocalTrainer(std::unique_ptr<ml::Model> model, std::size_t dense_dim)
    : model_(std::move(model)), dense_dim_(dense_dim) {
  FLINT_CHECK(model_ != nullptr);
}

double LocalTrainer::train_classification(std::span<const ml::Example> data,
                                          const LocalTrainConfig& config,
                                          ml::SgdOptimizer& opt) {
  double total_loss = 0.0;
  std::size_t steps = 0;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    for (std::size_t start = 0; start < data.size(); start += config.batch_size) {
      std::size_t end = std::min(data.size(), start + config.batch_size);
      ml::Batch batch = ml::Batch::from_examples(data.subspan(start, end - start), dense_dim_);
      ml::Tensor logits = model_->forward(batch);
      ml::LossResult loss = model_->heads() == 1
                                ? ml::bce_with_logits(logits, batch.labels)
                                : ml::multitask_bce(logits, {batch.labels, batch.labels2});
      model_->zero_grad();
      model_->backward(loss.d_logits);
      if (config.clip_norm > 0.0) ml::clip_gradients(model_->parameters(), config.clip_norm);
      if (config.prox_mu > 0.0) add_proximal_gradient(config.prox_mu);
      opt.step(model_->parameters(), config.lr);
      total_loss += loss.loss;
      ++steps;
    }
  }
  return steps == 0 ? 0.0 : total_loss / static_cast<double>(steps);
}

double LocalTrainer::train_ranking(std::span<const ml::Example> data,
                                   const LocalTrainConfig& config, ml::SgdOptimizer& opt) {
  // Group candidates by ranking group; each group is one SGD step. One
  // stable sort of indices + one flat gather into a reused scratch buffer
  // replaces the old per-call std::map<group, vector<Example>> (a node
  // allocation per group and an extra copy per example); the spans walked
  // below are identical in content and order (ascending group, original
  // order within a group), so training is bit-for-bit unchanged.
  ranking_order_.resize(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) ranking_order_[i] = i;
  std::stable_sort(ranking_order_.begin(), ranking_order_.end(),
                   [&data](std::size_t a, std::size_t b) { return data[a].group < data[b].group; });
  ranking_grouped_.clear();
  ranking_grouped_.reserve(data.size());
  for (std::size_t i : ranking_order_) ranking_grouped_.push_back(data[i]);
  struct GroupSpan {
    std::size_t begin, size;
  };
  std::vector<GroupSpan> groups;
  for (std::size_t i = 0; i < ranking_grouped_.size();) {
    std::size_t j = i + 1;
    while (j < ranking_grouped_.size() && ranking_grouped_[j].group == ranking_grouped_[i].group)
      ++j;
    groups.push_back({i, j - i});
    i = j;
  }
  std::span<const ml::Example> grouped(ranking_grouped_);
  double total_loss = 0.0;
  std::size_t steps = 0;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    for (const GroupSpan& g : groups) {
      if (g.size < 2) continue;
      std::span<const ml::Example> members = grouped.subspan(g.begin, g.size);
      ml::Batch batch = ml::Batch::from_examples(members, dense_dim_);
      ml::Tensor logits = model_->forward(batch);
      ml::LossResult loss = ml::pairwise_ranking_loss(logits, batch.labels);
      model_->zero_grad();
      model_->backward(loss.d_logits);
      if (config.clip_norm > 0.0) ml::clip_gradients(model_->parameters(), config.clip_norm);
      if (config.prox_mu > 0.0) add_proximal_gradient(config.prox_mu);
      opt.step(model_->parameters(), config.lr);
      total_loss += loss.loss;
      ++steps;
    }
  }
  return steps == 0 ? 0.0 : total_loss / static_cast<double>(steps);
}

void LocalTrainer::add_proximal_gradient(double mu) {
  std::size_t offset = 0;
  for (ml::Parameter* p : model_->parameters()) {
    auto value = p->value.flat();
    auto grad = p->grad.flat();
    for (std::size_t i = 0; i < value.size(); ++i)
      grad[i] += static_cast<float>(mu) * (value[i] - prox_anchor_[offset + i]);
    offset += value.size();
  }
}

LocalTrainResult LocalTrainer::train(std::span<const ml::Example> data,
                                     std::span<const float> global_params,
                                     const LocalTrainConfig& config) {
  FLINT_CHECK(!data.empty());
  // Local SGD is the wall-clock hot spot of a model-full simulation; the span
  // makes per-client training cost visible on the wall track of the trace.
  FLINT_TRACE_SPAN("fl.local_sgd", "fl");
  obs::add_counter("fl.local_sgd_calls");
  obs::add_counter("fl.local_sgd_examples", data.size());
  model_->set_flat_parameters(global_params);
  if (config.prox_mu > 0.0) prox_anchor_.assign(global_params.begin(), global_params.end());
  ml::SgdOptimizer opt(config.momentum, 0.0);

  double mean_loss = (config.loss == data::LossKind::kPairwiseRanking)
                         ? train_ranking(data, config, opt)
                         : train_classification(data, config, opt);

  LocalTrainResult result;
  result.mean_loss = mean_loss;
  result.examples = data.size();
  result.delta = model_->get_flat_parameters();
  FLINT_CHECK(result.delta.size() == global_params.size());
  ml::kernels::active().sub(result.delta.data(), global_params.data(), result.delta.size());
  return result;
}

std::vector<double> train_centralized(ml::Model& model, const data::FederatedTask& task,
                                      const LocalTrainConfig& config, int epochs,
                                      util::Rng& rng) {
  FLINT_CHECK(epochs >= 1);
  std::vector<ml::Example> all = task.train.to_centralized();
  FLINT_CHECK(!all.empty());
  LocalTrainer trainer(model.clone(), task.batch_dense_dim());
  std::vector<float> params = model.get_flat_parameters();
  std::vector<double> curve;
  LocalTrainConfig per_epoch = config;
  per_epoch.epochs = 1;
  for (int e = 0; e < epochs; ++e) {
    if (config.loss != data::LossKind::kPairwiseRanking) rng.shuffle(all);
    LocalTrainResult r = trainer.train(all, params, per_epoch);
    for (std::size_t i = 0; i < params.size(); ++i) params[i] += r.delta[i];
    model.set_flat_parameters(params);
    curve.push_back(task.evaluate(model));
  }
  return curve;
}

}  // namespace flint::fl
