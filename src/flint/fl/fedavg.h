// Synchronous FedAvg (McMahan et al., 2017) under realistic availability:
// round-based, GFL-style client over-commitment, deadline-bounded rounds,
// stragglers discarded ("FedAvg throws away all stragglers", §3.4).
#pragma once

#include "flint/fl/run_common.h"

namespace flint::fl {

/// Sync-mode parameters.
struct SyncConfig {
  RunInputs inputs;
  /// Updates required to close a round.
  std::size_t cohort_size = 10;
  /// Over-commitment factor: dispatch ceil(cohort * factor) clients.
  double overcommit = 1.3;
  /// A round aggregates whatever arrived by this deadline.
  double round_deadline_s = 2.0 * 3600.0;
  /// How far ahead of the round start arrivals may be pulled.
  double cohort_wait_s = 1.0 * 3600.0;
};

/// Run synchronous FedAvg to completion (max rounds / virtual time / trace
/// exhaustion, whichever comes first).
RunResult run_fedavg(const SyncConfig& config);

}  // namespace flint::fl
