// Client task duration model (paper §3.4):
//
//   taskDuration(k) = t * E * |D_k| + 2*M / N
//
// where t is sampled from the distribution of per-example training time
// (from on-device benchmarks), E is local epochs, |D_k| the client's
// partition size, M the gradient update size, and N a bandwidth sample from
// a Puffer-like distribution.
#pragma once

#include <cstdint>

#include "flint/device/benchmark_harness.h"
#include "flint/device/device_catalog.h"
#include "flint/ml/model_zoo.h"
#include "flint/net/bandwidth_model.h"
#include "flint/util/rng.h"

namespace flint::fl {

/// Model-side parameters of the duration formula.
struct TaskDurationConfig {
  /// Fleet-mean per-example training time (seconds). Zoo calibrations are
  /// per 5000 records, so from_spec() divides by 5000.
  double base_time_per_example_s = 1e-3;
  /// The model's memory-boundedness, interacting with device affinity.
  double memory_intensity = 0.0;
  /// Run-to-run lognormal jitter sigma on the per-example time.
  double jitter_sigma = 0.2;
  /// Local epochs E.
  int local_epochs = 1;
  /// Gradient update size M in bytes (also the download size).
  std::uint64_t update_bytes = 4096;
};

/// Samples task durations for (device, partition size) pairs.
class TaskDurationModel {
 public:
  TaskDurationModel(const TaskDurationConfig& config, const device::DeviceCatalog& catalog,
                    const net::BandwidthModel& bandwidth);

  struct Sample {
    double compute_s = 0.0;  ///< t * E * |D_k|
    double comm_s = 0.0;     ///< 2M / N
    double total_s() const { return compute_s + comm_s; }
  };

  /// One draw of the full duration formula for client k on `device_index`.
  Sample sample(std::size_t device_index, std::size_t examples, util::Rng& rng) const;

  const TaskDurationConfig& config() const { return config_; }

  /// Build the config from a zoo model spec (per-example time from the
  /// fleet calibration; update size from the spec's network payload).
  static TaskDurationConfig from_spec(const ml::ModelSpec& spec, int local_epochs);

 private:
  TaskDurationConfig config_;
  const device::DeviceCatalog* catalog_;
  const net::BandwidthModel* bandwidth_;
};

}  // namespace flint::fl
