// Learning-rate schedules over communication rounds. Figure 10 of the paper
// compares two exponential-decay schedules and shows the choice drives
// training stability under heterogeneous client sampling.
#pragma once

#include <cstdint>

namespace flint::fl {

/// Value-type LR schedule evaluated at a round index.
class LrSchedule {
 public:
  /// lr(r) = lr0.
  static LrSchedule constant(double lr);

  /// lr(r) = max(min_lr, lr0 * decay_rate^(r / decay_rounds)); `staircase`
  /// uses the integer quotient (step decay).
  static LrSchedule exponential_decay(double initial, double decay_rate,
                                      std::uint64_t decay_rounds, bool staircase = false,
                                      double min_lr = 0.0);

  /// lr(r) = lr0 * min(1, (r+1)/warmup) / sqrt(max(r, warmup) / warmup).
  static LrSchedule inverse_sqrt(double initial, std::uint64_t warmup_rounds);

  double at(std::uint64_t round) const;

 private:
  enum class Kind { kConstant, kExponential, kInverseSqrt };
  LrSchedule(Kind kind, double initial, double decay_rate, std::uint64_t period, bool staircase,
             double min_lr);

  Kind kind_;
  double initial_;
  double decay_rate_;
  std::uint64_t period_;
  bool staircase_;
  double min_lr_;
};

}  // namespace flint::fl
