// Asynchronous FedBuff (Nguyen et al., 2022) on the virtual-clock simulator:
// up to `max_concurrency` clients train at once; completed updates land in a
// K-sized buffer with staleness-based discounting; updates staler than
// `max_staleness` are discarded. The leader's priority-queue scheduler
// generates tasks in a streaming fashion (§3.4).
#pragma once

#include "flint/fl/run_common.h"

namespace flint::fl {

/// Async-mode parameters.
struct AsyncConfig {
  RunInputs inputs;
  /// Buffer size K: updates aggregated per server step.
  std::size_t buffer_size = 10;
  /// Maximum clients training concurrently.
  std::size_t max_concurrency = 100;
  /// Updates with staleness (server version delta) beyond this are dropped.
  std::uint64_t max_staleness = 20;
  /// Weight buffered updates by 1/sqrt(1+staleness) (FedBuff's default).
  bool staleness_weighting = true;
};

/// Run asynchronous FedBuff to completion.
RunResult run_fedbuff(const AsyncConfig& config);

}  // namespace flint::fl
