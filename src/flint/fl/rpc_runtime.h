// fl::RpcRuntime — one-stop harness the drivers (quickstart, benches, test
// drivers) use to stand up the leader/executor runtime for a run
// (DESIGN.md §14):
//
//   kInProcess  no rpc at all: the classic TrainerPool path (leader() null).
//   kLoopback   N ExecutorWorkers on util::ThreadPool workers, talking to
//               the leader over in-process LoopbackTransport pairs. Same
//               frames, same CRCs, no file descriptors — the cheap way to
//               exercise the full wire path in unit tests and CI.
//   kUnix       N spawned `flint_executor` child processes connected over a
//               Unix-domain socket.
//   kTcp        same, over 127.0.0.1 TCP (ephemeral port).
//
// Construction registers all executors (handshake included); destruction
// sends Shutdown, joins the loopback workers, and reaps the children.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "flint/fl/run_common.h"
#include "flint/rpc/leader.h"
#include "flint/rpc/process.h"
#include "flint/util/thread_pool.h"

namespace flint::fl {

enum class TransportKind { kInProcess, kLoopback, kUnix, kTcp };

/// Parse a --transport flag value ("loopback", "unix", "tcp"; "inprocess" /
/// "none" select the classic path). Throws CheckError on anything else.
TransportKind parse_transport(const std::string& name);

const char* transport_name(TransportKind kind);

struct RpcRuntimeConfig {
  TransportKind kind = TransportKind::kInProcess;
  std::size_t executors = 2;
  /// Path to the flint_executor binary (kUnix/kTcp only).
  std::string executor_bin;
  /// Directory for the Unix socket (kUnix only); default: current directory.
  std::string socket_dir = ".";
  double heartbeat_interval_s = 0.5;
  double heartbeat_timeout_s = 10.0;
  double lease_timeout_s = 120.0;
  double register_timeout_s = 30.0;
  /// Multi-process trace fan-out (DESIGN.md §15): when non-empty, each
  /// spawned executor writes its own Chrome trace to
  /// `<trace_dir>/executor-<i>.trace.json` and the leader labels its tracer
  /// for the merged view. Empty = executors run without tracing.
  std::string trace_dir;
};

class RpcRuntime {
 public:
  /// Builds the runtime for one run: serializes the model for RegisterAck,
  /// stands up the transports, and blocks until all executors registered.
  /// kInProcess constructs nothing.
  RpcRuntime(const RpcRuntimeConfig& config, const RunInputs& inputs);
  ~RpcRuntime();
  RpcRuntime(const RpcRuntime&) = delete;
  RpcRuntime& operator=(const RpcRuntime&) = delete;

  /// The leader to plant in RunInputs::rpc_leader (null for kInProcess).
  rpc::Leader* leader() { return leader_.get(); }

  /// Spawned executor children (kUnix/kTcp); fault tests kill() these.
  std::size_t process_count() const { return processes_.size(); }
  rpc::SpawnedProcess& process(std::size_t i) { return *processes_[i]; }

 private:
  std::uint16_t leader_listen_port() const;

  RpcRuntimeConfig config_;
  std::unique_ptr<rpc::Leader> leader_;
  std::unique_ptr<util::ThreadPool> loopback_pool_;
  std::vector<std::future<void>> loopback_workers_;
  std::vector<std::unique_ptr<rpc::SpawnedProcess>> processes_;
};

}  // namespace flint::fl
