#include "flint/fl/lr_schedule.h"

#include <algorithm>
#include <cmath>

#include "flint/util/check.h"

namespace flint::fl {

LrSchedule::LrSchedule(Kind kind, double initial, double decay_rate, std::uint64_t period,
                       bool staircase, double min_lr)
    : kind_(kind),
      initial_(initial),
      decay_rate_(decay_rate),
      period_(period),
      staircase_(staircase),
      min_lr_(min_lr) {
  FLINT_CHECK_FINITE(initial);
  FLINT_CHECK_GT(initial, 0.0);
}

LrSchedule LrSchedule::constant(double lr) {
  return LrSchedule(Kind::kConstant, lr, 1.0, 1, false, 0.0);
}

LrSchedule LrSchedule::exponential_decay(double initial, double decay_rate,
                                         std::uint64_t decay_rounds, bool staircase,
                                         double min_lr) {
  FLINT_CHECK_GT(decay_rate, 0.0);
  FLINT_CHECK_LE(decay_rate, 1.0);
  FLINT_CHECK_GT(decay_rounds, std::uint64_t{0});
  return LrSchedule(Kind::kExponential, initial, decay_rate, decay_rounds, staircase, min_lr);
}

LrSchedule LrSchedule::inverse_sqrt(double initial, std::uint64_t warmup_rounds) {
  FLINT_CHECK_GT(warmup_rounds, std::uint64_t{0});
  return LrSchedule(Kind::kInverseSqrt, initial, 1.0, warmup_rounds, false, 0.0);
}

double LrSchedule::at(std::uint64_t round) const {
  switch (kind_) {
    case Kind::kConstant:
      return initial_;
    case Kind::kExponential: {
      double exponent = staircase_
                            ? static_cast<double>(round / period_)
                            : static_cast<double>(round) / static_cast<double>(period_);
      return std::max(min_lr_, initial_ * std::pow(decay_rate_, exponent));
    }
    case Kind::kInverseSqrt: {
      double w = static_cast<double>(period_);
      double r = static_cast<double>(round);
      double warmup = std::min(1.0, (r + 1.0) / w);
      double decay = 1.0 / std::sqrt(std::max(r, w) / w);
      return initial_ * warmup * decay;
    }
  }
  return initial_;
}

}  // namespace flint::fl
