#include "flint/fl/rpc_runtime.h"

#include <unistd.h>

#include <utility>

#include "flint/fl/remote_executor.h"
#include "flint/ml/kernels/kernels.h"
#include "flint/ml/serialize.h"
#include "flint/obs/telemetry.h"
#include "flint/rpc/executor_worker.h"
#include "flint/rpc/transport.h"
#include "flint/util/check.h"
#include "flint/util/logging.h"

namespace flint::fl {

TransportKind parse_transport(const std::string& name) {
  if (name == "inprocess" || name == "none" || name.empty()) return TransportKind::kInProcess;
  if (name == "loopback") return TransportKind::kLoopback;
  if (name == "unix") return TransportKind::kUnix;
  if (name == "tcp") return TransportKind::kTcp;
  FLINT_CHECK_MSG(false, "unknown --transport '" << name
                                                 << "' (want inprocess|loopback|unix|tcp)");
  return TransportKind::kInProcess;
}

const char* transport_name(TransportKind kind) {
  switch (kind) {
    case TransportKind::kInProcess: return "inprocess";
    case TransportKind::kLoopback: return "loopback";
    case TransportKind::kUnix: return "unix";
    case TransportKind::kTcp: return "tcp";
  }
  return "?";
}

RpcRuntime::RpcRuntime(const RpcRuntimeConfig& config, const RunInputs& inputs)
    : config_(config) {
  if (config_.kind == TransportKind::kInProcess) return;
  FLINT_CHECK_GT(config_.executors, std::size_t{0});

  rpc::LeaderConfig lc;
  lc.heartbeat_interval_s = config_.heartbeat_interval_s;
  lc.heartbeat_timeout_s = config_.heartbeat_timeout_s;
  lc.lease_timeout_s = config_.lease_timeout_s;
  lc.register_timeout_s = config_.register_timeout_s;
  lc.dense_dim = inputs.dense_dim;
  if (!inputs.model_free && inputs.model_template != nullptr)
    lc.model_blob = ml::serialize_model(*inputs.model_template);
  leader_ = std::make_unique<rpc::Leader>(std::move(lc));

  if (config_.kind == TransportKind::kLoopback) {
    loopback_pool_ = std::make_unique<util::ThreadPool>(config_.executors);
    for (std::size_t i = 0; i < config_.executors; ++i) {
      auto [leader_end, worker_end] = rpc::LoopbackTransport::make_pair();
      std::string name = "loopback-" + std::to_string(i);
      // shared_ptr: the submit closure must be copyable to sit in the pool's
      // std::function queue.
      std::shared_ptr<rpc::Transport> endpoint = std::move(worker_end);
      loopback_workers_.push_back(
          loopback_pool_->submit([endpoint, name = std::move(name)] {
            LeaseTrainService service;
            rpc::ExecutorWorker worker(*endpoint, service, name);
            worker.run();
          }));
      // Register after the worker is queued: the handshake blocks until the
      // worker answers, and pool workers pick tasks up immediately.
      leader_->add_transport(std::move(leader_end));
    }
    return;
  }

  // Multi-process: listen, spawn `executors` children pointed at the
  // endpoint, then block until every one has registered.
  FLINT_CHECK_MSG(!config_.executor_bin.empty(),
                  "multi-process transport needs --executor-bin");
  // This process is the leader of a fleet: tag its log lines and (when
  // tracing) its trace tracks so merged output stays attributable.
  util::Logger::instance().set_role("leader");
  if (obs::Telemetry* t = obs::current(); t != nullptr && t->tracer().enabled())
    t->tracer().set_process_info("leader", 0);
  std::string connect_arg;
  if (config_.kind == TransportKind::kUnix) {
    std::string sock = config_.socket_dir + "/flint-rpc-" +
                       std::to_string(static_cast<long>(::getpid())) + ".sock";
    leader_->add_listener(rpc::Listener::listen_unix(sock));
    connect_arg = sock;
  } else {
    leader_->add_listener(rpc::Listener::listen_tcp(0));
  }
  for (std::size_t i = 0; i < config_.executors; ++i) {
    std::vector<std::string> argv;
    argv.push_back(config_.executor_bin);
    if (config_.kind == TransportKind::kUnix) {
      argv.push_back("--connect-unix");
      argv.push_back(connect_arg);
    } else {
      argv.push_back("--connect-tcp");
      argv.push_back("127.0.0.1");
      argv.push_back("--port");
      argv.push_back(std::to_string(leader_listen_port()));
    }
    argv.push_back("--name");
    argv.push_back(std::string(transport_name(config_.kind)) + "-" + std::to_string(i));
    // Forward the leader's kernel-path spec so the whole fleet computes on
    // one path — reductions like matmul_transposed are only deterministic
    // per path, and bit-identity requires every process to share it.
    argv.push_back("--kernels");
    argv.push_back(ml::kernels::requested_spec());
    if (!config_.trace_dir.empty()) {
      argv.push_back("--trace-out");
      argv.push_back(config_.trace_dir + "/executor-" + std::to_string(i) +
                     ".trace.json");
    }
    processes_.push_back(std::make_unique<rpc::SpawnedProcess>(argv));
  }
  leader_->wait_for_executors(config_.executors);
  FLINT_LOG_INFO << "rpc: " << config_.executors << " executor(s) registered over "
                 << transport_name(config_.kind);
}

std::uint16_t RpcRuntime::leader_listen_port() const {
  return leader_ != nullptr ? leader_->listen_port() : 0;
}

RpcRuntime::~RpcRuntime() {
  // Undo the multi-process role tag: a test binary may run many runtimes.
  if (config_.kind == TransportKind::kUnix || config_.kind == TransportKind::kTcp)
    util::Logger::instance().set_role("");
  if (leader_ != nullptr) leader_->shutdown("run complete");
  for (auto& worker : loopback_workers_) {
    if (worker.valid()) worker.get();
  }
  loopback_pool_.reset();
  // SpawnedProcess destructors reap the children (Shutdown lets them exit
  // cleanly; anything still alive is SIGKILLed).
  processes_.clear();
}

}  // namespace flint::fl
