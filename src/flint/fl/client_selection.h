// Client selection helpers. "In practice, client selection is largely
// dictated by client arrival and availability. Hence, our framework directly
// selects the next available device from the input sessions at a given
// virtual time" (§3.4). Sync mode adds GFL-style over-commitment.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "flint/sim/scheduler.h"

namespace flint::fl {

/// Exclusion policy for selection: given a client id, return the virtual
/// time at which the client becomes eligible again (e.g. cooldown end), or
/// nullopt if it is eligible now. Returning a time <= now is treated as
/// eligible.
using ExcludedUntilFn = std::function<std::optional<sim::VirtualTime>(std::uint64_t)>;

/// Pull up to `count` distinct-client arrivals from `scheduler`, starting at
/// virtual time `t`. Excluded clients are requeued for the end of their
/// exclusion. Arrivals later than `t + max_wait_s` are not consumed (the
/// cohort is capped by how long the round may wait for devices).
std::vector<sim::Arrival> select_cohort(sim::ArrivalScheduler& scheduler, sim::VirtualTime t,
                                        std::size_t count, const ExcludedUntilFn& excluded_until,
                                        double max_wait_s);

/// Over-committed dispatch size for a target cohort: ceil(cohort * factor).
/// "Our sync mode ... uses client over-commitment to handle dropouts" (§5).
std::size_t overcommitted_size(std::size_t cohort, double factor);

}  // namespace flint::fl
