#include "flint/fl/run_common.h"

#include <algorithm>
#include <unordered_map>

#include "flint/util/check.h"
#include "flint/util/logging.h"

namespace flint::fl {

std::size_t client_example_count(const RunInputs& inputs, std::uint64_t client_id) {
  if (inputs.dataset != nullptr && inputs.dataset->contains(client_id))
    return inputs.dataset->client(client_id).size();
  if (inputs.client_example_counts != nullptr &&
      client_id < inputs.client_example_counts->size())
    return (*inputs.client_example_counts)[client_id];
  if (inputs.example_count_fn) return inputs.example_count_fn(client_id);
  return 0;
}

void validate_common_inputs(const RunInputs& inputs) {
  FLINT_CHECK_MSG(inputs.trace != nullptr || inputs.window_stream != nullptr,
                  "run needs an availability trace or a window stream");
  FLINT_CHECK_MSG(inputs.trace == nullptr || inputs.window_stream == nullptr,
                  "set either a materialized trace or a window stream, not both");
  FLINT_CHECK_MSG(inputs.catalog != nullptr, "run needs a device catalog");
  FLINT_CHECK_MSG(inputs.bandwidth != nullptr, "run needs a bandwidth model");
  if (inputs.model_free) {
    FLINT_CHECK_MSG(inputs.client_example_counts != nullptr || inputs.dataset != nullptr ||
                        static_cast<bool>(inputs.example_count_fn),
                    "model-free run needs client example counts, a dataset, or a count fn");
  } else {
    FLINT_CHECK_MSG(inputs.model_template != nullptr, "run needs a model template");
    FLINT_CHECK_MSG(inputs.dataset != nullptr, "run needs a federated dataset");
  }
  FLINT_CHECK_GT(inputs.max_rounds, std::uint64_t{0});
  FLINT_CHECK_FINITE(inputs.server_lr);
  FLINT_CHECK_GT(inputs.server_lr, 0.0);
  FLINT_CHECK_FINITE(inputs.server_momentum);
  FLINT_CHECK_GE(inputs.server_momentum, 0.0);
  FLINT_CHECK_LT(inputs.server_momentum, 1.0);
  FLINT_CHECK_FINITE(inputs.max_virtual_s);
  FLINT_CHECK_GT(inputs.max_virtual_s, 0.0);
  FLINT_CHECK_FINITE(inputs.reparticipation_gap_s);
  FLINT_CHECK_GE(inputs.reparticipation_gap_s, 0.0);
  FLINT_CHECK_GT(inputs.threads, std::size_t{0});
}

RunTelemetryScope::RunTelemetryScope(const RunInputs& inputs) : telemetry_(inputs.telemetry) {
  if (telemetry_ != nullptr && obs::current() != telemetry_) scope_.emplace(telemetry_);
}

void RunTelemetryScope::finish(RunResult& result) {
  if (telemetry_ == nullptr) return;
  telemetry_->snapshot_now();
  if (telemetry_->config().metrics_enabled)
    result.telemetry = telemetry_->metrics().snapshot();
}

RunAttributionScope::RunAttributionScope(const RunInputs& inputs, sim::Leader& leader)
    : enabled_(inputs.collect_ledger), leader_(&leader) {
  if (!enabled_) return;
  if (inputs.trace == nullptr) {
    // Streaming run: there is no materialized trace to pre-classify from
    // (and walking the population would defeat the point). Clients are
    // registered lazily on first task completion with unclassified labels;
    // the accounting totals still reconcile with SimMetrics.
    leader.metrics().attach_ledger(&ledger_);
    return;
  }
  // Classify every client the trace can offer: device tier from the catalog
  // profile of its (first-seen) device, availability cohort from how much of
  // the horizon its windows cover, executor from the pool's assignment.
  const device::AvailabilityTrace& trace = *inputs.trace;
  double horizon = trace.horizon();
  struct Seen {
    std::size_t device_index = 0;
    double window_s = 0.0;
  };
  std::unordered_map<std::uint64_t, Seen> seen;
  for (const auto& w : trace.windows()) {
    auto [it, inserted] = seen.try_emplace(w.client_id);
    if (inserted) it->second.device_index = w.device_index;
    it->second.window_s += w.duration();
  }
  for (const auto& [client, info] : seen) {
    device::DeviceTier tier = device::tier_of(inputs.catalog->profile(info.device_index));
    double coverage = horizon > 0.0 ? info.window_s / horizon : 1.0;
    AvailabilityCohort cohort = coverage < 0.05   ? AvailabilityCohort::kRare
                                : coverage < 0.50 ? AvailabilityCohort::kRegular
                                                  : AvailabilityCohort::kAlwaysOn;
    ledger_.register_client(client, static_cast<std::uint32_t>(tier),
                            static_cast<std::uint32_t>(cohort),
                            static_cast<std::uint32_t>(leader.executors().executor_of(client)));
  }
  leader.metrics().attach_ledger(&ledger_);
}

void RunAttributionScope::finish(RunResult& result) {
  if (!enabled_) return;
  leader_->metrics().attach_ledger(nullptr);
  result.ledger = ledger_.summary();
  // The metrics copy in the result must not carry a pointer to this scope's
  // (stack-lifetime) ledger.
  result.metrics.attach_ledger(nullptr);
}

std::vector<store::CheckpointClientAccount> RunAttributionScope::accounts() const {
  std::vector<store::CheckpointClientAccount> out;
  if (!enabled_) return out;
  out.reserve(ledger_.client_count());
  for (std::uint32_t s = 0; s < ledger_.client_count(); ++s) {
    obs::ClientLedgerEntry e = ledger_.entry_at(s);
    // Skip clients with no activity yet: they exist only as registrations,
    // which the resumed run re-derives from the trace.
    if (e.tasks_finished() == 0 && e.compute_s == 0.0 && e.bytes_down == 0) continue;
    out.push_back({e.client_id, e.tasks_succeeded, e.tasks_interrupted, e.tasks_stale,
                   e.tasks_failed, e.compute_s, e.wasted_compute_s, e.bytes_down, e.bytes_up});
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.client_id < b.client_id; });
  return out;
}

void RunAttributionScope::restore(const std::vector<store::CheckpointClientAccount>& accounts) {
  if (!enabled_) return;
  for (const auto& a : accounts) {
    obs::ClientLedgerEntry e;
    e.client_id = a.client_id;
    e.tasks_succeeded = a.tasks_succeeded;
    e.tasks_interrupted = a.tasks_interrupted;
    e.tasks_stale = a.tasks_stale;
    e.tasks_failed = a.tasks_failed;
    e.compute_s = a.compute_s;
    e.wasted_compute_s = a.wasted_compute_s;
    e.bytes_down = a.bytes_down;
    e.bytes_up = a.bytes_up;
    ledger_.restore_account(e);
  }
}

std::optional<store::SimCheckpoint> load_resume_state(const RunInputs& inputs,
                                                      std::uint8_t algo) {
  if (inputs.resume_from == nullptr) return std::nullopt;
  std::optional<store::SimCheckpoint> ckpt = inputs.resume_from->latest();
  if (!ckpt.has_value()) {
    FLINT_LOG_INFO << "resume requested but no usable checkpoint in "
                   << inputs.resume_from->dir() << "; starting fresh";
    return std::nullopt;
  }
  FLINT_CHECK_MSG(ckpt->algo == algo, "checkpoint algorithm "
                                          << static_cast<int>(ckpt->algo)
                                          << " does not match this runner ("
                                          << static_cast<int>(algo) << ")");
  FLINT_CHECK_MSG(ckpt->run_seed == inputs.seed,
                  "checkpoint seed " << ckpt->run_seed << " does not match run seed "
                                     << inputs.seed << "; refusing to splice lineages");
  FLINT_LOG_INFO << "resuming from checkpoint round " << ckpt->round << " at t="
                 << ckpt->virtual_time_s << "s (resume #" << ckpt->resume_count + 1 << ")";
  return ckpt;
}

std::vector<store::CheckpointEvalPoint> checkpoint_eval_curve(
    const std::vector<sim::EvalPoint>& curve) {
  std::vector<store::CheckpointEvalPoint> out;
  out.reserve(curve.size());
  for (const auto& e : curve) out.push_back({e.time, e.round, e.metric, e.train_loss});
  return out;
}

std::vector<sim::EvalPoint> restore_eval_curve(
    const std::vector<store::CheckpointEvalPoint>& curve) {
  std::vector<sim::EvalPoint> out;
  out.reserve(curve.size());
  for (const auto& e : curve) out.push_back({e.time, e.round, e.metric, e.train_loss});
  return out;
}

std::vector<store::CheckpointRequeuedArrival> checkpoint_requeued(
    const std::vector<sim::Arrival>& requeued) {
  std::vector<store::CheckpointRequeuedArrival> out;
  out.reserve(requeued.size());
  for (const auto& a : requeued)
    out.push_back({a.time, a.client_id, static_cast<std::uint64_t>(a.device_index),
                   a.window_end});
  return out;
}

std::vector<sim::Arrival> restore_requeued(
    const std::vector<store::CheckpointRequeuedArrival>& requeued) {
  std::vector<sim::Arrival> out;
  out.reserve(requeued.size());
  for (const auto& a : requeued)
    out.push_back({a.time, a.client_id, static_cast<std::size_t>(a.device_index),
                   a.window_end});
  return out;
}

std::vector<std::pair<std::uint64_t, double>> ParticipationPool::sorted_entries() const {
  std::vector<std::pair<std::uint64_t, double>> out;
  out.reserve(keys_.size());
  for (std::uint32_t s = 0; s < keys_.size(); ++s) out.emplace_back(keys_.key_at(s), times_[s]);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<std::uint64_t, double>> checkpoint_participation(
    const ParticipationPool& last_participation) {
  return last_participation.sorted_entries();
}

}  // namespace flint::fl
