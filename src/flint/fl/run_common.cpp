#include "flint/fl/run_common.h"

#include <unordered_map>

#include "flint/util/check.h"

namespace flint::fl {

std::size_t client_example_count(const RunInputs& inputs, std::uint64_t client_id) {
  if (inputs.dataset != nullptr && inputs.dataset->contains(client_id))
    return inputs.dataset->client(client_id).size();
  if (inputs.client_example_counts != nullptr &&
      client_id < inputs.client_example_counts->size())
    return (*inputs.client_example_counts)[client_id];
  return 0;
}

void validate_common_inputs(const RunInputs& inputs) {
  FLINT_CHECK_MSG(inputs.trace != nullptr, "run needs an availability trace");
  FLINT_CHECK_MSG(inputs.catalog != nullptr, "run needs a device catalog");
  FLINT_CHECK_MSG(inputs.bandwidth != nullptr, "run needs a bandwidth model");
  if (inputs.model_free) {
    FLINT_CHECK_MSG(inputs.client_example_counts != nullptr || inputs.dataset != nullptr,
                    "model-free run needs client example counts or a dataset");
  } else {
    FLINT_CHECK_MSG(inputs.model_template != nullptr, "run needs a model template");
    FLINT_CHECK_MSG(inputs.dataset != nullptr, "run needs a federated dataset");
  }
  FLINT_CHECK_GT(inputs.max_rounds, std::uint64_t{0});
  FLINT_CHECK_FINITE(inputs.server_lr);
  FLINT_CHECK_GT(inputs.server_lr, 0.0);
  FLINT_CHECK_FINITE(inputs.server_momentum);
  FLINT_CHECK_GE(inputs.server_momentum, 0.0);
  FLINT_CHECK_LT(inputs.server_momentum, 1.0);
  FLINT_CHECK_FINITE(inputs.max_virtual_s);
  FLINT_CHECK_GT(inputs.max_virtual_s, 0.0);
  FLINT_CHECK_FINITE(inputs.reparticipation_gap_s);
  FLINT_CHECK_GE(inputs.reparticipation_gap_s, 0.0);
  FLINT_CHECK_GT(inputs.threads, std::size_t{0});
}

RunTelemetryScope::RunTelemetryScope(const RunInputs& inputs) : telemetry_(inputs.telemetry) {
  if (telemetry_ != nullptr && obs::current() != telemetry_) scope_.emplace(telemetry_);
}

void RunTelemetryScope::finish(RunResult& result) {
  if (telemetry_ == nullptr) return;
  telemetry_->snapshot_now();
  if (telemetry_->config().metrics_enabled)
    result.telemetry = telemetry_->metrics().snapshot();
}

RunAttributionScope::RunAttributionScope(const RunInputs& inputs, sim::Leader& leader)
    : enabled_(inputs.collect_ledger), leader_(&leader) {
  if (!enabled_) return;
  // Classify every client the trace can offer: device tier from the catalog
  // profile of its (first-seen) device, availability cohort from how much of
  // the horizon its windows cover, executor from the pool's assignment.
  const device::AvailabilityTrace& trace = *inputs.trace;
  double horizon = trace.horizon();
  struct Seen {
    std::size_t device_index = 0;
    double window_s = 0.0;
  };
  std::unordered_map<std::uint64_t, Seen> seen;
  for (const auto& w : trace.windows()) {
    auto [it, inserted] = seen.try_emplace(w.client_id);
    if (inserted) it->second.device_index = w.device_index;
    it->second.window_s += w.duration();
  }
  for (const auto& [client, info] : seen) {
    device::DeviceTier tier = device::tier_of(inputs.catalog->profile(info.device_index));
    double coverage = horizon > 0.0 ? info.window_s / horizon : 1.0;
    AvailabilityCohort cohort = coverage < 0.05   ? AvailabilityCohort::kRare
                                : coverage < 0.50 ? AvailabilityCohort::kRegular
                                                  : AvailabilityCohort::kAlwaysOn;
    ledger_.register_client(client, static_cast<std::uint32_t>(tier),
                            static_cast<std::uint32_t>(cohort),
                            static_cast<std::uint32_t>(leader.executors().executor_of(client)));
  }
  leader.metrics().attach_ledger(&ledger_);
}

void RunAttributionScope::finish(RunResult& result) {
  if (!enabled_) return;
  leader_->metrics().attach_ledger(nullptr);
  result.ledger = ledger_.summary();
  // The metrics copy in the result must not carry a pointer to this scope's
  // (stack-lifetime) ledger.
  result.metrics.attach_ledger(nullptr);
}

}  // namespace flint::fl
