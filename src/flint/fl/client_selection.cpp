#include "flint/fl/client_selection.h"

#include <cmath>
#include <unordered_set>

#include "flint/util/check.h"

namespace flint::fl {

std::vector<sim::Arrival> select_cohort(sim::ArrivalScheduler& scheduler, sim::VirtualTime t,
                                        std::size_t count, const ExcludedUntilFn& excluded_until,
                                        double max_wait_s) {
  FLINT_CHECK_GT(count, std::size_t{0});
  FLINT_CHECK_FINITE(max_wait_s);
  FLINT_CHECK_GE(max_wait_s, 0.0);
  std::vector<sim::Arrival> cohort;
  std::unordered_set<std::uint64_t> picked;
  sim::VirtualTime cursor = t;
  while (cohort.size() < count) {
    auto arrival = scheduler.next(cursor);
    if (!arrival.has_value()) break;
    if (arrival->time > t + max_wait_s) {
      // Too late for this round; put it back untouched for the next one.
      scheduler.requeue(*arrival, arrival->time);
      break;
    }
    cursor = arrival->time;
    if (picked.count(arrival->client_id) > 0) continue;  // same client, later window
    if (excluded_until) {
      std::optional<sim::VirtualTime> until = excluded_until(arrival->client_id);
      if (until.has_value() && *until > cursor) {
        // Re-offer exactly when the exclusion lapses.
        scheduler.requeue(*arrival, std::max(*until, arrival->time));
        continue;
      }
    }
    picked.insert(arrival->client_id);
    cohort.push_back(*arrival);
  }
  return cohort;
}

std::size_t overcommitted_size(std::size_t cohort, double factor) {
  FLINT_CHECK_GT(cohort, std::size_t{0});
  FLINT_CHECK_FINITE(factor);
  FLINT_CHECK_GE(factor, 1.0);
  return static_cast<std::size_t>(std::ceil(static_cast<double>(cohort) * factor));
}

}  // namespace flint::fl
