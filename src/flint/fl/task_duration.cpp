#include "flint/fl/task_duration.h"

#include "flint/util/check.h"

namespace flint::fl {

TaskDurationModel::TaskDurationModel(const TaskDurationConfig& config,
                                     const device::DeviceCatalog& catalog,
                                     const net::BandwidthModel& bandwidth)
    : config_(config), catalog_(&catalog), bandwidth_(&bandwidth) {
  FLINT_CHECK_FINITE(config.base_time_per_example_s);
  FLINT_CHECK_GT(config.base_time_per_example_s, 0.0);
  FLINT_CHECK_GE(config.local_epochs, 1);
  FLINT_CHECK_GT(config.update_bytes, std::uint64_t{0});
}

TaskDurationModel::Sample TaskDurationModel::sample(std::size_t device_index,
                                                    std::size_t examples,
                                                    util::Rng& rng) const {
  FLINT_CHECK_GT(examples, std::size_t{0});
  const device::DeviceProfile& dev = catalog_->profile(device_index);
  // t ~ T: fleet-mean per-example time scaled by the device's effective
  // speed for this model plus run-to-run jitter.
  double t = config_.base_time_per_example_s *
             device::effective_speed(dev, config_.memory_intensity) *
             rng.lognormal(0.0, config_.jitter_sigma);
  Sample s;
  s.compute_s = t * static_cast<double>(config_.local_epochs) * static_cast<double>(examples);
  double mbps = bandwidth_->sample_mbps(rng);
  s.comm_s = net::transfer_seconds(2 * config_.update_bytes, mbps);
  return s;
}

TaskDurationConfig TaskDurationModel::from_spec(const ml::ModelSpec& spec, int local_epochs) {
  TaskDurationConfig cfg;
  cfg.base_time_per_example_s = spec.calibration.base_time_per_5k_s / 5000.0;
  cfg.memory_intensity = device::model_memory_intensity(spec.id);
  cfg.local_epochs = local_epochs;
  // The calibration's network payload covers download + upload, so M is half.
  cfg.update_bytes = static_cast<std::uint64_t>(spec.calibration.network_mb * 1e6 / 2.0);
  return cfg;
}

}  // namespace flint::fl
