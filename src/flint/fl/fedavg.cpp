#include "flint/fl/fedavg.h"

#include <algorithm>

#include "flint/fl/aggregator.h"
#include "flint/fl/client_selection.h"
#include "flint/fl/trainer_pool.h"
#include "flint/obs/telemetry.h"
#include "flint/util/check.h"
#include "flint/util/logging.h"

namespace flint::fl {

namespace {

/// A dispatched cohort member with its (pre-computed) fate.
struct CohortTask {
  sim::TaskSpec spec;
  sim::VirtualTime finish = 0.0;
  bool window_interrupted = false;
  double spent_compute_s = 0.0;
  std::uint64_t client_id = 0;
};

}  // namespace

RunResult run_fedavg(const SyncConfig& config) {
  const RunInputs& in = config.inputs;
  validate_common_inputs(in);
  FLINT_CHECK_GT(config.cohort_size, std::size_t{0});
  FLINT_CHECK_FINITE(config.round_deadline_s);
  FLINT_CHECK_GT(config.round_deadline_s, 0.0);
  RunTelemetryScope telemetry_scope(in);

  // Arrivals come from the materialized trace or the lazy window stream —
  // exactly one is set (validated above); results are identical either way.
  std::optional<sim::Leader> leader_storage;
  if (in.trace != nullptr)
    leader_storage.emplace(in.leader, *in.trace);
  else
    leader_storage.emplace(in.leader, *in.window_stream);
  sim::Leader& leader = *leader_storage;
  for (const auto& o : in.outages) leader.executors().add_outage(o);
  RunAttributionScope attribution_scope(in, leader);
  TaskDurationModel durations(in.duration, *in.catalog, *in.bandwidth);
  TrainerPool trainers(in);

  std::vector<float> params;
  std::unique_ptr<ml::Model> eval_model;
  if (!in.model_free) {
    params = in.model_template->get_flat_parameters();
    eval_model = in.model_template->clone();
  }

  RunResult result;
  ServerOptimizer server_opt(in.server_lr, in.server_momentum);
  ParticipationPool last_participation;
  std::uint64_t task_ids = 0;
  sim::VirtualTime t = 0.0;
  std::uint64_t round = 0;
  // Server-side RNG stream, checkpointed with the run. The sync runner draws
  // nothing from it today; restoring it keeps resume bit-identical the moment
  // any server-side stochastic decision lands (DESIGN.md §12).
  util::Rng server_rng = util::derive_stream(in.seed, kServerRngStreamId);
  std::uint64_t resume_count = 0;

  if (auto resume = load_resume_state(in, store::kCheckpointAlgoFedAvg)) {
    const store::SimCheckpoint& c = *resume;
    if (!in.model_free) {
      FLINT_CHECK_EQ(c.model_parameters.size(), params.size());
      params = c.model_parameters;
    }
    server_opt.restore_velocity(c.server_velocity);
    if (!c.server_rng_state.empty()) server_rng.deserialize_state(c.server_rng_state);
    task_ids = c.next_task_id;
    round = c.round;
    t = c.virtual_time_s;
    last_participation.restore(c.last_participation);
    leader.arrivals().restore(static_cast<std::size_t>(c.arrival_cursor),
                              restore_requeued(c.requeued));
    leader.restore(c);
    attribution_scope.restore(c.client_accounts);
    result.eval_curve = restore_eval_curve(c.eval_curve);
    result.resumed_from_round = c.round;
    resume_count = c.resume_count + 1;
    result.resume_count = resume_count;
  }

  // Everything the resume path needs beyond the base fields Leader fills;
  // runs only when the cadence actually writes a checkpoint.
  auto fill_checkpoint = [&](store::SimCheckpoint& ckpt) {
    ckpt.run_seed = in.seed;
    ckpt.algo = store::kCheckpointAlgoFedAvg;
    ckpt.resume_count = resume_count;
    ckpt.server_velocity = server_opt.velocity();
    ckpt.server_rng_state = server_rng.serialize_state();
    ckpt.next_task_id = task_ids;
    ckpt.arrival_cursor = leader.arrivals().cursor();
    ckpt.requeued = checkpoint_requeued(leader.arrivals().requeued_snapshot());
    ckpt.last_participation = checkpoint_participation(last_participation);
    ckpt.metrics = leader.metrics().snapshot();
    ckpt.eval_curve = checkpoint_eval_curve(result.eval_curve);
    ckpt.client_accounts = attribution_scope.accounts();
  };

  auto evaluate = [&](sim::VirtualTime when) {
    if (in.model_free || in.test == nullptr) return;
    eval_model->set_flat_parameters(params);
    double metric = data::evaluate_examples(*eval_model, *in.test, in.domain, in.dense_dim,
                                            trainers.pool());
    result.eval_curve.push_back({when, round, metric, 0.0});
  };

  while (round < in.max_rounds && t < in.max_virtual_s) {
    t = leader.dispatch_gate(t);
    std::size_t dispatch_n = overcommitted_size(config.cohort_size, config.overcommit);
    auto exclude = [&](std::uint64_t client) -> std::optional<sim::VirtualTime> {
      auto when = last_participation.last(client);
      if (!when.has_value()) return std::nullopt;
      return *when + in.reparticipation_gap_s;  // <= now means eligible
    };
    auto cohort = select_cohort(leader.arrivals(), t, dispatch_n, exclude, config.cohort_wait_s);
    if (cohort.empty()) {
      auto next_time = leader.arrivals().peek_time(t);
      if (!next_time.has_value()) break;  // trace exhausted
      t = *next_time;
      continue;
    }

    sim::VirtualTime round_start = t;
    sim::VirtualTime deadline = round_start + config.round_deadline_s;
    std::vector<CohortTask> tasks;
    std::vector<sim::Arrival> rejoining;
    for (const auto& arr : cohort) {
      std::size_t examples = client_example_count(in, arr.client_id);
      if (examples == 0) continue;
      sim::VirtualTime dispatch_t = std::max<sim::VirtualTime>(arr.time, round_start);
      // Duration randomness comes from the task's own derived stream, keyed
      // by the id this task is about to take — a shared Rng here would make
      // the draw order (and thus every duration) depend on thread timing.
      util::Rng dur_rng = util::derive_stream(in.seed, task_ids, kRngStreamDuration);
      auto dur = durations.sample(arr.device_index, examples, dur_rng);
      CohortTask task;
      task.client_id = arr.client_id;
      task.spec = {task_ids++, arr.client_id, arr.device_index, round, dispatch_t,
                   dur.compute_s, dur.comm_s, examples, in.duration.update_bytes};
      task.finish = dispatch_t + dur.total_s();
      task.window_interrupted = task.finish > arr.window_end;
      if (task.window_interrupted) {
        task.finish = arr.window_end;
        task.spent_compute_s =
            std::min(dur.compute_s, std::max(0.0, arr.window_end - dispatch_t));
      } else {
        task.spent_compute_s = dur.compute_s;
      }
      leader.metrics().on_task_started();
      leader.executors().record_task(leader.executors().executor_of(arr.client_id));
      last_participation.record(arr.client_id, dispatch_t);
      // The device stays in its availability window after the task; re-offer
      // the window remainder so it can participate in later rounds.
      if (!task.window_interrupted && task.finish < arr.window_end) {
        sim::Arrival rejoin = arr;
        rejoin.time = task.finish;
        rejoining.push_back(rejoin);
      }
      tasks.push_back(std::move(task));
    }
    for (const auto& rejoin : rejoining)
      leader.arrivals().requeue(rejoin, rejoin.time);
    if (tasks.empty()) {
      t = round_start + 1.0;
      continue;
    }
    std::sort(tasks.begin(), tasks.end(),
              [](const CohortTask& a, const CohortTask& b) { return a.finish < b.finish; });

    // Decide fates: the first cohort_size on-time completions succeed;
    // later completions are stragglers (stale); window-cut tasks are
    // interrupted.
    std::vector<const CohortTask*> successes;
    sim::VirtualTime round_end = deadline;
    for (const auto& task : tasks) {
      sim::TaskResult tr;
      tr.spec = task.spec;
      tr.finish_time = task.finish;
      tr.spent_compute_s = task.spent_compute_s;
      if (task.window_interrupted) {
        tr.outcome = sim::TaskOutcome::kInterrupted;
      } else if (task.finish <= deadline && successes.size() < config.cohort_size) {
        tr.outcome = sim::TaskOutcome::kSucceeded;
        successes.push_back(&task);
        if (successes.size() == config.cohort_size) round_end = task.finish;
      } else {
        tr.outcome = sim::TaskOutcome::kStale;
      }
      leader.metrics().on_task_finished(tr);
    }

    if (successes.empty()) {
      // Nothing aggregated this round; move past the deadline and retry.
      t = deadline;
      continue;
    }

    ++round;
    // The sync runner drives virtual time by hand (no EventQueue), so it
    // publishes the clock itself: round_start before the span opens and
    // round_end before it closes, giving the span its virtual duration.
    obs::advance_virtual_time(round_start);
    FLINT_TRACE_SPAN("fedavg.round", "fl");
    obs::add_counter("fl.rounds");
    obs::set_gauge("fl.round", static_cast<double>(round));
    obs::record_histogram("fl.round_duration_s", round_end - round_start, 0.0, 7200.0, 48);
    if (!in.model_free) {
      UpdateAccumulator acc(params.size());
      LocalTrainConfig local = in.local;
      local.lr = in.client_lr.at(round - 1);
      std::size_t participants = successes.size();
      // Fan the cohort across whatever execution mode the run uses (serial /
      // thread pool / rpc executors), then reduce in the fixed `successes`
      // order — consuming in submission order imposes the serial reduction
      // sequence, so the accumulator sees identical updates on every mode.
      // `params` is only mutated after every pending update is consumed.
      std::vector<PendingUpdate> pending;
      pending.reserve(successes.size());
      for (const CohortTask* task : successes) {
        pending.push_back(trainers.submit_update(
            in, in.dataset->client(task->client_id).examples, params, local,
            task->spec.task_id, task->client_id, round, participants));
      }
      for (auto& p : pending) {
        ClientUpdate update = p.get();
        acc.add(update.train.delta, update.weight);
      }
      auto mean = acc.weighted_mean();
      server_opt.step(params, mean);
    }

    leader.metrics().on_round({round, round_start, round_end,
                               successes.size(), /*mean_staleness=*/0.0});
    if (in.eval_every_rounds > 0 && round % in.eval_every_rounds == 0) evaluate(round_end);
    // Checkpoint after the round's eval so the snapshot carries the complete
    // state through this round; a resume then replays only future rounds.
    leader.on_aggregation(round, params, leader.metrics().tasks_succeeded(), fill_checkpoint);
    if (in.round_hook) in.round_hook(round);
    t = round_end;
    obs::advance_virtual_time(round_end);  // closes the round span at round_end
  }

  result.virtual_duration_s = t;
  result.rounds = round;
  if (!in.model_free && in.test != nullptr) {
    eval_model->set_flat_parameters(params);
    result.final_metric = data::evaluate_examples(*eval_model, *in.test, in.domain,
                                                  in.dense_dim, trainers.pool());
    if (result.eval_curve.empty() || result.eval_curve.back().round != round)
      result.eval_curve.push_back({t, round, result.final_metric, 0.0});
  }
  result.final_parameters = std::move(params);
  result.metrics = leader.metrics();
  attribution_scope.finish(result);
  telemetry_scope.finish(result);
  return result;
}

}  // namespace flint::fl
