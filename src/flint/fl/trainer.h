// Local (on-device) training and the centralized baseline trainer.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "flint/data/synthetic_tasks.h"
#include "flint/ml/model.h"
#include "flint/ml/optimizer.h"

namespace flint::fl {

/// Hyper-parameters of one client's local training pass.
struct LocalTrainConfig {
  double lr = 0.05;
  int epochs = 1;
  std::size_t batch_size = 16;
  data::LossKind loss = data::LossKind::kBinaryCrossEntropy;
  /// Gradient clip (L2, per step); 0 disables.
  double clip_norm = 0.0;
  double momentum = 0.0;
  /// FedProx proximal coefficient mu (Li et al., 2020): adds mu*(w - w_global)
  /// to every gradient step, limiting client drift under heterogeneity.
  /// 0 disables (plain FedAvg local SGD).
  double prox_mu = 0.0;
};

/// One client's result: the parameter delta relative to the global model.
struct LocalTrainResult {
  std::vector<float> delta;
  double mean_loss = 0.0;
  std::size_t examples = 0;
};

/// Reusable local trainer: holds one model replica per executor and runs
/// SGD from a supplied global parameter vector. Ranking tasks step per
/// group; classification tasks step per mini-batch.
class LocalTrainer {
 public:
  /// `model` is the replica this trainer mutates; `dense_dim` is the batch
  /// densification width (0 for token-only models).
  LocalTrainer(std::unique_ptr<ml::Model> model, std::size_t dense_dim);

  LocalTrainResult train(std::span<const ml::Example> data,
                         std::span<const float> global_params,
                         const LocalTrainConfig& config);

  ml::Model& model() { return *model_; }

 private:
  double train_classification(std::span<const ml::Example> data, const LocalTrainConfig& config,
                              ml::SgdOptimizer& opt);
  double train_ranking(std::span<const ml::Example> data, const LocalTrainConfig& config,
                       ml::SgdOptimizer& opt);
  /// Add mu*(w - w_anchor) to the accumulated gradients (FedProx).
  void add_proximal_gradient(double mu);

  std::unique_ptr<ml::Model> model_;
  std::size_t dense_dim_;
  std::vector<float> prox_anchor_;  ///< global params for the current call
  // Ranking scratch, reused across train() calls so repeat clients don't
  // re-pay the allocations (capacity persists; contents are per-call).
  std::vector<std::size_t> ranking_order_;
  std::vector<ml::Example> ranking_grouped_;
};

/// Centralized baseline: epochs of shuffled mini-batch SGD over the merged
/// dataset. Returns the per-epoch metric curve on `task.test`.
std::vector<double> train_centralized(ml::Model& model, const data::FederatedTask& task,
                                      const LocalTrainConfig& config, int epochs,
                                      util::Rng& rng);

}  // namespace flint::fl
