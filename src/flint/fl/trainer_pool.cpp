#include "flint/fl/trainer_pool.h"

#include <utility>

#include "flint/obs/telemetry.h"
#include "flint/rpc/leader.h"
#include "flint/util/check.h"

namespace flint::fl {

TrainerPool::TrainerPool(const RunInputs& inputs) {
  FLINT_CHECK_GT(inputs.threads, std::size_t{0});
  std::size_t workers = inputs.threads > 1 ? inputs.threads : 0;
  if (!inputs.model_free) {
    FLINT_CHECK_MSG(inputs.model_template != nullptr, "model-full run without a model");
    replicas_.reserve(workers + 1);
    for (std::size_t i = 0; i < workers + 1; ++i)
      replicas_.push_back(std::make_unique<LocalTrainer>(inputs.model_template->clone(),
                                                         inputs.dense_dim));
  }
  if (workers == 0) return;
  busy_gauge_names_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    busy_gauge_names_.push_back("util.pool.thread." + std::to_string(i) + ".busy_s");
  util::ThreadPoolObserver observer;
  observer.on_task_submitted = [] { obs::add_counter("util.pool.tasks_submitted"); };
  observer.on_queue_depth = [](std::size_t depth) {
    obs::set_gauge("util.pool.queue_depth", static_cast<double>(depth));
  };
  observer.on_busy_workers = [](std::size_t busy) {
    obs::set_gauge("util.pool.busy_workers", static_cast<double>(busy));
  };
  observer.on_worker_busy = [this](std::size_t worker, double busy_s) {
    obs::set_gauge(busy_gauge_names_[worker].c_str(), busy_s);
  };
  pool_ = std::make_unique<util::ThreadPool>(workers, std::move(observer));
}

LocalTrainer& TrainerPool::trainer() {
  FLINT_CHECK_MSG(!replicas_.empty(), "TrainerPool::trainer() on a model-free run");
  std::size_t worker = util::ThreadPool::worker_index();
  if (worker == util::ThreadPool::npos) return *replicas_[0];
  FLINT_CHECK_LT(worker + 1, replicas_.size());
  return *replicas_[worker + 1];
}

ClientUpdate compute_client_update_raw(LocalTrainer& trainer,
                                       std::span<const ml::Example> data,
                                       std::span<const float> params,
                                       const LocalTrainConfig& local, std::uint64_t seed,
                                       std::uint64_t task_id,
                                       const std::optional<privacy::DpConfig>& dp,
                                       std::size_t dp_participants,
                                       const compress::CompressionConfig& compression) {
  if (util::ThreadPool::worker_index() != util::ThreadPool::npos)
    obs::add_counter("fl.parallel_train_batches");
  ClientUpdate update;
  update.train = trainer.train(data, params, local);
  if (dp.has_value()) {
    util::Rng dp_rng = util::derive_stream(seed, task_id, kRngStreamDp);
    privacy::apply_dp(update.train.delta, *dp, dp_participants, dp_rng);
    update.weight = 1.0;  // DP requires uniform weights
  } else {
    update.weight = static_cast<double>(update.train.examples);
  }
  if (compression.enabled()) compress::apply_compression(update.train.delta, compression);
  return update;
}

ClientUpdate compute_client_update(LocalTrainer& trainer, const RunInputs& inputs,
                                   std::span<const ml::Example> data,
                                   std::span<const float> params,
                                   const LocalTrainConfig& local, std::uint64_t task_id,
                                   std::size_t dp_participants) {
  return compute_client_update_raw(trainer, data, params, local, inputs.seed, task_id,
                                   inputs.dp, dp_participants, inputs.compression);
}

PendingUpdate PendingUpdate::ready(ClientUpdate update) {
  PendingUpdate p;
  p.kind_ = Kind::kReady;
  p.ready_ = std::move(update);
  return p;
}

PendingUpdate PendingUpdate::in_flight(std::future<ClientUpdate> future) {
  PendingUpdate p;
  p.kind_ = Kind::kFuture;
  p.future_ = std::move(future);
  return p;
}

PendingUpdate PendingUpdate::remote(rpc::Leader* leader, std::uint64_t lease_id) {
  PendingUpdate p;
  p.kind_ = Kind::kRemote;
  p.leader_ = leader;
  p.lease_id_ = lease_id;
  return p;
}

ClientUpdate PendingUpdate::get() {
  FLINT_CHECK_MSG(valid(), "PendingUpdate::get() on a consumed update");
  Kind kind = kind_;
  kind_ = Kind::kInvalid;
  switch (kind) {
    case Kind::kReady:
      return std::move(ready_);
    case Kind::kFuture:
      return future_.get();
    case Kind::kRemote: {
      rpc::TaskResultMsg result = leader_->wait(lease_id_);
      ClientUpdate update;
      update.train.delta = result.take_delta();
      update.train.mean_loss = result.mean_loss;
      update.train.examples = static_cast<std::size_t>(result.examples);
      update.weight = result.weight;
      return update;
    }
    case Kind::kInvalid:
      break;
  }
  FLINT_CHECK_MSG(false, "unreachable PendingUpdate kind");
  return {};
}

PendingUpdate TrainerPool::submit_update(
    const RunInputs& inputs, std::span<const ml::Example> data,
    std::span<const float> params, const LocalTrainConfig& local, std::uint64_t task_id,
    std::uint64_t client_id, std::uint64_t round, std::size_t dp_participants,
    std::shared_ptr<const std::vector<float>> params_keepalive) {
  if (inputs.rpc_leader != nullptr) {
    // Remote lease: the full input set of compute_client_update_raw travels
    // in the message, so any executor produces byte-identical results.
    rpc::TaskLeaseMsg lease;
    lease.task_id = task_id;
    lease.client_id = client_id;
    lease.round = round;
    lease.seed = inputs.seed;
    lease.dp_participants = dp_participants;
    lease.lr = local.lr;
    lease.epochs = local.epochs;
    lease.batch_size = local.batch_size;
    lease.loss_kind = static_cast<std::uint32_t>(local.loss);
    lease.clip_norm = local.clip_norm;
    lease.momentum = local.momentum;
    lease.prox_mu = local.prox_mu;
    if (inputs.dp.has_value()) {
      lease.has_dp = true;
      lease.dp_clip_norm = inputs.dp->clip_norm;
      lease.dp_noise_multiplier = inputs.dp->noise_multiplier;
      lease.dp_delta = inputs.dp->delta;
    }
    lease.compression_kind = static_cast<std::uint32_t>(inputs.compression.kind);
    lease.top_k_fraction = inputs.compression.top_k_fraction;
    lease.params.assign(params.begin(), params.end());
    lease.examples.assign(data.begin(), data.end());
    return PendingUpdate::remote(inputs.rpc_leader,
                                 inputs.rpc_leader->submit(std::move(lease)));
  }
  if (pool_ != nullptr) {
    // Pool task: `params` (kept alive by the caller or `params_keepalive`)
    // is read when the worker runs, which is semantically identical — the
    // runners never mutate params while updates are in flight against it.
    auto keepalive = std::move(params_keepalive);
    return PendingUpdate::in_flight(
        pool_->submit([this, &inputs, data, params, keepalive, local, task_id,
                       dp_participants] {
          return compute_client_update(trainer(), inputs, data, params, local, task_id,
                                       dp_participants);
        }));
  }
  return PendingUpdate::ready(compute_client_update(trainer(), inputs, data, params, local,
                                                    task_id, dp_participants));
}

}  // namespace flint::fl
