#include "flint/fl/trainer_pool.h"

#include <utility>

#include "flint/obs/telemetry.h"
#include "flint/util/check.h"

namespace flint::fl {

TrainerPool::TrainerPool(const RunInputs& inputs) {
  FLINT_CHECK_GT(inputs.threads, std::size_t{0});
  std::size_t workers = inputs.threads > 1 ? inputs.threads : 0;
  if (!inputs.model_free) {
    FLINT_CHECK_MSG(inputs.model_template != nullptr, "model-full run without a model");
    replicas_.reserve(workers + 1);
    for (std::size_t i = 0; i < workers + 1; ++i)
      replicas_.push_back(std::make_unique<LocalTrainer>(inputs.model_template->clone(),
                                                         inputs.dense_dim));
  }
  if (workers == 0) return;
  busy_gauge_names_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    busy_gauge_names_.push_back("util.pool.thread." + std::to_string(i) + ".busy_s");
  util::ThreadPoolObserver observer;
  observer.on_task_submitted = [] { obs::add_counter("util.pool.tasks_submitted"); };
  observer.on_queue_depth = [](std::size_t depth) {
    obs::set_gauge("util.pool.queue_depth", static_cast<double>(depth));
  };
  observer.on_busy_workers = [](std::size_t busy) {
    obs::set_gauge("util.pool.busy_workers", static_cast<double>(busy));
  };
  observer.on_worker_busy = [this](std::size_t worker, double busy_s) {
    obs::set_gauge(busy_gauge_names_[worker].c_str(), busy_s);
  };
  pool_ = std::make_unique<util::ThreadPool>(workers, std::move(observer));
}

LocalTrainer& TrainerPool::trainer() {
  FLINT_CHECK_MSG(!replicas_.empty(), "TrainerPool::trainer() on a model-free run");
  std::size_t worker = util::ThreadPool::worker_index();
  if (worker == util::ThreadPool::npos) return *replicas_[0];
  FLINT_CHECK_LT(worker + 1, replicas_.size());
  return *replicas_[worker + 1];
}

ClientUpdate compute_client_update(LocalTrainer& trainer, const RunInputs& inputs,
                                   std::span<const ml::Example> data,
                                   std::span<const float> params,
                                   const LocalTrainConfig& local, std::uint64_t task_id,
                                   std::size_t dp_participants) {
  if (util::ThreadPool::worker_index() != util::ThreadPool::npos)
    obs::add_counter("fl.parallel_train_batches");
  ClientUpdate update;
  update.train = trainer.train(data, params, local);
  if (inputs.dp.has_value()) {
    util::Rng dp_rng = util::derive_stream(inputs.seed, task_id, kRngStreamDp);
    privacy::apply_dp(update.train.delta, *inputs.dp, dp_participants, dp_rng);
    update.weight = 1.0;  // DP requires uniform weights
  } else {
    update.weight = static_cast<double>(update.train.examples);
  }
  if (inputs.compression.enabled())
    compress::apply_compression(update.train.delta, inputs.compression);
  return update;
}

}  // namespace flint::fl
