#include "flint/fl/fedbuff.h"

#include <algorithm>
#include <future>
#include <map>
#include <memory>
#include <unordered_set>

#include "flint/fl/aggregator.h"
#include "flint/fl/trainer_pool.h"
#include "flint/obs/telemetry.h"
#include "flint/util/check.h"
#include "flint/util/logging.h"

namespace flint::fl {

namespace {

struct InFlight;

/// Whole-run mutable state, shared by the event callbacks.
struct FedBuffState {
  const AsyncConfig* config = nullptr;
  std::unique_ptr<sim::Leader> leader;
  std::unique_ptr<TaskDurationModel> durations;
  std::unique_ptr<TrainerPool> trainers;
  std::unique_ptr<ml::Model> eval_model;
  std::unique_ptr<UpdateAccumulator> accumulator;
  std::unique_ptr<ServerOptimizer> server_opt;

  std::vector<float> params;
  /// Immutable copy of `params` for in-flight training jobs. Workers train
  /// against the snapshot their task captured at dispatch, so aggregate()
  /// can mutate `params` while clients are still training — exactly the
  /// async-staleness semantics the serial path simulates. Refreshed (copy,
  /// not mutation) after every server step; only maintained when a pool
  /// exists.
  std::shared_ptr<const std::vector<float>> params_snapshot;
  std::uint64_t version = 0;  ///< server model version (aggregations so far)
  std::size_t running = 0;
  std::unordered_set<std::uint64_t> busy;
  ParticipationPool last_participation;
  std::uint64_t task_ids = 0;
  double staleness_sum = 0.0;  ///< over the current buffer
  sim::VirtualTime round_start = 0.0;
  bool pump_scheduled = false;
  sim::VirtualTime pump_time = 0.0;  ///< when the scheduled pump retry fires
  std::uint64_t pump_stamp = 0;      ///< its scheduling stamp
  bool done = false;
  sim::VirtualTime last_aggregation_time = 0.0;
  /// Scheduling stamp counter: every EventQueue::schedule() this runner makes
  /// takes the next stamp, mirroring the queue's FIFO tie-break for same-time
  /// events. Checkpointed per pending event so a resumed run can re-schedule
  /// them in the original relative order (DESIGN.md §12).
  std::uint64_t next_stamp = 0;
  /// Pending completion events by task id; the checkpoint serializes these so
  /// resume can rebuild the event queue.
  std::map<std::uint64_t, std::shared_ptr<InFlight>> in_flight;
  /// Server-side RNG stream, checkpointed with the run. The async runner
  /// draws nothing from it today; restoring it keeps resume bit-identical the
  /// moment any server-side stochastic decision lands (DESIGN.md §12).
  util::Rng server_rng{1};
  std::uint64_t resume_count = 0;
  RunAttributionScope* attribution = nullptr;
  RunResult result;

  // Telemetry handles for the per-task hot path (single-threaded pump).
  obs::CachedCounter dispatched_counter;
  obs::CachedCounter aggregations_counter;
  obs::CachedHistogram staleness_hist;
  obs::CachedHistogram round_duration_hist;
  obs::CachedGauge buffer_gauge;
  obs::CachedGauge round_gauge;
  obs::CachedGauge in_flight_gauge;
};

/// One in-flight task: its spec plus the local update — computed eagerly at
/// dispatch on the serial path, in flight on a pool worker, or leased to an
/// rpc executor (`pending` abstracts all three; the completion handler
/// consumes it in virtual-time event order and therefore reduces
/// deterministically).
struct InFlight {
  sim::TaskSpec spec;
  double spent_compute_s = 0.0;
  sim::VirtualTime window_end = 0.0;
  sim::VirtualTime finish_time = 0.0;  ///< when the completion event fires
  bool interrupted = false;            ///< completion outcome decided at dispatch
  std::uint64_t stamp = 0;             ///< FedBuffState::next_stamp at schedule time
  ClientUpdate update;
  PendingUpdate pending;
};

void pump(FedBuffState& s);

void evaluate(FedBuffState& s, sim::VirtualTime when) {
  const RunInputs& in = s.config->inputs;
  if (in.model_free || in.test == nullptr) return;
  FLINT_TRACE_SPAN("fedbuff.evaluate", "fl");
  s.eval_model->set_flat_parameters(s.params);
  double metric = data::evaluate_examples(*s.eval_model, *in.test, in.domain, in.dense_dim,
                                          s.trainers->pool());
  s.result.eval_curve.push_back({when, s.version, metric, 0.0});
}

/// Everything the resume path needs beyond the base fields Leader fills; runs
/// only when the cadence actually writes a checkpoint.
void fill_checkpoint(FedBuffState& s, store::SimCheckpoint& ckpt) {
  const RunInputs& in = s.config->inputs;
  ckpt.run_seed = in.seed;
  ckpt.algo = store::kCheckpointAlgoFedBuff;
  ckpt.resume_count = s.resume_count;
  ckpt.server_velocity = s.server_opt->velocity();
  ckpt.server_rng_state = s.server_rng.serialize_state();
  ckpt.next_task_id = s.task_ids;
  ckpt.arrival_cursor = s.leader->arrivals().cursor();
  ckpt.requeued = checkpoint_requeued(s.leader->arrivals().requeued_snapshot());
  ckpt.last_participation = checkpoint_participation(s.last_participation);
  ckpt.metrics = s.leader->metrics().snapshot();
  ckpt.eval_curve = checkpoint_eval_curve(s.result.eval_curve);
  if (s.attribution != nullptr) ckpt.client_accounts = s.attribution->accounts();
  ckpt.has_fedbuff = true;
  store::CheckpointFedBuff& fb = ckpt.fedbuff;
  fb.accumulator_sum = s.accumulator->sum();
  fb.accumulator_weight_sum = s.accumulator->weight_sum();
  fb.accumulator_count = s.accumulator->count();
  fb.staleness_sum = s.staleness_sum;
  fb.round_start = s.round_start;
  fb.last_aggregation_time = s.last_aggregation_time;
  fb.pump_scheduled = s.pump_scheduled;
  fb.pump_time = s.pump_time;
  fb.pump_stamp = s.pump_stamp;
  fb.next_stamp = s.next_stamp;
  fb.in_flight.reserve(s.in_flight.size());
  for (const auto& [id, task] : s.in_flight) {
    // Join a still-running worker now: the update is a pure function of the
    // dispatch-time snapshot, so materializing it early cannot change it —
    // the completion handler will simply find it already joined.
    if (task->pending.valid()) task->update = task->pending.get();
    store::CheckpointInFlightTask rec;
    rec.task_id = task->spec.task_id;
    rec.client_id = task->spec.client_id;
    rec.device_index = static_cast<std::uint64_t>(task->spec.device_index);
    rec.model_version = task->spec.model_version;
    rec.dispatch_time = task->spec.dispatch_time;
    rec.compute_s = task->spec.compute_s;
    rec.comm_s = task->spec.comm_s;
    rec.examples = static_cast<std::uint64_t>(task->spec.examples);
    rec.update_bytes = task->spec.update_bytes;
    rec.spent_compute_s = task->spent_compute_s;
    rec.window_end = task->window_end;
    rec.finish_time = task->finish_time;
    rec.interrupted = task->interrupted;
    rec.stamp = task->stamp;
    rec.update_weight = task->update.weight;
    rec.update_delta = task->update.train.delta;
    fb.in_flight.push_back(std::move(rec));
  }
}

void aggregate(FedBuffState& s) {
  FLINT_TRACE_SPAN("fedbuff.aggregate", "fl");
  const RunInputs& in = s.config->inputs;
  sim::VirtualTime now = s.leader->queue().now();
  double mean_staleness =
      s.accumulator->empty() ? 0.0
                             : s.staleness_sum / static_cast<double>(s.accumulator->count());
  // Every buffered update passed the staleness gate individually, so the
  // buffer mean must respect the configured bound too.
  FLINT_CHECK_LE(mean_staleness, static_cast<double>(s.config->max_staleness));
  std::size_t aggregated = s.accumulator->count();
  if (!in.model_free) {
    auto mean = s.accumulator->weighted_mean();
    s.server_opt->step(s.params, mean);
    if (s.trainers->pool() != nullptr)
      s.params_snapshot = std::make_shared<const std::vector<float>>(s.params);
  }
  s.accumulator->reset();
  s.staleness_sum = 0.0;
  ++s.version;
  s.leader->metrics().on_round({s.version, s.round_start, now, aggregated, mean_staleness});
  if (auto* g = s.round_gauge.resolve("fl.round")) g->set(static_cast<double>(s.version));
  if (auto* c = s.aggregations_counter.resolve("fl.aggregations")) c->add(1);
  if (auto* h = s.round_duration_hist.resolve("fl.round_duration_s", 0.0, 7200.0, 48))
    h->record(now - s.round_start);
  s.round_start = now;
  s.last_aggregation_time = now;
  FLINT_LOG_DEBUG << "fedbuff aggregation v=" << s.version << " t=" << now
                  << " running=" << s.running;
  if (in.eval_every_rounds > 0 && s.version % in.eval_every_rounds == 0) evaluate(s, now);
  if (s.version >= in.max_rounds || now >= in.max_virtual_s) s.done = true;
  // Checkpoint last, after this round's eval point is recorded, so the
  // snapshot carries the complete round and a resume replays only the future.
  s.leader->on_aggregation(s.version, s.params, s.leader->metrics().tasks_succeeded(),
                           [&s](store::SimCheckpoint& ckpt) { fill_checkpoint(s, ckpt); });
  if (in.round_hook) in.round_hook(s.version);
}

void on_task_end(FedBuffState& s, InFlight& task, bool interrupted) {
  s.in_flight.erase(task.spec.task_id);
  if (auto* g = s.in_flight_gauge.resolve("fl.tasks_in_flight"))
    g->set(static_cast<double>(s.in_flight.size()));
  --s.running;
  s.busy.erase(task.spec.client_id);

  sim::TaskResult tr;
  tr.spec = task.spec;
  tr.finish_time = s.leader->queue().now();
  tr.spent_compute_s = task.spent_compute_s;
  bool buffer_full = false;
  if (interrupted) {
    tr.outcome = sim::TaskOutcome::kInterrupted;
  } else {
    // Join the worker if the update is still in flight — also for updates
    // about to be discarded as stale, so no task outlives its completion
    // event. Completions run in virtual-time order, independent of thread
    // count, so the accumulator sees the same sequence as the serial path.
    if (task.pending.valid()) task.update = task.pending.get();
    // Staleness bound: a task can never have trained on a model version the
    // server hasn't produced yet (unsigned subtraction would wrap).
    FLINT_CHECK_GE(s.version, task.spec.model_version);
    std::uint64_t staleness = s.version - task.spec.model_version;
    if (s.done || staleness > s.config->max_staleness) {
      tr.outcome = sim::TaskOutcome::kStale;
    } else {
      tr.outcome = sim::TaskOutcome::kSucceeded;
      // Staleness distribution (Figure 8's control variable) as a live
      // histogram, bucketed per model-version lag.
      if (auto* h = s.staleness_hist.resolve(
              "fl.staleness", 0.0, static_cast<double>(s.config->max_staleness) + 1.0,
              std::min<std::size_t>(s.config->max_staleness + 1, 64)))
        h->record(static_cast<double>(staleness));
      if (!s.config->inputs.model_free) {
        double w = s.config->staleness_weighting ? staleness_weight(staleness) : 1.0;
        s.accumulator->add(task.update.train.delta, w);
      } else {
        // Model-free mode still tracks buffer occupancy with unit weights.
        static thread_local std::vector<float> kZero{0.0f};
        s.accumulator->add(kZero, 1.0);
      }
      s.staleness_sum += static_cast<double>(staleness);
      if (auto* g = s.buffer_gauge.resolve("fl.buffer_occupancy"))
        g->set(static_cast<double>(s.accumulator->count()));
      buffer_full = s.accumulator->count() >= s.config->buffer_size;
    }
  }
  s.leader->metrics().on_task_finished(tr);
  // The device stays available after a completed task; re-offer the window
  // remainder so it can participate again (subject to the cooldown gap).
  if (!interrupted && tr.finish_time < task.window_end) {
    sim::Arrival rejoin{tr.finish_time, task.spec.client_id, task.spec.device_index,
                        task.window_end};
    s.leader->arrivals().requeue(rejoin, tr.finish_time);
  }
  // Aggregate only after this completion is fully recorded (metrics + rejoin
  // requeue): the checkpoint written inside aggregate() must snapshot a state
  // with no half-processed task, or a resume would lose the rejoin.
  if (buffer_full) aggregate(s);
  pump(s);
}

void dispatch(FedBuffState& s, const sim::Arrival& arrival) {
  FLINT_TRACE_SPAN("fedbuff.dispatch", "fl");
  const RunInputs& in = s.config->inputs;
  sim::VirtualTime now = s.leader->queue().now();
  if (auto* c = s.dispatched_counter.resolve("fl.tasks_dispatched")) c->add(1);
  std::size_t examples = client_example_count(in, arrival.client_id);
  FLINT_DCHECK(examples > 0);
  // Per-task derived duration stream (keyed by the id this task takes below),
  // so durations never depend on draw order across concurrent tasks.
  util::Rng dur_rng = util::derive_stream(in.seed, s.task_ids, kRngStreamDuration);
  auto dur = s.durations->sample(arrival.device_index, examples, dur_rng);

  auto task = std::make_shared<InFlight>();
  task->spec = {s.task_ids++, arrival.client_id, arrival.device_index,
                s.version,    now,               dur.compute_s,
                dur.comm_s,   examples,          in.duration.update_bytes};
  task->window_end = arrival.window_end;
  ++s.running;
  s.busy.insert(arrival.client_id);
  s.last_participation.record(arrival.client_id, now);
  s.leader->metrics().on_task_started();
  s.leader->executors().record_task(s.leader->executors().executor_of(arrival.client_id));

  bool will_interrupt = now + dur.total_s() > arrival.window_end;
  if (will_interrupt) {
    task->spent_compute_s = std::min(dur.compute_s, std::max(0.0, arrival.window_end - now));
    task->finish_time = arrival.window_end;
    task->interrupted = true;
    task->stamp = s.next_stamp++;
    s.in_flight[task->spec.task_id] = task;
    if (auto* g = s.in_flight_gauge.resolve("fl.tasks_in_flight"))
      g->set(static_cast<double>(s.in_flight.size()));
    s.leader->queue().schedule(arrival.window_end,
                               [&s, task] { on_task_end(s, *task, /*interrupted=*/true); });
    return;
  }
  task->spent_compute_s = dur.compute_s;
  task->finish_time = now + dur.total_s();
  task->stamp = s.next_stamp++;
  s.in_flight[task->spec.task_id] = task;
  if (auto* g = s.in_flight_gauge.resolve("fl.tasks_in_flight"))
    g->set(static_cast<double>(s.in_flight.size()));
  if (!in.model_free) {
    // The client trains against the global parameters as of dispatch time;
    // computing the update from a dispatch-time snapshot is semantically
    // identical to computing it at completion. On the pool path the snapshot
    // shared_ptr rides along as the keepalive; the serial and rpc paths read
    // the live params immediately.
    LocalTrainConfig local = in.local;
    local.lr = in.client_lr.at(s.version);
    const auto& client_data = in.dataset->client(arrival.client_id).examples;
    std::shared_ptr<const std::vector<float>> snapshot = s.params_snapshot;
    std::span<const float> param_view =
        snapshot != nullptr ? std::span<const float>(*snapshot)
                            : std::span<const float>(s.params);
    task->pending = s.trainers->submit_update(in, client_data, param_view, local,
                                              task->spec.task_id, arrival.client_id,
                                              s.version, s.config->buffer_size, snapshot);
  }
  s.leader->queue().schedule(task->finish_time,
                             [&s, task] { on_task_end(s, *task, /*interrupted=*/false); });
}

void pump(FedBuffState& s) {
  if (s.done) return;
  const RunInputs& in = s.config->inputs;
  sim::VirtualTime now = s.leader->queue().now();

  // Fault-tolerance gate: halt dispatching while any executor is unhealthy.
  sim::VirtualTime gate = s.leader->dispatch_gate(now);
  if (gate > now) {
    if (!s.pump_scheduled) {
      s.pump_scheduled = true;
      s.pump_time = gate;
      s.pump_stamp = s.next_stamp++;
      s.leader->queue().schedule(gate, [&s] {
        s.pump_scheduled = false;
        pump(s);
      });
    }
    return;
  }

  while (s.running < s.config->max_concurrency) {
    auto next_time = s.leader->arrivals().peek_time(now);
    if (!next_time.has_value()) return;  // trace exhausted
    if (*next_time > now) {
      if (!s.pump_scheduled) {
        s.pump_scheduled = true;
        s.pump_time = *next_time;
        s.pump_stamp = s.next_stamp++;
        s.leader->queue().schedule(*next_time, [&s] {
          s.pump_scheduled = false;
          pump(s);
        });
      }
      return;
    }
    auto arrival = s.leader->arrivals().next(now);
    FLINT_DCHECK(arrival.has_value());
    if (s.busy.count(arrival->client_id) > 0) {
      // Stale duplicate entry for a client that is mid-task: drop it. The
      // completion handler requeues a rejoin for the window remainder.
      continue;
    }
    auto when = s.last_participation.last(arrival->client_id);
    if (when.has_value()) {
      // Compute the cooldown lapse once and branch on it, so the retry time
      // is strictly in the future whenever we defer (deriving the condition
      // and the retry from different float expressions can disagree in the
      // last ulp and livelock the pump).
      sim::VirtualTime lapse = *when + in.reparticipation_gap_s;
      if (lapse > now) {
        s.leader->arrivals().requeue(*arrival, lapse);
        continue;
      }
    }
    if (client_example_count(in, arrival->client_id) == 0) continue;
    dispatch(s, *arrival);
  }
}

}  // namespace

RunResult run_fedbuff(const AsyncConfig& config) {
  const RunInputs& in = config.inputs;
  validate_common_inputs(in);
  FLINT_CHECK_GT(config.buffer_size, std::size_t{0});
  FLINT_CHECK_GT(config.max_concurrency, std::size_t{0});
  RunTelemetryScope telemetry_scope(in);

  FedBuffState s;
  s.config = &config;
  // Arrivals come from the materialized trace or the lazy window stream —
  // exactly one is set (validated above); results are identical either way.
  s.leader = in.trace != nullptr ? std::make_unique<sim::Leader>(in.leader, *in.trace)
                                 : std::make_unique<sim::Leader>(in.leader, *in.window_stream);
  for (const auto& o : in.outages) s.leader->executors().add_outage(o);
  RunAttributionScope attribution_scope(in, *s.leader);
  s.durations = std::make_unique<TaskDurationModel>(in.duration, *in.catalog, *in.bandwidth);
  s.server_opt = std::make_unique<ServerOptimizer>(in.server_lr, in.server_momentum);
  s.trainers = std::make_unique<TrainerPool>(in);
  if (!in.model_free) {
    s.params = in.model_template->get_flat_parameters();
    s.eval_model = in.model_template->clone();
    s.accumulator = std::make_unique<UpdateAccumulator>(s.params.size());
    if (s.trainers->pool() != nullptr)
      s.params_snapshot = std::make_shared<const std::vector<float>>(s.params);
  } else {
    s.accumulator = std::make_unique<UpdateAccumulator>(1);
  }
  s.server_rng = util::derive_stream(in.seed, kServerRngStreamId);
  s.attribution = &attribution_scope;

  if (auto resume = load_resume_state(in, store::kCheckpointAlgoFedBuff)) {
    const store::SimCheckpoint& c = *resume;
    FLINT_CHECK_MSG(c.has_fedbuff, "fedbuff checkpoint lacks the async-runner section");
    if (!in.model_free) {
      FLINT_CHECK_EQ(c.model_parameters.size(), s.params.size());
      s.params = c.model_parameters;
      if (s.trainers->pool() != nullptr)
        s.params_snapshot = std::make_shared<const std::vector<float>>(s.params);
    }
    s.server_opt->restore_velocity(c.server_velocity);
    if (!c.server_rng_state.empty()) s.server_rng.deserialize_state(c.server_rng_state);
    s.version = c.round;
    s.task_ids = c.next_task_id;
    s.last_participation.restore(c.last_participation);
    s.leader->arrivals().restore(static_cast<std::size_t>(c.arrival_cursor),
                                 restore_requeued(c.requeued));
    s.leader->restore(c);
    attribution_scope.restore(c.client_accounts);
    s.result.eval_curve = restore_eval_curve(c.eval_curve);
    const store::CheckpointFedBuff& fb = c.fedbuff;
    s.accumulator->restore(fb.accumulator_sum, fb.accumulator_weight_sum,
                           static_cast<std::size_t>(fb.accumulator_count));
    s.staleness_sum = fb.staleness_sum;
    s.round_start = fb.round_start;
    s.last_aggregation_time = fb.last_aggregation_time;
    s.next_stamp = fb.next_stamp;
    // The done flag is never serialized: it is re-derived from this run's
    // limits, so a resume with a larger max_rounds continues the lineage.
    s.done = s.version >= in.max_rounds || c.virtual_time_s >= in.max_virtual_s;
    s.result.resumed_from_round = c.round;
    s.resume_count = c.resume_count + 1;
    s.result.resume_count = s.resume_count;

    // Fast-forward the clock, then rebuild the pending event set in its
    // original scheduling (stamp) order so the queue's same-time tie-break
    // matches the uninterrupted run.
    s.leader->queue().advance_to(c.virtual_time_s);
    struct RestoredEvent {
      std::uint64_t stamp = 0;
      sim::VirtualTime when = 0.0;
      std::function<void()> fire;
    };
    std::vector<RestoredEvent> events;
    events.reserve(fb.in_flight.size() + 1);
    for (const auto& rec : fb.in_flight) {
      auto task = std::make_shared<InFlight>();
      task->spec.task_id = rec.task_id;
      task->spec.client_id = rec.client_id;
      task->spec.device_index = static_cast<std::size_t>(rec.device_index);
      task->spec.model_version = rec.model_version;
      task->spec.dispatch_time = rec.dispatch_time;
      task->spec.compute_s = rec.compute_s;
      task->spec.comm_s = rec.comm_s;
      task->spec.examples = static_cast<std::size_t>(rec.examples);
      task->spec.update_bytes = rec.update_bytes;
      task->spent_compute_s = rec.spent_compute_s;
      task->window_end = rec.window_end;
      task->finish_time = rec.finish_time;
      task->interrupted = rec.interrupted;
      task->stamp = rec.stamp;
      // The checkpoint carries the materialized update (fill_checkpoint joins
      // in-flight workers before serializing), so no re-training is needed.
      task->update.weight = rec.update_weight;
      task->update.train.delta = rec.update_delta;
      s.in_flight[rec.task_id] = task;
      s.busy.insert(rec.client_id);
      ++s.running;
      bool was_interrupted = rec.interrupted;
      events.push_back({rec.stamp, rec.finish_time,
                        [&s, task, was_interrupted] { on_task_end(s, *task, was_interrupted); }});
    }
    if (fb.pump_scheduled) {
      s.pump_scheduled = true;
      s.pump_time = fb.pump_time;
      s.pump_stamp = fb.pump_stamp;
      events.push_back({fb.pump_stamp, fb.pump_time, [&s] {
                          s.pump_scheduled = false;
                          pump(s);
                        }});
    }
    std::sort(events.begin(), events.end(),
              [](const RestoredEvent& a, const RestoredEvent& b) { return a.stamp < b.stamp; });
    for (auto& e : events) s.leader->queue().schedule(e.when, std::move(e.fire));
  }

  pump(s);
  // Drain: completions may still fire after `done` flips; they are counted
  // as stale and never re-pump (pump() no-ops when done).
  s.leader->queue().run();

  s.result.rounds = s.version;
  s.result.virtual_duration_s =
      s.version > 0 ? s.last_aggregation_time : s.leader->queue().now();
  if (!in.model_free && in.test != nullptr) {
    s.eval_model->set_flat_parameters(s.params);
    s.result.final_metric =
        data::evaluate_examples(*s.eval_model, *in.test, in.domain, in.dense_dim);
    if (s.result.eval_curve.empty() || s.result.eval_curve.back().round != s.version)
      s.result.eval_curve.push_back(
          {s.result.virtual_duration_s, s.version, s.result.final_metric, 0.0});
  }
  s.result.final_parameters = std::move(s.params);
  s.result.events_executed = s.leader->queue().executed();
  s.result.metrics = s.leader->metrics();
  attribution_scope.finish(s.result);
  telemetry_scope.finish(s.result);
  return s.result;
}

}  // namespace flint::fl
