// Shared configuration and result types for the FL runners.
#pragma once

#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "flint/compress/quantize.h"
#include "flint/data/synthetic_tasks.h"
#include "flint/device/availability.h"
#include "flint/fl/lr_schedule.h"
#include "flint/fl/task_duration.h"
#include "flint/fl/trainer.h"
#include "flint/net/bandwidth_model.h"
#include "flint/obs/client_ledger.h"
#include "flint/obs/telemetry.h"
#include "flint/privacy/dp.h"
#include "flint/sim/leader.h"
#include "flint/util/client_pool.h"

namespace flint::rpc {
class Leader;
}

namespace flint::fl {

/// Inputs common to sync and async runs. Raw pointers are non-owning views
/// that must outlive the run.
struct RunInputs {
  // --- Data. In model-free mode `dataset` may be null and
  // `client_example_counts` supplies |D_k| per client id instead. ---
  const data::FederatedDataset* dataset = nullptr;
  const std::vector<std::uint32_t>* client_example_counts = nullptr;
  /// Model-free alternative to `client_example_counts` for population-scale
  /// runs: |D_k| as a pure function of client id, so no per-client vector
  /// has to be materialized. Checked after the vector form.
  std::function<std::size_t(std::uint64_t)> example_count_fn;
  std::size_t dense_dim = 0;

  // --- Model & training. `model_template` supplies architecture and the
  // initial global parameters; null in model-free mode. ---
  ml::Model* model_template = nullptr;
  LocalTrainConfig local;
  LrSchedule client_lr = LrSchedule::constant(0.05);
  double server_lr = 1.0;
  /// Server-side momentum (FedAvgM, Hsu et al.): the server update becomes
  /// v <- beta*v + mean_delta; params += server_lr * v. 0 disables.
  double server_momentum = 0.0;

  // --- Measured system inputs. Exactly one of `trace` (materialized) or
  // `window_stream` (streaming, DESIGN.md §17) must be set; the streaming
  // path yields bit-identical results while keeping resident memory
  // independent of population size. ---
  const device::AvailabilityTrace* trace = nullptr;
  device::WindowStream* window_stream = nullptr;
  const device::DeviceCatalog* catalog = nullptr;
  const net::BandwidthModel* bandwidth = nullptr;
  TaskDurationConfig duration;

  // --- Termination. ---
  std::uint64_t max_rounds = 200;     ///< aggregation rounds
  double max_virtual_s = 1e15;

  // --- Evaluation. ---
  const std::vector<ml::Example>* test = nullptr;
  data::Domain domain = data::Domain::kAds;
  std::uint64_t eval_every_rounds = 0;  ///< 0 = final evaluation only

  // --- Infrastructure. ---
  sim::LeaderConfig leader;
  std::vector<sim::ExecutorOutage> outages;

  // --- Privacy. ---
  std::optional<privacy::DpConfig> dp;

  // --- Update compression (applied after DP, before transmission). The
  // caller should set duration.update_bytes consistently, e.g. via
  // compress::compressed_bytes(). ---
  compress::CompressionConfig compression;

  /// System-metrics-only mode: skip actual SGD; updates are empty and no
  /// model evaluation runs. Used for large-scale capacity studies.
  bool model_free = false;

  /// A client participates at most once per this many virtual seconds.
  double reparticipation_gap_s = 4.0 * 3600.0;

  /// Worker threads for client training and evaluation (1 = serial). Results
  /// are bit-identical at any value — reductions happen in fixed task order
  /// and per-task RNG streams are derived from the seed (DESIGN.md §11) —
  /// so this knob trades wall time only and never enters the run fingerprint.
  std::size_t threads = 1;

  /// Multi-process execution (DESIGN.md §14): when set, client updates are
  /// dispatched as rpc TaskLeases to registered executors instead of being
  /// computed in-process. A lease is a pure function of its payload and
  /// results are consumed in submission order, so results stay bit-identical
  /// to the in-process paths — like `threads`, this knob never enters the
  /// run fingerprint. Non-owning; must outlive the run.
  rpc::Leader* rpc_leader = nullptr;

  // --- Observability. Non-owning, like the other infrastructure pointers;
  // when set, the runner installs it as the ambient obs context for the run
  // (unless it already is), publishes the virtual clock into it, and copies
  // a final metric snapshot into RunResult::telemetry. ---
  obs::Telemetry* telemetry = nullptr;

  /// Attribute task outcomes, compute, and bytes per client (device tier /
  /// availability cohort / executor) into RunResult::ledger. Cost is one
  /// hash-map update per task completion; disable for capacity studies where
  /// even that matters.
  bool collect_ledger = true;

  // --- Crash recovery (DESIGN.md §12). ---
  /// When set, the runner restores full run state from this store's newest
  /// valid checkpoint (CheckpointStore::latest()) before the first round and
  /// continues from there, finishing bit-identically to an uninterrupted
  /// run. Null, or a store with no usable checkpoint, means a fresh run.
  /// Resume refuses a checkpoint whose seed or algorithm does not match.
  store::CheckpointStore* resume_from = nullptr;

  /// Called after each completed aggregation round, after any checkpoint
  /// write for that round. Test/ops hook: the kill-and-resume e2e aborts the
  /// process from here to simulate a crash at a known round.
  std::function<void(std::uint64_t round)> round_hook;

  std::uint64_t seed = 1;
};

/// Output of one run.
struct RunResult {
  sim::SimMetrics metrics;
  std::vector<sim::EvalPoint> eval_curve;
  double final_metric = 0.0;
  double virtual_duration_s = 0.0;
  std::uint64_t rounds = 0;
  std::vector<float> final_parameters;
  /// Final telemetry snapshot (empty unless RunInputs::telemetry was set);
  /// core/report embeds it as the run's metrics summary table.
  std::vector<obs::MetricSample> telemetry;
  /// Per-client attribution rollups (empty unless RunInputs::collect_ledger);
  /// totals reconcile with `metrics` by construction.
  obs::ClientLedgerSummary ledger;

  /// Recovery lineage: the checkpoint round this run resumed from (0 for a
  /// fresh start) and how many resumes the run's checkpoint lineage has seen.
  std::uint64_t resumed_from_round = 0;
  std::uint64_t resume_count = 0;

  /// Events executed by the leader's event pump (async runner only; 0 for
  /// the hand-clocked sync runner). The denominator of bench_scale's
  /// events/s throughput.
  std::uint64_t events_executed = 0;

  /// Aggregated-update throughput, for TEE sizing (§3.5).
  double updates_per_second() const {
    return virtual_duration_s > 0.0 ? metrics.updates_per_second(virtual_duration_s) : 0.0;
  }
};

/// |D_k| for a client under either data mode.
std::size_t client_example_count(const RunInputs& inputs, std::uint64_t client_id);

/// Validate the parts of the config every runner needs.
void validate_common_inputs(const RunInputs& inputs);

/// Shared runner-side telemetry plumbing: installs `inputs.telemetry` as the
/// ambient context for the runner's scope (skipped when it already is, so an
/// outer ScopedTelemetry keeps working). Call finish(result) just before
/// returning to take the run's final snapshot — it must happen before the
/// result is copied out, which is why it is not done in the destructor.
class RunTelemetryScope {
 public:
  explicit RunTelemetryScope(const RunInputs& inputs);
  void finish(RunResult& result);
  RunTelemetryScope(const RunTelemetryScope&) = delete;
  RunTelemetryScope& operator=(const RunTelemetryScope&) = delete;

 private:
  obs::Telemetry* telemetry_;
  std::optional<obs::ScopedTelemetry> scope_;
};

/// Availability cohort of a client: the fraction of the trace horizon its
/// windows cover. `rare` < 5%, `regular` < 50%, `always-on` otherwise —
/// the axis Figure 2's diurnal curve makes decision-relevant (a model that
/// only ever trains on always-on devices is the bias §3.2 warns about).
enum class AvailabilityCohort : std::uint32_t { kRare = 0, kRegular = 1, kAlwaysOn = 2 };

/// Shared attribution plumbing: owns the run's ClientLedger, classifies every
/// client in the availability trace by device tier (from the catalog) and
/// availability cohort (window coverage), maps clients to executors, and
/// attaches the ledger to the leader's SimMetrics so task completions are
/// mirrored in. finish(result) folds the rollups into the result and detaches
/// — call it before the result's metrics are copied out, alongside
/// RunTelemetryScope::finish. No-op throughout when collect_ledger is false.
class RunAttributionScope {
 public:
  RunAttributionScope(const RunInputs& inputs, sim::Leader& leader);
  void finish(RunResult& result);
  RunAttributionScope(const RunAttributionScope&) = delete;
  RunAttributionScope& operator=(const RunAttributionScope&) = delete;

  /// Per-client accounts for checkpointing, sorted by client id (empty when
  /// attribution is disabled).
  std::vector<store::CheckpointClientAccount> accounts() const;

  /// Restore checkpointed accounts into the ledger (resume path; no-op when
  /// attribution is disabled). Classifications registered at construction
  /// are kept — only the counters are overwritten.
  void restore(const std::vector<store::CheckpointClientAccount>& accounts);

 private:
  bool enabled_;
  sim::Leader* leader_;
  obs::ClientLedger ledger_;
};

// --- Checkpoint/resume plumbing shared by both runners (DESIGN.md §12) ---

/// util::derive_stream() stream id reserved for the server-side Rng; task
/// ids use their own id space, so this keeps the server stream disjoint from
/// every per-task stream.
inline constexpr std::uint64_t kServerRngStreamId = 0x5EB0E15EED5ull;

/// Resolve RunInputs::resume_from into the checkpoint to restore, or nullopt
/// for a fresh run (no store, or no usable checkpoint — logged). Throws
/// CheckError when the newest valid checkpoint belongs to a different run
/// (seed mismatch) or a different runner (`algo` mismatch): silently
/// restarting a different run would corrupt the lineage.
std::optional<store::SimCheckpoint> load_resume_state(const RunInputs& inputs,
                                                      std::uint8_t algo);

/// sim <-> store conversions for the checkpoint record.
std::vector<store::CheckpointEvalPoint> checkpoint_eval_curve(
    const std::vector<sim::EvalPoint>& curve);
std::vector<sim::EvalPoint> restore_eval_curve(
    const std::vector<store::CheckpointEvalPoint>& curve);
std::vector<store::CheckpointRequeuedArrival> checkpoint_requeued(
    const std::vector<sim::Arrival>& requeued);
std::vector<sim::Arrival> restore_requeued(
    const std::vector<store::CheckpointRequeuedArrival>& requeued);
/// Pooled client -> last-participation-time map shared by both runners'
/// cooldown gates. Interned keys plus a fixed-chunk value column (DESIGN.md
/// §17): per-client cost is ~16 bytes with no hash-map node or load-factor
/// overhead, growth never reallocates existing state, and the layout is a
/// pure function of the record() sequence.
class ParticipationPool {
 public:
  /// Last recorded participation time for `client`, if any.
  std::optional<double> last(std::uint64_t client) const {
    auto slot = keys_.find(client);
    if (!slot) return std::nullopt;
    return times_[*slot];
  }

  /// Record (or overwrite) a client's participation time.
  void record(std::uint64_t client, double when) {
    std::uint32_t slot = keys_.intern(client);
    if (slot == times_.size())
      times_.push_back(when);
    else
      times_[slot] = when;
  }

  /// Distinct clients recorded.
  std::size_t size() const { return keys_.size(); }

  /// All entries sorted by client id (the order-independent checkpoint form).
  std::vector<std::pair<std::uint64_t, double>> sorted_entries() const;

  /// Load checkpointed entries (resume path).
  void restore(const std::vector<std::pair<std::uint64_t, double>>& entries) {
    for (const auto& [client, when] : entries) record(client, when);
  }

 private:
  util::KeyInterner keys_;
  util::ChunkedColumn<double> times_;
};

/// Sorted by client id so the serialized form is order-independent.
std::vector<std::pair<std::uint64_t, double>> checkpoint_participation(
    const ParticipationPool& last_participation);

}  // namespace flint::fl
