// The parallel client-training runtime shared by the fedavg and fedbuff
// runners.
//
// TrainerPool pairs a util::ThreadPool with one LocalTrainer replica per
// worker (plus one for the submitting thread), and wires the pool's observer
// hooks to flint::obs gauges (util.pool.queue_depth, util.pool.busy_workers,
// util.pool.thread.<i>.busy_s) and the util.pool.tasks_submitted counter.
//
// Determinism contract: every simulated task draws its randomness from
// counter-based streams derived from (inputs.seed, task id) — never from a
// shared Rng — and the runners join futures / reduce updates in fixed task
// order. Together those make the run a pure function of the inputs: at any
// `threads` value the results are bit-identical, only wall time changes.
//
// Concurrency contract: TrainerPool itself holds no mutex. Each trainer
// replica is owned by exactly one worker thread (trainer_for indexes by
// ThreadPool::worker_index()), so replicas are never shared; the only
// cross-thread state lives inside util::ThreadPool, whose members carry
// thread-safety capabilities (see util/thread_annotations.h).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "flint/fl/run_common.h"
#include "flint/util/thread_pool.h"

namespace flint::fl {

// Substream tags for util::derive_stream(seed, task_id, substream). Each
// per-task consumer owns a tag so adding one never perturbs the others.
inline constexpr std::uint64_t kRngStreamDuration = 1;  ///< TaskDurationModel::sample
inline constexpr std::uint64_t kRngStreamDp = 2;        ///< privacy::apply_dp noise

class TrainerPool {
 public:
  /// Builds the runtime for one run: a thread pool when inputs.threads > 1
  /// (serial execution otherwise, pool() == nullptr) and trainer replicas
  /// when the run is model-full. The pool's gauges report to whatever
  /// telemetry is ambient when the callbacks fire, so construct after
  /// RunTelemetryScope.
  explicit TrainerPool(const RunInputs& inputs);

  /// The pool to fan work across, or nullptr for the serial path.
  util::ThreadPool* pool() { return pool_.get(); }

  /// The LocalTrainer replica owned by the calling thread: pool workers get
  /// their own slot, every off-pool thread shares slot 0 (the runners only
  /// ever train from the simulation thread or pool workers). Requires a
  /// model-full run.
  LocalTrainer& trainer();

 private:
  std::vector<std::unique_ptr<LocalTrainer>> replicas_;  ///< [0]=off-pool, [i+1]=worker i
  std::vector<std::string> busy_gauge_names_;  ///< precomputed "util.pool.thread.<i>.busy_s"
  std::unique_ptr<util::ThreadPool> pool_;     ///< last member: workers must die first
};

/// One client's full update pipeline — local SGD against `params`, then the
/// DP mechanism (noise from the task's kRngStreamDp stream) and lossy
/// compression per `inputs`. A pure function of its arguments, safe to run
/// on any thread; DP forces the aggregation weight to 1.0, so the result
/// carries the weight the accumulator should use. Counts
/// fl.parallel_train_batches when executed on a pool worker.
struct ClientUpdate {
  LocalTrainResult train;
  double weight = 0.0;
};
ClientUpdate compute_client_update(LocalTrainer& trainer, const RunInputs& inputs,
                                   std::span<const ml::Example> data,
                                   std::span<const float> params,
                                   const LocalTrainConfig& local, std::uint64_t task_id,
                                   std::size_t dp_participants);

}  // namespace flint::fl
