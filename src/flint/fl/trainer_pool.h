// The parallel client-training runtime shared by the fedavg and fedbuff
// runners.
//
// TrainerPool pairs a util::ThreadPool with one LocalTrainer replica per
// worker (plus one for the submitting thread), and wires the pool's observer
// hooks to flint::obs gauges (util.pool.queue_depth, util.pool.busy_workers,
// util.pool.thread.<i>.busy_s) and the util.pool.tasks_submitted counter.
//
// Determinism contract: every simulated task draws its randomness from
// counter-based streams derived from (inputs.seed, task id) — never from a
// shared Rng — and the runners join futures / reduce updates in fixed task
// order. Together those make the run a pure function of the inputs: at any
// `threads` value the results are bit-identical, only wall time changes.
//
// Concurrency contract: TrainerPool itself holds no mutex. Each trainer
// replica is owned by exactly one worker thread (trainer_for indexes by
// ThreadPool::worker_index()), so replicas are never shared; the only
// cross-thread state lives inside util::ThreadPool, whose members carry
// thread-safety capabilities (see util/thread_annotations.h).
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "flint/fl/run_common.h"
#include "flint/util/thread_pool.h"

namespace flint::rpc {
class Leader;
}

namespace flint::fl {

// Substream tags for util::derive_stream(seed, task_id, substream). Each
// per-task consumer owns a tag so adding one never perturbs the others.
inline constexpr std::uint64_t kRngStreamDuration = 1;  ///< TaskDurationModel::sample
inline constexpr std::uint64_t kRngStreamDp = 2;        ///< privacy::apply_dp noise

/// One client's full update pipeline — local SGD against `params`, then the
/// DP mechanism (noise from the task's kRngStreamDp stream) and lossy
/// compression. A pure function of its arguments, safe to run on any thread
/// or in any process; DP forces the aggregation weight to 1.0, so the result
/// carries the weight the accumulator should use. Counts
/// fl.parallel_train_batches when executed on a pool worker.
struct ClientUpdate {
  LocalTrainResult train;
  double weight = 0.0;
};

/// The primitive-argument form: everything it reads is in the signature, so
/// the rpc executor (which has a TaskLease, not a RunInputs) calls the same
/// code path the in-process runners do — that shared body is what makes
/// remote results bit-identical.
ClientUpdate compute_client_update_raw(LocalTrainer& trainer,
                                       std::span<const ml::Example> data,
                                       std::span<const float> params,
                                       const LocalTrainConfig& local, std::uint64_t seed,
                                       std::uint64_t task_id,
                                       const std::optional<privacy::DpConfig>& dp,
                                       std::size_t dp_participants,
                                       const compress::CompressionConfig& compression);

/// RunInputs convenience wrapper over compute_client_update_raw.
ClientUpdate compute_client_update(LocalTrainer& trainer, const RunInputs& inputs,
                                   std::span<const ml::Example> data,
                                   std::span<const float> params,
                                   const LocalTrainConfig& local, std::uint64_t task_id,
                                   std::size_t dp_participants);

/// A client update that may be ready now (serial path), in flight on a pool
/// worker, or leased to a remote executor. One-shot: get() consumes it
/// (valid() turns false), and the runners call get() in fixed submission
/// order, which is what imposes the deterministic reduction order on every
/// execution mode.
class PendingUpdate {
 public:
  PendingUpdate() = default;

  static PendingUpdate ready(ClientUpdate update);
  static PendingUpdate in_flight(std::future<ClientUpdate> future);
  static PendingUpdate remote(rpc::Leader* leader, std::uint64_t lease_id);

  /// True until get() consumes the update.
  bool valid() const { return kind_ != Kind::kInvalid; }

  /// Block until the update is available and return it (joins the future /
  /// waits on the rpc lease). Requires valid().
  ClientUpdate get();

 private:
  enum class Kind { kInvalid, kReady, kFuture, kRemote };

  Kind kind_ = Kind::kInvalid;
  ClientUpdate ready_;
  std::future<ClientUpdate> future_;
  rpc::Leader* leader_ = nullptr;
  std::uint64_t lease_id_ = 0;
};

class TrainerPool {
 public:
  /// Builds the runtime for one run: a thread pool when inputs.threads > 1
  /// (serial execution otherwise, pool() == nullptr) and trainer replicas
  /// when the run is model-full. The pool's gauges report to whatever
  /// telemetry is ambient when the callbacks fire, so construct after
  /// RunTelemetryScope.
  explicit TrainerPool(const RunInputs& inputs);

  /// The pool to fan work across, or nullptr for the serial path.
  util::ThreadPool* pool() { return pool_.get(); }

  /// The LocalTrainer replica owned by the calling thread: pool workers get
  /// their own slot, every off-pool thread shares slot 0 (the runners only
  /// ever train from the simulation thread or pool workers). Requires a
  /// model-full run.
  LocalTrainer& trainer();

  /// Submit one client-update computation on whichever execution mode the
  /// run uses, in precedence order: rpc lease (inputs.rpc_leader set), pool
  /// task, or computed-right-now serial. The returned PendingUpdate is
  /// consumed by the runner in submission order.
  ///
  /// `params` must stay valid until get() on the pool path (the runners
  /// guarantee this: fedavg joins before mutating, fedbuff passes
  /// `params_keepalive` to pin its dispatch-time snapshot). The serial and
  /// remote paths read `params` before returning.
  PendingUpdate submit_update(const RunInputs& inputs, std::span<const ml::Example> data,
                              std::span<const float> params, const LocalTrainConfig& local,
                              std::uint64_t task_id, std::uint64_t client_id,
                              std::uint64_t round, std::size_t dp_participants,
                              std::shared_ptr<const std::vector<float>> params_keepalive = {});

 private:
  std::vector<std::unique_ptr<LocalTrainer>> replicas_;  ///< [0]=off-pool, [i+1]=worker i
  std::vector<std::string> busy_gauge_names_;  ///< precomputed "util.pool.thread.<i>.busy_s"
  std::unique_ptr<util::ThreadPool> pool_;     ///< last member: workers must die first
};

}  // namespace flint::fl
