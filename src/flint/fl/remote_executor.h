// fl::LeaseTrainService — the concrete rpc::TrainService: reconstructs the
// model replica from the RegisterAck blob and evaluates each TaskLease with
// compute_client_update_raw, the same body the in-process paths run. Lives in
// fl/ (not rpc/) so the rpc subsystem stays below fl in the dependency order.
#pragma once

#include <memory>

#include "flint/fl/trainer.h"
#include "flint/rpc/executor_worker.h"

namespace flint::fl {

class LeaseTrainService final : public rpc::TrainService {
 public:
  void configure(const rpc::RegisterAckMsg& ack) override;

  /// Runs compute_client_update_raw on the lease. Never throws: a CheckError
  /// (bad lease data, dimension mismatch) is reported via ok=false so the
  /// leader can surface it with context.
  rpc::TaskResultMsg run_lease(const rpc::TaskLeaseMsg& lease) override;

 private:
  std::unique_ptr<LocalTrainer> trainer_;
};

}  // namespace flint::fl
