// Update aggregation primitives shared by FedAvg and FedBuff.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "flint/util/check.h"

// No-aliasing annotation for the flat float/double kernels below: the spans
// handed to them never alias the accumulator state, and telling the compiler
// so is what lets it vectorize the loops (a possibly-aliased store forces a
// scalar reload per iteration).
#if defined(__GNUC__) || defined(__clang__)
#define FLINT_RESTRICT __restrict__
#else
#define FLINT_RESTRICT
#endif

namespace flint::fl {

/// Staleness discount from the FedBuff paper (Nguyen et al., 2022):
/// weight = 1 / sqrt(1 + staleness).
inline double staleness_weight(std::uint64_t staleness) {
  return 1.0 / std::sqrt(1.0 + static_cast<double>(staleness));
}

/// Weighted running mean of parameter deltas.
class UpdateAccumulator {
 public:
  explicit UpdateAccumulator(std::size_t dim) : sum_(dim, 0.0) { FLINT_CHECK(dim > 0); }

  void add(std::span<const float> delta, double weight) {
    FLINT_CHECK_EQ(delta.size(), sum_.size());
    FLINT_CHECK_FINITE(weight);
    FLINT_CHECK_GT(weight, 0.0);
    const std::size_t n = sum_.size();
    double* FLINT_RESTRICT sum = sum_.data();
    const float* FLINT_RESTRICT d = delta.data();
    for (std::size_t i = 0; i < n; ++i) sum[i] += weight * static_cast<double>(d[i]);
    weight_sum_ += weight;
    ++count_;
  }

  std::size_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  std::size_t dim() const { return sum_.size(); }

  /// Weighted mean of everything added since the last reset.
  std::vector<float> weighted_mean() const {
    // Weight conservation: the divisor must be the (positive, finite) sum of
    // all weights accepted by add(); a NaN here means a client smuggled a
    // non-finite weight past the per-update checks.
    FLINT_CHECK_FINITE(weight_sum_);
    FLINT_CHECK_GT(weight_sum_, 0.0);
    const std::size_t n = sum_.size();
    const double inv = 1.0 / weight_sum_;
    std::vector<float> out(n);
    float* FLINT_RESTRICT o = out.data();
    const double* FLINT_RESTRICT sum = sum_.data();
    // Multiply by the hoisted reciprocal: one divide total instead of one
    // per coordinate, and the loop reduces to fma + convert.
    for (std::size_t i = 0; i < n; ++i) o[i] = static_cast<float>(sum[i] * inv);
    return out;
  }

  void reset() {
    std::fill(sum_.begin(), sum_.end(), 0.0);
    weight_sum_ = 0.0;
    count_ = 0;
  }

  /// Raw state for checkpointing; pairs with restore().
  const std::vector<double>& sum() const { return sum_; }
  double weight_sum() const { return weight_sum_; }

  /// Restore checkpointed state (resume path). The sum must match this
  /// accumulator's dimension.
  void restore(std::vector<double> sum, double weight_sum, std::size_t count) {
    FLINT_CHECK_EQ(sum.size(), sum_.size());
    FLINT_CHECK_FINITE(weight_sum);
    FLINT_CHECK_GE(weight_sum, 0.0);
    sum_ = std::move(sum);
    weight_sum_ = weight_sum;
    count_ = count;
  }

 private:
  std::vector<double> sum_;
  double weight_sum_ = 0.0;
  std::size_t count_ = 0;
};

/// Apply a server update: params += server_lr * mean_delta.
inline void apply_server_update(std::vector<float>& params, std::span<const float> mean_delta,
                                double server_lr) {
  FLINT_CHECK_EQ(params.size(), mean_delta.size());
  FLINT_CHECK_FINITE(server_lr);
  const std::size_t n = params.size();
  const float lr = static_cast<float>(server_lr);
  float* FLINT_RESTRICT p = params.data();
  const float* FLINT_RESTRICT d = mean_delta.data();
  for (std::size_t i = 0; i < n; ++i) p[i] += lr * d[i];
}

/// Server-side optimizer state: plain averaging when momentum == 0,
/// FedAvgM otherwise.
class ServerOptimizer {
 public:
  ServerOptimizer(double server_lr, double momentum)
      : server_lr_(server_lr), momentum_(momentum) {
    FLINT_CHECK_FINITE(server_lr);
    FLINT_CHECK_GT(server_lr, 0.0);
    FLINT_CHECK_FINITE(momentum);
    FLINT_CHECK_GE(momentum, 0.0);
    FLINT_CHECK_LT(momentum, 1.0);
  }

  /// Apply one aggregated delta to the global parameters.
  void step(std::vector<float>& params, std::span<const float> mean_delta) {
    if (momentum_ == 0.0) {
      apply_server_update(params, mean_delta, server_lr_);
      return;
    }
    FLINT_CHECK_EQ(params.size(), mean_delta.size());
    if (velocity_.size() != params.size()) velocity_.assign(params.size(), 0.0f);
    const std::size_t n = params.size();
    const float beta = static_cast<float>(momentum_);
    const float lr = static_cast<float>(server_lr_);
    float* FLINT_RESTRICT v = velocity_.data();
    float* FLINT_RESTRICT p = params.data();
    const float* FLINT_RESTRICT d = mean_delta.data();
    for (std::size_t i = 0; i < n; ++i) {
      v[i] = beta * v[i] + d[i];
      p[i] += lr * v[i];
    }
  }

  /// Momentum state for checkpointing (empty until the first momentum step,
  /// or always when momentum == 0).
  const std::vector<float>& velocity() const { return velocity_; }

  /// Restore checkpointed momentum state (resume path).
  void restore_velocity(std::vector<float> velocity) { velocity_ = std::move(velocity); }

 private:
  double server_lr_;
  double momentum_;
  std::vector<float> velocity_;
};

}  // namespace flint::fl
