// Update aggregation primitives shared by FedAvg and FedBuff.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "flint/ml/kernels/kernels.h"
#include "flint/util/check.h"

namespace flint::fl {

/// Staleness discount from the FedBuff paper (Nguyen et al., 2022):
/// weight = 1 / sqrt(1 + staleness).
inline double staleness_weight(std::uint64_t staleness) {
  return 1.0 / std::sqrt(1.0 + static_cast<double>(staleness));
}

/// Weighted running mean of parameter deltas.
class UpdateAccumulator {
 public:
  explicit UpdateAccumulator(std::size_t dim) : sum_(dim, 0.0) { FLINT_CHECK(dim > 0); }

  void add(std::span<const float> delta, double weight) {
    FLINT_CHECK_EQ(delta.size(), sum_.size());
    FLINT_CHECK_FINITE(weight);
    FLINT_CHECK_GT(weight, 0.0);
    ml::kernels::active().weighted_accum(sum_.data(), delta.data(), weight, sum_.size());
    weight_sum_ += weight;
    ++count_;
  }

  std::size_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  std::size_t dim() const { return sum_.size(); }

  /// Weighted mean of everything added since the last reset.
  std::vector<float> weighted_mean() const {
    // Weight conservation: the divisor must be the (positive, finite) sum of
    // all weights accepted by add(); a NaN here means a client smuggled a
    // non-finite weight past the per-update checks.
    FLINT_CHECK_FINITE(weight_sum_);
    FLINT_CHECK_GT(weight_sum_, 0.0);
    const std::size_t n = sum_.size();
    // Multiply by the hoisted reciprocal: one divide total instead of one
    // per coordinate.
    const double inv = 1.0 / weight_sum_;
    std::vector<float> out(n);
    ml::kernels::active().mean_from_sums(out.data(), sum_.data(), inv, n);
    return out;
  }

  void reset() {
    std::fill(sum_.begin(), sum_.end(), 0.0);
    weight_sum_ = 0.0;
    count_ = 0;
  }

  /// Raw state for checkpointing; pairs with restore().
  const std::vector<double>& sum() const { return sum_; }
  double weight_sum() const { return weight_sum_; }

  /// Restore checkpointed state (resume path). The sum must match this
  /// accumulator's dimension.
  void restore(std::vector<double> sum, double weight_sum, std::size_t count) {
    FLINT_CHECK_EQ(sum.size(), sum_.size());
    FLINT_CHECK_FINITE(weight_sum);
    FLINT_CHECK_GE(weight_sum, 0.0);
    sum_ = std::move(sum);
    weight_sum_ = weight_sum;
    count_ = count;
  }

 private:
  std::vector<double> sum_;
  double weight_sum_ = 0.0;
  std::size_t count_ = 0;
};

/// Apply a server update: params += server_lr * mean_delta.
inline void apply_server_update(std::vector<float>& params, std::span<const float> mean_delta,
                                double server_lr) {
  FLINT_CHECK_EQ(params.size(), mean_delta.size());
  FLINT_CHECK_FINITE(server_lr);
  ml::kernels::active().axpy(params.data(), mean_delta.data(),
                             static_cast<float>(server_lr), params.size());
}

/// Server-side optimizer state: plain averaging when momentum == 0,
/// FedAvgM otherwise.
class ServerOptimizer {
 public:
  ServerOptimizer(double server_lr, double momentum)
      : server_lr_(server_lr), momentum_(momentum) {
    FLINT_CHECK_FINITE(server_lr);
    FLINT_CHECK_GT(server_lr, 0.0);
    FLINT_CHECK_FINITE(momentum);
    FLINT_CHECK_GE(momentum, 0.0);
    FLINT_CHECK_LT(momentum, 1.0);
  }

  /// Apply one aggregated delta to the global parameters.
  void step(std::vector<float>& params, std::span<const float> mean_delta) {
    if (momentum_ == 0.0) {
      apply_server_update(params, mean_delta, server_lr_);
      return;
    }
    FLINT_CHECK_EQ(params.size(), mean_delta.size());
    if (velocity_.size() != params.size()) velocity_.assign(params.size(), 0.0f);
    ml::kernels::active().server_momentum_step(
        params.data(), velocity_.data(), mean_delta.data(), static_cast<float>(momentum_),
        static_cast<float>(server_lr_), params.size());
  }

  /// Momentum state for checkpointing (empty until the first momentum step,
  /// or always when momentum == 0).
  const std::vector<float>& velocity() const { return velocity_; }

  /// Restore checkpointed momentum state (resume path).
  void restore_velocity(std::vector<float> velocity) { velocity_ = std::move(velocity); }

 private:
  double server_lr_;
  double momentum_;
  std::vector<float> velocity_;
};

}  // namespace flint::fl
