#include "flint/net/bandwidth_model.h"

#include <algorithm>
#include <cmath>

namespace flint::net {

FixedBandwidthModel::FixedBandwidthModel(double mbps) : mbps_(mbps) {
  FLINT_CHECK_FINITE(mbps);
  FLINT_CHECK_GT(mbps, 0.0);
}

double FixedBandwidthModel::sample_mbps(util::Rng& rng) const {
  (void)rng;
  return mbps_;
}

PufferLikeBandwidthModel::PufferLikeBandwidthModel()
    : PufferLikeBandwidthModel(
          {
              {.weight = 0.20, .mu = std::log(1.5), .sigma = 0.8},   // congested cellular
              {.weight = 0.55, .mu = std::log(12.0), .sigma = 0.7},  // typical broadband
              {.weight = 0.25, .mu = std::log(55.0), .sigma = 0.5},  // fast WiFi
          }) {}

PufferLikeBandwidthModel::PufferLikeBandwidthModel(std::vector<BandwidthComponent> components,
                                                   double floor_mbps, double ceil_mbps)
    : components_(std::move(components)), floor_mbps_(floor_mbps), ceil_mbps_(ceil_mbps) {
  FLINT_CHECK(!components_.empty());
  FLINT_CHECK_GT(floor_mbps_, 0.0);
  FLINT_CHECK_GT(ceil_mbps_, floor_mbps_);
  for (const auto& c : components_) {
    FLINT_CHECK_FINITE(c.mu);
    FLINT_CHECK_GT(c.weight, 0.0);
    FLINT_CHECK_GT(c.sigma, 0.0);
    weights_.push_back(c.weight);
  }
}

double PufferLikeBandwidthModel::sample_mbps(util::Rng& rng) const {
  const auto& c = components_[rng.categorical(weights_)];
  double v = rng.lognormal(c.mu, c.sigma);
  return std::clamp(v, floor_mbps_, ceil_mbps_);
}

double transfer_seconds(std::uint64_t bytes, double mbps) {
  FLINT_CHECK_FINITE(mbps);
  FLINT_CHECK_GT(mbps, 0.0);
  return static_cast<double>(bytes) * 8.0 / (mbps * 1e6);
}

}  // namespace flint::net
