// Edge network bandwidth models. The paper samples client bandwidth N from
// the Puffer dataset (Yan et al., NSDI 2020) when computing
// taskDuration(k) = t*E*|D_k| + 2M/N. We cannot ship that dataset, so
// PufferLikeBandwidthModel reproduces its qualitative shape: a heavy-tailed
// mixture spanning ~1 Mbps (congested cellular) to ~100+ Mbps (good WiFi).
#pragma once

#include <cstdint>
#include <vector>

#include "flint/util/rng.h"

namespace flint::net {

/// Interface: draw one client's downlink/uplink bandwidth in Mbps.
class BandwidthModel {
 public:
  virtual ~BandwidthModel() = default;

  /// One bandwidth sample in Mbps (> 0).
  virtual double sample_mbps(util::Rng& rng) const = 0;
};

/// Deterministic bandwidth for tests and controlled ablations.
class FixedBandwidthModel : public BandwidthModel {
 public:
  explicit FixedBandwidthModel(double mbps);
  double sample_mbps(util::Rng& rng) const override;

 private:
  double mbps_;
};

/// One lognormal mixture component.
struct BandwidthComponent {
  double weight = 1.0;  ///< mixture weight (normalized internally)
  double mu = 0.0;      ///< lognormal mu (of the underlying normal, ln-Mbps)
  double sigma = 1.0;   ///< lognormal sigma
};

/// Lognormal mixture over edge bandwidths, default-calibrated to the Puffer
/// dataset's published throughput range. Samples are clamped to
/// [floor_mbps, ceil_mbps] so no task sees a pathological bandwidth.
class PufferLikeBandwidthModel : public BandwidthModel {
 public:
  /// Default mixture: 20% congested (~1.5 Mbps median), 55% typical
  /// (~12 Mbps), 25% fast (~55 Mbps).
  PufferLikeBandwidthModel();

  explicit PufferLikeBandwidthModel(std::vector<BandwidthComponent> components,
                                    double floor_mbps = 0.2, double ceil_mbps = 400.0);

  double sample_mbps(util::Rng& rng) const override;

  const std::vector<BandwidthComponent>& components() const { return components_; }

 private:
  std::vector<BandwidthComponent> components_;
  std::vector<double> weights_;
  double floor_mbps_;
  double ceil_mbps_;
};

/// Seconds to move `bytes` over a `mbps` link.
double transfer_seconds(std::uint64_t bytes, double mbps);

}  // namespace flint::net
