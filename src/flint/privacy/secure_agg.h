// Secure aggregation (paper §3.6): a TEE-based aggregator with remote
// attestation and bandwidth accounting ("a TEE needs to receive and
// aggregate only 2.68MB/second of updates", §3.5), plus a pairwise-mask
// SecAgg simulation used to property-test the additive-masking identity.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "flint/util/rng.h"

namespace flint::privacy {

/// TEE capacity/cost model.
struct TeeConfig {
  double bandwidth_mbps = 24.0;        ///< enclave ingress limit (~3 MB/s)
  double attestation_s = 0.5;          ///< one-time remote attestation per client
  double per_update_overhead_bytes = 256;  ///< envelope/encryption overhead
};

/// Trusted-execution-environment aggregator: accumulates weighted updates
/// (compatible with async FL — any arrival order) and tracks the ingress
/// bytes and busy time the enclave would spend.
class TeeSecureAggregator {
 public:
  TeeSecureAggregator(const TeeConfig& config, std::size_t dim);

  /// Ingest one client's update with the given aggregation weight.
  void accumulate(std::span<const float> update, double weight = 1.0);

  /// Weighted mean of everything accumulated since the last finalize;
  /// resets the accumulator. Requires at least one update.
  std::vector<float> finalize();

  std::uint64_t updates_received() const { return updates_received_; }
  std::uint64_t bytes_received() const { return bytes_received_; }

  /// Total enclave busy time: transfer at the ingress limit + attestations.
  double busy_seconds() const;

  /// Ingress bandwidth (MB/s) needed to sustain `updates_per_s` updates of
  /// `update_bytes` each, including envelope overhead.
  double required_mbytes_per_s(double updates_per_s, std::uint64_t update_bytes) const;

  /// Can this enclave sustain the given update stream?
  bool within_capacity(double updates_per_s, std::uint64_t update_bytes) const;

 private:
  TeeConfig config_;
  std::vector<double> sum_;
  double weight_sum_ = 0.0;
  std::uint64_t updates_received_ = 0;
  std::uint64_t bytes_received_ = 0;
  std::uint64_t attestations_ = 0;
};

/// Pairwise-mask SecAgg simulation: every client pair (i < j) derives a
/// shared mask from `session_seed`; i adds it, j subtracts it. Returns the
/// masked updates, whose SUM equals the sum of the raw updates while each
/// individual masked update is (pseudo)random — the classic Bonawitz-style
/// additive masking identity, property-tested in the suite.
std::vector<std::vector<float>> mask_updates(const std::vector<std::vector<float>>& updates,
                                             std::uint64_t session_seed);

}  // namespace flint::privacy
