// Differential privacy for FL updates (paper §3.6): per-update L2 clipping
// plus Gaussian noising, with a simple composition accountant so modelers
// can trade epsilon against model quality in the experimental framework.
#pragma once

#include <cstdint>
#include <vector>

#include "flint/util/rng.h"

namespace flint::privacy {

/// DP-FL mechanism parameters.
struct DpConfig {
  double clip_norm = 1.0;        ///< L2 sensitivity bound per client update
  double noise_multiplier = 1.0; ///< sigma = noise_multiplier * clip_norm
  double delta = 1e-6;           ///< target delta
};

/// Clip `update` in place to L2 norm <= clip_norm; returns the pre-clip norm.
double clip_update(std::vector<float>& update, double clip_norm);

/// Add iid N(0, stddev^2) noise to every coordinate.
void add_gaussian_noise(std::vector<float>& update, double stddev, util::Rng& rng);

/// Apply the full per-client mechanism: clip then noise with
/// sigma = noise_multiplier * clip_norm / participants (server-side noise
/// split across the cohort average). Returns the pre-clip norm.
double apply_dp(std::vector<float>& update, const DpConfig& config, std::size_t participants,
                util::Rng& rng);

/// Simplified privacy accountant for the Gaussian mechanism under Poisson
/// client sampling. Uses the strong-composition bound
///   epsilon ~= q * sqrt(2 * T * ln(1/delta)) / sigma_multiplier
/// which is conservative relative to a full moments accountant but has the
/// right shape (sqrt in rounds, linear in sampling rate). Documented as an
/// estimate, suitable for the platform's what-if analyses.
class DpAccountant {
 public:
  DpAccountant(const DpConfig& config, double sampling_rate);

  /// Record `n` more aggregation rounds.
  void record_rounds(std::uint64_t n) { rounds_ += n; }

  std::uint64_t rounds() const { return rounds_; }

  /// Estimated epsilon spent so far.
  double epsilon() const;

  /// Rounds remaining before `epsilon_budget` is exhausted (0 if already).
  std::uint64_t rounds_until(double epsilon_budget) const;

 private:
  DpConfig config_;
  double sampling_rate_;
  std::uint64_t rounds_ = 0;
};

}  // namespace flint::privacy
