#include "flint/privacy/dp.h"

#include <cmath>

#include "flint/ml/kernels/kernels.h"
#include "flint/util/check.h"

namespace flint::privacy {

double clip_update(std::vector<float>& update, double clip_norm) {
  FLINT_CHECK_FINITE(clip_norm);
  FLINT_CHECK_GT(clip_norm, 0.0);
  const auto& k = ml::kernels::active();
  double norm = std::sqrt(k.sum_squares(update.data(), update.size(), 0.0));
  if (norm > clip_norm) {
    auto scale = static_cast<float>(clip_norm / norm);
    k.scale(update.data(), scale, update.size());
  }
  return norm;
}

void add_gaussian_noise(std::vector<float>& update, double stddev, util::Rng& rng) {
  FLINT_CHECK_FINITE(stddev);
  FLINT_CHECK_GE(stddev, 0.0);
  if (stddev == 0.0) return;
  for (float& v : update) v += static_cast<float>(rng.normal(0.0, stddev));
}

double apply_dp(std::vector<float>& update, const DpConfig& config, std::size_t participants,
                util::Rng& rng) {
  FLINT_CHECK_GT(participants, std::size_t{0});
  FLINT_CHECK_FINITE(config.clip_norm);
  FLINT_CHECK_GT(config.clip_norm, 0.0);
  double stddev =
      config.noise_multiplier * config.clip_norm / static_cast<double>(participants);
  FLINT_CHECK_FINITE(stddev);
  FLINT_CHECK_GE(stddev, 0.0);
  // Fused clip + noise: one norm pass and one combined scale-and-add sweep
  // instead of separate clip and noise passes. Draw order and per-element
  // rounding match the two-pass version exactly (see kernels::clip_noise).
  return ml::kernels::clip_noise(update.data(), update.size(), config.clip_norm, stddev,
                                 rng);
}

DpAccountant::DpAccountant(const DpConfig& config, double sampling_rate)
    : config_(config), sampling_rate_(sampling_rate) {
  FLINT_CHECK_GT(config.noise_multiplier, 0.0);
  FLINT_CHECK_PROB(config.delta);
  FLINT_CHECK_GT(config.delta, 0.0);
  FLINT_CHECK_LT(config.delta, 1.0);
  FLINT_CHECK_PROB(sampling_rate);
  FLINT_CHECK_GT(sampling_rate, 0.0);
}

double DpAccountant::epsilon() const {
  if (rounds_ == 0) return 0.0;
  double t = static_cast<double>(rounds_);
  return sampling_rate_ * std::sqrt(2.0 * t * std::log(1.0 / config_.delta)) /
         config_.noise_multiplier;
}

std::uint64_t DpAccountant::rounds_until(double epsilon_budget) const {
  FLINT_CHECK_FINITE(epsilon_budget);
  FLINT_CHECK_GT(epsilon_budget, 0.0);
  // Invert epsilon(T) = q * sqrt(2 T ln(1/delta)) / sigma for T.
  double ratio = epsilon_budget * config_.noise_multiplier / sampling_rate_;
  double t_max = ratio * ratio / (2.0 * std::log(1.0 / config_.delta));
  if (static_cast<double>(rounds_) >= t_max) return 0;
  return static_cast<std::uint64_t>(t_max) - rounds_;
}

}  // namespace flint::privacy
