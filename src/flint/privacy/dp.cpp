#include "flint/privacy/dp.h"

#include <cmath>

#include "flint/util/check.h"

namespace flint::privacy {

double clip_update(std::vector<float>& update, double clip_norm) {
  FLINT_CHECK_FINITE(clip_norm);
  FLINT_CHECK_GT(clip_norm, 0.0);
  double sq = 0.0;
  for (float v : update) sq += static_cast<double>(v) * v;
  double norm = std::sqrt(sq);
  if (norm > clip_norm) {
    auto scale = static_cast<float>(clip_norm / norm);
    for (float& v : update) v *= scale;
  }
  return norm;
}

void add_gaussian_noise(std::vector<float>& update, double stddev, util::Rng& rng) {
  FLINT_CHECK_FINITE(stddev);
  FLINT_CHECK_GE(stddev, 0.0);
  if (stddev == 0.0) return;
  for (float& v : update) v += static_cast<float>(rng.normal(0.0, stddev));
}

double apply_dp(std::vector<float>& update, const DpConfig& config, std::size_t participants,
                util::Rng& rng) {
  FLINT_CHECK_GT(participants, std::size_t{0});
  double norm = clip_update(update, config.clip_norm);
  double stddev =
      config.noise_multiplier * config.clip_norm / static_cast<double>(participants);
  add_gaussian_noise(update, stddev, rng);
  return norm;
}

DpAccountant::DpAccountant(const DpConfig& config, double sampling_rate)
    : config_(config), sampling_rate_(sampling_rate) {
  FLINT_CHECK_GT(config.noise_multiplier, 0.0);
  FLINT_CHECK_PROB(config.delta);
  FLINT_CHECK_GT(config.delta, 0.0);
  FLINT_CHECK_LT(config.delta, 1.0);
  FLINT_CHECK_PROB(sampling_rate);
  FLINT_CHECK_GT(sampling_rate, 0.0);
}

double DpAccountant::epsilon() const {
  if (rounds_ == 0) return 0.0;
  double t = static_cast<double>(rounds_);
  return sampling_rate_ * std::sqrt(2.0 * t * std::log(1.0 / config_.delta)) /
         config_.noise_multiplier;
}

std::uint64_t DpAccountant::rounds_until(double epsilon_budget) const {
  FLINT_CHECK_FINITE(epsilon_budget);
  FLINT_CHECK_GT(epsilon_budget, 0.0);
  // Invert epsilon(T) = q * sqrt(2 T ln(1/delta)) / sigma for T.
  double ratio = epsilon_budget * config_.noise_multiplier / sampling_rate_;
  double t_max = ratio * ratio / (2.0 * std::log(1.0 / config_.delta));
  if (static_cast<double>(rounds_) >= t_max) return 0;
  return static_cast<std::uint64_t>(t_max) - rounds_;
}

}  // namespace flint::privacy
