#include "flint/privacy/secure_agg.h"

#include "flint/util/check.h"

namespace flint::privacy {

TeeSecureAggregator::TeeSecureAggregator(const TeeConfig& config, std::size_t dim)
    : config_(config), sum_(dim, 0.0) {
  FLINT_CHECK(dim > 0);
  FLINT_CHECK(config.bandwidth_mbps > 0.0);
}

void TeeSecureAggregator::accumulate(std::span<const float> update, double weight) {
  FLINT_CHECK_MSG(update.size() == sum_.size(),
                  "update dim " << update.size() << " != aggregator dim " << sum_.size());
  FLINT_CHECK(weight > 0.0);
  for (std::size_t i = 0; i < update.size(); ++i)
    sum_[i] += weight * static_cast<double>(update[i]);
  weight_sum_ += weight;
  ++updates_received_;
  ++attestations_;
  bytes_received_ += update.size() * sizeof(float) +
                     static_cast<std::uint64_t>(config_.per_update_overhead_bytes);
}

std::vector<float> TeeSecureAggregator::finalize() {
  FLINT_CHECK_MSG(weight_sum_ > 0.0, "finalize with no accumulated updates");
  std::vector<float> out(sum_.size());
  for (std::size_t i = 0; i < sum_.size(); ++i)
    out[i] = static_cast<float>(sum_[i] / weight_sum_);
  std::fill(sum_.begin(), sum_.end(), 0.0);
  weight_sum_ = 0.0;
  return out;
}

double TeeSecureAggregator::busy_seconds() const {
  double transfer = static_cast<double>(bytes_received_) * 8.0 / (config_.bandwidth_mbps * 1e6);
  return transfer + static_cast<double>(attestations_) * config_.attestation_s;
}

double TeeSecureAggregator::required_mbytes_per_s(double updates_per_s,
                                                  std::uint64_t update_bytes) const {
  FLINT_CHECK(updates_per_s >= 0.0);
  double bytes_per_s =
      updates_per_s * (static_cast<double>(update_bytes) + config_.per_update_overhead_bytes);
  return bytes_per_s / 1e6;
}

bool TeeSecureAggregator::within_capacity(double updates_per_s,
                                          std::uint64_t update_bytes) const {
  return required_mbytes_per_s(updates_per_s, update_bytes) * 8.0 <= config_.bandwidth_mbps;
}

std::vector<std::vector<float>> mask_updates(const std::vector<std::vector<float>>& updates,
                                             std::uint64_t session_seed) {
  FLINT_CHECK(!updates.empty());
  std::size_t n = updates.size();
  std::size_t dim = updates[0].size();
  for (const auto& u : updates) FLINT_CHECK_MSG(u.size() == dim, "ragged updates");

  std::vector<std::vector<float>> masked = updates;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      // Shared PRG seed for the (i, j) pair; both sides derive it identically
      // (in production via a key agreement; here from the session seed).
      util::Rng pair_rng(util::splitmix64(session_seed ^ (i * 0x9e3779b9ULL + j)));
      for (std::size_t d = 0; d < dim; ++d) {
        auto mask = static_cast<float>(pair_rng.normal(0.0, 1.0));
        masked[i][d] += mask;
        masked[j][d] -= mask;
      }
    }
  }
  return masked;
}

}  // namespace flint::privacy
