// Gradient-update compression. The paper's duration and TEE-bandwidth
// models are linear in the update size M (taskDuration(k) = t*E*|D_k| + 2M/N,
// §3.4-3.5), and §4.2 surveys embedding-compression techniques — so FLINT
// ships the standard update compressors: symmetric int8 quantization and
// top-k sparsification with client-side error feedback.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace flint::compress {

/// Symmetric linear int8 quantization of a float vector.
struct QuantizedUpdate {
  std::vector<std::int8_t> values;
  float scale = 1.0f;  ///< dequantized = value * scale

  std::size_t dim() const { return values.size(); }
  /// Serialized payload: one byte per value + the scale.
  std::size_t payload_bytes() const { return values.size() + sizeof(float); }
};

/// Quantize to int8 with a per-update scale (max-abs calibration).
QuantizedUpdate quantize_int8(std::span<const float> update);

/// Reconstruct floats.
std::vector<float> dequantize(const QuantizedUpdate& q);

/// Top-k sparsification: keep the k largest-magnitude coordinates.
struct SparseUpdate {
  std::uint32_t dim = 0;
  std::vector<std::uint32_t> indices;  ///< strictly increasing
  std::vector<float> values;

  /// Serialized payload: 4B index + 4B value per kept coordinate + header.
  std::size_t payload_bytes() const {
    return indices.size() * (sizeof(std::uint32_t) + sizeof(float)) + sizeof(std::uint32_t);
  }
};

/// Keep the k largest-|v| coordinates (all, if k >= dim).
SparseUpdate top_k_sparsify(std::span<const float> update, std::size_t k);

/// Expand back to a dense vector (zeros elsewhere).
std::vector<float> densify(const SparseUpdate& s);

/// Client-side error feedback (Seide et al. / Karimireddy et al.): the
/// residual each compression step drops is added back before the next
/// compression, so the error stays bounded instead of accumulating.
class ErrorFeedback {
 public:
  explicit ErrorFeedback(std::size_t dim);

  /// Compress `update + residual` to top-k; store the new residual.
  SparseUpdate compress(std::span<const float> update, std::size_t k);

  const std::vector<float>& residual() const { return residual_; }
  void reset();

 private:
  std::vector<float> residual_;
};

/// How a run compresses client updates.
enum class CompressionKind {
  kNone,
  kInt8,  ///< 4x smaller updates, small quantization noise
  kTopK,  ///< keep `top_k_fraction` of coordinates
};

struct CompressionConfig {
  CompressionKind kind = CompressionKind::kNone;
  double top_k_fraction = 0.1;  ///< used by kTopK

  bool enabled() const { return kind != CompressionKind::kNone; }
};

/// Apply the configured lossy round trip to `update` in place and return the
/// compressed payload size in bytes (the M the network would carry).
std::size_t apply_compression(std::vector<float>& update, const CompressionConfig& config);

/// Compressed update size for a model of `dim` parameters (for duration
/// model calibration before any update exists).
std::size_t compressed_bytes(std::size_t dim, const CompressionConfig& config);

}  // namespace flint::compress
