#include "flint/compress/quantize.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "flint/ml/kernels/kernels.h"
#include "flint/util/check.h"

namespace flint::compress {

QuantizedUpdate quantize_int8(std::span<const float> update) {
  FLINT_CHECK(!update.empty());
  // max_abs is order-independent, so the SIMD path is exact. The conversion
  // loop stays scalar: std::lround rounds half away from zero, which SIMD
  // round-to-even instructions would not reproduce.
  float max_abs = ml::kernels::active().max_abs(update.data(), update.size());
  QuantizedUpdate q;
  q.scale = max_abs > 0.0f ? max_abs / 127.0f : 1.0f;
  q.values.reserve(update.size());
  for (float v : update) {
    auto scaled = static_cast<int>(std::lround(v / q.scale));
    q.values.push_back(static_cast<std::int8_t>(std::clamp(scaled, -127, 127)));
  }
  return q;
}

std::vector<float> dequantize(const QuantizedUpdate& q) {
  std::vector<float> out;
  out.reserve(q.values.size());
  for (std::int8_t v : q.values) out.push_back(static_cast<float>(v) * q.scale);
  return out;
}

SparseUpdate top_k_sparsify(std::span<const float> update, std::size_t k) {
  FLINT_CHECK(!update.empty());
  SparseUpdate s;
  s.dim = static_cast<std::uint32_t>(update.size());
  k = std::min(k, update.size());
  if (k == 0) return s;
  // nth_element on indices by |value|, then sort the kept indices.
  std::vector<std::uint32_t> order(update.size());
  std::iota(order.begin(), order.end(), 0);
  std::nth_element(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(k - 1),
                   order.end(), [&](std::uint32_t a, std::uint32_t b) {
                     return std::abs(update[a]) > std::abs(update[b]);
                   });
  order.resize(k);
  std::sort(order.begin(), order.end());
  s.indices = std::move(order);
  s.values.reserve(k);
  for (std::uint32_t idx : s.indices) s.values.push_back(update[idx]);
  return s;
}

std::vector<float> densify(const SparseUpdate& s) {
  std::vector<float> out(s.dim, 0.0f);
  FLINT_CHECK(s.indices.size() == s.values.size());
  for (std::size_t i = 0; i < s.indices.size(); ++i) {
    FLINT_CHECK_MSG(s.indices[i] < s.dim, "sparse index out of range");
    out[s.indices[i]] = s.values[i];
  }
  return out;
}

ErrorFeedback::ErrorFeedback(std::size_t dim) : residual_(dim, 0.0f) {
  FLINT_CHECK(dim > 0);
}

SparseUpdate ErrorFeedback::compress(std::span<const float> update, std::size_t k) {
  FLINT_CHECK_MSG(update.size() == residual_.size(),
                  "update dim " << update.size() << " != feedback dim " << residual_.size());
  std::vector<float> corrected(update.begin(), update.end());
  ml::kernels::active().add(corrected.data(), residual_.data(), corrected.size());
  SparseUpdate s = top_k_sparsify(corrected, k);
  // New residual: what the sparsification dropped.
  residual_ = std::move(corrected);
  for (std::size_t i = 0; i < s.indices.size(); ++i) residual_[s.indices[i]] = 0.0f;
  return s;
}

void ErrorFeedback::reset() { std::fill(residual_.begin(), residual_.end(), 0.0f); }

std::size_t apply_compression(std::vector<float>& update, const CompressionConfig& config) {
  switch (config.kind) {
    case CompressionKind::kNone:
      return update.size() * sizeof(float);
    case CompressionKind::kInt8: {
      QuantizedUpdate q = quantize_int8(update);
      std::size_t bytes = q.payload_bytes();
      update = dequantize(q);
      return bytes;
    }
    case CompressionKind::kTopK: {
      FLINT_CHECK(config.top_k_fraction > 0.0 && config.top_k_fraction <= 1.0);
      auto k = static_cast<std::size_t>(
          std::ceil(config.top_k_fraction * static_cast<double>(update.size())));
      SparseUpdate s = top_k_sparsify(update, k);
      std::size_t bytes = s.payload_bytes();
      update = densify(s);
      return bytes;
    }
  }
  return update.size() * sizeof(float);
}

std::size_t compressed_bytes(std::size_t dim, const CompressionConfig& config) {
  FLINT_CHECK(dim > 0);
  switch (config.kind) {
    case CompressionKind::kNone:
      return dim * sizeof(float);
    case CompressionKind::kInt8:
      return dim + sizeof(float);
    case CompressionKind::kTopK: {
      auto k = static_cast<std::size_t>(
          std::ceil(config.top_k_fraction * static_cast<double>(dim)));
      return k * (sizeof(std::uint32_t) + sizeof(float)) + sizeof(std::uint32_t);
    }
  }
  return dim * sizeof(float);
}

}  // namespace flint::compress
