#include "flint/store/checkpoint.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "flint/obs/telemetry.h"
#include "flint/util/bytes.h"
#include "flint/util/check.h"
#include "flint/util/crc32.h"
#include "flint/util/logging.h"

namespace flint::store {

namespace fs = std::filesystem;

namespace {

constexpr char kMagic[4] = {'F', 'C', 'K', 'P'};
constexpr std::uint32_t kFormatVersion = 2;
// magic + u32 version + u64 payload size + u32 payload CRC.
constexpr std::size_t kHeaderSize = 4 + 4 + 8 + 4;

std::int64_t seq_of(const fs::path& path) {
  // "ckpt_<seq>" -> seq, or -1 if the name doesn't match. 64-bit: a
  // long-running job's sequence numbers overflow int.
  std::string stem = path.stem().string();
  if (stem.rfind("ckpt_", 0) != 0) return -1;
  try {
    std::size_t consumed = 0;
    std::int64_t seq = std::stoll(stem.substr(5), &consumed);
    if (consumed != stem.size() - 5) return -1;
    return seq;
  } catch (const std::exception&) {
    return -1;
  }
}

// --- payload field helpers --------------------------------------------------
// Every variable-length field is a u64 count followed by elements, and every
// count is validated with the division form `n <= remaining / elem_size` —
// the multiplied form overflows size_t for a corrupt huge n and bypasses the
// bound entirely.

void append_string(std::vector<char>& out, const std::string& s) {
  util::append_pod(out, static_cast<std::uint64_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

std::string read_string(const std::vector<char>& in, std::size_t& offset) {
  auto n = util::read_pod<std::uint64_t>(in, offset);
  FLINT_CHECK_LE(offset, in.size());
  FLINT_CHECK_MSG(n <= in.size() - offset, "corrupt checkpoint: string length " << n);
  std::string s(in.data() + offset, in.data() + offset + n);
  offset += n;
  return s;
}

template <typename T>
void append_numeric_vector(std::vector<char>& out, const std::vector<T>& v) {
  util::append_pod(out, static_cast<std::uint64_t>(v.size()));
  util::append_pod_array(out, v.data(), v.size());
}

/// Read a u64 element count for elements of `elem_size` bytes, guarded so a
/// corrupt count can neither wrap the bounds check nor drive a giant resize.
std::uint64_t read_count(const std::vector<char>& in, std::size_t& offset,
                         std::size_t elem_size) {
  auto n = util::read_pod<std::uint64_t>(in, offset);
  FLINT_CHECK_LE(offset, in.size());
  FLINT_CHECK_MSG(n <= (in.size() - offset) / elem_size,
                  "corrupt checkpoint: element count " << n << " exceeds remaining "
                                                       << (in.size() - offset) << " bytes");
  return n;
}

template <typename T>
std::vector<T> read_numeric_vector(const std::vector<char>& in, std::size_t& offset) {
  std::vector<T> v(read_count(in, offset, sizeof(T)));
  util::read_pod_array(in, offset, v.data(), v.size());
  return v;
}

void append_metrics(std::vector<char>& out, const CheckpointMetrics& m) {
  util::append_pod(out, m.tasks_started);
  util::append_pod(out, m.tasks_succeeded);
  util::append_pod(out, m.tasks_interrupted);
  util::append_pod(out, m.tasks_stale);
  util::append_pod(out, m.tasks_failed);
  util::append_pod(out, m.updates_aggregated);
  util::append_pod(out, m.client_compute_s);
  util::append_pod(out, static_cast<std::uint64_t>(m.rounds.size()));
  for (const auto& r : m.rounds) {
    util::append_pod(out, r.round);
    util::append_pod(out, r.start);
    util::append_pod(out, r.end);
    util::append_pod(out, r.updates_aggregated);
    util::append_pod(out, r.mean_staleness);
  }
  util::append_pod(out, static_cast<std::uint64_t>(m.checkpoints.size()));
  for (const auto& c : m.checkpoints) {
    util::append_pod(out, c.round);
    util::append_pod(out, c.time);
  }
}

CheckpointMetrics read_metrics(const std::vector<char>& in, std::size_t& offset) {
  CheckpointMetrics m;
  m.tasks_started = util::read_pod<std::uint64_t>(in, offset);
  m.tasks_succeeded = util::read_pod<std::uint64_t>(in, offset);
  m.tasks_interrupted = util::read_pod<std::uint64_t>(in, offset);
  m.tasks_stale = util::read_pod<std::uint64_t>(in, offset);
  m.tasks_failed = util::read_pod<std::uint64_t>(in, offset);
  m.updates_aggregated = util::read_pod<std::uint64_t>(in, offset);
  m.client_compute_s = util::read_pod<double>(in, offset);
  m.rounds.resize(read_count(in, offset, 5 * sizeof(std::uint64_t)));
  for (auto& r : m.rounds) {
    r.round = util::read_pod<std::uint64_t>(in, offset);
    r.start = util::read_pod<double>(in, offset);
    r.end = util::read_pod<double>(in, offset);
    r.updates_aggregated = util::read_pod<std::uint64_t>(in, offset);
    r.mean_staleness = util::read_pod<double>(in, offset);
  }
  m.checkpoints.resize(read_count(in, offset, 2 * sizeof(std::uint64_t)));
  for (auto& c : m.checkpoints) {
    c.round = util::read_pod<std::uint64_t>(in, offset);
    c.time = util::read_pod<double>(in, offset);
  }
  return m;
}

void append_fedbuff(std::vector<char>& out, const CheckpointFedBuff& fb) {
  append_numeric_vector(out, fb.accumulator_sum);
  util::append_pod(out, fb.accumulator_weight_sum);
  util::append_pod(out, fb.accumulator_count);
  util::append_pod(out, fb.staleness_sum);
  util::append_pod(out, fb.round_start);
  util::append_pod(out, fb.last_aggregation_time);
  util::append_pod(out, static_cast<std::uint8_t>(fb.pump_scheduled ? 1 : 0));
  util::append_pod(out, fb.pump_time);
  util::append_pod(out, fb.pump_stamp);
  util::append_pod(out, fb.next_stamp);
  util::append_pod(out, static_cast<std::uint64_t>(fb.in_flight.size()));
  for (const auto& t : fb.in_flight) {
    util::append_pod(out, t.task_id);
    util::append_pod(out, t.client_id);
    util::append_pod(out, t.device_index);
    util::append_pod(out, t.model_version);
    util::append_pod(out, t.dispatch_time);
    util::append_pod(out, t.compute_s);
    util::append_pod(out, t.comm_s);
    util::append_pod(out, t.examples);
    util::append_pod(out, t.update_bytes);
    util::append_pod(out, t.spent_compute_s);
    util::append_pod(out, t.window_end);
    util::append_pod(out, t.finish_time);
    util::append_pod(out, static_cast<std::uint8_t>(t.interrupted ? 1 : 0));
    util::append_pod(out, t.stamp);
    util::append_pod(out, t.update_weight);
    append_numeric_vector(out, t.update_delta);
  }
}

CheckpointFedBuff read_fedbuff(const std::vector<char>& in, std::size_t& offset) {
  CheckpointFedBuff fb;
  fb.accumulator_sum = read_numeric_vector<double>(in, offset);
  fb.accumulator_weight_sum = util::read_pod<double>(in, offset);
  fb.accumulator_count = util::read_pod<std::uint64_t>(in, offset);
  fb.staleness_sum = util::read_pod<double>(in, offset);
  fb.round_start = util::read_pod<double>(in, offset);
  fb.last_aggregation_time = util::read_pod<double>(in, offset);
  fb.pump_scheduled = util::read_pod<std::uint8_t>(in, offset) != 0;
  fb.pump_time = util::read_pod<double>(in, offset);
  fb.pump_stamp = util::read_pod<std::uint64_t>(in, offset);
  fb.next_stamp = util::read_pod<std::uint64_t>(in, offset);
  // Each in-flight record is >= 14 fixed 8-byte fields; the exact floor only
  // needs to make a corrupt count harmless before the per-record reads.
  fb.in_flight.resize(read_count(in, offset, 14 * sizeof(std::uint64_t)));
  for (auto& t : fb.in_flight) {
    t.task_id = util::read_pod<std::uint64_t>(in, offset);
    t.client_id = util::read_pod<std::uint64_t>(in, offset);
    t.device_index = util::read_pod<std::uint64_t>(in, offset);
    t.model_version = util::read_pod<std::uint64_t>(in, offset);
    t.dispatch_time = util::read_pod<double>(in, offset);
    t.compute_s = util::read_pod<double>(in, offset);
    t.comm_s = util::read_pod<double>(in, offset);
    t.examples = util::read_pod<std::uint64_t>(in, offset);
    t.update_bytes = util::read_pod<std::uint64_t>(in, offset);
    t.spent_compute_s = util::read_pod<double>(in, offset);
    t.window_end = util::read_pod<double>(in, offset);
    t.finish_time = util::read_pod<double>(in, offset);
    t.interrupted = util::read_pod<std::uint8_t>(in, offset) != 0;
    t.stamp = util::read_pod<std::uint64_t>(in, offset);
    t.update_weight = util::read_pod<double>(in, offset);
    t.update_delta = read_numeric_vector<float>(in, offset);
  }
  return fb;
}

}  // namespace

std::vector<char> serialize_checkpoint(const SimCheckpoint& c) {
  std::vector<char> payload;
  util::append_pod(payload, c.run_seed);
  util::append_pod(payload, c.algo);
  util::append_pod(payload, c.resume_count);
  util::append_pod(payload, c.checkpoints_written);
  util::append_pod(payload, c.virtual_time_s);
  util::append_pod(payload, c.round);
  util::append_pod(payload, c.tasks_completed);
  append_numeric_vector(payload, c.model_parameters);
  append_numeric_vector(payload, c.server_velocity);
  append_string(payload, c.server_rng_state);
  util::append_pod(payload, c.next_task_id);
  util::append_pod(payload, c.arrival_cursor);
  util::append_pod(payload, static_cast<std::uint64_t>(c.requeued.size()));
  for (const auto& r : c.requeued) {
    util::append_pod(payload, r.time);
    util::append_pod(payload, r.client_id);
    util::append_pod(payload, r.device_index);
    util::append_pod(payload, r.window_end);
  }
  util::append_pod(payload, static_cast<std::uint64_t>(c.last_participation.size()));
  for (const auto& [client, time] : c.last_participation) {
    util::append_pod(payload, client);
    util::append_pod(payload, time);
  }
  append_metrics(payload, c.metrics);
  util::append_pod(payload, static_cast<std::uint64_t>(c.eval_curve.size()));
  for (const auto& e : c.eval_curve) {
    util::append_pod(payload, e.time);
    util::append_pod(payload, e.round);
    util::append_pod(payload, e.metric);
    util::append_pod(payload, e.train_loss);
  }
  util::append_pod(payload, static_cast<std::uint64_t>(c.client_accounts.size()));
  for (const auto& a : c.client_accounts) {
    util::append_pod(payload, a.client_id);
    util::append_pod(payload, a.tasks_succeeded);
    util::append_pod(payload, a.tasks_interrupted);
    util::append_pod(payload, a.tasks_stale);
    util::append_pod(payload, a.tasks_failed);
    util::append_pod(payload, a.compute_s);
    util::append_pod(payload, a.wasted_compute_s);
    util::append_pod(payload, a.bytes_down);
    util::append_pod(payload, a.bytes_up);
  }
  util::append_pod(payload, static_cast<std::uint8_t>(c.has_fedbuff ? 1 : 0));
  if (c.has_fedbuff) append_fedbuff(payload, c.fedbuff);

  std::vector<char> out;
  out.reserve(kHeaderSize + payload.size());
  out.insert(out.end(), kMagic, kMagic + 4);
  util::append_pod(out, kFormatVersion);
  util::append_pod(out, static_cast<std::uint64_t>(payload.size()));
  util::append_pod(out, util::crc32(payload.data(), payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

SimCheckpoint deserialize_checkpoint(const std::vector<char>& bytes) {
  FLINT_CHECK_MSG(bytes.size() >= kHeaderSize, "checkpoint blob truncated: " << bytes.size()
                                                                             << " bytes");
  FLINT_CHECK_MSG(std::memcmp(bytes.data(), kMagic, 4) == 0, "bad checkpoint magic");
  std::size_t offset = 4;
  auto version = util::read_pod<std::uint32_t>(bytes, offset);
  FLINT_CHECK_MSG(version == kFormatVersion,
                  "unsupported checkpoint format version " << version);
  auto payload_size = util::read_pod<std::uint64_t>(bytes, offset);
  FLINT_CHECK_MSG(payload_size == bytes.size() - kHeaderSize,
                  "checkpoint payload truncated: header says " << payload_size << ", have "
                                                               << bytes.size() - kHeaderSize);
  auto expected_crc = util::read_pod<std::uint32_t>(bytes, offset);
  std::uint32_t actual_crc = util::crc32(bytes.data() + kHeaderSize, payload_size);
  FLINT_CHECK_MSG(actual_crc == expected_crc, "checkpoint CRC mismatch: stored "
                                                  << expected_crc << ", computed " << actual_crc);

  SimCheckpoint c;
  c.run_seed = util::read_pod<std::uint64_t>(bytes, offset);
  c.algo = util::read_pod<std::uint8_t>(bytes, offset);
  c.resume_count = util::read_pod<std::uint64_t>(bytes, offset);
  c.checkpoints_written = util::read_pod<std::uint64_t>(bytes, offset);
  c.virtual_time_s = util::read_pod<double>(bytes, offset);
  c.round = util::read_pod<std::uint64_t>(bytes, offset);
  c.tasks_completed = util::read_pod<std::uint64_t>(bytes, offset);
  c.model_parameters = read_numeric_vector<float>(bytes, offset);
  c.server_velocity = read_numeric_vector<float>(bytes, offset);
  c.server_rng_state = read_string(bytes, offset);
  c.next_task_id = util::read_pod<std::uint64_t>(bytes, offset);
  c.arrival_cursor = util::read_pod<std::uint64_t>(bytes, offset);
  c.requeued.resize(read_count(bytes, offset, 4 * sizeof(std::uint64_t)));
  for (auto& r : c.requeued) {
    r.time = util::read_pod<double>(bytes, offset);
    r.client_id = util::read_pod<std::uint64_t>(bytes, offset);
    r.device_index = util::read_pod<std::uint64_t>(bytes, offset);
    r.window_end = util::read_pod<double>(bytes, offset);
  }
  c.last_participation.resize(read_count(bytes, offset, 2 * sizeof(std::uint64_t)));
  for (auto& [client, time] : c.last_participation) {
    client = util::read_pod<std::uint64_t>(bytes, offset);
    time = util::read_pod<double>(bytes, offset);
  }
  c.metrics = read_metrics(bytes, offset);
  c.eval_curve.resize(read_count(bytes, offset, 4 * sizeof(std::uint64_t)));
  for (auto& e : c.eval_curve) {
    e.time = util::read_pod<double>(bytes, offset);
    e.round = util::read_pod<std::uint64_t>(bytes, offset);
    e.metric = util::read_pod<double>(bytes, offset);
    e.train_loss = util::read_pod<double>(bytes, offset);
  }
  c.client_accounts.resize(read_count(bytes, offset, 9 * sizeof(std::uint64_t)));
  for (auto& a : c.client_accounts) {
    a.client_id = util::read_pod<std::uint64_t>(bytes, offset);
    a.tasks_succeeded = util::read_pod<std::uint64_t>(bytes, offset);
    a.tasks_interrupted = util::read_pod<std::uint64_t>(bytes, offset);
    a.tasks_stale = util::read_pod<std::uint64_t>(bytes, offset);
    a.tasks_failed = util::read_pod<std::uint64_t>(bytes, offset);
    a.compute_s = util::read_pod<double>(bytes, offset);
    a.wasted_compute_s = util::read_pod<double>(bytes, offset);
    a.bytes_down = util::read_pod<std::uint64_t>(bytes, offset);
    a.bytes_up = util::read_pod<std::uint64_t>(bytes, offset);
  }
  c.has_fedbuff = util::read_pod<std::uint8_t>(bytes, offset) != 0;
  if (c.has_fedbuff) c.fedbuff = read_fedbuff(bytes, offset);
  FLINT_CHECK_MSG(offset == bytes.size(),
                  "checkpoint has " << bytes.size() - offset << " trailing bytes");
  FLINT_CHECK_FINITE(c.virtual_time_s);
  FLINT_CHECK_GE(c.virtual_time_s, 0.0);
  return c;
}

CheckpointStore::CheckpointStore(std::string dir) : dir_(std::move(dir)) {
  fs::create_directories(dir_);
  for (const auto& entry : fs::directory_iterator(dir_)) {
    const fs::path& path = entry.path();
    if (path.extension() == ".tmp" && seq_of(path) >= 0) {
      // Leftover from a writer that died between open and rename; it was
      // never published, so it is garbage — and counting its stem toward
      // next_seq_ would inflate numbering forever.
      FLINT_LOG_WARN << "removing stale checkpoint temp file " << path.string();
      std::error_code ec;
      fs::remove(path, ec);
      continue;
    }
    if (path.extension() != ".bin") continue;
    std::int64_t seq = seq_of(path);
    if (seq >= next_seq_) next_seq_ = seq + 1;
  }
}

std::int64_t CheckpointStore::write(const SimCheckpoint& checkpoint) {
  // Cold, potentially multi-threaded path: use the per-call free functions
  // rather than cached handles (which are single-threaded by design).
  // flint-analyze: allow(nondet-source): wall-clock write latency feeds an
  // observability histogram only, never the simulated state.
  auto wall_start = std::chrono::steady_clock::now();
  std::int64_t seq;
  {
    util::MutexLock lock(seq_mutex_);
    seq = next_seq_++;
  }
  auto blob = serialize_checkpoint(checkpoint);
  fs::path final_path = fs::path(dir_) / ("ckpt_" + std::to_string(seq) + ".bin");
  fs::path tmp_path = fs::path(dir_) / ("ckpt_" + std::to_string(seq) + ".tmp");
  bool ok;
  {
    std::ofstream out(tmp_path, std::ios::binary);
    FLINT_CHECK_MSG(out.good(), "cannot write " << tmp_path.string());
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    out.flush();
    ok = out.good();
    out.close();
    ok = ok && !out.fail();
  }
  if (!ok) {
    // Full disk or I/O error: never publish the truncated file.
    std::error_code ec;
    fs::remove(tmp_path, ec);
    FLINT_CHECK_MSG(false, "checkpoint write failed (disk full?): " << tmp_path.string());
  }
  fs::rename(tmp_path, final_path);  // atomic publish
  // flint-analyze: allow(nondet-source): same observability-only latency stamp.
  double wall_us = std::chrono::duration<double, std::micro>(
                       std::chrono::steady_clock::now() - wall_start)
                       .count();
  obs::record_histogram("store.checkpoint_write_us", wall_us, 0.0, 20'000.0, 40);
  obs::add_counter("store.checkpoint_bytes", blob.size());
  return seq;
}

std::optional<SimCheckpoint> CheckpointStore::latest() const {
  std::vector<std::pair<std::int64_t, fs::path>> files;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (entry.path().extension() != ".bin") continue;
    std::int64_t seq = seq_of(entry.path());
    if (seq >= 0) files.emplace_back(seq, entry.path());
  }
  std::sort(files.begin(), files.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  // Newest first, falling back past anything unreadable or corrupt: a torn
  // newest file (crash mid-publish, disk fault) must cost at most one
  // checkpoint of progress, not abort the resume.
  for (const auto& [seq, path] : files) {
    std::ifstream in(path, std::ios::binary);
    if (!in.good()) {
      FLINT_LOG_WARN << "skipping unreadable checkpoint " << path.string();
      continue;
    }
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    try {
      return deserialize_checkpoint(bytes);
    } catch (const util::CheckError& e) {
      FLINT_LOG_WARN << "skipping corrupt checkpoint " << path.string() << ": " << e.what();
    }
  }
  return std::nullopt;
}

std::size_t CheckpointStore::checkpoint_count() const {
  std::size_t n = 0;
  for (const auto& entry : fs::directory_iterator(dir_))
    if (entry.path().extension() == ".bin" && seq_of(entry.path()) >= 0) ++n;
  return n;
}

void CheckpointStore::prune(std::size_t keep) {
  std::vector<std::pair<std::int64_t, fs::path>> files;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (entry.path().extension() != ".bin") continue;
    std::int64_t seq = seq_of(entry.path());
    if (seq >= 0) files.emplace_back(seq, entry.path());
  }
  std::sort(files.begin(), files.end());
  if (files.size() <= keep) return;
  for (std::size_t i = 0; i + keep < files.size(); ++i) fs::remove(files[i].second);
}

}  // namespace flint::store
