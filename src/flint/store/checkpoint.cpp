#include "flint/store/checkpoint.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "flint/obs/telemetry.h"
#include "flint/util/bytes.h"
#include "flint/util/check.h"

namespace flint::store {

namespace fs = std::filesystem;

namespace {

constexpr char kMagic[4] = {'F', 'C', 'K', 'P'};

int seq_of(const fs::path& path) {
  // "ckpt_<seq>.bin" -> seq, or -1 if the name doesn't match.
  std::string stem = path.stem().string();
  if (stem.rfind("ckpt_", 0) != 0) return -1;
  try {
    return std::stoi(stem.substr(5));
  } catch (const std::exception&) {
    return -1;
  }
}

}  // namespace

std::vector<char> serialize_checkpoint(const SimCheckpoint& c) {
  std::vector<char> out;
  out.insert(out.end(), kMagic, kMagic + 4);
  util::append_pod(out, c.virtual_time_s);
  util::append_pod(out, c.round);
  util::append_pod(out, c.tasks_completed);
  util::append_pod(out, static_cast<std::uint64_t>(c.model_parameters.size()));
  util::append_pod_array(out, c.model_parameters.data(), c.model_parameters.size());
  return out;
}

SimCheckpoint deserialize_checkpoint(const std::vector<char>& bytes) {
  FLINT_CHECK_MSG(bytes.size() >= 4 && std::memcmp(bytes.data(), kMagic, 4) == 0,
                  "bad checkpoint magic");
  std::size_t offset = 4;
  SimCheckpoint c;
  c.virtual_time_s = util::read_pod<double>(bytes, offset);
  c.round = util::read_pod<std::uint64_t>(bytes, offset);
  c.tasks_completed = util::read_pod<std::uint64_t>(bytes, offset);
  auto n = util::read_pod<std::uint64_t>(bytes, offset);
  FLINT_CHECK_LE(offset + n * sizeof(float), bytes.size());
  c.model_parameters.resize(n);
  util::read_pod_array(bytes, offset, c.model_parameters.data(), c.model_parameters.size());
  FLINT_CHECK_FINITE(c.virtual_time_s);
  FLINT_CHECK_GE(c.virtual_time_s, 0.0);
  return c;
}

CheckpointStore::CheckpointStore(std::string dir) : dir_(std::move(dir)) {
  fs::create_directories(dir_);
  // Resume numbering after any existing checkpoints.
  for (const auto& entry : fs::directory_iterator(dir_)) {
    int seq = seq_of(entry.path());
    if (seq >= next_seq_) next_seq_ = seq + 1;
  }
}

int CheckpointStore::write(const SimCheckpoint& checkpoint) {
  // Cold, potentially multi-threaded path: use the per-call free functions
  // rather than cached handles (which are single-threaded by design).
  auto wall_start = std::chrono::steady_clock::now();
  int seq;
  {
    std::lock_guard<std::mutex> lock(seq_mutex_);
    seq = next_seq_++;
  }
  auto blob = serialize_checkpoint(checkpoint);
  fs::path final_path = fs::path(dir_) / ("ckpt_" + std::to_string(seq) + ".bin");
  fs::path tmp_path = fs::path(dir_) / ("ckpt_" + std::to_string(seq) + ".tmp");
  {
    std::ofstream out(tmp_path, std::ios::binary);
    FLINT_CHECK_MSG(out.good(), "cannot write " << tmp_path.string());
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  }
  fs::rename(tmp_path, final_path);  // atomic publish
  double wall_us = std::chrono::duration<double, std::micro>(
                       std::chrono::steady_clock::now() - wall_start)
                       .count();
  obs::record_histogram("store.checkpoint_write_us", wall_us, 0.0, 20'000.0, 40);
  obs::add_counter("store.checkpoint_bytes", blob.size());
  return seq;
}

std::optional<SimCheckpoint> CheckpointStore::latest() const {
  int best = -1;
  fs::path best_path;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (entry.path().extension() != ".bin") continue;
    int seq = seq_of(entry.path());
    if (seq > best) {
      best = seq;
      best_path = entry.path();
    }
  }
  if (best < 0) return std::nullopt;
  std::ifstream in(best_path, std::ios::binary);
  FLINT_CHECK_MSG(in.good(), "cannot read " << best_path.string());
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  return deserialize_checkpoint(bytes);
}

std::size_t CheckpointStore::checkpoint_count() const {
  std::size_t n = 0;
  for (const auto& entry : fs::directory_iterator(dir_))
    if (entry.path().extension() == ".bin" && seq_of(entry.path()) >= 0) ++n;
  return n;
}

void CheckpointStore::prune(std::size_t keep) {
  std::vector<std::pair<int, fs::path>> files;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (entry.path().extension() != ".bin") continue;
    int seq = seq_of(entry.path());
    if (seq >= 0) files.emplace_back(seq, entry.path());
  }
  std::sort(files.begin(), files.end());
  if (files.size() <= keep) return;
  for (std::size_t i = 0; i + keep < files.size(); ++i) fs::remove(files[i].second);
}

}  // namespace flint::store
