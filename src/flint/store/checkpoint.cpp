#include "flint/store/checkpoint.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "flint/util/check.h"

namespace flint::store {

namespace fs = std::filesystem;

namespace {

constexpr char kMagic[4] = {'F', 'C', 'K', 'P'};

int seq_of(const fs::path& path) {
  // "ckpt_<seq>.bin" -> seq, or -1 if the name doesn't match.
  std::string stem = path.stem().string();
  if (stem.rfind("ckpt_", 0) != 0) return -1;
  try {
    return std::stoi(stem.substr(5));
  } catch (const std::exception&) {
    return -1;
  }
}

}  // namespace

std::vector<char> serialize_checkpoint(const SimCheckpoint& c) {
  std::vector<char> out;
  out.insert(out.end(), kMagic, kMagic + 4);
  auto append = [&out](const void* p, std::size_t n) {
    const char* b = static_cast<const char*>(p);
    out.insert(out.end(), b, b + n);
  };
  append(&c.virtual_time_s, sizeof(c.virtual_time_s));
  append(&c.round, sizeof(c.round));
  append(&c.tasks_completed, sizeof(c.tasks_completed));
  std::uint64_t n = c.model_parameters.size();
  append(&n, sizeof(n));
  append(c.model_parameters.data(), n * sizeof(float));
  return out;
}

SimCheckpoint deserialize_checkpoint(const std::vector<char>& bytes) {
  FLINT_CHECK_MSG(bytes.size() >= 4 && std::memcmp(bytes.data(), kMagic, 4) == 0,
                  "bad checkpoint magic");
  std::size_t offset = 4;
  auto read = [&](void* p, std::size_t n) {
    FLINT_CHECK_MSG(offset + n <= bytes.size(), "truncated checkpoint");
    std::memcpy(p, bytes.data() + offset, n);
    offset += n;
  };
  SimCheckpoint c;
  read(&c.virtual_time_s, sizeof(c.virtual_time_s));
  read(&c.round, sizeof(c.round));
  read(&c.tasks_completed, sizeof(c.tasks_completed));
  std::uint64_t n = 0;
  read(&n, sizeof(n));
  c.model_parameters.resize(n);
  read(c.model_parameters.data(), n * sizeof(float));
  return c;
}

CheckpointStore::CheckpointStore(std::string dir) : dir_(std::move(dir)) {
  fs::create_directories(dir_);
  // Resume numbering after any existing checkpoints.
  for (const auto& entry : fs::directory_iterator(dir_)) {
    int seq = seq_of(entry.path());
    if (seq >= next_seq_) next_seq_ = seq + 1;
  }
}

int CheckpointStore::write(const SimCheckpoint& checkpoint) {
  int seq = next_seq_++;
  auto blob = serialize_checkpoint(checkpoint);
  fs::path final_path = fs::path(dir_) / ("ckpt_" + std::to_string(seq) + ".bin");
  fs::path tmp_path = fs::path(dir_) / ("ckpt_" + std::to_string(seq) + ".tmp");
  {
    std::ofstream out(tmp_path, std::ios::binary);
    FLINT_CHECK_MSG(out.good(), "cannot write " << tmp_path.string());
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  }
  fs::rename(tmp_path, final_path);  // atomic publish
  return seq;
}

std::optional<SimCheckpoint> CheckpointStore::latest() const {
  int best = -1;
  fs::path best_path;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (entry.path().extension() != ".bin") continue;
    int seq = seq_of(entry.path());
    if (seq > best) {
      best = seq;
      best_path = entry.path();
    }
  }
  if (best < 0) return std::nullopt;
  std::ifstream in(best_path, std::ios::binary);
  FLINT_CHECK_MSG(in.good(), "cannot read " << best_path.string());
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  return deserialize_checkpoint(bytes);
}

std::size_t CheckpointStore::checkpoint_count() const {
  std::size_t n = 0;
  for (const auto& entry : fs::directory_iterator(dir_))
    if (entry.path().extension() == ".bin" && seq_of(entry.path()) >= 0) ++n;
  return n;
}

void CheckpointStore::prune(std::size_t keep) {
  std::vector<std::pair<int, fs::path>> files;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (entry.path().extension() != ".bin") continue;
    int seq = seq_of(entry.path());
    if (seq >= 0) files.emplace_back(seq, entry.path());
  }
  std::sort(files.begin(), files.end());
  if (files.size() <= keep) return;
  for (std::size_t i = 0; i + keep < files.size(); ++i) fs::remove(files[i].second);
}

}  // namespace flint::store
