// Versioned model parameter store, shared by centralized and FL training
// ("the model store, which is shared by centralized training, can store and
// retrieve versioned parameters during FL training", §3.1).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace flint::store {

/// One stored model version.
struct ModelVersion {
  int version = 0;
  std::vector<float> parameters;
  std::string tag;               ///< free-form ("round-120", "centralized-v3")
  double created_at_virtual_s = 0.0;
};

/// In-memory versioned parameter store with optional directory persistence.
class ModelStore {
 public:
  /// Append a version under `name`; returns the assigned version number
  /// (1-based, monotonically increasing per name).
  int put(const std::string& name, std::vector<float> parameters, std::string tag = "",
          double virtual_time_s = 0.0);

  std::optional<ModelVersion> get(const std::string& name, int version) const;
  std::optional<ModelVersion> latest(const std::string& name) const;
  std::size_t version_count(const std::string& name) const;
  std::vector<std::string> names() const;

  /// Total parameter payload held, in bytes (capacity planning).
  std::uint64_t total_bytes() const;

  /// Persist every version as `<dir>/<name>.v<k>.bin`. Directory must exist.
  void save_to_dir(const std::string& dir) const;

  /// Load every *.bin under `dir` written by save_to_dir.
  static ModelStore load_from_dir(const std::string& dir);

 private:
  std::map<std::string, std::vector<ModelVersion>> models_;
};

/// Binary (de)serialization of one version; format:
/// magic "FLNT" | u32 version | u64 param_count | f32[] | u64 tag_len | tag
std::vector<char> serialize_model_version(const ModelVersion& v);
ModelVersion deserialize_model_version(const std::vector<char>& bytes);

}  // namespace flint::store
