// Simulation checkpointing: "the leader frequently checkpoints the virtual
// time and recent model weights to the pipeline storage, [so] any restarted
// leader and executor can resume from the checkpoints without losing more
// than one round of work" (§3.4).
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace flint::store {

/// The state a restarted leader needs to resume.
struct SimCheckpoint {
  double virtual_time_s = 0.0;
  std::uint64_t round = 0;               ///< completed aggregation rounds
  std::uint64_t tasks_completed = 0;
  std::vector<float> model_parameters;   ///< current global model
};

/// Durable checkpoint directory. Checkpoints are written atomically
/// (tmp + rename) and numbered monotonically; latest() returns the highest
/// complete one. write() is safe to call from multiple threads (parallel
/// executors checkpoint through one store); sequence numbers stay unique.
class CheckpointStore {
 public:
  /// Creates the directory if missing.
  explicit CheckpointStore(std::string dir);

  /// Write the next checkpoint; returns its sequence number.
  int write(const SimCheckpoint& checkpoint);

  /// Highest complete checkpoint, or nullopt when none exist.
  std::optional<SimCheckpoint> latest() const;

  /// Number of complete checkpoints on disk.
  std::size_t checkpoint_count() const;

  /// Delete all but the most recent `keep` checkpoints.
  void prune(std::size_t keep);

  const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
  std::mutex seq_mutex_;  ///< guards next_seq_ across writer threads
  int next_seq_ = 1;
};

std::vector<char> serialize_checkpoint(const SimCheckpoint& c);
SimCheckpoint deserialize_checkpoint(const std::vector<char>& bytes);

}  // namespace flint::store
