// Simulation checkpointing: "the leader frequently checkpoints the virtual
// time and recent model weights to the pipeline storage, [so] any restarted
// leader and executor can resume from the checkpoints without losing more
// than one round of work" (§3.4).
//
// A SimCheckpoint is a complete, self-contained snapshot of run state — not
// just the model. It carries everything a restarted runner needs to continue
// bit-identically: optimizer momentum, the server RNG stream, arrival-trace
// and requeue cursors, SimMetrics (task accounting, round records, eval
// curve), per-client ledger accounts, and for FedBuff the pending-update
// buffer plus every in-flight task with its staleness tag. The resume path
// lives in fl/run_common (DESIGN.md §12); this layer only defines the record
// and its durable encoding.
//
// On-disk format (version 2): a fixed header
//   "FCKP" | u32 version | u64 payload_size | u32 crc32(payload)
// followed by the payload. The CRC plus length make torn or bit-flipped
// files detectable before any field is trusted; deserialize_checkpoint
// throws CheckError on any mismatch, and CheckpointStore::latest() falls
// back to the newest checkpoint that does verify. The store layer sits
// below sim/, so the structs here mirror sim types (RoundRecord, EvalPoint,
// Arrival) without including them.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "flint/util/thread_annotations.h"

namespace flint::store {

/// Which runner wrote the checkpoint; resume refuses a mismatched algorithm.
inline constexpr std::uint8_t kCheckpointAlgoUnknown = 0;
inline constexpr std::uint8_t kCheckpointAlgoFedAvg = 1;
inline constexpr std::uint8_t kCheckpointAlgoFedBuff = 2;

/// A requeued arrival waiting in the scheduler's retry heap (a client whose
/// reparticipation gap pushed it past its original trace window entry).
struct CheckpointRequeuedArrival {
  double time = 0.0;
  std::uint64_t client_id = 0;
  std::uint64_t device_index = 0;
  double window_end = 0.0;
};

/// Mirror of sim::RoundRecord.
struct CheckpointRoundRecord {
  std::uint64_t round = 0;
  double start = 0.0;
  double end = 0.0;
  std::uint64_t updates_aggregated = 0;
  double mean_staleness = 0.0;
};

/// Mirror of sim::EvalPoint.
struct CheckpointEvalPoint {
  double time = 0.0;
  std::uint64_t round = 0;
  double metric = 0.0;
  double train_loss = 0.0;
};

/// Mirror of sim::CheckpointRecord (one prior checkpoint write, so a resumed
/// run's timeline still lists them).
struct CheckpointWriteRecord {
  std::uint64_t round = 0;
  double time = 0.0;
};

/// One client's ledger account (counters only; tier/cohort/executor labels
/// are re-derived from the trace at resume time by the attribution scope).
struct CheckpointClientAccount {
  std::uint64_t client_id = 0;
  std::uint64_t tasks_succeeded = 0;
  std::uint64_t tasks_interrupted = 0;
  std::uint64_t tasks_stale = 0;
  std::uint64_t tasks_failed = 0;
  double compute_s = 0.0;
  double wasted_compute_s = 0.0;
  std::uint64_t bytes_down = 0;
  std::uint64_t bytes_up = 0;
};

/// Full SimMetrics state.
struct CheckpointMetrics {
  std::uint64_t tasks_started = 0;
  std::uint64_t tasks_succeeded = 0;
  std::uint64_t tasks_interrupted = 0;
  std::uint64_t tasks_stale = 0;
  std::uint64_t tasks_failed = 0;
  std::uint64_t updates_aggregated = 0;
  double client_compute_s = 0.0;
  std::vector<CheckpointRoundRecord> rounds;
  std::vector<CheckpointWriteRecord> checkpoints;
};

/// One FedBuff task in flight at checkpoint time. The training result is
/// materialized into the record (delta + weight), so resume re-schedules the
/// completion event without re-running the worker; `stamp` preserves the
/// original event-queue scheduling order for tie-breaking.
struct CheckpointInFlightTask {
  std::uint64_t task_id = 0;
  std::uint64_t client_id = 0;
  std::uint64_t device_index = 0;
  std::uint64_t model_version = 0;  ///< staleness tag: version at dispatch
  double dispatch_time = 0.0;
  double compute_s = 0.0;
  double comm_s = 0.0;
  std::uint64_t examples = 0;
  std::uint64_t update_bytes = 0;
  double spent_compute_s = 0.0;
  double window_end = 0.0;
  double finish_time = 0.0;
  bool interrupted = false;  ///< fate decided at dispatch: ends early, no upload
  std::uint64_t stamp = 0;
  double update_weight = 0.0;
  std::vector<float> update_delta;
};

/// FedBuff runner state: the partially-filled aggregation buffer and the
/// async event-pump bookkeeping.
struct CheckpointFedBuff {
  std::vector<double> accumulator_sum;  ///< weighted update sum, model dim
  double accumulator_weight_sum = 0.0;
  std::uint64_t accumulator_count = 0;
  double staleness_sum = 0.0;  ///< staleness accumulated toward the next round
  double round_start = 0.0;
  double last_aggregation_time = 0.0;
  bool pump_scheduled = false;  ///< a dispatch-pump wakeup event was pending
  double pump_time = 0.0;
  std::uint64_t pump_stamp = 0;
  std::uint64_t next_stamp = 0;
  std::vector<CheckpointInFlightTask> in_flight;  ///< in task-id order
};

/// The state a restarted leader needs to resume.
struct SimCheckpoint {
  double virtual_time_s = 0.0;
  std::uint64_t round = 0;               ///< completed aggregation rounds
  std::uint64_t tasks_completed = 0;
  std::vector<float> model_parameters;   ///< current global model

  // Run identity and recovery lineage. Resume refuses a seed or algorithm
  // mismatch: a checkpoint only continues the exact run that wrote it.
  std::uint64_t run_seed = 0;
  std::uint8_t algo = kCheckpointAlgoUnknown;
  std::uint64_t resume_count = 0;        ///< resumes already in this lineage
  std::uint64_t checkpoints_written = 0;

  // Server-side training state. The LR schedule needs no extra state: it is
  // a pure function of `round`, which is restored above.
  std::vector<float> server_velocity;    ///< optimizer momentum (may be empty)
  std::string server_rng_state;          ///< util::Rng::serialize_state()
  std::uint64_t next_task_id = 0;

  // Scheduler/arrival position.
  std::uint64_t arrival_cursor = 0;      ///< trace windows already consumed
  std::vector<CheckpointRequeuedArrival> requeued;  ///< in pop order
  /// Last dispatch time per client (reparticipation gating), client-id order.
  std::vector<std::pair<std::uint64_t, double>> last_participation;

  // Accounting.
  CheckpointMetrics metrics;
  std::vector<CheckpointEvalPoint> eval_curve;
  std::vector<CheckpointClientAccount> client_accounts;  ///< client-id order

  // Async-runner section, present only for FedBuff checkpoints.
  bool has_fedbuff = false;
  CheckpointFedBuff fedbuff;
};

/// Durable checkpoint directory. Checkpoints are written atomically
/// (tmp + rename, with the stream verified before publish) and numbered
/// monotonically; latest() returns the newest checkpoint that deserializes
/// cleanly, skipping corrupt or truncated files with a warning. write() is
/// safe to call from multiple threads (parallel executors checkpoint through
/// one store); sequence numbers stay unique. Stale `.tmp` leftovers from a
/// crashed writer are swept at construction and never count toward
/// numbering.
class CheckpointStore {
 public:
  /// Creates the directory if missing.
  explicit CheckpointStore(std::string dir);

  /// Write the next checkpoint; returns its sequence number. Throws
  /// CheckError (and removes the partial file) if the write cannot be
  /// completed, e.g. on a full disk — a truncated checkpoint must never be
  /// published.
  std::int64_t write(const SimCheckpoint& checkpoint) FLINT_EXCLUDES(seq_mutex_);

  /// Newest checkpoint that passes integrity verification, or nullopt when
  /// none does. Unreadable or corrupt files are skipped with a warning.
  std::optional<SimCheckpoint> latest() const;

  /// Number of complete checkpoints on disk.
  std::size_t checkpoint_count() const;

  /// Delete all but the most recent `keep` checkpoints.
  void prune(std::size_t keep);

  const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
  util::Mutex seq_mutex_;  ///< guards next_seq_ across writer threads
  std::int64_t next_seq_ FLINT_GUARDED_BY(seq_mutex_) = 1;
};

std::vector<char> serialize_checkpoint(const SimCheckpoint& c);
SimCheckpoint deserialize_checkpoint(const std::vector<char>& bytes);

}  // namespace flint::store
