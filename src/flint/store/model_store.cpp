#include "flint/store/model_store.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "flint/util/bytes.h"
#include "flint/util/check.h"

namespace flint::store {

namespace {

constexpr char kMagic[4] = {'F', 'L', 'N', 'T'};

using util::append_pod;

template <typename T>
T read_pod(const std::vector<char>& in, std::size_t& offset) {
  FLINT_CHECK_MSG(offset + sizeof(T) <= in.size(), "truncated model version blob");
  return util::read_pod<T>(in, offset);
}

}  // namespace

int ModelStore::put(const std::string& name, std::vector<float> parameters, std::string tag,
                    double virtual_time_s) {
  FLINT_CHECK(!name.empty());
  auto& versions = models_[name];
  ModelVersion v;
  v.version = static_cast<int>(versions.size()) + 1;
  v.parameters = std::move(parameters);
  v.tag = std::move(tag);
  v.created_at_virtual_s = virtual_time_s;
  versions.push_back(std::move(v));
  return versions.back().version;
}

std::optional<ModelVersion> ModelStore::get(const std::string& name, int version) const {
  auto it = models_.find(name);
  if (it == models_.end()) return std::nullopt;
  if (version < 1 || static_cast<std::size_t>(version) > it->second.size()) return std::nullopt;
  return it->second[static_cast<std::size_t>(version) - 1];
}

std::optional<ModelVersion> ModelStore::latest(const std::string& name) const {
  auto it = models_.find(name);
  if (it == models_.end() || it->second.empty()) return std::nullopt;
  return it->second.back();
}

std::size_t ModelStore::version_count(const std::string& name) const {
  auto it = models_.find(name);
  return it == models_.end() ? 0 : it->second.size();
}

std::vector<std::string> ModelStore::names() const {
  std::vector<std::string> out;
  out.reserve(models_.size());
  for (const auto& [name, _] : models_) out.push_back(name);
  return out;
}

std::uint64_t ModelStore::total_bytes() const {
  std::uint64_t bytes = 0;
  for (const auto& [_, versions] : models_)
    for (const auto& v : versions) bytes += v.parameters.size() * sizeof(float);
  return bytes;
}

std::vector<char> serialize_model_version(const ModelVersion& v) {
  std::vector<char> out;
  out.insert(out.end(), kMagic, kMagic + 4);
  append_pod(out, static_cast<std::uint32_t>(v.version));
  append_pod(out, v.created_at_virtual_s);
  append_pod(out, static_cast<std::uint64_t>(v.parameters.size()));
  util::append_pod_array(out, v.parameters.data(), v.parameters.size());
  append_pod(out, static_cast<std::uint64_t>(v.tag.size()));
  out.insert(out.end(), v.tag.begin(), v.tag.end());
  return out;
}

ModelVersion deserialize_model_version(const std::vector<char>& bytes) {
  FLINT_CHECK_MSG(bytes.size() >= 4 && std::memcmp(bytes.data(), kMagic, 4) == 0,
                  "bad model version magic");
  std::size_t offset = 4;
  ModelVersion v;
  v.version = static_cast<int>(read_pod<std::uint32_t>(bytes, offset));
  v.created_at_virtual_s = read_pod<double>(bytes, offset);
  auto count = read_pod<std::uint64_t>(bytes, offset);
  FLINT_CHECK_MSG(offset + count * sizeof(float) <= bytes.size(), "truncated parameters");
  v.parameters.resize(count);
  util::read_pod_array(bytes, offset, v.parameters.data(), v.parameters.size());
  auto tag_len = read_pod<std::uint64_t>(bytes, offset);
  FLINT_CHECK_MSG(offset + tag_len <= bytes.size(), "truncated tag");
  v.tag.assign(bytes.data() + offset, tag_len);
  return v;
}

void ModelStore::save_to_dir(const std::string& dir) const {
  namespace fs = std::filesystem;
  FLINT_CHECK_MSG(fs::is_directory(dir), "model store dir does not exist: " << dir);
  for (const auto& [name, versions] : models_) {
    for (const auto& v : versions) {
      auto blob = serialize_model_version(v);
      fs::path path = fs::path(dir) / (name + ".v" + std::to_string(v.version) + ".bin");
      std::ofstream out(path, std::ios::binary);
      FLINT_CHECK_MSG(out.good(), "cannot write " << path.string());
      out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    }
  }
}

ModelStore ModelStore::load_from_dir(const std::string& dir) {
  namespace fs = std::filesystem;
  FLINT_CHECK_MSG(fs::is_directory(dir), "model store dir does not exist: " << dir);
  ModelStore store;
  // Collect (name, version, path), sort, then insert in version order so
  // put() re-assigns the same version numbers.
  std::vector<std::tuple<std::string, int, fs::path>> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() != ".bin") continue;
    std::string stem = entry.path().stem().string();  // "<name>.v<k>"
    auto pos = stem.rfind(".v");
    if (pos == std::string::npos) continue;
    std::string name = stem.substr(0, pos);
    int version = std::stoi(stem.substr(pos + 2));
    files.emplace_back(name, version, entry.path());
  }
  std::sort(files.begin(), files.end());
  for (const auto& [name, version, path] : files) {
    std::ifstream in(path, std::ios::binary);
    FLINT_CHECK_MSG(in.good(), "cannot read " << path.string());
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    ModelVersion v = deserialize_model_version(bytes);
    store.put(name, std::move(v.parameters), std::move(v.tag), v.created_at_virtual_s);
  }
  return store;
}

}  // namespace flint::store
