#include "flint/device/session_generator.h"

#include <algorithm>
#include <cmath>

#include "flint/util/stats.h"
#include "flint/util/check.h"

namespace flint::device {

double diurnal_weight(double hour, double overnight_floor) {
  // Two Gaussian bumps: a lunchtime bump at 12:30 and the dominant evening
  // peak at 20:00, over a small overnight floor. Hours wrap modulo 24.
  auto bump = [&](double center, double width, double height) {
    double d = std::abs(hour - center);
    d = std::min(d, 24.0 - d);  // circular distance
    return height * std::exp(-d * d / (2.0 * width * width));
  };
  return overnight_floor + bump(12.5, 2.0, 0.45) + bump(20.0, 2.5, 1.0);
}

double SessionLog::total_duration() const {
  double total = 0.0;
  for (const auto& s : sessions) total += s.duration();
  return total;
}

SessionLog generate_sessions(const SessionGeneratorConfig& config, const DeviceCatalog& catalog,
                             util::Rng& rng) {
  FLINT_CHECK(config.clients > 0);
  FLINT_CHECK(config.days > 0);
  FLINT_CHECK(config.timezone_offsets_h.size() == config.timezone_weights.size());
  FLINT_CHECK(!config.timezone_offsets_h.empty());

  // Precompute a 48-slot inverse-CDF of the diurnal shape for start times.
  constexpr std::size_t kSlots = 48;
  std::vector<double> slot_weights(kSlots);
  for (std::size_t s = 0; s < kSlots; ++s)
    slot_weights[s] = diurnal_weight(static_cast<double>(s) * 0.5, config.overnight_floor);

  auto duration_params =
      util::lognormal_from_moments(config.mean_session_s, config.mean_session_s * config.session_cv);

  SessionLog log;
  log.client_device.resize(config.clients);

  for (std::size_t c = 0; c < config.clients; ++c) {
    log.client_device[c] = catalog.sample_device(rng);
    double tz = config.timezone_offsets_h[rng.categorical(config.timezone_weights)];
    for (int day = 0; day < config.days; ++day) {
      int weekday = day % 7;
      bool weekend = weekday >= 5;
      double mean_sessions =
          config.sessions_per_day * (weekend ? config.weekend_factor : 1.0);
      auto n = static_cast<std::size_t>(rng.poisson(mean_sessions));
      for (std::size_t k = 0; k < n; ++k) {
        double local_hour =
            (static_cast<double>(rng.categorical(slot_weights)) + rng.uniform(0.0, 1.0)) * 0.5;
        double start =
            static_cast<double>(day) * kSecondsPerDay + (local_hour + tz) * kSecondsPerHour;
        double duration = std::max(10.0, rng.lognormal(duration_params.mu, duration_params.sigma));

        Session base;
        base.client_id = c;
        base.device_index = log.client_device[c];
        base.wifi = rng.bernoulli(config.wifi_probability);
        base.battery_pct = rng.bernoulli(config.high_battery_probability)
                               ? rng.uniform(80.0, 100.0)
                               : rng.uniform(10.0, 79.9);
        base.foreground = true;

        if (duration > 120.0 && rng.bernoulli(config.split_probability)) {
          // A long background gap splits the session into two (§4.1).
          double cut = rng.uniform(0.3, 0.7) * duration;
          double gap = rng.uniform(60.0, 600.0);
          Session first = base;
          first.start = start;
          first.end = start + cut;
          Session second = base;
          second.start = first.end + gap;
          second.end = second.start + (duration - cut);
          log.sessions.push_back(first);
          log.sessions.push_back(second);
        } else {
          base.start = start;
          base.end = start + duration;
          log.sessions.push_back(base);
        }
      }
    }
  }
  std::sort(log.sessions.begin(), log.sessions.end(),
            [](const Session& a, const Session& b) { return a.start < b.start; });
  return log;
}

}  // namespace flint::device
