#include "flint/device/session_generator.h"

#include <algorithm>
#include <cmath>

#include "flint/util/check.h"

namespace flint::device {

double diurnal_weight(double hour, double overnight_floor) {
  // Two Gaussian bumps: a lunchtime bump at 12:30 and the dominant evening
  // peak at 20:00, over a small overnight floor. Hours wrap modulo 24.
  auto bump = [&](double center, double width, double height) {
    double d = std::abs(hour - center);
    d = std::min(d, 24.0 - d);  // circular distance
    return height * std::exp(-d * d / (2.0 * width * width));
  };
  return overnight_floor + bump(12.5, 2.0, 0.45) + bump(20.0, 2.5, 1.0);
}

double SessionLog::total_duration() const {
  double total = 0.0;
  for (const auto& s : sessions) total += s.duration();
  return total;
}

bool session_order(const Session& a, const Session& b) {
  if (a.start != b.start) return a.start < b.start;
  if (a.client_id != b.client_id) return a.client_id < b.client_id;
  return a.end < b.end;
}

namespace {

/// Wrap a raw interval [raw_start, raw_start + duration) into the trace
/// horizon [0, H) and append it if at least one second survives. Starts wrap
/// circularly (matching diurnal_weight's modulo-24 local-time semantics, so
/// a tz = -8 client's 6pm session on "day 0" lands late on the last trace
/// day instead of before the epoch); ends truncate at the horizon rather
/// than wrapping, so no emitted session crosses the trace boundary.
void emit_wrapped(std::vector<Session>& out, Session base, double raw_start, double duration,
                  double horizon) {
  double start = std::fmod(raw_start, horizon);
  if (start < 0.0) start += horizon;
  // fmod of a tiny negative can round up to exactly `horizon`.
  if (start >= horizon) start = 0.0;
  double end = std::min(start + duration, horizon);
  if (end - start < 1.0) return;  // sub-second remnant: drop
  base.start = start;
  base.end = end;
  FLINT_CHECK_GE(base.start, 0.0);
  FLINT_CHECK_LT(base.start, horizon);
  FLINT_CHECK_LE(base.end, horizon);
  FLINT_CHECK_LT(base.start, base.end);
  out.push_back(base);
}

}  // namespace

SessionTraceSampler::SessionTraceSampler(const SessionGeneratorConfig& config,
                                         const DeviceCatalog& catalog, std::uint64_t trace_seed)
    : config_(config), catalog_(&catalog), trace_seed_(trace_seed) {
  FLINT_CHECK(config_.clients > 0);
  FLINT_CHECK(config_.days > 0);
  FLINT_CHECK(config_.timezone_offsets_h.size() == config_.timezone_weights.size());
  FLINT_CHECK(!config_.timezone_offsets_h.empty());

  // Precompute a 48-slot inverse-CDF of the diurnal shape for start times.
  constexpr std::size_t kSlots = 48;
  slot_weights_.resize(kSlots);
  for (std::size_t s = 0; s < kSlots; ++s)
    slot_weights_[s] = diurnal_weight(static_cast<double>(s) * 0.5, config_.overnight_floor);

  duration_params_ =
      util::lognormal_from_moments(config_.mean_session_s, config_.mean_session_s * config_.session_cv);
}

double SessionTraceSampler::horizon() const {
  return static_cast<double>(config_.days) * kSecondsPerDay;
}

ClientSessions SessionTraceSampler::client(std::uint64_t client_id) const {
  util::Rng rng = util::derive_stream(trace_seed_, kSessionTraceStreamId, client_id);
  const double h = horizon();

  ClientSessions out;
  out.device_index = catalog_->sample_device(rng);
  double tz = config_.timezone_offsets_h[rng.categorical(config_.timezone_weights)];
  for (int day = 0; day < config_.days; ++day) {
    int weekday = day % 7;
    bool weekend = weekday >= 5;
    double mean_sessions = config_.sessions_per_day * (weekend ? config_.weekend_factor : 1.0);
    auto n = static_cast<std::size_t>(rng.poisson(mean_sessions));
    for (std::size_t k = 0; k < n; ++k) {
      double local_hour =
          (static_cast<double>(rng.categorical(slot_weights_)) + rng.uniform(0.0, 1.0)) * 0.5;
      double start =
          static_cast<double>(day) * kSecondsPerDay + (local_hour + tz) * kSecondsPerHour;
      double duration = std::max(10.0, rng.lognormal(duration_params_.mu, duration_params_.sigma));

      Session base;
      base.client_id = client_id;
      base.device_index = out.device_index;
      base.wifi = rng.bernoulli(config_.wifi_probability);
      base.battery_pct = rng.bernoulli(config_.high_battery_probability)
                             ? rng.uniform(80.0, 100.0)
                             : rng.uniform(10.0, 79.9);
      base.foreground = true;

      if (duration > 120.0 && rng.bernoulli(config_.split_probability)) {
        // A long background gap splits the session into two (§4.1).
        double cut = rng.uniform(0.3, 0.7) * duration;
        double gap = rng.uniform(60.0, 600.0);
        emit_wrapped(out.sessions, base, start, cut, h);
        emit_wrapped(out.sessions, base, start + cut + gap, duration - cut, h);
      } else {
        emit_wrapped(out.sessions, base, start, duration, h);
      }
    }
  }
  std::sort(out.sessions.begin(), out.sessions.end(), session_order);
  return out;
}

SessionLog generate_sessions(const SessionGeneratorConfig& config, const DeviceCatalog& catalog,
                             util::Rng& rng) {
  // One draw from the caller's rng seeds the whole trace; every client then
  // generates from its own derived substream (see kSessionTraceStreamId).
  SessionTraceSampler sampler(config, catalog, rng.next_u64());

  SessionLog log;
  log.client_device.resize(config.clients);
  for (std::size_t c = 0; c < config.clients; ++c) {
    ClientSessions cs = sampler.client(c);
    log.client_device[c] = cs.device_index;
    log.sessions.insert(log.sessions.end(), cs.sessions.begin(), cs.sessions.end());
  }
  std::sort(log.sessions.begin(), log.sessions.end(), session_order);
  return log;
}

}  // namespace flint::device
