// Device availability: participation criteria applied to session logs, and
// the resulting availability traces the simulator's client selection uses
// (paper §3.2 "User Device Availability" and Table 1).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "flint/device/device_catalog.h"
#include "flint/device/session_generator.h"
#include "flint/util/histogram.h"

namespace flint::device {

/// Participation criteria, matching the paper's three categories:
/// device state (WiFi, battery, foreground), compute capability (allowed
/// devices / OS version), and user attributes (min account reputation here
/// stands in for the reputation/age attributes the paper mentions).
struct AvailabilityCriteria {
  bool require_wifi = false;
  double min_battery_pct = 0.0;
  bool require_foreground = false;
  /// Minimum OS release as year*100+month; 0 disables the check.
  int min_os_release = 0;
  /// If non-empty, only these catalog device indices are compute-eligible.
  std::vector<std::size_t> allowed_devices;
  /// Minimum session length worth scheduling work in (seconds).
  double min_session_s = 0.0;

  bool accepts(const Session& session, const DeviceCatalog& catalog) const;
};

/// One availability window: the device can run FL work in [start, end).
struct AvailabilityWindow {
  std::uint64_t client_id = 0;
  std::size_t device_index = 0;
  TraceTime start = 0.0;
  TraceTime end = 0.0;

  TraceTime duration() const { return end - start; }
};

/// Availability trace: criteria-passing windows sorted by start time, plus
/// per-client window indices for membership queries.
class AvailabilityTrace {
 public:
  AvailabilityTrace() = default;
  explicit AvailabilityTrace(std::vector<AvailabilityWindow> windows);

  const std::vector<AvailabilityWindow>& windows() const { return windows_; }
  std::size_t window_count() const { return windows_.size(); }

  /// Distinct clients with at least one window.
  std::size_t client_count() const;

  /// Is `client` available during the whole of [t, t+duration)?
  bool is_available(std::uint64_t client, TraceTime t, TraceTime duration) const;

  /// The window covering time t for this client, if any.
  std::optional<AvailabilityWindow> window_at(std::uint64_t client, TraceTime t) const;

  /// End of the observation period (max window end; 0 when empty).
  TraceTime horizon() const;

  /// Hourly count of available devices across the trace (Figure 2's series).
  util::Histogram hourly_availability() const;

  /// Peak-to-trough ratio of the hourly availability curve, ignoring empty
  /// leading/trailing bins. The paper reports ~14x for its strict criteria.
  double peak_to_trough_ratio() const;

 private:
  std::vector<AvailabilityWindow> windows_;
  // client -> indices into windows_, each sorted by start.
  std::vector<std::vector<std::size_t>> by_client_;
};

/// Apply criteria to a session log, producing the availability trace.
AvailabilityTrace build_availability(const SessionLog& log, const AvailabilityCriteria& criteria,
                                     const DeviceCatalog& catalog);

/// Duration-weighted fraction of session time that passes the criteria
/// (the Table 1 "devices available" percentages).
double criteria_pass_fraction(const SessionLog& log, const AvailabilityCriteria& criteria,
                              const DeviceCatalog& catalog);

}  // namespace flint::device
