// Device availability: participation criteria applied to session logs, and
// the resulting availability traces the simulator's client selection uses
// (paper §3.2 "User Device Availability" and Table 1).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "flint/device/device_catalog.h"
#include "flint/device/session_generator.h"
#include "flint/util/histogram.h"

namespace flint::device {

/// Participation criteria, matching the paper's three categories:
/// device state (WiFi, battery, foreground), compute capability (allowed
/// devices / OS version), and user attributes (min account reputation here
/// stands in for the reputation/age attributes the paper mentions).
struct AvailabilityCriteria {
  bool require_wifi = false;
  double min_battery_pct = 0.0;
  bool require_foreground = false;
  /// Minimum OS release as year*100+month; 0 disables the check.
  int min_os_release = 0;
  /// If non-empty, only these catalog device indices are compute-eligible.
  std::vector<std::size_t> allowed_devices;
  /// Minimum session length worth scheduling work in (seconds).
  double min_session_s = 0.0;

  bool accepts(const Session& session, const DeviceCatalog& catalog) const;
};

/// One availability window: the device can run FL work in [start, end).
struct AvailabilityWindow {
  std::uint64_t client_id = 0;
  std::size_t device_index = 0;
  TraceTime start = 0.0;
  TraceTime end = 0.0;

  TraceTime duration() const { return end - start; }
};

/// Canonical window ordering, mirroring session_order: (start, client_id,
/// end). The deterministic tie-break keeps materialized traces and streamed
/// windows in the same total order across standard libraries.
bool window_order(const AvailabilityWindow& a, const AvailabilityWindow& b);

/// Availability trace: criteria-passing windows sorted by start time, plus
/// per-client window indices for membership queries.
class AvailabilityTrace {
 public:
  AvailabilityTrace() = default;
  explicit AvailabilityTrace(std::vector<AvailabilityWindow> windows);

  const std::vector<AvailabilityWindow>& windows() const { return windows_; }
  std::size_t window_count() const { return windows_.size(); }

  /// Distinct clients with at least one window.
  std::size_t client_count() const;

  /// Is `client` available during the whole of [t, t+duration)?
  bool is_available(std::uint64_t client, TraceTime t, TraceTime duration) const;

  /// The window covering time t for this client, if any.
  std::optional<AvailabilityWindow> window_at(std::uint64_t client, TraceTime t) const;

  /// End of the observation period (max window end; 0 when empty).
  TraceTime horizon() const;

  /// Hourly count of available devices across the trace (Figure 2's series).
  util::Histogram hourly_availability() const;

  /// Peak-to-trough ratio of the hourly availability curve, ignoring empty
  /// leading/trailing bins. The paper reports ~14x for its strict criteria.
  double peak_to_trough_ratio() const;

 private:
  std::vector<AvailabilityWindow> windows_;
  // CSR layout of client -> indices into windows_ (each run sorted by
  // start): client c's window indices are by_client_indices_[i] for i in
  // [by_client_offsets_[c], by_client_offsets_[c+1]). One flat allocation
  // instead of a vector-of-vectors keeps per-client overhead to 8 bytes at
  // million-client populations.
  std::vector<std::size_t> by_client_offsets_;
  std::vector<std::size_t> by_client_indices_;
};

class SessionStream;  // session_stream.h

/// A lazily-produced, exhaust-once sequence of availability windows,
/// non-decreasing in window_order. The streaming counterpart of
/// AvailabilityTrace::windows(): schedulers that consume one of these never
/// materialize the population's windows.
class WindowStream {
 public:
  virtual ~WindowStream() = default;

  /// The next window, or nullopt when the trace is exhausted.
  virtual std::optional<AvailabilityWindow> next() = 0;
};

/// Streams an already-built AvailabilityTrace (the loopback used by the
/// streaming-vs-materialized equivalence tests).
class TraceWindowStream : public WindowStream {
 public:
  explicit TraceWindowStream(const AvailabilityTrace& trace) : trace_(&trace) {}

  std::optional<AvailabilityWindow> next() override;

 private:
  const AvailabilityTrace* trace_;
  std::size_t cursor_ = 0;
};

/// Applies participation criteria to a SessionStream on the fly — the
/// streaming build_availability. Checks every emitted window is finite,
/// non-empty, and non-decreasing in start (the stream contract schedulers
/// rely on).
class SessionWindowStream : public WindowStream {
 public:
  SessionWindowStream(SessionStream& sessions, const AvailabilityCriteria& criteria,
                      const DeviceCatalog& catalog)
      : sessions_(&sessions), criteria_(&criteria), catalog_(&catalog) {}

  std::optional<AvailabilityWindow> next() override;

 private:
  SessionStream* sessions_;
  const AvailabilityCriteria* criteria_;
  const DeviceCatalog* catalog_;
  TraceTime last_start_ = 0.0;
};

/// Apply criteria to a session log, producing the availability trace.
AvailabilityTrace build_availability(const SessionLog& log, const AvailabilityCriteria& criteria,
                                     const DeviceCatalog& catalog);

/// Duration-weighted fraction of session time that passes the criteria
/// (the Table 1 "devices available" percentages).
double criteria_pass_fraction(const SessionLog& log, const AvailabilityCriteria& criteria,
                              const DeviceCatalog& catalog);

}  // namespace flint::device
