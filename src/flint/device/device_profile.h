// Device hardware profiles. The paper benchmarks on 27 physical devices via
// AWS Device Farm; FLINT's reproduction models each device as a profile with
// a relative speed multiplier (1.0 = fleet mean), a CPU-utilization
// multiplier, and a task-affinity axis that captures the paper's observation
// that "devices optimized for one task might be worse for another" (Figure 4).
#pragma once

#include <cstdint>
#include <string>

namespace flint::device {

enum class Os { kIos, kAndroid };

inline const char* os_name(Os os) { return os == Os::kIos ? "iOS" : "Android"; }

/// One device model in the catalog.
struct DeviceProfile {
  std::string name;
  Os os = Os::kAndroid;
  /// Relative training-time multiplier; the catalog normalizes the fleet's
  /// unweighted mean to 1.0 so zoo base times are fleet means.
  double speed_multiplier = 1.0;
  /// Relative max-CPU-% multiplier.
  double cpu_multiplier = 1.0;
  /// Physical memory, MB.
  double memory_mb = 4096;
  /// Affinity in [-1, 1]: positive devices are relatively better at
  /// memory-bound (embedding-heavy) tasks, negative at compute-bound ones.
  double memory_affinity = 0.0;
  /// Share weight in the user base (Figure 1's model distribution).
  double popularity = 1.0;
  /// OS version date the device typically runs, as year*100+month
  /// (e.g. 201909 = Sept 2019). Availability criterion C filters on this.
  int os_release = 202001;
};

}  // namespace flint::device
