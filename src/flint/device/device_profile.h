// Device hardware profiles. The paper benchmarks on 27 physical devices via
// AWS Device Farm; FLINT's reproduction models each device as a profile with
// a relative speed multiplier (1.0 = fleet mean), a CPU-utilization
// multiplier, and a task-affinity axis that captures the paper's observation
// that "devices optimized for one task might be worse for another" (Figure 4).
#pragma once

#include <cstdint>
#include <string>

namespace flint::device {

enum class Os { kIos, kAndroid };

inline const char* os_name(Os os) { return os == Os::kIos ? "iOS" : "Android"; }

/// Hardware tiers by relative speed (the catalog's heterogeneity axis).
/// Lives here (not in core/fairness) so the FL runners and the client ledger
/// can attribute work by tier without depending on the core layer.
enum class DeviceTier { kHighEnd, kMidRange, kLowEnd };

inline const char* tier_name(DeviceTier tier) {
  switch (tier) {
    case DeviceTier::kHighEnd: return "high-end";
    case DeviceTier::kMidRange: return "mid-range";
    case DeviceTier::kLowEnd: return "low-end";
  }
  return "?";
}

/// One device model in the catalog.
struct DeviceProfile {
  std::string name;
  Os os = Os::kAndroid;
  /// Relative training-time multiplier; the catalog normalizes the fleet's
  /// unweighted mean to 1.0 so zoo base times are fleet means.
  double speed_multiplier = 1.0;
  /// Relative max-CPU-% multiplier.
  double cpu_multiplier = 1.0;
  /// Physical memory, MB.
  double memory_mb = 4096;
  /// Affinity in [-1, 1]: positive devices are relatively better at
  /// memory-bound (embedding-heavy) tasks, negative at compute-bound ones.
  double memory_affinity = 0.0;
  /// Share weight in the user base (Figure 1's model distribution).
  double popularity = 1.0;
  /// OS version date the device typically runs, as year*100+month
  /// (e.g. 201909 = Sept 2019). Availability criterion C filters on this.
  int os_release = 202001;
};

/// Tier of a device: high-end < 0.7x fleet-mean time, low-end > 1.5x.
inline DeviceTier tier_of(const DeviceProfile& profile) {
  if (profile.speed_multiplier < 0.7) return DeviceTier::kHighEnd;
  if (profile.speed_multiplier > 1.5) return DeviceTier::kLowEnd;
  return DeviceTier::kMidRange;
}

}  // namespace flint::device
