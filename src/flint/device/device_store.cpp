#include "flint/device/device_store.h"

#include "flint/util/check.h"

namespace flint::device {

std::uint64_t example_bytes(const ml::Example& example) {
  // Payload bytes: dense floats + token ids + labels + group. Container
  // overhead is deliberately excluded — the budget models serialized
  // storage, not process memory.
  return example.dense.size() * sizeof(float) +
         example.tokens.size() * sizeof(std::int32_t) + 2 * sizeof(float) +
         sizeof(std::int32_t);
}

DeviceExampleStore::DeviceExampleStore(const DeviceStoreConfig& config) : config_(config) {
  FLINT_CHECK(config.max_bytes > 0);
  FLINT_CHECK(config.max_age_s > 0.0);
  FLINT_CHECK(config.max_examples > 0);
}

void DeviceExampleStore::evict_oldest() {
  FLINT_DCHECK(!entries_.empty());
  stats_.bytes_used -= entries_.front().bytes;
  ++stats_.evicted_space;
  entries_.pop_front();
}

void DeviceExampleStore::log_example(ml::Example example, TraceTime now) {
  FLINT_CHECK_MSG(now >= last_logged_, "device store requires time-ordered logging");
  last_logged_ = now;
  Entry entry;
  entry.bytes = example_bytes(example);
  entry.example = std::move(example);
  entry.logged_at = now;
  if (entry.bytes > config_.max_bytes) return;  // can never fit

  gc(now);
  while (!entries_.empty() &&
         (stats_.bytes_used + entry.bytes > config_.max_bytes ||
          entries_.size() + 1 > config_.max_examples)) {
    evict_oldest();
  }
  stats_.bytes_used += entry.bytes;
  ++stats_.logged;
  entries_.push_back(std::move(entry));
}

void DeviceExampleStore::gc(TraceTime now) {
  while (!entries_.empty() && now - entries_.front().logged_at > config_.max_age_s) {
    stats_.bytes_used -= entries_.front().bytes;
    ++stats_.expired;
    entries_.pop_front();
  }
}

std::vector<ml::Example> DeviceExampleStore::training_view(TraceTime now) const {
  std::vector<ml::Example> out;
  out.reserve(entries_.size());
  for (const auto& entry : entries_) {
    if (now - entry.logged_at > config_.max_age_s) continue;
    out.push_back(entry.example);
  }
  return out;
}

}  // namespace flint::device
