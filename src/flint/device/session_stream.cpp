#include "flint/device/session_stream.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <queue>
#include <vector>

#include "flint/device/session_io.h"
#include "flint/util/check.h"

namespace flint::device {

MaterializedSessionStream::MaterializedSessionStream(SessionLog log, double horizon)
    : log_(std::move(log)), horizon_(horizon) {
  FLINT_CHECK(std::is_sorted(log_.sessions.begin(), log_.sessions.end(), session_order));
}

std::optional<Session> MaterializedSessionStream::next() {
  if (cursor_ == log_.sessions.size()) return std::nullopt;
  return log_.sessions[cursor_++];
}

namespace {

/// Large-population path: generate clients in chunks, spill each chunk
/// (sorted by session_order) to a binary file, then merge the chunk heads
/// through a k-way heap. Peak RSS is one chunk's sessions during generation
/// and k read buffers during the merge — independent of total clients.
class ChunkedSpillSessionStream : public SessionStream {
 public:
  ChunkedSpillSessionStream(const SessionStreamConfig& config, const DeviceCatalog& catalog,
                            std::uint64_t trace_seed)
      : sampler_(config.generator, catalog, trace_seed), clients_(config.generator.clients) {
    namespace fs = std::filesystem;
    static std::atomic<std::uint64_t> dir_counter{0};
    fs::path base = config.spill_dir.empty() ? fs::temp_directory_path() : fs::path(config.spill_dir);
    spill_dir_ = base / ("flint-sessions-" + std::to_string(::getpid()) + "-" +
                         std::to_string(dir_counter.fetch_add(1)));
    fs::create_directories(spill_dir_);

    const std::size_t per_chunk = std::max<std::size_t>(1, config.clients_per_chunk);
    std::vector<Session> chunk;
    for (std::size_t begin = 0; begin < clients_; begin += per_chunk) {
      std::size_t end = std::min(clients_, begin + per_chunk);
      chunk.clear();
      for (std::size_t c = begin; c < end; ++c) {
        ClientSessions cs = sampler_.client(c);
        chunk.insert(chunk.end(), cs.sessions.begin(), cs.sessions.end());
      }
      std::sort(chunk.begin(), chunk.end(), session_order);
      std::string path = (spill_dir_ / ("chunk-" + std::to_string(paths_.size()) + ".bin")).string();
      SessionChunkWriter writer(path);
      for (const auto& s : chunk) writer.add(s);
      writer.finish();
      paths_.push_back(path);
    }

    // Cap total read-back memory, not per-reader memory: with k chunks each
    // reader gets budget/k sessions (floor 64), so the merge working set
    // stays O(read_buffer_sessions) however large the population — growing
    // the population only shrinks each reader's buffer.
    const std::size_t per_reader = std::max<std::size_t>(
        64, config.read_buffer_sessions / std::max<std::size_t>(1, paths_.size()));
    for (std::size_t i = 0; i < paths_.size(); ++i) {
      readers_.push_back(std::make_unique<SessionChunkReader>(paths_[i], per_reader));
      if (auto s = readers_.back()->next()) heap_.push(MergeEntry{*s, i});
    }
  }

  ~ChunkedSpillSessionStream() override {
    std::error_code ec;  // best-effort cleanup; never throw from a destructor
    readers_.clear();
    std::filesystem::remove_all(spill_dir_, ec);
  }

  std::optional<Session> next() override {
    if (heap_.empty()) return std::nullopt;
    MergeEntry top = heap_.top();
    heap_.pop();
    if (auto s = readers_[top.chunk]->next()) heap_.push(MergeEntry{*s, top.chunk});
    return top.s;
  }

  std::size_t clients() const override { return clients_; }
  double horizon() const override { return sampler_.horizon(); }

 private:
  struct MergeEntry {
    Session s;
    std::size_t chunk;
  };
  /// priority_queue is a max-heap; "after" ordering puts the session_order
  /// minimum on top, with the chunk index as a deterministic final tie-break.
  struct MergeAfter {
    bool operator()(const MergeEntry& a, const MergeEntry& b) const {
      if (session_order(a.s, b.s)) return false;
      if (session_order(b.s, a.s)) return true;
      return a.chunk > b.chunk;
    }
  };

  SessionTraceSampler sampler_;
  std::size_t clients_;
  std::filesystem::path spill_dir_;
  std::vector<std::string> paths_;
  std::vector<std::unique_ptr<SessionChunkReader>> readers_;
  std::priority_queue<MergeEntry, std::vector<MergeEntry>, MergeAfter> heap_;
};

}  // namespace

std::unique_ptr<SessionStream> make_session_stream(const SessionStreamConfig& config,
                                                   const DeviceCatalog& catalog, util::Rng& rng) {
  // Mirror generate_sessions exactly: one rng draw seeds the trace, then all
  // per-client randomness comes from derived substreams. Equal rng states
  // therefore give equal traces on either path.
  std::uint64_t trace_seed = rng.next_u64();
  const std::size_t clients = config.generator.clients;
  if (clients > config.clients_per_chunk)
    return std::make_unique<ChunkedSpillSessionStream>(config, catalog, trace_seed);

  SessionTraceSampler sampler(config.generator, catalog, trace_seed);
  SessionLog log;
  log.client_device.resize(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    ClientSessions cs = sampler.client(c);
    log.client_device[c] = cs.device_index;
    log.sessions.insert(log.sessions.end(), cs.sessions.begin(), cs.sessions.end());
  }
  std::sort(log.sessions.begin(), log.sessions.end(), session_order);
  return std::make_unique<MaterializedSessionStream>(std::move(log), sampler.horizon());
}

}  // namespace flint::device
