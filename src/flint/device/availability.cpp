#include "flint/device/availability.h"

#include <algorithm>
#include <cmath>

#include "flint/util/check.h"

namespace flint::device {

bool AvailabilityCriteria::accepts(const Session& session, const DeviceCatalog& catalog) const {
  if (require_wifi && !session.wifi) return false;
  if (session.battery_pct < min_battery_pct) return false;
  if (require_foreground && !session.foreground) return false;
  if (session.duration() < min_session_s) return false;
  const DeviceProfile& dev = catalog.profile(session.device_index);
  if (min_os_release > 0 && dev.os_release < min_os_release) return false;
  if (!allowed_devices.empty() &&
      std::find(allowed_devices.begin(), allowed_devices.end(), session.device_index) ==
          allowed_devices.end())
    return false;
  return true;
}

AvailabilityTrace::AvailabilityTrace(std::vector<AvailabilityWindow> windows)
    : windows_(std::move(windows)) {
  // Windows come from session logs / generators (config-derived data): every
  // downstream scheduler invariant assumes finite, non-empty windows.
  for (const auto& w : windows_) {
    FLINT_CHECK_FINITE(w.start);
    FLINT_CHECK_FINITE(w.end);
    FLINT_CHECK_LT(w.start, w.end);
  }
  std::sort(windows_.begin(), windows_.end(),
            [](const AvailabilityWindow& a, const AvailabilityWindow& b) {
              return a.start < b.start;
            });
  std::uint64_t max_client = 0;
  for (const auto& w : windows_) max_client = std::max(max_client, w.client_id);
  if (!windows_.empty()) by_client_.resize(max_client + 1);
  for (std::size_t i = 0; i < windows_.size(); ++i)
    by_client_[windows_[i].client_id].push_back(i);
}

std::size_t AvailabilityTrace::client_count() const {
  std::size_t n = 0;
  for (const auto& v : by_client_)
    if (!v.empty()) ++n;
  return n;
}

std::optional<AvailabilityWindow> AvailabilityTrace::window_at(std::uint64_t client,
                                                               TraceTime t) const {
  if (client >= by_client_.size()) return std::nullopt;
  for (std::size_t idx : by_client_[client]) {
    const auto& w = windows_[idx];
    if (w.start > t) break;  // indices are sorted by start
    if (t < w.end) return w;
  }
  return std::nullopt;
}

bool AvailabilityTrace::is_available(std::uint64_t client, TraceTime t,
                                     TraceTime duration) const {
  auto w = window_at(client, t);
  return w.has_value() && t + duration <= w->end;
}

TraceTime AvailabilityTrace::horizon() const {
  TraceTime h = 0.0;
  for (const auto& w : windows_) h = std::max(h, w.end);
  return h;
}

util::Histogram AvailabilityTrace::hourly_availability() const {
  double h = std::max(horizon(), kSecondsPerHour);
  auto bins = static_cast<std::size_t>(std::ceil(h / kSecondsPerHour));
  util::Histogram hist(0.0, static_cast<double>(bins) * kSecondsPerHour, bins);
  for (const auto& w : windows_) {
    // Credit each hour bin the window overlaps, weighted by overlap fraction
    // so short windows don't over-count.
    auto first = static_cast<std::size_t>(w.start / kSecondsPerHour);
    auto last = static_cast<std::size_t>((w.end - 1e-9) / kSecondsPerHour);
    for (std::size_t b = first; b <= last && b < bins; ++b) {
      double bin_start = static_cast<double>(b) * kSecondsPerHour;
      double overlap = std::min(w.end, bin_start + kSecondsPerHour) - std::max(w.start, bin_start);
      if (overlap > 0.0)
        hist.add(bin_start + kSecondsPerHour / 2.0, overlap / kSecondsPerHour);
    }
  }
  return hist;
}

double AvailabilityTrace::peak_to_trough_ratio() const {
  util::Histogram hist = hourly_availability();
  double peak = 0.0;
  double trough = std::numeric_limits<double>::infinity();
  bool seen = false;
  // Ignore the first and last 12h, which are edge-truncated.
  std::size_t skip = std::min<std::size_t>(12, hist.bin_count() / 4);
  for (std::size_t i = skip; i + skip < hist.bin_count(); ++i) {
    double c = hist.count(i);
    peak = std::max(peak, c);
    trough = std::min(trough, c);
    seen = true;
  }
  if (!seen || trough <= 0.0) return peak > 0.0 ? std::numeric_limits<double>::infinity() : 1.0;
  return peak / trough;
}

AvailabilityTrace build_availability(const SessionLog& log, const AvailabilityCriteria& criteria,
                                     const DeviceCatalog& catalog) {
  std::vector<AvailabilityWindow> windows;
  windows.reserve(log.sessions.size());
  for (const auto& s : log.sessions) {
    if (!criteria.accepts(s, catalog)) continue;
    windows.push_back({s.client_id, s.device_index, s.start, s.end});
  }
  return AvailabilityTrace(std::move(windows));
}

double criteria_pass_fraction(const SessionLog& log, const AvailabilityCriteria& criteria,
                              const DeviceCatalog& catalog) {
  double pass = 0.0, total = 0.0;
  for (const auto& s : log.sessions) {
    total += s.duration();
    if (criteria.accepts(s, catalog)) pass += s.duration();
  }
  FLINT_CHECK_MSG(total > 0.0, "empty session log");
  return pass / total;
}

}  // namespace flint::device
