#include "flint/device/availability.h"

#include <algorithm>
#include <cmath>

#include "flint/device/session_stream.h"
#include "flint/util/check.h"

namespace flint::device {

bool AvailabilityCriteria::accepts(const Session& session, const DeviceCatalog& catalog) const {
  if (require_wifi && !session.wifi) return false;
  if (session.battery_pct < min_battery_pct) return false;
  if (require_foreground && !session.foreground) return false;
  if (session.duration() < min_session_s) return false;
  const DeviceProfile& dev = catalog.profile(session.device_index);
  if (min_os_release > 0 && dev.os_release < min_os_release) return false;
  if (!allowed_devices.empty() &&
      std::find(allowed_devices.begin(), allowed_devices.end(), session.device_index) ==
          allowed_devices.end())
    return false;
  return true;
}

bool window_order(const AvailabilityWindow& a, const AvailabilityWindow& b) {
  if (a.start != b.start) return a.start < b.start;
  if (a.client_id != b.client_id) return a.client_id < b.client_id;
  return a.end < b.end;
}

AvailabilityTrace::AvailabilityTrace(std::vector<AvailabilityWindow> windows)
    : windows_(std::move(windows)) {
  // Windows come from session logs / generators (config-derived data): every
  // downstream scheduler invariant assumes finite, non-empty windows.
  for (const auto& w : windows_) {
    FLINT_CHECK_FINITE(w.start);
    FLINT_CHECK_FINITE(w.end);
    FLINT_CHECK_LT(w.start, w.end);
  }
  std::sort(windows_.begin(), windows_.end(), window_order);
  // Counting-sort construction of the CSR client index: count windows per
  // client, prefix-sum into offsets, then scatter window indices. Scanning
  // windows_ in sorted order keeps each client's run sorted by start.
  std::uint64_t max_client = 0;
  for (const auto& w : windows_) max_client = std::max(max_client, w.client_id);
  std::size_t clients = windows_.empty() ? 0 : static_cast<std::size_t>(max_client) + 1;
  by_client_offsets_.assign(clients + 1, 0);
  for (const auto& w : windows_) ++by_client_offsets_[w.client_id + 1];
  for (std::size_t c = 1; c <= clients; ++c) by_client_offsets_[c] += by_client_offsets_[c - 1];
  by_client_indices_.resize(windows_.size());
  std::vector<std::size_t> fill(by_client_offsets_.begin(), by_client_offsets_.end() - 1);
  for (std::size_t i = 0; i < windows_.size(); ++i)
    by_client_indices_[fill[windows_[i].client_id]++] = i;
}

std::size_t AvailabilityTrace::client_count() const {
  std::size_t n = 0;
  for (std::size_t c = 0; c + 1 < by_client_offsets_.size(); ++c)
    if (by_client_offsets_[c + 1] > by_client_offsets_[c]) ++n;
  return n;
}

std::optional<AvailabilityWindow> AvailabilityTrace::window_at(std::uint64_t client,
                                                               TraceTime t) const {
  if (client + 1 >= by_client_offsets_.size()) return std::nullopt;
  for (std::size_t i = by_client_offsets_[client]; i < by_client_offsets_[client + 1]; ++i) {
    const auto& w = windows_[by_client_indices_[i]];
    if (w.start > t) break;  // indices are sorted by start
    if (t < w.end) return w;
  }
  return std::nullopt;
}

bool AvailabilityTrace::is_available(std::uint64_t client, TraceTime t,
                                     TraceTime duration) const {
  auto w = window_at(client, t);
  return w.has_value() && t + duration <= w->end;
}

TraceTime AvailabilityTrace::horizon() const {
  TraceTime h = 0.0;
  for (const auto& w : windows_) h = std::max(h, w.end);
  return h;
}

util::Histogram AvailabilityTrace::hourly_availability() const {
  double h = std::max(horizon(), kSecondsPerHour);
  auto bins = static_cast<std::size_t>(std::ceil(h / kSecondsPerHour));
  util::Histogram hist(0.0, static_cast<double>(bins) * kSecondsPerHour, bins);
  for (const auto& w : windows_) {
    // Credit each hour bin the window overlaps, weighted by overlap fraction
    // so short windows don't over-count.
    auto first = static_cast<std::size_t>(w.start / kSecondsPerHour);
    auto last = static_cast<std::size_t>((w.end - 1e-9) / kSecondsPerHour);
    for (std::size_t b = first; b <= last && b < bins; ++b) {
      double bin_start = static_cast<double>(b) * kSecondsPerHour;
      double overlap = std::min(w.end, bin_start + kSecondsPerHour) - std::max(w.start, bin_start);
      if (overlap > 0.0)
        hist.add(bin_start + kSecondsPerHour / 2.0, overlap / kSecondsPerHour);
    }
  }
  return hist;
}

double AvailabilityTrace::peak_to_trough_ratio() const {
  util::Histogram hist = hourly_availability();
  double peak = 0.0;
  double trough = std::numeric_limits<double>::infinity();
  bool seen = false;
  // Ignore the first and last 12h, which are edge-truncated.
  std::size_t skip = std::min<std::size_t>(12, hist.bin_count() / 4);
  for (std::size_t i = skip; i + skip < hist.bin_count(); ++i) {
    double c = hist.count(i);
    peak = std::max(peak, c);
    trough = std::min(trough, c);
    seen = true;
  }
  if (!seen || trough <= 0.0) return peak > 0.0 ? std::numeric_limits<double>::infinity() : 1.0;
  return peak / trough;
}

std::optional<AvailabilityWindow> TraceWindowStream::next() {
  if (cursor_ == trace_->windows().size()) return std::nullopt;
  return trace_->windows()[cursor_++];
}

std::optional<AvailabilityWindow> SessionWindowStream::next() {
  for (;;) {
    std::optional<Session> s = sessions_->next();
    if (!s) return std::nullopt;
    if (!criteria_->accepts(*s, *catalog_)) continue;
    AvailabilityWindow w{s->client_id, s->device_index, s->start, s->end};
    FLINT_CHECK_FINITE(w.start);
    FLINT_CHECK_FINITE(w.end);
    FLINT_CHECK_LT(w.start, w.end);
    // The stream contract: windows arrive non-decreasing in start. Holds by
    // construction for SessionStream inputs (they emit in session_order).
    FLINT_CHECK_GE(w.start, last_start_);
    last_start_ = w.start;
    return w;
  }
}

AvailabilityTrace build_availability(const SessionLog& log, const AvailabilityCriteria& criteria,
                                     const DeviceCatalog& catalog) {
  std::vector<AvailabilityWindow> windows;
  windows.reserve(log.sessions.size());
  for (const auto& s : log.sessions) {
    if (!criteria.accepts(s, catalog)) continue;
    windows.push_back({s.client_id, s.device_index, s.start, s.end});
  }
  return AvailabilityTrace(std::move(windows));
}

double criteria_pass_fraction(const SessionLog& log, const AvailabilityCriteria& criteria,
                              const DeviceCatalog& catalog) {
  double pass = 0.0, total = 0.0;
  for (const auto& s : log.sessions) {
    total += s.duration();
    if (criteria.accepts(s, catalog)) pass += s.duration();
  }
  FLINT_CHECK_MSG(total > 0.0, "empty session log");
  return pass / total;
}

}  // namespace flint::device
