// On-device example store — the "Device DB" of the paper's Figure 6. Apps
// log inference records and user feedback locally ("training ranking tasks
// on device allows directly using the displayed candidates and user feedback
// to generate training data directly on the device", §4.3); the FL runtime
// trains from this store. The feature catalog manages "the device-based
// features' retention policies and data size limits through cloud-based
// metadata" (§3.3) — this store enforces those limits.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "flint/device/session.h"
#include "flint/ml/batch.h"

namespace flint::device {

/// Retention policy for one app's on-device training data.
struct DeviceStoreConfig {
  std::uint64_t max_bytes = 1 << 20;        ///< storage budget
  double max_age_s = 30.0 * kSecondsPerDay; ///< records older than this expire
  std::size_t max_examples = 100'000;       ///< record-count cap
};

/// Approximate serialized footprint of one example (the quantity the
/// storage budget meters).
std::uint64_t example_bytes(const ml::Example& example);

/// Eviction accounting.
struct DeviceStoreStats {
  std::uint64_t logged = 0;
  std::uint64_t expired = 0;        ///< evicted by age
  std::uint64_t evicted_space = 0;  ///< evicted by byte/count budget
  std::uint64_t bytes_used = 0;
};

/// Append-only example log with oldest-first eviction under the retention
/// policy. Single app / single task; the feature catalog coordinates
/// budgets across apps.
class DeviceExampleStore {
 public:
  explicit DeviceExampleStore(const DeviceStoreConfig& config);

  /// Log one record at device time `now`; evicts as needed to stay within
  /// budget. Records must be logged in non-decreasing time order.
  void log_example(ml::Example example, TraceTime now);

  /// Expire records older than max_age_s as of `now`.
  void gc(TraceTime now);

  /// The records a training task would read at `now` (age-filtered view;
  /// does not mutate the store).
  std::vector<ml::Example> training_view(TraceTime now) const;

  std::size_t size() const { return entries_.size(); }
  std::uint64_t bytes_used() const { return stats_.bytes_used; }
  const DeviceStoreStats& stats() const { return stats_; }

 private:
  struct Entry {
    ml::Example example;
    TraceTime logged_at = 0.0;
    std::uint64_t bytes = 0;
  };
  void evict_oldest();

  DeviceStoreConfig config_;
  std::deque<Entry> entries_;  // oldest at front
  DeviceStoreStats stats_;
  TraceTime last_logged_ = 0.0;
};

}  // namespace flint::device
