#include "flint/device/hardware_distribution.h"

#include <algorithm>
#include <cmath>

#include "flint/util/check.h"

namespace flint::device {

namespace {

HardwareDistribution finalize(Os os, std::vector<HardwareShare> shares) {
  std::sort(shares.begin(), shares.end(),
            [](const HardwareShare& a, const HardwareShare& b) { return a.share > b.share; });
  HardwareDistribution out;
  out.os = os;
  out.shares = std::move(shares);
  for (const auto& s : out.shares)
    if (s.share > 0.0) out.entropy_bits -= s.share * std::log2(s.share);
  for (std::size_t i = 0; i < std::min<std::size_t>(3, out.shares.size()); ++i)
    out.top3_share += out.shares[i].share;
  return out;
}

}  // namespace

double HardwareDistribution::other_share(std::size_t legend_size) const {
  double other = 0.0;
  for (std::size_t i = legend_size; i < shares.size(); ++i) other += shares[i].share;
  return other;
}

HardwareDistribution hardware_distribution(const DeviceCatalog& catalog, Os os) {
  double total = 0.0;
  for (const auto& p : catalog.profiles())
    if (p.os == os) total += p.popularity;
  FLINT_CHECK_MSG(total > 0.0, "catalog has no devices for OS");
  std::vector<HardwareShare> shares;
  for (const auto& p : catalog.profiles())
    if (p.os == os) shares.push_back({p.name, p.popularity / total});
  return finalize(os, std::move(shares));
}

HardwareDistribution sampled_hardware_distribution(const DeviceCatalog& catalog, Os os,
                                                   std::size_t clients, util::Rng& rng) {
  FLINT_CHECK(clients > 0);
  auto eligible = catalog.devices_with_os(os);
  FLINT_CHECK(!eligible.empty());
  std::vector<double> weights;
  weights.reserve(eligible.size());
  for (std::size_t idx : eligible) weights.push_back(catalog.profile(idx).popularity);
  std::vector<std::size_t> counts(eligible.size(), 0);
  for (std::size_t c = 0; c < clients; ++c) ++counts[rng.categorical(weights)];
  std::vector<HardwareShare> shares;
  for (std::size_t i = 0; i < eligible.size(); ++i)
    shares.push_back({catalog.profile(eligible[i]).name,
                      static_cast<double>(counts[i]) / static_cast<double>(clients)});
  return finalize(os, std::move(shares));
}

}  // namespace flint::device
