// User-base hardware distribution analysis (paper Figure 1): per-OS device
// model shares, diversity measures, and the "other devices" gray region.
#pragma once

#include <string>
#include <vector>

#include "flint/device/device_catalog.h"
#include "flint/util/rng.h"

namespace flint::device {

/// One device model's share of the (per-OS) user base.
struct HardwareShare {
  std::string name;
  double share = 0.0;  ///< fraction of that OS's users, in [0, 1]
};

/// Per-OS hardware distribution summary.
struct HardwareDistribution {
  Os os = Os::kIos;
  std::vector<HardwareShare> shares;  ///< sorted by descending share
  double entropy_bits = 0.0;          ///< Shannon entropy of the shares
  double top3_share = 0.0;            ///< coverage of the top 3 models
  /// Share of models outside the top `legend_size` (the gray region).
  double other_share(std::size_t legend_size) const;
};

/// Exact distribution from the catalog's popularity weights.
HardwareDistribution hardware_distribution(const DeviceCatalog& catalog, Os os);

/// Empirical distribution from sampling `clients` users of the given OS
/// (what a production session-log analysis would see).
HardwareDistribution sampled_hardware_distribution(const DeviceCatalog& catalog, Os os,
                                                   std::size_t clients, util::Rng& rng);

}  // namespace flint::device
