// The 27-device benchmark catalog and popularity-weighted device sampling.
#pragma once

#include <cstddef>
#include <vector>

#include "flint/device/device_profile.h"
#include "flint/util/rng.h"

namespace flint::device {

/// Catalog of device models. The default catalog has the paper's 27 devices
/// (9 iOS + 18 Android) with speed multipliers normalized to unweighted
/// fleet mean 1.0 and a heterogeneity spread matching Table 5's reported
/// stdev/mean ratio (~0.7).
class DeviceCatalog {
 public:
  /// The default 27-device catalog.
  static DeviceCatalog standard();

  explicit DeviceCatalog(std::vector<DeviceProfile> profiles);

  std::size_t size() const { return profiles_.size(); }
  const DeviceProfile& profile(std::size_t i) const;
  const std::vector<DeviceProfile>& profiles() const { return profiles_; }

  /// Index of a popularity-weighted random device (a user's device draw).
  std::size_t sample_device(util::Rng& rng) const;

  /// Indices of devices on one OS.
  std::vector<std::size_t> devices_with_os(Os os) const;

  /// Fraction of the user base (popularity-weighted) whose OS release date
  /// is >= `min_os_release` (criterion C in Table 1).
  double os_pass_fraction(int min_os_release) const;

  /// Unweighted mean and stdev of speed multipliers (the heterogeneity the
  /// paper's Figure 4 shows).
  double mean_speed() const;
  double stddev_speed() const;

 private:
  std::vector<DeviceProfile> profiles_;
  std::vector<double> popularity_weights_;
};

}  // namespace flint::device
