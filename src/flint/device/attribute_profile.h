// Time-of-day attribute profiles and the weighted coin-flip trace builder
// (paper §4.1): "since we only have battery level and WiFi connectivity data
// for a smaller subset of mobile usage, we calculate empirical probabilities
// of WiFi connection and high battery level over time. For each session from
// our query, we perform a weighted coin-flip based on the session's start
// time to decide whether to include or exclude it from the output device
// traces."
#pragma once

#include <array>
#include <vector>

#include "flint/device/availability.h"
#include "flint/device/session_generator.h"
#include "flint/util/rng.h"

namespace flint::device {

/// Hourly empirical probabilities of the device-state attributes, estimated
/// from the (sub)set of sessions that carry attribute data.
class AttributeProfile {
 public:
  /// Estimate P(WiFi | hour) and P(battery >= threshold | hour) from a
  /// session log. Hours with no observations fall back to the global rate.
  static AttributeProfile estimate(const SessionLog& log, double battery_threshold_pct = 80.0);

  /// Probability a session starting at `start` (trace seconds) is on WiFi.
  double wifi_probability_at(TraceTime start) const;

  /// Probability its battery clears the threshold.
  double battery_probability_at(TraceTime start) const;

  /// Joint eligibility probability under independence (the paper applies
  /// the attributes as independent filters; Table 1's 22% intersection).
  double eligibility_probability_at(TraceTime start) const {
    return wifi_probability_at(start) * battery_probability_at(start);
  }

  double battery_threshold_pct() const { return battery_threshold_; }

 private:
  static std::size_t hour_of(TraceTime t);

  std::array<double, 24> wifi_by_hour_{};
  std::array<double, 24> battery_by_hour_{};
  double battery_threshold_ = 80.0;
};

/// Build an availability trace from sessions that LACK attribute data by
/// weighted coin-flips against the hourly profile — the §4.1 procedure.
/// Non-attribute criteria (device allow-list, OS, min duration) still apply
/// deterministically via `criteria`; its wifi/battery fields are ignored in
/// favour of the probabilistic inclusion.
AvailabilityTrace build_availability_by_coinflip(const SessionLog& log,
                                                 const AttributeProfile& profile,
                                                 const AvailabilityCriteria& criteria,
                                                 const DeviceCatalog& catalog, util::Rng& rng);

}  // namespace flint::device
