// On-device benchmark harness (paper §3.2 "On-Device Benchmarks", Table 5,
// Figure 4). The paper packages candidate models into a benchmark app and
// deploys to 27 AWS Device Farm devices; FLINT's reproduction runs the same
// collect-and-aggregate pipeline over the calibrated device catalog, and
// additionally offers a *real* host micro-benchmark that trains the actual
// model on this machine's CPU.
#pragma once

#include <string>
#include <vector>

#include "flint/device/device_catalog.h"
#include "flint/ml/model_zoo.h"

namespace flint::device {

/// One device's benchmark measurements for one model.
struct DeviceBenchmarkResult {
  std::size_t device_index = 0;
  std::string device_name;
  Os os = Os::kAndroid;
  double train_time_s = 0.0;   ///< time to train over the record budget
  double cpu_pct = 0.0;        ///< max compute usage during the run
  double memory_mb = 0.0;      ///< peak training memory
};

/// Aggregated fleet report (one Table 5 row).
struct FleetBenchmarkReport {
  char model_id = '?';
  std::size_t records = 0;
  std::vector<DeviceBenchmarkResult> per_device;
  double mean_time_s = 0.0;
  double stdev_time_s = 0.0;
  double mean_cpu_pct = 0.0;
  double mean_memory_mb = 0.0;
};

/// How memory-bound a zoo model is, in [-1, 1]. Embedding-heavy models are
/// positive; tiny dense models negative. Interacts with each device's
/// memory_affinity to produce the task-dependent device rankings of Figure 4.
double model_memory_intensity(char model_id);

/// Effective per-device time multiplier for a model: the device's speed
/// multiplier tilted by the task-affinity interaction.
double effective_speed(const DeviceProfile& device, double memory_intensity);

/// Simulate deploying `spec`'s benchmark app to every catalog device and
/// training over `records` records. Timing uses the spec's fleet calibration
/// and the device multipliers, with small lognormal run-to-run jitter.
FleetBenchmarkReport simulate_fleet_benchmark(const ml::ModelSpec& spec,
                                              const DeviceCatalog& catalog, std::size_t records,
                                              util::Rng& rng);

/// REAL micro-benchmark: train `model` on synthetic data for `records`
/// records on the host CPU and return wall-clock seconds. Grounds the
/// simulated numbers in an actually-measured training loop.
double measure_host_training_time_s(ml::Model& model, std::size_t records, util::Rng& rng);

}  // namespace flint::device
