// Synthetic app-session log generator (substitute for LinkedIn's anonymized
// production session data — see DESIGN.md). Calibrated to the paper's
// published aggregates:
//   * strong diurnal shape with a deep overnight trough and geographic
//     (timezone) mixing, producing the ~14x weekly peak/trough fluctuation
//     of Figure 2 once participation criteria are applied;
//   * tail-heavy session durations ("app usage duration is tail-heavy");
//   * attribute marginals of Table 1: P(WiFi)=0.70, P(battery>=80%)=0.34.
#pragma once

#include <cstdint>
#include <vector>

#include "flint/device/device_catalog.h"
#include "flint/device/session.h"
#include "flint/util/rng.h"
#include "flint/util/stats.h"

namespace flint::device {

/// Generator parameters.
struct SessionGeneratorConfig {
  std::size_t clients = 2000;
  int days = 14;                      ///< paper queries two weeks of sessions
  double sessions_per_day = 3.0;      ///< per-client weekday mean
  double weekend_factor = 0.7;        ///< weekend activity multiplier
  double mean_session_s = 240.0;      ///< lognormal session duration mean
  double session_cv = 2.0;            ///< duration stdev/mean (tail-heavy)
  double wifi_probability = 0.70;     ///< Table 1 criterion A marginal
  double high_battery_probability = 0.34;  ///< Table 1 criterion B marginal
  /// Overnight activity floor relative to the evening peak. Smaller values
  /// deepen the Figure 2 trough.
  double overnight_floor = 0.02;
  /// Geographic timezone mixture (hour offsets and weights). Defaults to a
  /// three-region mix concentrated in one region, which keeps the trough low.
  std::vector<double> timezone_offsets_h = {0.0, 6.0, 10.0};
  std::vector<double> timezone_weights = {0.75, 0.15, 0.10};
  /// Probability a session is split by a long background gap (§4.1: long
  /// gaps split a session into two).
  double split_probability = 0.15;
};

/// A generated log: sessions sorted by start time, plus each client's device.
struct SessionLog {
  std::vector<Session> sessions;
  std::vector<std::size_t> client_device;  ///< client id -> catalog index

  double total_duration() const;
};

/// Stream id for per-client session-trace substreams (util::derive_stream).
/// Every client's sessions come from derive_stream(trace_seed, this, client),
/// so a client's trace is independent of how many other clients were
/// generated before it — the property that lets the streaming generator
/// (session_stream.h) produce bit-identical traces chunk by chunk.
inline constexpr std::uint64_t kSessionTraceStreamId = 0x5E551014ull;

/// Canonical session ordering: by start, then client id, then end. The two
/// tie-break keys make the order a total one for generated traces (a client
/// never emits two sessions with identical start AND end), so sorts agree
/// across standard libraries and the k-way streaming merge can reproduce the
/// materialized order exactly.
bool session_order(const Session& a, const Session& b);

/// One client's generated trace: its device and its sessions, sorted by
/// session_order.
struct ClientSessions {
  std::size_t device_index = 0;
  std::vector<Session> sessions;
};

/// Per-client session sampler. All randomness for client `c` comes from
/// derive_stream(trace_seed, kSessionTraceStreamId, c), so clients can be
/// generated in any order, in any process, and yield identical sessions.
/// generate_sessions() and the streaming generator are both built on this.
class SessionTraceSampler {
 public:
  SessionTraceSampler(const SessionGeneratorConfig& config, const DeviceCatalog& catalog,
                      std::uint64_t trace_seed);

  /// Generate client `client_id`'s full trace (sessions sorted by
  /// session_order, all within [0, days*86400)).
  ClientSessions client(std::uint64_t client_id) const;

  const SessionGeneratorConfig& config() const { return config_; }
  /// Trace horizon in seconds: days * 86400.
  double horizon() const;

 private:
  SessionGeneratorConfig config_;
  const DeviceCatalog* catalog_;
  std::uint64_t trace_seed_;
  std::vector<double> slot_weights_;
  util::LognormalParams duration_params_;
};

/// Generate a session log. Deterministic given the rng state.
SessionLog generate_sessions(const SessionGeneratorConfig& config, const DeviceCatalog& catalog,
                             util::Rng& rng);

/// The diurnal activity weight at local time-of-day `hour` in [0, 24): two
/// bumps (lunch, evening peak) over an overnight floor. Exposed for tests.
double diurnal_weight(double hour, double overnight_floor);

}  // namespace flint::device
