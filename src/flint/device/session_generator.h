// Synthetic app-session log generator (substitute for LinkedIn's anonymized
// production session data — see DESIGN.md). Calibrated to the paper's
// published aggregates:
//   * strong diurnal shape with a deep overnight trough and geographic
//     (timezone) mixing, producing the ~14x weekly peak/trough fluctuation
//     of Figure 2 once participation criteria are applied;
//   * tail-heavy session durations ("app usage duration is tail-heavy");
//   * attribute marginals of Table 1: P(WiFi)=0.70, P(battery>=80%)=0.34.
#pragma once

#include <vector>

#include "flint/device/device_catalog.h"
#include "flint/device/session.h"
#include "flint/util/rng.h"

namespace flint::device {

/// Generator parameters.
struct SessionGeneratorConfig {
  std::size_t clients = 2000;
  int days = 14;                      ///< paper queries two weeks of sessions
  double sessions_per_day = 3.0;      ///< per-client weekday mean
  double weekend_factor = 0.7;        ///< weekend activity multiplier
  double mean_session_s = 240.0;      ///< lognormal session duration mean
  double session_cv = 2.0;            ///< duration stdev/mean (tail-heavy)
  double wifi_probability = 0.70;     ///< Table 1 criterion A marginal
  double high_battery_probability = 0.34;  ///< Table 1 criterion B marginal
  /// Overnight activity floor relative to the evening peak. Smaller values
  /// deepen the Figure 2 trough.
  double overnight_floor = 0.02;
  /// Geographic timezone mixture (hour offsets and weights). Defaults to a
  /// three-region mix concentrated in one region, which keeps the trough low.
  std::vector<double> timezone_offsets_h = {0.0, 6.0, 10.0};
  std::vector<double> timezone_weights = {0.75, 0.15, 0.10};
  /// Probability a session is split by a long background gap (§4.1: long
  /// gaps split a session into two).
  double split_probability = 0.15;
};

/// A generated log: sessions sorted by start time, plus each client's device.
struct SessionLog {
  std::vector<Session> sessions;
  std::vector<std::size_t> client_device;  ///< client id -> catalog index

  double total_duration() const;
};

/// Generate a session log. Deterministic given the rng state.
SessionLog generate_sessions(const SessionGeneratorConfig& config, const DeviceCatalog& catalog,
                             util::Rng& rng);

/// The diurnal activity weight at local time-of-day `hour` in [0, 24): two
/// bumps (lunch, evening peak) over an overnight floor. Exposed for tests.
double diurnal_weight(double hour, double overnight_floor);

}  // namespace flint::device
