#include "flint/device/attribute_profile.h"

#include <cmath>

#include "flint/util/check.h"

namespace flint::device {

std::size_t AttributeProfile::hour_of(TraceTime t) {
  double day_seconds = std::fmod(t, kSecondsPerDay);
  if (day_seconds < 0.0) day_seconds += kSecondsPerDay;
  auto hour = static_cast<std::size_t>(day_seconds / kSecondsPerHour);
  return hour < 24 ? hour : 23;
}

AttributeProfile AttributeProfile::estimate(const SessionLog& log,
                                            double battery_threshold_pct) {
  FLINT_CHECK_MSG(!log.sessions.empty(), "cannot estimate a profile from an empty log");
  AttributeProfile profile;
  profile.battery_threshold_ = battery_threshold_pct;

  std::array<double, 24> wifi_hits{}, battery_hits{}, totals{};
  double global_wifi = 0.0, global_battery = 0.0;
  for (const auto& s : log.sessions) {
    std::size_t hour = hour_of(s.start);
    totals[hour] += 1.0;
    if (s.wifi) {
      wifi_hits[hour] += 1.0;
      global_wifi += 1.0;
    }
    if (s.battery_pct >= battery_threshold_pct) {
      battery_hits[hour] += 1.0;
      global_battery += 1.0;
    }
  }
  double n = static_cast<double>(log.sessions.size());
  double wifi_fallback = global_wifi / n;
  double battery_fallback = global_battery / n;
  for (std::size_t h = 0; h < 24; ++h) {
    profile.wifi_by_hour_[h] = totals[h] > 0.0 ? wifi_hits[h] / totals[h] : wifi_fallback;
    profile.battery_by_hour_[h] =
        totals[h] > 0.0 ? battery_hits[h] / totals[h] : battery_fallback;
  }
  return profile;
}

double AttributeProfile::wifi_probability_at(TraceTime start) const {
  return wifi_by_hour_[hour_of(start)];
}

double AttributeProfile::battery_probability_at(TraceTime start) const {
  return battery_by_hour_[hour_of(start)];
}

AvailabilityTrace build_availability_by_coinflip(const SessionLog& log,
                                                 const AttributeProfile& profile,
                                                 const AvailabilityCriteria& criteria,
                                                 const DeviceCatalog& catalog,
                                                 util::Rng& rng) {
  // Deterministic sub-criteria only; attribute checks become coin-flips.
  AvailabilityCriteria hard = criteria;
  hard.require_wifi = false;
  hard.min_battery_pct = 0.0;

  std::vector<AvailabilityWindow> windows;
  for (const auto& s : log.sessions) {
    if (!hard.accepts(s, catalog)) continue;
    double p = 1.0;
    if (criteria.require_wifi) p *= profile.wifi_probability_at(s.start);
    if (criteria.min_battery_pct > 0.0) p *= profile.battery_probability_at(s.start);
    if (!rng.bernoulli(p)) continue;
    windows.push_back({s.client_id, s.device_index, s.start, s.end});
  }
  return AvailabilityTrace(std::move(windows));
}

}  // namespace flint::device
