// Session-log persistence. Production tooling exchanges session data as
// tabular exports ("most existing web services log session metrics and
// device information", §3.2); this CSV codec lets FLINT's analysis tools
// consume such exports and snapshot synthetic logs for reproducibility.
//
// Columns: client_id,device_index,start_s,end_s,wifi,battery_pct,foreground
#pragma once

#include <string>

#include "flint/device/session_generator.h"

namespace flint::device {

/// Write a session log as CSV (with header). The client->device map is
/// reconstructed on read from the sessions themselves.
void write_session_log_csv(const std::string& path, const SessionLog& log);

/// Read a CSV written by write_session_log_csv (or produced externally with
/// the same schema). Sessions are re-sorted by start time.
SessionLog read_session_log_csv(const std::string& path);

}  // namespace flint::device
