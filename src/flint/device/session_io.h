// Session-log persistence. Production tooling exchanges session data as
// tabular exports ("most existing web services log session metrics and
// device information", §3.2); this CSV codec lets FLINT's analysis tools
// consume such exports and snapshot synthetic logs for reproducibility.
//
// Columns: client_id,device_index,start_s,end_s,wifi,battery_pct,foreground
#pragma once

#include <cstdint>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "flint/device/session_generator.h"

namespace flint::device {

/// Write a session log as CSV (with header). The client->device map is
/// reconstructed on read from the sessions themselves.
void write_session_log_csv(const std::string& path, const SessionLog& log);

/// Read a CSV written by write_session_log_csv (or produced externally with
/// the same schema). Sessions are re-sorted by start time.
SessionLog read_session_log_csv(const std::string& path);

/// Binary spill-chunk format for the streaming session generator
/// (session_stream.h): a fixed 41-byte host-endian record per session
/// behind a small magic+count header. Unlike the CSV codec this is an
/// internal scratch format — same-build write/read only, never exchanged —
/// so it favours exact double round-trips and sequential throughput.
class SessionChunkWriter {
 public:
  explicit SessionChunkWriter(const std::string& path);
  ~SessionChunkWriter();
  SessionChunkWriter(const SessionChunkWriter&) = delete;
  SessionChunkWriter& operator=(const SessionChunkWriter&) = delete;

  /// Append one session to the chunk.
  void add(const Session& s);
  /// Patch the header count and flush. Called by the destructor if omitted.
  void finish();
  std::size_t count() const { return count_; }

 private:
  std::string path_;
  std::ofstream out_;
  std::size_t count_ = 0;
  bool finished_ = false;
};

/// Buffered sequential reader over a finished chunk file.
class SessionChunkReader {
 public:
  explicit SessionChunkReader(const std::string& path, std::size_t buffer_sessions = 4096);

  /// The next session, or nullopt at end of chunk.
  std::optional<Session> next();
  std::size_t count() const { return count_; }

 private:
  void refill();

  std::string path_;
  std::ifstream in_;
  std::size_t count_ = 0;
  std::size_t consumed_ = 0;
  std::size_t buffer_sessions_;
  std::vector<Session> buffer_;
  std::size_t buffer_pos_ = 0;
};

}  // namespace flint::device
