#include "flint/device/device_catalog.h"

#include <cmath>

#include "flint/util/check.h"
#include "flint/util/stats.h"

namespace flint::device {

namespace {

std::vector<DeviceProfile> standard_profiles() {
  // 27 devices: 9 iOS (concentrated shares) + 18 Android (long tail), mirroring
  // Figure 1's observation that Android hardware is far more diverse. Speed
  // multipliers are pre-normalization (the constructor rescales the fleet's
  // unweighted mean to 1.0). memory_affinity > 0 marks devices relatively
  // stronger on memory-bound (embedding) workloads.
  return {
      // name, os, speed, cpu, memMB, mem_affinity, popularity, os_release
      {"iPhone 14 Pro", Os::kIos, 0.35, 0.55, 6144, 0.3, 9, 202209},
      {"iPhone 13", Os::kIos, 0.45, 0.60, 4096, 0.2, 14, 202109},
      {"iPhone 12", Os::kIos, 0.52, 0.65, 4096, 0.2, 13, 202010},
      {"iPhone 11", Os::kIos, 0.65, 0.75, 4096, 0.1, 15, 201909},
      {"iPhone XR", Os::kIos, 0.82, 0.85, 3072, -0.1, 8, 202009},
      {"iPhone X", Os::kIos, 0.95, 0.90, 3072, -0.2, 5, 202009},
      {"iPhone 8", Os::kIos, 1.15, 1.00, 2048, -0.4, 4, 202009},
      {"iPhone SE 2020", Os::kIos, 0.70, 0.80, 3072, 0.0, 6, 202004},
      {"iPad 9th gen", Os::kIos, 0.60, 0.70, 3072, 0.4, 3, 202109},
      {"Galaxy S23", Os::kAndroid, 0.40, 0.50, 8192, 0.4, 6, 202302},
      {"Galaxy S21", Os::kAndroid, 0.55, 0.62, 8192, 0.3, 7, 202101},
      {"Pixel 7", Os::kAndroid, 0.45, 0.55, 8192, 0.3, 4, 202210},
      {"Pixel 5", Os::kAndroid, 0.75, 0.78, 8192, 0.2, 3, 202010},
      {"Galaxy A52", Os::kAndroid, 1.20, 1.10, 6144, 0.1, 8, 202103},
      {"Galaxy A13", Os::kAndroid, 2.00, 1.50, 4096, -0.3, 7, 202203},
      {"Redmi Note 11", Os::kAndroid, 1.60, 1.30, 4096, -0.2, 7, 202201},
      {"Redmi 9A", Os::kAndroid, 2.80, 1.90, 2048, -0.7, 5, 202006},
      {"Galaxy J7 2017", Os::kAndroid, 3.20, 2.10, 3072, -0.9, 3, 201708},
      {"Moto G5", Os::kAndroid, 3.00, 2.00, 2048, -0.8, 2, 201803},
      {"Galaxy S9", Os::kAndroid, 1.40, 1.20, 4096, 0.0, 4, 202001},
      {"OnePlus 9", Os::kAndroid, 0.50, 0.60, 8192, 0.3, 3, 202103},
      {"Oppo A54", Os::kAndroid, 1.80, 1.40, 4096, -0.3, 5, 202104},
      {"Vivo Y21", Os::kAndroid, 2.20, 1.60, 4096, -0.5, 4, 202108},
      {"Galaxy M31", Os::kAndroid, 1.50, 1.25, 6144, 0.1, 4, 202002},
      {"Huawei P30 lite", Os::kAndroid, 1.70, 1.35, 4096, -0.2, 4, 201904},
      {"Tecno Spark 8", Os::kAndroid, 2.60, 1.80, 3072, -0.6, 3, 202110},
      {"Galaxy Tab A8", Os::kAndroid, 1.30, 1.15, 4096, 0.5, 2, 202112},
  };
}

}  // namespace

DeviceCatalog DeviceCatalog::standard() { return DeviceCatalog(standard_profiles()); }

DeviceCatalog::DeviceCatalog(std::vector<DeviceProfile> profiles)
    : profiles_(std::move(profiles)) {
  FLINT_CHECK(!profiles_.empty());
  // Normalize the unweighted mean speed to 1.0 so that zoo base times are
  // fleet means by construction.
  double mean = 0.0;
  for (const auto& p : profiles_) {
    FLINT_CHECK(p.speed_multiplier > 0.0 && p.cpu_multiplier > 0.0);
    FLINT_CHECK(p.popularity > 0.0);
    mean += p.speed_multiplier;
  }
  mean /= static_cast<double>(profiles_.size());
  for (auto& p : profiles_) p.speed_multiplier /= mean;
  for (const auto& p : profiles_) popularity_weights_.push_back(p.popularity);
}

const DeviceProfile& DeviceCatalog::profile(std::size_t i) const {
  FLINT_CHECK(i < profiles_.size());
  return profiles_[i];
}

std::size_t DeviceCatalog::sample_device(util::Rng& rng) const {
  return rng.categorical(popularity_weights_);
}

std::vector<std::size_t> DeviceCatalog::devices_with_os(Os os) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < profiles_.size(); ++i)
    if (profiles_[i].os == os) out.push_back(i);
  return out;
}

double DeviceCatalog::os_pass_fraction(int min_os_release) const {
  double pass = 0.0, total = 0.0;
  for (const auto& p : profiles_) {
    total += p.popularity;
    if (p.os_release >= min_os_release) pass += p.popularity;
  }
  return pass / total;
}

double DeviceCatalog::mean_speed() const {
  util::RunningStats s;
  for (const auto& p : profiles_) s.add(p.speed_multiplier);
  return s.mean();
}

double DeviceCatalog::stddev_speed() const {
  util::RunningStats s;
  for (const auto& p : profiles_) s.add(p.speed_multiplier);
  return s.stddev();
}

}  // namespace flint::device
