// App session records — the raw material availability traces are derived
// from. Mirrors what "most existing web services log" (§3.2): session start
// and end, device model, and device-state attributes.
#pragma once

#include <cstdint>

namespace flint::device {

/// Seconds since the trace epoch (start of the observation window).
using TraceTime = double;

/// One foreground app session with the device-state attributes FLINT's
/// availability criteria evaluate.
struct Session {
  std::uint64_t client_id = 0;
  std::size_t device_index = 0;  ///< index into the DeviceCatalog
  TraceTime start = 0.0;
  TraceTime end = 0.0;
  bool wifi = false;             ///< connected to WiFi during the session
  double battery_pct = 100.0;    ///< battery level at session start
  bool foreground = true;        ///< app is in the foreground

  TraceTime duration() const { return end - start; }
};

inline constexpr double kSecondsPerHour = 3600.0;
inline constexpr double kSecondsPerDay = 86400.0;
inline constexpr double kSecondsPerWeek = 7.0 * kSecondsPerDay;

}  // namespace flint::device
