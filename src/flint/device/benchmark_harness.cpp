#include "flint/device/benchmark_harness.h"

#include <chrono>
#include <cmath>

#include "flint/ml/loss.h"
#include "flint/ml/optimizer.h"
#include "flint/util/check.h"
#include "flint/util/stats.h"

namespace flint::device {

double model_memory_intensity(char model_id) {
  switch (model_id) {
    case 'A': return -0.8;  // tiny dense net: pure compute
    case 'B': return -0.4;  // hashed sparse MLP: compute with big first layer
    case 'C': return 0.6;   // medium embedding: lookup-bound
    case 'D': return 0.8;   // CNN over a large embedding
    case 'E': return 0.9;   // multi-task with the largest table
    default:
      FLINT_CHECK_MSG(false, "unknown model id '" << model_id << "'");
      return 0.0;
  }
}

double effective_speed(const DeviceProfile& device, double memory_intensity) {
  // Devices with positive memory_affinity run memory-bound tasks relatively
  // faster (smaller multiplier). The 0.35 coupling produces rank flips
  // between tasks without dominating the base heterogeneity.
  return device.speed_multiplier * std::exp(-0.35 * memory_intensity * device.memory_affinity);
}

FleetBenchmarkReport simulate_fleet_benchmark(const ml::ModelSpec& spec,
                                              const DeviceCatalog& catalog, std::size_t records,
                                              util::Rng& rng) {
  FLINT_CHECK(records > 0);
  FleetBenchmarkReport report;
  report.model_id = spec.id;
  report.records = records;
  double intensity = model_memory_intensity(spec.id);
  double record_scale = static_cast<double>(records) / 5000.0;  // calibration is per 5k records

  util::RunningStats time_stats, cpu_stats, mem_stats;
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    const DeviceProfile& dev = catalog.profile(i);
    DeviceBenchmarkResult r;
    r.device_index = i;
    r.device_name = dev.name;
    r.os = dev.os;
    // Run-to-run jitter on a real device (thermal, background load) is small
    // relative to cross-device heterogeneity.
    double jitter = rng.lognormal(0.0, 0.15);
    r.train_time_s =
        spec.calibration.base_time_per_5k_s * record_scale * effective_speed(dev, intensity) * jitter;
    r.cpu_pct = spec.calibration.base_cpu_pct * dev.cpu_multiplier * rng.lognormal(0.0, 0.10);
    r.memory_mb = spec.calibration.memory_mb * rng.uniform(0.92, 1.08);
    time_stats.add(r.train_time_s);
    cpu_stats.add(r.cpu_pct);
    mem_stats.add(r.memory_mb);
    report.per_device.push_back(std::move(r));
  }
  report.mean_time_s = time_stats.mean();
  report.stdev_time_s = time_stats.stddev();
  report.mean_cpu_pct = cpu_stats.mean();
  report.mean_memory_mb = mem_stats.mean();
  return report;
}

double measure_host_training_time_s(ml::Model& model, std::size_t records, util::Rng& rng) {
  FLINT_CHECK(records > 0);
  // Build one reusable synthetic batch shaped for the model: we probe the
  // model's front end by attempting a forward with tokens and dense features.
  constexpr std::size_t kBatch = 32;
  std::vector<ml::Example> examples(kBatch);
  // Provide both dense and token features; models consume what they need.
  // Dense width is discovered from the model by growing until forward works
  // — instead we use the convention that zoo models take 32 dense features
  // (Models A, E) or none, and tokens otherwise. To stay model-agnostic we
  // try (32 dense + tokens) first, then fall back.
  for (auto& e : examples) {
    e.dense.resize(32);
    for (float& v : e.dense) v = static_cast<float>(rng.normal(0.0, 1.0));
    e.tokens.resize(12);
    for (auto& t : e.tokens) t = static_cast<std::int32_t>(rng.uniform_int(0, 1999));
    e.label = rng.bernoulli(0.3) ? 1.0f : 0.0f;
  }
  ml::SgdOptimizer opt(0.0, 0.0);
  auto run_with_dim = [&](std::size_t dense_dim) {
    ml::Batch batch = ml::Batch::from_examples(examples, dense_dim);
    // flint-analyze: allow(nondet-source): the benchmark harness measures real
    // wall time by definition; results calibrate device profiles, not sim state.
    auto start = std::chrono::steady_clock::now();
    std::size_t done = 0;
    while (done < records) {
      ml::Tensor logits = model.forward(batch);
      ml::LossResult loss =
          model.heads() == 1
              ? ml::bce_with_logits(logits, batch.labels)
              : ml::multitask_bce(logits, {batch.labels, batch.labels2});
      model.zero_grad();
      model.backward(loss.d_logits);
      opt.step(model.parameters(), 0.01);
      done += kBatch;
    }
    // flint-analyze: allow(nondet-source): end of the same wall-time measurement.
    auto end = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(end - start).count();
  };
  try {
    return run_with_dim(32);
  } catch (const util::CheckError&) {
    return run_with_dim(0);  // token-only models (B, C, D)
  }
}

}  // namespace flint::device
