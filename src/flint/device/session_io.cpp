#include "flint/device/session_io.h"

#include <algorithm>
#include <fstream>

#include "flint/util/check.h"
#include "flint/util/csv.h"

namespace flint::device {

void write_session_log_csv(const std::string& path, const SessionLog& log) {
  util::CsvFile file(path);
  FLINT_CHECK_MSG(file.ok(), "cannot write " << path);
  file.write_row({"client_id", "device_index", "start_s", "end_s", "wifi", "battery_pct",
                  "foreground"});
  for (const auto& s : log.sessions) {
    file.write_row({std::to_string(s.client_id), std::to_string(s.device_index),
                    std::to_string(s.start), std::to_string(s.end), s.wifi ? "1" : "0",
                    std::to_string(s.battery_pct), s.foreground ? "1" : "0"});
  }
}

// The CSV format is keyed by the (verified) header row and parsed through
// indexed cells, not a positional walk; the reader also rebuilds
// client_device, which is derived state the writer never stores.
// flint-analyze: allow(save-load-symmetry): header-keyed CSV, not a positional walk
SessionLog read_session_log_csv(const std::string& path) {
  std::ifstream in(path);
  FLINT_CHECK_MSG(in.good(), "cannot read " << path);
  std::string line;
  FLINT_CHECK_MSG(static_cast<bool>(std::getline(in, line)), "empty session CSV " << path);
  auto header = util::parse_csv_line(line);
  FLINT_CHECK_MSG(header.size() == 7 && header[0] == "client_id",
                  "unexpected session CSV header in " << path);

  SessionLog log;
  std::uint64_t max_client = 0;
  std::size_t lineno = 1;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    auto cells = util::parse_csv_line(line);
    FLINT_CHECK_MSG(cells.size() == 7, "bad session row at " << path << ":" << lineno);
    Session s;
    s.client_id = std::stoull(cells[0]);
    s.device_index = std::stoul(cells[1]);
    s.start = std::stod(cells[2]);
    s.end = std::stod(cells[3]);
    s.wifi = cells[4] == "1";
    s.battery_pct = std::stod(cells[5]);
    s.foreground = cells[6] == "1";
    FLINT_CHECK_MSG(s.end > s.start, "non-positive session at " << path << ":" << lineno);
    max_client = std::max(max_client, s.client_id);
    log.sessions.push_back(s);
  }
  std::sort(log.sessions.begin(), log.sessions.end(),
            [](const Session& a, const Session& b) { return a.start < b.start; });
  // Rebuild the client->device map from the observed sessions (last write
  // wins, matching how a device upgrade would appear in real logs).
  log.client_device.assign(max_client + 1, 0);
  for (const auto& s : log.sessions) log.client_device[s.client_id] = s.device_index;
  return log;
}

}  // namespace flint::device
