#include "flint/device/session_io.h"

#include <algorithm>
#include <cstring>
#include <fstream>

#include "flint/util/check.h"
#include "flint/util/csv.h"

namespace flint::device {

void write_session_log_csv(const std::string& path, const SessionLog& log) {
  util::CsvFile file(path);
  FLINT_CHECK_MSG(file.ok(), "cannot write " << path);
  file.write_row({"client_id", "device_index", "start_s", "end_s", "wifi", "battery_pct",
                  "foreground"});
  for (const auto& s : log.sessions) {
    file.write_row({std::to_string(s.client_id), std::to_string(s.device_index),
                    std::to_string(s.start), std::to_string(s.end), s.wifi ? "1" : "0",
                    std::to_string(s.battery_pct), s.foreground ? "1" : "0"});
  }
}

// The CSV format is keyed by the (verified) header row and parsed through
// indexed cells, not a positional walk; the reader also rebuilds
// client_device, which is derived state the writer never stores.
// flint-analyze: allow(save-load-symmetry): header-keyed CSV, not a positional walk
SessionLog read_session_log_csv(const std::string& path) {
  std::ifstream in(path);
  FLINT_CHECK_MSG(in.good(), "cannot read " << path);
  std::string line;
  FLINT_CHECK_MSG(static_cast<bool>(std::getline(in, line)), "empty session CSV " << path);
  auto header = util::parse_csv_line(line);
  FLINT_CHECK_MSG(header.size() == 7 && header[0] == "client_id",
                  "unexpected session CSV header in " << path);

  SessionLog log;
  std::uint64_t max_client = 0;
  std::size_t lineno = 1;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    auto cells = util::parse_csv_line(line);
    FLINT_CHECK_MSG(cells.size() == 7, "bad session row at " << path << ":" << lineno);
    Session s;
    s.client_id = std::stoull(cells[0]);
    s.device_index = std::stoul(cells[1]);
    s.start = std::stod(cells[2]);
    s.end = std::stod(cells[3]);
    s.wifi = cells[4] == "1";
    s.battery_pct = std::stod(cells[5]);
    s.foreground = cells[6] == "1";
    FLINT_CHECK_MSG(s.end > s.start, "non-positive session at " << path << ":" << lineno);
    max_client = std::max(max_client, s.client_id);
    log.sessions.push_back(s);
  }
  std::sort(log.sessions.begin(), log.sessions.end(), session_order);
  // Rebuild the client->device map from the observed sessions (last write
  // wins, matching how a device upgrade would appear in real logs).
  log.client_device.assign(max_client + 1, 0);
  for (const auto& s : log.sessions) log.client_device[s.client_id] = s.device_index;
  return log;
}

namespace {

constexpr std::uint64_t kChunkMagic = 0x464C534E43484Bull;  // "FLSNCHK"
constexpr std::size_t kRecordBytes = 8 + 8 + 8 + 8 + 8 + 1;

void pack_session(const Session& s, char* rec) {
  std::uint64_t client = s.client_id;
  std::uint64_t device = s.device_index;
  std::memcpy(rec, &client, 8);
  std::memcpy(rec + 8, &device, 8);
  std::memcpy(rec + 16, &s.start, 8);
  std::memcpy(rec + 24, &s.end, 8);
  std::memcpy(rec + 32, &s.battery_pct, 8);
  rec[40] = static_cast<char>((s.wifi ? 1 : 0) | (s.foreground ? 2 : 0));
}

Session unpack_session(const char* rec) {
  Session s;
  std::uint64_t client = 0;
  std::uint64_t device = 0;
  std::memcpy(&client, rec, 8);
  std::memcpy(&device, rec + 8, 8);
  std::memcpy(&s.start, rec + 16, 8);
  std::memcpy(&s.end, rec + 24, 8);
  std::memcpy(&s.battery_pct, rec + 32, 8);
  s.client_id = client;
  s.device_index = static_cast<std::size_t>(device);
  auto flags = static_cast<unsigned char>(rec[40]);
  s.wifi = (flags & 1u) != 0;
  s.foreground = (flags & 2u) != 0;
  return s;
}

void write_u64(std::ofstream& out, std::uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out.write(buf, 8);
}

std::uint64_t read_u64(std::ifstream& in) {
  char buf[8] = {};
  in.read(buf, 8);
  std::uint64_t v = 0;
  std::memcpy(&v, buf, 8);
  return v;
}

}  // namespace

SessionChunkWriter::SessionChunkWriter(const std::string& path)
    : path_(path), out_(path, std::ios::binary | std::ios::trunc) {
  FLINT_CHECK_MSG(out_.good(), "cannot write session chunk " << path_);
  write_u64(out_, kChunkMagic);
  write_u64(out_, 0);  // count, patched by finish()
}

SessionChunkWriter::~SessionChunkWriter() {
  if (!finished_) finish();
}

void SessionChunkWriter::add(const Session& s) {
  FLINT_CHECK_MSG(!finished_, "add() after finish() on chunk " << path_);
  char rec[kRecordBytes];
  pack_session(s, rec);
  out_.write(rec, kRecordBytes);
  ++count_;
}

void SessionChunkWriter::finish() {
  if (finished_) return;
  finished_ = true;
  out_.seekp(8);
  write_u64(out_, static_cast<std::uint64_t>(count_));
  out_.flush();
  FLINT_CHECK_MSG(out_.good(), "failed writing session chunk " << path_);
}

SessionChunkReader::SessionChunkReader(const std::string& path, std::size_t buffer_sessions)
    : path_(path), in_(path, std::ios::binary), buffer_sessions_(std::max<std::size_t>(1, buffer_sessions)) {
  FLINT_CHECK_MSG(in_.good(), "cannot read session chunk " << path_);
  std::uint64_t magic = read_u64(in_);
  std::uint64_t count = read_u64(in_);
  FLINT_CHECK_MSG(in_.good() && magic == kChunkMagic, "bad session chunk header in " << path_);
  count_ = static_cast<std::size_t>(count);
}

std::optional<Session> SessionChunkReader::next() {
  if (buffer_pos_ == buffer_.size()) {
    if (consumed_ == count_) return std::nullopt;
    refill();
  }
  return buffer_[buffer_pos_++];
}

void SessionChunkReader::refill() {
  std::size_t want = std::min(buffer_sessions_, count_ - consumed_);
  std::vector<char> raw(want * kRecordBytes);
  in_.read(raw.data(), static_cast<std::streamsize>(raw.size()));
  FLINT_CHECK_MSG(in_.gcount() == static_cast<std::streamsize>(raw.size()),
                  "truncated session chunk " << path_);
  buffer_.clear();
  buffer_.reserve(want);
  for (std::size_t i = 0; i < want; ++i) buffer_.push_back(unpack_session(raw.data() + i * kRecordBytes));
  consumed_ += want;
  buffer_pos_ = 0;
}

}  // namespace flint::device
