// Streaming session traces (DESIGN.md §17). A SessionStream yields the same
// sessions as generate_sessions() — in exactly the same session_order — but
// lazily, so population size stops being a resident-memory quantity: the
// leader, scheduler, and availability layers consume an iterator instead of
// a materialized vector. Small populations stream from an in-memory sorted
// buffer; large ones are generated in client chunks, spilled to binary chunk
// files (session_io.h), and merged back through a bounded k-way heap, so
// peak RSS is O(chunk) + O(read buffers), independent of total clients.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "flint/device/session_generator.h"

namespace flint::device {

/// A lazily-produced, exhaust-once sequence of sessions, non-decreasing in
/// session_order(). Streams over the same seed/config are bit-identical to
/// generate_sessions()' sorted vector — that equivalence is CI-gated.
class SessionStream {
 public:
  virtual ~SessionStream() = default;

  /// The next session, or nullopt when the trace is exhausted.
  virtual std::optional<Session> next() = 0;

  /// Total clients in the population this stream draws from.
  virtual std::size_t clients() const = 0;

  /// Trace horizon in seconds (days * 86400).
  virtual double horizon() const = 0;
};

/// Adapter streaming an already-materialized, session_order-sorted log.
class MaterializedSessionStream : public SessionStream {
 public:
  MaterializedSessionStream(SessionLog log, double horizon);

  std::optional<Session> next() override;
  std::size_t clients() const override { return log_.client_device.size(); }
  double horizon() const override { return horizon_; }

 private:
  SessionLog log_;
  double horizon_;
  std::size_t cursor_ = 0;
};

/// Streaming generator parameters.
struct SessionStreamConfig {
  SessionGeneratorConfig generator;
  /// Populations up to this size stream from memory; larger ones generate in
  /// chunks of this many clients and spill each sorted chunk to disk.
  std::size_t clients_per_chunk = 8192;
  /// Total read-back buffer across the k-way merge (sessions, split evenly
  /// over the chunk readers with a floor of 64 each), so merge memory is a
  /// fixed budget rather than a per-chunk quantity.
  std::size_t read_buffer_sessions = 65'536;
  /// Directory for spill files; empty means the system temp directory.
  /// Files are removed when the stream is destroyed.
  std::string spill_dir;
};

/// Build a session stream for `config.generator.clients` clients. Consumes
/// exactly one draw from `rng` (the trace seed), matching generate_sessions,
/// so a stream and a materialized log built from equal rng states yield
/// bit-identical sessions in identical order.
std::unique_ptr<SessionStream> make_session_stream(const SessionStreamConfig& config,
                                                   const DeviceCatalog& catalog, util::Rng& rng);

}  // namespace flint::device
