#include "flint/data/proxy_writer.h"

#include <cstring>
#include <filesystem>
#include <fstream>

#include "flint/util/bytes.h"
#include "flint/util/check.h"

namespace flint::data {

namespace {

constexpr char kMagic[4] = {'F', 'L', 'P', 'T'};

void put_varint(std::vector<char>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

std::uint64_t get_varint(const std::vector<char>& in, std::size_t& offset) {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    FLINT_CHECK_MSG(offset < in.size(), "truncated varint");
    auto byte = static_cast<unsigned char>(in[offset++]);
    v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
    FLINT_CHECK_MSG(shift < 64, "varint overflow");
  }
  return v;
}

/// Zig-zag for signed token deltas.
std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^ static_cast<std::uint64_t>(v >> 63);
}
std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

void put_float(std::vector<char>& out, float f) { util::append_pod(out, f); }

float get_float(const std::vector<char>& in, std::size_t& offset) {
  FLINT_CHECK_MSG(offset + sizeof(float) <= in.size(), "truncated float");
  return util::read_pod<float>(in, offset);
}

void encode_client(std::vector<char>& out, const ClientDataset& client) {
  put_varint(out, client.client_id);
  put_varint(out, client.examples.size());
  for (const auto& e : client.examples) {
    put_varint(out, e.dense.size());
    for (float v : e.dense) put_float(out, v);
    put_varint(out, e.tokens.size());
    // Delta + zig-zag coding: token ids within an example are often close,
    // and grouped clients share vocabulary regions — this is where storing
    // many clients per file earns its compression.
    std::int64_t prev = 0;
    for (std::int32_t t : e.tokens) {
      put_varint(out, zigzag(static_cast<std::int64_t>(t) - prev));
      prev = t;
    }
    put_float(out, e.label);
    put_float(out, e.label2);
    put_varint(out, static_cast<std::uint64_t>(static_cast<std::uint32_t>(e.group)));
  }
}

ClientDataset decode_client(const std::vector<char>& in, std::size_t& offset) {
  ClientDataset client;
  client.client_id = get_varint(in, offset);
  std::uint64_t examples = get_varint(in, offset);
  client.examples.reserve(examples);
  for (std::uint64_t i = 0; i < examples; ++i) {
    ml::Example e;
    std::uint64_t dense = get_varint(in, offset);
    e.dense.reserve(dense);
    for (std::uint64_t j = 0; j < dense; ++j) e.dense.push_back(get_float(in, offset));
    std::uint64_t tokens = get_varint(in, offset);
    e.tokens.reserve(tokens);
    std::int64_t prev = 0;
    for (std::uint64_t j = 0; j < tokens; ++j) {
      prev += unzigzag(get_varint(in, offset));
      e.tokens.push_back(static_cast<std::int32_t>(prev));
    }
    e.label = get_float(in, offset);
    e.label2 = get_float(in, offset);
    e.group = static_cast<std::int32_t>(static_cast<std::uint32_t>(get_varint(in, offset)));
    client.examples.push_back(std::move(e));
  }
  return client;
}

std::string partition_path(const std::string& dir, std::size_t executor) {
  return (std::filesystem::path(dir) / ("part_" + std::to_string(executor) + ".flpt"))
      .string();
}

}  // namespace

std::uint64_t write_partition_file(const std::string& path,
                                   const std::vector<ClientDataset>& clients) {
  std::vector<char> out;
  out.insert(out.end(), kMagic, kMagic + 4);
  std::uint32_t count = static_cast<std::uint32_t>(clients.size());
  util::append_pod(out, count);
  for (const auto& client : clients) encode_client(out, client);

  std::ofstream file(path, std::ios::binary);
  FLINT_CHECK_MSG(file.good(), "cannot write partition " << path);
  file.write(out.data(), static_cast<std::streamsize>(out.size()));
  return out.size();
}

std::vector<ClientDataset> read_partition_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  FLINT_CHECK_MSG(file.good(), "cannot read partition " << path);
  std::vector<char> in((std::istreambuf_iterator<char>(file)),
                       std::istreambuf_iterator<char>());
  FLINT_CHECK_MSG(in.size() >= 8 && std::memcmp(in.data(), kMagic, 4) == 0,
                  "bad partition magic in " << path);
  std::size_t offset = 4;
  auto count = util::read_pod<std::uint32_t>(in, offset);
  std::vector<ClientDataset> clients;
  clients.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) clients.push_back(decode_client(in, offset));
  FLINT_CHECK_MSG(offset == in.size(), "trailing bytes in partition " << path);
  return clients;
}

std::vector<std::uint64_t> write_partitions(const FederatedDataset& dataset,
                                            const ExecutorPartitioning& partitioning,
                                            const std::string& dir) {
  std::filesystem::create_directories(dir);
  std::vector<std::uint64_t> sizes;
  sizes.reserve(partitioning.executor_count());
  for (std::size_t p = 0; p < partitioning.executor_count(); ++p) {
    std::vector<ClientDataset> clients;
    clients.reserve(partitioning.partitions[p].size());
    for (ClientId id : partitioning.partitions[p]) clients.push_back(dataset.client(id));
    sizes.push_back(write_partition_file(partition_path(dir, p), clients));
  }
  return sizes;
}

std::vector<ClientDataset> read_partition(const std::string& dir, std::size_t executor) {
  return read_partition_file(partition_path(dir, executor));
}

std::uint64_t naive_per_client_bytes(const FederatedDataset& dataset,
                                     std::uint64_t per_file_overhead) {
  std::uint64_t total = 0;
  for (const auto& client : dataset.clients()) {
    std::vector<char> out;
    encode_client(out, client);
    total += out.size() + per_file_overhead;  // header/metadata per tiny file
  }
  return total;
}

}  // namespace flint::data
