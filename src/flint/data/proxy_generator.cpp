#include "flint/data/proxy_generator.h"

#include <algorithm>
#include <cmath>

#include "flint/util/check.h"
#include "flint/util/stats.h"

namespace flint::data {

int DataCatalog::put(const std::string& name, ProxyEntry entry) {
  auto& versions = entries_[name];
  entry.version = static_cast<int>(versions.size()) + 1;
  versions.push_back(std::move(entry));
  return versions.back().version;
}

std::optional<ProxyEntry> DataCatalog::latest(const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end() || it->second.empty()) return std::nullopt;
  return it->second.back();
}

std::optional<ProxyEntry> DataCatalog::get(const std::string& name, int version) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) return std::nullopt;
  if (version < 1 || static_cast<std::size_t>(version) > it->second.size()) return std::nullopt;
  return it->second[static_cast<std::size_t>(version) - 1];
}

std::size_t DataCatalog::version_count(const std::string& name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? 0 : it->second.size();
}

std::vector<std::string> DataCatalog::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, _] : entries_) out.push_back(name);
  return out;
}

ProxyEntry ProxyGenerator::generate(const std::vector<ml::Example>& records,
                                    const ProxyConfig& config,
                                    const std::function<std::uint64_t(std::size_t)>& client_key_of,
                                    util::Rng& rng) {
  FLINT_CHECK(!records.empty());
  FederatedDataset dataset;
  switch (config.strategy) {
    case PartitionStrategy::kNatural:
      FLINT_CHECK_MSG(client_key_of != nullptr,
                      "natural partitioning needs a client key extractor");
      dataset = partition_natural(records, client_key_of);
      break;
    case PartitionStrategy::kDirichlet:
      dataset = partition_dirichlet(records, config.dirichlet, rng);
      break;
  }
  if (config.client_downsample < 1.0)
    dataset = downsample_clients(dataset, config.client_downsample, rng);

  ProxyEntry entry;
  entry.config = config;
  entry.stats = compute_stats(dataset, config.name, config.lookback_days);
  entry.dataset = std::make_shared<FederatedDataset>(std::move(dataset));
  entry.version = catalog_->put(config.name, entry);
  return entry;
}

std::vector<std::uint32_t> sample_quantity_profile(const QuantityProfileConfig& config,
                                                   util::Rng& rng) {
  FLINT_CHECK(config.population > 0);
  FLINT_CHECK(config.max_records >= 1);
  FLINT_CHECK(config.superuser_fraction >= 0.0 && config.superuser_fraction < 1.0);
  util::LognormalParams p = util::lognormal_from_moments(config.mean_records, config.std_records);
  std::vector<std::uint32_t> counts;
  counts.reserve(config.population);
  for (std::uint64_t i = 0; i < config.population; ++i) {
    double v;
    if (config.superuser_fraction > 0.0 && rng.bernoulli(config.superuser_fraction)) {
      // Superuser tail: Pareto starting at the lognormal's ~p95.
      double x_min = std::exp(p.mu + 1.64 * p.sigma);
      v = rng.pareto(std::max(1.0, x_min), config.superuser_alpha);
    } else {
      v = rng.lognormal(p.mu, p.sigma);
    }
    v = std::clamp(v, 1.0, static_cast<double>(config.max_records));
    counts.push_back(static_cast<std::uint32_t>(std::llround(v)));
  }
  return counts;
}

}  // namespace flint::data
