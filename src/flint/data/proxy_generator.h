// Proxy data generator and data catalog (paper §3.3).
//
// The generator turns a centralized dataset into a per-device federated
// proxy, computes FL heterogeneity metadata, and registers the result in the
// data catalog under a version. For populations too large to materialize it
// generates client-quantity profiles (record counts only), which is all the
// system-metric simulations need.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "flint/data/client_dataset.h"
#include "flint/data/dataset_stats.h"
#include "flint/data/partitioner.h"
#include "flint/util/rng.h"

namespace flint::data {

/// How a proxy is partitioned into clients.
enum class PartitionStrategy {
  kNatural,    ///< group by an existing obfuscated client identifier
  kDirichlet,  ///< synthetic label/quantity skew (identifier discarded)
};

/// Proxy generation request.
struct ProxyConfig {
  std::string name = "proxy";
  PartitionStrategy strategy = PartitionStrategy::kNatural;
  DirichletPartitionConfig dirichlet;   ///< used by kDirichlet
  double client_downsample = 1.0;       ///< client-level keep fraction
  int lookback_days = 0;                ///< carried into the metadata
};

/// A versioned catalog entry: the proxy plus its FL metadata.
struct ProxyEntry {
  int version = 1;
  ProxyConfig config;
  std::shared_ptr<const FederatedDataset> dataset;
  DatasetStats stats;
};

/// Versioned store of proxy datasets ("the tool stores it back to the data
/// catalog, adding FL-specific metadata"). Supports multiple synthetic-split
/// versions per name so modelers can sweep heterogeneity.
class DataCatalog {
 public:
  /// Register a new version of `name`; returns the assigned version number.
  int put(const std::string& name, ProxyEntry entry);

  /// Latest version, or nullopt.
  std::optional<ProxyEntry> latest(const std::string& name) const;

  /// Specific version, or nullopt.
  std::optional<ProxyEntry> get(const std::string& name, int version) const;

  /// Number of versions registered under `name`.
  std::size_t version_count(const std::string& name) const;

  std::vector<std::string> names() const;

 private:
  std::map<std::string, std::vector<ProxyEntry>> entries_;
};

/// Generates federated proxies from centralized records and registers them.
class ProxyGenerator {
 public:
  explicit ProxyGenerator(DataCatalog& catalog) : catalog_(&catalog) {}

  /// Build a proxy according to `config`. For kNatural, `client_key_of(i)`
  /// must return record i's client field; for kDirichlet it may be null.
  /// Returns the registered entry (dataset + stats + version).
  ProxyEntry generate(const std::vector<ml::Example>& records, const ProxyConfig& config,
                      const std::function<std::uint64_t(std::size_t)>& client_key_of,
                      util::Rng& rng);

 private:
  DataCatalog* catalog_;
};

/// Parameters for a counts-only client quantity profile (heavy-tailed
/// lognormal body with an optional Pareto superuser tail and a hard cap).
struct QuantityProfileConfig {
  std::uint64_t population = 1000;
  double mean_records = 100.0;
  double std_records = 300.0;
  std::uint32_t max_records = 100000;  ///< hard cap (paper's observed max)
  double superuser_fraction = 0.0;     ///< fraction drawn from the Pareto tail
  double superuser_alpha = 1.2;        ///< Pareto exponent of the tail
};

/// Per-client record counts (each >= 1) under the profile. Deterministic
/// given the rng state; memory is O(population) 32-bit counts so Table 2's
/// 16.4M-client dataset fits in ~66 MB.
std::vector<std::uint32_t> sample_quantity_profile(const QuantityProfileConfig& config,
                                                   util::Rng& rng);

}  // namespace flint::data
