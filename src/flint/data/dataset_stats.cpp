#include "flint/data/dataset_stats.h"

#include <algorithm>
#include <sstream>

#include "flint/util/check.h"
#include "flint/util/stats.h"

namespace flint::data {

std::string DatasetStats::to_string() const {
  std::ostringstream os;
  os << "DatasetStats{" << name << ": clients=" << client_population
     << ", max=" << max_records << ", avg=" << avg_records << ", std=" << std_records
     << ", label_ratio=" << label_ratio << ", lookback_days=" << lookback_days << "}";
  return os.str();
}

DatasetStats compute_stats(const FederatedDataset& dataset, const std::string& name,
                           int lookback_days) {
  DatasetStats s;
  s.name = name;
  s.lookback_days = lookback_days;
  s.client_population = dataset.client_count();
  util::RunningStats quantity;
  std::uint64_t positives = 0;
  std::uint64_t total = 0;
  for (const auto& c : dataset.clients()) {
    quantity.add(static_cast<double>(c.size()));
    for (const auto& e : c.examples) {
      total += 1;
      if (e.label > 0.5f) positives += 1;
    }
  }
  s.max_records = static_cast<std::uint64_t>(quantity.max());
  s.avg_records = quantity.mean();
  s.std_records = quantity.stddev();
  s.label_ratio = total == 0 ? 0.0 : static_cast<double>(positives) / static_cast<double>(total);
  return s;
}

DatasetStats compute_stats_from_counts(const std::vector<std::uint32_t>& counts,
                                       double label_ratio, const std::string& name,
                                       int lookback_days) {
  FLINT_CHECK(!counts.empty());
  FLINT_CHECK(label_ratio >= 0.0 && label_ratio <= 1.0);
  DatasetStats s;
  s.name = name;
  s.lookback_days = lookback_days;
  s.client_population = counts.size();
  util::RunningStats quantity;
  for (std::uint32_t c : counts) quantity.add(static_cast<double>(c));
  s.max_records = static_cast<std::uint64_t>(quantity.max());
  s.avg_records = quantity.mean();
  s.std_records = quantity.stddev();
  s.label_ratio = label_ratio;
  return s;
}

}  // namespace flint::data
