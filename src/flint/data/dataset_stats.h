// FL-specific dataset metadata (Table 2 of the paper): the proxy generator
// computes these characteristics and stores them with the dataset so
// modelers understand inter-client heterogeneity before running experiments.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "flint/data/client_dataset.h"

namespace flint::data {

/// Per-dataset heterogeneity metadata (the Table 2 row schema).
struct DatasetStats {
  std::string name;
  std::uint64_t client_population = 0;
  std::uint64_t max_records = 0;
  double avg_records = 0.0;
  double std_records = 0.0;
  double label_ratio = 0.0;  ///< fraction of positive primary labels
  int lookback_days = 0;     ///< collection window (carried from config)

  std::string to_string() const;
};

/// Compute stats from a materialized federated dataset.
DatasetStats compute_stats(const FederatedDataset& dataset, const std::string& name,
                           int lookback_days = 0);

/// Compute stats from a client-quantity profile (per-client record counts
/// plus a global label ratio). Used for populations too large to
/// materialize — Table 2's Dataset C has 16.4M clients.
DatasetStats compute_stats_from_counts(const std::vector<std::uint32_t>& counts,
                                       double label_ratio, const std::string& name,
                                       int lookback_days = 0);

}  // namespace flint::data
