#include "flint/data/partitioner.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "flint/util/check.h"

namespace flint::data {

FederatedDataset partition_natural(const std::vector<ml::Example>& records,
                                   const std::function<std::uint64_t(std::size_t)>& key_of) {
  FederatedDataset out;
  std::unordered_map<std::uint64_t, ClientId> dense_ids;
  for (std::size_t i = 0; i < records.size(); ++i) {
    std::uint64_t key = key_of(i);
    auto [it, inserted] = dense_ids.emplace(key, dense_ids.size());
    out.append(it->second, {records[i]});
  }
  return out;
}

FederatedDataset partition_dirichlet(const std::vector<ml::Example>& records,
                                     const DirichletPartitionConfig& config, util::Rng& rng) {
  FLINT_CHECK_GT(config.clients, std::size_t{0});
  FLINT_CHECK_GE(config.num_classes, std::size_t{1});
  FLINT_CHECK_FINITE(config.quantity_alpha);
  FLINT_CHECK_GT(config.quantity_alpha, 0.0);
  FLINT_CHECK_FINITE(config.label_alpha);
  FLINT_CHECK_GT(config.label_alpha, 0.0);
  FLINT_CHECK(!records.empty());

  // Quantity shares: how much of the corpus each client receives.
  std::vector<double> quantity = rng.dirichlet(config.clients, config.quantity_alpha);

  // Per-class affinity over clients: class c's records spread across clients
  // following Dirichlet(label_alpha), modulated by quantity share so both
  // skews compose.
  std::vector<std::vector<double>> class_affinity(config.num_classes);
  for (auto& aff : class_affinity) {
    aff = rng.dirichlet(config.clients, config.label_alpha);
    for (std::size_t k = 0; k < config.clients; ++k) aff[k] *= quantity[k];
    // Degenerate guard: if modulation zeroed everything (possible with tiny
    // alphas), fall back to the raw quantity shares.
    double sum = 0.0;
    for (double v : aff) sum += v;
    if (sum <= 0.0) aff = quantity;
  }

  FederatedDataset out;
  for (std::size_t i = 0; i < records.size(); ++i) {
    auto cls = static_cast<std::size_t>(std::llround(records[i].label));
    cls = std::min(cls, config.num_classes - 1);
    ClientId client = rng.categorical(class_affinity[cls]);
    out.append(client, {records[i]});
  }
  return out;
}

FederatedDataset downsample_clients(const FederatedDataset& dataset, double keep_fraction,
                                    util::Rng& rng) {
  FLINT_CHECK_PROB(keep_fraction);
  FLINT_CHECK_GT(keep_fraction, 0.0);
  FederatedDataset out;
  for (const auto& c : dataset.clients())
    if (rng.bernoulli(keep_fraction)) out.add_client(c);
  return out;
}

}  // namespace flint::data
