// Synthetic federated workloads standing in for the paper's three
// business-critical case studies (§4): advertising, messaging, and search.
//
// We cannot ship LinkedIn's proprietary datasets, so each generator produces
// a ground-truth model plus per-client heterogeneity (feature shift, label
// skew, lognormal quantity skew) matched to the aggregate statistics the
// paper publishes (Table 2). FL convergence behaviour under heterogeneity is
// driven by those statistics, which is what these benchmarks exercise.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "flint/data/client_dataset.h"
#include "flint/ml/model.h"
#include "flint/util/rng.h"

namespace flint::util {
class ThreadPool;
}

namespace flint::data {

/// Case-study domain.
enum class Domain { kAds, kMessaging, kSearch };

const char* domain_name(Domain domain);

/// Which loss a task trains with.
enum class LossKind { kBinaryCrossEntropy, kPairwiseRanking };

/// Generator parameters. Defaults give a laptop-scale workload that
/// converges in seconds; benches scale `clients` up.
struct SyntheticTaskConfig {
  Domain domain = Domain::kAds;
  std::size_t clients = 1000;
  double mean_records = 30.0;        ///< lognormal quantity skew
  double std_records = 60.0;
  std::uint32_t max_records = 2000;
  double label_ratio = 0.28;         ///< target positive fraction (BCE tasks)
  /// Client heterogeneity in [0, ~2]: 0 = IID clients, larger = stronger
  /// per-client concept and covariate shift.
  double heterogeneity = 0.5;
  std::size_t dense_dim = 16;        ///< ads/search feature width
  std::size_t vocab = 500;           ///< messaging token vocabulary
  std::size_t tokens_per_example = 12;
  std::size_t candidates_per_group = 8;  ///< search ranking group size
  std::size_t test_examples = 4000;  ///< held-out, drawn from fresh clients
};

/// A ready-to-train federated task: data + model factory + evaluation.
struct FederatedTask {
  SyntheticTaskConfig config;
  FederatedDataset train;
  std::vector<ml::Example> test;

  /// Architecture appropriate for the domain, freshly initialized.
  std::unique_ptr<ml::Model> make_model(util::Rng& rng) const;

  /// Loss the domain trains with.
  LossKind loss_kind() const;

  /// Dense feature width to use when batching examples (0 for messaging).
  std::size_t batch_dense_dim() const;

  /// Offline metric on the held-out test set: AUPR for ads/messaging
  /// (the paper's metric), mean NDCG@10 over groups for search.
  double evaluate(ml::Model& model) const;

  /// "AUPR" or "NDCG@10".
  const char* metric_name() const;
};

/// Generate a task; deterministic given rng state.
FederatedTask make_synthetic_task(const SyntheticTaskConfig& config, util::Rng& rng);

/// Evaluate an arbitrary example set with the task's domain metric. With a
/// pool, shards fan across its workers (each scoring a cloned model); shard
/// boundaries and the reduction order are fixed regardless of thread count,
/// so the result is bit-identical whether `pool` is null, small, or large.
double evaluate_examples(ml::Model& model, const std::vector<ml::Example>& examples,
                         Domain domain, std::size_t dense_dim,
                         util::ThreadPool* pool = nullptr);

}  // namespace flint::data
