// Partitioning strategies that turn a centralized dataset into a federated
// proxy (the paper's §3.3). Natural partitioning uses an obfuscated member /
// device identifier; when that identifier must be discarded for privacy,
// synthetic Dirichlet partitioning injects label and quantity skew.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "flint/data/client_dataset.h"
#include "flint/util/rng.h"

namespace flint::data {

/// Partition by an existing per-record client key. `key_of` extracts the
/// client field (e.g. obfuscated member id) from a record index; records with
/// the same key land on the same client. Keys are re-mapped to dense integer
/// ids for further anonymization (§4.1: "map each unique id to an integer").
FederatedDataset partition_natural(const std::vector<ml::Example>& records,
                                   const std::function<std::uint64_t(std::size_t)>& key_of);

/// Configuration for synthetic Dirichlet partitioning (Li et al., 2022).
struct DirichletPartitionConfig {
  std::size_t clients = 100;
  /// Label-skew concentration: small alpha -> each client's label mix is
  /// dominated by one class; large alpha -> IID label mix.
  double label_alpha = 0.5;
  /// Quantity-skew concentration: small alpha -> few clients hold most data.
  double quantity_alpha = 2.0;
  /// Binary-label datasets have 2 classes; multiclass supported via labels
  /// rounded to the nearest class index.
  std::size_t num_classes = 2;
};

/// Dirichlet synthetic partitioning: client quantity shares drawn from
/// Dirichlet(quantity_alpha), per-class client affinities from
/// Dirichlet(label_alpha). Every input record is assigned to exactly one
/// client (conservation is property-tested).
FederatedDataset partition_dirichlet(const std::vector<ml::Example>& records,
                                     const DirichletPartitionConfig& config, util::Rng& rng);

/// Client-level down-sampling: keep each client independently with
/// probability `keep_fraction` ("heavily down-sampled on a client level",
/// Table 2). Preserves within-client quantity and label skew.
FederatedDataset downsample_clients(const FederatedDataset& dataset, double keep_fraction,
                                    util::Rng& rng);

}  // namespace flint::data
