// Federated dataset containers. A FederatedDataset maps clients to their
// local examples; ExecutorPartitioning groups clients into per-executor
// partitions (the paper's §3.4 scalability trick: one partition file per
// executor rather than one file per client).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "flint/ml/batch.h"

namespace flint::data {

using ClientId = std::uint64_t;

/// One client's local data.
struct ClientDataset {
  ClientId client_id = 0;
  std::vector<ml::Example> examples;

  std::size_t size() const { return examples.size(); }
};

/// In-memory federated dataset: a set of clients with local examples.
/// Clients keep insertion order (stable iteration for determinism) with an
/// id index for O(1) lookup.
class FederatedDataset {
 public:
  FederatedDataset() = default;

  /// Add a client. Duplicate ids are an error (merge first).
  void add_client(ClientDataset client);

  /// Append examples to an existing client or create it.
  void append(ClientId id, std::vector<ml::Example> examples);

  std::size_t client_count() const { return clients_.size(); }
  std::size_t example_count() const;

  bool contains(ClientId id) const { return index_.count(id) > 0; }
  const ClientDataset& client(ClientId id) const;
  const ClientDataset& client_at(std::size_t pos) const;

  const std::vector<ClientDataset>& clients() const { return clients_; }

  /// All client ids in insertion order.
  std::vector<ClientId> client_ids() const;

  /// Flatten every client's examples into one centralized dataset (the
  /// baseline training path).
  std::vector<ml::Example> to_centralized() const;

 private:
  std::vector<ClientDataset> clients_;
  std::unordered_map<ClientId, std::size_t> index_;
};

/// Assignment of clients to executor partitions.
struct ExecutorPartitioning {
  /// partition[p] = client ids owned by executor p.
  std::vector<std::vector<ClientId>> partitions;

  std::size_t executor_count() const { return partitions.size(); }

  /// The executor owning a client, or -1 if unassigned.
  int executor_of(ClientId id) const;
};

/// Round-robin clients across `executors` partitions (the paper partitions
/// "for 20 workers by client id in a round-robin fashion").
ExecutorPartitioning partition_round_robin(const FederatedDataset& dataset,
                                           std::size_t executors);

/// Greedy balanced partitioning by example count: each client goes to the
/// currently lightest executor. Reduces straggler partitions under heavy
/// quantity skew.
ExecutorPartitioning partition_balanced(const FederatedDataset& dataset,
                                        std::size_t executors);

}  // namespace flint::data
