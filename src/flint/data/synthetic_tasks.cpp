#include "flint/data/synthetic_tasks.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <future>
#include <map>

#include "flint/data/proxy_generator.h"
#include "flint/ml/loss.h"
#include "flint/ml/metrics.h"
#include "flint/util/check.h"
#include "flint/util/thread_pool.h"

namespace flint::data {

namespace {

/// Bias that makes E[sigmoid(N(b, s^2))] approximately equal `ratio`
/// (probit approximation to the logistic-normal integral).
double bias_for_ratio(double ratio, double logit_std) {
  FLINT_CHECK(ratio > 0.0 && ratio < 1.0);
  double logit = std::log(ratio / (1.0 - ratio));
  return logit * std::sqrt(1.0 + M_PI * logit_std * logit_std / 8.0);
}

/// Shared ground truth for one task instance.
struct GroundTruth {
  std::vector<float> weights;  ///< dense-feature or token weights
  double bias = 0.0;
};

/// Strength of the abusive-token signal in messaging logits. Larger values
/// make the task more learnable (clearer separation between spammy and
/// benign token mixes).
constexpr double kMessagingSignalScale = 5.0;

/// The per-example logit standard deviation differs by domain: ads logits
/// are w.x with x ~ N(0, I) (std = |w|), while messaging logits are
/// 2 * mean(w_token) over ~tokens_per_example draws (std = 2/sqrt(len)).
/// Using the wrong geometry miscalibrates the bias by orders of magnitude.
double logit_std_for(const SyntheticTaskConfig& cfg, double weight_norm) {
  if (cfg.domain == Domain::kMessaging)
    return kMessagingSignalScale /
           std::sqrt(std::max<double>(1.0, static_cast<double>(cfg.tokens_per_example)));
  return weight_norm;
}

GroundTruth make_ground_truth(const SyntheticTaskConfig& cfg, util::Rng& rng) {
  GroundTruth gt;
  gt.weights.resize(cfg.domain == Domain::kMessaging ? cfg.vocab : cfg.dense_dim);
  double norm2 = 0.0;
  for (float& w : gt.weights) {
    w = static_cast<float>(rng.normal(0.0, 1.0));
    norm2 += static_cast<double>(w) * w;
  }
  gt.bias = bias_for_ratio(cfg.label_ratio, logit_std_for(cfg, std::sqrt(norm2)));
  return gt;
}

/// Per-client perturbation of the ground truth (concept shift) plus a
/// covariate shift vector.
struct ClientContext {
  std::vector<float> weights;
  std::vector<float> feature_shift;
};

ClientContext make_client_context(const GroundTruth& gt, double heterogeneity,
                                  std::size_t feature_dim, util::Rng& rng) {
  ClientContext ctx;
  ctx.weights = gt.weights;
  for (float& w : ctx.weights)
    w += static_cast<float>(rng.normal(0.0, heterogeneity * 0.5));
  ctx.feature_shift.resize(feature_dim);
  for (float& s : ctx.feature_shift)
    s = static_cast<float>(rng.normal(0.0, heterogeneity * 0.3));
  return ctx;
}

ml::Example make_ads_example(const GroundTruth& gt, const ClientContext& ctx,
                             const SyntheticTaskConfig& cfg, util::Rng& rng) {
  ml::Example e;
  e.dense.resize(cfg.dense_dim);
  double logit = gt.bias;
  for (std::size_t j = 0; j < cfg.dense_dim; ++j) {
    e.dense[j] = static_cast<float>(rng.normal(0.0, 1.0)) + ctx.feature_shift[j];
    logit += static_cast<double>(e.dense[j]) * ctx.weights[j];
  }
  e.label = rng.bernoulli(ml::stable_sigmoid(static_cast<float>(logit))) ? 1.0f : 0.0f;
  return e;
}

ml::Example make_messaging_example(const GroundTruth& gt, const ClientContext& ctx,
                                   const SyntheticTaskConfig& cfg, util::Rng& rng) {
  // Tokens follow a client-tilted Zipf over the vocabulary; the label is a
  // noisy function of the mean token weight (abusive-token signal).
  ml::Example e;
  std::size_t len = 1 + static_cast<std::size_t>(rng.poisson(
                            static_cast<double>(cfg.tokens_per_example) - 1.0));
  e.tokens.reserve(len);
  double logit_sum = 0.0;
  for (std::size_t t = 0; t < len; ++t) {
    std::size_t rank = rng.zipf(cfg.vocab, 1.1);
    // Client tilt: shift the rank by a client-specific offset so different
    // clients favour different token regions (vocabulary heterogeneity).
    auto offset = static_cast<std::size_t>(
        std::llround(std::abs(ctx.feature_shift[rank % ctx.feature_shift.size()]) * 50.0));
    std::size_t token = (rank + offset) % cfg.vocab;
    e.tokens.push_back(static_cast<std::int32_t>(token));
    logit_sum += ctx.weights[token];
  }
  double logit =
      gt.bias + kMessagingSignalScale * logit_sum / static_cast<double>(len);
  e.label = rng.bernoulli(ml::stable_sigmoid(static_cast<float>(logit))) ? 1.0f : 0.0f;
  return e;
}

/// One ranking group: `candidates_per_group` examples sharing a group id,
/// with graded relevance from the client's true preference.
std::vector<ml::Example> make_search_group(const GroundTruth& gt, const ClientContext& ctx,
                                           const SyntheticTaskConfig& cfg, std::int32_t group,
                                           util::Rng& rng) {
  std::vector<ml::Example> out;
  std::vector<double> scores;
  out.reserve(cfg.candidates_per_group);
  for (std::size_t c = 0; c < cfg.candidates_per_group; ++c) {
    ml::Example e;
    e.group = group;
    e.dense.resize(cfg.dense_dim);
    double s = 0.0;
    for (std::size_t j = 0; j < cfg.dense_dim; ++j) {
      e.dense[j] = static_cast<float>(rng.normal(0.0, 1.0)) + ctx.feature_shift[j];
      s += static_cast<double>(e.dense[j]) * ctx.weights[j];
    }
    s += rng.normal(0.0, 0.5);  // judgement noise
    scores.push_back(s);
    out.push_back(std::move(e));
  }
  (void)gt;
  // Grade: best candidate 2, next two 1, rest 0 (typical click-grade shape).
  std::vector<std::size_t> order(out.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return scores[a] > scores[b]; });
  for (std::size_t r = 0; r < order.size(); ++r)
    out[order[r]].label = r == 0 ? 2.0f : (r <= 2 ? 1.0f : 0.0f);
  return out;
}

std::size_t shift_dim(const SyntheticTaskConfig& cfg) {
  return cfg.domain == Domain::kMessaging ? 64 : cfg.dense_dim;
}

std::vector<ml::Example> make_client_examples(const GroundTruth& gt, const ClientContext& ctx,
                                              const SyntheticTaskConfig& cfg, std::size_t count,
                                              std::int32_t group_base, util::Rng& rng) {
  std::vector<ml::Example> out;
  out.reserve(count);
  switch (cfg.domain) {
    case Domain::kAds:
      for (std::size_t i = 0; i < count; ++i) out.push_back(make_ads_example(gt, ctx, cfg, rng));
      break;
    case Domain::kMessaging:
      for (std::size_t i = 0; i < count; ++i)
        out.push_back(make_messaging_example(gt, ctx, cfg, rng));
      break;
    case Domain::kSearch: {
      std::size_t groups = std::max<std::size_t>(1, count / cfg.candidates_per_group);
      for (std::size_t g = 0; g < groups; ++g) {
        auto grp = make_search_group(gt, ctx, cfg, group_base + static_cast<std::int32_t>(g), rng);
        out.insert(out.end(), grp.begin(), grp.end());
      }
      break;
    }
  }
  return out;
}

}  // namespace

const char* domain_name(Domain domain) {
  switch (domain) {
    case Domain::kAds: return "ads";
    case Domain::kMessaging: return "messaging";
    case Domain::kSearch: return "search";
  }
  return "?";
}

std::unique_ptr<ml::Model> FederatedTask::make_model(util::Rng& rng) const {
  ml::FeedForwardConfig mc;
  switch (config.domain) {
    case Domain::kAds:
      mc.dense_dim = config.dense_dim;
      mc.hidden = {32, 16};
      break;
    case Domain::kMessaging:
      mc.front_end = ml::FrontEnd::kEmbedding;
      mc.vocab = config.vocab;
      mc.embed_dim = 16;
      mc.hidden = {16};
      break;
    case Domain::kSearch:
      mc.dense_dim = config.dense_dim;
      mc.hidden = {32};
      break;
  }
  auto model = std::make_unique<ml::FeedForwardModel>(mc);
  model->init(rng);
  return model;
}

LossKind FederatedTask::loss_kind() const {
  return config.domain == Domain::kSearch ? LossKind::kPairwiseRanking
                                          : LossKind::kBinaryCrossEntropy;
}

std::size_t FederatedTask::batch_dense_dim() const {
  return config.domain == Domain::kMessaging ? 0 : config.dense_dim;
}

const char* FederatedTask::metric_name() const {
  return config.domain == Domain::kSearch ? "NDCG@10" : "AUPR";
}

double FederatedTask::evaluate(ml::Model& model) const {
  return evaluate_examples(model, test, config.domain, batch_dense_dim());
}

namespace {

// Run `shard(i)` for i in [0, shards): inline when `pool` is null, fanned
// across the pool otherwise. Shard boundaries are the caller's; they must not
// depend on the pool size or the evaluation stops being thread-invariant.
void run_shards(util::ThreadPool* pool, std::size_t shards,
                const std::function<void(std::size_t)>& shard) {
  if (pool == nullptr) {
    for (std::size_t i = 0; i < shards; ++i) shard(i);
    return;
  }
  std::vector<std::future<void>> pending;
  pending.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i)
    pending.push_back(pool->submit([&shard, i] { shard(i); }));
  for (auto& f : pending) f.get();
}

}  // namespace

double evaluate_examples(ml::Model& model, const std::vector<ml::Example>& examples,
                         Domain domain, std::size_t dense_dim, util::ThreadPool* pool) {
  FLINT_CHECK(!examples.empty());
  // Each in-flight shard needs its own replica: forward() caches activation
  // state. Clones are made up front on the calling thread; the serial path
  // scores every shard on `model` itself.
  auto replica = [&]() -> std::unique_ptr<ml::Model> {
    return pool == nullptr ? nullptr : model.clone();
  };
  if (domain == Domain::kSearch) {
    // Group examples by ranking group id, score each group, mean NDCG@10.
    // Shards are fixed runs of whole groups (in ascending-gid order) with
    // per-shard partial sums combined in shard order, so the floating-point
    // reduction tree is identical at any thread count.
    std::map<std::int32_t, std::vector<ml::Example>> groups;
    for (const auto& e : examples) groups[e.group].push_back(e);
    std::vector<const std::vector<ml::Example>*> ordered;
    ordered.reserve(groups.size());
    for (auto& [gid, members] : groups) ordered.push_back(&members);
    constexpr std::size_t kGroupsPerShard = 64;
    std::size_t shards = (ordered.size() + kGroupsPerShard - 1) / kGroupsPerShard;
    std::vector<double> partial(shards, 0.0);
    run_shards(pool, shards, [&](std::size_t i) {
      std::unique_ptr<ml::Model> owned = replica();
      ml::Model& m = owned != nullptr ? *owned : model;
      std::size_t begin = i * kGroupsPerShard;
      std::size_t end = std::min(ordered.size(), begin + kGroupsPerShard);
      double sum = 0.0;
      std::vector<float> scores, labels;
      for (std::size_t g = begin; g < end; ++g) {
        const auto& members = *ordered[g];
        ml::Batch batch = ml::Batch::from_examples(members, dense_dim);
        ml::Tensor logits = m.forward(batch);
        scores.clear();
        labels.clear();
        for (std::size_t j = 0; j < members.size(); ++j) {
          scores.push_back(logits.at(j, 0));
          labels.push_back(members[j].label);
        }
        sum += ml::ndcg_at_k(scores, labels, 10);
      }
      partial[i] = sum;
    });
    double total = 0.0;
    for (double p : partial) total += p;
    return total / static_cast<double>(groups.size());
  }
  // Classification: score in batches, AUPR over the full set. Shards are
  // fixed batch-aligned example ranges writing disjoint slices of the score
  // vector, so the assembled vector (and the AUPR over it) never depends on
  // the thread count.
  constexpr std::size_t kBatch = 512;
  constexpr std::size_t kBatchesPerShard = 8;
  std::vector<float> scores(examples.size()), labels(examples.size());
  constexpr std::size_t kShardSpan = kBatch * kBatchesPerShard;
  std::size_t shards = (examples.size() + kShardSpan - 1) / kShardSpan;
  run_shards(pool, shards, [&](std::size_t i) {
    std::unique_ptr<ml::Model> owned = replica();
    ml::Model& m = owned != nullptr ? *owned : model;
    std::size_t shard_end = std::min(examples.size(), (i + 1) * kShardSpan);
    for (std::size_t start = i * kShardSpan; start < shard_end; start += kBatch) {
      std::size_t end = std::min(shard_end, start + kBatch);
      std::span<const ml::Example> slice(&examples[start], end - start);
      ml::Batch batch = ml::Batch::from_examples(slice, dense_dim);
      ml::Tensor logits = m.forward(batch);
      for (std::size_t j = 0; j < slice.size(); ++j) {
        scores[start + j] = ml::stable_sigmoid(logits.at(j, 0));
        labels[start + j] = slice[j].label;
      }
    }
  });
  return ml::average_precision(scores, labels);
}

FederatedTask make_synthetic_task(const SyntheticTaskConfig& config, util::Rng& rng) {
  FLINT_CHECK(config.clients > 0);
  FederatedTask task;
  task.config = config;

  GroundTruth gt = make_ground_truth(config, rng);

  QuantityProfileConfig qp;
  qp.population = config.clients;
  qp.mean_records = config.mean_records;
  qp.std_records = config.std_records;
  qp.max_records = config.max_records;
  std::vector<std::uint32_t> counts = sample_quantity_profile(qp, rng);

  std::int32_t group_base = 0;
  for (std::size_t k = 0; k < config.clients; ++k) {
    ClientContext ctx = make_client_context(gt, config.heterogeneity, shift_dim(config), rng);
    auto examples = make_client_examples(gt, ctx, config, counts[k], group_base, rng);
    group_base += static_cast<std::int32_t>(examples.size());
    task.train.add_client({static_cast<ClientId>(k), std::move(examples)});
  }

  // Held-out test set: fresh clients from the same population, so the metric
  // reflects the global (cross-client) distribution.
  std::size_t made = 0;
  while (made < config.test_examples) {
    ClientContext ctx = make_client_context(gt, config.heterogeneity, shift_dim(config), rng);
    std::size_t want = std::min<std::size_t>(config.test_examples - made, 40);
    auto examples = make_client_examples(gt, ctx, config, want, group_base, rng);
    group_base += static_cast<std::int32_t>(examples.size());
    made += examples.size();
    task.test.insert(task.test.end(), std::make_move_iterator(examples.begin()),
                     std::make_move_iterator(examples.end()));
  }
  return task;
}

}  // namespace flint::data
