#include "flint/data/client_dataset.h"

#include <algorithm>

#include "flint/util/check.h"

namespace flint::data {

void FederatedDataset::add_client(ClientDataset client) {
  FLINT_CHECK_MSG(index_.count(client.client_id) == 0,
                  "duplicate client id " << client.client_id);
  index_[client.client_id] = clients_.size();
  clients_.push_back(std::move(client));
}

void FederatedDataset::append(ClientId id, std::vector<ml::Example> examples) {
  auto it = index_.find(id);
  if (it == index_.end()) {
    add_client({id, std::move(examples)});
    return;
  }
  auto& dst = clients_[it->second].examples;
  dst.insert(dst.end(), std::make_move_iterator(examples.begin()),
             std::make_move_iterator(examples.end()));
}

std::size_t FederatedDataset::example_count() const {
  std::size_t n = 0;
  for (const auto& c : clients_) n += c.size();
  return n;
}

const ClientDataset& FederatedDataset::client(ClientId id) const {
  auto it = index_.find(id);
  FLINT_CHECK_MSG(it != index_.end(), "unknown client id " << id);
  return clients_[it->second];
}

const ClientDataset& FederatedDataset::client_at(std::size_t pos) const {
  FLINT_CHECK(pos < clients_.size());
  return clients_[pos];
}

std::vector<ClientId> FederatedDataset::client_ids() const {
  std::vector<ClientId> ids;
  ids.reserve(clients_.size());
  for (const auto& c : clients_) ids.push_back(c.client_id);
  return ids;
}

std::vector<ml::Example> FederatedDataset::to_centralized() const {
  std::vector<ml::Example> out;
  out.reserve(example_count());
  for (const auto& c : clients_)
    out.insert(out.end(), c.examples.begin(), c.examples.end());
  return out;
}

int ExecutorPartitioning::executor_of(ClientId id) const {
  for (std::size_t p = 0; p < partitions.size(); ++p)
    for (ClientId c : partitions[p])
      if (c == id) return static_cast<int>(p);
  return -1;
}

ExecutorPartitioning partition_round_robin(const FederatedDataset& dataset,
                                           std::size_t executors) {
  FLINT_CHECK(executors > 0);
  ExecutorPartitioning out;
  out.partitions.resize(executors);
  std::size_t i = 0;
  for (const auto& c : dataset.clients()) out.partitions[i++ % executors].push_back(c.client_id);
  return out;
}

ExecutorPartitioning partition_balanced(const FederatedDataset& dataset, std::size_t executors) {
  FLINT_CHECK(executors > 0);
  // Sort clients by descending size, then greedily assign to the lightest
  // partition (LPT scheduling) for a 4/3-approximate balance.
  std::vector<std::size_t> order(dataset.client_count());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return dataset.client_at(a).size() > dataset.client_at(b).size();
  });
  ExecutorPartitioning out;
  out.partitions.resize(executors);
  std::vector<std::size_t> load(executors, 0);
  for (std::size_t pos : order) {
    std::size_t lightest =
        static_cast<std::size_t>(std::min_element(load.begin(), load.end()) - load.begin());
    out.partitions[lightest].push_back(dataset.client_at(pos).client_id);
    load[lightest] += dataset.client_at(pos).size();
  }
  return out;
}

}  // namespace flint::data
