// On-disk proxy partitions (paper §3.4 scalability): "the proxy data
// generator outputs one partition per *executor* rather than one file per FL
// client; each partition contains a set of unique clients for an executor to
// load into memory ... this strategy prevents an explosion of namespaces on
// the pipeline storage [and] storing many clients' records together in a
// file improves the compression ratio."
//
// Format (little-endian): magic "FLPT", u32 client_count, then per client:
// varint client_id, varint example_count, and per example a varint dense
// count + raw floats, varint token count + varint-delta tokens, float label,
// float label2, varint group. Varint/delta coding is what makes grouped
// storage compress well.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "flint/data/client_dataset.h"

namespace flint::data {

/// Write one partition file containing `clients`. Returns bytes written.
std::uint64_t write_partition_file(const std::string& path,
                                   const std::vector<ClientDataset>& clients);

/// Read a partition file back.
std::vector<ClientDataset> read_partition_file(const std::string& path);

/// Write the whole dataset as one file per executor under `dir`
/// ("part_<k>.flpt"). Returns per-file byte counts.
std::vector<std::uint64_t> write_partitions(const FederatedDataset& dataset,
                                            const ExecutorPartitioning& partitioning,
                                            const std::string& dir);

/// Load executor `k`'s partition written by write_partitions.
std::vector<ClientDataset> read_partition(const std::string& dir, std::size_t executor);

/// Bytes a naive one-file-per-client layout would need for the same data
/// (per-file metadata overhead included), for the §3.4 comparison.
std::uint64_t naive_per_client_bytes(const FederatedDataset& dataset,
                                     std::uint64_t per_file_overhead = 512);

}  // namespace flint::data
