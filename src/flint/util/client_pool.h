// Fixed-chunk struct-of-arrays building blocks for population-scale
// per-client state (DESIGN.md §17). A KeyInterner maps sparse 64-bit client
// ids to dense u32 slots; ChunkedColumn<T> stores one attribute per slot in
// fixed-size chunks so growth never reallocates (and thus never spikes RSS
// with a 2x live+copy window the way std::vector growth does). Together they
// bound peak memory by the number of *distinct clients touched*, not by the
// population size or by hash-map load-factor overhead.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "flint/util/check.h"
#include "flint/util/rng.h"

namespace flint::util {

/// Append-only column of T in fixed-size chunks. operator[] is O(1); push_back
/// allocates exactly one chunk when the last one fills. Iteration order is
/// insertion order (dense slot order), which is what keeps pooled consumers
/// deterministic without sorting.
template <typename T, std::size_t kChunk = 4096>
class ChunkedColumn {
 public:
  static_assert(kChunk > 0);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void push_back(const T& value) {
    if (size_ == chunks_.size() * kChunk) {
      chunks_.push_back(std::make_unique<std::vector<T>>());
      chunks_.back()->reserve(kChunk);  // one allocation per chunk, ever
    }
    chunks_.back()->push_back(value);
    ++size_;
  }

  T& operator[](std::size_t i) {
    FLINT_DCHECK(i < size_);
    return (*chunks_[i / kChunk])[i % kChunk];
  }
  const T& operator[](std::size_t i) const {
    FLINT_DCHECK(i < size_);
    return (*chunks_[i / kChunk])[i % kChunk];
  }

 private:
  std::vector<std::unique_ptr<std::vector<T>>> chunks_;
  std::size_t size_ = 0;
};

/// Open-addressing map from sparse u64 keys to dense u32 slot ids, assigned
/// in first-intern order. Probe order uses splitmix64, so layout (and every
/// iteration a consumer derives from slot order) is a pure function of the
/// intern sequence — no pointer- or hash-seed-dependent behaviour.
class KeyInterner {
 public:
  KeyInterner() : slots_(kInitialSlots, kEmpty) {}

  std::size_t size() const { return keys_.size(); }

  /// Slot id for `key`, interning it if new.
  std::uint32_t intern(std::uint64_t key) {
    if (auto found = find(key)) return *found;
    if ((keys_.size() + 1) * 10 > slots_.size() * 7) grow();
    auto id = static_cast<std::uint32_t>(keys_.size());
    FLINT_CHECK_MSG(keys_.size() < kMaxKeys, "KeyInterner: > 2^32-2 distinct keys");
    keys_.push_back(key);
    place(key, id);
    return id;
  }

  /// Slot id for `key` if already interned.
  std::optional<std::uint32_t> find(std::uint64_t key) const {
    std::size_t mask = slots_.size() - 1;
    std::size_t i = static_cast<std::size_t>(splitmix64(key)) & mask;
    while (slots_[i] != kEmpty) {
      if (keys_[slots_[i]] == key) return slots_[i];
      i = (i + 1) & mask;
    }
    return std::nullopt;
  }

  /// The key interned at dense slot `id`.
  std::uint64_t key_at(std::uint32_t id) const {
    FLINT_DCHECK(id < keys_.size());
    return keys_[id];
  }

 private:
  static constexpr std::uint32_t kEmpty = 0xFFFFFFFFu;
  static constexpr std::size_t kInitialSlots = 64;  // power of two
  static constexpr std::size_t kMaxKeys = 0xFFFFFFFEull;

  void place(std::uint64_t key, std::uint32_t id) {
    std::size_t mask = slots_.size() - 1;
    std::size_t i = static_cast<std::size_t>(splitmix64(key)) & mask;
    while (slots_[i] != kEmpty) i = (i + 1) & mask;
    slots_[i] = id;
  }

  void grow() {
    std::vector<std::uint32_t> old = std::move(slots_);
    slots_.assign(old.size() * 2, kEmpty);
    for (std::uint32_t id = 0; id < keys_.size(); ++id) place(keys_[id], id);
  }

  std::vector<std::uint64_t> keys_;   ///< dense slot id -> key
  std::vector<std::uint32_t> slots_;  ///< open-addressed probe table
};

}  // namespace flint::util
