// Minimal CSV emission for experiment artifacts (figures are emitted as CSV
// series alongside the ASCII rendering so they can be re-plotted).
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace flint::util {

/// Streaming CSV writer with RFC-4180 quoting. Writes to any ostream the
/// caller owns; `CsvFile` below bundles an owned std::ofstream.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  void write_row(const std::vector<std::string>& cells);

  /// Quote a cell if it contains a comma, quote, or newline.
  static std::string escape(const std::string& cell);

 private:
  std::ostream* out_;
};

/// CSV file on disk; directory must already exist.
class CsvFile {
 public:
  explicit CsvFile(const std::string& path);

  bool ok() const { return static_cast<bool>(file_); }
  void write_row(const std::vector<std::string>& cells) { writer_.write_row(cells); }

 private:
  std::ofstream file_;
  CsvWriter writer_;
};

/// Parse one CSV line (handles quoted cells). Used by tests and by the
/// checkpoint store's index files.
std::vector<std::string> parse_csv_line(const std::string& line);

}  // namespace flint::util
