// Streaming and batch statistics used across FLINT's measurement tools.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace flint::util {

/// Welford online mean/variance with min/max tracking. O(1) memory, suitable
/// for the multi-million-client streams the proxy generator analyzes.
class RunningStats {
 public:
  void add(double x);

  /// Merge another accumulator (parallel reduction).
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ == 0 ? 0.0 : mean_; }
  /// Population variance; 0 for fewer than 2 samples.
  double variance() const;
  /// Sample (Bessel-corrected) variance; 0 for fewer than 2 samples.
  double sample_variance() const;
  double stddev() const;
  double sum() const { return n_ == 0 ? 0.0 : mean_ * static_cast<double>(n_); }
  double min() const { return n_ == 0 ? 0.0 : min_; }
  double max() const { return n_ == 0 ? 0.0 : max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exact percentile of a sample (linear interpolation between order
/// statistics). Copies and sorts; use for result reporting, not hot paths.
double percentile(std::vector<double> values, double p);

/// Median convenience wrapper.
double median(std::vector<double> values);

/// Five-number-style summary for report tables.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

Summary summarize(const std::vector<double>& values);

/// Parameters of the normal underlying a lognormal distribution.
struct LognormalParams {
  double mu = 0.0;
  double sigma = 1.0;
};

/// Solve lognormal (mu, sigma) from a target mean and standard deviation
/// (moment matching). stddev == 0 degenerates to a near-point mass.
LognormalParams lognormal_from_moments(double mean, double stddev);

}  // namespace flint::util
