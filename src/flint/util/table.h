// ASCII table rendering for bench harness output. Every bench binary prints
// the same rows the paper's tables report, using this formatter.
#pragma once

#include <string>
#include <vector>

namespace flint::util {

/// Column-aligned ASCII table. Cells are strings; numeric helpers format
/// consistently. Example:
///
///   Table t({"MODEL", "PARAMS", "TIME (s)"});
///   t.add_row({"A", Table::num(1510), Table::num(4.98, 2)});
///   std::cout << t.render();
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Format a number with `decimals` fraction digits (default: auto-trim).
  static std::string num(double v, int decimals = -1);
  /// Format an integer with thousands separators (e.g. 1,024,950).
  static std::string count(std::int64_t v);
  /// Format a percentage, e.g. pct(0.221) -> "22.1%".
  static std::string pct(double fraction, int decimals = 1);

  std::size_t row_count() const { return rows_.size(); }

  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Section banner used by benches: "== Table 3: ... ==".
std::string banner(const std::string& title);

}  // namespace flint::util
