// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) for integrity
// checking of FLINT's binary blobs. Checkpoints pair it with a length
// header so a torn or bit-flipped file is detected before any field is
// trusted — corruption must fail loudly, never deserialize into garbage.
#pragma once

#include <cstddef>
#include <cstdint>

namespace flint::util {

/// CRC-32 of `size` bytes at `data`. `seed` chains incremental computation:
/// crc32(b, n) == crc32(b + k, n - k, crc32(b, k)).
std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed = 0);

}  // namespace flint::util
