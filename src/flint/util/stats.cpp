#include "flint/util/stats.h"

#include <algorithm>
#include <cmath>

#include "flint/util/check.h"

namespace flint::util {

void RunningStats::add(double x) {
  ++n_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  double na = static_cast<double>(n_);
  double nb = static_cast<double>(other.n_);
  double delta = other.mean_ - mean_;
  double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double RunningStats::sample_variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(sample_variance()); }

double percentile(std::vector<double> values, double p) {
  FLINT_CHECK(!values.empty());
  FLINT_CHECK_FINITE(p);
  FLINT_CHECK_GE(p, 0.0);
  FLINT_CHECK_LE(p, 100.0);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  auto lo = static_cast<std::size_t>(rank);
  auto hi = std::min(lo + 1, values.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double median(std::vector<double> values) { return percentile(std::move(values), 50.0); }

LognormalParams lognormal_from_moments(double mean, double stddev) {
  FLINT_CHECK_FINITE(mean);
  FLINT_CHECK_GT(mean, 0.0);
  FLINT_CHECK_FINITE(stddev);
  FLINT_CHECK_GE(stddev, 0.0);
  LognormalParams p;
  // The real hazard is a near-zero coefficient of variation, not exact 0.0:
  // (stddev/mean)^2 underflows and log1p returns a denormal sigma. Treat any
  // ratio below 1e-9 as the degenerate point-mass case.
  if (stddev < mean * 1e-9) {
    p.mu = std::log(mean);
    p.sigma = 1e-9;
    return p;
  }
  double ratio2 = (stddev / mean) * (stddev / mean);
  p.sigma = std::sqrt(std::log1p(ratio2));
  p.mu = std::log(mean) - 0.5 * p.sigma * p.sigma;
  return p;
}

Summary summarize(const std::vector<double>& values) {
  Summary s;
  if (values.empty()) return s;
  RunningStats rs;
  for (double v : values) rs.add(v);
  s.count = rs.count();
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = rs.min();
  s.max = rs.max();
  s.p50 = percentile(values, 50.0);
  s.p90 = percentile(values, 90.0);
  s.p99 = percentile(values, 99.0);
  return s;
}

}  // namespace flint::util
