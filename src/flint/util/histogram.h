// Fixed-bin histograms and CCDF extraction for availability curves and
// client-quantity distributions (Figures 2 and 5 in the paper).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace flint::util {

/// Uniform-width histogram over [lo, hi). Values outside the range land in
/// saturating edge bins so no sample is silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, double weight = 1.0);

  std::size_t bin_count() const { return counts_.size(); }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  double count(std::size_t i) const { return counts_[i]; }
  double total() const { return total_; }

  /// Counts normalized so the max bin equals 1 (the paper's Figure 2 style).
  std::vector<double> normalized_to_peak() const;

  /// Counts normalized to sum to 1.
  std::vector<double> normalized_to_sum() const;

  /// Multi-line ASCII rendering for bench output.
  std::string render(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<double> counts_;
  double total_ = 0.0;
};

/// A point on a complementary CDF: fraction of samples > value.
struct CcdfPoint {
  double value = 0.0;
  double fraction = 0.0;
};

/// CCDF sampled at `points` log-spaced values across the sample range.
/// Useful for heavy-tailed client-quantity plots (Figure 5).
std::vector<CcdfPoint> log_ccdf(std::vector<double> values, std::size_t points = 20);

}  // namespace flint::util
