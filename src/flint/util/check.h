// Lightweight runtime contract checking for FLINT.
//
// FLINT_CHECK enforces preconditions / invariants that depend on runtime
// inputs (config files, generated data); violations throw flint::util::CheckError
// so callers can surface a useful message instead of crashing.
// FLINT_DCHECK compiles away in NDEBUG builds and guards internal invariants.
//
// The comparison forms (FLINT_CHECK_EQ/NE/LT/LE/GT/GE) evaluate each operand
// exactly once and report both values on failure, so a violated invariant in a
// long simulation run tells you *what* the clock/weight/shape actually was,
// not just that the comparison failed. FLINT_CHECK_FINITE and FLINT_CHECK_PROB
// cover the two numeric contracts FL code states most often: "this quantity is
// a real number" and "this quantity is a probability".
#pragma once

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <string>
#include <type_traits>

namespace flint::util {

/// Thrown when a FLINT_CHECK contract is violated.
class CheckError : public std::runtime_error {
 public:
  explicit CheckError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

/// Streams `v`, promoting character types to int so that std::uint8_t
/// operands print as numbers rather than control characters.
template <typename T>
void stream_operand(std::ostringstream& os, const T& v) {
  if constexpr (std::is_same_v<T, char> || std::is_same_v<T, signed char> ||
                std::is_same_v<T, unsigned char>) {
    os << static_cast<int>(v);
  } else if constexpr (std::is_same_v<T, bool>) {
    os << (v ? "true" : "false");
  } else {
    os << v;
  }
}

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream os;
  os << "FLINT_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

template <typename A, typename B>
[[noreturn]] void check_op_failed(const char* a_expr, const char* op, const char* b_expr,
                                  const A& a, const B& b, const char* file, int line) {
  std::ostringstream os;
  os << "operands: ";
  stream_operand(os, a);
  os << " " << op << " ";
  stream_operand(os, b);
  std::ostringstream expr;
  expr << a_expr << " " << op << " " << b_expr;
  check_failed(expr.str().c_str(), file, line, os.str());
}

template <typename T>
[[noreturn]] void check_finite_failed(const char* expr, const T& v, const char* file,
                                      int line) {
  std::ostringstream os;
  os << "value = ";
  stream_operand(os, v);
  std::ostringstream expr_os;
  expr_os << "isfinite(" << expr << ")";
  check_failed(expr_os.str().c_str(), file, line, os.str());
}

template <typename T>
[[noreturn]] void check_prob_failed(const char* expr, const T& v, const char* file, int line) {
  std::ostringstream os;
  os << "value = ";
  stream_operand(os, v);
  std::ostringstream expr_os;
  expr_os << "0 <= " << expr << " <= 1";
  check_failed(expr_os.str().c_str(), file, line, os.str());
}

}  // namespace detail
}  // namespace flint::util

#define FLINT_CHECK(cond)                                                        \
  do {                                                                           \
    if (!(cond)) ::flint::util::detail::check_failed(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define FLINT_CHECK_MSG(cond, msg)                                               \
  do {                                                                           \
    if (!(cond)) {                                                               \
      std::ostringstream flint_check_os_;                                        \
      flint_check_os_ << msg;                                                    \
      ::flint::util::detail::check_failed(#cond, __FILE__, __LINE__,             \
                                          flint_check_os_.str());                \
    }                                                                            \
  } while (0)

// Operand-capturing comparisons. Each operand is evaluated exactly once; both
// values are included in the CheckError message on failure. Compare operands
// of matching signedness (cast at the call site) — the macro forwards the raw
// `a op b` comparison.
#define FLINT_CHECK_OP_(op, a, b)                                                  \
  do {                                                                             \
    auto&& flint_va_ = (a);                                                        \
    auto&& flint_vb_ = (b);                                                        \
    if (!(flint_va_ op flint_vb_))                                                 \
      ::flint::util::detail::check_op_failed(#a, #op, #b, flint_va_, flint_vb_,    \
                                             __FILE__, __LINE__);                  \
  } while (0)

#define FLINT_CHECK_EQ(a, b) FLINT_CHECK_OP_(==, a, b)
#define FLINT_CHECK_NE(a, b) FLINT_CHECK_OP_(!=, a, b)
#define FLINT_CHECK_LT(a, b) FLINT_CHECK_OP_(<, a, b)
#define FLINT_CHECK_LE(a, b) FLINT_CHECK_OP_(<=, a, b)
#define FLINT_CHECK_GT(a, b) FLINT_CHECK_OP_(>, a, b)
#define FLINT_CHECK_GE(a, b) FLINT_CHECK_OP_(>=, a, b)

/// The value is a finite floating-point number (no NaN, no ±inf).
#define FLINT_CHECK_FINITE(x)                                                      \
  do {                                                                             \
    auto&& flint_vx_ = (x);                                                        \
    if (!std::isfinite(static_cast<double>(flint_vx_)))                            \
      ::flint::util::detail::check_finite_failed(#x, flint_vx_, __FILE__, __LINE__); \
  } while (0)

/// The value is a valid probability: finite and within [0, 1].
#define FLINT_CHECK_PROB(p)                                                        \
  do {                                                                             \
    auto&& flint_vp_ = (p);                                                        \
    double flint_vp_d_ = static_cast<double>(flint_vp_);                           \
    if (!std::isfinite(flint_vp_d_) || flint_vp_d_ < 0.0 || flint_vp_d_ > 1.0)     \
      ::flint::util::detail::check_prob_failed(#p, flint_vp_, __FILE__, __LINE__);  \
  } while (0)

#ifdef NDEBUG
#define FLINT_DCHECK(cond) \
  do {                     \
  } while (0)
#define FLINT_DCHECK_EQ(a, b) \
  do {                        \
  } while (0)
#define FLINT_DCHECK_NE(a, b) \
  do {                        \
  } while (0)
#define FLINT_DCHECK_LT(a, b) \
  do {                        \
  } while (0)
#define FLINT_DCHECK_LE(a, b) \
  do {                        \
  } while (0)
#define FLINT_DCHECK_GT(a, b) \
  do {                        \
  } while (0)
#define FLINT_DCHECK_GE(a, b) \
  do {                        \
  } while (0)
#else
#define FLINT_DCHECK(cond) FLINT_CHECK(cond)
#define FLINT_DCHECK_EQ(a, b) FLINT_CHECK_EQ(a, b)
#define FLINT_DCHECK_NE(a, b) FLINT_CHECK_NE(a, b)
#define FLINT_DCHECK_LT(a, b) FLINT_CHECK_LT(a, b)
#define FLINT_DCHECK_LE(a, b) FLINT_CHECK_LE(a, b)
#define FLINT_DCHECK_GT(a, b) FLINT_CHECK_GT(a, b)
#define FLINT_DCHECK_GE(a, b) FLINT_CHECK_GE(a, b)
#endif
