// Lightweight runtime contract checking for FLINT.
//
// FLINT_CHECK enforces preconditions / invariants that depend on runtime
// inputs (config files, generated data); violations throw flint::util::CheckError
// so callers can surface a useful message instead of crashing.
// FLINT_DCHECK compiles away in NDEBUG builds and guards internal invariants.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace flint::util {

/// Thrown when a FLINT_CHECK contract is violated.
class CheckError : public std::runtime_error {
 public:
  explicit CheckError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream os;
  os << "FLINT_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace detail
}  // namespace flint::util

#define FLINT_CHECK(cond)                                                        \
  do {                                                                           \
    if (!(cond)) ::flint::util::detail::check_failed(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define FLINT_CHECK_MSG(cond, msg)                                               \
  do {                                                                           \
    if (!(cond)) {                                                               \
      std::ostringstream flint_check_os_;                                        \
      flint_check_os_ << msg;                                                    \
      ::flint::util::detail::check_failed(#cond, __FILE__, __LINE__,             \
                                          flint_check_os_.str());                \
    }                                                                            \
  } while (0)

#ifdef NDEBUG
#define FLINT_DCHECK(cond) \
  do {                     \
  } while (0)
#else
#define FLINT_DCHECK(cond) FLINT_CHECK(cond)
#endif
