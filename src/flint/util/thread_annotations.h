// Clang thread-safety annotations plus a capability-annotated mutex wrapper.
//
// FLINT's determinism contract (DESIGN.md §6, §11) leans on a small number of
// mutex-protected structures: the thread-pool queue, the metric registry, the
// tracer buffer, telemetry snapshot rows, the checkpoint sequence counter, and
// the logging sink. Each of those now declares *in the type system* which
// capability guards which field (FLINT_GUARDED_BY), and the dedicated
// `threadsafety` build profile (cmake --preset threadsafety, clang-only) turns
// clang's `-Wthread-safety` analysis into a build-time gate: an unguarded
// access to a guarded field, a missing unlock, or a lock-order violation is a
// compile error before any simulator run.
//
// Under non-clang compilers (the default gcc build) every macro expands to
// nothing and util::Mutex behaves exactly like std::mutex — zero overhead,
// zero behavior change. See https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
// for the attribute semantics.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define FLINT_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define FLINT_THREAD_ANNOTATION_(x)
#endif

/// Marks a type as a capability (lockable); the string names it in diagnostics.
#define FLINT_CAPABILITY(x) FLINT_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define FLINT_SCOPED_CAPABILITY FLINT_THREAD_ANNOTATION_(scoped_lockable)

/// Field may only be read/written while holding the given capability.
#define FLINT_GUARDED_BY(x) FLINT_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer field: the *pointee* is guarded by the given capability.
#define FLINT_PT_GUARDED_BY(x) FLINT_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function requires the capability to be held on entry (and keeps it held).
#define FLINT_REQUIRES(...) FLINT_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function acquires the capability and holds it on exit.
#define FLINT_ACQUIRE(...) FLINT_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function releases the capability (held on entry, released on exit).
#define FLINT_RELEASE(...) FLINT_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function attempts the acquire; first arg is the success return value.
#define FLINT_TRY_ACQUIRE(...) FLINT_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (deadlock prevention for self-locking
/// public methods).
#define FLINT_EXCLUDES(...) FLINT_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the given capability.
#define FLINT_RETURN_CAPABILITY(x) FLINT_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: the function body is exempt from analysis (its contract is
/// still enforced at call sites). Use only with a justifying comment.
#define FLINT_NO_THREAD_SAFETY_ANALYSIS FLINT_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace flint::util {

/// std::mutex with a thread-safety capability attached, so fields can be
/// declared FLINT_GUARDED_BY(mu_) and clang can prove every access is locked.
class FLINT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() FLINT_ACQUIRE() { mu_.lock(); }
  void unlock() FLINT_RELEASE() { mu_.unlock(); }
  bool try_lock() FLINT_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII lock for Mutex (the std::lock_guard shape, visible to the analysis).
class FLINT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) FLINT_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() FLINT_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable that waits on a util::Mutex. wait() atomically releases
/// and reacquires the mutex; to the analysis the capability is held across the
/// call (true at every sequence point the caller can observe), so guarded
/// fields remain accessible in the caller's wait loop:
///
///   MutexLock lock(mu_);
///   while (!ready_) cv_.wait(mu_);   // ready_ is FLINT_GUARDED_BY(mu_)
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // The release/reacquire inside std::condition_variable_any is invisible to
  // the caller; analysis of this body is disabled so the temporary unlock is
  // not reported as releasing a capability the function must hold on exit.
  void wait(Mutex& mu) FLINT_REQUIRES(mu) FLINT_NO_THREAD_SAFETY_ANALYSIS { cv_.wait(mu); }

  /// Timed wait: returns false if `timeout_s` elapsed without a notify (the
  /// caller still re-checks its predicate either way, as with any condvar).
  bool wait_for(Mutex& mu, double timeout_s) FLINT_REQUIRES(mu)
      FLINT_NO_THREAD_SAFETY_ANALYSIS {
    return cv_.wait_for(mu, std::chrono::duration<double>(timeout_s)) ==
           std::cv_status::no_timeout;
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace flint::util
