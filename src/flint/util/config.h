// Typed key-value configuration. Experiment configs in FLINT are flat
// key=value maps (mirroring the paper's "job config specifies the device
// traces, on-device performance distributions... and other hyper-parameters").
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

namespace flint::util {

/// Flat string-keyed config with typed accessors. Unknown keys are an error
/// only when read with `require_*`; `get_*` falls back to a default so configs
/// stay forward-compatible.
class Config {
 public:
  Config() = default;

  /// Parse "key=value" lines. '#' starts a comment; blank lines are skipped.
  static Config parse(const std::string& text);

  void set(const std::string& key, const std::string& value);
  void set_int(const std::string& key, std::int64_t value);
  void set_double(const std::string& key, double value);
  void set_bool(const std::string& key, bool value);

  bool contains(const std::string& key) const;

  std::string get_string(const std::string& key, const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  std::string require_string(const std::string& key) const;
  std::int64_t require_int(const std::string& key) const;
  double require_double(const std::string& key) const;

  /// Serialize back to key=value lines (sorted by key, deterministic).
  std::string to_string() const;

  const std::map<std::string, std::string>& entries() const { return entries_; }

 private:
  std::optional<std::string> find(const std::string& key) const;
  std::map<std::string, std::string> entries_;
};

}  // namespace flint::util
