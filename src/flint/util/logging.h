// Leveled logging for the simulator. The leader/executor loops log progress
// at Info; tests set the level to Warn to keep output clean.
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace flint::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-global log configuration. Thread-safe.
class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level);
  LogLevel level() const;

  /// Emit a line if `level` passes the configured threshold.
  void log(LogLevel level, const std::string& msg);

 private:
  Logger() = default;
  mutable std::mutex mu_;
  LogLevel level_ = LogLevel::kWarn;
};

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Logger::instance().log(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace detail
}  // namespace flint::util

#define FLINT_LOG_DEBUG ::flint::util::detail::LogLine(::flint::util::LogLevel::kDebug)
#define FLINT_LOG_INFO ::flint::util::detail::LogLine(::flint::util::LogLevel::kInfo)
#define FLINT_LOG_WARN ::flint::util::detail::LogLine(::flint::util::LogLevel::kWarn)
#define FLINT_LOG_ERROR ::flint::util::detail::LogLine(::flint::util::LogLevel::kError)
