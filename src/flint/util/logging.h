// Leveled logging for the simulator. The leader/executor loops log progress
// at Info; tests set the level to Warn to keep output clean.
//
// The level check is a single relaxed atomic load, and the FLINT_LOG_* macros
// skip message formatting entirely when the level is disabled — a Debug line
// in a hot loop costs one load + branch. Emission itself stays serialized
// under a mutex so concurrent lines never interleave.
#pragma once

#include <atomic>
#include <iosfwd>
#include <sstream>
#include <string>

#include "flint/util/thread_annotations.h"

namespace flint::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-global log configuration. Thread-safe.
class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_.store(level, std::memory_order_relaxed); }
  LogLevel level() const { return level_.load(std::memory_order_relaxed); }

  /// Lock-free check used by the macros to skip formatting early.
  bool enabled(LogLevel level) const {
    return level != LogLevel::kOff &&
           static_cast<int>(level) >= static_cast<int>(level_.load(std::memory_order_relaxed));
  }

  /// Redirect output (tests capture into an ostringstream). nullptr restores
  /// the default sink, unbuffered stderr. The sink must outlive its use.
  void set_sink(std::ostream* sink) FLINT_EXCLUDES(mu_);

  /// Tag every line with "[<pid>:<role>]" ("leader", "executor-2") so the
  /// interleaved stderr of a multi-process run stays attributable. Empty
  /// (the default) keeps the single-process format unchanged.
  void set_role(const std::string& role) FLINT_EXCLUDES(mu_);
  std::string role() const FLINT_EXCLUDES(mu_);

  /// Emit a line if `level` passes the configured threshold. Serialized:
  /// concurrent calls never interleave within a line.
  void log(LogLevel level, const std::string& msg) FLINT_EXCLUDES(mu_);

 private:
  Logger() = default;
  std::atomic<LogLevel> level_{LogLevel::kWarn};
  mutable Mutex mu_;  ///< serializes emission
  std::ostream* sink_ FLINT_GUARDED_BY(mu_) = nullptr;  ///< nullptr = stderr
  std::string role_ FLINT_GUARDED_BY(mu_);  ///< empty = no pid:role tag
};

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Logger::instance().log(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace detail
}  // namespace flint::util

// The empty-if/else shape makes the whole statement (including the streamed
// operands) dead when the level is disabled, while still binding a trailing
// `<< x << y;` to the LogLine and staying safe under an unbraced `if (c) FLINT_LOG_...`.
#define FLINT_LOG_AT_(lvl)                                      \
  if (!::flint::util::Logger::instance().enabled(lvl)) { \
  } else                                                        \
    ::flint::util::detail::LogLine(lvl)

#define FLINT_LOG_DEBUG FLINT_LOG_AT_(::flint::util::LogLevel::kDebug)
#define FLINT_LOG_INFO FLINT_LOG_AT_(::flint::util::LogLevel::kInfo)
#define FLINT_LOG_WARN FLINT_LOG_AT_(::flint::util::LogLevel::kWarn)
#define FLINT_LOG_ERROR FLINT_LOG_AT_(::flint::util::LogLevel::kError)
