#include "flint/util/table.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <iomanip>
#include <sstream>

#include "flint/util/check.h"

namespace flint::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  FLINT_CHECK(!header_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  FLINT_CHECK_MSG(cells.size() == header_.size(),
                  "row has " << cells.size() << " cells, header has " << header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int decimals) {
  std::ostringstream os;
  if (decimals >= 0) {
    os << std::fixed << std::setprecision(decimals) << v;
    return os.str();
  }
  // Auto: integers print bare, otherwise 4 significant digits.
  if (std::abs(v - std::round(v)) < 1e-9 && std::abs(v) < 1e15) {
    os << static_cast<std::int64_t>(std::llround(v));
  } else {
    os << std::setprecision(4) << v;
  }
  return os.str();
}

std::string Table::count(std::int64_t v) {
  std::string digits = std::to_string(std::abs(v));
  std::string out;
  int c = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (c > 0 && c % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++c;
  }
  if (v < 0) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

std::string Table::pct(double fraction, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << fraction * 100.0 << "%";
  return os.str();
}

std::string Table::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_)
    for (std::size_t i = 0; i < row.size(); ++i) widths[i] = std::max(widths[i], row[i].size());

  auto rule = [&] {
    std::string s = "+";
    for (std::size_t w : widths) s += std::string(w + 2, '-') + "+";
    return s + "\n";
  };
  auto line = [&](const std::vector<std::string>& cells) {
    std::ostringstream os;
    os << "|";
    for (std::size_t i = 0; i < cells.size(); ++i)
      os << " " << std::setw(static_cast<int>(widths[i])) << std::left << cells[i] << " |";
    return os.str() + "\n";
  };

  std::string out = rule() + line(header_) + rule();
  for (const auto& row : rows_) out += line(row);
  out += rule();
  return out;
}

std::string banner(const std::string& title) {
  std::string bar(title.size() + 6, '=');
  return bar + "\n== " + title + " ==\n" + bar + "\n";
}

}  // namespace flint::util
