#include "flint/util/logging.h"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <ctime>
#include <iostream>

namespace flint::util {

namespace {

// "[2026-08-05T12:34:56.789]" — UTC wall clock, millisecond precision.
std::string timestamp_utc() {
  using namespace std::chrono;
  // flint-analyze: allow(nondet-source): log-line timestamps are diagnostic
  // wall-clock output and never feed simulated results or artifacts.
  const auto now = system_clock::now();
  const std::time_t secs = system_clock::to_time_t(now);
  const auto ms = duration_cast<milliseconds>(now.time_since_epoch()).count() % 1000;
  std::tm tm{};
#if defined(_WIN32)
  gmtime_s(&tm, &secs);
#else
  gmtime_r(&secs, &tm);
#endif
  char buf[40];
  std::snprintf(buf, sizeof(buf), "[%04d-%02d-%02dT%02d:%02d:%02d.%03d]", tm.tm_year + 1900,
                tm.tm_mon + 1, tm.tm_mday, tm.tm_hour, tm.tm_min, tm.tm_sec,
                static_cast<int>(ms));
  return buf;
}

}  // namespace

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_sink(std::ostream* sink) {
  MutexLock lock(mu_);
  sink_ = sink;
}

void Logger::set_role(const std::string& role) {
  MutexLock lock(mu_);
  role_ = role;
}

std::string Logger::role() const {
  MutexLock lock(mu_);
  return role_;
}

void Logger::log(LogLevel level, const std::string& msg) {
  static const char* kNames[] = {"DEBUG", "INFO", "WARN", "ERROR"};
  if (!enabled(level)) return;  // callers may bypass the macros
  MutexLock lock(mu_);
  // Unbuffered stderr by default for every level: diagnostic output must
  // survive a killed process (debug logs are for exactly those situations).
  std::ostream& out = sink_ != nullptr ? *sink_ : std::cerr;
  out << timestamp_utc();
  if (!role_.empty()) {
    // flint-analyze: allow(nondet-source): the pid tag is diagnostic log
    // attribution only and never feeds simulated results or artifacts.
    out << " [" << static_cast<long long>(::getpid()) << ":" << role_ << "]";
  }
  out << " [" << kNames[static_cast<int>(level)] << "] " << msg << "\n";
}

}  // namespace flint::util
