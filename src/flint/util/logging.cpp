#include "flint/util/logging.h"

#include <iostream>

namespace flint::util {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_level(LogLevel level) {
  std::lock_guard<std::mutex> lock(mu_);
  level_ = level;
}

LogLevel Logger::level() const {
  std::lock_guard<std::mutex> lock(mu_);
  return level_;
}

void Logger::log(LogLevel level, const std::string& msg) {
  static const char* kNames[] = {"DEBUG", "INFO", "WARN", "ERROR"};
  std::lock_guard<std::mutex> lock(mu_);
  if (static_cast<int>(level) < static_cast<int>(level_)) return;
  if (level == LogLevel::kOff) return;
  // Unbuffered stderr for every level: diagnostic output must survive a
  // killed process (debug logs are for exactly those situations).
  std::cerr << "[" << kNames[static_cast<int>(level)] << "] " << msg << "\n";
}

}  // namespace flint::util
