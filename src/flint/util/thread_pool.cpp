#include "flint/util/thread_pool.h"

#include <chrono>
#include <utility>

namespace flint::util {

namespace {

// The pool this thread works for. Plain thread_locals: a worker belongs to
// exactly one pool for its whole lifetime.
thread_local const ThreadPool* tls_pool = nullptr;
thread_local std::size_t tls_worker_index = ThreadPool::npos;

}  // namespace

ThreadPool::ThreadPool(std::size_t threads, ThreadPoolObserver observer)
    : observer_(std::move(observer)) {
  FLINT_CHECK_GT(threads, std::size_t{0});
  busy_s_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    busy_s_.push_back(std::make_unique<std::atomic<double>>(0.0));
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::size_t ThreadPool::worker_index() { return tls_worker_index; }

const ThreadPool* ThreadPool::current_pool() { return tls_pool; }

std::size_t ThreadPool::queue_depth() const {
  MutexLock lock(mu_);
  return queue_.size();
}

double ThreadPool::busy_seconds(std::size_t i) const {
  FLINT_CHECK_LT(i, busy_s_.size());
  return busy_s_[i]->load(std::memory_order_relaxed);
}

void ThreadPool::enqueue(std::function<void()> fn) {
  std::size_t depth;
  {
    MutexLock lock(mu_);
    FLINT_CHECK_MSG(!stop_, "submit on a stopping ThreadPool");
    queue_.push_back(std::move(fn));
    depth = queue_.size();
  }
  cv_.notify_one();
  if (observer_.on_task_submitted) observer_.on_task_submitted();
  if (observer_.on_queue_depth) observer_.on_queue_depth(depth);
}

void ThreadPool::worker_loop(std::size_t index) {
  tls_pool = this;
  tls_worker_index = index;
  for (;;) {
    std::function<void()> task;
    std::size_t depth;
    std::size_t busy;
    {
      MutexLock lock(mu_);
      while (!stop_ && queue_.empty()) cv_.wait(mu_);
      if (queue_.empty()) return;  // stop_ set and queue drained
      task = std::move(queue_.front());
      queue_.pop_front();
      depth = queue_.size();
      busy = ++busy_;
    }
    if (observer_.on_queue_depth) observer_.on_queue_depth(depth);
    if (observer_.on_busy_workers) observer_.on_busy_workers(busy);
    // flint-analyze: allow(nondet-source): wall-clock observability boundary —
    // per-worker busy seconds feed util.pool.* gauges, never simulated results.
    auto start = std::chrono::steady_clock::now();
    task();
    // flint-analyze: allow(nondet-source): same wall-clock gauge as above.
    double spent =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    double total = busy_s_[index]->load(std::memory_order_relaxed) + spent;
    busy_s_[index]->store(total, std::memory_order_relaxed);
    if (observer_.on_worker_busy) observer_.on_worker_busy(index, total);
    {
      MutexLock lock(mu_);
      busy = --busy_;
    }
    if (observer_.on_busy_workers) observer_.on_busy_workers(busy);
  }
}

}  // namespace flint::util
