// Deterministic random number generation for FLINT.
//
// Every stochastic component in the platform takes an explicit Rng& so that
// simulations are reproducible bit-for-bit from a seed. Trials derive child
// seeds via Rng::fork(), which decorrelates streams without global state.
#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "flint/util/check.h"

namespace flint::util {

/// Deterministic pseudo-random source. Wraps std::mt19937_64 with the
/// distributions FLINT needs (heavy tails, Dirichlet, Zipf, sampling).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 42) : engine_(seed), seed_(seed) {}

  /// The seed this stream was created with.
  std::uint64_t seed() const { return seed_; }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0);

  /// Bernoulli draw with success probability p in [0, 1].
  bool bernoulli(double p);

  /// Normal draw.
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Lognormal draw with parameters of the underlying normal.
  double lognormal(double mu, double sigma);

  /// Exponential draw with the given rate (lambda > 0).
  double exponential(double rate);

  /// Pareto draw: x_min * U^{-1/alpha}; heavy-tailed for small alpha.
  double pareto(double x_min, double alpha);

  /// Gamma draw with the given shape (k > 0) and scale.
  double gamma(double shape, double scale = 1.0);

  /// Poisson draw with the given mean.
  std::int64_t poisson(double mean);

  /// Zipf-distributed rank in [0, n) with exponent s >= 0.
  /// s = 0 degenerates to uniform. Uses a precomputable CDF for small n and
  /// rejection sampling for large n.
  std::size_t zipf(std::size_t n, double s);

  /// Dirichlet draw over k categories with symmetric concentration alpha.
  std::vector<double> dirichlet(std::size_t k, double alpha);

  /// Dirichlet draw with per-category concentrations.
  std::vector<double> dirichlet(const std::vector<double>& alphas);

  /// Index drawn from a discrete distribution proportional to weights.
  std::size_t categorical(const std::vector<double>& weights);

  /// k distinct indices uniformly sampled from [0, n) (Floyd's algorithm).
  /// Order of the returned indices is unspecified. Requires k <= n.
  std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t k);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Child stream with a seed derived from this stream; decorrelated from
  /// the parent's subsequent draws.
  Rng fork();

  /// Raw 64-bit draw (for hashing / seeding).
  std::uint64_t next_u64() { return engine_(); }

  /// Portable snapshot of the engine state (mt19937_64 textual form) for
  /// checkpoint/resume; restore with deserialize_state(). The seed is not
  /// part of the snapshot — callers re-derive the stream and then overlay
  /// the state, so seed() stays meaningful after a resume.
  std::string serialize_state() const;

  /// Restore engine state captured by serialize_state(). Throws CheckError
  /// if the string is not a valid mt19937_64 state.
  void deserialize_state(const std::string& state);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
};

/// SplitMix64 hash step; useful for deriving per-entity seeds from ids.
std::uint64_t splitmix64(std::uint64_t x);

/// Counter-based stream derivation: a fresh Rng keyed by (seed, stream,
/// substream), independent of any engine state. The parallel runners use it
/// to give every simulated task its own decorrelated streams — the result
/// depends only on the key, never on which thread draws or in what order,
/// which is what makes `--threads N` change wall time and nothing else.
Rng derive_stream(std::uint64_t seed, std::uint64_t stream, std::uint64_t substream = 0);

}  // namespace flint::util
