#include "flint/util/config.h"

#include <sstream>

#include "flint/util/check.h"

namespace flint::util {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

}  // namespace

Config Config::parse(const std::string& text) {
  Config cfg;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;
    auto eq = line.find('=');
    FLINT_CHECK_MSG(eq != std::string::npos, "config line " << lineno << " missing '=': " << line);
    std::string key = trim(line.substr(0, eq));
    std::string value = trim(line.substr(eq + 1));
    FLINT_CHECK_MSG(!key.empty(), "config line " << lineno << " has empty key");
    cfg.set(key, value);
  }
  return cfg;
}

void Config::set(const std::string& key, const std::string& value) { entries_[key] = value; }
void Config::set_int(const std::string& key, std::int64_t value) { entries_[key] = std::to_string(value); }
void Config::set_double(const std::string& key, double value) {
  std::ostringstream os;
  os.precision(17);
  os << value;
  entries_[key] = os.str();
}
void Config::set_bool(const std::string& key, bool value) { entries_[key] = value ? "true" : "false"; }

bool Config::contains(const std::string& key) const { return entries_.count(key) > 0; }

std::optional<std::string> Config::find(const std::string& key) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

std::string Config::get_string(const std::string& key, const std::string& fallback) const {
  return find(key).value_or(fallback);
}

std::int64_t Config::get_int(const std::string& key, std::int64_t fallback) const {
  auto v = find(key);
  if (!v) return fallback;
  return std::stoll(*v);
}

double Config::get_double(const std::string& key, double fallback) const {
  auto v = find(key);
  if (!v) return fallback;
  return std::stod(*v);
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  auto v = find(key);
  if (!v) return fallback;
  if (*v == "true" || *v == "1" || *v == "yes") return true;
  if (*v == "false" || *v == "0" || *v == "no") return false;
  FLINT_CHECK_MSG(false, "config key '" << key << "' has non-boolean value '" << *v << "'");
  return fallback;
}

std::string Config::require_string(const std::string& key) const {
  auto v = find(key);
  FLINT_CHECK_MSG(v.has_value(), "missing required config key '" << key << "'");
  return *v;
}

std::int64_t Config::require_int(const std::string& key) const {
  return std::stoll(require_string(key));
}

double Config::require_double(const std::string& key) const {
  return std::stod(require_string(key));
}

std::string Config::to_string() const {
  std::ostringstream os;
  for (const auto& [k, v] : entries_) os << k << "=" << v << "\n";
  return os.str();
}

}  // namespace flint::util
