#include "flint/util/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "flint/util/check.h"

namespace flint::util {

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi) {
  FLINT_CHECK(hi > lo);
  FLINT_CHECK(bins > 0);
  counts_.assign(bins, 0.0);
}

void Histogram::add(double x, double weight) {
  double frac = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::ptrdiff_t>(frac * static_cast<double>(counts_.size()));
  idx = std::clamp<std::ptrdiff_t>(idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(idx)] += weight;
  total_ += weight;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i + 1); }

std::vector<double> Histogram::normalized_to_peak() const {
  double peak = *std::max_element(counts_.begin(), counts_.end());
  std::vector<double> out(counts_.size(), 0.0);
  if (peak <= 0.0) return out;
  for (std::size_t i = 0; i < counts_.size(); ++i) out[i] = counts_[i] / peak;
  return out;
}

std::vector<double> Histogram::normalized_to_sum() const {
  std::vector<double> out(counts_.size(), 0.0);
  if (total_ <= 0.0) return out;
  for (std::size_t i = 0; i < counts_.size(); ++i) out[i] = counts_[i] / total_;
  return out;
}

std::string Histogram::render(std::size_t width) const {
  std::ostringstream os;
  auto norm = normalized_to_peak();
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    auto bars = static_cast<std::size_t>(norm[i] * static_cast<double>(width) + 0.5);
    os.precision(3);
    os << "[" << bin_lo(i) << ", " << bin_hi(i) << ") " << std::string(bars, '#') << " "
       << counts_[i] << "\n";
  }
  return os.str();
}

std::vector<CcdfPoint> log_ccdf(std::vector<double> values, std::size_t points) {
  FLINT_CHECK(!values.empty());
  FLINT_CHECK(points >= 2);
  std::sort(values.begin(), values.end());
  double lo = std::max(values.front(), 1e-12);
  double hi = std::max(values.back(), lo * (1.0 + 1e-9));
  std::vector<CcdfPoint> out;
  out.reserve(points);
  double log_lo = std::log(lo);
  double log_hi = std::log(hi);
  for (std::size_t i = 0; i < points; ++i) {
    double t = static_cast<double>(i) / static_cast<double>(points - 1);
    // Pin the final point to the exact max so exp/log rounding can't leave
    // the top sample "above" the last CCDF value.
    double v = (i + 1 == points) ? values.back() : std::exp(log_lo + t * (log_hi - log_lo));
    // Fraction strictly greater than v.
    auto it = std::upper_bound(values.begin(), values.end(), v);
    double frac =
        static_cast<double>(values.end() - it) / static_cast<double>(values.size());
    out.push_back({v, frac});
  }
  return out;
}

}  // namespace flint::util
