#include "flint/util/csv.h"

#include "flint/util/check.h"

namespace flint::util {

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) *out_ << ',';
    *out_ << escape(cells[i]);
  }
  *out_ << '\n';
}

std::string CsvWriter::escape(const std::string& cell) {
  bool needs_quote = cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

CsvFile::CsvFile(const std::string& path) : file_(path), writer_(file_) {}

std::vector<std::string> parse_csv_line(const std::string& line) {
  std::vector<std::string> cells;
  std::string cur;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur.push_back(c);
      }
    } else {
      if (c == '"') {
        in_quotes = true;
      } else if (c == ',') {
        cells.push_back(std::move(cur));
        cur.clear();
      } else if (c == '\r') {
        // Tolerate CRLF line endings.
      } else {
        cur.push_back(c);
      }
    }
  }
  cells.push_back(std::move(cur));
  return cells;
}

}  // namespace flint::util
