#include "flint/util/rng.h"

#include <cmath>
#include <sstream>

namespace flint::util {

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  FLINT_CHECK_MSG(lo <= hi, "uniform_int bounds inverted: " << lo << " > " << hi);
  std::uniform_int_distribution<std::int64_t> d(lo, hi);
  return d(engine_);
}

double Rng::uniform(double lo, double hi) {
  FLINT_CHECK(lo <= hi);
  std::uniform_real_distribution<double> d(lo, hi);
  return d(engine_);
}

bool Rng::bernoulli(double p) {
  FLINT_CHECK_PROB(p);
  std::bernoulli_distribution d(p);
  return d(engine_);
}

double Rng::normal(double mean, double stddev) {
  std::normal_distribution<double> d(mean, stddev);
  return d(engine_);
}

double Rng::lognormal(double mu, double sigma) {
  std::lognormal_distribution<double> d(mu, sigma);
  return d(engine_);
}

double Rng::exponential(double rate) {
  FLINT_CHECK_FINITE(rate);
  FLINT_CHECK_GT(rate, 0.0);
  std::exponential_distribution<double> d(rate);
  return d(engine_);
}

double Rng::pareto(double x_min, double alpha) {
  FLINT_CHECK_GT(x_min, 0.0);
  FLINT_CHECK_GT(alpha, 0.0);
  double u = uniform(0.0, 1.0);
  // Guard against u == 0 which would yield infinity.
  if (u <= 0.0) u = std::numeric_limits<double>::min();
  return x_min * std::pow(u, -1.0 / alpha);
}

double Rng::gamma(double shape, double scale) {
  FLINT_CHECK_GT(shape, 0.0);
  FLINT_CHECK_GT(scale, 0.0);
  std::gamma_distribution<double> d(shape, scale);
  return d(engine_);
}

namespace {

/// Uniform in [0, 1) built from the engine's raw 64-bit output (53 mantissa
/// bits). mt19937_64's output sequence is fully specified by the standard, so
/// samplers built on this helper draw identically on every implementation —
/// unlike std::*_distribution, whose algorithms are implementation-defined.
double canonical_u01(std::mt19937_64& engine) {
  return static_cast<double>(engine() >> 11) * 0x1.0p-53;
}

/// Inversion by sequential search (Devroye): one uniform, multiplicative
/// pmf recurrence. Exact and fast for small means.
std::int64_t poisson_inversion(std::mt19937_64& engine, double mean) {
  double u = canonical_u01(engine);
  double p = std::exp(-mean);
  double cum = p;
  std::int64_t k = 0;
  // Hard iteration cap: P(K > mean + 40*sqrt(mean) + 64) is negligible, and
  // the cap keeps a pathological float state from looping forever.
  auto cap = static_cast<std::int64_t>(mean + 40.0 * std::sqrt(mean) + 64.0);
  while (u > cum && k < cap) {
    ++k;
    p *= mean / static_cast<double>(k);
    cum += p;
  }
  return k;
}

/// Hormann's PTRS transformed-rejection sampler for large means. Uses only
/// canonical_u01 draws plus libm, so the draw *sequence* is portable.
std::int64_t poisson_ptrs(std::mt19937_64& engine, double mean) {
  const double b = 0.931 + 2.53 * std::sqrt(mean);
  const double a = -0.059 + 0.02483 * b;
  const double inv_alpha = 1.1239 + 1.1328 / (b - 3.4);
  const double v_r = 0.9277 - 3.6224 / (b - 2.0);
  const double log_mean = std::log(mean);
  for (;;) {
    double u = canonical_u01(engine) - 0.5;
    double v = canonical_u01(engine);
    double us = 0.5 - std::abs(u);
    double kf = std::floor((2.0 * a / us + b) * u + mean + 0.43);
    if (us >= 0.07 && v <= v_r) return static_cast<std::int64_t>(kf);
    if (kf < 0.0 || (us < 0.013 && v > us)) continue;
    double k = kf;
    if (std::log(v * inv_alpha / (a / (us * us) + b)) <=
        k * log_mean - mean - std::lgamma(k + 1.0))
      return static_cast<std::int64_t>(kf);
  }
}

}  // namespace

std::int64_t Rng::poisson(double mean) {
  FLINT_CHECK_FINITE(mean);
  FLINT_CHECK_GE(mean, 0.0);
  // fpclassify makes the "exactly zero, not merely small" intent explicit:
  // tiny positive means are valid Poisson parameters.
  if (std::fpclassify(mean) == FP_ZERO) return 0;
  // Portable sampler instead of std::poisson_distribution: the standard
  // leaves that algorithm implementation-defined, so libstdc++ and libc++
  // disagree draw-for-draw — which would make every session trace (and thus
  // every simulated result) depend on the standard library, breaking the
  // repo-wide contract that results are a pure function of the seed.
  if (mean < 10.0) return poisson_inversion(engine_, mean);
  return poisson_ptrs(engine_, mean);
}

std::size_t Rng::zipf(std::size_t n, double s) {
  FLINT_CHECK_GT(n, std::size_t{0});
  FLINT_CHECK_FINITE(s);
  if (n == 1) return 0;
  // Near-zero exponents make every 1/i^s weight ~1; short-circuit to the
  // exact uniform draw instead of accumulating n pow() round-off errors.
  if (std::abs(s) < 1e-12)
    return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(n) - 1));
  // Inverse-CDF over the harmonic weights. O(n) per draw is fine for the
  // catalog sizes FLINT uses (device models, vocab buckets); callers that
  // need bulk Zipf draws should precompute a categorical table instead.
  double h = 0.0;
  for (std::size_t i = 1; i <= n; ++i) h += 1.0 / std::pow(static_cast<double>(i), s);
  double u = uniform(0.0, h);
  double acc = 0.0;
  for (std::size_t i = 1; i <= n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i), s);
    if (u <= acc) return i - 1;
  }
  return n - 1;
}

std::vector<double> Rng::dirichlet(std::size_t k, double alpha) {
  return dirichlet(std::vector<double>(k, alpha));
}

std::vector<double> Rng::dirichlet(const std::vector<double>& alphas) {
  FLINT_CHECK(!alphas.empty());
  std::vector<double> out(alphas.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < alphas.size(); ++i) {
    FLINT_CHECK(alphas[i] > 0.0);
    out[i] = gamma(alphas[i], 1.0);
    sum += out[i];
  }
  if (sum <= 0.0) {
    // Numerically degenerate draw (possible for tiny alphas): fall back to
    // a one-hot on a uniform category, the limiting Dirichlet behaviour.
    std::fill(out.begin(), out.end(), 0.0);
    out[static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(out.size()) - 1))] = 1.0;
    return out;
  }
  for (double& v : out) v /= sum;
  return out;
}

std::size_t Rng::categorical(const std::vector<double>& weights) {
  FLINT_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    FLINT_CHECK(w >= 0.0);
    total += w;
  }
  FLINT_CHECK_MSG(total > 0.0, "categorical weights sum to zero");
  double u = uniform(0.0, total);
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (u <= acc) return i;
  }
  return weights.size() - 1;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n, std::size_t k) {
  FLINT_CHECK_MSG(k <= n, "cannot sample " << k << " from " << n);
  // Floyd's algorithm: O(k) expected insertions.
  std::vector<std::size_t> out;
  out.reserve(k);
  std::vector<bool> chosen;  // used only for small n to keep memory bounded
  if (n <= 1'000'000) {
    chosen.assign(n, false);
    for (std::size_t j = n - k; j < n; ++j) {
      std::size_t t = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(j)));
      if (chosen[t]) t = j;
      chosen[t] = true;
      out.push_back(t);
    }
  } else {
    // For very large n, use a hash-set-free variant: sort-and-dedup of
    // uniform draws with resampling. Collisions are rare when k << n.
    while (out.size() < k) {
      std::size_t t = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(n) - 1));
      bool dup = false;
      for (std::size_t v : out) {
        if (v == t) {
          dup = true;
          break;
        }
      }
      if (!dup) out.push_back(t);
    }
  }
  return out;
}

Rng Rng::fork() { return Rng(splitmix64(engine_())); }

std::string Rng::serialize_state() const {
  std::ostringstream os;
  os << engine_;
  return os.str();
}

void Rng::deserialize_state(const std::string& state) {
  std::istringstream is(state);
  std::mt19937_64 restored;
  is >> restored;
  FLINT_CHECK_MSG(!is.fail(), "invalid mt19937_64 state string (" << state.size() << " bytes)");
  engine_ = restored;
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

Rng derive_stream(std::uint64_t seed, std::uint64_t stream, std::uint64_t substream) {
  // Chained splitmix64 over the key components; each link fully mixes, so
  // adjacent (stream, substream) pairs land on decorrelated seeds.
  std::uint64_t s = splitmix64(seed);
  s = splitmix64(s ^ stream);
  s = splitmix64(s ^ substream);
  return Rng(s);
}

}  // namespace flint::util
