// Byte-level (de)serialization helpers shared by every FLINT binary format
// (model blobs, checkpoints, partition files, model-store versions).
//
// All object <-> byte conversions go through std::memcpy on
// static_assert-verified trivially-copyable types: no reinterpret_cast reads,
// no alignment assumptions, no aliasing UB — the sanitizer profiles and
// tools/flint_lint.py both key off this pattern.
#pragma once

#include <cstring>
#include <type_traits>
#include <vector>

#include "flint/util/check.h"

namespace flint::util {

/// Append the object representation of `v` to `out`.
template <typename T>
void append_pod(std::vector<char>& out, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out.insert(out.end(), buf, buf + sizeof(T));
}

/// Read one T from `in` at `offset`, advancing it. Throws CheckError on a
/// truncated buffer.
template <typename T>
T read_pod(const std::vector<char>& in, std::size_t& offset) {
  static_assert(std::is_trivially_copyable_v<T>);
  FLINT_CHECK_LE(offset, in.size());
  FLINT_CHECK_LE(sizeof(T), in.size() - offset);
  T v;
  std::memcpy(&v, in.data() + offset, sizeof(T));
  offset += sizeof(T);
  return v;
}

/// Append `count` contiguous Ts starting at `data`.
template <typename T>
void append_pod_array(std::vector<char>& out, const T* data, std::size_t count) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (count == 0) return;
  std::size_t old = out.size();
  out.resize(old + count * sizeof(T));
  std::memcpy(out.data() + old, data, count * sizeof(T));
}

/// Read `count` contiguous Ts from `in` at `offset` into `dst`, advancing
/// the offset. Throws CheckError on a truncated buffer.
template <typename T>
void read_pod_array(const std::vector<char>& in, std::size_t& offset, T* dst,
                    std::size_t count) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (count == 0) return;
  // Division form: `offset + count * sizeof(T)` wraps size_t for a corrupt
  // huge count, silently bypassing the bound.
  FLINT_CHECK_LE(offset, in.size());
  FLINT_CHECK_LE(count, (in.size() - offset) / sizeof(T));
  std::memcpy(dst, in.data() + offset, count * sizeof(T));
  offset += count * sizeof(T);
}

}  // namespace flint::util
