// Fixed-size worker pool with task futures — the substrate of FLINT's
// parallel client-training runtime.
//
// Deliberately work-stealing-free: tasks start in submission order on
// whichever worker frees up first, and callers impose any ordering that
// matters by joining futures in a fixed order (the fl runners reduce client
// updates into the accumulator in task order). Determinism therefore lives
// at the join, never in the queue, and `--threads N` can only change wall
// time, not results.
//
// util sits below flint::obs, so the pool does not record metrics itself;
// it reports queue depth, busy workers, and per-worker busy seconds through
// a ThreadPoolObserver that the creating layer wires to gauges
// (fl::TrainerPool publishes util.pool.* — see trainer_pool.cpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

#include "flint/util/check.h"
#include "flint/util/thread_annotations.h"

namespace flint::util {

/// Pool instrumentation callbacks, invoked from submitters and workers.
/// Every installed callback must be thread-safe; unset callbacks cost one
/// branch. Invocation granularity is one task, never finer.
struct ThreadPoolObserver {
  std::function<void(std::size_t depth)> on_queue_depth;
  std::function<void(std::size_t busy)> on_busy_workers;
  std::function<void(std::size_t worker, double busy_s)> on_worker_busy;
  std::function<void()> on_task_submitted;
};

class ThreadPool {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// Spawns `threads` workers (>= 1). The pool is fixed-size for its
  /// lifetime; sizing policy belongs to the caller (RunInputs::threads).
  explicit ThreadPool(std::size_t threads, ThreadPoolObserver observer = {});

  /// Runs every task already queued, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue `fn`; the future resolves once it has run (exceptions propagate
  /// through the future). Safe to call from any thread, including workers —
  /// but a worker blocking on a future of a task queued behind it deadlocks,
  /// so fan-out/join belongs on the submitting (simulator) thread.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    enqueue([task] { (*task)(); });
    return future;
  }

  /// Index of the calling pool worker in [0, size()), or npos off-pool.
  static std::size_t worker_index();

  /// The pool the calling thread works for, or nullptr off-pool.
  static const ThreadPool* current_pool();

  /// Tasks queued but not yet started.
  std::size_t queue_depth() const FLINT_EXCLUDES(mu_);

  /// Cumulative wall seconds worker `i` has spent inside task bodies.
  double busy_seconds(std::size_t i) const;

 private:
  void enqueue(std::function<void()> fn) FLINT_EXCLUDES(mu_);
  void worker_loop(std::size_t index) FLINT_EXCLUDES(mu_);

  ThreadPoolObserver observer_;
  mutable Mutex mu_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ FLINT_GUARDED_BY(mu_);
  bool stop_ FLINT_GUARDED_BY(mu_) = false;
  std::size_t busy_ FLINT_GUARDED_BY(mu_) = 0;
  // Slot i is written only by worker i and read by anyone, so plain atomic
  // store/load suffices (unique_ptr because atomics are not movable).
  std::vector<std::unique_ptr<std::atomic<double>>> busy_s_;
  std::vector<std::thread> workers_;  // flint-lint: allow(raw-thread): the pool itself
};

}  // namespace flint::util
