#include "flint/feature/asset_manager.h"

#include <algorithm>

#include "flint/util/check.h"

namespace flint::feature {

int AssetRegistry::publish(const std::string& name, std::uint64_t bytes, std::string checksum) {
  FLINT_CHECK(!name.empty());
  FLINT_CHECK(bytes > 0);
  auto& versions = assets_[name];
  AssetVersion v;
  v.version = static_cast<int>(versions.size()) + 1;
  v.bytes = bytes;
  v.checksum = std::move(checksum);
  versions.push_back(std::move(v));
  return versions.back().version;
}

std::optional<AssetVersion> AssetRegistry::latest(const std::string& name) const {
  auto it = assets_.find(name);
  if (it == assets_.end() || it->second.empty()) return std::nullopt;
  return it->second.back();
}

std::size_t AssetRegistry::version_count(const std::string& name) const {
  auto it = assets_.find(name);
  return it == assets_.end() ? 0 : it->second.size();
}

DeviceAssetManager::DeviceAssetManager(const AssetRegistry& registry,
                                       std::uint64_t storage_budget_bytes)
    : registry_(&registry), budget_(storage_budget_bytes) {
  FLINT_CHECK(storage_budget_bytes > 0);
}

void DeviceAssetManager::evict_until_fits(std::uint64_t incoming) {
  while (storage_used_ + incoming > budget_ && !cached_.empty()) {
    auto victim = cached_.begin();
    for (auto it = cached_.begin(); it != cached_.end(); ++it)
      if (it->second.last_use < victim->second.last_use) victim = it;
    storage_used_ -= victim->second.version.bytes;
    ++stats_.evictions;
    cached_.erase(victim);
  }
}

std::optional<AssetVersion> DeviceAssetManager::ensure(const std::string& name) {
  ++stats_.requests;
  auto published = registry_->latest(name);
  if (!published.has_value()) return std::nullopt;
  if (published->bytes > budget_) return std::nullopt;  // can never fit

  auto it = cached_.find(name);
  if (it != cached_.end()) {
    if (it->second.version.checksum == published->checksum) {
      ++stats_.up_to_date_hits;
      it->second.last_use = ++clock_;
      return it->second.version;
    }
    // Stale: drop the old copy, re-download below.
    storage_used_ -= it->second.version.bytes;
    cached_.erase(it);
    ++stats_.refreshes;
  }
  evict_until_fits(published->bytes);
  ++stats_.downloads;
  stats_.bytes_downloaded += published->bytes;
  storage_used_ += published->bytes;
  cached_[name] = {*published, ++clock_};
  return published;
}

bool DeviceAssetManager::is_current(const std::string& name) const {
  auto it = cached_.find(name);
  if (it == cached_.end()) return false;
  auto published = registry_->latest(name);
  return published.has_value() && published->checksum == it->second.version.checksum;
}

}  // namespace flint::feature
