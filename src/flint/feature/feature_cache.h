// Byte-budgeted LRU cache for feature values on the device. The paper's
// feature catalog caches cloud-based features and processed feature values
// so "multiple applications can use overlapping features without duplicated
// work" (§3.3).
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "flint/obs/telemetry.h"

namespace flint::feature {

/// Cache statistics for resource accounting.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t bytes_used = 0;

  double hit_rate() const {
    auto total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

/// LRU cache of feature vectors, bounded by total payload bytes. Entries
/// larger than the whole budget are rejected (never cached).
class FeatureCache {
 public:
  explicit FeatureCache(std::uint64_t capacity_bytes);

  /// Value for key, refreshing recency. nullopt on miss.
  std::optional<std::vector<float>> get(const std::string& key);

  /// Insert/overwrite; evicts LRU entries until the value fits.
  void put(const std::string& key, std::vector<float> value);

  bool contains(const std::string& key) const { return index_.count(key) > 0; }
  std::size_t entry_count() const { return entries_.size(); }
  std::uint64_t capacity_bytes() const { return capacity_; }
  const CacheStats& stats() const { return stats_; }

  void clear();

 private:
  struct Entry {
    std::string key;
    std::vector<float> value;
  };
  static std::uint64_t value_bytes(const std::vector<float>& v) {
    return v.size() * sizeof(float);
  }
  void evict_until_fits(std::uint64_t incoming);

  std::uint64_t capacity_;
  std::list<Entry> entries_;  // front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  CacheStats stats_;
  // Mirrored into the ambient telemetry so live hit rate shows up next to
  // the simulator series, not just in end-of-run CacheStats.
  obs::CachedCounter hits_counter_;
  obs::CachedCounter misses_counter_;
  obs::CachedCounter evictions_counter_;
};

}  // namespace flint::feature
