// Token encoding transforms: vocab-file lookup vs feature hashing. The ads
// case study (§4.1) weighs 1.28MB vocab assets against hashing's collision
// cost; TokenEncoder lets a pipeline switch strategy per feature.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "flint/feature/feature_hashing.h"
#include "flint/feature/vocab.h"

namespace flint::feature {

enum class EncoderKind { kVocab, kHashing };

/// Encodes raw string tokens into the integer ids models consume.
class TokenEncoder {
 public:
  static TokenEncoder with_vocab(Vocab vocab);
  static TokenEncoder with_hashing(std::size_t buckets, std::uint64_t salt = 0);

  EncoderKind kind() const { return kind_; }

  /// Encode a list of raw tokens.
  std::vector<std::int32_t> encode(const std::vector<std::string>& raw) const;

  /// Device-storage bytes this encoder's assets require (vocab file size;
  /// hashing needs no asset).
  std::size_t asset_bytes() const;

  /// Output id space size (vocab size + OOV, or bucket count).
  std::size_t id_space() const;

 private:
  TokenEncoder(EncoderKind kind, Vocab vocab, std::size_t buckets, std::uint64_t salt);

  EncoderKind kind_;
  Vocab vocab_;
  FeatureHasher hasher_;
};

}  // namespace flint::feature
