#include "flint/feature/feature_cache.h"

#include "flint/util/check.h"

namespace flint::feature {

FeatureCache::FeatureCache(std::uint64_t capacity_bytes) : capacity_(capacity_bytes) {
  FLINT_CHECK(capacity_bytes > 0);
}

std::optional<std::vector<float>> FeatureCache::get(const std::string& key) {
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    if (auto* c = misses_counter_.resolve("feature.cache.misses")) c->add(1);
    return std::nullopt;
  }
  ++stats_.hits;
  if (auto* c = hits_counter_.resolve("feature.cache.hits")) c->add(1);
  entries_.splice(entries_.begin(), entries_, it->second);  // refresh recency
  return it->second->value;
}

void FeatureCache::put(const std::string& key, std::vector<float> value) {
  std::uint64_t incoming = value_bytes(value);
  if (incoming > capacity_) return;  // can never fit; don't thrash the cache
  auto it = index_.find(key);
  if (it != index_.end()) {
    stats_.bytes_used -= value_bytes(it->second->value);
    entries_.erase(it->second);
    index_.erase(it);
  }
  evict_until_fits(incoming);
  entries_.push_front({key, std::move(value)});
  index_[key] = entries_.begin();
  stats_.bytes_used += incoming;
}

void FeatureCache::evict_until_fits(std::uint64_t incoming) {
  while (stats_.bytes_used + incoming > capacity_ && !entries_.empty()) {
    auto& victim = entries_.back();
    stats_.bytes_used -= value_bytes(victim.value);
    index_.erase(victim.key);
    entries_.pop_back();
    ++stats_.evictions;
    if (auto* c = evictions_counter_.resolve("feature.cache.evictions")) c->add(1);
  }
}

void FeatureCache::clear() {
  entries_.clear();
  index_.clear();
  stats_.bytes_used = 0;
}

}  // namespace flint::feature
