#include "flint/feature/feature_hashing.h"

#include <cmath>
#include <unordered_map>

#include "flint/util/check.h"
#include "flint/util/rng.h"

namespace flint::feature {

FeatureHasher::FeatureHasher(std::size_t buckets, std::uint64_t salt)
    : buckets_(buckets), salt_(salt) {
  FLINT_CHECK(buckets > 0);
}

std::uint64_t FeatureHasher::raw_hash(const std::string& token) const {
  // FNV-1a over the bytes, then a splitmix finalizer for avalanche.
  std::uint64_t h = 14695981039346656037ULL ^ salt_;
  for (unsigned char c : token) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return util::splitmix64(h);
}

std::size_t FeatureHasher::bucket(const std::string& token) const {
  return static_cast<std::size_t>(raw_hash(token) % buckets_);
}

int FeatureHasher::sign(const std::string& token) const {
  // Use a disjoint bit of the hash for the sign so bucket and sign are
  // effectively independent.
  return (raw_hash(token) >> 63) ? 1 : -1;
}

double expected_collision_rate(std::size_t vocab_size, std::size_t buckets) {
  FLINT_CHECK(buckets > 0);
  if (vocab_size <= 1) return 0.0;
  double miss = std::pow(1.0 - 1.0 / static_cast<double>(buckets),
                         static_cast<double>(vocab_size - 1));
  return 1.0 - miss;
}

double measured_collision_rate(const std::vector<std::string>& tokens,
                               const FeatureHasher& hasher) {
  FLINT_CHECK(!tokens.empty());
  std::unordered_map<std::size_t, std::size_t> bucket_counts;
  for (const auto& t : tokens) ++bucket_counts[hasher.bucket(t)];
  std::size_t collided = 0;
  for (const auto& t : tokens)
    if (bucket_counts[hasher.bucket(t)] > 1) ++collided;
  return static_cast<double>(collided) / static_cast<double>(tokens.size());
}

}  // namespace flint::feature
