#include "flint/feature/vocab.h"

#include <algorithm>
#include <sstream>

#include "flint/util/check.h"

namespace flint::feature {

Vocab Vocab::build(const std::vector<std::pair<std::string, std::uint64_t>>& frequencies,
                   std::size_t max_size) {
  FLINT_CHECK(max_size > 0);
  auto sorted = frequencies;
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  Vocab v;
  for (const auto& [token, freq] : sorted) {
    if (v.tokens_.size() >= max_size) break;
    if (v.index_.count(token)) continue;
    v.index_[token] = static_cast<std::int32_t>(v.tokens_.size()) + 1;
    v.tokens_.push_back(token);
  }
  return v;
}

std::int32_t Vocab::lookup(const std::string& token) const {
  auto it = index_.find(token);
  return it == index_.end() ? kOovId : it->second;
}

std::optional<std::string> Vocab::reverse_lookup(std::int32_t id) const {
  if (id <= 0 || static_cast<std::size_t>(id) > tokens_.size()) return std::nullopt;
  return tokens_[static_cast<std::size_t>(id) - 1];
}

std::size_t Vocab::asset_bytes() const {
  std::size_t bytes = 0;
  for (const auto& t : tokens_) bytes += t.size() + 1;  // newline separator
  return bytes;
}

std::string Vocab::serialize() const {
  std::string out;
  out.reserve(asset_bytes());
  for (const auto& t : tokens_) {
    out += t;
    out += '\n';
  }
  return out;
}

Vocab Vocab::parse(const std::string& text) {
  Vocab v;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    FLINT_CHECK_MSG(v.index_.count(line) == 0, "duplicate vocab token '" << line << "'");
    v.index_[line] = static_cast<std::int32_t>(v.tokens_.size()) + 1;
    v.tokens_.push_back(line);
  }
  return v;
}

}  // namespace flint::feature
