#include "flint/feature/transform.h"

namespace flint::feature {

TokenEncoder::TokenEncoder(EncoderKind kind, Vocab vocab, std::size_t buckets,
                           std::uint64_t salt)
    : kind_(kind), vocab_(std::move(vocab)), hasher_(buckets == 0 ? 1 : buckets, salt) {}

TokenEncoder TokenEncoder::with_vocab(Vocab vocab) {
  return TokenEncoder(EncoderKind::kVocab, std::move(vocab), 1, 0);
}

TokenEncoder TokenEncoder::with_hashing(std::size_t buckets, std::uint64_t salt) {
  return TokenEncoder(EncoderKind::kHashing, Vocab{}, buckets, salt);
}

std::vector<std::int32_t> TokenEncoder::encode(const std::vector<std::string>& raw) const {
  std::vector<std::int32_t> out;
  out.reserve(raw.size());
  for (const auto& token : raw) {
    if (kind_ == EncoderKind::kVocab) {
      out.push_back(vocab_.lookup(token));
    } else {
      out.push_back(static_cast<std::int32_t>(hasher_.bucket(token)));
    }
  }
  return out;
}

std::size_t TokenEncoder::asset_bytes() const {
  return kind_ == EncoderKind::kVocab ? vocab_.asset_bytes() : 0;
}

std::size_t TokenEncoder::id_space() const {
  return kind_ == EncoderKind::kVocab ? vocab_.size() + 1 : hasher_.buckets();
}

}  // namespace flint::feature
