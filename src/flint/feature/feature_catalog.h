// Device-cloud feature catalog (paper Figure 6): registers features with
// their source (device vs cloud), retention policy, payload size, transform
// location, and cacheability; the device runtime view serves feature values
// with caching and network-cost accounting.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "flint/feature/feature_cache.h"
#include "flint/util/rng.h"

namespace flint::feature {

/// Where a feature's authoritative values live.
enum class FeatureSource { kDevice, kCloud };

/// Where the raw -> model-ready transformation runs.
enum class TransformLocation { kDevice, kCloud };

/// Catalog entry for one feature.
struct FeatureDef {
  std::string name;
  FeatureSource source = FeatureSource::kDevice;
  std::size_t value_bytes = 64;    ///< per-entity payload
  int retention_days = 30;         ///< device-side retention policy
  bool cacheable = true;           ///< may cloud values be cached on device?
  TransformLocation transform = TransformLocation::kDevice;
};

/// Cloud-side metadata registry for features.
class FeatureCatalog {
 public:
  /// Register a feature; duplicate names are an error.
  void register_feature(FeatureDef def);

  bool has(const std::string& name) const;
  const FeatureDef& feature(const std::string& name) const;
  std::vector<std::string> names() const;
  std::size_t size() const { return defs_.size(); }

 private:
  std::map<std::string, FeatureDef> defs_;
};

/// Access accounting for resource forecasting.
struct FeatureAccessStats {
  std::uint64_t requests = 0;
  std::uint64_t device_reads = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cloud_fetches = 0;
  std::uint64_t network_bytes = 0;
  double total_latency_s = 0.0;
};

/// The on-device runtime view of the catalog: serves feature values, pulling
/// cloud features over the (modeled) network and caching them when allowed.
/// Values are synthesized deterministically from (feature, entity) so that
/// repeated fetches are consistent — the catalog manages bytes and latency,
/// not semantics.
class DeviceFeatureRuntime {
 public:
  DeviceFeatureRuntime(const FeatureCatalog& catalog, std::uint64_t cache_bytes,
                       double cloud_rtt_s = 0.05, double bandwidth_mbps = 10.0);

  /// Fetch one entity's value for a feature. Returns the value; latency and
  /// traffic are recorded in stats().
  std::vector<float> fetch(const std::string& feature, std::uint64_t entity);

  const FeatureAccessStats& stats() const { return stats_; }
  const CacheStats& cache_stats() const { return cache_.stats(); }

 private:
  std::vector<float> synthesize(const FeatureDef& def, std::uint64_t entity) const;

  const FeatureCatalog* catalog_;
  FeatureCache cache_;
  double cloud_rtt_s_;
  double bandwidth_mbps_;
  FeatureAccessStats stats_;
};

}  // namespace flint::feature
