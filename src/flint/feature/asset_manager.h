// Versioned model-asset management on the device. The ads case study (§4.1)
// found that "the device must refresh and store vocab files as assets, which
// could be as big as 1.28MB for high-cardinality variables"; Figure 6 shows
// vocabulary being pulled from the cloud and cached. AssetManager models
// that lifecycle: versioned assets published in the cloud, pulled on demand,
// cached on device under a storage budget, refreshed when stale.
//
// Concurrency contract: single-threaded by design. Asset pulls happen inside
// a simulated client task, and each simulated device owns its manager; no
// state here is shared across worker threads, so these classes carry no
// capabilities on purpose. Anything promoted to cross-thread use must gain a
// util::Mutex plus FLINT_GUARDED_BY annotations (util/thread_annotations.h).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace flint::feature {

/// One published version of a named asset (vocab file, normalization table).
struct AssetVersion {
  int version = 0;
  std::uint64_t bytes = 0;
  std::string checksum;  ///< content id; device compares to skip re-download
};

/// Cloud-side registry of model assets.
class AssetRegistry {
 public:
  /// Publish a new version of `name`; returns the assigned version number.
  int publish(const std::string& name, std::uint64_t bytes, std::string checksum);

  std::optional<AssetVersion> latest(const std::string& name) const;
  std::size_t version_count(const std::string& name) const;

 private:
  std::map<std::string, std::vector<AssetVersion>> assets_;
};

/// Device-side pull accounting.
struct AssetPullStats {
  std::uint64_t requests = 0;
  std::uint64_t downloads = 0;       ///< actual network pulls
  std::uint64_t up_to_date_hits = 0; ///< cached and current; no pull
  std::uint64_t refreshes = 0;       ///< cached but stale; re-pulled
  std::uint64_t bytes_downloaded = 0;
  std::uint64_t evictions = 0;
};

/// Device-side asset cache: ensures the latest version of each requested
/// asset is present, within a storage budget (LRU eviction over assets).
class DeviceAssetManager {
 public:
  DeviceAssetManager(const AssetRegistry& registry, std::uint64_t storage_budget_bytes);

  /// Ensure `name`'s latest published version is on device. Returns the
  /// version now held, or nullopt when the asset is unknown or can never
  /// fit the budget. Downloads only when missing or stale.
  std::optional<AssetVersion> ensure(const std::string& name);

  /// Is a current copy of `name` on device?
  bool is_current(const std::string& name) const;

  std::uint64_t storage_used() const { return storage_used_; }
  const AssetPullStats& stats() const { return stats_; }

 private:
  struct CachedAsset {
    AssetVersion version;
    std::uint64_t last_use = 0;  ///< logical clock for LRU
  };
  void evict_until_fits(std::uint64_t incoming);

  const AssetRegistry* registry_;
  std::uint64_t budget_;
  std::uint64_t storage_used_ = 0;
  std::uint64_t clock_ = 0;
  std::map<std::string, CachedAsset> cached_;
  AssetPullStats stats_;
};

}  // namespace flint::feature
