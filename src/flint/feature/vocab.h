// Vocabulary files: string -> integer id mappings used during on-device data
// processing (paper §3.3 "Data Locality" and §4.1). High-cardinality vocabs
// can reach megabytes and must be pulled/cached by the device runtime; the
// alternative is feature hashing (feature_hashing.h).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace flint::feature {

/// Reserved id for out-of-vocabulary tokens.
inline constexpr std::int32_t kOovId = 0;

/// An immutable token -> id mapping. Id 0 is reserved for OOV; real tokens
/// get ids 1..size.
class Vocab {
 public:
  Vocab() = default;

  /// Build from (token, frequency) pairs, keeping the `max_size` most
  /// frequent tokens (ties broken lexicographically for determinism).
  static Vocab build(const std::vector<std::pair<std::string, std::uint64_t>>& frequencies,
                     std::size_t max_size);

  /// Id for a token (kOovId if unknown).
  std::int32_t lookup(const std::string& token) const;

  /// Token for an id, if in range (OOV and out-of-range return nullopt).
  std::optional<std::string> reverse_lookup(std::int32_t id) const;

  std::size_t size() const { return tokens_.size(); }

  /// Serialized asset size in bytes: token bytes + newlines (the on-disk
  /// format below). This is the number the device storage budget sees.
  std::size_t asset_bytes() const;

  /// One token per line, in id order. Round-trips with parse().
  std::string serialize() const;
  static Vocab parse(const std::string& text);

 private:
  std::vector<std::string> tokens_;              // index i -> id i+1
  std::unordered_map<std::string, std::int32_t> index_;
};

}  // namespace flint::feature
