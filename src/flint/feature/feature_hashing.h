// Feature hashing (Weinberger et al., 2009): map string features to integer
// buckets through a hash function instead of a vocab file, trading storage
// for hash-collision-induced predictive power loss (paper §4.1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace flint::feature {

/// Stateless string -> bucket hasher (FNV-1a + splitmix finalizer).
class FeatureHasher {
 public:
  explicit FeatureHasher(std::size_t buckets, std::uint64_t salt = 0);

  std::size_t buckets() const { return buckets_; }

  /// Bucket of a token; signed variant also returns a +-1 sign to reduce
  /// collision bias (the standard hashing-trick refinement).
  std::size_t bucket(const std::string& token) const;
  int sign(const std::string& token) const;

 private:
  std::uint64_t raw_hash(const std::string& token) const;
  std::size_t buckets_;
  std::uint64_t salt_;
};

/// Expected fraction of vocabulary tokens that share a bucket with at least
/// one other token (birthday-style collision estimate): 1 - (1-1/b)^(v-1).
double expected_collision_rate(std::size_t vocab_size, std::size_t buckets);

/// Measured collision rate: fraction of distinct tokens whose bucket is
/// shared with another distinct token.
double measured_collision_rate(const std::vector<std::string>& tokens,
                               const FeatureHasher& hasher);

}  // namespace flint::feature
