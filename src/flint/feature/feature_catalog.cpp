#include "flint/feature/feature_catalog.h"

#include "flint/util/check.h"

namespace flint::feature {

void FeatureCatalog::register_feature(FeatureDef def) {
  FLINT_CHECK_MSG(!def.name.empty(), "feature needs a name");
  FLINT_CHECK_MSG(defs_.count(def.name) == 0, "duplicate feature '" << def.name << "'");
  FLINT_CHECK(def.value_bytes > 0);
  defs_[def.name] = std::move(def);
}

bool FeatureCatalog::has(const std::string& name) const { return defs_.count(name) > 0; }

const FeatureDef& FeatureCatalog::feature(const std::string& name) const {
  auto it = defs_.find(name);
  FLINT_CHECK_MSG(it != defs_.end(), "unknown feature '" << name << "'");
  return it->second;
}

std::vector<std::string> FeatureCatalog::names() const {
  std::vector<std::string> out;
  out.reserve(defs_.size());
  for (const auto& [name, _] : defs_) out.push_back(name);
  return out;
}

DeviceFeatureRuntime::DeviceFeatureRuntime(const FeatureCatalog& catalog,
                                           std::uint64_t cache_bytes, double cloud_rtt_s,
                                           double bandwidth_mbps)
    : catalog_(&catalog),
      cache_(cache_bytes),
      cloud_rtt_s_(cloud_rtt_s),
      bandwidth_mbps_(bandwidth_mbps) {
  FLINT_CHECK(cloud_rtt_s >= 0.0 && bandwidth_mbps > 0.0);
}

std::vector<float> DeviceFeatureRuntime::synthesize(const FeatureDef& def,
                                                    std::uint64_t entity) const {
  // Deterministic pseudo-values: the same (feature, entity) always yields
  // the same vector, so cache-hit paths return identical data.
  std::size_t floats = std::max<std::size_t>(1, def.value_bytes / sizeof(float));
  std::vector<float> value(floats);
  std::uint64_t h = util::splitmix64(std::hash<std::string>{}(def.name) ^ entity);
  for (std::size_t i = 0; i < floats; ++i) {
    h = util::splitmix64(h);
    value[i] = static_cast<float>(static_cast<double>(h % 10000) / 10000.0 - 0.5);
  }
  return value;
}

std::vector<float> DeviceFeatureRuntime::fetch(const std::string& feature, std::uint64_t entity) {
  const FeatureDef& def = catalog_->feature(feature);
  ++stats_.requests;
  if (def.source == FeatureSource::kDevice) {
    ++stats_.device_reads;
    stats_.total_latency_s += 1e-4;  // local storage read
    return synthesize(def, entity);
  }
  std::string key = feature + "/" + std::to_string(entity);
  if (auto cached = cache_.get(key)) {
    ++stats_.cache_hits;
    stats_.total_latency_s += 1e-4;
    return *cached;
  }
  ++stats_.cloud_fetches;
  stats_.network_bytes += def.value_bytes;
  stats_.total_latency_s +=
      cloud_rtt_s_ + static_cast<double>(def.value_bytes) * 8.0 / (bandwidth_mbps_ * 1e6);
  std::vector<float> value = synthesize(def, entity);
  if (def.cacheable) cache_.put(key, value);
  return value;
}

}  // namespace flint::feature
