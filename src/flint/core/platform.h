// FlintPlatform: the integration façade (paper Figure 3). One object that
// wires the shared components — device catalog, data catalog, model store,
// feature catalog — to the measurement tools and the experimental framework,
// the way the paper's platform augments LinkedIn's centralized ML platform.
#pragma once

#include <memory>

#include "flint/core/experiment.h"
#include "flint/core/forecasting.h"
#include "flint/data/proxy_generator.h"
#include "flint/device/availability.h"
#include "flint/device/benchmark_harness.h"
#include "flint/feature/feature_catalog.h"
#include "flint/obs/telemetry.h"
#include "flint/store/model_store.h"

namespace flint::core {

/// FL-vs-centralized evaluation outcome for one use case (a Table 4 row).
struct CaseStudyResult {
  double centralized_metric = 0.0;
  double fl_metric = 0.0;        ///< median over trials
  double fl_metric_stdev = 0.0;
  /// (fl - centralized) / centralized, in percent (negative = FL worse).
  double performance_diff_pct = 0.0;
  double projected_training_h = 0.0;  ///< median virtual duration
  TrialSummary fl_trials;
  ResourceForecast forecast;
};

/// The platform façade.
class FlintPlatform {
 public:
  explicit FlintPlatform(std::uint64_t seed = 42);

  // --- Shared components (Figure 3). ---
  device::DeviceCatalog& devices() { return devices_; }
  const device::DeviceCatalog& devices() const { return devices_; }
  data::DataCatalog& data_catalog() { return data_catalog_; }
  store::ModelStore& model_store() { return model_store_; }
  feature::FeatureCatalog& features() { return features_; }
  util::Rng& rng() { return rng_; }

  /// Attach a telemetry context (non-owning; must outlive the platform's
  /// use of it, nullptr detaches). evaluate_case_study installs it as the
  /// ambient obs context and threads it into every FL trial it runs.
  void set_telemetry(obs::Telemetry* telemetry) { telemetry_ = telemetry; }
  obs::Telemetry* telemetry() const { return telemetry_; }

  // --- Measurement tools (§3.2). ---

  /// Deploy a zoo model's benchmark app across the device fleet.
  device::FleetBenchmarkReport benchmark_model(char zoo_id, std::size_t records = 5000);

  /// Generate a synthetic session log (substitute for production logs).
  device::SessionLog generate_session_log(const device::SessionGeneratorConfig& config);

  /// Apply participation criteria to a session log.
  device::AvailabilityTrace build_availability(const device::SessionLog& log,
                                               const device::AvailabilityCriteria& criteria);

  // --- Proxy data (§3.3). ---

  /// Generate and register a proxy dataset.
  data::ProxyEntry generate_proxy(const std::vector<ml::Example>& records,
                                  const data::ProxyConfig& config,
                                  const std::function<std::uint64_t(std::size_t)>& key_of);

  // --- Decision-workflow evaluation (§3.4, §4). ---

  /// Full FL-vs-centralized comparison for a task: trains the centralized
  /// baseline, runs `trials` FedBuff trials under the availability trace,
  /// stores both models, and forecasts resources.
  CaseStudyResult evaluate_case_study(const data::FederatedTask& task,
                                      const fl::AsyncConfig& fl_config, int trials,
                                      int centralized_epochs,
                                      const ForecastConfig& forecast_config);

 private:
  util::Rng rng_;
  obs::Telemetry* telemetry_ = nullptr;
  device::DeviceCatalog devices_;
  data::DataCatalog data_catalog_;
  store::ModelStore model_store_;
  feature::FeatureCatalog features_;
};

}  // namespace flint::core
