// Experiment framework façade (paper §3.4): multi-trial runs with
// error-bounded metrics ("our experimental framework runs multiple trials of
// each configuration to report error-bounded metrics").
#pragma once

#include <vector>

#include "flint/fl/fedavg.h"
#include "flint/fl/fedbuff.h"

namespace flint::core {

/// Aggregate over N trials of one configuration.
struct TrialSummary {
  std::vector<fl::RunResult> trials;
  double median_metric = 0.0;
  double mean_metric = 0.0;
  double stdev_metric = 0.0;
  double median_duration_s = 0.0;
  double mean_client_compute_s = 0.0;
  double mean_tasks_started = 0.0;

  const fl::RunResult& trial(std::size_t i) const { return trials[i]; }
};

/// Run `n` FedBuff trials; trial i uses seed base.inputs.seed + i.
TrialSummary run_trials_fedbuff(const fl::AsyncConfig& base, int n);

/// Run `n` FedAvg trials; trial i uses seed base.inputs.seed + i.
TrialSummary run_trials_fedavg(const fl::SyncConfig& base, int n);

/// Summarize pre-computed results (exposed for custom sweeps).
TrialSummary summarize_trials(std::vector<fl::RunResult> trials);

}  // namespace flint::core
