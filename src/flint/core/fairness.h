// Sub-population fairness analysis (paper §3.2): participation criteria must
// be "iteratively refined ... while ensuring that the model performance is
// fair among different sub-populations of clients. For instance, if a device
// hardware criterion introduces biased model performance on users of older
// phones, then the hardware requirement needs to be relaxed."
//
// FairnessReport slices a trained model's offline metric by device tier so a
// modeler can see exactly that bias before deployment.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "flint/data/synthetic_tasks.h"
#include "flint/device/device_catalog.h"

namespace flint::core {

/// Device tiers now live in device/device_profile.h so lower layers (sim, fl,
/// the obs client ledger) can attribute by tier; re-exported here for the
/// existing core-level callers.
using DeviceTier = device::DeviceTier;
using device::tier_name;
using device::tier_of;

/// One sub-population's slice of the evaluation.
struct SubpopulationMetric {
  DeviceTier tier = DeviceTier::kMidRange;
  std::size_t clients = 0;
  std::size_t examples = 0;
  double metric = 0.0;
};

/// Fairness report across device tiers.
struct FairnessReport {
  std::vector<SubpopulationMetric> tiers;
  double overall_metric = 0.0;
  /// max tier metric - min tier metric (over tiers with data).
  double metric_gap = 0.0;

  /// True when the worst tier is within `tolerance` (absolute metric units)
  /// of the best — the gate a criteria review would apply.
  bool fair_within(double tolerance) const { return metric_gap <= tolerance; }

  std::string to_string() const;
};

/// Evaluate `model` separately on each device tier's clients. `client_device`
/// maps client id -> device catalog index (as produced by the session
/// generator); clients absent from the map are skipped. Test examples are
/// drawn from each client's holdout slice of its own training data when
/// `holdout_fraction` > 0; the final `holdout_fraction` of each client's
/// examples are used for evaluation.
FairnessReport evaluate_fairness(ml::Model& model, const data::FederatedTask& task,
                                 const std::vector<std::size_t>& client_device,
                                 const device::DeviceCatalog& catalog,
                                 double holdout_fraction = 0.3);

}  // namespace flint::core
