// Resource forecasting (paper §3.5): project cloud and device resource needs
// from a simulated run before anything is deployed to users.
#pragma once

#include <cstdint>
#include <string>

#include "flint/fl/run_common.h"
#include "flint/privacy/secure_agg.h"

namespace flint::core {

/// Projected resource needs of one FL training job.
struct ResourceForecast {
  // --- Device side. ---
  double total_client_compute_h = 0.0;   ///< sum of taskDuration compute
  double wasted_client_compute_h = 0.0;  ///< compute on non-aggregated tasks
  std::uint64_t client_tasks_started = 0;
  double mean_task_compute_s = 0.0;
  /// Naive device-energy estimate at `device_watts` during compute.
  double device_energy_kwh = 0.0;

  // --- Cloud side. ---
  double training_duration_h = 0.0;    ///< projected wall time (virtual)
  double updates_per_second = 0.0;
  double aggregation_mbytes_per_s = 0.0;  ///< TEE ingress need
  bool fits_tee = false;               ///< within the TEE bandwidth limit?
  /// Aggregator workers needed, given one worker sustains
  /// `updates_per_worker_per_s`.
  std::uint64_t aggregator_workers = 0;

  std::string summary() const;
};

/// Forecast parameters.
struct ForecastConfig {
  std::uint64_t update_bytes = 4096;   ///< one gradient update's size M
  privacy::TeeConfig tee;              ///< enclave capacity model
  double updates_per_worker_per_s = 20.0;
  double device_watts = 2.5;           ///< mobile SoC under training load
  /// Population scaling (§3.5: project a simulated cohort onto the target
  /// deployment). When both are > 0, device-side totals and update
  /// throughput scale by target/simulated (more — or fewer — clients at the
  /// same participation fraction and round cadence); the projected training
  /// duration is cadence-bound and does not scale. 0 disables scaling.
  double simulated_population = 0.0;
  double target_population = 0.0;

  /// target/simulated when both set (and finite), else 1.
  double population_scale() const;
};

/// Build a forecast from a finished (or simulated) run.
ResourceForecast forecast_resources(const fl::RunResult& result, const ForecastConfig& config);

}  // namespace flint::core
