#include "flint/core/forecasting.h"

#include <cmath>
#include <sstream>

#include "flint/util/check.h"

namespace flint::core {

std::string ResourceForecast::summary() const {
  std::ostringstream os;
  os.precision(4);
  os << "duration=" << training_duration_h << "h, client_compute=" << total_client_compute_h
     << "h (wasted " << wasted_client_compute_h << "h), tasks=" << client_tasks_started
     << ", updates/s=" << updates_per_second << ", TEE=" << aggregation_mbytes_per_s
     << "MB/s (" << (fits_tee ? "fits" : "OVER CAPACITY") << "), workers=" << aggregator_workers
     << ", device_energy=" << device_energy_kwh << "kWh";
  return os.str();
}

double ForecastConfig::population_scale() const {
  if (simulated_population <= 0.0 || target_population <= 0.0) return 1.0;
  double s = target_population / simulated_population;
  FLINT_CHECK_FINITE(s);
  return s;
}

ResourceForecast forecast_resources(const fl::RunResult& result, const ForecastConfig& config) {
  ResourceForecast f;
  const sim::SimMetrics& m = result.metrics;
  // Target/simulated population ratio (1 when unset). Device-side totals and
  // aggregate update throughput grow with the cohort; per-task means and the
  // cadence-bound training duration do not.
  const double scale = config.population_scale();
  f.total_client_compute_h = m.client_compute_s() / 3600.0 * scale;
  f.client_tasks_started =
      static_cast<std::uint64_t>(std::llround(static_cast<double>(m.tasks_started()) * scale));
  f.training_duration_h = result.virtual_duration_s / 3600.0;

  // Wasted compute: attribute the waste fraction of started tasks to waste.
  // (Interrupted tasks spend partial compute, so this is an upper bound.)
  f.wasted_client_compute_h = f.total_client_compute_h * m.waste_fraction();

  if (m.tasks_started() > 0)
    f.mean_task_compute_s = m.client_compute_s() / static_cast<double>(m.tasks_started());

  f.device_energy_kwh = f.total_client_compute_h * config.device_watts / 1000.0;

  f.updates_per_second = result.updates_per_second() * scale;
  privacy::TeeSecureAggregator tee(config.tee, 1);
  f.aggregation_mbytes_per_s =
      tee.required_mbytes_per_s(f.updates_per_second, config.update_bytes);
  f.fits_tee = tee.within_capacity(f.updates_per_second, config.update_bytes);

  FLINT_CHECK(config.updates_per_worker_per_s > 0.0);
  f.aggregator_workers = static_cast<std::uint64_t>(
      std::ceil(f.updates_per_second / config.updates_per_worker_per_s));
  if (f.updates_per_second > 0.0 && f.aggregator_workers == 0) f.aggregator_workers = 1;

  // A degenerate run (zero rounds, zero horizon) must forecast zeros, never
  // NaN/inf: every projected quantity is a finite function of finite inputs.
  FLINT_CHECK_FINITE(f.total_client_compute_h);
  FLINT_CHECK_FINITE(f.wasted_client_compute_h);
  FLINT_CHECK_FINITE(f.mean_task_compute_s);
  FLINT_CHECK_FINITE(f.device_energy_kwh);
  FLINT_CHECK_FINITE(f.training_duration_h);
  FLINT_CHECK_FINITE(f.updates_per_second);
  FLINT_CHECK_FINITE(f.aggregation_mbytes_per_s);
  return f;
}

}  // namespace flint::core
