#include "flint/core/report.h"

#include <filesystem>
#include <sstream>

#include "flint/util/check.h"
#include "flint/util/csv.h"

namespace flint::core {

std::string render_report_markdown(const ReportInputs& inputs) {
  FLINT_CHECK_MSG(inputs.run != nullptr, "report needs a run result");
  const fl::RunResult& run = *inputs.run;
  const sim::SimMetrics& m = run.metrics;

  std::ostringstream os;
  os.precision(5);
  os << "# " << inputs.title << "\n\n";

  os << "## Model metrics\n\n";
  os << "| " << inputs.metric_name << " (final) | rounds | projected duration |\n";
  os << "|---|---|---|\n";
  os << "| " << run.final_metric << " | " << run.rounds << " | "
     << run.virtual_duration_s / 3600.0 << " h |\n\n";
  if (inputs.centralized_metric != 0.0) {
    double diff =
        (run.final_metric - inputs.centralized_metric) / inputs.centralized_metric * 100.0;
    os << "Centralized baseline: " << inputs.centralized_metric << " (" << (diff >= 0 ? "+" : "")
       << diff << "% vs FL)\n\n";
  }
  if (!run.eval_curve.empty()) {
    // Proper table instead of an unbounded inline paragraph; long runs are
    // downsampled to at most kMaxCurveRows rows, always keeping the final
    // point (the full-resolution series lives in eval_curve.csv).
    constexpr std::size_t kMaxCurveRows = 20;
    const auto& curve = run.eval_curve;
    std::size_t stride = (curve.size() + kMaxCurveRows - 1) / kMaxCurveRows;
    os << "Evaluation curve";
    if (stride > 1)
      os << " (downsampled 1/" << stride << " from " << curve.size() << " points)";
    os << ":\n\n";
    os << "| round | virtual time (h) | " << inputs.metric_name << " |\n";
    os << "|---|---|---|\n";
    for (std::size_t i = 0; i < curve.size(); i += stride) {
      // Show the last point in place of the last strided one.
      const auto& p = (i + stride >= curve.size()) ? curve.back() : curve[i];
      os << "| " << p.round << " | " << p.time / 3600.0 << " | " << p.metric << " |\n";
    }
    os << "\n";
  }

  os << "## System metrics\n\n";
  os << "| started | succeeded | interrupted | stale | failed | waste |\n";
  os << "|---|---|---|---|---|---|\n";
  os << "| " << m.tasks_started() << " | " << m.tasks_succeeded() << " | "
     << m.tasks_interrupted() << " | " << m.tasks_stale() << " | " << m.tasks_failed() << " | "
     << m.waste_fraction() * 100.0 << "% |\n\n";
  os << "Client compute: " << m.client_compute_s() / 3600.0
     << " h; mean round: " << m.mean_round_duration_s() << " s; updates/s: "
     << run.updates_per_second() << "\n\n";
  if (run.resume_count > 0) {
    os << "Recovery: resumed from checkpoint round " << run.resumed_from_round << " ("
       << run.resume_count << (run.resume_count == 1 ? " resume" : " resumes")
       << " in this lineage); results are bit-identical to an uninterrupted run.\n\n";
  }

  if (!run.telemetry.empty()) {
    os << "## Telemetry\n\n";
    os << "| series | type | value | count | mean | p50 | p95 | p99 |\n";
    os << "|---|---|---|---|---|---|---|---|\n";
    for (const auto& s : run.telemetry) {
      os << "| " << s.name << " | " << obs::kind_name(s.kind) << " | ";
      if (s.kind == obs::MetricSample::Kind::kHistogram)
        os << "- | " << s.count << " | " << s.value << " | " << s.quantile(0.50) << " | "
           << s.quantile(0.95) << " | " << s.quantile(0.99) << " |\n";  // value holds the mean
      else
        os << s.value << " | - | - | - | - | - |\n";
    }
    os << "\n";
  }

  if (!run.ledger.empty()) {
    os << "## Client attribution\n\n";
    auto rollup_table = [&os](const std::vector<obs::LedgerRollup>& rows, const char* axis) {
      os << "| " << axis
         << " | clients | succeeded | interrupted | stale | failed | compute (h) | wasted (h) "
            "| bytes up (MB) | bytes down (MB) |\n";
      os << "|---|---|---|---|---|---|---|---|---|---|\n";
      for (const auto& r : rows) {
        if (r.clients == 0 && r.tasks_finished() == 0) continue;
        os << "| " << r.key << " | " << r.clients << " | " << r.tasks_succeeded << " | "
           << r.tasks_interrupted << " | " << r.tasks_stale << " | " << r.tasks_failed << " | "
           << r.compute_s / 3600.0 << " | " << r.wasted_compute_s / 3600.0 << " | "
           << static_cast<double>(r.bytes_up) / 1e6 << " | "
           << static_cast<double>(r.bytes_down) / 1e6 << " |\n";
      }
      os << "\n";
    };
    rollup_table(run.ledger.by_tier, "device tier");
    rollup_table(run.ledger.by_cohort, "availability cohort");
    if (!run.ledger.stragglers.empty()) {
      os << "Top stragglers (wasted compute):\n\n";
      os << "| client | wasted (s) | compute (s) | succeeded | interrupted | stale |\n";
      os << "|---|---|---|---|---|---|\n";
      for (const auto& c : run.ledger.stragglers)
        os << "| " << c.client_id << " | " << c.wasted_compute_s << " | " << c.compute_s
           << " | " << c.tasks_succeeded << " | " << c.tasks_interrupted << " | "
           << c.tasks_stale << " |\n";
      os << "\n";
    }
  }

  if (inputs.forecast != nullptr) {
    os << "## Resource forecast\n\n" << inputs.forecast->summary() << "\n\n";
  }
  if (inputs.fairness != nullptr) {
    os << "## Fairness (device tiers)\n\n" << inputs.fairness->to_string() << "\n\n";
  }
  return os.str();
}

void write_eval_curve_csv(const std::string& path, const fl::RunResult& run) {
  util::CsvFile file(path);
  FLINT_CHECK_MSG(file.ok(), "cannot write " << path);
  file.write_row({"virtual_time_s", "round", "metric"});
  for (const auto& p : run.eval_curve)
    file.write_row({std::to_string(p.time), std::to_string(p.round), std::to_string(p.metric)});
}

void write_rounds_csv(const std::string& path, const fl::RunResult& run) {
  util::CsvFile file(path);
  FLINT_CHECK_MSG(file.ok(), "cannot write " << path);
  file.write_row({"round", "start_s", "end_s", "duration_s", "updates", "mean_staleness"});
  for (const auto& r : run.metrics.rounds())
    file.write_row({std::to_string(r.round), std::to_string(r.start), std::to_string(r.end),
                    std::to_string(r.duration_s()), std::to_string(r.updates_aggregated),
                    std::to_string(r.mean_staleness)});
}

std::string write_report(const std::string& dir, const ReportInputs& inputs) {
  FLINT_CHECK(inputs.run != nullptr);
  namespace fs = std::filesystem;
  fs::create_directories(dir);
  std::string report_path = (fs::path(dir) / "report.md").string();
  {
    std::ofstream out(report_path);
    FLINT_CHECK_MSG(out.good(), "cannot write " << report_path);
    out << render_report_markdown(inputs);
  }
  write_eval_curve_csv((fs::path(dir) / "eval_curve.csv").string(), *inputs.run);
  write_rounds_csv((fs::path(dir) / "rounds.csv").string(), *inputs.run);
  return report_path;
}

}  // namespace flint::core
