#include "flint/core/decision_workflow.h"

#include <sstream>

#include "flint/util/check.h"

namespace flint::core {

const char* verdict_name(StageVerdict verdict) {
  switch (verdict) {
    case StageVerdict::kPass: return "PASS";
    case StageVerdict::kPassWithNotes: return "PASS (notes)";
    case StageVerdict::kBlock: return "BLOCK";
  }
  return "?";
}

const char* stage_name(Stage stage) {
  switch (stage) {
    case Stage::kUnderstandClientData: return "understand-client-data";
    case Stage::kDeviceBenchmark: return "device-benchmark";
    case Stage::kAvailabilityAnalysis: return "availability-analysis";
    case Stage::kProxyDataGeneration: return "proxy-data-generation";
    case Stage::kOfflineFlEvaluation: return "offline-fl-evaluation";
    case Stage::kResourceForecast: return "resource-forecast";
    case Stage::kPrivacySecurityReview: return "privacy-security-review";
    case Stage::kDeploymentDecision: return "deployment-decision";
  }
  return "?";
}

std::string DecisionReport::to_string() const {
  std::ostringstream os;
  for (const auto& e : entries) {
    os << "[" << verdict_name(e.report.verdict) << "] " << stage_name(e.stage);
    if (!e.report.notes.empty()) os << " — " << e.report.notes;
    for (const auto& [k, v] : e.report.measurements) os << "\n    " << k << " = " << v;
    os << "\n";
  }
  os << (go ? "DECISION: GO" : "DECISION: NO-GO (blocked at " + blocked_at + ")") << "\n";
  return os.str();
}

const std::vector<Stage>& DecisionWorkflow::canonical_order() {
  static const std::vector<Stage> kOrder = {
      Stage::kUnderstandClientData,  Stage::kDeviceBenchmark,
      Stage::kAvailabilityAnalysis,  Stage::kProxyDataGeneration,
      Stage::kOfflineFlEvaluation,   Stage::kResourceForecast,
      Stage::kPrivacySecurityReview, Stage::kDeploymentDecision,
  };
  return kOrder;
}

void DecisionWorkflow::set_stage(Stage stage, StageFn fn) {
  FLINT_CHECK_MSG(fn != nullptr, "stage callback must not be null");
  stages_[stage] = std::move(fn);
}

bool DecisionWorkflow::has_stage(Stage stage) const { return stages_.count(stage) > 0; }

DecisionReport DecisionWorkflow::run() const {
  DecisionReport report;
  for (Stage stage : canonical_order()) {
    auto it = stages_.find(stage);
    if (it == stages_.end()) {
      StageReport skipped;
      skipped.verdict = StageVerdict::kPassWithNotes;
      skipped.notes = "stage not instrumented; skipped";
      report.entries.push_back({stage, std::move(skipped)});
      continue;
    }
    StageReport r = it->second();
    bool block = r.verdict == StageVerdict::kBlock;
    report.entries.push_back({stage, std::move(r)});
    if (block) {
      report.go = false;
      report.blocked_at = stage_name(stage);
      return report;
    }
  }
  report.go = true;
  return report;
}

}  // namespace flint::core
