// Schema-versioned run artifact: one JSON file that captures everything a
// regression pipeline needs to compare two runs of the same experiment —
// model curve, system metrics, resource forecast, telemetry snapshot, the
// per-client attribution rollups, and a virtual-time timeline of rounds /
// evals / checkpoints. Written by run_common-based drivers (examples, bench
// binaries via bench_helpers.h) and consumed by tools/flint_compare.py and
// tools/validate_trace.py --artifact.
//
// Stability contract: bump kRunArtifactSchemaVersion whenever a field is
// removed or changes meaning; adding fields is backward compatible (the
// tooling ignores unknown keys). Checked-in bench baselines depend on this.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "flint/core/forecasting.h"
#include "flint/fl/run_common.h"

namespace flint::core {

inline constexpr int kRunArtifactSchemaVersion = 1;
inline constexpr const char* kRunArtifactSchema = "flint.run_artifact";

/// 64-bit FNV-1a over arbitrary text; used to fingerprint the run's config so
/// compare tooling can warn when two artifacts came from different setups.
std::uint64_t fingerprint64(const std::string& text);

/// What goes into an artifact. Pointers are non-owning and may be null except
/// `run`.
struct RunArtifactInputs {
  const fl::RunResult* run = nullptr;  ///< required
  std::string name;                    ///< experiment / bench name
  std::string metric_name = "metric";  ///< what RunResult::final_metric means
  /// Human-readable config dump; only its fingerprint lands in the artifact.
  std::string config_text;
  const ResourceForecast* forecast = nullptr;  ///< optional §3.5 projection
  /// Bench-defined extra scalars (throughput, wall-time-per-round, ...),
  /// compared leaf-by-leaf like the built-in sections.
  std::vector<std::pair<std::string, double>> scalars;
  /// Real (wall) seconds the run took. Recorded for humans; the compare tool
  /// ignores it — wall time is machine-dependent noise.
  double wall_time_s = 0.0;
  /// Timeline rows are capped at this many events (rounds are strided down;
  /// evals and checkpoints are always kept). 0 keeps everything.
  std::size_t max_timeline_events = 200;
};

/// Render the artifact as a JSON document (always finite: NaN/inf become
/// null, which the tooling rejects — producing one is a producer bug).
std::string render_run_artifact_json(const RunArtifactInputs& inputs);

/// Render and write to `path`, creating parent directories. Throws CheckError
/// when the file cannot be written.
void write_run_artifact(const std::string& path, const RunArtifactInputs& inputs);

}  // namespace flint::core
