#include "flint/core/fairness.h"

#include <algorithm>
#include <sstream>

#include "flint/util/check.h"

namespace flint::core {

std::string FairnessReport::to_string() const {
  std::ostringstream os;
  os.precision(4);
  os << "overall=" << overall_metric << " gap=" << metric_gap;
  for (const auto& t : tiers)
    os << " | " << tier_name(t.tier) << ": " << t.metric << " (" << t.clients << " clients, "
       << t.examples << " ex)";
  return os.str();
}

FairnessReport evaluate_fairness(ml::Model& model, const data::FederatedTask& task,
                                 const std::vector<std::size_t>& client_device,
                                 const device::DeviceCatalog& catalog,
                                 double holdout_fraction) {
  FLINT_CHECK(holdout_fraction > 0.0 && holdout_fraction <= 1.0);
  // Gather each tier's holdout examples.
  std::map<DeviceTier, std::vector<ml::Example>> tier_examples;
  std::map<DeviceTier, std::size_t> tier_clients;
  for (const auto& client : task.train.clients()) {
    if (client.client_id >= client_device.size()) continue;
    const auto& profile = catalog.profile(client_device[client.client_id]);
    DeviceTier tier = tier_of(profile);
    std::size_t holdout =
        std::max<std::size_t>(1, static_cast<std::size_t>(
                                     holdout_fraction * static_cast<double>(client.size())));
    if (holdout > client.size()) holdout = client.size();
    auto& bucket = tier_examples[tier];
    bucket.insert(bucket.end(), client.examples.end() - static_cast<std::ptrdiff_t>(holdout),
                  client.examples.end());
    ++tier_clients[tier];
  }

  FairnessReport report;
  report.overall_metric = task.evaluate(model);
  double best = 0.0, worst = 1e18;
  bool any = false;
  for (auto& [tier, examples] : tier_examples) {
    if (examples.empty()) continue;
    SubpopulationMetric m;
    m.tier = tier;
    m.clients = tier_clients[tier];
    m.examples = examples.size();
    m.metric = data::evaluate_examples(model, examples, task.config.domain,
                                       task.batch_dense_dim());
    best = std::max(best, m.metric);
    worst = std::min(worst, m.metric);
    any = true;
    report.tiers.push_back(m);
  }
  report.metric_gap = any ? best - worst : 0.0;
  return report;
}

}  // namespace flint::core
