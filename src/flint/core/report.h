// Experiment reporting — the "monitoring and visualization" surface the
// platform shares with centralized ML (Figure 3). Renders a run's model and
// system metrics as a markdown report plus machine-readable CSV series
// (eval curve, round durations, staleness), so results land in the same
// review tooling centralized experiments use.
#pragma once

#include <string>

#include "flint/core/fairness.h"
#include "flint/core/forecasting.h"
#include "flint/fl/run_common.h"

namespace flint::core {

/// Everything a written report can include; optional sections are skipped
/// when their pointer is null.
struct ReportInputs {
  std::string title = "FLINT experiment";
  const fl::RunResult* run = nullptr;            ///< required
  const ResourceForecast* forecast = nullptr;    ///< optional
  const FairnessReport* fairness = nullptr;      ///< optional
  double centralized_metric = 0.0;               ///< 0 = no baseline section
  std::string metric_name = "metric";
};

/// Render the report as markdown text.
std::string render_report_markdown(const ReportInputs& inputs);

/// Write the markdown report to `<dir>/report.md` and the CSV series to
/// `<dir>/eval_curve.csv` and `<dir>/rounds.csv`. Creates `dir` if needed.
/// Returns the report path.
std::string write_report(const std::string& dir, const ReportInputs& inputs);

/// CSV series helpers (also usable standalone).
void write_eval_curve_csv(const std::string& path, const fl::RunResult& run);
void write_rounds_csv(const std::string& path, const fl::RunResult& run);

}  // namespace flint::core
