#include "flint/core/experiment.h"

#include "flint/util/check.h"
#include "flint/util/stats.h"

namespace flint::core {

TrialSummary summarize_trials(std::vector<fl::RunResult> trials) {
  FLINT_CHECK(!trials.empty());
  TrialSummary s;
  std::vector<double> metrics, durations;
  util::RunningStats metric_stats, compute, started;
  for (const auto& t : trials) {
    metrics.push_back(t.final_metric);
    durations.push_back(t.virtual_duration_s);
    metric_stats.add(t.final_metric);
    compute.add(t.metrics.client_compute_s());
    started.add(static_cast<double>(t.metrics.tasks_started()));
  }
  s.median_metric = util::median(metrics);
  s.mean_metric = metric_stats.mean();
  s.stdev_metric = metric_stats.stddev();
  s.median_duration_s = util::median(durations);
  s.mean_client_compute_s = compute.mean();
  s.mean_tasks_started = started.mean();
  s.trials = std::move(trials);
  return s;
}

TrialSummary run_trials_fedbuff(const fl::AsyncConfig& base, int n) {
  FLINT_CHECK(n >= 1);
  std::vector<fl::RunResult> trials;
  trials.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    fl::AsyncConfig cfg = base;
    cfg.inputs.seed = base.inputs.seed + static_cast<std::uint64_t>(i);
    trials.push_back(fl::run_fedbuff(cfg));
  }
  return summarize_trials(std::move(trials));
}

TrialSummary run_trials_fedavg(const fl::SyncConfig& base, int n) {
  FLINT_CHECK(n >= 1);
  std::vector<fl::RunResult> trials;
  trials.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    fl::SyncConfig cfg = base;
    cfg.inputs.seed = base.inputs.seed + static_cast<std::uint64_t>(i);
    trials.push_back(fl::run_fedavg(cfg));
  }
  return summarize_trials(std::move(trials));
}

}  // namespace flint::core
