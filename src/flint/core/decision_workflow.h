// The decision workflow (paper Figure 9, §3.7): a staged gate process that
// strings the platform's tools together so "the important risks and
// challenges of each FL project are practically assessed before deployment
// reaches the users". Stages run in order; each returns a verdict, and
// blocking failures stop the workflow.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

namespace flint::core {

/// A stage's verdict.
enum class StageVerdict {
  kPass,            ///< proceed
  kPassWithNotes,   ///< proceed, concerns recorded
  kBlock,           ///< stop: the project is not FL-ready in this form
};

const char* verdict_name(StageVerdict verdict);

/// What a stage reports back.
struct StageReport {
  StageVerdict verdict = StageVerdict::kPass;
  std::string notes;
  /// Named measurements (availability %, projected days, metric deltas...).
  std::map<std::string, double> measurements;
};

/// The canonical stages of Figure 9 in execution order.
enum class Stage {
  kUnderstandClientData,    ///< data quantity/label skew, proxy feasibility
  kDeviceBenchmark,         ///< on-device footprint of candidate models
  kAvailabilityAnalysis,    ///< participation criteria and trace generation
  kProxyDataGeneration,     ///< build and register the proxy dataset
  kOfflineFlEvaluation,     ///< simulated FL vs centralized
  kResourceForecast,        ///< device/cloud resource projection
  kPrivacySecurityReview,   ///< DP / SecAgg / threat review
  kDeploymentDecision,      ///< final go/no-go synthesis
};

const char* stage_name(Stage stage);

/// Result of running the workflow.
struct DecisionReport {
  struct Entry {
    Stage stage;
    StageReport report;
  };
  std::vector<Entry> entries;
  bool go = false;           ///< reached the end with no blocking failure
  std::string blocked_at;    ///< stage name when !go (empty otherwise)

  std::string to_string() const;
};

/// Orchestrates stage callbacks. Stages that are registered run in the
/// canonical order; unregistered stages are skipped with a note, so teams
/// can adopt the workflow incrementally.
class DecisionWorkflow {
 public:
  using StageFn = std::function<StageReport()>;

  /// Register (or replace) the callback for a stage.
  void set_stage(Stage stage, StageFn fn);

  bool has_stage(Stage stage) const;

  /// Run all registered stages in order. Stops at the first kBlock.
  DecisionReport run() const;

  /// All stages in canonical order.
  static const std::vector<Stage>& canonical_order();

 private:
  std::map<Stage, StageFn> stages_;
};

}  // namespace flint::core
