#include "flint/core/platform.h"

#include <optional>

#include "flint/fl/trainer.h"
#include "flint/util/check.h"

namespace flint::core {

FlintPlatform::FlintPlatform(std::uint64_t seed)
    : rng_(seed), devices_(device::DeviceCatalog::standard()) {}

device::FleetBenchmarkReport FlintPlatform::benchmark_model(char zoo_id, std::size_t records) {
  return device::simulate_fleet_benchmark(ml::model_spec(zoo_id), devices_, records, rng_);
}

device::SessionLog FlintPlatform::generate_session_log(
    const device::SessionGeneratorConfig& config) {
  return device::generate_sessions(config, devices_, rng_);
}

device::AvailabilityTrace FlintPlatform::build_availability(
    const device::SessionLog& log, const device::AvailabilityCriteria& criteria) {
  return device::build_availability(log, criteria, devices_);
}

data::ProxyEntry FlintPlatform::generate_proxy(
    const std::vector<ml::Example>& records, const data::ProxyConfig& config,
    const std::function<std::uint64_t(std::size_t)>& key_of) {
  data::ProxyGenerator generator(data_catalog_);
  return generator.generate(records, config, key_of, rng_);
}

CaseStudyResult FlintPlatform::evaluate_case_study(const data::FederatedTask& task,
                                                   const fl::AsyncConfig& fl_config, int trials,
                                                   int centralized_epochs,
                                                   const ForecastConfig& forecast_config) {
  FLINT_CHECK(trials >= 1);
  FLINT_CHECK(centralized_epochs >= 1);
  CaseStudyResult result;

  // Ambient obs context for the whole case study, so the centralized
  // baseline's local-SGD spans land in the same trace as the FL trials.
  std::optional<obs::ScopedTelemetry> obs_scope;
  if (telemetry_ != nullptr && obs::current() != telemetry_) obs_scope.emplace(telemetry_);
  FLINT_TRACE_SPAN("platform.case_study", "core");

  // Centralized baseline on the merged proxy.
  auto centralized_model = task.make_model(rng_);
  fl::LocalTrainConfig central_cfg = fl_config.inputs.local;
  central_cfg.loss = task.loss_kind();
  auto curve =
      fl::train_centralized(*centralized_model, task, central_cfg, centralized_epochs, rng_);
  result.centralized_metric = curve.back();
  model_store_.put("centralized/" + std::string(data::domain_name(task.config.domain)),
                   centralized_model->get_flat_parameters(), "baseline");

  // FL trials under the measured constraints; each trial's runner sees the
  // platform telemetry through its RunInputs.
  fl::AsyncConfig trial_config = fl_config;
  trial_config.inputs.telemetry = telemetry_;
  TrialSummary summary = run_trials_fedbuff(trial_config, trials);
  result.fl_metric = summary.median_metric;
  result.fl_metric_stdev = summary.stdev_metric;
  result.projected_training_h = summary.median_duration_s / 3600.0;
  FLINT_CHECK(result.centralized_metric > 0.0);
  result.performance_diff_pct =
      (result.fl_metric - result.centralized_metric) / result.centralized_metric * 100.0;

  // Store the best FL model and forecast resources from the median trial.
  std::size_t best = 0;
  for (std::size_t i = 1; i < summary.trials.size(); ++i)
    if (summary.trials[i].final_metric > summary.trials[best].final_metric) best = i;
  model_store_.put("fl/" + std::string(data::domain_name(task.config.domain)),
                   summary.trials[best].final_parameters, "fedbuff-best",
                   summary.trials[best].virtual_duration_s);
  result.forecast = forecast_resources(summary.trials[best], forecast_config);
  result.fl_trials = std::move(summary);
  return result;
}

}  // namespace flint::core
