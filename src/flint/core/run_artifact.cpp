#include "flint/core/run_artifact.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "flint/util/check.h"

namespace flint::core {
namespace {

void json_number(std::ostringstream& os, double v) {
  // JSON has no NaN/inf literals; null keeps the document parseable and the
  // validator flags it as a producer bug.
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  os << v;
}

void json_string(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void json_rollup(std::ostringstream& os, const obs::LedgerRollup& r) {
  os << "{\"key\":";
  json_string(os, r.key);
  os << ",\"clients\":" << r.clients << ",\"tasks_succeeded\":" << r.tasks_succeeded
     << ",\"tasks_interrupted\":" << r.tasks_interrupted << ",\"tasks_stale\":" << r.tasks_stale
     << ",\"tasks_failed\":" << r.tasks_failed << ",\"compute_s\":";
  json_number(os, r.compute_s);
  os << ",\"wasted_compute_s\":";
  json_number(os, r.wasted_compute_s);
  os << ",\"bytes_down\":" << r.bytes_down << ",\"bytes_up\":" << r.bytes_up << "}";
}

void json_rollup_array(std::ostringstream& os, const std::vector<obs::LedgerRollup>& rows) {
  os << "[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (i > 0) os << ",";
    json_rollup(os, rows[i]);
  }
  os << "]";
}

/// One timeline event, flattened so the tooling can sort/filter on kind.
struct TimelineEvent {
  double t_s = 0.0;
  const char* kind = "";
  std::uint64_t round = 0;
  double end_s = 0.0;    ///< rounds only
  double metric = 0.0;   ///< evals only
};

}  // namespace

std::uint64_t fingerprint64(const std::string& text) {
  // FNV-1a, 64-bit: tiny, stable across platforms, and collision-resistant
  // enough for "did the config change" — this is not a security hash.
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : text) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::string render_run_artifact_json(const RunArtifactInputs& inputs) {
  FLINT_CHECK_MSG(inputs.run != nullptr, "run artifact needs a run result");
  const fl::RunResult& run = *inputs.run;
  const sim::SimMetrics& m = run.metrics;

  std::ostringstream os;
  os.precision(12);
  os << "{\n";
  os << "  \"schema\": ";
  json_string(os, kRunArtifactSchema);
  os << ",\n  \"schema_version\": " << kRunArtifactSchemaVersion;
  os << ",\n  \"name\": ";
  json_string(os, inputs.name);
  os << ",\n  \"metric_name\": ";
  json_string(os, inputs.metric_name);
  {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(fingerprint64(inputs.config_text)));
    os << ",\n  \"config_fingerprint\": \"" << buf << "\"";
  }
  os << ",\n  \"wall_time_s\": ";
  json_number(os, inputs.wall_time_s);

  // --- Model metrics. ---
  os << ",\n  \"model\": {\"final_metric\": ";
  json_number(os, run.final_metric);
  os << ", \"rounds\": " << run.rounds << ", \"eval_curve\": [";
  for (std::size_t i = 0; i < run.eval_curve.size(); ++i) {
    const auto& p = run.eval_curve[i];
    if (i > 0) os << ",";
    os << "{\"t_s\":";
    json_number(os, p.time);
    os << ",\"round\":" << p.round << ",\"metric\":";
    json_number(os, p.metric);
    os << "}";
  }
  os << "]}";

  // --- System metrics. ---
  os << ",\n  \"system\": {\"tasks_started\": " << m.tasks_started()
     << ", \"tasks_succeeded\": " << m.tasks_succeeded()
     << ", \"tasks_interrupted\": " << m.tasks_interrupted()
     << ", \"tasks_stale\": " << m.tasks_stale() << ", \"tasks_failed\": " << m.tasks_failed()
     << ", \"client_compute_s\": ";
  json_number(os, m.client_compute_s());
  os << ", \"waste_fraction\": ";
  json_number(os, m.waste_fraction());
  os << ", \"mean_round_duration_s\": ";
  json_number(os, m.mean_round_duration_s());
  os << ", \"updates_per_second\": ";
  json_number(os, run.updates_per_second());
  os << ", \"virtual_duration_s\": ";
  json_number(os, run.virtual_duration_s);
  os << ", \"resumed_from_round\": " << run.resumed_from_round
     << ", \"resume_count\": " << run.resume_count;
  os << "}";

  // --- Resource forecast (optional). ---
  if (inputs.forecast != nullptr) {
    const ResourceForecast& f = *inputs.forecast;
    os << ",\n  \"forecast\": {\"total_client_compute_h\": ";
    json_number(os, f.total_client_compute_h);
    os << ", \"wasted_client_compute_h\": ";
    json_number(os, f.wasted_client_compute_h);
    os << ", \"client_tasks_started\": " << f.client_tasks_started
       << ", \"mean_task_compute_s\": ";
    json_number(os, f.mean_task_compute_s);
    os << ", \"device_energy_kwh\": ";
    json_number(os, f.device_energy_kwh);
    os << ", \"training_duration_h\": ";
    json_number(os, f.training_duration_h);
    os << ", \"updates_per_second\": ";
    json_number(os, f.updates_per_second);
    os << ", \"aggregation_mbytes_per_s\": ";
    json_number(os, f.aggregation_mbytes_per_s);
    os << ", \"fits_tee\": " << (f.fits_tee ? "true" : "false")
       << ", \"aggregator_workers\": " << f.aggregator_workers << "}";
  }

  // --- Telemetry snapshot. Histograms carry their summary statistics, not
  // raw buckets — the artifact is for regression comparison, and the bucket
  // layout is an implementation detail the JSONL export already captures. ---
  os << ",\n  \"telemetry\": [";
  for (std::size_t i = 0; i < run.telemetry.size(); ++i) {
    const auto& s = run.telemetry[i];
    if (i > 0) os << ",";
    os << "{\"series\":";
    json_string(os, s.name);
    os << ",\"type\":\"" << obs::kind_name(s.kind) << "\"";
    if (s.kind == obs::MetricSample::Kind::kHistogram) {
      os << ",\"count\":" << s.count << ",\"mean\":";
      json_number(os, s.value);
      os << ",\"p50\":";
      json_number(os, s.quantile(0.50));
      os << ",\"p95\":";
      json_number(os, s.quantile(0.95));
      os << ",\"p99\":";
      json_number(os, s.quantile(0.99));
    } else {
      os << ",\"value\":";
      json_number(os, s.value);
    }
    os << "}";
  }
  os << "]";

  // --- Client attribution rollups. ---
  os << ",\n  \"ledger\": {\"by_tier\": ";
  json_rollup_array(os, run.ledger.by_tier);
  os << ", \"by_cohort\": ";
  json_rollup_array(os, run.ledger.by_cohort);
  os << ", \"by_executor\": ";
  json_rollup_array(os, run.ledger.by_executor);
  os << ", \"totals\": ";
  json_rollup(os, run.ledger.totals);
  os << ", \"stragglers\": [";
  for (std::size_t i = 0; i < run.ledger.stragglers.size(); ++i) {
    const auto& c = run.ledger.stragglers[i];
    if (i > 0) os << ",";
    os << "{\"client_id\":" << c.client_id << ",\"tier\":" << c.tier
       << ",\"cohort\":" << c.cohort << ",\"executor\":" << c.executor
       << ",\"tasks_succeeded\":" << c.tasks_succeeded
       << ",\"tasks_interrupted\":" << c.tasks_interrupted << ",\"tasks_stale\":" << c.tasks_stale
       << ",\"tasks_failed\":" << c.tasks_failed << ",\"compute_s\":";
    json_number(os, c.compute_s);
    os << ",\"wasted_compute_s\":";
    json_number(os, c.wasted_compute_s);
    os << ",\"bytes_down\":" << c.bytes_down << ",\"bytes_up\":" << c.bytes_up << "}";
  }
  os << "]}";

  // --- Virtual-time timeline: rounds (strided down to the event budget),
  // evals, and checkpoints, merged in time order. ---
  {
    const auto& rounds = m.rounds();
    const auto& checkpoints = m.checkpoints();
    std::vector<TimelineEvent> events;
    std::size_t budget = inputs.max_timeline_events;
    std::size_t fixed = run.eval_curve.size() + checkpoints.size();
    std::size_t round_budget =
        budget == 0 ? rounds.size() : (budget > fixed ? budget - fixed : std::size_t{1});
    std::size_t stride =
        rounds.empty() ? 1 : std::max<std::size_t>(1, (rounds.size() + round_budget - 1) / round_budget);
    events.reserve(fixed + (rounds.empty() ? 0 : rounds.size() / stride + 1));
    for (std::size_t i = 0; i < rounds.size(); i += stride) {
      // Keep the final round in place of the last strided one.
      const auto& r = (i + stride >= rounds.size()) ? rounds.back() : rounds[i];
      TimelineEvent e;
      e.t_s = r.start;
      e.kind = "round";
      e.round = r.round;
      e.end_s = r.end;
      events.push_back(e);
    }
    for (const auto& p : run.eval_curve) {
      TimelineEvent e;
      e.t_s = p.time;
      e.kind = "eval";
      e.round = p.round;
      e.metric = p.metric;
      events.push_back(e);
    }
    for (const auto& c : checkpoints) {
      TimelineEvent e;
      e.t_s = c.time;
      e.kind = "checkpoint";
      e.round = c.round;
      events.push_back(e);
    }
    std::stable_sort(events.begin(), events.end(),
                     [](const TimelineEvent& a, const TimelineEvent& b) { return a.t_s < b.t_s; });
    os << ",\n  \"timeline\": [";
    for (std::size_t i = 0; i < events.size(); ++i) {
      const auto& e = events[i];
      if (i > 0) os << ",";
      os << "{\"t_s\":";
      json_number(os, e.t_s);
      os << ",\"kind\":\"" << e.kind << "\",\"round\":" << e.round;
      if (e.kind[0] == 'r') {  // round
        os << ",\"end_s\":";
        json_number(os, e.end_s);
      } else if (e.kind[0] == 'e') {  // eval
        os << ",\"metric\":";
        json_number(os, e.metric);
      }
      os << "}";
    }
    os << "]";
  }

  // --- Bench-defined scalars. ---
  os << ",\n  \"scalars\": {";
  for (std::size_t i = 0; i < inputs.scalars.size(); ++i) {
    if (i > 0) os << ", ";
    json_string(os, inputs.scalars[i].first);
    os << ": ";
    json_number(os, inputs.scalars[i].second);
  }
  os << "}\n}\n";
  return os.str();
}

void write_run_artifact(const std::string& path, const RunArtifactInputs& inputs) {
  std::string json = render_run_artifact_json(inputs);
  namespace fs = std::filesystem;
  fs::path p(path);
  if (p.has_parent_path()) fs::create_directories(p.parent_path());
  std::ofstream out(path);
  FLINT_CHECK_MSG(out.good(), "cannot write run artifact " << path);
  out << json;
  FLINT_CHECK_MSG(out.good(), "short write on run artifact " << path);
}

}  // namespace flint::core
