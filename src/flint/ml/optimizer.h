// Optimizers for local (on-device) training steps.
#pragma once

#include <vector>

#include "flint/ml/layers.h"

namespace flint::ml {

/// SGD with optional momentum and L2 weight decay. Momentum buffers are keyed
/// by parameter position, so the optimizer must be used with a stable
/// parameter list (one optimizer per model instance).
class SgdOptimizer {
 public:
  explicit SgdOptimizer(double momentum = 0.0, double weight_decay = 0.0);

  /// Apply one update: p -= lr * (grad + wd * p), with momentum if enabled.
  void step(const std::vector<Parameter*>& params, double lr);

  /// Drop momentum state (e.g. when a fresh global model is installed).
  void reset();

  double momentum() const { return momentum_; }
  double weight_decay() const { return weight_decay_; }

 private:
  double momentum_;
  double weight_decay_;
  std::vector<Tensor> velocity_;  ///< one buffer per parameter, lazily sized
};

/// Gradient clipping by global L2 norm; returns the pre-clip norm.
/// Used both as a training stabilizer and as the DP sensitivity bound.
double clip_gradients(const std::vector<Parameter*>& params, double max_norm);

}  // namespace flint::ml
