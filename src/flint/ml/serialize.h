// Self-describing model serialization — the analog of the paper's "convert
// our three candidate models to a TFLite format, and deploy them for
// training ... in our benchmarking app" (§4.1). The format captures the
// architecture config and the flat weights, so a benchmark app (or the
// model store) can reconstruct the exact model without out-of-band schema.
//
// Format: magic "FLMD" | u8 kind | config fields | u64 param_count | f32[].
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "flint/ml/model.h"

namespace flint::ml {

/// Serialize a model (architecture + weights) to bytes.
/// Supports FeedForwardModel and ConvTextModel (the zoo's two families).
std::vector<char> serialize_model(Model& model);

/// Reconstruct a model from serialize_model() bytes.
std::unique_ptr<Model> deserialize_model(const std::vector<char>& bytes);

/// Convenience file round trip.
void save_model(const std::string& path, Model& model);
std::unique_ptr<Model> load_model(const std::string& path);

/// Serialized size in bytes without materializing the blob (for storage
/// budget checks against e.g. the <1MB SDK limit).
std::size_t serialized_model_bytes(Model& model);

}  // namespace flint::ml
