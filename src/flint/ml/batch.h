// Example and Batch: the data interchange types between FLINT's data pipeline
// and its models. Examples carry dense features, optional token/categorical
// ids (consumed by embedding or hashing front-ends), and labels.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "flint/ml/tensor.h"

namespace flint::ml {

/// One training/inference record.
struct Example {
  std::vector<float> dense;          ///< Dense feature vector.
  std::vector<std::int32_t> tokens;  ///< Categorical/token ids (may be empty).
  float label = 0.0f;                ///< Primary task label (0/1 or relevance grade).
  float label2 = 0.0f;               ///< Secondary task label (multi-task models).
  std::int32_t group = 0;            ///< Ranking group id (query/session); 0 if unused.
};

/// A mini-batch assembled from examples. Dense features are densified into a
/// [n, dense_dim] tensor; token ids stay ragged for embedding-bag lookup.
struct Batch {
  Tensor dense;                                  ///< [n, dense_dim]
  std::vector<std::vector<std::int32_t>> tokens; ///< n ragged token lists
  std::vector<float> labels;                     ///< n primary labels
  std::vector<float> labels2;                    ///< n secondary labels

  std::size_t size() const { return labels.size(); }

  /// Build a batch; every example's dense vector must have length dense_dim
  /// (use 0 for models with no dense features).
  static Batch from_examples(std::span<const Example> examples, std::size_t dense_dim) {
    Batch b;
    b.dense = Tensor(examples.size(), dense_dim == 0 ? 1 : dense_dim);
    if (dense_dim == 0) b.dense.zero();
    b.tokens.reserve(examples.size());
    b.labels.reserve(examples.size());
    b.labels2.reserve(examples.size());
    for (std::size_t i = 0; i < examples.size(); ++i) {
      const Example& e = examples[i];
      if (dense_dim > 0) {
        FLINT_CHECK_MSG(e.dense.size() == dense_dim,
                        "example dense dim " << e.dense.size() << " != batch dim " << dense_dim);
        for (std::size_t j = 0; j < dense_dim; ++j) b.dense.at(i, j) = e.dense[j];
      }
      b.tokens.push_back(e.tokens);
      b.labels.push_back(e.label);
      b.labels2.push_back(e.label2);
    }
    return b;
  }
};

}  // namespace flint::ml
