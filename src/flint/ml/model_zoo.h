// The paper's Table 5 model zoo: five device-capable architectures
// representative of common ML tasks at LinkedIn, instantiated at the paper's
// parameter counts:
//
//   A  Tiny Neural Net            1.51k params
//   B  MLP w/ sparse features      189k params (feature-hashing front end)
//   C  MLP w/ medium embedding     208k params
//   D  CNN w/ large embedding      390k params
//   E  Multi-task MLP              922k params (two heads)
//
// Each spec also carries a device calibration profile: the fleet-level
// storage/network/memory footprint and training-time distribution the paper
// measured on 27 AWS Device Farm devices. We cannot access that hardware, so
// the calibration constants are synthesized from Table 5's published
// aggregates (see DESIGN.md, substitution table); the architectures and
// parameter counts are real and measured from the models themselves.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "flint/ml/model.h"

namespace flint::ml {

/// Fleet-level on-device footprint for one model (Table 5 columns).
struct DeviceCalibration {
  double storage_mb = 0.0;        ///< serialized model + bundled assets
  double network_mb = 0.0;        ///< download + upload per training round
  double memory_mb = 0.0;         ///< peak training memory
  double base_time_per_5k_s = 0.0;///< fleet-mean train time over 5000 records
  double time_cv = 0.7;           ///< stdev/mean of time across devices
  double base_cpu_pct = 0.0;      ///< fleet-mean max CPU usage %
};

/// One zoo entry: identity, builder, and calibration.
struct ModelSpec {
  char id = '?';
  std::string description;
  DeviceCalibration calibration;

  /// Construct a fresh, uninitialized model instance.
  std::unique_ptr<Model> (*build)() = nullptr;
};

/// All five specs, ordered A..E.
const std::vector<ModelSpec>& model_zoo();

/// Lookup by id ('A'..'E'); throws CheckError for unknown ids.
const ModelSpec& model_spec(char id);

/// Convenience: build and Xavier-initialize a zoo model.
std::unique_ptr<Model> build_zoo_model(char id, util::Rng& rng);

}  // namespace flint::ml
