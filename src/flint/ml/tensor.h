// Minimal dense tensor for FLINT's on-device-sized models.
//
// FLINT's models are deliberately small (the paper's Model E, the largest,
// is 922k parameters) so a straightforward row-major float tensor with naive
// kernels is sufficient and keeps the reproduction dependency-free.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "flint/util/check.h"

namespace flint::ml {

/// Row-major dense tensor of floats, rank 1 or 2 (vectors and matrices cover
/// every layer FLINT ships). Value type: copyable, movable, comparable.
class Tensor {
 public:
  Tensor() = default;

  /// Rank-1 tensor of `n` zeros.
  explicit Tensor(std::size_t n) : rows_(n), cols_(1), data_(n, 0.0f) {}

  /// Rank-2 tensor of zeros.
  Tensor(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

  /// Rank-2 tensor with explicit contents (size must equal rows*cols).
  Tensor(std::size_t rows, std::size_t cols, std::vector<float> data);

  static Tensor from_vector(std::vector<float> v);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& at(std::size_t r, std::size_t c);
  float at(std::size_t r, std::size_t c) const;
  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  std::span<float> flat() { return data_; }
  std::span<const float> flat() const { return data_; }

  /// Reset every element to zero, keeping the shape.
  void zero();

  /// Fill with a constant.
  void fill(float v);

  /// In-place element-wise ops. Shapes must match exactly.
  Tensor& operator+=(const Tensor& other);
  Tensor& operator-=(const Tensor& other);
  Tensor& operator*=(float s);

  /// axpy: this += s * other.
  void add_scaled(const Tensor& other, float s);

  /// L2 norm of all elements.
  float l2_norm() const;

  /// Matrix product (this: [m,k]) x (rhs: [k,n]) -> [m,n].
  Tensor matmul(const Tensor& rhs) const;

  /// Transposed matrix product: (this^T) x rhs, this: [k,m], rhs: [k,n] -> [m,n].
  Tensor transposed_matmul(const Tensor& rhs) const;

  /// Matrix product with transposed rhs: this [m,k] x rhs^T, rhs: [n,k] -> [m,n].
  Tensor matmul_transposed(const Tensor& rhs) const;

  /// One row as a span (rank-2 only).
  std::span<const float> row(std::size_t r) const;
  std::span<float> row(std::size_t r);

  bool same_shape(const Tensor& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  std::string shape_string() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

bool operator==(const Tensor& a, const Tensor& b);

}  // namespace flint::ml
