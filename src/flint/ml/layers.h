// Neural network layers. Each layer owns its parameters (value + gradient)
// and caches whatever it needs from forward() to run backward().
//
// Layers operate on rank-2 activations [batch, features]. Front-end layers
// that consume ragged token ids (EmbeddingBag, HashedBag) expose a separate
// token-based forward and are composed explicitly by models.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "flint/ml/tensor.h"
#include "flint/util/rng.h"

namespace flint::ml {

/// A trainable tensor with its gradient accumulator.
struct Parameter {
  Tensor value;
  Tensor grad;

  explicit Parameter(std::size_t rows, std::size_t cols) : value(rows, cols), grad(rows, cols) {}
  std::size_t size() const { return value.size(); }
};

/// Base class for dense-activation layers.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Compute output activations; must cache state needed by backward().
  virtual Tensor forward(const Tensor& input) = 0;

  /// Propagate gradients. `d_output` matches the last forward's output shape;
  /// returns gradient w.r.t. that forward's input. Accumulates into parameter
  /// gradients (callers zero_grad() between steps).
  virtual Tensor backward(const Tensor& d_output) = 0;

  /// Mutable views of this layer's parameters (empty for activations).
  virtual std::vector<Parameter*> parameters() { return {}; }

  /// Initialize parameters (Xavier-uniform for weight matrices).
  virtual void init(util::Rng& rng) { (void)rng; }

  virtual std::unique_ptr<Layer> clone() const = 0;
};

/// Fully connected layer: out = in x W + b. W: [in, out], b: [1, out].
class DenseLayer : public Layer {
 public:
  DenseLayer(std::size_t in_dim, std::size_t out_dim);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& d_output) override;
  std::vector<Parameter*> parameters() override { return {&weight_, &bias_}; }
  void init(util::Rng& rng) override;
  std::unique_ptr<Layer> clone() const override { return std::make_unique<DenseLayer>(*this); }

  std::size_t in_dim() const { return in_dim_; }
  std::size_t out_dim() const { return out_dim_; }

 private:
  std::size_t in_dim_;
  std::size_t out_dim_;
  Parameter weight_;
  Parameter bias_;
  Tensor last_input_;
};

/// Rectified linear activation.
class ReluLayer : public Layer {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& d_output) override;
  std::unique_ptr<Layer> clone() const override { return std::make_unique<ReluLayer>(*this); }

 private:
  Tensor last_input_;
};

/// Logistic sigmoid activation (used inside models that need bounded hidden
/// activations; output heads stay as raw logits for BCE-with-logits).
class SigmoidLayer : public Layer {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& d_output) override;
  std::unique_ptr<Layer> clone() const override { return std::make_unique<SigmoidLayer>(*this); }

 private:
  Tensor last_output_;
};

/// Hyperbolic tangent activation.
class TanhLayer : public Layer {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& d_output) override;
  std::unique_ptr<Layer> clone() const override { return std::make_unique<TanhLayer>(*this); }

 private:
  Tensor last_output_;
};

/// Mean-pooled embedding lookup over ragged token ids ("embedding bag").
/// Token ids outside [0, vocab) are clamped into range — mirrors production
/// vocab files where unknown tokens map to an OOV bucket (id 0).
class EmbeddingBagLayer {
 public:
  EmbeddingBagLayer(std::size_t vocab, std::size_t dim);

  /// [n, dim] mean of each sample's token embeddings (zeros for empty lists).
  Tensor forward(const std::vector<std::vector<std::int32_t>>& tokens);

  /// Accumulate gradients for the last forward's lookups.
  void backward(const Tensor& d_output);

  std::vector<Parameter*> parameters() { return {&table_}; }
  void init(util::Rng& rng);

  std::size_t vocab() const { return vocab_; }
  std::size_t dim() const { return dim_; }

 private:
  std::size_t vocab_;
  std::size_t dim_;
  Parameter table_;
  std::vector<std::vector<std::int32_t>> last_tokens_;
};

/// Feature-hashing front end: token ids are hashed into `buckets` and the
/// sample is represented as a normalized multi-hot vector, densified on the
/// fly. This is the Weinberger et al. (2009) trick the paper proposes for
/// replacing large vocab files on device (Section 4.1); collisions trade
/// predictive power for storage.
class HashedBagLayer {
 public:
  HashedBagLayer(std::size_t buckets, std::uint64_t salt = 0x5bd1e995);

  /// [n, buckets] sparse multi-hot (1/sqrt(count) normalized) densified.
  Tensor forward(const std::vector<std::vector<std::int32_t>>& tokens) const;

  std::size_t buckets() const { return buckets_; }

  /// The bucket a token id maps to (exposed for tests and the feature module).
  std::size_t bucket_of(std::int32_t token) const;

 private:
  std::size_t buckets_;
  std::uint64_t salt_;
};

/// 1-D convolution over a token-embedding sequence, followed by global max
/// pooling: input [n, seq*in_ch] (seq positions, channel-major per position),
/// output [n, out_ch]. Used by the paper's Model D ("CNN w/ large embedding").
class Conv1dMaxPoolLayer : public Layer {
 public:
  Conv1dMaxPoolLayer(std::size_t seq_len, std::size_t in_ch, std::size_t out_ch,
                     std::size_t kernel);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& d_output) override;
  std::vector<Parameter*> parameters() override { return {&kernel_w_, &kernel_b_}; }
  void init(util::Rng& rng) override;
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Conv1dMaxPoolLayer>(*this);
  }

  std::size_t out_ch() const { return out_ch_; }

 private:
  std::size_t seq_len_;
  std::size_t in_ch_;
  std::size_t out_ch_;
  std::size_t kernel_;
  Parameter kernel_w_;  ///< [kernel*in_ch, out_ch]
  Parameter kernel_b_;  ///< [1, out_ch]
  Tensor last_input_;
  /// argmax position per (sample, out channel) from the last forward.
  std::vector<std::size_t> last_argmax_;
};

}  // namespace flint::ml
