#include "flint/ml/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "flint/util/check.h"

namespace flint::ml {

namespace {

/// Indices of `scores` sorted by descending score (stable for ties).
std::vector<std::size_t> rank_desc(const std::vector<float>& scores) {
  std::vector<std::size_t> idx(scores.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::stable_sort(idx.begin(), idx.end(),
                   [&](std::size_t a, std::size_t b) { return scores[a] > scores[b]; });
  return idx;
}

}  // namespace

double average_precision(const std::vector<float>& scores, const std::vector<float>& labels) {
  FLINT_CHECK(scores.size() == labels.size());
  FLINT_CHECK(!scores.empty());
  double positives = 0.0;
  for (float y : labels) positives += y;
  if (positives == 0.0) return 0.0;

  auto order = rank_desc(scores);
  double tp = 0.0;
  double ap = 0.0;
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    float y = labels[order[rank]];
    if (y > 0.5f) {
      tp += 1.0;
      double precision = tp / static_cast<double>(rank + 1);
      ap += precision;
    }
  }
  return ap / positives;
}

double roc_auc(const std::vector<float>& scores, const std::vector<float>& labels) {
  FLINT_CHECK(scores.size() == labels.size());
  FLINT_CHECK(!scores.empty());
  // Mann-Whitney U with midrank handling for ties.
  std::vector<std::size_t> idx(scores.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::sort(idx.begin(), idx.end(),
            [&](std::size_t a, std::size_t b) { return scores[a] < scores[b]; });
  std::vector<double> ranks(scores.size());
  std::size_t i = 0;
  while (i < idx.size()) {
    std::size_t j = i;
    while (j + 1 < idx.size() && scores[idx[j + 1]] == scores[idx[i]]) ++j;
    double midrank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[idx[k]] = midrank;
    i = j + 1;
  }
  double pos = 0.0, rank_sum = 0.0;
  for (std::size_t k = 0; k < labels.size(); ++k) {
    if (labels[k] > 0.5f) {
      pos += 1.0;
      rank_sum += ranks[k];
    }
  }
  double neg = static_cast<double>(labels.size()) - pos;
  if (pos == 0.0 || neg == 0.0) return 0.5;
  return (rank_sum - pos * (pos + 1.0) / 2.0) / (pos * neg);
}

double ndcg_at_k(const std::vector<float>& scores, const std::vector<float>& labels,
                 std::size_t k) {
  FLINT_CHECK(scores.size() == labels.size());
  FLINT_CHECK(!scores.empty());
  FLINT_CHECK(k > 0);
  auto dcg = [&](const std::vector<std::size_t>& order) {
    double acc = 0.0;
    std::size_t limit = std::min(k, order.size());
    for (std::size_t r = 0; r < limit; ++r) {
      double gain = std::pow(2.0, static_cast<double>(labels[order[r]])) - 1.0;
      acc += gain / std::log2(static_cast<double>(r) + 2.0);
    }
    return acc;
  };
  auto pred_order = rank_desc(scores);
  std::vector<std::size_t> ideal_order(labels.size());
  std::iota(ideal_order.begin(), ideal_order.end(), 0);
  std::stable_sort(ideal_order.begin(), ideal_order.end(),
                   [&](std::size_t a, std::size_t b) { return labels[a] > labels[b]; });
  double ideal = dcg(ideal_order);
  if (ideal <= 0.0) return 1.0;
  return dcg(pred_order) / ideal;
}

double log_loss(const std::vector<float>& probs, const std::vector<float>& labels) {
  FLINT_CHECK(probs.size() == labels.size());
  FLINT_CHECK(!probs.empty());
  constexpr double kEps = 1e-7;
  double total = 0.0;
  for (std::size_t i = 0; i < probs.size(); ++i) {
    double p = std::clamp(static_cast<double>(probs[i]), kEps, 1.0 - kEps);
    double y = labels[i];
    total += -(y * std::log(p) + (1.0 - y) * std::log(1.0 - p));
  }
  return total / static_cast<double>(probs.size());
}

double accuracy(const std::vector<float>& probs, const std::vector<float>& labels) {
  FLINT_CHECK(probs.size() == labels.size());
  FLINT_CHECK(!probs.empty());
  std::size_t correct = 0;
  for (std::size_t i = 0; i < probs.size(); ++i) {
    bool pred = probs[i] >= 0.5f;
    bool truth = labels[i] >= 0.5f;
    if (pred == truth) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(probs.size());
}

}  // namespace flint::ml
