#include "flint/ml/optimizer.h"

#include <cmath>

#include "flint/ml/kernels/kernels.h"

namespace flint::ml {

SgdOptimizer::SgdOptimizer(double momentum, double weight_decay)
    : momentum_(momentum), weight_decay_(weight_decay) {
  FLINT_CHECK_FINITE(momentum);
  FLINT_CHECK_GE(momentum, 0.0);
  FLINT_CHECK_LT(momentum, 1.0);
  FLINT_CHECK_FINITE(weight_decay);
  FLINT_CHECK_GE(weight_decay, 0.0);
}

void SgdOptimizer::step(const std::vector<Parameter*>& params, double lr) {
  FLINT_CHECK_FINITE(lr);
  FLINT_CHECK_GE(lr, 0.0);
  if (momentum_ > 0.0 && velocity_.size() != params.size()) {
    velocity_.clear();
    velocity_.reserve(params.size());
    for (Parameter* p : params) velocity_.emplace_back(p->value.rows(), p->value.cols());
  }
  const auto& k = kernels::active();
  for (std::size_t i = 0; i < params.size(); ++i) {
    Parameter& p = *params[i];
    auto value = p.value.flat();
    auto grad = p.grad.flat();
    if (momentum_ > 0.0) {
      FLINT_CHECK_MSG(velocity_[i].same_shape(p.value),
                      "optimizer reused across models with different shapes");
      auto vel = velocity_[i].flat();
      k.sgd_momentum_step(value.data(), grad.data(), vel.data(), static_cast<float>(lr),
                          static_cast<float>(momentum_), static_cast<float>(weight_decay_),
                          value.size());
    } else {
      k.sgd_step(value.data(), grad.data(), static_cast<float>(lr),
                 static_cast<float>(weight_decay_), value.size());
    }
  }
}

void SgdOptimizer::reset() { velocity_.clear(); }

double clip_gradients(const std::vector<Parameter*>& params, double max_norm) {
  FLINT_CHECK_FINITE(max_norm);
  FLINT_CHECK_GT(max_norm, 0.0);
  const auto& k = kernels::active();
  // Chain the accumulator across parameters: on the scalar path this is one
  // continuous sweep, reproducing the pre-kernel single-loop numerics exactly.
  double sq = 0.0;
  for (Parameter* p : params) {
    auto g = p->grad.flat();
    sq = k.sum_squares(g.data(), g.size(), sq);
  }
  double norm = std::sqrt(sq);
  // A non-finite gradient norm means training has already diverged; clipping
  // would silently turn every weight into NaN on the next step.
  FLINT_CHECK_FINITE(norm);
  if (norm > max_norm) {
    auto scale = static_cast<float>(max_norm / norm);
    for (Parameter* p : params) {
      auto g = p->grad.flat();
      k.scale(g.data(), scale, g.size());
    }
  }
  return norm;
}

}  // namespace flint::ml
