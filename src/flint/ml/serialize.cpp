#include "flint/ml/serialize.h"

#include <cstring>
#include <fstream>

#include "flint/util/bytes.h"
#include "flint/util/check.h"

namespace flint::ml {

namespace {

constexpr char kMagic[4] = {'F', 'L', 'M', 'D'};
constexpr std::uint8_t kKindFeedForward = 1;
constexpr std::uint8_t kKindConvText = 2;

template <typename T>
void put(std::vector<char>& out, const T& v) {
  util::append_pod(out, v);
}

template <typename T>
T get(const std::vector<char>& in, std::size_t& offset) {
  FLINT_CHECK_MSG(offset + sizeof(T) <= in.size(), "truncated model blob");
  return util::read_pod<T>(in, offset);
}

void put_sizes(std::vector<char>& out, const std::vector<std::size_t>& sizes) {
  put(out, static_cast<std::uint32_t>(sizes.size()));
  for (std::size_t s : sizes) put(out, static_cast<std::uint64_t>(s));
}

std::vector<std::size_t> get_sizes(const std::vector<char>& in, std::size_t& offset) {
  auto n = get<std::uint32_t>(in, offset);
  std::vector<std::size_t> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i)
    out.push_back(static_cast<std::size_t>(get<std::uint64_t>(in, offset)));
  return out;
}

void put_feedforward_config(std::vector<char>& out, const FeedForwardConfig& cfg) {
  put(out, static_cast<std::uint64_t>(cfg.dense_dim));
  put(out, static_cast<std::uint8_t>(cfg.front_end));
  put(out, static_cast<std::uint64_t>(cfg.vocab));
  put(out, static_cast<std::uint64_t>(cfg.embed_dim));
  put(out, static_cast<std::uint64_t>(cfg.hash_buckets));
  put_sizes(out, cfg.hidden);
  put(out, static_cast<std::uint64_t>(cfg.heads));
}

FeedForwardConfig get_feedforward_config(const std::vector<char>& in, std::size_t& offset) {
  FeedForwardConfig cfg;
  cfg.dense_dim = static_cast<std::size_t>(get<std::uint64_t>(in, offset));
  cfg.front_end = static_cast<FrontEnd>(get<std::uint8_t>(in, offset));
  cfg.vocab = static_cast<std::size_t>(get<std::uint64_t>(in, offset));
  cfg.embed_dim = static_cast<std::size_t>(get<std::uint64_t>(in, offset));
  cfg.hash_buckets = static_cast<std::size_t>(get<std::uint64_t>(in, offset));
  cfg.hidden = get_sizes(in, offset);
  cfg.heads = static_cast<std::size_t>(get<std::uint64_t>(in, offset));
  return cfg;
}

void put_convtext_config(std::vector<char>& out, const ConvTextConfig& cfg) {
  put(out, static_cast<std::uint64_t>(cfg.vocab));
  put(out, static_cast<std::uint64_t>(cfg.embed_dim));
  put(out, static_cast<std::uint64_t>(cfg.seq_len));
  put(out, static_cast<std::uint64_t>(cfg.conv_channels));
  put(out, static_cast<std::uint64_t>(cfg.kernel));
  put_sizes(out, cfg.hidden);
}

ConvTextConfig get_convtext_config(const std::vector<char>& in, std::size_t& offset) {
  ConvTextConfig cfg;
  cfg.vocab = static_cast<std::size_t>(get<std::uint64_t>(in, offset));
  cfg.embed_dim = static_cast<std::size_t>(get<std::uint64_t>(in, offset));
  cfg.seq_len = static_cast<std::size_t>(get<std::uint64_t>(in, offset));
  cfg.conv_channels = static_cast<std::size_t>(get<std::uint64_t>(in, offset));
  cfg.kernel = static_cast<std::size_t>(get<std::uint64_t>(in, offset));
  cfg.hidden = get_sizes(in, offset);
  return cfg;
}

}  // namespace

std::vector<char> serialize_model(Model& model) {
  std::vector<char> out;
  out.insert(out.end(), kMagic, kMagic + 4);
  if (auto* ff = dynamic_cast<FeedForwardModel*>(&model)) {
    put(out, kKindFeedForward);
    put_feedforward_config(out, ff->config());
  } else if (auto* ct = dynamic_cast<ConvTextModel*>(&model)) {
    put(out, kKindConvText);
    put_convtext_config(out, ct->config());
  } else {
    FLINT_CHECK_MSG(false, "unsupported model type for serialization");
  }
  std::vector<float> params = model.get_flat_parameters();
  put(out, static_cast<std::uint64_t>(params.size()));
  util::append_pod_array(out, params.data(), params.size());
  return out;
}

std::unique_ptr<Model> deserialize_model(const std::vector<char>& bytes) {
  FLINT_CHECK_MSG(bytes.size() >= 5 && std::memcmp(bytes.data(), kMagic, 4) == 0,
                  "bad model blob magic");
  std::size_t offset = 4;
  auto kind = get<std::uint8_t>(bytes, offset);
  std::unique_ptr<Model> model;
  switch (kind) {
    case kKindFeedForward:
      model = std::make_unique<FeedForwardModel>(get_feedforward_config(bytes, offset));
      break;
    case kKindConvText:
      model = std::make_unique<ConvTextModel>(get_convtext_config(bytes, offset));
      break;
    default:
      FLINT_CHECK_MSG(false, "unknown model kind " << static_cast<int>(kind));
  }
  auto count = get<std::uint64_t>(bytes, offset);
  FLINT_CHECK_MSG(count == model->parameter_count(),
                  "blob has " << count << " params, architecture needs "
                              << model->parameter_count());
  // Division form: `offset + count * sizeof(float)` wraps for a corrupt huge
  // count, bypassing the bound.
  FLINT_CHECK_MSG(offset <= bytes.size() &&
                      count <= (bytes.size() - offset) / sizeof(float),
                  "truncated weights");
  std::vector<float> params(count);
  util::read_pod_array(bytes, offset, params.data(), params.size());
  model->set_flat_parameters(params);
  return model;
}

void save_model(const std::string& path, Model& model) {
  auto blob = serialize_model(model);
  std::ofstream out(path, std::ios::binary);
  FLINT_CHECK_MSG(out.good(), "cannot write " << path);
  out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
}

std::unique_ptr<Model> load_model(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  FLINT_CHECK_MSG(in.good(), "cannot read " << path);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  return deserialize_model(bytes);
}

std::size_t serialized_model_bytes(Model& model) {
  // Header is tiny; the weights dominate. Compute exactly via a dry run of
  // the header encoding.
  std::vector<char> header;
  header.insert(header.end(), kMagic, kMagic + 4);
  if (auto* ff = dynamic_cast<FeedForwardModel*>(&model)) {
    put(header, kKindFeedForward);
    put_feedforward_config(header, ff->config());
  } else if (auto* ct = dynamic_cast<ConvTextModel*>(&model)) {
    put(header, kKindConvText);
    put_convtext_config(header, ct->config());
  } else {
    FLINT_CHECK_MSG(false, "unsupported model type for serialization");
  }
  return header.size() + sizeof(std::uint64_t) + model.parameter_count() * sizeof(float);
}

}  // namespace flint::ml
