#include "flint/ml/model.h"

#include <algorithm>

namespace flint::ml {

// -------------------------------------------------------------------- Model

void Model::init(util::Rng& rng) {
  // Default init touches nothing; concrete models override. Provided so that
  // mock models in tests don't need to.
  (void)rng;
}

std::size_t Model::parameter_count() {
  std::size_t n = 0;
  for (Parameter* p : parameters()) n += p->size();
  return n;
}

std::vector<float> Model::get_flat_parameters() {
  std::vector<float> out;
  out.reserve(parameter_count());
  for (Parameter* p : parameters()) {
    auto f = p->value.flat();
    out.insert(out.end(), f.begin(), f.end());
  }
  return out;
}

void Model::set_flat_parameters(std::span<const float> flat) {
  std::size_t offset = 0;
  for (Parameter* p : parameters()) {
    FLINT_CHECK_MSG(offset + p->size() <= flat.size(), "flat parameter vector too short");
    auto f = p->value.flat();
    std::copy(flat.begin() + static_cast<std::ptrdiff_t>(offset),
              flat.begin() + static_cast<std::ptrdiff_t>(offset + p->size()), f.begin());
    offset += p->size();
  }
  FLINT_CHECK_MSG(offset == flat.size(), "flat parameter vector has " << flat.size()
                                                                      << " values, model needs "
                                                                      << offset);
}

std::vector<float> Model::get_flat_gradients() {
  std::vector<float> out;
  out.reserve(parameter_count());
  for (Parameter* p : parameters()) {
    auto f = p->grad.flat();
    out.insert(out.end(), f.begin(), f.end());
  }
  return out;
}

void Model::zero_grad() {
  for (Parameter* p : parameters()) p->grad.zero();
}

// --------------------------------------------------------- FeedForwardModel

FeedForwardModel::FeedForwardModel(FeedForwardConfig config) : config_(std::move(config)) {
  FLINT_CHECK(config_.heads >= 1);
  switch (config_.front_end) {
    case FrontEnd::kNone:
      FLINT_CHECK_MSG(config_.dense_dim > 0, "model with no front end needs dense features");
      break;
    case FrontEnd::kEmbedding:
      FLINT_CHECK(config_.vocab > 0 && config_.embed_dim > 0);
      embedding_ = std::make_unique<EmbeddingBagLayer>(config_.vocab, config_.embed_dim);
      break;
    case FrontEnd::kHashing:
      FLINT_CHECK(config_.hash_buckets > 0);
      hashing_ = std::make_unique<HashedBagLayer>(config_.hash_buckets);
      break;
  }
  std::size_t dim = trunk_input_dim();
  for (std::size_t width : config_.hidden) {
    trunk_.push_back(std::make_unique<DenseLayer>(dim, width));
    trunk_.push_back(std::make_unique<ReluLayer>());
    dim = width;
  }
  trunk_.push_back(std::make_unique<DenseLayer>(dim, config_.heads));
}

FeedForwardModel::FeedForwardModel(const FeedForwardModel& other) : config_(other.config_) {
  if (other.embedding_) embedding_ = std::make_unique<EmbeddingBagLayer>(*other.embedding_);
  if (other.hashing_) hashing_ = std::make_unique<HashedBagLayer>(*other.hashing_);
  trunk_.reserve(other.trunk_.size());
  for (const auto& layer : other.trunk_) trunk_.push_back(layer->clone());
}

std::size_t FeedForwardModel::trunk_input_dim() const {
  std::size_t dim = config_.dense_dim;
  if (config_.front_end == FrontEnd::kEmbedding) dim += config_.embed_dim;
  if (config_.front_end == FrontEnd::kHashing) dim += config_.hash_buckets;
  FLINT_CHECK(dim > 0);
  return dim;
}

Tensor FeedForwardModel::forward(const Batch& batch) {
  std::size_t n = batch.size();
  last_batch_size_ = n;
  Tensor activ;
  if (config_.front_end == FrontEnd::kNone) {
    activ = batch.dense;
    last_had_tokens_ = false;
  } else {
    Tensor front = (config_.front_end == FrontEnd::kEmbedding)
                       ? embedding_->forward(batch.tokens)
                       : hashing_->forward(batch.tokens);
    last_had_tokens_ = true;
    if (config_.dense_dim == 0) {
      activ = std::move(front);
    } else {
      // Concatenate [front | dense].
      activ = Tensor(n, front.cols() + config_.dense_dim);
      for (std::size_t i = 0; i < n; ++i) {
        auto o = activ.row(i);
        auto f = front.row(i);
        auto d = batch.dense.row(i);
        std::copy(f.begin(), f.end(), o.begin());
        std::copy(d.begin(), d.end(), o.begin() + static_cast<std::ptrdiff_t>(front.cols()));
      }
    }
  }
  for (auto& layer : trunk_) activ = layer->forward(activ);
  return activ;
}

void FeedForwardModel::backward(const Tensor& d_logits) {
  Tensor grad = d_logits;
  for (auto it = trunk_.rbegin(); it != trunk_.rend(); ++it) grad = (*it)->backward(grad);
  if (config_.front_end == FrontEnd::kEmbedding && last_had_tokens_) {
    if (config_.dense_dim == 0) {
      embedding_->backward(grad);
    } else {
      // Slice off the embedding part of the concatenated gradient.
      Tensor front_grad(last_batch_size_, config_.embed_dim);
      for (std::size_t i = 0; i < last_batch_size_; ++i) {
        auto g = grad.row(i);
        auto fg = front_grad.row(i);
        std::copy(g.begin(), g.begin() + static_cast<std::ptrdiff_t>(config_.embed_dim),
                  fg.begin());
      }
      embedding_->backward(front_grad);
    }
  }
  // Hashing front end has no trainable parameters; gradient stops there.
}

std::vector<Parameter*> FeedForwardModel::parameters() {
  std::vector<Parameter*> params;
  if (embedding_)
    for (Parameter* p : embedding_->parameters()) params.push_back(p);
  for (auto& layer : trunk_)
    for (Parameter* p : layer->parameters()) params.push_back(p);
  return params;
}

std::unique_ptr<Model> FeedForwardModel::clone() const {
  return std::make_unique<FeedForwardModel>(*this);
}

void FeedForwardModel::init(util::Rng& rng) {
  if (embedding_) embedding_->init(rng);
  for (auto& layer : trunk_) layer->init(rng);
}

// ------------------------------------------------------------ ConvTextModel

ConvTextModel::ConvTextModel(ConvTextConfig config)
    : config_(std::move(config)), embedding_(config_.vocab, config_.embed_dim) {
  FLINT_CHECK(config_.vocab > 0 && config_.embed_dim > 0 && config_.seq_len > 0);
  trunk_.push_back(std::make_unique<Conv1dMaxPoolLayer>(config_.seq_len, config_.embed_dim,
                                                        config_.conv_channels, config_.kernel));
  std::size_t dim = config_.conv_channels;
  for (std::size_t width : config_.hidden) {
    trunk_.push_back(std::make_unique<DenseLayer>(dim, width));
    trunk_.push_back(std::make_unique<ReluLayer>());
    dim = width;
  }
  trunk_.push_back(std::make_unique<DenseLayer>(dim, 1));
}

ConvTextModel::ConvTextModel(const ConvTextModel& other)
    : config_(other.config_), embedding_(other.embedding_) {
  trunk_.reserve(other.trunk_.size());
  for (const auto& layer : other.trunk_) trunk_.push_back(layer->clone());
}

Tensor ConvTextModel::forward(const Batch& batch) {
  std::size_t n = batch.size();
  // Pad/truncate token lists to seq_len; id 0 doubles as padding/OOV.
  last_padded_.assign(n, {});
  Tensor activ(n, config_.seq_len * config_.embed_dim);
  for (std::size_t i = 0; i < n; ++i) {
    auto& padded = last_padded_[i];
    padded.assign(config_.seq_len, 0);
    for (std::size_t j = 0; j < std::min(batch.tokens[i].size(), config_.seq_len); ++j) {
      padded[j] = std::clamp<std::int32_t>(batch.tokens[i][j], 0,
                                           static_cast<std::int32_t>(config_.vocab) - 1);
    }
    auto o = activ.row(i);
    for (std::size_t p = 0; p < config_.seq_len; ++p) {
      auto e = embedding_.value.row(static_cast<std::size_t>(padded[p]));
      std::copy(e.begin(), e.end(), o.begin() + static_cast<std::ptrdiff_t>(p * config_.embed_dim));
    }
  }
  for (auto& layer : trunk_) activ = layer->forward(activ);
  return activ;
}

void ConvTextModel::backward(const Tensor& d_logits) {
  Tensor grad = d_logits;
  for (auto it = trunk_.rbegin(); it != trunk_.rend(); ++it) grad = (*it)->backward(grad);
  FLINT_CHECK(grad.rows() == last_padded_.size() &&
              grad.cols() == config_.seq_len * config_.embed_dim);
  for (std::size_t i = 0; i < last_padded_.size(); ++i) {
    auto g = grad.row(i);
    for (std::size_t p = 0; p < config_.seq_len; ++p) {
      auto gr = embedding_.grad.row(static_cast<std::size_t>(last_padded_[i][p]));
      for (std::size_t j = 0; j < config_.embed_dim; ++j)
        gr[j] += g[p * config_.embed_dim + j];
    }
  }
}

std::vector<Parameter*> ConvTextModel::parameters() {
  std::vector<Parameter*> params{&embedding_};
  for (auto& layer : trunk_)
    for (Parameter* p : layer->parameters()) params.push_back(p);
  return params;
}

std::unique_ptr<Model> ConvTextModel::clone() const {
  return std::make_unique<ConvTextModel>(*this);
}

void ConvTextModel::init(util::Rng& rng) {
  for (float& v : embedding_.value.flat()) v = static_cast<float>(rng.normal(0.0, 0.05));
  for (auto& layer : trunk_) layer->init(rng);
}

}  // namespace flint::ml
