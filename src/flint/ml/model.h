// Model abstraction: a trainable function from a Batch to logits with flat
// parameter access, which is the currency of federated aggregation (clients
// exchange flat update vectors with the server).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "flint/ml/batch.h"
#include "flint/ml/layers.h"

namespace flint::ml {

/// Abstract trainable model.
class Model {
 public:
  virtual ~Model() = default;

  /// Logits [n, heads] for a batch; caches state for backward().
  virtual Tensor forward(const Batch& batch) = 0;

  /// Accumulate parameter gradients for the last forward().
  virtual void backward(const Tensor& d_logits) = 0;

  /// All trainable parameters, in a stable order.
  virtual std::vector<Parameter*> parameters() = 0;

  /// Number of output heads (1 for single-task models).
  virtual std::size_t heads() const { return 1; }

  /// Deep copy (fresh gradient state is fine; values must match).
  virtual std::unique_ptr<Model> clone() const = 0;

  /// Initialize all parameters.
  virtual void init(util::Rng& rng);

  // --- Flat parameter plumbing (implemented on top of parameters()). ---

  /// Total trainable parameter count.
  std::size_t parameter_count();

  /// Concatenation of all parameter values.
  std::vector<float> get_flat_parameters();

  /// Overwrite all parameter values from a flat vector (size must match).
  void set_flat_parameters(std::span<const float> flat);

  /// Concatenation of all parameter gradients.
  std::vector<float> get_flat_gradients();

  /// Zero all parameter gradients.
  void zero_grad();

  /// Serialized size in bytes of one gradient update (float32 payload).
  std::size_t update_bytes() { return parameter_count() * sizeof(float); }
};

/// Which front-end converts tokens to dense activations.
enum class FrontEnd {
  kNone,       ///< dense features only
  kEmbedding,  ///< EmbeddingBag over a vocabulary
  kHashing,    ///< feature hashing into buckets (no trainable table)
};

/// Configuration for FeedForwardModel.
struct FeedForwardConfig {
  std::size_t dense_dim = 0;       ///< dense feature width (0 = none)
  FrontEnd front_end = FrontEnd::kNone;
  std::size_t vocab = 0;           ///< embedding vocab (kEmbedding)
  std::size_t embed_dim = 0;       ///< embedding dimension (kEmbedding)
  std::size_t hash_buckets = 0;    ///< buckets (kHashing)
  std::vector<std::size_t> hidden; ///< hidden layer widths
  std::size_t heads = 1;           ///< output heads (>=2 = multi-task)
};

/// MLP with an optional embedding-bag or feature-hashing front end and an
/// arbitrary ReLU hidden stack. Covers the paper's Models A, B, C, and E.
class FeedForwardModel : public Model {
 public:
  explicit FeedForwardModel(FeedForwardConfig config);
  FeedForwardModel(const FeedForwardModel& other);
  FeedForwardModel& operator=(const FeedForwardModel&) = delete;

  Tensor forward(const Batch& batch) override;
  void backward(const Tensor& d_logits) override;
  std::vector<Parameter*> parameters() override;
  std::size_t heads() const override { return config_.heads; }
  std::unique_ptr<Model> clone() const override;
  void init(util::Rng& rng) override;

  const FeedForwardConfig& config() const { return config_; }

 private:
  std::size_t trunk_input_dim() const;

  FeedForwardConfig config_;
  std::unique_ptr<EmbeddingBagLayer> embedding_;  ///< kEmbedding only
  std::unique_ptr<HashedBagLayer> hashing_;       ///< kHashing only
  std::vector<std::unique_ptr<Layer>> trunk_;     ///< dense + relu stack + head
  std::size_t last_batch_size_ = 0;
  bool last_had_tokens_ = false;
};

/// Configuration for ConvTextModel (the paper's Model D).
struct ConvTextConfig {
  std::size_t vocab = 6000;
  std::size_t embed_dim = 64;
  std::size_t seq_len = 16;    ///< tokens are padded/truncated to this length
  std::size_t conv_channels = 16;
  std::size_t kernel = 3;
  std::vector<std::size_t> hidden = {32};
};

/// Token CNN: embedding table -> 1-D conv + global max pool -> MLP head.
class ConvTextModel : public Model {
 public:
  explicit ConvTextModel(ConvTextConfig config);
  ConvTextModel(const ConvTextModel& other);
  ConvTextModel& operator=(const ConvTextModel&) = delete;

  Tensor forward(const Batch& batch) override;
  void backward(const Tensor& d_logits) override;
  std::vector<Parameter*> parameters() override;
  std::unique_ptr<Model> clone() const override;
  void init(util::Rng& rng) override;

  const ConvTextConfig& config() const { return config_; }

 private:
  ConvTextConfig config_;
  Parameter embedding_;  ///< [vocab, embed_dim]; positional lookup, not a bag
  std::vector<std::unique_ptr<Layer>> trunk_;
  std::vector<std::vector<std::int32_t>> last_padded_;
};

}  // namespace flint::ml
