// Loss functions. Each returns the scalar loss and the gradient of the loss
// w.r.t. the logits, ready to feed Model::backward().
#pragma once

#include <vector>

#include "flint/ml/tensor.h"

namespace flint::ml {

/// Loss value + gradient w.r.t. logits.
struct LossResult {
  double loss = 0.0;
  Tensor d_logits;
};

/// Numerically stable sigmoid.
float stable_sigmoid(float x);

/// Binary cross-entropy with logits, mean-reduced over the batch.
/// logits: [n, 1]; labels: n values in {0, 1} (soft labels allowed).
LossResult bce_with_logits(const Tensor& logits, const std::vector<float>& labels);

/// Multi-task BCE: logits [n, heads]; column h is scored against labels_h.
/// `head_weights` scales each task's contribution (defaults to uniform).
LossResult multitask_bce(const Tensor& logits,
                         const std::vector<std::vector<float>>& labels_per_head,
                         const std::vector<double>& head_weights = {});

/// Pairwise logistic ranking loss (RankNet) over ONE group of candidates.
/// logits: [n, 1]; labels: graded relevance. For every pair (i, j) with
/// labels[i] > labels[j], adds log(1 + exp(-(s_i - s_j))). Mean over pairs.
/// Returns zero loss and gradient if no ordered pair exists.
LossResult pairwise_ranking_loss(const Tensor& logits, const std::vector<float>& labels);

}  // namespace flint::ml
