#include "flint/ml/loss.h"

#include <cmath>

namespace flint::ml {

float stable_sigmoid(float x) {
  if (x >= 0.0f) {
    float z = std::exp(-x);
    return 1.0f / (1.0f + z);
  }
  float z = std::exp(x);
  return z / (1.0f + z);
}

namespace {

/// log(1 + exp(x)) without overflow.
double softplus(double x) {
  if (x > 30.0) return x;
  if (x < -30.0) return 0.0;
  return std::log1p(std::exp(x));
}

}  // namespace

LossResult bce_with_logits(const Tensor& logits, const std::vector<float>& labels) {
  FLINT_CHECK_MSG(logits.cols() == 1, "bce_with_logits expects [n,1] logits");
  FLINT_CHECK(logits.rows() == labels.size());
  FLINT_CHECK(!labels.empty());
  LossResult r;
  r.d_logits = Tensor(logits.rows(), 1);
  double total = 0.0;
  double inv_n = 1.0 / static_cast<double>(labels.size());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    double x = logits.at(i, 0);
    double y = labels[i];
    // loss = softplus(x) - y*x  (stable form of -y log p - (1-y) log(1-p))
    total += softplus(x) - y * x;
    r.d_logits.at(i, 0) = static_cast<float>((stable_sigmoid(static_cast<float>(x)) - y) * inv_n);
  }
  r.loss = total * inv_n;
  return r;
}

LossResult multitask_bce(const Tensor& logits,
                         const std::vector<std::vector<float>>& labels_per_head,
                         const std::vector<double>& head_weights) {
  std::size_t heads = logits.cols();
  FLINT_CHECK(labels_per_head.size() == heads);
  FLINT_CHECK(heads >= 1);
  std::vector<double> w = head_weights;
  if (w.empty()) w.assign(heads, 1.0 / static_cast<double>(heads));
  FLINT_CHECK(w.size() == heads);

  LossResult r;
  r.d_logits = Tensor(logits.rows(), heads);
  std::size_t n = logits.rows();
  FLINT_CHECK(n > 0);
  double inv_n = 1.0 / static_cast<double>(n);
  for (std::size_t h = 0; h < heads; ++h) {
    FLINT_CHECK(labels_per_head[h].size() == n);
    double head_total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double x = logits.at(i, h);
      double y = labels_per_head[h][i];
      head_total += softplus(x) - y * x;
      r.d_logits.at(i, h) = static_cast<float>(
          w[h] * (stable_sigmoid(static_cast<float>(x)) - y) * inv_n);
    }
    r.loss += w[h] * head_total * inv_n;
  }
  return r;
}

LossResult pairwise_ranking_loss(const Tensor& logits, const std::vector<float>& labels) {
  FLINT_CHECK(logits.cols() == 1);
  FLINT_CHECK(logits.rows() == labels.size());
  LossResult r;
  r.d_logits = Tensor(logits.rows(), 1);
  std::size_t n = labels.size();
  std::size_t pairs = 0;
  double total = 0.0;
  // First pass counts ordered pairs so gradients can be mean-normalized.
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      if (labels[i] > labels[j]) ++pairs;
  if (pairs == 0) return r;
  double inv_pairs = 1.0 / static_cast<double>(pairs);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (labels[i] <= labels[j]) continue;
      double diff = static_cast<double>(logits.at(i, 0)) - logits.at(j, 0);
      total += softplus(-diff);
      // d/ds_i log(1+exp(-(s_i-s_j))) = -sigmoid(-(s_i-s_j))
      auto g = static_cast<float>(-stable_sigmoid(static_cast<float>(-diff)) * inv_pairs);
      r.d_logits.at(i, 0) += g;
      r.d_logits.at(j, 0) -= g;
    }
  }
  r.loss = total * inv_pairs;
  return r;
}

}  // namespace flint::ml
