#include "flint/ml/model_zoo.h"

namespace flint::ml {

namespace {

std::unique_ptr<Model> build_a() {
  // Tiny dense net: 32 dense features -> 44 -> 1. 1,497 trainable params.
  FeedForwardConfig cfg;
  cfg.dense_dim = 32;
  cfg.hidden = {44};
  return std::make_unique<FeedForwardModel>(cfg);
}

std::unique_ptr<Model> build_b() {
  // Sparse-feature MLP: 2048 hashed buckets -> 90 -> 48 -> 1. 188,827 params.
  FeedForwardConfig cfg;
  cfg.front_end = FrontEnd::kHashing;
  cfg.hash_buckets = 2048;
  cfg.hidden = {90, 48};
  return std::make_unique<FeedForwardModel>(cfg);
}

std::unique_ptr<Model> build_c() {
  // Medium embedding MLP: vocab 2020 x dim 100 -> 60 -> 1. 208,121 params.
  FeedForwardConfig cfg;
  cfg.front_end = FrontEnd::kEmbedding;
  cfg.vocab = 2020;
  cfg.embed_dim = 100;
  cfg.hidden = {60};
  return std::make_unique<FeedForwardModel>(cfg);
}

std::unique_ptr<Model> build_d() {
  // Token CNN with a large embedding: vocab 6036 x 64, conv(3, 64->16),
  // 32-wide head. 389,969 params.
  ConvTextConfig cfg;
  cfg.vocab = 6036;
  cfg.embed_dim = 64;
  cfg.seq_len = 16;
  cfg.conv_channels = 16;
  cfg.kernel = 3;
  cfg.hidden = {32};
  return std::make_unique<ConvTextModel>(cfg);
}

std::unique_ptr<Model> build_e() {
  // Multi-task MLP: vocab 9345 x 96 embedding + 32 dense features,
  // shared trunk 128 -> 64, two heads. 922,018 params.
  FeedForwardConfig cfg;
  cfg.front_end = FrontEnd::kEmbedding;
  cfg.vocab = 9345;
  cfg.embed_dim = 96;
  cfg.dense_dim = 32;
  cfg.hidden = {128, 64};
  cfg.heads = 2;
  return std::make_unique<FeedForwardModel>(cfg);
}

std::vector<ModelSpec> make_zoo() {
  // Calibration constants synthesized from the paper's Table 5 aggregates
  // (27-device fleet means). time_cv reflects the reported stdev/mean ratio.
  return {
      {'A', "Tiny Neural Net",
       {.storage_mb = 0.057, .network_mb = 0.11, .memory_mb = 3.08,
        .base_time_per_5k_s = 4.98, .time_cv = 3.37 / 4.98, .base_cpu_pct = 1.63},
       &build_a},
      {'B', "MLP w/ sparse features",
       {.storage_mb = 0.76, .network_mb = 1.52, .memory_mb = 10.64,
        .base_time_per_5k_s = 61.81, .time_cv = 44.17 / 61.81, .base_cpu_pct = 3.91},
       &build_b},
      {'C', "MLP w/ medium embedding",
       {.storage_mb = 0.85, .network_mb = 1.88, .memory_mb = 0.85,
        .base_time_per_5k_s = 3.26, .time_cv = 2.23 / 3.26, .base_cpu_pct = 5.29},
       &build_c},
      {'D', "CNN w/ large embedding",
       {.storage_mb = 10.79, .network_mb = 3.12, .memory_mb = 8.37,
        .base_time_per_5k_s = 70.13, .time_cv = 50.82 / 70.13, .base_cpu_pct = 4.72},
       &build_d},
      {'E', "Multi-task MLP",
       {.storage_mb = 7.52, .network_mb = 7.38, .memory_mb = 43.14,
        .base_time_per_5k_s = 238.38, .time_cv = 178.13 / 238.38, .base_cpu_pct = 6.43},
       &build_e},
  };
}

}  // namespace

const std::vector<ModelSpec>& model_zoo() {
  static const std::vector<ModelSpec> zoo = make_zoo();
  return zoo;
}

const ModelSpec& model_spec(char id) {
  for (const ModelSpec& spec : model_zoo())
    if (spec.id == id) return spec;
  FLINT_CHECK_MSG(false, "unknown zoo model id '" << id << "'");
  return model_zoo().front();  // unreachable
}

std::unique_ptr<Model> build_zoo_model(char id, util::Rng& rng) {
  auto model = model_spec(id).build();
  model->init(rng);
  return model;
}

}  // namespace flint::ml
