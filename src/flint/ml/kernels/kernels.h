// Runtime-dispatched SIMD kernels for FLINT's ML hot paths (DESIGN.md §16).
//
// Every flat-array loop that dominates a training or aggregation profile —
// dense matmul, axpy, SGD updates, embedding gather/scatter, reductions, the
// fused DP clip+noise pass — lives here behind one function-pointer table.
// The table is resolved once per process: `auto` picks the widest ISA the
// host supports (AVX2 on x86, NEON on aarch64, scalar otherwise), and
// `--kernels={auto,scalar,avx2,neon}` / the FLINT_KERNELS env var pin a path
// explicitly so determinism tests can hold the numerics fixed.
//
// Determinism contract (why tests may pin a path):
//  * Elementwise kernels (add/sub/scale/axpy/scale_add, the SGD and server
//    momentum steps, gather/scatter, weighted_accum, mean_from_sums,
//    max_abs, matmul, transposed_matmul) are BIT-IDENTICAL across paths:
//    every implementation performs the same per-element multiply-then-add
//    sequence in the same order, with FMA contraction disabled in each
//    kernel TU (-ffp-contract=off), so each float op rounds exactly once.
//  * Sequential double reductions (sum_squares, and the dot products inside
//    matmul_transposed) use multiple accumulators in the SIMD paths. Their
//    double values differ from the scalar path at the ~n·ε_double level;
//    any float derived from them agrees within 1 ULP. They are fully
//    deterministic *within* a path, which is the contract the repo's
//    bit-identity tests run under (kernels pinned, or simply never changed
//    mid-run — the path is process-global and resolved once).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "flint/util/rng.h"

namespace flint::ml::kernels {

/// One implementation path. kAvx2 exists only on x86 builds, kNeon only on
/// aarch64 builds; requesting an absent or unsupported path is a CheckError.
enum class KernelPath { kScalar, kAvx2, kNeon };

const char* path_name(KernelPath path);

/// The flat-array kernel table. All pointers are non-null in every table.
/// Size-zero calls are no-ops; `out` buffers of the matmul family must be
/// zero-initialized by the caller (Tensor's constructors already are).
struct KernelTable {
  // --- elementwise (bit-identical across paths) ---------------------------
  /// y[i] += x[i]
  void (*add)(float* y, const float* x, std::size_t n);
  /// y[i] -= x[i]
  void (*sub)(float* y, const float* x, std::size_t n);
  /// y[i] *= s
  void (*scale)(float* y, float s, std::size_t n);
  /// y[i] += s * x[i]
  void (*axpy)(float* y, const float* x, float s, std::size_t n);
  /// y[i] = y[i] * s + x[i]  (the fused clip+noise inner pass)
  void (*scale_add)(float* y, float s, const float* x, std::size_t n);
  /// value[i] -= lr * (grad[i] + wd * value[i])
  void (*sgd_step)(float* value, const float* grad, float lr, float wd, std::size_t n);
  /// g = grad[i] + wd*value[i]; vel[i] = momentum*vel[i] + g; value[i] -= lr*vel[i]
  void (*sgd_momentum_step)(float* value, const float* grad, float* vel, float lr,
                            float momentum, float wd, std::size_t n);
  /// vel[i] = beta*vel[i] + delta[i]; params[i] += lr*vel[i]  (FedAvgM)
  void (*server_momentum_step)(float* params, float* vel, const float* delta, float beta,
                               float lr, std::size_t n);
  /// sum[i] += w * double(d[i])  (fixed-order reduction input)
  void (*weighted_accum)(double* sum, const float* d, double w, std::size_t n);
  /// out[i] = float(sum[i] * inv)
  void (*mean_from_sums)(float* out, const double* sum, double inv, std::size_t n);
  /// max_i |x[i]| (0 for n == 0); order-independent, exact across paths.
  float (*max_abs)(const float* x, std::size_t n);

  // --- matmul family ------------------------------------------------------
  /// out[m,n] += a[m,k] * b[k,n], ikj order; rank-1 updates with a == 0 are
  /// skipped (preserves signed zeros exactly as the scalar loop does).
  /// Bit-identical across paths: per output element the k-accumulation order
  /// is unchanged and every step is one rounded mul + one rounded add.
  void (*matmul)(const float* a, const float* b, float* out, std::size_t m, std::size_t k,
                 std::size_t n);
  /// out[m,n] += a^T * b with a[k,m], b[k,n] (k-outer rank-1 updates, a == 0
  /// skipped). Bit-identical across paths, same argument as matmul.
  void (*transposed_matmul)(const float* a, const float* b, float* out, std::size_t k,
                            std::size_t m, std::size_t n);
  /// out[m,n] = a[m,k] * b^T with b[n,k]: double-accumulated dot products.
  /// Per-path deterministic; float outputs agree within 1 ULP across paths.
  void (*matmul_transposed)(const float* a, const float* b, float* out, std::size_t m,
                            std::size_t k, std::size_t n);

  // --- reductions ---------------------------------------------------------
  /// acc + sum_i double(x[i])^2. Sequential in the scalar path (chaining
  /// calls reproduces one long accumulation exactly); multi-accumulator in
  /// SIMD paths. Per-path deterministic.
  double (*sum_squares)(const float* x, std::size_t n, double acc);

  // --- embedding bag gather/scatter (bit-identical across paths) ----------
  /// out[j] = (1/count) * sum over tokens of table[clamp(token),j].
  /// `out` must be zeroed; count == 0 leaves it untouched. Tokens clamp to
  /// [0, vocab).
  void (*gather_mean_rows)(const float* table, std::size_t dim, const std::int32_t* tokens,
                           std::size_t count, std::size_t vocab, float* out);
  /// table[clamp(token),j] += s * grad[j] for each token, in token order.
  void (*scatter_add_rows)(float* table, std::size_t dim, const std::int32_t* tokens,
                           std::size_t count, std::size_t vocab, const float* grad, float s);
};

/// The process-wide active table. Resolved once on first use: an explicit
/// set_path() wins, else the FLINT_KERNELS env var, else auto-detection.
/// Reads are lock-free; call set_path() before spawning worker threads.
const KernelTable& active();
KernelPath active_path();

/// True when `path` has an implementation compiled in AND the host CPU can
/// run it (cpuid check for AVX2).
bool path_supported(KernelPath path);

/// Table for an explicit path — the kernel-equivalence tests and the
/// micro-kernel bench compare paths side by side. CheckError if unsupported.
const KernelTable& table_for(KernelPath path);

/// Parse and install "auto" | "scalar" | "avx2" | "neon" (the --kernels
/// flag). CheckError on an unknown spec or an unsupported path.
void set_path(const std::string& spec);

/// The spec that produced the active path ("auto" unless overridden).
/// Leaders forward this verbatim to spawned executors so a pinned path pins
/// the whole fleet (DESIGN.md §16).
const std::string& requested_spec();

/// Fused DP clip + Gaussian noise (privacy/dp.cpp): one sum_squares pass,
/// then a single v = v*scale + noise sweep over a pre-drawn noise buffer.
/// Draw order and per-element rounding match the classic two-pass
/// clip-then-noise exactly (mul rounds once, add rounds once), so the fusion
/// is bit-invisible within a kernel path. Returns the pre-clip L2 norm.
double clip_noise(float* v, std::size_t n, double clip_norm, double stddev, util::Rng& rng);

}  // namespace flint::ml::kernels
