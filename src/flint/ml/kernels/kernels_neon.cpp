// NEON kernels (aarch64). Same exactness discipline as the AVX2 TU:
// vmulq_f32 followed by vaddq_f32 — never vfmaq/vmlaq, which contract to a
// fused multiply-add on aarch64 and would break cross-path bit-identity —
// and scalar tails that repeat the reference expression verbatim. The
// double-precision reductions use float64x2 accumulators and are per-path
// deterministic only, like their AVX2 counterparts.
#include <cstdint>

#if defined(__aarch64__) && defined(__ARM_NEON)

#include <arm_neon.h>

#include <algorithm>
#include <cmath>

#include "flint/ml/kernels/kernels.h"

namespace flint::ml::kernels {

namespace {

void n_add(float* y, const float* x, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) vst1q_f32(y + i, vaddq_f32(vld1q_f32(y + i), vld1q_f32(x + i)));
  for (; i < n; ++i) y[i] += x[i];
}

void n_sub(float* y, const float* x, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) vst1q_f32(y + i, vsubq_f32(vld1q_f32(y + i), vld1q_f32(x + i)));
  for (; i < n; ++i) y[i] -= x[i];
}

void n_scale(float* y, float s, std::size_t n) {
  const float32x4_t vs = vdupq_n_f32(s);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) vst1q_f32(y + i, vmulq_f32(vld1q_f32(y + i), vs));
  for (; i < n; ++i) y[i] *= s;
}

void n_axpy(float* y, const float* x, float s, std::size_t n) {
  const float32x4_t vs = vdupq_n_f32(s);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    float32x4_t t = vmulq_f32(vs, vld1q_f32(x + i));
    vst1q_f32(y + i, vaddq_f32(vld1q_f32(y + i), t));
  }
  for (; i < n; ++i) y[i] += s * x[i];
}

void n_scale_add(float* y, float s, const float* x, std::size_t n) {
  const float32x4_t vs = vdupq_n_f32(s);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    float32x4_t t = vmulq_f32(vld1q_f32(y + i), vs);
    vst1q_f32(y + i, vaddq_f32(t, vld1q_f32(x + i)));
  }
  for (; i < n; ++i) y[i] = y[i] * s + x[i];
}

void n_sgd_step(float* value, const float* grad, float lr, float wd, std::size_t n) {
  const float32x4_t vlr = vdupq_n_f32(lr);
  const float32x4_t vwd = vdupq_n_f32(wd);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    float32x4_t v = vld1q_f32(value + i);
    float32x4_t g = vaddq_f32(vld1q_f32(grad + i), vmulq_f32(vwd, v));
    vst1q_f32(value + i, vsubq_f32(v, vmulq_f32(vlr, g)));
  }
  for (; i < n; ++i) {
    float g = grad[i] + wd * value[i];
    value[i] -= lr * g;
  }
}

void n_sgd_momentum_step(float* value, const float* grad, float* vel, float lr,
                         float momentum, float wd, std::size_t n) {
  const float32x4_t vlr = vdupq_n_f32(lr);
  const float32x4_t vm = vdupq_n_f32(momentum);
  const float32x4_t vwd = vdupq_n_f32(wd);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    float32x4_t v = vld1q_f32(value + i);
    float32x4_t g = vaddq_f32(vld1q_f32(grad + i), vmulq_f32(vwd, v));
    float32x4_t vv = vaddq_f32(vmulq_f32(vm, vld1q_f32(vel + i)), g);
    vst1q_f32(vel + i, vv);
    vst1q_f32(value + i, vsubq_f32(v, vmulq_f32(vlr, vv)));
  }
  for (; i < n; ++i) {
    float g = grad[i] + wd * value[i];
    vel[i] = momentum * vel[i] + g;
    value[i] -= lr * vel[i];
  }
}

void n_server_momentum_step(float* params, float* vel, const float* delta, float beta,
                            float lr, std::size_t n) {
  const float32x4_t vbeta = vdupq_n_f32(beta);
  const float32x4_t vlr = vdupq_n_f32(lr);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    float32x4_t v = vaddq_f32(vmulq_f32(vbeta, vld1q_f32(vel + i)), vld1q_f32(delta + i));
    vst1q_f32(vel + i, v);
    vst1q_f32(params + i, vaddq_f32(vld1q_f32(params + i), vmulq_f32(vlr, v)));
  }
  for (; i < n; ++i) {
    vel[i] = beta * vel[i] + delta[i];
    params[i] += lr * vel[i];
  }
}

void n_weighted_accum(double* sum, const float* d, double w, std::size_t n) {
  const float64x2_t vw = vdupq_n_f64(w);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    float32x4_t vf = vld1q_f32(d + i);
    float64x2_t lo = vcvt_f64_f32(vget_low_f32(vf));
    float64x2_t hi = vcvt_f64_f32(vget_high_f32(vf));
    vst1q_f64(sum + i, vaddq_f64(vld1q_f64(sum + i), vmulq_f64(vw, lo)));
    vst1q_f64(sum + i + 2, vaddq_f64(vld1q_f64(sum + i + 2), vmulq_f64(vw, hi)));
  }
  for (; i < n; ++i) sum[i] += w * static_cast<double>(d[i]);
}

void n_mean_from_sums(float* out, const double* sum, double inv, std::size_t n) {
  const float64x2_t vinv = vdupq_n_f64(inv);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    float32x2_t lo = vcvt_f32_f64(vmulq_f64(vld1q_f64(sum + i), vinv));
    float32x2_t hi = vcvt_f32_f64(vmulq_f64(vld1q_f64(sum + i + 2), vinv));
    vst1q_f32(out + i, vcombine_f32(lo, hi));
  }
  for (; i < n; ++i) out[i] = static_cast<float>(sum[i] * inv);
}

float n_max_abs(const float* x, std::size_t n) {
  float32x4_t vmax = vdupq_n_f32(0.0f);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) vmax = vmaxq_f32(vmax, vabsq_f32(vld1q_f32(x + i)));
  float m = vmaxvq_f32(vmax);
  for (; i < n; ++i) m = std::max(m, std::abs(x[i]));
  return m;
}

void n_matmul(const float* a, const float* b, float* out, std::size_t m, std::size_t k,
              std::size_t n) {
  // Same register-blocked ikj scheme as the AVX2 path (see kernels_avx2.cpp
  // for the exactness argument); 4-wide vectors, k blocked by 2.
  constexpr std::size_t kTile = 512;
  for (std::size_t k0 = 0; k0 < k; k0 += kTile) {
    const std::size_t k1 = std::min(k, k0 + kTile);
    for (std::size_t i = 0; i < m; ++i) {
      const float* a_row = a + i * k;
      float* o_row = out + i * n;
      std::size_t kk = k0;
      for (; kk + 2 <= k1; kk += 2) {
        const float a0 = a_row[kk];
        const float a1 = a_row[kk + 1];
        const float* b0 = b + kk * n;
        const float* b1 = b0 + n;
        if (a0 != 0.0f && a1 != 0.0f) {
          const float32x4_t va0 = vdupq_n_f32(a0);
          const float32x4_t va1 = vdupq_n_f32(a1);
          std::size_t j = 0;
          for (; j + 4 <= n; j += 4) {
            float32x4_t o = vld1q_f32(o_row + j);
            o = vaddq_f32(o, vmulq_f32(va0, vld1q_f32(b0 + j)));
            o = vaddq_f32(o, vmulq_f32(va1, vld1q_f32(b1 + j)));
            vst1q_f32(o_row + j, o);
          }
          for (; j < n; ++j) {
            float o = o_row[j] + a0 * b0[j];
            o_row[j] = o + a1 * b1[j];
          }
        } else if (a0 != 0.0f) {
          n_axpy(o_row, b0, a0, n);
        } else if (a1 != 0.0f) {
          n_axpy(o_row, b1, a1, n);
        }
      }
      if (kk < k1) {
        const float av = a_row[kk];
        if (av != 0.0f) n_axpy(o_row, b + kk * n, av, n);
      }
    }
  }
}

void n_transposed_matmul(const float* a, const float* b, float* out, std::size_t k,
                         std::size_t m, std::size_t n) {
  for (std::size_t kk = 0; kk < k; ++kk) {
    const float* a_row = a + kk * m;
    const float* b_row = b + kk * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float av = a_row[i];
      if (av == 0.0f) continue;
      n_axpy(out + i * n, b_row, av, n);
    }
  }
}

double hsum_f64(float64x2_t v) { return vgetq_lane_f64(v, 0) + vgetq_lane_f64(v, 1); }

void n_matmul_transposed(const float* a, const float* b, float* out, std::size_t m,
                         std::size_t k, std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    const float* a_row = a + i * k;
    for (std::size_t j = 0; j < n; ++j) {
      const float* b_row = b + j * k;
      float64x2_t acc0 = vdupq_n_f64(0.0);
      float64x2_t acc1 = vdupq_n_f64(0.0);
      std::size_t kk = 0;
      for (; kk + 4 <= k; kk += 4) {
        float32x4_t va = vld1q_f32(a_row + kk);
        float32x4_t vb = vld1q_f32(b_row + kk);
        float64x2_t alo = vcvt_f64_f32(vget_low_f32(va));
        float64x2_t ahi = vcvt_f64_f32(vget_high_f32(va));
        float64x2_t blo = vcvt_f64_f32(vget_low_f32(vb));
        float64x2_t bhi = vcvt_f64_f32(vget_high_f32(vb));
        acc0 = vaddq_f64(acc0, vmulq_f64(alo, blo));
        acc1 = vaddq_f64(acc1, vmulq_f64(ahi, bhi));
      }
      double acc = hsum_f64(vaddq_f64(acc0, acc1));
      for (; kk < k; ++kk) acc += static_cast<double>(a_row[kk]) * b_row[kk];
      out[i * n + j] = static_cast<float>(acc);
    }
  }
}

double n_sum_squares(const float* x, std::size_t n, double acc) {
  float64x2_t acc0 = vdupq_n_f64(0.0);
  float64x2_t acc1 = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    float32x4_t v = vld1q_f32(x + i);
    float64x2_t lo = vcvt_f64_f32(vget_low_f32(v));
    float64x2_t hi = vcvt_f64_f32(vget_high_f32(v));
    acc0 = vaddq_f64(acc0, vmulq_f64(lo, lo));
    acc1 = vaddq_f64(acc1, vmulq_f64(hi, hi));
  }
  double partial = hsum_f64(vaddq_f64(acc0, acc1));
  for (; i < n; ++i) partial += static_cast<double>(x[i]) * x[i];
  return acc + partial;
}

std::size_t clamp_token(std::int32_t raw, std::size_t vocab) {
  return static_cast<std::size_t>(
      std::clamp<std::int64_t>(raw, 0, static_cast<std::int64_t>(vocab) - 1));
}

void n_gather_mean_rows(const float* table, std::size_t dim, const std::int32_t* tokens,
                        std::size_t count, std::size_t vocab, float* out) {
  if (count == 0) return;
  for (std::size_t t = 0; t < count; ++t)
    n_add(out, table + clamp_token(tokens[t], vocab) * dim, dim);
  n_scale(out, 1.0f / static_cast<float>(count), dim);
}

void n_scatter_add_rows(float* table, std::size_t dim, const std::int32_t* tokens,
                        std::size_t count, std::size_t vocab, const float* grad, float s) {
  for (std::size_t t = 0; t < count; ++t)
    n_axpy(table + clamp_token(tokens[t], vocab) * dim, grad, s, dim);
}

constexpr KernelTable kNeonTable = {
    n_add,
    n_sub,
    n_scale,
    n_axpy,
    n_scale_add,
    n_sgd_step,
    n_sgd_momentum_step,
    n_server_momentum_step,
    n_weighted_accum,
    n_mean_from_sums,
    n_max_abs,
    n_matmul,
    n_transposed_matmul,
    n_matmul_transposed,
    n_sum_squares,
    n_gather_mean_rows,
    n_scatter_add_rows,
};

}  // namespace

const KernelTable& neon_table() { return kNeonTable; }

}  // namespace flint::ml::kernels

#endif  // __aarch64__ && __ARM_NEON
