// Scalar reference kernels — the numerics every other path must match (or,
// for the double reductions, approximate within 1 ULP of the derived float).
//
// This TU compiles with -fno-tree-vectorize -ffp-contract=off (see
// src/CMakeLists.txt): "scalar" means honestly scalar, so --kernels=scalar
// pins a machine-independent reference path, and no FMA contraction can
// change the one-rounding-per-op contract the SIMD paths replicate.
#include <algorithm>
#include <cmath>
#include <cstdint>

#include "flint/ml/kernels/kernels.h"

namespace flint::ml::kernels {

namespace {

void s_add(float* y, const float* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += x[i];
}

void s_sub(float* y, const float* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] -= x[i];
}

void s_scale(float* y, float s, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] *= s;
}

void s_axpy(float* y, const float* x, float s, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += s * x[i];
}

void s_scale_add(float* y, float s, const float* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] = y[i] * s + x[i];
}

void s_sgd_step(float* value, const float* grad, float lr, float wd, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    float g = grad[i] + wd * value[i];
    value[i] -= lr * g;
  }
}

void s_sgd_momentum_step(float* value, const float* grad, float* vel, float lr,
                         float momentum, float wd, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    float g = grad[i] + wd * value[i];
    vel[i] = momentum * vel[i] + g;
    value[i] -= lr * vel[i];
  }
}

void s_server_momentum_step(float* params, float* vel, const float* delta, float beta,
                            float lr, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    vel[i] = beta * vel[i] + delta[i];
    params[i] += lr * vel[i];
  }
}

void s_weighted_accum(double* sum, const float* d, double w, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) sum[i] += w * static_cast<double>(d[i]);
}

void s_mean_from_sums(float* out, const double* sum, double inv, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = static_cast<float>(sum[i] * inv);
}

float s_max_abs(const float* x, std::size_t n) {
  float m = 0.0f;
  for (std::size_t i = 0; i < n; ++i) m = std::max(m, std::abs(x[i]));
  return m;
}

void s_matmul(const float* a, const float* b, float* out, std::size_t m, std::size_t k,
              std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    const float* a_row = a + i * k;
    float* o_row = out + i * n;
    for (std::size_t kk = 0; kk < k; ++kk) {
      float av = a_row[kk];
      if (av == 0.0f) continue;
      const float* b_row = b + kk * n;
      for (std::size_t j = 0; j < n; ++j) o_row[j] += av * b_row[j];
    }
  }
}

void s_transposed_matmul(const float* a, const float* b, float* out, std::size_t k,
                         std::size_t m, std::size_t n) {
  for (std::size_t kk = 0; kk < k; ++kk) {
    const float* a_row = a + kk * m;
    const float* b_row = b + kk * n;
    for (std::size_t i = 0; i < m; ++i) {
      float av = a_row[i];
      if (av == 0.0f) continue;
      float* o_row = out + i * n;
      for (std::size_t j = 0; j < n; ++j) o_row[j] += av * b_row[j];
    }
  }
}

void s_matmul_transposed(const float* a, const float* b, float* out, std::size_t m,
                         std::size_t k, std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    const float* a_row = a + i * k;
    for (std::size_t j = 0; j < n; ++j) {
      const float* b_row = b + j * k;
      double acc = 0.0;
      for (std::size_t kk = 0; kk < k; ++kk)
        acc += static_cast<double>(a_row[kk]) * b_row[kk];
      out[i * n + j] = static_cast<float>(acc);
    }
  }
}

double s_sum_squares(const float* x, std::size_t n, double acc) {
  for (std::size_t i = 0; i < n; ++i) acc += static_cast<double>(x[i]) * x[i];
  return acc;
}

std::size_t clamp_token(std::int32_t raw, std::size_t vocab) {
  return static_cast<std::size_t>(
      std::clamp<std::int64_t>(raw, 0, static_cast<std::int64_t>(vocab) - 1));
}

void s_gather_mean_rows(const float* table, std::size_t dim, const std::int32_t* tokens,
                        std::size_t count, std::size_t vocab, float* out) {
  if (count == 0) return;
  for (std::size_t t = 0; t < count; ++t) {
    const float* row = table + clamp_token(tokens[t], vocab) * dim;
    for (std::size_t j = 0; j < dim; ++j) out[j] += row[j];
  }
  float inv = 1.0f / static_cast<float>(count);
  for (std::size_t j = 0; j < dim; ++j) out[j] *= inv;
}

void s_scatter_add_rows(float* table, std::size_t dim, const std::int32_t* tokens,
                        std::size_t count, std::size_t vocab, const float* grad, float s) {
  for (std::size_t t = 0; t < count; ++t) {
    float* row = table + clamp_token(tokens[t], vocab) * dim;
    for (std::size_t j = 0; j < dim; ++j) row[j] += s * grad[j];
  }
}

constexpr KernelTable kScalarTable = {
    s_add,
    s_sub,
    s_scale,
    s_axpy,
    s_scale_add,
    s_sgd_step,
    s_sgd_momentum_step,
    s_server_momentum_step,
    s_weighted_accum,
    s_mean_from_sums,
    s_max_abs,
    s_matmul,
    s_transposed_matmul,
    s_matmul_transposed,
    s_sum_squares,
    s_gather_mean_rows,
    s_scatter_add_rows,
};

}  // namespace

const KernelTable& scalar_table() { return kScalarTable; }

}  // namespace flint::ml::kernels
