// AVX2 kernels. Compiled with -mavx2 -ffp-contract=off (src/CMakeLists.txt)
// and only ever invoked after a cpuid check (kernels.cpp), so the binary
// stays runnable on pre-AVX2 x86.
//
// Exactness discipline (DESIGN.md §16): every elementwise kernel performs
// the same rounded multiply followed by the same rounded add as the scalar
// reference — _mm256_mul_ps + _mm256_add_ps, never an FMA — and vector
// tails fall back to the identical scalar expression. Only the double
// reductions (sum_squares, matmul_transposed's dots) use multiple
// accumulators and therefore differ from the scalar path, by design.
#include <cstdint>

#if defined(__AVX2__)

#include <immintrin.h>

#include <algorithm>
#include <cmath>

#include "flint/ml/kernels/kernels.h"

namespace flint::ml::kernels {

namespace {

void a_add(float* y, const float* x, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8)
    _mm256_storeu_ps(y + i, _mm256_add_ps(_mm256_loadu_ps(y + i), _mm256_loadu_ps(x + i)));
  for (; i < n; ++i) y[i] += x[i];
}

void a_sub(float* y, const float* x, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8)
    _mm256_storeu_ps(y + i, _mm256_sub_ps(_mm256_loadu_ps(y + i), _mm256_loadu_ps(x + i)));
  for (; i < n; ++i) y[i] -= x[i];
}

void a_scale(float* y, float s, std::size_t n) {
  const __m256 vs = _mm256_set1_ps(s);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8)
    _mm256_storeu_ps(y + i, _mm256_mul_ps(_mm256_loadu_ps(y + i), vs));
  for (; i < n; ++i) y[i] *= s;
}

void a_axpy(float* y, const float* x, float s, std::size_t n) {
  const __m256 vs = _mm256_set1_ps(s);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 t = _mm256_mul_ps(vs, _mm256_loadu_ps(x + i));
    _mm256_storeu_ps(y + i, _mm256_add_ps(_mm256_loadu_ps(y + i), t));
  }
  for (; i < n; ++i) y[i] += s * x[i];
}

void a_scale_add(float* y, float s, const float* x, std::size_t n) {
  const __m256 vs = _mm256_set1_ps(s);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 t = _mm256_mul_ps(_mm256_loadu_ps(y + i), vs);
    _mm256_storeu_ps(y + i, _mm256_add_ps(t, _mm256_loadu_ps(x + i)));
  }
  for (; i < n; ++i) y[i] = y[i] * s + x[i];
}

void a_sgd_step(float* value, const float* grad, float lr, float wd, std::size_t n) {
  const __m256 vlr = _mm256_set1_ps(lr);
  const __m256 vwd = _mm256_set1_ps(wd);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 v = _mm256_loadu_ps(value + i);
    __m256 g = _mm256_add_ps(_mm256_loadu_ps(grad + i), _mm256_mul_ps(vwd, v));
    _mm256_storeu_ps(value + i, _mm256_sub_ps(v, _mm256_mul_ps(vlr, g)));
  }
  for (; i < n; ++i) {
    float g = grad[i] + wd * value[i];
    value[i] -= lr * g;
  }
}

void a_sgd_momentum_step(float* value, const float* grad, float* vel, float lr,
                         float momentum, float wd, std::size_t n) {
  const __m256 vlr = _mm256_set1_ps(lr);
  const __m256 vm = _mm256_set1_ps(momentum);
  const __m256 vwd = _mm256_set1_ps(wd);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 v = _mm256_loadu_ps(value + i);
    __m256 g = _mm256_add_ps(_mm256_loadu_ps(grad + i), _mm256_mul_ps(vwd, v));
    __m256 vv = _mm256_add_ps(_mm256_mul_ps(vm, _mm256_loadu_ps(vel + i)), g);
    _mm256_storeu_ps(vel + i, vv);
    _mm256_storeu_ps(value + i, _mm256_sub_ps(v, _mm256_mul_ps(vlr, vv)));
  }
  for (; i < n; ++i) {
    float g = grad[i] + wd * value[i];
    vel[i] = momentum * vel[i] + g;
    value[i] -= lr * vel[i];
  }
}

void a_server_momentum_step(float* params, float* vel, const float* delta, float beta,
                            float lr, std::size_t n) {
  const __m256 vbeta = _mm256_set1_ps(beta);
  const __m256 vlr = _mm256_set1_ps(lr);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 v = _mm256_add_ps(_mm256_mul_ps(vbeta, _mm256_loadu_ps(vel + i)),
                             _mm256_loadu_ps(delta + i));
    _mm256_storeu_ps(vel + i, v);
    _mm256_storeu_ps(params + i,
                     _mm256_add_ps(_mm256_loadu_ps(params + i), _mm256_mul_ps(vlr, v)));
  }
  for (; i < n; ++i) {
    vel[i] = beta * vel[i] + delta[i];
    params[i] += lr * vel[i];
  }
}

void a_weighted_accum(double* sum, const float* d, double w, std::size_t n) {
  const __m256d vw = _mm256_set1_pd(w);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d vd = _mm256_cvtps_pd(_mm_loadu_ps(d + i));
    _mm256_storeu_pd(sum + i,
                     _mm256_add_pd(_mm256_loadu_pd(sum + i), _mm256_mul_pd(vw, vd)));
  }
  for (; i < n; ++i) sum[i] += w * static_cast<double>(d[i]);
}

void a_mean_from_sums(float* out, const double* sum, double inv, std::size_t n) {
  const __m256d vinv = _mm256_set1_pd(inv);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    _mm_storeu_ps(out + i, _mm256_cvtpd_ps(_mm256_mul_pd(_mm256_loadu_pd(sum + i), vinv)));
  for (; i < n; ++i) out[i] = static_cast<float>(sum[i] * inv);
}

float a_max_abs(const float* x, std::size_t n) {
  // |x| via sign-bit clear; max is order-independent over finite floats, so
  // the lane-wise fold matches the scalar sweep exactly.
  const __m256 abs_mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
  __m256 vmax = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8)
    vmax = _mm256_max_ps(vmax, _mm256_and_ps(_mm256_loadu_ps(x + i), abs_mask));
  alignas(32) float lanes[8];
  _mm256_store_ps(lanes, vmax);
  float m = 0.0f;
  for (float lane : lanes) m = std::max(m, lane);
  for (; i < n; ++i) m = std::max(m, std::abs(x[i]));
  return m;
}

void a_matmul(const float* a, const float* b, float* out, std::size_t m, std::size_t k,
              std::size_t n) {
  // ikj with the k loop register-blocked by 2 (one out row load/store per
  // k-pair) and tiled so a row of b stays L1-hot across the block. Per
  // output element the k-accumulation order is unchanged, so results are
  // bit-identical to the scalar reference; the a == 0 skip is kept per
  // k-value for the same reason (adding 0.0f would flip -0.0f to +0.0f).
  constexpr std::size_t kTile = 512;
  for (std::size_t k0 = 0; k0 < k; k0 += kTile) {
    const std::size_t k1 = std::min(k, k0 + kTile);
    for (std::size_t i = 0; i < m; ++i) {
      const float* a_row = a + i * k;
      float* o_row = out + i * n;
      std::size_t kk = k0;
      for (; kk + 2 <= k1; kk += 2) {
        const float a0 = a_row[kk];
        const float a1 = a_row[kk + 1];
        const float* b0 = b + kk * n;
        const float* b1 = b0 + n;
        if (a0 != 0.0f && a1 != 0.0f) {
          const __m256 va0 = _mm256_set1_ps(a0);
          const __m256 va1 = _mm256_set1_ps(a1);
          std::size_t j = 0;
          for (; j + 8 <= n; j += 8) {
            __m256 o = _mm256_loadu_ps(o_row + j);
            o = _mm256_add_ps(o, _mm256_mul_ps(va0, _mm256_loadu_ps(b0 + j)));
            o = _mm256_add_ps(o, _mm256_mul_ps(va1, _mm256_loadu_ps(b1 + j)));
            _mm256_storeu_ps(o_row + j, o);
          }
          for (; j < n; ++j) {
            float o = o_row[j] + a0 * b0[j];
            o_row[j] = o + a1 * b1[j];
          }
        } else if (a0 != 0.0f) {
          a_axpy(o_row, b0, a0, n);
        } else if (a1 != 0.0f) {
          a_axpy(o_row, b1, a1, n);
        }
      }
      if (kk < k1) {
        const float av = a_row[kk];
        if (av != 0.0f) a_axpy(o_row, b + kk * n, av, n);
      }
    }
  }
}

void a_transposed_matmul(const float* a, const float* b, float* out, std::size_t k,
                         std::size_t m, std::size_t n) {
  for (std::size_t kk = 0; kk < k; ++kk) {
    const float* a_row = a + kk * m;
    const float* b_row = b + kk * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float av = a_row[i];
      if (av == 0.0f) continue;
      a_axpy(out + i * n, b_row, av, n);
    }
  }
}

double hsum_pd(__m256d v) {
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, v);
  return ((lanes[0] + lanes[1]) + lanes[2]) + lanes[3];
}

void a_matmul_transposed(const float* a, const float* b, float* out, std::size_t m,
                         std::size_t k, std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    const float* a_row = a + i * k;
    for (std::size_t j = 0; j < n; ++j) {
      const float* b_row = b + j * k;
      __m256d acc0 = _mm256_setzero_pd();
      __m256d acc1 = _mm256_setzero_pd();
      std::size_t kk = 0;
      for (; kk + 8 <= k; kk += 8) {
        __m256 va = _mm256_loadu_ps(a_row + kk);
        __m256 vb = _mm256_loadu_ps(b_row + kk);
        acc0 = _mm256_add_pd(acc0,
                             _mm256_mul_pd(_mm256_cvtps_pd(_mm256_castps256_ps128(va)),
                                           _mm256_cvtps_pd(_mm256_castps256_ps128(vb))));
        acc1 = _mm256_add_pd(acc1,
                             _mm256_mul_pd(_mm256_cvtps_pd(_mm256_extractf128_ps(va, 1)),
                                           _mm256_cvtps_pd(_mm256_extractf128_ps(vb, 1))));
      }
      double acc = hsum_pd(_mm256_add_pd(acc0, acc1));
      for (; kk < k; ++kk) acc += static_cast<double>(a_row[kk]) * b_row[kk];
      out[i * n + j] = static_cast<float>(acc);
    }
  }
}

double a_sum_squares(const float* x, std::size_t n, double acc) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 v = _mm256_loadu_ps(x + i);
    __m256d lo = _mm256_cvtps_pd(_mm256_castps256_ps128(v));
    __m256d hi = _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1));
    acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(lo, lo));
    acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(hi, hi));
  }
  double partial = hsum_pd(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) partial += static_cast<double>(x[i]) * x[i];
  return acc + partial;
}

std::size_t clamp_token(std::int32_t raw, std::size_t vocab) {
  return static_cast<std::size_t>(
      std::clamp<std::int64_t>(raw, 0, static_cast<std::int64_t>(vocab) - 1));
}

void a_gather_mean_rows(const float* table, std::size_t dim, const std::int32_t* tokens,
                        std::size_t count, std::size_t vocab, float* out) {
  if (count == 0) return;
  for (std::size_t t = 0; t < count; ++t)
    a_add(out, table + clamp_token(tokens[t], vocab) * dim, dim);
  a_scale(out, 1.0f / static_cast<float>(count), dim);
}

void a_scatter_add_rows(float* table, std::size_t dim, const std::int32_t* tokens,
                        std::size_t count, std::size_t vocab, const float* grad, float s) {
  for (std::size_t t = 0; t < count; ++t)
    a_axpy(table + clamp_token(tokens[t], vocab) * dim, grad, s, dim);
}

constexpr KernelTable kAvx2Table = {
    a_add,
    a_sub,
    a_scale,
    a_axpy,
    a_scale_add,
    a_sgd_step,
    a_sgd_momentum_step,
    a_server_momentum_step,
    a_weighted_accum,
    a_mean_from_sums,
    a_max_abs,
    a_matmul,
    a_transposed_matmul,
    a_matmul_transposed,
    a_sum_squares,
    a_gather_mean_rows,
    a_scatter_add_rows,
};

}  // namespace

const KernelTable& avx2_table() { return kAvx2Table; }

}  // namespace flint::ml::kernels

#endif  // __AVX2__
