// Kernel path resolution + the fused DP clip/noise orchestration.
//
// Resolution happens once per process, on the first call into active() (or
// eagerly via set_path()). Precedence: explicit set_path() spec, then the
// FLINT_KERNELS env var, then auto-detection (AVX2 if the CPU reports it,
// NEON on aarch64 builds, scalar otherwise). State lives in plain statics:
// the flag is parsed and installed at startup before any worker threads
// exist, and every later read is a const load of a resolved pointer.
#include "flint/ml/kernels/kernels.h"

#include <cmath>
#include <cstdlib>
#include <vector>

#include "flint/util/check.h"

namespace flint::ml::kernels {

const KernelTable& scalar_table();
#if defined(__x86_64__) || defined(__i386__)
const KernelTable& avx2_table();
#endif
#if defined(__aarch64__) && defined(__ARM_NEON)
const KernelTable& neon_table();
#endif

namespace {

struct Dispatch {
  KernelPath path = KernelPath::kScalar;
  const KernelTable* table = nullptr;
  std::string spec = "auto";
  bool resolved = false;
};

Dispatch g_dispatch;

KernelPath detect_path() {
#if defined(__x86_64__) || defined(__i386__)
  if (__builtin_cpu_supports("avx2")) return KernelPath::kAvx2;
#elif defined(__aarch64__) && defined(__ARM_NEON)
  return KernelPath::kNeon;
#endif
  return KernelPath::kScalar;
}

KernelPath parse_spec(const std::string& spec) {
  if (spec == "auto") return detect_path();
  if (spec == "scalar") return KernelPath::kScalar;
  if (spec == "avx2") return KernelPath::kAvx2;
  if (spec == "neon") return KernelPath::kNeon;
  FLINT_CHECK_MSG(false, "unknown --kernels spec '" << spec
                             << "' (expected auto|scalar|avx2|neon)");
  return KernelPath::kScalar;
}

void install(const std::string& spec) {
  KernelPath path = parse_spec(spec);
  FLINT_CHECK_MSG(path_supported(path), "kernel path '" << path_name(path)
                                            << "' is not supported on this host");
  g_dispatch.path = path;
  g_dispatch.table = &table_for(path);
  g_dispatch.spec = spec;
  g_dispatch.resolved = true;
}

void resolve_if_needed() {
  if (g_dispatch.resolved) return;
  const char* env = std::getenv("FLINT_KERNELS");
  install(env != nullptr && env[0] != '\0' ? std::string(env) : std::string("auto"));
}

}  // namespace

const char* path_name(KernelPath path) {
  switch (path) {
    case KernelPath::kScalar:
      return "scalar";
    case KernelPath::kAvx2:
      return "avx2";
    case KernelPath::kNeon:
      return "neon";
  }
  return "unknown";
}

bool path_supported(KernelPath path) {
  switch (path) {
    case KernelPath::kScalar:
      return true;
    case KernelPath::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case KernelPath::kNeon:
#if defined(__aarch64__) && defined(__ARM_NEON)
      return true;
#else
      return false;
#endif
  }
  return false;
}

const KernelTable& table_for(KernelPath path) {
  FLINT_CHECK_MSG(path_supported(path), "kernel path '" << path_name(path)
                                            << "' is not supported on this host");
  switch (path) {
    case KernelPath::kScalar:
      return scalar_table();
    case KernelPath::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      return avx2_table();
#else
      break;
#endif
    case KernelPath::kNeon:
#if defined(__aarch64__) && defined(__ARM_NEON)
      return neon_table();
#else
      break;
#endif
  }
  return scalar_table();
}

const KernelTable& active() {
  resolve_if_needed();
  return *g_dispatch.table;
}

KernelPath active_path() {
  resolve_if_needed();
  return g_dispatch.path;
}

void set_path(const std::string& spec) { install(spec); }

const std::string& requested_spec() {
  resolve_if_needed();
  return g_dispatch.spec;
}

double clip_noise(float* v, std::size_t n, double clip_norm, double stddev,
                  util::Rng& rng) {
  const KernelTable& k = active();
  double norm = std::sqrt(k.sum_squares(v, n, 0.0));
  float scale = 1.0f;
  if (norm > clip_norm) scale = static_cast<float>(clip_norm / norm);
  if (stddev == 0.0) {
    if (scale != 1.0f) k.scale(v, scale, n);
    return norm;
  }
  // Draw the noise up front, in element order, so the RNG consumption matches
  // the classic two-pass clip-then-noise draw-for-draw. The fused sweep
  // v = v*scale + noise then rounds exactly like scale-pass + add-pass did
  // (one mul, one add; scale == 1 multiplies exactly).
  std::vector<float> noise(n);
  for (std::size_t i = 0; i < n; ++i)
    noise[i] = static_cast<float>(rng.normal(0.0, stddev));
  k.scale_add(v, scale, noise.data(), n);
  return norm;
}

}  // namespace flint::ml::kernels
