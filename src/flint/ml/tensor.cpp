#include "flint/ml/tensor.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace flint::ml {

Tensor::Tensor(std::size_t rows, std::size_t cols, std::vector<float> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  FLINT_CHECK_EQ(data_.size(), rows_ * cols_);
}

Tensor Tensor::from_vector(std::vector<float> v) {
  std::size_t n = v.size();
  return Tensor(n, 1, std::move(v));
}

float& Tensor::at(std::size_t r, std::size_t c) {
  FLINT_DCHECK(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

float Tensor::at(std::size_t r, std::size_t c) const {
  FLINT_DCHECK(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

void Tensor::zero() { std::fill(data_.begin(), data_.end(), 0.0f); }
void Tensor::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

Tensor& Tensor::operator+=(const Tensor& other) {
  FLINT_CHECK_MSG(same_shape(other),
                  "shape mismatch: " << shape_string() << " += " << other.shape_string());
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& other) {
  FLINT_CHECK(same_shape(other));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(float s) {
  for (float& v : data_) v *= s;
  return *this;
}

void Tensor::add_scaled(const Tensor& other, float s) {
  FLINT_CHECK(same_shape(other));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += s * other.data_[i];
}

float Tensor::l2_norm() const {
  double acc = 0.0;
  for (float v : data_) acc += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(acc));
}

Tensor Tensor::matmul(const Tensor& rhs) const {
  FLINT_CHECK_EQ(cols_, rhs.rows_);
  Tensor out(rows_, rhs.cols_);
  // ikj loop order keeps the inner loop streaming over contiguous memory.
  for (std::size_t i = 0; i < rows_; ++i) {
    const float* a_row = &data_[i * cols_];
    float* o_row = &out.data_[i * rhs.cols_];
    for (std::size_t k = 0; k < cols_; ++k) {
      float a = a_row[k];
      if (a == 0.0f) continue;
      const float* b_row = &rhs.data_[k * rhs.cols_];
      for (std::size_t j = 0; j < rhs.cols_; ++j) o_row[j] += a * b_row[j];
    }
  }
  return out;
}

Tensor Tensor::transposed_matmul(const Tensor& rhs) const {
  FLINT_CHECK_EQ(rows_, rhs.rows_);
  Tensor out(cols_, rhs.cols_);
  for (std::size_t k = 0; k < rows_; ++k) {
    const float* a_row = &data_[k * cols_];
    const float* b_row = &rhs.data_[k * rhs.cols_];
    for (std::size_t i = 0; i < cols_; ++i) {
      float a = a_row[i];
      if (a == 0.0f) continue;
      float* o_row = &out.data_[i * rhs.cols_];
      for (std::size_t j = 0; j < rhs.cols_; ++j) o_row[j] += a * b_row[j];
    }
  }
  return out;
}

Tensor Tensor::matmul_transposed(const Tensor& rhs) const {
  FLINT_CHECK_EQ(cols_, rhs.cols_);
  Tensor out(rows_, rhs.rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    const float* a_row = &data_[i * cols_];
    for (std::size_t j = 0; j < rhs.rows_; ++j) {
      const float* b_row = &rhs.data_[j * rhs.cols_];
      double acc = 0.0;
      for (std::size_t k = 0; k < cols_; ++k) acc += static_cast<double>(a_row[k]) * b_row[k];
      out.data_[i * rhs.rows_ + j] = static_cast<float>(acc);
    }
  }
  return out;
}

std::span<const float> Tensor::row(std::size_t r) const {
  FLINT_DCHECK(r < rows_);
  return {&data_[r * cols_], cols_};
}

std::span<float> Tensor::row(std::size_t r) {
  FLINT_DCHECK(r < rows_);
  return {&data_[r * cols_], cols_};
}

std::string Tensor::shape_string() const {
  std::ostringstream os;
  os << "[" << rows_ << ", " << cols_ << "]";
  return os.str();
}

bool operator==(const Tensor& a, const Tensor& b) {
  if (!a.same_shape(b)) return false;
  auto fa = a.flat();
  auto fb = b.flat();
  return std::equal(fa.begin(), fa.end(), fb.begin());
}

}  // namespace flint::ml
