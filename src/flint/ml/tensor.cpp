#include "flint/ml/tensor.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "flint/ml/kernels/kernels.h"

namespace flint::ml {

Tensor::Tensor(std::size_t rows, std::size_t cols, std::vector<float> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  FLINT_CHECK_EQ(data_.size(), rows_ * cols_);
}

Tensor Tensor::from_vector(std::vector<float> v) {
  std::size_t n = v.size();
  return Tensor(n, 1, std::move(v));
}

float& Tensor::at(std::size_t r, std::size_t c) {
  FLINT_DCHECK(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

float Tensor::at(std::size_t r, std::size_t c) const {
  FLINT_DCHECK(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

void Tensor::zero() { std::fill(data_.begin(), data_.end(), 0.0f); }
void Tensor::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

Tensor& Tensor::operator+=(const Tensor& other) {
  FLINT_CHECK_MSG(same_shape(other),
                  "shape mismatch: " << shape_string() << " += " << other.shape_string());
  kernels::active().add(data_.data(), other.data_.data(), data_.size());
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& other) {
  FLINT_CHECK(same_shape(other));
  kernels::active().sub(data_.data(), other.data_.data(), data_.size());
  return *this;
}

Tensor& Tensor::operator*=(float s) {
  kernels::active().scale(data_.data(), s, data_.size());
  return *this;
}

void Tensor::add_scaled(const Tensor& other, float s) {
  FLINT_CHECK(same_shape(other));
  kernels::active().axpy(data_.data(), other.data_.data(), s, data_.size());
}

float Tensor::l2_norm() const {
  return static_cast<float>(
      std::sqrt(kernels::active().sum_squares(data_.data(), data_.size(), 0.0)));
}

Tensor Tensor::matmul(const Tensor& rhs) const {
  FLINT_CHECK_EQ(cols_, rhs.rows_);
  Tensor out(rows_, rhs.cols_);
  kernels::active().matmul(data_.data(), rhs.data_.data(), out.data_.data(), rows_, cols_,
                           rhs.cols_);
  return out;
}

Tensor Tensor::transposed_matmul(const Tensor& rhs) const {
  FLINT_CHECK_EQ(rows_, rhs.rows_);
  Tensor out(cols_, rhs.cols_);
  kernels::active().transposed_matmul(data_.data(), rhs.data_.data(), out.data_.data(),
                                      rows_, cols_, rhs.cols_);
  return out;
}

Tensor Tensor::matmul_transposed(const Tensor& rhs) const {
  FLINT_CHECK_EQ(cols_, rhs.cols_);
  Tensor out(rows_, rhs.rows_);
  kernels::active().matmul_transposed(data_.data(), rhs.data_.data(), out.data_.data(),
                                      rows_, cols_, rhs.rows_);
  return out;
}

std::span<const float> Tensor::row(std::size_t r) const {
  FLINT_DCHECK(r < rows_);
  return {&data_[r * cols_], cols_};
}

std::span<float> Tensor::row(std::size_t r) {
  FLINT_DCHECK(r < rows_);
  return {&data_[r * cols_], cols_};
}

std::string Tensor::shape_string() const {
  std::ostringstream os;
  os << "[" << rows_ << ", " << cols_ << "]";
  return os.str();
}

bool operator==(const Tensor& a, const Tensor& b) {
  if (!a.same_shape(b)) return false;
  auto fa = a.flat();
  auto fb = b.flat();
  return std::equal(fa.begin(), fa.end(), fb.begin());
}

}  // namespace flint::ml
