// Offline evaluation metrics. The paper measures ads & messaging with AUPR
// (area under the precision-recall curve) and search with NDCG.
#pragma once

#include <cstddef>
#include <vector>

namespace flint::ml {

/// Average precision (equals AUPR computed by the step-wise interpolation
/// scikit-learn uses). scores: predicted; labels: {0,1}. Returns 0 when the
/// positive class is absent.
double average_precision(const std::vector<float>& scores, const std::vector<float>& labels);

/// Area under the ROC curve via the rank-sum (Mann-Whitney) formulation.
/// Returns 0.5 when either class is absent.
double roc_auc(const std::vector<float>& scores, const std::vector<float>& labels);

/// NDCG@k for one ranking group with graded relevance labels.
/// Returns 1.0 for a group with no positive relevance (ideal DCG of zero).
double ndcg_at_k(const std::vector<float>& scores, const std::vector<float>& labels,
                 std::size_t k);

/// Mean binary log-loss of probabilities (clipped to [eps, 1-eps]).
double log_loss(const std::vector<float>& probs, const std::vector<float>& labels);

/// Classification accuracy at a 0.5 probability threshold.
double accuracy(const std::vector<float>& probs, const std::vector<float>& labels);

}  // namespace flint::ml
