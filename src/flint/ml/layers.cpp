#include "flint/ml/layers.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "flint/ml/kernels/kernels.h"

namespace flint::ml {

namespace {

/// Xavier-uniform init for a [fan_in, fan_out] weight matrix.
void xavier_init(Tensor& w, std::size_t fan_in, std::size_t fan_out, util::Rng& rng) {
  float bound = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  for (float& v : w.flat()) v = static_cast<float>(rng.uniform(-bound, bound));
}

}  // namespace

// ---------------------------------------------------------------- DenseLayer

DenseLayer::DenseLayer(std::size_t in_dim, std::size_t out_dim)
    : in_dim_(in_dim), out_dim_(out_dim), weight_(in_dim, out_dim), bias_(1, out_dim) {
  FLINT_CHECK(in_dim > 0 && out_dim > 0);
}

Tensor DenseLayer::forward(const Tensor& input) {
  FLINT_CHECK_MSG(input.cols() == in_dim_,
                  "dense layer expects " << in_dim_ << " inputs, got " << input.cols());
  last_input_ = input;
  Tensor out = input.matmul(weight_.value);
  const auto& k = kernels::active();
  auto bias = bias_.value.flat();
  for (std::size_t i = 0; i < out.rows(); ++i) k.add(out.row(i).data(), bias.data(), out_dim_);
  return out;
}

Tensor DenseLayer::backward(const Tensor& d_output) {
  FLINT_CHECK(d_output.rows() == last_input_.rows() && d_output.cols() == out_dim_);
  // dW += X^T dY;  db += column sums of dY;  dX = dY W^T.
  weight_.grad += last_input_.transposed_matmul(d_output);
  const auto& k = kernels::active();
  auto bias_grad = bias_.grad.flat();
  for (std::size_t i = 0; i < d_output.rows(); ++i)
    k.add(bias_grad.data(), d_output.row(i).data(), out_dim_);
  return d_output.matmul_transposed(weight_.value);
}

void DenseLayer::init(util::Rng& rng) {
  xavier_init(weight_.value, in_dim_, out_dim_, rng);
  bias_.value.zero();
}

// ----------------------------------------------------------------- ReluLayer

Tensor ReluLayer::forward(const Tensor& input) {
  last_input_ = input;
  Tensor out = input;
  for (float& v : out.flat())
    if (v < 0.0f) v = 0.0f;
  return out;
}

Tensor ReluLayer::backward(const Tensor& d_output) {
  FLINT_CHECK(d_output.same_shape(last_input_));
  Tensor din = d_output;
  auto in = last_input_.flat();
  auto g = din.flat();
  for (std::size_t i = 0; i < g.size(); ++i)
    if (in[i] <= 0.0f) g[i] = 0.0f;
  return din;
}

// -------------------------------------------------------------- SigmoidLayer

Tensor SigmoidLayer::forward(const Tensor& input) {
  Tensor out = input;
  for (float& v : out.flat()) v = 1.0f / (1.0f + std::exp(-v));
  last_output_ = out;
  return out;
}

Tensor SigmoidLayer::backward(const Tensor& d_output) {
  FLINT_CHECK(d_output.same_shape(last_output_));
  Tensor din = d_output;
  auto y = last_output_.flat();
  auto g = din.flat();
  for (std::size_t i = 0; i < g.size(); ++i) g[i] *= y[i] * (1.0f - y[i]);
  return din;
}

// ----------------------------------------------------------------- TanhLayer

Tensor TanhLayer::forward(const Tensor& input) {
  Tensor out = input;
  for (float& v : out.flat()) v = std::tanh(v);
  last_output_ = out;
  return out;
}

Tensor TanhLayer::backward(const Tensor& d_output) {
  FLINT_CHECK(d_output.same_shape(last_output_));
  Tensor din = d_output;
  auto y = last_output_.flat();
  auto g = din.flat();
  for (std::size_t i = 0; i < g.size(); ++i) g[i] *= 1.0f - y[i] * y[i];
  return din;
}

// --------------------------------------------------------- EmbeddingBagLayer

EmbeddingBagLayer::EmbeddingBagLayer(std::size_t vocab, std::size_t dim)
    : vocab_(vocab), dim_(dim), table_(vocab, dim) {
  FLINT_CHECK(vocab > 0 && dim > 0);
}

Tensor EmbeddingBagLayer::forward(const std::vector<std::vector<std::int32_t>>& tokens) {
  last_tokens_ = tokens;
  Tensor out(tokens.size(), dim_);
  const auto& k = kernels::active();
  auto table = table_.value.flat();
  for (std::size_t i = 0; i < tokens.size(); ++i)
    k.gather_mean_rows(table.data(), dim_, tokens[i].data(), tokens[i].size(), vocab_,
                       out.row(i).data());
  return out;
}

void EmbeddingBagLayer::backward(const Tensor& d_output) {
  FLINT_CHECK(d_output.rows() == last_tokens_.size() && d_output.cols() == dim_);
  const auto& k = kernels::active();
  auto grad_table = table_.grad.flat();
  for (std::size_t i = 0; i < last_tokens_.size(); ++i) {
    if (last_tokens_[i].empty()) continue;
    float inv = 1.0f / static_cast<float>(last_tokens_[i].size());
    k.scatter_add_rows(grad_table.data(), dim_, last_tokens_[i].data(),
                       last_tokens_[i].size(), vocab_, d_output.row(i).data(), inv);
  }
}

void EmbeddingBagLayer::init(util::Rng& rng) {
  // Small-scale normal init, standard for embedding tables.
  for (float& v : table_.value.flat()) v = static_cast<float>(rng.normal(0.0, 0.05));
}

// ------------------------------------------------------------- HashedBagLayer

HashedBagLayer::HashedBagLayer(std::size_t buckets, std::uint64_t salt)
    : buckets_(buckets), salt_(salt) {
  FLINT_CHECK(buckets > 0);
}

std::size_t HashedBagLayer::bucket_of(std::int32_t token) const {
  return static_cast<std::size_t>(
      util::splitmix64(static_cast<std::uint64_t>(static_cast<std::uint32_t>(token)) ^ salt_) %
      buckets_);
}

Tensor HashedBagLayer::forward(const std::vector<std::vector<std::int32_t>>& tokens) const {
  Tensor out(tokens.size(), buckets_);
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].empty()) continue;
    auto o = out.row(i);
    float norm = 1.0f / std::sqrt(static_cast<float>(tokens[i].size()));
    for (std::int32_t t : tokens[i]) o[bucket_of(t)] += norm;
  }
  return out;
}

// ------------------------------------------------------- Conv1dMaxPoolLayer

Conv1dMaxPoolLayer::Conv1dMaxPoolLayer(std::size_t seq_len, std::size_t in_ch,
                                       std::size_t out_ch, std::size_t kernel)
    : seq_len_(seq_len),
      in_ch_(in_ch),
      out_ch_(out_ch),
      kernel_(kernel),
      kernel_w_(kernel * in_ch, out_ch),
      kernel_b_(1, out_ch) {
  FLINT_CHECK(kernel > 0 && kernel <= seq_len);
}

Tensor Conv1dMaxPoolLayer::forward(const Tensor& input) {
  FLINT_CHECK_MSG(input.cols() == seq_len_ * in_ch_,
                  "conv1d expects " << seq_len_ * in_ch_ << " inputs, got " << input.cols());
  last_input_ = input;
  std::size_t n = input.rows();
  std::size_t positions = seq_len_ - kernel_ + 1;
  Tensor out(n, out_ch_);
  last_argmax_.assign(n * out_ch_, 0);
  for (std::size_t s = 0; s < n; ++s) {
    auto in = input.row(s);
    auto o = out.row(s);
    for (std::size_t c = 0; c < out_ch_; ++c)
      o[c] = -std::numeric_limits<float>::infinity();
    for (std::size_t p = 0; p < positions; ++p) {
      const float* window = in.data() + p * in_ch_;
      for (std::size_t c = 0; c < out_ch_; ++c) {
        double acc = kernel_b_.value[c];
        for (std::size_t k = 0; k < kernel_ * in_ch_; ++k)
          acc += static_cast<double>(window[k]) * kernel_w_.value.at(k, c);
        auto v = static_cast<float>(acc);
        if (v > o[c]) {
          o[c] = v;
          last_argmax_[s * out_ch_ + c] = p;
        }
      }
    }
  }
  return out;
}

Tensor Conv1dMaxPoolLayer::backward(const Tensor& d_output) {
  FLINT_CHECK(d_output.rows() == last_input_.rows() && d_output.cols() == out_ch_);
  Tensor din(last_input_.rows(), last_input_.cols());
  for (std::size_t s = 0; s < last_input_.rows(); ++s) {
    auto in = last_input_.row(s);
    auto g = d_output.row(s);
    auto gi = din.row(s);
    for (std::size_t c = 0; c < out_ch_; ++c) {
      float go = g[c];
      if (go == 0.0f) continue;
      std::size_t p = last_argmax_[s * out_ch_ + c];
      const float* window = in.data() + p * in_ch_;
      float* gwindow = gi.data() + p * in_ch_;
      for (std::size_t k = 0; k < kernel_ * in_ch_; ++k) {
        kernel_w_.grad.at(k, c) += go * window[k];
        gwindow[k] += go * kernel_w_.value.at(k, c);
      }
      kernel_b_.grad[c] += go;
    }
  }
  return din;
}

void Conv1dMaxPoolLayer::init(util::Rng& rng) {
  xavier_init(kernel_w_.value, kernel_ * in_ch_, out_ch_, rng);
  kernel_b_.value.zero();
}

}  // namespace flint::ml
