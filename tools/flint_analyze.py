#!/usr/bin/env python3
"""FLINT determinism analyzer: AST/text checks for the bit-identical contract.

The simulator promises bit-identical results at any thread count (DESIGN.md
§11) and across kill/resume (§12). Those guarantees die quietly: iterating a
hash map into a float sum, or stamping sim state from a wall clock, compiles
clean and passes every test that doesn't diff artifacts bitwise. This tool
checks the contract statically, over four FLINT-specific rules clang-tidy
cannot express:

  unordered-iter       a range-for over std::unordered_{map,set,...} whose
                       body reaches a determinism sink: appending to a
                       sequence that is never sorted afterwards, or streaming
                       to an ostream. Hash iteration order is
                       implementation- and history-dependent, so anything
                       order-sensitive downstream inherits that history.
                       The sanctioned idiom — collect then std::sort — is
                       recognized and not flagged.
  nondet-source        wall clocks (steady/system/high_resolution _clock::now),
                       std::random_device, rand/srand, or
                       std::this_thread::get_id outside the observability
                       boundary. src/flint/obs/ is allowlisted wholesale (its
                       whole job is wall-clock measurement); anywhere else a
                       wall-clock read must justify itself inline.
  save-load-symmetry   a serialize_/deserialize_ (save_/load_, put_/get_,
                       append_/read_, write_/read_) function pair whose
                       field-access sequences over the record variable
                       disagree — reordered, missing, or extra fields. The
                       checkpoint format has no per-field tags; symmetry of
                       the two walks IS the format.
  float-accum          += / -= on a float or double inside an unordered
                       range-for (directly, or one call deep into a helper
                       defined in the same file). Float addition is not
                       bitwise-commutative, so a hash-order fold produces
                       last-ulp differences between runs that inserted in a
                       different order — exactly the fresh-vs-resumed split.

Engines:
  --engine clang  libclang (clang.cindex) over compile_commands.json: range
                  and accumulator types resolve through the real AST.
                  Exits 77 (skip) when the python clang bindings or a
                  compile database are unavailable.
  --engine text   pure-Python fallback with per-translation-unit scope: each
                  file is analyzed together with the project headers it
                  directly includes, so member/container types resolve
                  without a compiler. Runs everywhere.
  --engine auto   clang when importable, else text (default).

Suppressions: `// flint-analyze: allow(<check>): <reason>` on the offending
line or up to 3 lines above (multi-line statements put the match on a
continuation line). The reason is mandatory — an allowlist entry without a
justification is itself a finding.

Usage:
  tools/flint_analyze.py [--engine auto|clang|text] [--compdb PATH]
                         [--self-test] [paths...]        (default: src)

Exit: 0 clean, 1 findings (or self-test failure), 2 usage error,
      77 skipped (--engine clang without libclang).
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

EXIT_SKIP = 77

CHECKS = ("unordered-iter", "nondet-source", "save-load-symmetry", "float-accum")

SUPPRESS_RE = re.compile(r"//\s*flint-analyze:\s*allow\(([a-z-]+)\)\s*:\s*(.*)")

# Paths (relative, substring match on posix form) where wall-clock reads are
# the point: the observability subsystem measures real time by design, and
# the rpc runtime's heartbeat/lease deadlines are real-time by nature (its
# results stay deterministic because leases are pure functions of their
# payloads, not of when they run — DESIGN.md §14).
NONDET_PATH_ALLOWLIST = ("src/flint/obs/", "src/flint/rpc/")

UNORDERED_TYPES = r"std::unordered_(?:map|set|multimap|multiset)"
ORDERED_TYPES = r"std::(?:map|set|multimap|multiset|vector|deque|list|array)"

# Declarations: `std::unordered_map<K, V> name` (members, locals, params).
UNORDERED_DECL_RE = re.compile(
    UNORDERED_TYPES + r"\s*<[^;{}()]*?>\s*(?:&|\*)?\s*(\w+)\s*(?:=|;|,|\)|\{)")
ORDERED_DECL_RE = re.compile(
    ORDERED_TYPES + r"\s*<[^;{}()]*?>\s*(?:&|\*)?\s*(\w+)\s*(?:=|;|,|\)|\{)")
# Functions/methods returning (a reference to) an unordered container.
UNORDERED_FN_RE = re.compile(
    r"(?:const\s+)?" + UNORDERED_TYPES + r"\s*<[^;{}()]*?>\s*&?\s*(\w+)\s*\(")

FLOAT_DECL_RE = re.compile(r"\b(?:double|float)\s+(\w+)\s*(?:=|;|,|\)|\{)")

RANGE_FOR_RE = re.compile(
    r"\bfor\s*\(\s*(?:const\s+)?auto\s*&{0,2}\s*"
    r"(\[[^\]]*\]|\w+)\s*:\s*([\w.\->()]+?)\s*\)")

NONDET_RE = re.compile(
    r"std::random_device|\bsrand\s*\(|\bstd::rand\s*\(|"
    r"\b(?:steady_clock|system_clock|high_resolution_clock)::now\s*\(|"
    r"this_thread::get_id\s*\(")

# Method names that read a container without being record fields; field
# sequences keep `v.field` but drop `v.size()` etc.
CONTAINER_METHODS = {
    "size", "resize", "reserve", "push_back", "emplace_back", "pop_back",
    "begin", "end", "rbegin", "rend", "data", "clear", "empty", "front",
    "back", "at", "count", "find", "insert", "emplace", "erase", "c_str",
}

SINK_APPEND_RE = re.compile(r"\b(\w+)\.(?:push_back|emplace_back|insert|emplace)\s*\(")

SAVE_LOAD_PREFIXES = [
    ("serialize_", "deserialize_"),
    ("save_", "load_"),
    ("put_", "get_"),
    ("append_", "read_"),
    ("write_", "read_"),
]


class Finding:
    def __init__(self, path: Path, line: int, check: str, message: str):
        self.path, self.line, self.check, self.message = path, line, check, message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.check}] {self.message}"


def strip_comments_and_strings(text: str) -> str:
    """Blank comment and string-literal contents, preserving line structure.

    Regex checks must not fire on `// steady_clock::now()` in prose or on
    "rand(" inside a string. Newlines survive so line numbers stay aligned.
    """
    out = []
    i, n = 0, len(text)
    mode = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if mode == "code":
            if c == "/" and nxt == "/":
                mode = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                mode = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                mode = "string"
                out.append(c)
                i += 1
                continue
            if c == "'":
                mode = "char"
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif mode == "line_comment":
            if c == "\n":
                mode = "code"
                out.append(c)
            else:
                out.append(" ")
        elif mode == "block_comment":
            if c == "*" and nxt == "/":
                mode = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif mode in ("string", "char"):
            quote = '"' if mode == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                mode = "code"
                out.append(c)
            elif c == "\n":  # unterminated (macro line continuation); bail out
                mode = "code"
                out.append(c)
            else:
                out.append(" ")
        i += 1
    return "".join(out)


class SourceFile:
    """One file plus the derived views every check shares."""

    def __init__(self, path: Path, text: str):
        self.path = path
        self.text = text
        self.lines = text.splitlines()
        self.code = strip_comments_and_strings(text)
        self.code_lines = self.code.splitlines()
        # line (1-based) -> {check: reason}
        self.allows: dict[int, dict[str, str]] = {}
        for idx, line in enumerate(self.lines):
            m = SUPPRESS_RE.search(line)
            if m:
                self.allows.setdefault(idx + 1, {})[m.group(1)] = m.group(2).strip()

    def allowed(self, check: str, lineno: int) -> bool:
        """allow() on the line itself or up to 3 lines above (continuations)."""
        for ln in range(max(1, lineno - 3), lineno + 1):
            if check in self.allows.get(ln, {}):
                return True
        return False


def load_file(path: Path) -> SourceFile:
    return SourceFile(path, path.read_text(encoding="utf-8", errors="replace"))


# --------------------------------------------------------------------------
# Per-TU scope (text engine): a file plus its directly-included project
# headers. Container types for members and locals resolve against this text.
# --------------------------------------------------------------------------

INCLUDE_RE = re.compile(r'^\s*#include\s+"([^"]+)"', re.MULTILINE)


def resolve_includes(path: Path, include_dirs: list[Path], depth: int = 2) -> list[Path]:
    """Project headers reachable from `path` within `depth` include hops.

    Two hops covers the codebase's layering (a .cpp includes its own header,
    which includes the record/type headers it exposes) without dragging the
    whole tree into every TU's scope."""
    found: list[Path] = []
    seen = {path.resolve()}

    def visit(p: Path, d: int) -> None:
        if d == 0:
            return
        for inc in INCLUDE_RE.findall(p.read_text(encoding="utf-8", errors="replace")):
            for base in [p.parent] + include_dirs:
                cand = base / inc
                if cand.is_file():
                    r = cand.resolve()
                    if r not in seen:
                        seen.add(r)
                        found.append(cand)
                        visit(cand, d - 1)
                    break

    visit(path, depth)
    return found


class TuScope:
    """Name -> container-kind map for one translation unit."""

    def __init__(self, main: SourceFile, headers: list[SourceFile]):
        self.main = main
        corpus = "\n".join([main.code] + [h.code for h in headers])
        unordered = set(UNORDERED_DECL_RE.findall(corpus))
        ordered = set(ORDERED_DECL_RE.findall(corpus))
        # A name declared both ways in scope (e.g. `last_participation` as an
        # unordered map in the runner and a sorted vector in SimCheckpoint) is
        # ambiguous without real type info; skip rather than false-positive.
        self.unordered_names = unordered - ordered
        self.unordered_fns = set(UNORDERED_FN_RE.findall(corpus)) - ordered
        floats = set(FLOAT_DECL_RE.findall(corpus))
        self.float_names = floats

    def range_is_unordered(self, range_expr: str) -> bool:
        expr = range_expr.strip()
        call = expr.endswith("()")
        if call:
            expr = expr[:-2]
        # Take the trailing component of a.b, a->b, this->b.
        name = re.split(r"\.|->", expr)[-1]
        if call:
            return name in self.unordered_fns
        return name in self.unordered_names

    def is_float(self, lvalue: str) -> bool:
        name = re.split(r"\.|->", lvalue.strip())[-1]
        return name in self.float_names


# --------------------------------------------------------------------------
# Structural helpers over the comment/string-stripped text.
# --------------------------------------------------------------------------

def line_of(offset: int, text: str) -> int:
    return text.count("\n", 0, offset) + 1


def body_span(text: str, open_from: int) -> tuple[int, int]:
    """(start, end) offsets of the brace-balanced block starting at or after
    open_from; (-1, -1) when the next statement is unbraced or unterminated."""
    i = open_from
    while i < len(text) and text[i] in " \t\r\n":
        i += 1
    if i >= len(text) or text[i] != "{":
        # Unbraced single-statement body: up to the terminating semicolon.
        end = text.find(";", i)
        return (i, end + 1) if end != -1 else (-1, -1)
    depth = 0
    for j in range(i, len(text)):
        if text[j] == "{":
            depth += 1
        elif text[j] == "}":
            depth -= 1
            if depth == 0:
                return (i, j + 1)
    return (-1, -1)


def enclosing_function_tail(text: str, from_offset: int) -> str:
    """Text from from_offset to the end of the enclosing function — the
    region where a collect-then-sort idiom would place its std::sort."""
    depth = 0
    for j in range(from_offset, len(text)):
        if text[j] == "{":
            depth += 1
        elif text[j] == "}":
            if depth == 0:
                return text[from_offset:j]
            depth -= 1
    return text[from_offset:]


def same_file_function_bodies(code: str) -> dict[str, tuple[int, str]]:
    """name -> (def line, body) for free/member functions defined in `code`."""
    out: dict[str, tuple[int, str]] = {}
    for m in re.finditer(r"\b(\w+)\s*\([^;{}]*\)\s*(?:const\s*)?\{", code):
        name = m.group(1)
        if name in ("if", "for", "while", "switch", "catch", "return", "sizeof"):
            continue
        start, end = body_span(code, m.end() - 1)
        if start != -1:
            out.setdefault(name, (line_of(m.start(), code), code[start:end]))
    return out


# --------------------------------------------------------------------------
# Check 1 + 4: unordered iteration sinks and float accumulation.
# --------------------------------------------------------------------------

FLOAT_ACCUM_RE = re.compile(r"([\w.\->\[\]]+)\s*[+\-]\s*=(?!=)")
CALL_RE = re.compile(r"\b(\w+)\s*\(")


def check_unordered_loops(sf: SourceFile, scope: TuScope) -> list[Finding]:
    findings: list[Finding] = []
    code = sf.code
    fn_bodies = same_file_function_bodies(code)
    for m in RANGE_FOR_RE.finditer(code):
        if not scope.range_is_unordered(m.group(2)):
            continue
        loop_line = line_of(m.start(), code)
        start, end = body_span(code, m.end())
        if start == -1:
            continue
        body = code[start:end]
        tail = enclosing_function_tail(code, end)

        # --- unordered-iter: order-sensitive sinks ---
        for sm in SINK_APPEND_RE.finditer(body):
            target = sm.group(1)
            sink_line = loop_line + body.count("\n", 0, sm.start())
            # Collect-then-sort: appending into a vector that the same
            # function sorts afterwards is the sanctioned way to iterate a
            # hash map deterministically.
            if re.search(r"std::(?:stable_)?sort\s*\(\s*" + re.escape(target) + r"\.", tail):
                continue
            if sf.allowed("unordered-iter", sink_line):
                continue
            findings.append(Finding(
                sf.path, sink_line, "unordered-iter",
                f"appends to '{target}' while iterating unordered "
                f"'{m.group(2)}' (line {loop_line}); hash order leaks into a "
                f"sequence — sort '{target}' afterwards or iterate a sorted "
                f"view"))
        if "<<" in body:
            sink_line = loop_line + body.count("\n", 0, body.find("<<"))
            if not sf.allowed("unordered-iter", sink_line):
                findings.append(Finding(
                    sf.path, sink_line, "unordered-iter",
                    f"streams output while iterating unordered "
                    f"'{m.group(2)}' (line {loop_line}); emitted order is "
                    f"hash-dependent — iterate a sorted copy"))

        # --- float-accum: direct, then one call deep ---
        def accum_findings(hay: str, base_line: int, via: str = "") -> None:
            for am in FLOAT_ACCUM_RE.finditer(hay):
                lhs = am.group(1)
                if not scope.is_float(lhs):
                    continue
                acc_line = base_line + hay.count("\n", 0, am.start())
                where = f" via {via}()" if via else ""
                report_line = acc_line if not via else loop_line
                if sf.allowed("float-accum", report_line):
                    continue
                findings.append(Finding(
                    sf.path, report_line, "float-accum",
                    f"float accumulation into '{lhs}'{where} while iterating "
                    f"unordered '{m.group(2)}' (line {loop_line}); float "
                    f"addition is not bitwise-commutative — fold in sorted "
                    f"key order"))

        accum_findings(body, loop_line)
        for cm in CALL_RE.finditer(body):
            callee = cm.group(1)
            if callee in fn_bodies:
                _, callee_body = fn_bodies[callee]
                accum_findings(callee_body, loop_line, via=callee)
    return findings


# --------------------------------------------------------------------------
# Check 2: nondeterminism sources.
# --------------------------------------------------------------------------

def check_nondet_sources(sf: SourceFile) -> list[Finding]:
    posix = sf.path.as_posix()
    if any(allowed in posix for allowed in NONDET_PATH_ALLOWLIST):
        return []
    findings = []
    for idx, line in enumerate(sf.code_lines):
        m = NONDET_RE.search(line)
        if not m:
            continue
        lineno = idx + 1
        if sf.allowed("nondet-source", lineno):
            continue
        findings.append(Finding(
            sf.path, lineno, "nondet-source",
            f"'{m.group(0).strip()}' outside the obs/ wall-clock boundary; "
            f"sim results must be a pure function of the seed — derive from "
            f"util::Rng / virtual time, or justify with "
            f"// flint-analyze: allow(nondet-source): <why>"))
    return findings


# std::*_distribution algorithms are implementation-defined: libstdc++ and
# libc++ draw different values from the same engine state, so any use outside
# util/rng (whose samplers are either portable or themselves the sanctioned
# wrapper) silently breaks cross-stdlib reproducibility.
DISTRIBUTION_RE = re.compile(r"\bstd::\w+_distribution\b")

# util/rng is the one sanctioned home for stdlib distributions: Rng's own
# wrappers are the repo-wide seam, and its portable samplers (e.g. poisson)
# replace the implementation-defined ones case by case.
DISTRIBUTION_PATH_ALLOWLIST = ("src/flint/util/rng",)


def check_distribution_sources(sf: SourceFile) -> list[Finding]:
    posix = sf.path.as_posix()
    if any(allowed in posix for allowed in DISTRIBUTION_PATH_ALLOWLIST):
        return []
    findings = []
    for idx, line in enumerate(sf.code_lines):
        m = DISTRIBUTION_RE.search(line)
        if not m:
            continue
        lineno = idx + 1
        if sf.allowed("nondet-source", lineno):
            continue
        findings.append(Finding(
            sf.path, lineno, "nondet-source",
            f"'{m.group(0)}' outside util/rng; std distribution algorithms "
            f"are implementation-defined, so traces diverge across standard "
            f"libraries — draw through util::Rng, or justify with "
            f"// flint-analyze: allow(nondet-source): <why>"))
    return findings


# --------------------------------------------------------------------------
# Check 3: save/load field-pairing symmetry.
# --------------------------------------------------------------------------

FN_DEF_RE = re.compile(r"\b(\w+)\s*\(([^;{})]*)\)\s*(?:const\s*)?\{")


def record_candidates(params: str, body: str) -> list[str]:
    """Possible record variables: reference parameters plus a returned local.

    Which one is the record is decided by evidence, not qualifiers: the
    candidate whose field-access sequence is longest is the one the function
    is actually walking (stream/writer handles only ever appear in method
    calls, which field_sequence discards)."""
    names = [pm.group(1) for pm in re.finditer(r"&\s*(\w+)\s*(?:,|$)", params)]
    rm = re.search(r"\breturn\s+(\w+)\s*;", body)
    if rm and rm.group(1) not in names:
        names.append(rm.group(1))
    return names


def best_field_sequence(params: str, body: str) -> list[str]:
    best: list[str] = []
    for var in record_candidates(params, body):
        seq = field_sequence(body, var)
        if len(seq) > len(best):
            best = seq
    return best


def field_sequence(body: str, var: str) -> list[str]:
    """Ordered field accesses on `var`, recursing one level into range-for
    sub-record loops (`for (auto& t : var.member)` -> member.field...)."""
    aliases: dict[str, str] = {}
    for am in re.finditer(
            r"for\s*\(\s*(?:const\s+)?auto\s*&{0,2}\s*(\w+)\s*:\s*"
            + re.escape(var) + r"\.(\w+)\s*\)", body):
        aliases[am.group(1)] = am.group(2)
    seq: list[str] = []
    access = re.compile(
        r"\b(" + "|".join([re.escape(var)] + [re.escape(a) for a in aliases]) +
        r")\.(\w+)\b(\s*\()?")
    for fm in access.finditer(body):
        base, field, is_call = fm.group(1), fm.group(2), fm.group(3)
        if is_call or field in CONTAINER_METHODS:
            continue
        entry = field if base == var else f"{aliases[base]}.{field}"
        if not seq or seq[-1] != entry:  # collapse re-reads of one field
            seq.append(entry)
    return seq


def check_save_load_symmetry(sf: SourceFile) -> list[Finding]:
    code = sf.code
    fns: dict[str, tuple[int, str, str]] = {}  # name -> (line, params, body)
    for m in FN_DEF_RE.finditer(code):
        name = m.group(1)
        if name in ("if", "for", "while", "switch", "catch"):
            continue
        start, end = body_span(code, m.end() - 1)
        if start == -1:
            continue
        fns.setdefault(name, (line_of(m.start(), code), m.group(2), code[start:end]))

    findings = []
    for wprefix, rprefix in SAVE_LOAD_PREFIXES:
        for name, (wline, wparams, wbody) in fns.items():
            if not name.startswith(wprefix):
                continue
            stem = name[len(wprefix):]
            reader = fns.get(rprefix + stem)
            if reader is None:
                continue
            rline, rparams, rbody = reader

            # Compare first-occurrence order: re-reading an already-walked
            # field (a trailing FLINT_CHECK_FINITE on a restored value) is
            # validation, not a second format walk.
            def first_occurrence(seq: list[str]) -> list[str]:
                seen: set[str] = set()
                out = []
                for s in seq:
                    if s not in seen:
                        seen.add(s)
                        out.append(s)
                return out

            wseq = first_occurrence(best_field_sequence(wparams, wbody))
            rseq = first_occurrence(best_field_sequence(rparams, rbody))
            # Size-prefix helpers and pure method-call walks have no field
            # sequence to pair; demanding symmetry there is noise.
            if len(wseq) < 2 or len(rseq) < 2:
                continue
            if wseq != rseq:
                if sf.allowed("save-load-symmetry", rline):
                    continue
                findings.append(Finding(
                    sf.path, rline, "save-load-symmetry",
                    f"{rprefix + stem} walks fields [{', '.join(rseq)}] but "
                    f"{name} (line {wline}) wrote [{', '.join(wseq)}]; the "
                    f"format is the walk order — the two must match exactly"))
    return findings


# --------------------------------------------------------------------------
# Text engine driver.
# --------------------------------------------------------------------------

def dedupe(findings: list[Finding]) -> list[Finding]:
    """One report per distinct fact: a helper called N times in one loop
    still describes one accumulation-order problem."""
    seen: set[str] = set()
    out = []
    for f in findings:
        key = str(f)
        if key not in seen:
            seen.add(key)
            out.append(f)
    return out


def analyze_file_text(path: Path, include_dirs: list[Path]) -> list[Finding]:
    sf = load_file(path)
    headers = []
    for hp in resolve_includes(path, include_dirs):
        try:
            headers.append(load_file(hp))
        except OSError:
            pass
    scope = TuScope(sf, headers)
    findings = []
    findings.extend(check_unordered_loops(sf, scope))
    findings.extend(check_nondet_sources(sf))
    findings.extend(check_distribution_sources(sf))
    findings.extend(check_save_load_symmetry(sf))
    return dedupe(findings)


# --------------------------------------------------------------------------
# Clang engine: same checks, with range/accumulator types resolved through
# the real AST instead of per-TU text scope.
# --------------------------------------------------------------------------

def clang_available() -> bool:
    try:
        import clang.cindex  # noqa: F401
        return True
    except Exception:
        return False


def analyze_file_clang(path: Path, compdb_dir: Path | None,
                       include_dirs: list[Path]) -> list[Finding]:
    import clang.cindex as ci

    args = [f"-I{d}" for d in include_dirs] + ["-std=c++20"]
    if compdb_dir is not None:
        try:
            db = ci.CompilationDatabase.fromDirectory(str(compdb_dir))
            cmds = db.getCompileCommands(str(path.resolve()))
            if cmds:
                raw = list(cmds[0].arguments)[1:]  # drop the compiler itself
                args = [a for a in raw if a not in ("-c", "-o", str(path))
                        and not a.endswith((".o", ".cpp"))]
        except ci.CompilationDatabaseError:
            pass
    index = ci.Index.create()
    tu = index.parse(str(path), args=args)

    sf = load_file(path)

    def is_unordered_type(type_obj) -> bool:
        spelling = type_obj.get_canonical().spelling
        return "unordered_map" in spelling or "unordered_set" in spelling or \
               "unordered_multimap" in spelling or "unordered_multiset" in spelling

    def is_float_type(type_obj) -> bool:
        return type_obj.get_canonical().spelling.replace("const ", "") in (
            "double", "float", "long double")

    findings: list[Finding] = []

    def in_main_file(cursor) -> bool:
        return cursor.location.file and \
            Path(cursor.location.file.name).resolve() == path.resolve()

    def walk(cursor, in_unordered_loop: tuple[int, str] | None):
        for child in cursor.get_children():
            loop_ctx = in_unordered_loop
            if child.kind == ci.CursorKind.CXX_FOR_RANGE_STMT and in_main_file(child):
                kids = list(child.get_children())
                range_expr = kids[-2] if len(kids) >= 2 else None
                if range_expr is not None and is_unordered_type(range_expr.type):
                    loop_ctx = (child.location.line,
                                " ".join(t.spelling for t in range_expr.get_tokens()))
            if in_main_file(child):
                line = child.location.line
                # nondet-source on call expressions.
                if child.kind == ci.CursorKind.CALL_EXPR and \
                        child.spelling in ("now", "get_id", "rand", "srand"):
                    posix = path.as_posix()
                    if not any(a in posix for a in NONDET_PATH_ALLOWLIST) and \
                            not sf.allowed("nondet-source", line):
                        findings.append(Finding(
                            sf.path, line, "nondet-source",
                            f"call to '{child.spelling}' outside the obs/ "
                            f"wall-clock boundary; derive from util::Rng / "
                            f"virtual time or justify inline"))
                # float-accum inside an unordered loop.
                if loop_ctx is not None and child.kind in (
                        ci.CursorKind.COMPOUND_ASSIGNMENT_OPERATOR,):
                    lhs = next(iter(child.get_children()), None)
                    if lhs is not None and is_float_type(lhs.type) and \
                            not sf.allowed("float-accum", loop_ctx[0]):
                        findings.append(Finding(
                            sf.path, loop_ctx[0], "float-accum",
                            f"float compound assignment at line {line} while "
                            f"iterating unordered '{loop_ctx[1]}'; fold in "
                            f"sorted key order"))
            walk(child, loop_ctx)

    walk(tu.cursor, None)
    # Sequence/stream sinks and save-load symmetry share the text logic; the
    # AST contributed the type facts above.
    headers = [load_file(hp) for hp in resolve_includes(path, include_dirs)]
    scope = TuScope(sf, headers)
    text_findings = (check_unordered_loops(sf, scope) + check_distribution_sources(sf) +
                     check_save_load_symmetry(sf))
    seen = {(f.line, f.check, f.message) for f in findings}
    for f in text_findings:
        if f.check == "float-accum":
            continue  # AST version above is authoritative for types
        if (f.line, f.check, f.message) not in seen:
            findings.append(f)
    return dedupe(findings)


# --------------------------------------------------------------------------
# Self-test corpus.
# --------------------------------------------------------------------------

def run_self_test(engine: str, corpus_dir: Path, include_dirs: list[Path],
                  compdb_dir: Path | None) -> int:
    files = sorted(corpus_dir.glob("*.cpp"))
    if not files:
        print(f"flint_analyze: empty corpus at {corpus_dir}", file=sys.stderr)
        return 2
    failures = 0
    for f in files:
        if engine == "clang":
            findings = analyze_file_clang(f, compdb_dir, include_dirs)
        else:
            findings = analyze_file_text(f, include_dirs)
        stem = f.stem
        if stem.startswith("bad_"):
            expected = stem[len("bad_"):].rsplit("_case", 1)[0].replace("_", "-")
            hits = [x for x in findings if x.check == expected]
            if not hits:
                print(f"SELF-TEST FAIL {f.name}: expected >=1 '{expected}' "
                      f"finding, got {[str(x) for x in findings]}")
                failures += 1
            else:
                print(f"self-test ok   {f.name}: {len(hits)} x {expected}")
        elif stem.startswith("good_"):
            if findings:
                print(f"SELF-TEST FAIL {f.name}: expected clean, got:")
                for x in findings:
                    print(f"  {x}")
                failures += 1
            else:
                print(f"self-test ok   {f.name}: clean")
    print(f"flint_analyze self-test ({engine} engine): "
          f"{len(files)} files, {failures} failure(s)")
    return 1 if failures else 0


# --------------------------------------------------------------------------


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("paths", nargs="*", default=[], help="files or dirs (default: src)")
    ap.add_argument("--engine", choices=("auto", "clang", "text"), default="auto")
    ap.add_argument("--compdb", default=None,
                    help="directory containing compile_commands.json (clang engine)")
    ap.add_argument("--self-test", action="store_true",
                    help="run over tools/analyze_corpus/ and verify expectations")
    opts = ap.parse_args(argv[1:])

    engine = opts.engine
    if engine == "clang" and not clang_available():
        print("flint_analyze: python clang bindings unavailable — skipping "
              "(install python3-clang to enable the AST engine)", file=sys.stderr)
        return EXIT_SKIP
    if engine == "auto":
        engine = "clang" if clang_available() else "text"

    repo = Path(__file__).resolve().parent.parent
    include_dirs = [repo / "src"]
    compdb_dir = Path(opts.compdb) if opts.compdb else \
        (repo / "build" if (repo / "build" / "compile_commands.json").is_file() else None)

    if opts.self_test:
        return run_self_test(engine, Path(__file__).resolve().parent / "analyze_corpus",
                             include_dirs, compdb_dir)

    roots = [Path(p) for p in (opts.paths or [repo / "src"])]
    files: list[Path] = []
    for root in roots:
        if root.is_file():
            files.append(root)
        elif root.is_dir():
            files.extend(sorted(root.rglob("*.h")))
            files.extend(sorted(root.rglob("*.cpp")))
        else:
            print(f"flint_analyze: no such path: {root}", file=sys.stderr)
            return 2

    findings: list[Finding] = []
    for f in files:
        if engine == "clang" and f.suffix == ".cpp":
            findings.extend(analyze_file_clang(f, compdb_dir, include_dirs))
        else:
            findings.extend(analyze_file_text(f, include_dirs))

    for finding in findings:
        print(finding)
    print(f"flint_analyze ({engine} engine): {len(files)} files, "
          f"{len(findings)} finding(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
