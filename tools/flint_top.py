#!/usr/bin/env python3
"""Follow a FLINT leader's live status stream (obs::StatusReporter JSONL).

A run started with `--status-out PATH` appends one JSON object per reporting
interval (default 1 wall-second) describing the fleet: current round, tasks
in flight, per-executor liveness, update throughput, and leader RSS. This
tool renders those lines as a terminal status display.

Modes:
  --once     print the latest status line as a table and exit
             (exit 1 if the file is empty or the last line is invalid)
  --follow   tail the file, redrawing on each new line (Ctrl-C to stop)

Usage:
  tools/flint_top.py --status status.jsonl [--once | --follow]
Exit: 0 ok, 1 empty/invalid status, 2 usage/IO error.
"""

from __future__ import annotations

import argparse
import json
import sys
import time


def parse_line(line: str) -> dict | None:
    try:
        row = json.loads(line)
    except json.JSONDecodeError:
        return None
    return row if isinstance(row, dict) else None


def human_bytes(n) -> str:
    if not isinstance(n, (int, float)) or n < 0:
        return "?"
    for unit in ("B", "KiB", "MiB", "GiB"):
        if n < 1024 or unit == "GiB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{int(n)} {unit}"
        n /= 1024
    return f"{n:.1f} GiB"


def render(row: dict) -> str:
    lines = [
        "flint_top — fleet status",
        f"  wall time     : {row.get('t_wall_s', '?'):>10} s",
        f"  virtual time  : {row.get('t_virtual_s', '?'):>10} s",
        f"  round         : {row.get('round', '?')}",
        f"  tasks in flight: {row.get('tasks_in_flight', '?')}"
        f"  (queue depth {row.get('queue_depth', '?')})",
        f"  leases in flight: {row.get('leases_in_flight', '?')}",
        f"  updates       : {row.get('updates_total', '?')} total, "
        f"{row.get('updates_per_s', '?')}/s",
        f"  executors     : {row.get('executors_alive', '?')} alive, "
        f"{row.get('executors_lost', '?')} lost",
        f"  leader RSS    : {human_bytes(row.get('rss_bytes'))}",
    ]
    executors = row.get("executors")
    if isinstance(executors, list) and executors:
        lines.append("  per-executor  :")
        for ex in executors:
            if not isinstance(ex, dict):
                continue
            state = "alive" if ex.get("alive") else "LOST"
            lines.append(f"    executor {ex.get('id', '?')}: {state}, "
                         f"{ex.get('outstanding', '?')} outstanding lease(s)")
    return "\n".join(lines)


def last_status(path: str) -> dict | None:
    try:
        with open(path, encoding="utf-8") as f:
            content = f.read()
    except OSError as e:
        print(f"flint_top: {path}: {e}", file=sys.stderr)
        raise SystemExit(2)
    row = None
    for line in content.splitlines():
        if line.strip():
            parsed = parse_line(line)
            if parsed is not None:
                row = parsed
    return row


def follow(path: str) -> int:
    offset = 0
    buffer = ""
    try:
        while True:
            try:
                with open(path, encoding="utf-8") as f:
                    f.seek(offset)
                    chunk = f.read()
                    offset = f.tell()
            except OSError:
                time.sleep(0.5)
                continue
            buffer += chunk
            latest = None
            while "\n" in buffer:
                line, buffer = buffer.split("\n", 1)
                parsed = parse_line(line) if line.strip() else None
                if parsed is not None:
                    latest = parsed
            if latest is not None:
                # Clear screen and home the cursor between redraws.
                sys.stdout.write("\x1b[2J\x1b[H" + render(latest) + "\n")
                sys.stdout.flush()
            time.sleep(0.5)
    except KeyboardInterrupt:
        return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--status", required=True, help="status JSONL file to read")
    mode = ap.add_mutually_exclusive_group()
    mode.add_argument("--once", action="store_true",
                      help="print the latest line and exit (default)")
    mode.add_argument("--follow", action="store_true", help="tail and redraw")
    args = ap.parse_args()

    if args.follow:
        return follow(args.status)
    row = last_status(args.status)
    if row is None:
        print(f"flint_top: {args.status}: no valid status lines", file=sys.stderr)
        return 1
    print(render(row))
    return 0


if __name__ == "__main__":
    sys.exit(main())
