// Corpus: unordered-iter must fire. Hash-order iteration feeding ordered
// sinks — the appended vector and the streamed text both inherit
// unordered_map iteration order, which depends on libstdc++ version, load
// factor, and insertion history.
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

std::vector<std::string> names_bad(const std::unordered_map<int, std::string>& um) {
  std::vector<std::string> out;
  for (const auto& [k, v] : um) {
    out.push_back(v);  // never sorted afterwards: hash order becomes the order
  }
  return out;
}

void dump_bad(std::ostringstream& os, const std::unordered_map<int, std::string>& um) {
  for (const auto& [k, v] : um) {
    os << k << "=" << v << "\n";  // emitted order is hash-dependent
  }
}
