// Corpus: save-load-symmetry must stay silent. Symmetric walk including a
// nested sub-record loop (the CheckpointInFlightTask pattern) and
// length-prefix plumbing that is not a field.
#include <cstdint>
#include <vector>

struct Item {
  std::uint64_t id = 0;
  double w = 0.0;
};

struct Pack {
  std::uint64_t n = 0;
  std::vector<Item> items;
  double tail = 0.0;
};

struct Writer {
  void u64(std::uint64_t) {}
  void f64(double) {}
};
struct Reader {
  std::uint64_t u64() { return 0; }
  double f64() { return 0.0; }
};

void serialize_pack(Writer& wtr, const Pack& p) {
  wtr.u64(p.n);
  wtr.u64(p.items.size());
  for (const auto& it : p.items) {
    wtr.u64(it.id);
    wtr.f64(it.w);
  }
  wtr.f64(p.tail);
}

Pack deserialize_pack(Reader& rd) {
  Pack p;
  p.n = rd.u64();
  p.items.resize(rd.u64());
  for (auto& it : p.items) {
    it.id = rd.u64();
    it.w = rd.f64();
  }
  p.tail = rd.f64();
  return p;
}
