// Corpus: nondet-source must fire. std::*_distribution algorithms are
// implementation-defined — libstdc++ and libc++ draw different values from
// the same engine state — so using one outside util/rng makes the trace a
// function of the standard library, not the seed.
#include <random>

double sample_gap_bad(std::mt19937_64& engine) {
  std::normal_distribution<double> gap(60.0, 15.0);
  return gap(engine);
}

long sample_count_bad(std::mt19937_64& engine) {
  std::poisson_distribution<long> count(3.0);
  return count(engine);
}
