// Corpus: unordered-iter must stay silent. Collect-then-sort, order-
// insensitive reductions, and ordered containers are all sanctioned.
#include <algorithm>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

// Collect-then-sort: the canonical deterministic hash-map walk.
std::vector<std::string> names_good(const std::unordered_map<int, std::string>& um) {
  std::vector<std::string> out;
  for (const auto& [k, v] : um) {
    out.push_back(v);
  }
  std::sort(out.begin(), out.end());
  return out;
}

// Order-insensitive reduction: max commutes, order cannot leak.
int max_good(const std::unordered_map<int, int>& um) {
  int best = 0;
  for (const auto& [k, v] : um) {
    best = std::max(best, v);
  }
  return best;
}

// std::map iterates in key order by definition; streaming it is fine.
std::vector<int> keys_good(const std::map<int, int>& om) {
  std::vector<int> out;
  for (const auto& [k, v] : om) {
    out.push_back(k);
  }
  return out;
}
