// Corpus: nondet-source must fire. Wall-clock and hardware-entropy reads in
// sim-side code make results a function of the machine, not the seed.
#include <chrono>
#include <random>

double sample_duration_bad() {
  auto t0 = std::chrono::steady_clock::now();
  std::random_device rd;
  return static_cast<double>(rd()) +
         std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}
