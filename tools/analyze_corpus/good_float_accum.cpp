// Corpus: float-accum must stay silent. Sorted-key folding and integer
// accumulation (which commutes bitwise) are both fine.
#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

// Collect keys, sort, accumulate in key order: the sanctioned fold.
double total_good(const std::unordered_map<std::uint64_t, double>& um) {
  std::vector<std::uint64_t> keys;
  keys.reserve(um.size());
  for (const auto& [id, v] : um) {
    keys.push_back(id);
  }
  std::sort(keys.begin(), keys.end());
  double sum = 0.0;
  for (std::uint64_t k : keys) {
    sum += um.at(k);
  }
  return sum;
}

// Integer accumulation: addition order cannot change the bits.
std::uint64_t count_good(const std::unordered_map<std::uint64_t, double>& um) {
  std::uint64_t n = 0;
  for (const auto& [id, v] : um) {
    n += id;
  }
  return n;
}
