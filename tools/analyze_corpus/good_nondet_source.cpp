// Corpus: nondet-source must stay silent when the read is justified inline.
// The allow() form requires a reason — the justification is part of the
// allowlist entry, not a separate document.
#include <chrono>

double wall_probe_good() {
  // flint-analyze: allow(nondet-source): measures harness wall time for a
  // diagnostic gauge; never reaches simulated results.
  auto t0 = std::chrono::steady_clock::now();
  // flint-analyze: allow(nondet-source): end of the same measurement.
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}
