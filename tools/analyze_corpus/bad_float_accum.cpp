// Corpus: float-accum must fire. A direct hash-order double fold: the sum's
// low bits depend on iteration order, which depends on insertion history —
// a fresh run and a resumed run diverge in the last ulp.
#include <cstdint>
#include <unordered_map>

double total_bad(const std::unordered_map<std::uint64_t, double>& um) {
  double sum = 0.0;
  for (const auto& [id, v] : um) {
    sum += v;
  }
  return sum;
}
