// Corpus: unordered-iter must stay silent. Collect-then-sort with a
// multi-key tie-break comparator — the pattern the session generator uses:
// primary key first, then enough secondary keys that equal primaries still
// produce one total order regardless of hash-bucket iteration.
#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

struct Window {
  double start = 0.0;
  double end = 0.0;
  std::uint64_t client = 0;
};

// Equal starts are common (clients sharing a timezone slot), so the sort key
// is the full (start, client, end) triple — a strict weak ordering with no
// ties left for container order to break.
inline bool window_before(const Window& a, const Window& b) {
  if (a.start != b.start) return a.start < b.start;
  if (a.client != b.client) return a.client < b.client;
  return a.end < b.end;
}

std::vector<Window> ordered_windows(const std::unordered_map<std::uint64_t, Window>& by_client) {
  std::vector<Window> out;
  out.reserve(by_client.size());
  for (const auto& [client, w] : by_client) out.push_back(w);
  std::sort(out.begin(), out.end(), window_before);
  return out;
}
