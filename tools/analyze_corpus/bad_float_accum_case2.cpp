// Corpus: float-accum must fire one call deep. The accumulation hides inside
// a same-file helper (the ClientLedger fold() shape); the loop still folds
// doubles in hash order.
#include <cstdint>
#include <unordered_map>

struct Roll {
  double compute_s = 0.0;
  std::uint64_t n = 0;
};

void fold(Roll& roll, double v) {
  roll.compute_s += v;
  ++roll.n;
}

Roll total_bad2(const std::unordered_map<std::uint64_t, double>& um) {
  Roll roll;
  for (const auto& [id, v] : um) {
    fold(roll, v);
  }
  return roll;
}
