// Corpus: save-load-symmetry must fire. The on-disk format has no per-field
// tags, so the writer's and reader's field walks ARE the format; here fields
// b and c silently swap positions on disk.
#include <cstdint>

struct Rec {
  std::uint64_t a = 0;
  double b = 0.0;
  std::uint64_t c = 0;
};

struct Writer {
  void u64(std::uint64_t) {}
  void f64(double) {}
};
struct Reader {
  std::uint64_t u64() { return 0; }
  double f64() { return 0.0; }
};

void serialize_rec(Writer& w, const Rec& r) {
  w.u64(r.a);
  w.f64(r.b);
  w.u64(r.c);
}

Rec deserialize_rec(Reader& rd) {
  Rec r;
  r.a = rd.u64();
  r.c = rd.u64();  // reads c where the writer put b
  r.b = rd.f64();
  return r;
}
