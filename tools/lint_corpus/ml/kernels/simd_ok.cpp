// Fixture: intrinsics are fine inside a ml/kernels/ directory — that is the
// one audited home the simd rule confines them to.
#include <immintrin.h>

#include <cstddef>

void kernel_add(float* y, const float* x, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 a = _mm256_loadu_ps(y + i);
    _mm256_storeu_ps(y + i, _mm256_add_ps(a, _mm256_loadu_ps(x + i)));
  }
  for (; i < n; ++i) y[i] += x[i];
}
