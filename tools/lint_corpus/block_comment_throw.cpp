// Fixture: rule text inside a block comment must not fire. The middle lines
// below do not start with a comment marker, which is exactly the case a
// line-start heuristic misses.
/*
  Historical note: this module used to
  throw std::runtime_error on bad input, and drew ids from
  std::random_device before the util::Rng migration.
*/

namespace fixture {
int parse(int x) { return x * 2; }
}  // namespace fixture
