// Fixture: rule keywords inside string literals must not fire.
#include <string>

namespace fixture {
std::string help_text() {
  return "on failure we throw a descriptive error; do not use std::rand here";
}
}  // namespace fixture
