// Fixture: a real guard satisfies the pragma-once rule.
#pragma once

namespace fixture {
inline int value() { return 2; }
}  // namespace fixture
