// Fixture: positive control — an actual foreign throw must be flagged.
#include <stdexcept>

namespace fixture {
int checked(int x) {
  if (x < 0) throw std::runtime_error("negative");
  return x;
}
}  // namespace fixture
