// Fixture: positive control — raw std::thread outside util/thread_pool must
// be flagged, and the rng rule must fire on a real std::random_device.
#include <random>
#include <thread>

namespace fixture {
void spawn() {
  std::random_device rd;
  std::thread t([&] { (void)rd; });
  t.join();
}
}  // namespace fixture
