// Fixture: rpc code using the propagation-aware guard is clean — RpcSpanGuard
// carries trace/span ids, so merged traces can parent its spans, and the
// \bSpanGuard\b pattern must not fire inside the RpcSpanGuard identifier.
namespace flint::rpc {

void dispatch_lease(unsigned long long lease_id) {
  obs::RpcSpanGuard span("rpc.dispatch", "rpc", obs::SpanContext{}, lease_id);
  (void)span;
}

}  // namespace flint::rpc
