// Fixture: rpc code opening anonymous spans must trip rpc-spans — both the
// FLINT_TRACE_SPAN macro and a raw obs::SpanGuard lack trace/span ids, so
// their spans cannot be parented across processes in a merged trace.
namespace flint::rpc {

void dispatch_lease() {
  FLINT_TRACE_SPAN("rpc.dispatch", "rpc");
}

void execute_lease() {
  obs::SpanGuard span("rpc.lease_execute", "rpc");
}

}  // namespace flint::rpc
