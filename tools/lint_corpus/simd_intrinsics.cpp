// Fixture: raw SIMD intrinsics outside src/flint/ml/kernels/ must trip the
// simd rule — once for the header include, once for the intrinsic call.
#include <immintrin.h>

#include <cstddef>

void hand_vectorized_add(float* y, const float* x, std::size_t n) {
  for (std::size_t i = 0; i + 8 <= n; i += 8) {
    __m256 a = _mm256_loadu_ps(y + i);
    _mm256_storeu_ps(y + i, _mm256_add_ps(a, _mm256_loadu_ps(x + i)));
  }
}

// The NEON spelling trips the same rule (fixtures are linted, not compiled).
void neon_spelling(float* out, const float* a, const float* b) {
  vst1q_f32(out, vaddq_f32(vld1q_f32(a), vld1q_f32(b)));
}
