// Fixture: a commented-out guard must NOT satisfy the pragma-once rule.
// #pragma once

namespace fixture {
inline int value() { return 1; }
}  // namespace fixture
