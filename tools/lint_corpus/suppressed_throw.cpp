// Fixture: an inline allow() suppresses the rule on that line.
#include <stdexcept>

namespace fixture {
int checked(int x) {
  // flint-lint: allow(throw): fixture exercising the suppression path
  if (x < 0) throw std::runtime_error("negative");
  return x;
}
}  // namespace fixture
