// Fixture: raw socket plumbing outside src/flint/rpc/ must trip the `rpc`
// rule — once for the header include, once for the global-scope call. A
// method named send() on a project class (the Transport interface itself)
// must NOT fire: only ::-qualified calls are raw.
#include <sys/socket.h>

struct NotATransport {
  bool send(int frame) { return frame > 0; }  // fine: member call, not ::send
};

int leak_raw_socket() {
  NotATransport t;
  t.send(1);
  return ::socket(2, 1, 0);
}
