// Kill-and-resume e2e driver (DESIGN.md §12): runs a small synthetic FL
// study (fedavg or fedbuff) with periodic checkpoints, optionally aborting
// the process mid-run at a known round to simulate a crash, and optionally
// resuming from the newest checkpoint. scripts/crash_resume_test.sh drives
// three invocations — uninterrupted reference, crashed run, resumed run —
// and asserts the resumed artifact matches the reference bit-for-bit
// (tools/flint_compare.py at 0% tolerance, plus a parameter fingerprint).
//
// Flags:
//   --algo fedavg|fedbuff   runner under test (default fedbuff)
//   --rounds N              aggregation rounds (default 8)
//   --threads N             training threads; results are --threads-invariant
//   --seed N                run seed (default 7)
//   --checkpoint-dir DIR    enable checkpoints into DIR
//   --checkpoint-every N    checkpoint cadence in rounds (default 2)
//   --resume                restore from the newest checkpoint in DIR
//   --abort-after-round N   _Exit(137) after round N completes (0 = never)
//   --faults                inject a deterministic executor-outage plan
//   --artifact-out PATH     write the run artifact JSON here
//   --transport MODE        inprocess|loopback|unix|tcp rpc execution (§14)
//   --rpc-executors N       executor count for rpc transports (default 2)
//   --executor-bin PATH     flint_executor binary (unix/tcp)
//   --rpc-dir DIR           directory for the Unix socket (default ".")
//   --kill-executor-after-round N   SIGKILL executor child 0 after round N
//                           (unix/tcp; the run must still finish
//                           bit-identical — scripts/rpc_fault_test.sh)
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "flint/core/run_artifact.h"
#include "flint/data/synthetic_tasks.h"
#include "flint/device/availability.h"
#include "flint/device/device_catalog.h"
#include "flint/device/session_generator.h"
#include "flint/fl/fedavg.h"
#include "flint/fl/fedbuff.h"
#include "flint/fl/rpc_runtime.h"
#include "flint/net/bandwidth_model.h"
#include "flint/sim/fault_injector.h"
#include "flint/store/checkpoint.h"
#include "flint/util/rng.h"

namespace {

// Exact 64-bit fingerprint of the final parameters, split into two 32-bit
// halves so the artifact's double-valued scalars carry it losslessly.
std::uint64_t param_fingerprint(const std::vector<float>& params) {
  std::string bytes(reinterpret_cast<const char*>(params.data()),
                    params.size() * sizeof(float));
  return flint::core::fingerprint64(bytes);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace flint;

  std::string algo = "fedbuff";
  std::uint64_t rounds = 8;
  std::size_t threads = 1;
  std::uint64_t seed = 7;
  std::string checkpoint_dir;
  std::uint64_t checkpoint_every = 2;
  bool resume = false;
  std::uint64_t abort_after_round = 0;
  bool faults = false;
  std::string artifact_out;
  std::string transport = "inprocess";
  std::size_t rpc_executors = 2;
  std::string executor_bin;
  std::string rpc_dir = ".";
  std::uint64_t kill_executor_after_round = 0;
  for (int i = 1; i < argc; ++i) {
    auto value = [&](const char* flag) -> const char* {
      if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc) return argv[++i];
      return nullptr;
    };
    if (const char* v = value("--algo")) {
      algo = v;
    } else if (const char* v = value("--rounds")) {
      rounds = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--threads")) {
      threads = static_cast<std::size_t>(std::strtoul(v, nullptr, 10));
    } else if (const char* v = value("--seed")) {
      seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--checkpoint-dir")) {
      checkpoint_dir = v;
    } else if (const char* v = value("--checkpoint-every")) {
      checkpoint_every = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(argv[i], "--resume") == 0) {
      resume = true;
    } else if (const char* v = value("--abort-after-round")) {
      abort_after_round = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(argv[i], "--faults") == 0) {
      faults = true;
    } else if (const char* v = value("--artifact-out")) {
      artifact_out = v;
    } else if (const char* v = value("--transport")) {
      transport = v;
    } else if (const char* v = value("--rpc-executors")) {
      rpc_executors = static_cast<std::size_t>(std::strtoul(v, nullptr, 10));
    } else if (const char* v = value("--executor-bin")) {
      executor_bin = v;
    } else if (const char* v = value("--rpc-dir")) {
      rpc_dir = v;
    } else if (const char* v = value("--kill-executor-after-round")) {
      kill_executor_after_round = std::strtoull(v, nullptr, 10);
    } else {
      std::cerr << "crash_resume_driver: unknown or incomplete flag " << argv[i] << "\n";
      return 2;
    }
  }
  if ((algo != "fedavg" && algo != "fedbuff") || threads == 0 || rounds == 0) {
    std::cerr << "crash_resume_driver: bad --algo/--threads/--rounds\n";
    return 2;
  }

  // Deterministic synthetic study: everything below derives from --seed, so
  // reference / crashed / resumed invocations see the same world.
  util::Rng rng(seed);
  auto catalog = device::DeviceCatalog::standard();
  device::SessionGeneratorConfig sessions;
  sessions.clients = 120;
  sessions.days = 2;
  sessions.mean_session_s = 1800.0;
  auto log = device::generate_sessions(sessions, catalog, rng);
  device::AvailabilityCriteria criteria;
  criteria.require_wifi = true;
  auto trace = device::build_availability(log, criteria, catalog);

  data::SyntheticTaskConfig task_cfg;
  task_cfg.domain = data::Domain::kAds;
  task_cfg.clients = 120;
  task_cfg.mean_records = 40.0;
  task_cfg.max_records = 400;
  task_cfg.dense_dim = 12;
  task_cfg.test_examples = 1000;
  auto task = data::make_synthetic_task(task_cfg, rng);
  auto model = task.make_model(rng);

  net::PufferLikeBandwidthModel bandwidth;
  fl::RunInputs inputs;
  inputs.threads = threads;
  inputs.dataset = &task.train;
  inputs.dense_dim = task.batch_dense_dim();
  inputs.model_template = model.get();
  inputs.trace = &trace;
  inputs.catalog = &catalog;
  inputs.bandwidth = &bandwidth;
  inputs.test = &task.test;
  inputs.domain = task.config.domain;
  inputs.local.loss = task.loss_kind();
  inputs.duration = fl::TaskDurationModel::from_spec(ml::model_spec('A'), 1);
  inputs.max_rounds = rounds;
  inputs.eval_every_rounds = 2;
  inputs.reparticipation_gap_s = 600.0;
  inputs.seed = seed;
  if (faults) {
    // Same seed => same outage plan; the crash interacts with real executor
    // downtime exactly as an uninterrupted run would.
    sim::FaultPlanConfig fault_cfg;
    fault_cfg.mean_time_between_failures_s = 6.0 * 3600.0;
    fault_cfg.mean_outage_s = 900.0;
    fault_cfg.horizon_s = 24.0 * 3600.0;
    util::Rng fault_rng = util::derive_stream(seed, 0xFA17ull);
    inputs.outages = sim::plan_faults(inputs.leader.executor_count, fault_cfg, fault_rng);
  }

  std::unique_ptr<store::CheckpointStore> checkpoints;
  if (!checkpoint_dir.empty()) {
    checkpoints = std::make_unique<store::CheckpointStore>(checkpoint_dir);
    inputs.leader.checkpoint_every_rounds = checkpoint_every;
    inputs.leader.checkpoint_store = checkpoints.get();
    if (resume) inputs.resume_from = checkpoints.get();
  }
  // Rpc execution mode (DESIGN.md §14): leases to loopback workers or
  // spawned executor children instead of in-process training. Constructed
  // before the hooks below so the kill hook can reach the child processes.
  fl::RpcRuntimeConfig rpc_cfg;
  rpc_cfg.kind = fl::parse_transport(transport);
  rpc_cfg.executors = rpc_executors;
  rpc_cfg.executor_bin = executor_bin;
  rpc_cfg.socket_dir = rpc_dir;
  fl::RpcRuntime rpc_runtime(rpc_cfg, inputs);
  inputs.rpc_leader = rpc_runtime.leader();

  if (abort_after_round > 0) {
    inputs.round_hook = [abort_after_round](std::uint64_t round) {
      if (round >= abort_after_round) {
        // Simulated crash: no destructors, no flushes beyond this point —
        // exactly what a SIGKILL mid-run leaves behind. 137 = 128 + SIGKILL.
        std::cout << "crash_resume_driver: aborting after round " << round << "\n"
                  << std::flush;
        std::_Exit(137);
      }
    };
  } else if (kill_executor_after_round > 0 && rpc_runtime.process_count() > 0) {
    // Executor-fault injection: SIGKILL child 0 at a known round. The leader
    // must detect the loss (EOF) and re-dispatch its outstanding leases to
    // the survivors; the final artifact must stay bit-identical.
    bool killed = false;
    inputs.round_hook = [&rpc_runtime, &killed,
                         kill_executor_after_round](std::uint64_t round) {
      if (killed || round < kill_executor_after_round) return;
      killed = true;
      std::cout << "crash_resume_driver: SIGKILLing executor 0 after round " << round
                << "\n"
                << std::flush;
      rpc_runtime.process(0).kill();
    };
  }

  fl::RunResult result;
  if (algo == "fedavg") {
    fl::SyncConfig cfg;
    cfg.inputs = inputs;
    cfg.cohort_size = 8;
    cfg.overcommit = 1.3;
    cfg.round_deadline_s = 2.0 * 3600.0;
    result = fl::run_fedavg(cfg);
  } else {
    fl::AsyncConfig cfg;
    cfg.inputs = inputs;
    cfg.buffer_size = 6;
    cfg.max_concurrency = 16;
    cfg.max_staleness = 20;
    result = fl::run_fedbuff(cfg);
  }

  std::uint64_t fp = param_fingerprint(result.final_parameters);
  std::cout << "algo=" << algo << " rounds=" << result.rounds
            << " final_metric=" << result.final_metric
            << " resumed_from_round=" << result.resumed_from_round
            << " resume_count=" << result.resume_count << " param_fp=" << std::hex << fp
            << std::dec << "\n";

  if (!artifact_out.empty()) {
    core::RunArtifactInputs artifact;
    artifact.run = &result;
    artifact.name = "crash_resume_driver";
    artifact.metric_name = task.metric_name();
    // --threads and the crash/resume lineage must not change the config
    // fingerprint: the compare step diffs a resumed run against a fresh one.
    artifact.config_text = "crash_resume_driver: algo=" + algo +
                           " rounds=" + std::to_string(rounds) +
                           " seed=" + std::to_string(seed) +
                           (faults ? " faults=on" : " faults=off");
    artifact.scalars = {
        {"param_fingerprint_lo", static_cast<double>(fp & 0xFFFFFFFFull)},
        {"param_fingerprint_hi", static_cast<double>(fp >> 32)},
    };
    core::write_run_artifact(artifact_out, artifact);
  }
  return 0;
}
