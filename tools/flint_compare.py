#!/usr/bin/env python3
"""Compare two FLINT run artifacts (core::write_run_artifact JSON) and flag
regressions.

Walks the numeric leaves of the comparable sections — model, system,
forecast, scalars, and the ledger totals — and reports every leaf whose
relative difference exceeds its threshold. Wall time, telemetry histogram
means, and other wall-clock-derived values are ignored: they measure the
machine, not the code. Telemetry counters and histogram *counts* are
compared (event counts are deterministic under a fixed seed); gauges are
last-write snapshots and compared too.

Thresholds, most specific wins:
  --threshold PATH=REL   per-leaf override, repeatable; PATH is the dotted
                         leaf path (e.g. system.client_compute_s=0.02) or a
                         prefix ending in '.' (e.g. scalars.=0.1)
  --default-rel REL      everything else (default 1e-9: same binary + same
                         seed must reproduce bit-near-identically; loosen to
                         ~0.05 when comparing across compilers/machines)

Integer count leaves (task counts, rounds, bytes) use the same relative
test, so --default-rel 0 demands exact equality.

The config fingerprint is compared and a mismatch is a warning (the runs
came from different setups), not a regression, unless --require-same-config.

Usage:
  tools/flint_compare.py baseline.json candidate.json [options]
Exit: 0 within thresholds, 1 regression (or schema/usage problem), 2 IO.
"""

from __future__ import annotations

import argparse
import json
import math
import sys

# Leaves that measure the host machine rather than the simulated system.
# wall_time_s varies run-to-run by construction; the recovery-lineage fields
# record *how* a result was produced (fresh vs resumed), not *what* it is —
# the crash-resume e2e compares a resumed run against an uninterrupted
# reference at 0% tolerance, so they must not participate in the diff.
IGNORED_LEAVES = {"wall_time_s", "resumed_from_round", "resume_count"}
# Telemetry series that describe the execution host, not the simulation:
# thread-pool occupancy and parallel-batch counters vary with --threads and
# scheduling even though every simulated quantity is bit-identical.
IGNORED_SERIES_PREFIXES = ("util.pool.", "fl.parallel_train_batches")
# Telemetry histogram fields derived from wall-clock samples.
WALL_CLOCK_HISTOGRAM_FIELDS = {"mean", "p50", "p95", "p99"}
COMPARED_SECTIONS = ("model", "system", "forecast", "scalars")


def die(msg: str) -> "NoReturn":  # noqa: F821
    print(f"flint_compare: {msg}", file=sys.stderr)
    sys.exit(2)


def load(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        die(f"{path}: {e}")
    if not isinstance(doc, dict) or doc.get("schema") != "flint.run_artifact":
        die(f"{path}: not a flint.run_artifact JSON document")
    return doc


def is_number(x) -> bool:
    return isinstance(x, (int, float)) and not isinstance(x, bool)


def numeric_leaves(node, prefix: str = "") -> dict:
    """Flatten nested dicts/lists to {dotted.path: number}."""
    out = {}
    if isinstance(node, dict):
        for key, value in node.items():
            out.update(numeric_leaves(value, f"{prefix}{key}."))
    elif isinstance(node, list):
        for i, value in enumerate(node):
            out.update(numeric_leaves(value, f"{prefix}{i}."))
    elif is_number(node):
        out[prefix[:-1]] = float(node)
    return out


def rel_diff(a: float, b: float) -> float:
    if a == b:
        return 0.0
    return abs(a - b) / max(abs(a), abs(b), 1e-12)


class Thresholds:
    def __init__(self, default_rel: float, overrides: list[str]):
        self.default_rel = default_rel
        self.exact: dict[str, float] = {}
        self.prefixes: list[tuple[str, float]] = []
        for spec in overrides:
            if "=" not in spec:
                die(f"--threshold needs PATH=REL, got {spec!r}")
            path, _, value = spec.rpartition("=")
            try:
                rel = float(value)
            except ValueError:
                die(f"--threshold {spec!r}: {value!r} is not a number")
            if path.endswith("."):
                self.prefixes.append((path, rel))
            else:
                self.exact[path] = rel
        # Longest prefix = most specific.
        self.prefixes.sort(key=lambda p: -len(p[0]))

    def for_path(self, path: str) -> float:
        if path in self.exact:
            return self.exact[path]
        for prefix, rel in self.prefixes:
            if path.startswith(prefix):
                return rel
        return self.default_rel


def comparable_leaves(doc: dict, ignore_telemetry: bool = False) -> dict:
    leaves = {}
    for section in COMPARED_SECTIONS:
        if section in doc:
            leaves.update(numeric_leaves(doc[section], f"{section}."))
    # Ledger: compare the rollups (keyed by axis label, not list index, so a
    # straggler-order change doesn't produce phantom diffs).
    ledger = doc.get("ledger")
    if isinstance(ledger, dict):
        for axis in ("by_tier", "by_cohort", "totals"):
            rows = ledger.get(axis)
            if isinstance(rows, dict):
                rows = [rows]
            if not isinstance(rows, list):
                continue
            for row in rows:
                if not isinstance(row, dict):
                    continue
                key = row.get("key", "?")
                for field, value in row.items():
                    if is_number(value):
                        leaves[f"ledger.{axis}[{key}].{field}"] = float(value)
    # Telemetry: counters/gauges by value, histograms by event count only.
    for sample in [] if ignore_telemetry else doc.get("telemetry", []):
        if not isinstance(sample, dict):
            continue
        name = sample.get("series", "?")
        if name.startswith(IGNORED_SERIES_PREFIXES):
            continue
        if sample.get("type") == "histogram":
            if is_number(sample.get("count")):
                leaves[f"telemetry[{name}].count"] = float(sample["count"])
        elif is_number(sample.get("value")):
            leaves[f"telemetry[{name}].value"] = float(sample["value"])
    return {path: v for path, v in leaves.items()
            if path.rpartition(".")[2] not in IGNORED_LEAVES}


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--default-rel", type=float, default=1e-9,
                    help="default relative tolerance (default: %(default)s)")
    ap.add_argument("--threshold", action="append", default=[],
                    help="per-leaf override PATH=REL (repeatable; PATH ending "
                         "in '.' matches as a prefix)")
    ap.add_argument("--require-same-config", action="store_true",
                    help="treat a config-fingerprint mismatch as a failure")
    ap.add_argument("--ignore-telemetry", action="store_true",
                    help="exclude the telemetry section from the diff: runs on "
                         "different transports (or with telemetry off) record "
                         "different series even though every simulated result "
                         "is bit-identical")
    ap.add_argument("--quiet", action="store_true", help="only print regressions")
    args = ap.parse_args()

    base = load(args.baseline)
    cand = load(args.candidate)
    thresholds = Thresholds(args.default_rel, args.threshold)

    failures: list[str] = []
    if base.get("schema_version") != cand.get("schema_version"):
        failures.append(f"schema_version: {base.get('schema_version')} vs "
                        f"{cand.get('schema_version')}")
    if base.get("config_fingerprint") != cand.get("config_fingerprint"):
        msg = (f"config_fingerprint: {base.get('config_fingerprint')} vs "
               f"{cand.get('config_fingerprint')} (different setups?)")
        if args.require_same_config:
            failures.append(msg)
        else:
            print(f"flint_compare: warning: {msg}", file=sys.stderr)

    base_leaves = comparable_leaves(base, args.ignore_telemetry)
    cand_leaves = comparable_leaves(cand, args.ignore_telemetry)
    compared = 0
    for path in sorted(base_leaves.keys() | cand_leaves.keys()):
        if path not in base_leaves:
            failures.append(f"{path}: only in candidate ({cand_leaves[path]:g})")
            continue
        if path not in cand_leaves:
            failures.append(f"{path}: only in baseline ({base_leaves[path]:g})")
            continue
        a, b = base_leaves[path], cand_leaves[path]
        if not (math.isfinite(a) and math.isfinite(b)):
            failures.append(f"{path}: non-finite value ({a} vs {b})")
            continue
        compared += 1
        limit = thresholds.for_path(path)
        diff = rel_diff(a, b)
        if diff > limit:
            failures.append(f"{path}: {a:g} -> {b:g} (rel {diff:.3g} > {limit:g})")

    if failures:
        print(f"flint_compare: {args.candidate} regressed vs {args.baseline} "
              f"({len(failures)} of {compared} compared leaves):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    if not args.quiet:
        print(f"flint_compare: {compared} leaves within thresholds "
              f"({args.baseline} vs {args.candidate}): OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
