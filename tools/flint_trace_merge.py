#!/usr/bin/env python3
"""Merge per-process FLINT Chrome traces into one cross-process trace.

A multi-process run (`quickstart --transport=unix --trace-out DIR`) leaves one
trace file per process in DIR: `leader.trace.json` plus
`executor-<i>.trace.json` for each spawned executor. Each file carries a
top-level `flint` metadata object written by obs::Tracer::write_chrome_trace:

  {"role": "leader"|"executor-N", "os_pid": ..., "wall_pid": ...,
   "virtual_pid": ..., "sort_index": ..., "clock_offset_us": ...}

This tool merges them into a single trace-event file that Perfetto /
chrome://tracing can open directly:

  * Executor wall-clock timestamps are shifted by that process's
    `clock_offset_us` (captured from the leader's RegisterAck timestamp at
    registration), so spans from every process share the leader's wall
    clock. Shifted timestamps are clamped at 0 — an executor span that
    began before its clock handshake cannot legally precede the leader's
    epoch.
  * Executor *virtual*-clock tracks are dropped: only the leader advances
    the simulation clock, so executor virtual tracks are flat lines of
    zero-ts spans that would pile up at the origin.
  * Track (pid) metadata is passed through — labeled processes derive
    their pids from the OS pid, so tracks never collide.

Usage:
  tools/flint_trace_merge.py --dir RUN_DIR [--out merged.trace.json]
  tools/flint_trace_merge.py FILE... --out merged.trace.json
Exit: 0 on success, 1 on malformed input, 2 on usage/IO error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_trace(path: Path) -> tuple[dict, dict]:
    """Return (document, flint-metadata); raises SystemExit(1) on bad input."""
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"flint_trace_merge: {path}: not readable as JSON: {e}", file=sys.stderr)
        raise SystemExit(1)
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        print(f"flint_trace_merge: {path}: missing traceEvents array", file=sys.stderr)
        raise SystemExit(1)
    meta = doc.get("flint")
    if not isinstance(meta, dict) or not isinstance(meta.get("role"), str):
        print(f"flint_trace_merge: {path}: missing top-level 'flint' metadata "
              "(trace was not written by a labeled Tracer?)", file=sys.stderr)
        raise SystemExit(1)
    if not meta["role"]:
        print(f"flint_trace_merge: {path}: empty role — single-process traces "
              "(default pids 1/2) cannot be merged; re-run with a multi-process "
              "transport", file=sys.stderr)
        raise SystemExit(1)
    return doc, meta


def merge(paths: list[Path]) -> dict:
    metadata_events: list[dict] = []
    span_events: list[dict] = []
    roles: list[str] = []
    seen_pids: dict[int, Path] = {}

    for path in sorted(paths):
        doc, meta = load_trace(path)
        role = meta["role"]
        for key in ("wall_pid", "virtual_pid"):
            pid = meta.get(key)
            if isinstance(pid, int) and pid in seen_pids:
                print(f"flint_trace_merge: {path}: track pid {pid} collides with "
                      f"{seen_pids[pid]} — inputs are not from one run", file=sys.stderr)
                raise SystemExit(1)
            if isinstance(pid, int):
                seen_pids[pid] = path
        is_leader = role == "leader"
        virtual_pid = meta.get("virtual_pid")
        offset_us = meta.get("clock_offset_us", 0.0)
        if not isinstance(offset_us, (int, float)):
            offset_us = 0.0
        roles.append(role)

        for ev in doc["traceEvents"]:
            if not isinstance(ev, dict):
                continue
            pid = ev.get("pid")
            # Executor virtual tracks carry no information (the virtual clock
            # only advances on the leader) — drop spans and their track
            # metadata alike.
            if not is_leader and pid == virtual_pid:
                continue
            if ev.get("ph") == "M":
                metadata_events.append(ev)
                continue
            if not is_leader and isinstance(ev.get("ts"), (int, float)):
                ev = dict(ev)
                ev["ts"] = max(0.0, ev["ts"] + offset_us)
            span_events.append(ev)

    span_events.sort(key=lambda e: (e.get("ts", 0.0), e.get("pid", 0)))
    return {
        "traceEvents": metadata_events + span_events,
        "displayTimeUnit": "ms",
        "flint": {"merged": True, "roles": roles},
    }


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("files", nargs="*", help="per-process trace files to merge")
    ap.add_argument("--dir", help="directory to glob for *.trace.json")
    ap.add_argument("--out", help="merged output path (default: <dir>/merged.trace.json)")
    args = ap.parse_args()

    paths = [Path(p) for p in args.files]
    if args.dir:
        paths += sorted(Path(args.dir).glob("*.trace.json"))
    paths = [p for p in paths if p.name != "merged.trace.json"]
    if not paths:
        ap.error("no input traces: pass FILE... or --dir with *.trace.json files")
    out = args.out
    if not out:
        if not args.dir:
            ap.error("--out is required when merging explicit files")
        out = str(Path(args.dir) / "merged.trace.json")

    merged = merge(paths)
    roles = merged["flint"]["roles"]
    if "leader" not in roles:
        print("flint_trace_merge: no leader trace among inputs "
              f"(roles: {roles})", file=sys.stderr)
        return 1
    with open(out, "w", encoding="utf-8") as f:
        json.dump(merged, f, indent=None, separators=(",", ":"))
        f.write("\n")
    n_spans = sum(1 for e in merged["traceEvents"] if e.get("ph") == "X")
    print(f"flint_trace_merge: merged {len(paths)} trace(s) "
          f"({', '.join(roles)}): {n_spans} spans -> {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
