#!/usr/bin/env python3
"""Unit tests for tools/flint_lint.py over the fixture corpus.

Each fixture in tools/lint_corpus/ encodes one behavior: the three parsing
bugs the rules used to have (a commented-out `// #pragma once` satisfying the
header rule, rule text inside multi-line block comments firing, keywords
inside string literals firing), plus positive controls proving the rules
still fire on real violations and honor inline allow() suppressions.

Exit: 0 all expectations hold, 1 otherwise.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from flint_lint import lint_file  # noqa: E402

CORPUS = Path(__file__).resolve().parent / "lint_corpus"

# corpus-relative path -> exact multiset of rules expected to fire
# (empty = must be clean). Subdirectories matter: the rpc/ fixtures exist
# precisely because the rpc-spans rule keys on "rpc" being a path component.
EXPECTATIONS: dict[str, list[str]] = {
    "commented_pragma.h": ["pragma-once"],
    "good_header.h": [],
    "block_comment_throw.cpp": [],
    "string_throw.cpp": [],
    "real_throw.cpp": ["throw"],
    "raw_thread.cpp": ["raw-thread", "rng"],
    "suppressed_throw.cpp": [],
    "raw_socket.cpp": ["rpc", "rpc"],
    "rpc/raw_span.cpp": ["rpc-spans", "rpc-spans"],
    "rpc/span_guard_ok.cpp": [],
    # One finding per offending line: the include, the two AVX2 body lines,
    # and the NEON spelling. ml/kernels/ is the rule's one allowed home.
    "simd_intrinsics.cpp": ["simd", "simd", "simd", "simd"],
    "ml/kernels/simd_ok.cpp": [],
}


def main() -> int:
    failures = 0
    fixture_names = {p.relative_to(CORPUS).as_posix()
                     for p in CORPUS.rglob("*") if p.suffix in (".h", ".cpp")}
    missing = fixture_names.symmetric_difference(EXPECTATIONS)
    if missing:
        print(f"FAIL corpus/expectations out of sync: {sorted(missing)}")
        failures += 1

    for name, expected in sorted(EXPECTATIONS.items()):
        path = CORPUS / name
        if not path.is_file():
            continue  # already reported above
        got = sorted(f.rule for f in lint_file(path))
        if got != sorted(expected):
            print(f"FAIL {name}: expected rules {sorted(expected)}, got {got}")
            for f in lint_file(path):
                print(f"  {f}")
            failures += 1
        else:
            print(f"ok   {name}: {got or 'clean'}")

    print(f"flint_lint_test: {len(EXPECTATIONS)} fixtures, {failures} failure(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
