#!/usr/bin/env python3
"""Validate FLINT observability output: a Chrome trace-event JSON file and a
metrics JSONL dump, as produced by `quickstart --trace-out` or any binary
using obs::Telemetry::export_all().

Checks
  trace:   top-level object with a `traceEvents` array; every event has the
           required trace-event keys for its phase ("X" spans need
           name/cat/pid/tid/ts/dur with numeric non-negative ts/dur; "M"
           metadata needs name/pid); both clock tracks (pid 1 wall, pid 2
           virtual) are present when any span exists.
  metrics: every line parses as a JSON object with series/type/t_virtual_s,
           type is counter|gauge|histogram, histograms carry consistent
           count/buckets, and no numeric field is NaN/inf (the exporter must
           have written null instead).
  series:  at least --min-series distinct series names, and every name given
           via --require is present.

Usage:
  tools/validate_trace.py --trace trace.json --metrics metrics.jsonl \
      [--min-series N] [--require name]...
Exit: 0 valid, 1 validation failure, 2 usage/IO error.
"""

from __future__ import annotations

import argparse
import json
import math
import sys

ERRORS: list[str] = []


def fail(msg: str) -> None:
    ERRORS.append(msg)


def finite(x) -> bool:
    return isinstance(x, (int, float)) and not isinstance(x, bool) and math.isfinite(x)


def validate_trace(path: str) -> None:
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: not readable as JSON: {e}")
        return
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(f"{path}: top level must be an object with a traceEvents array")
        return
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail(f"{path}: traceEvents is not an array")
        return

    pids = set()
    span_count = 0
    for i, ev in enumerate(events):
        where = f"{path}: traceEvents[{i}]"
        if not isinstance(ev, dict):
            fail(f"{where}: event is not an object")
            continue
        ph = ev.get("ph")
        if ph == "X":
            span_count += 1
            for key in ("name", "cat", "pid", "tid", "ts", "dur"):
                if key not in ev:
                    fail(f"{where}: complete event missing '{key}'")
            for key in ("ts", "dur"):
                if key in ev and (not finite(ev[key]) or ev[key] < 0):
                    fail(f"{where}: '{key}' must be a non-negative finite number")
            if "pid" in ev:
                pids.add(ev["pid"])
        elif ph == "M":
            for key in ("name", "pid"):
                if key not in ev:
                    fail(f"{where}: metadata event missing '{key}'")
        else:
            fail(f"{where}: unexpected phase {ph!r} (emitter writes only X and M)")
    if span_count > 0 and pids != {1, 2}:
        fail(f"{path}: expected spans on both clock tracks (pids 1 and 2), got {sorted(pids)}")
    print(f"{path}: {span_count} spans across pids {sorted(pids)}: OK"
          if not ERRORS else f"{path}: checked {span_count} spans")


def validate_metrics(path: str) -> set[str]:
    series: set[str] = set()
    kinds = {"counter", "gauge", "histogram"}
    try:
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        fail(f"{path}: {e}")
        return series
    if not lines:
        fail(f"{path}: empty metrics file")
    for lineno, line in enumerate(lines, 1):
        if not line.strip():
            continue
        where = f"{path}:{lineno}"
        try:
            # parse_constant rejects the non-standard NaN/Infinity literals
            # json.loads would otherwise happily accept.
            row = json.loads(line, parse_constant=lambda c: fail(f"{where}: literal {c}"))
        except json.JSONDecodeError as e:
            fail(f"{where}: invalid JSON: {e}")
            continue
        if not isinstance(row, dict):
            fail(f"{where}: line is not an object")
            continue
        name = row.get("series")
        kind = row.get("type")
        if not isinstance(name, str) or not name:
            fail(f"{where}: missing series name")
            continue
        series.add(name)
        if kind not in kinds:
            fail(f"{where}: type {kind!r} not in {sorted(kinds)}")
        if not finite(row.get("t_virtual_s")) and row.get("t_virtual_s") is not None:
            fail(f"{where}: t_virtual_s must be finite or null")
        if kind == "histogram":
            buckets = row.get("buckets")
            count = row.get("count")
            if not isinstance(buckets, list) or not all(
                    isinstance(b, int) and b >= 0 for b in buckets):
                fail(f"{where}: histogram buckets must be non-negative integers")
            elif not isinstance(count, int) or sum(buckets) != count:
                fail(f"{where}: histogram count {count} != bucket sum {sum(buckets or [])}")
        elif kind in ("counter", "gauge"):
            v = row.get("value")
            if v is not None and not finite(v):
                fail(f"{where}: value must be finite or null")
    return series


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--trace", help="Chrome trace-event JSON file")
    ap.add_argument("--metrics", help="metrics JSONL file")
    ap.add_argument("--min-series", type=int, default=0,
                    help="minimum number of distinct metric series")
    ap.add_argument("--require", action="append", default=[],
                    help="series name that must be present (repeatable)")
    args = ap.parse_args()
    if not args.trace and not args.metrics:
        ap.error("nothing to validate: pass --trace and/or --metrics")

    if args.trace:
        validate_trace(args.trace)
    if args.metrics:
        series = validate_metrics(args.metrics)
        if len(series) < args.min_series:
            fail(f"{args.metrics}: {len(series)} distinct series < required "
                 f"{args.min_series}: {sorted(series)}")
        for name in args.require:
            if name not in series:
                fail(f"{args.metrics}: required series '{name}' missing")
        if not ERRORS:
            print(f"{args.metrics}: {len(series)} distinct series: OK")

    for e in ERRORS:
        print(f"validate_trace: {e}", file=sys.stderr)
    return 1 if ERRORS else 0


if __name__ == "__main__":
    sys.exit(main())
