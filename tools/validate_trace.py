#!/usr/bin/env python3
"""Validate FLINT observability output: a Chrome trace-event JSON file, a
metrics JSONL dump (as produced by `quickstart --trace-out` or any binary
using obs::Telemetry::export_all()), and/or a schema-versioned run artifact
(core::write_run_artifact, e.g. a bench's BENCH_<name>.json).

Checks
  trace:    top-level object with a `traceEvents` array; every event has the
            required trace-event keys for its phase ("X" spans need
            name/cat/pid/tid/ts/dur with numeric non-negative ts/dur; "M"
            metadata needs name/pid); both clock tracks (pid 1 wall, pid 2
            virtual) are present when any span exists. With --merged the
            clock-track check is replaced by cross-process checks: unique
            process tracks with leader + executor process_name metadata,
            every rpc.lease_execute span parented to an rpc.dispatch span,
            and monotone (merge-sorted, clock-aligned) timestamps per track.
  metrics:  every line parses as a JSON object with series/type/t_virtual_s,
            type is counter|gauge|histogram, histograms carry consistent
            count/buckets, and no numeric field is NaN/inf (the exporter must
            have written null instead).
  series:   at least --min-series distinct series names, and every name given
            via --require is present.
  artifact: schema == flint.run_artifact at a supported version; the
            model/system/telemetry/ledger/timeline/scalars sections are
            present and well-typed; every number is finite (a null means the
            producer computed NaN/inf — rejected); ledger totals reconcile
            with the system section (task counts exactly, compute seconds to
            float tolerance).

Usage:
  tools/validate_trace.py [--trace trace.json] [--metrics metrics.jsonl] \
      [--artifact BENCH_foo.json]... [--min-series N] [--require name]...
Exit: 0 valid, 1 validation failure, 2 usage/IO error.
"""

from __future__ import annotations

import argparse
import json
import math
import sys

ERRORS: list[str] = []


def fail(msg: str) -> None:
    ERRORS.append(msg)


def finite(x) -> bool:
    return isinstance(x, (int, float)) and not isinstance(x, bool) and math.isfinite(x)


def validate_trace(path: str, merged: bool = False) -> None:
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: not readable as JSON: {e}")
        return
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(f"{path}: top level must be an object with a traceEvents array")
        return
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail(f"{path}: traceEvents is not an array")
        return

    pids = set()
    span_count = 0
    process_names: dict[int, str] = {}
    dispatch_span_ids: set[int] = set()
    lease_spans: list[tuple[str, dict]] = []
    last_ts_by_pid: dict[int, float] = {}
    for i, ev in enumerate(events):
        where = f"{path}: traceEvents[{i}]"
        if not isinstance(ev, dict):
            fail(f"{where}: event is not an object")
            continue
        ph = ev.get("ph")
        if ph == "X":
            span_count += 1
            for key in ("name", "cat", "pid", "tid", "ts", "dur"):
                if key not in ev:
                    fail(f"{where}: complete event missing '{key}'")
            for key in ("ts", "dur"):
                if key in ev and (not finite(ev[key]) or ev[key] < 0):
                    fail(f"{where}: '{key}' must be a non-negative finite number")
            if "pid" in ev:
                pids.add(ev["pid"])
            if merged:
                args = ev.get("args")
                args = args if isinstance(args, dict) else {}
                if ev.get("name") == "rpc.dispatch" and isinstance(args.get("span_id"), int):
                    dispatch_span_ids.add(args["span_id"])
                elif ev.get("name") == "rpc.lease_execute":
                    lease_spans.append((where, args))
                pid, ts = ev.get("pid"), ev.get("ts")
                if isinstance(pid, int) and finite(ts):
                    if ts < last_ts_by_pid.get(pid, float("-inf")):
                        fail(f"{where}: ts {ts} not monotone within pid {pid} "
                             "(merge did not sort, or clock alignment regressed)")
                    last_ts_by_pid[pid] = ts
        elif ph == "M":
            for key in ("name", "pid"):
                if key not in ev:
                    fail(f"{where}: metadata event missing '{key}'")
            if merged and ev.get("name") == "process_name":
                pid = ev.get("pid")
                pname = (ev.get("args") or {}).get("name")
                if isinstance(pid, int) and isinstance(pname, str):
                    if pid in process_names and process_names[pid] != pname:
                        fail(f"{where}: pid {pid} named both "
                             f"{process_names[pid]!r} and {pname!r} — track collision")
                    process_names[pid] = pname
        else:
            fail(f"{where}: unexpected phase {ph!r} (emitter writes only X and M)")

    if merged:
        roles = (doc.get("flint") or {}).get("roles")
        if not (doc.get("flint") or {}).get("merged"):
            fail(f"{path}: missing flint.merged marker — not a flint_trace_merge output")
        names = " ".join(process_names.values())
        if "leader" not in names:
            fail(f"{path}: no leader process track (process names: "
                 f"{sorted(process_names.values())})")
        if "executor" not in names:
            fail(f"{path}: no executor process track (process names: "
                 f"{sorted(process_names.values())})")
        if isinstance(roles, list) and not any(
                isinstance(r, str) and r.startswith("executor") for r in roles):
            fail(f"{path}: flint.roles {roles} lists no executor")
        for where, args in lease_spans:
            parent = args.get("parent_span_id")
            if not isinstance(parent, int) or parent not in dispatch_span_ids:
                fail(f"{where}: rpc.lease_execute parent_span_id {parent!r} does not "
                     "match any rpc.dispatch span_id — cross-process propagation broke")
        if not lease_spans:
            fail(f"{path}: merged trace has no rpc.lease_execute spans")
        if not dispatch_span_ids:
            fail(f"{path}: merged trace has no rpc.dispatch spans")
    elif span_count > 0 and pids != {1, 2}:
        fail(f"{path}: expected spans on both clock tracks (pids 1 and 2), got {sorted(pids)}")
    print(f"{path}: {span_count} spans across pids {sorted(pids)}: OK"
          if not ERRORS else f"{path}: checked {span_count} spans")


def validate_metrics(path: str) -> set[str]:
    series: set[str] = set()
    kinds = {"counter", "gauge", "histogram"}
    try:
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        fail(f"{path}: {e}")
        return series
    if not lines:
        fail(f"{path}: empty metrics file")
    for lineno, line in enumerate(lines, 1):
        if not line.strip():
            continue
        where = f"{path}:{lineno}"
        try:
            # parse_constant rejects the non-standard NaN/Infinity literals
            # json.loads would otherwise happily accept.
            row = json.loads(line, parse_constant=lambda c: fail(f"{where}: literal {c}"))
        except json.JSONDecodeError as e:
            fail(f"{where}: invalid JSON: {e}")
            continue
        if not isinstance(row, dict):
            fail(f"{where}: line is not an object")
            continue
        name = row.get("series")
        kind = row.get("type")
        if not isinstance(name, str) or not name:
            fail(f"{where}: missing series name")
            continue
        series.add(name)
        if kind not in kinds:
            fail(f"{where}: type {kind!r} not in {sorted(kinds)}")
        if not finite(row.get("t_virtual_s")) and row.get("t_virtual_s") is not None:
            fail(f"{where}: t_virtual_s must be finite or null")
        if kind == "histogram":
            buckets = row.get("buckets")
            count = row.get("count")
            if not isinstance(buckets, list) or not all(
                    isinstance(b, int) and b >= 0 for b in buckets):
                fail(f"{where}: histogram buckets must be non-negative integers")
            elif not isinstance(count, int) or sum(buckets) != count:
                fail(f"{where}: histogram count {count} != bucket sum {sum(buckets or [])}")
        elif kind in ("counter", "gauge"):
            v = row.get("value")
            if v is not None and not finite(v):
                fail(f"{where}: value must be finite or null")
    return series


ARTIFACT_SCHEMA = "flint.run_artifact"
SUPPORTED_ARTIFACT_VERSIONS = {1}

SYSTEM_COUNT_KEYS = ("tasks_started", "tasks_succeeded", "tasks_interrupted",
                     "tasks_stale", "tasks_failed")
SYSTEM_FLOAT_KEYS = ("client_compute_s", "waste_fraction", "mean_round_duration_s",
                     "updates_per_second", "virtual_duration_s")
ROLLUP_COUNT_KEYS = ("clients", "tasks_succeeded", "tasks_interrupted", "tasks_stale",
                     "tasks_failed", "bytes_down", "bytes_up")
ROLLUP_FLOAT_KEYS = ("compute_s", "wasted_compute_s")
TIMELINE_KINDS = {"round", "eval", "checkpoint"}


def _check_rollup(where: str, rollup) -> None:
    if not isinstance(rollup, dict):
        fail(f"{where}: rollup is not an object")
        return
    if not isinstance(rollup.get("key"), str):
        fail(f"{where}: rollup missing string 'key'")
    for key in ROLLUP_COUNT_KEYS:
        v = rollup.get(key)
        if not isinstance(v, int) or isinstance(v, bool) or v < 0:
            fail(f"{where}: '{key}' must be a non-negative integer, got {v!r}")
    for key in ROLLUP_FLOAT_KEYS:
        if not finite(rollup.get(key)):
            fail(f"{where}: '{key}' must be finite, got {rollup.get(key)!r}")


def validate_artifact(path: str) -> None:
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f, parse_constant=lambda c: fail(f"{path}: literal {c}"))
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: not readable as JSON: {e}")
        return
    if not isinstance(doc, dict):
        fail(f"{path}: top level must be an object")
        return
    if doc.get("schema") != ARTIFACT_SCHEMA:
        fail(f"{path}: schema {doc.get('schema')!r} != {ARTIFACT_SCHEMA!r}")
        return
    if doc.get("schema_version") not in SUPPORTED_ARTIFACT_VERSIONS:
        fail(f"{path}: schema_version {doc.get('schema_version')!r} not in "
             f"{sorted(SUPPORTED_ARTIFACT_VERSIONS)}")
        return

    for key in ("name", "metric_name", "config_fingerprint"):
        if not isinstance(doc.get(key), str):
            fail(f"{path}: missing string '{key}'")
    fp = doc.get("config_fingerprint", "")
    if isinstance(fp, str) and (len(fp) != 16 or any(c not in "0123456789abcdef" for c in fp)):
        fail(f"{path}: config_fingerprint must be 16 lowercase hex chars, got {fp!r}")
    if not finite(doc.get("wall_time_s")):
        fail(f"{path}: wall_time_s must be finite")

    model = doc.get("model")
    if not isinstance(model, dict):
        fail(f"{path}: missing 'model' object")
    else:
        if not finite(model.get("final_metric")):
            fail(f"{path}: model.final_metric must be finite")
        if not isinstance(model.get("rounds"), int):
            fail(f"{path}: model.rounds must be an integer")
        curve = model.get("eval_curve")
        if not isinstance(curve, list):
            fail(f"{path}: model.eval_curve must be an array")
        else:
            for i, p in enumerate(curve):
                if (not isinstance(p, dict) or not finite(p.get("t_s"))
                        or not isinstance(p.get("round"), int) or not finite(p.get("metric"))):
                    fail(f"{path}: model.eval_curve[{i}] needs finite t_s/metric and int round")

    system = doc.get("system")
    if not isinstance(system, dict):
        fail(f"{path}: missing 'system' object")
    else:
        for key in SYSTEM_COUNT_KEYS:
            v = system.get(key)
            if not isinstance(v, int) or isinstance(v, bool) or v < 0:
                fail(f"{path}: system.{key} must be a non-negative integer, got {v!r}")
        for key in SYSTEM_FLOAT_KEYS:
            if not finite(system.get(key)):
                fail(f"{path}: system.{key} must be finite, got {system.get(key)!r}")
        for key in ("resumed_from_round", "resume_count"):
            v = system.get(key)
            if not isinstance(v, int) or isinstance(v, bool) or v < 0:
                fail(f"{path}: system.{key} must be a non-negative integer, got {v!r}")
        rc, rfr = system.get("resume_count"), system.get("resumed_from_round")
        if rc == 0 and isinstance(rfr, int) and rfr != 0:
            fail(f"{path}: resumed_from_round {rfr} set on a fresh run (resume_count 0)")

    telemetry = doc.get("telemetry")
    if not isinstance(telemetry, list):
        fail(f"{path}: missing 'telemetry' array")
    else:
        for i, s in enumerate(telemetry):
            where = f"{path}: telemetry[{i}]"
            if not isinstance(s, dict) or not isinstance(s.get("series"), str):
                fail(f"{where}: needs a string 'series'")
                continue
            if s.get("type") not in ("counter", "gauge", "histogram"):
                fail(f"{where}: bad type {s.get('type')!r}")
            numeric = ("count", "mean", "p50", "p95", "p99") \
                if s.get("type") == "histogram" else ("value",)
            for key in numeric:
                if not finite(s.get(key)):
                    fail(f"{where}: '{key}' must be finite, got {s.get(key)!r}")

    ledger = doc.get("ledger")
    if not isinstance(ledger, dict):
        fail(f"{path}: missing 'ledger' object")
    else:
        for axis in ("by_tier", "by_cohort", "by_executor"):
            rows = ledger.get(axis)
            if not isinstance(rows, list):
                fail(f"{path}: ledger.{axis} must be an array")
                continue
            for i, r in enumerate(rows):
                _check_rollup(f"{path}: ledger.{axis}[{i}]", r)
        _check_rollup(f"{path}: ledger.totals", ledger.get("totals"))
        stragglers = ledger.get("stragglers")
        if not isinstance(stragglers, list):
            fail(f"{path}: ledger.stragglers must be an array")
        else:
            for i, c in enumerate(stragglers):
                if not isinstance(c, dict) or not isinstance(c.get("client_id"), int) \
                        or not finite(c.get("wasted_compute_s")):
                    fail(f"{path}: ledger.stragglers[{i}] needs client_id and finite "
                         "wasted_compute_s")

        # Reconciliation: the ledger is fed from the same task-completion
        # choke point as SimMetrics, so totals must agree (exactly for
        # counts; compute accumulates in a different order, so tolerance).
        totals = ledger.get("totals")
        if isinstance(system, dict) and isinstance(totals, dict):
            for key in ("tasks_succeeded", "tasks_interrupted", "tasks_stale", "tasks_failed"):
                if isinstance(totals.get(key), int) and isinstance(system.get(key), int) \
                        and totals[key] != system[key]:
                    fail(f"{path}: ledger.totals.{key} {totals[key]} != system.{key} "
                         f"{system[key]}")
            lc, sc = totals.get("compute_s"), system.get("client_compute_s")
            if finite(lc) and finite(sc):
                # An empty ledger (attribution disabled) legitimately reads 0.
                if lc != 0 and abs(lc - sc) > 1e-6 * max(1.0, abs(sc)):
                    fail(f"{path}: ledger compute_s {lc} != system client_compute_s {sc}")

    timeline = doc.get("timeline")
    if not isinstance(timeline, list):
        fail(f"{path}: missing 'timeline' array")
    else:
        for i, e in enumerate(timeline):
            if not isinstance(e, dict) or not finite(e.get("t_s")) \
                    or e.get("kind") not in TIMELINE_KINDS:
                fail(f"{path}: timeline[{i}] needs finite t_s and kind in "
                     f"{sorted(TIMELINE_KINDS)}")

    scalars = doc.get("scalars")
    if not isinstance(scalars, dict):
        fail(f"{path}: missing 'scalars' object")
    else:
        for key, v in scalars.items():
            if not finite(v):
                fail(f"{path}: scalars[{key!r}] must be finite, got {v!r}")

    if not ERRORS:
        n_scalars = len(scalars) if isinstance(scalars, dict) else 0
        print(f"{path}: run artifact v{doc['schema_version']} "
              f"({n_scalars} scalars, {len(timeline or [])} timeline events): OK")


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--trace", help="Chrome trace-event JSON file")
    ap.add_argument("--merged", action="store_true",
                    help="treat --trace as a flint_trace_merge output: require "
                         "unique process tracks, leader+executor roles, "
                         "dispatch->lease_execute span parentage, and "
                         "per-track monotone timestamps")
    ap.add_argument("--metrics", help="metrics JSONL file")
    ap.add_argument("--min-series", type=int, default=0,
                    help="minimum number of distinct metric series")
    ap.add_argument("--require", action="append", default=[],
                    help="series name that must be present (repeatable)")
    ap.add_argument("--artifact", action="append", default=[],
                    help="run-artifact JSON file (repeatable)")
    args = ap.parse_args()
    if not args.trace and not args.metrics and not args.artifact:
        ap.error("nothing to validate: pass --trace, --metrics, and/or --artifact")

    if args.merged and not args.trace:
        ap.error("--merged requires --trace")
    if args.trace:
        validate_trace(args.trace, merged=args.merged)
    for artifact in args.artifact:
        validate_artifact(artifact)
    if args.metrics:
        series = validate_metrics(args.metrics)
        if len(series) < args.min_series:
            fail(f"{args.metrics}: {len(series)} distinct series < required "
                 f"{args.min_series}: {sorted(series)}")
        for name in args.require:
            if name not in series:
                fail(f"{args.metrics}: required series '{name}' missing")
        if not ERRORS:
            print(f"{args.metrics}: {len(series)} distinct series: OK")

    for e in ERRORS:
        print(f"validate_trace: {e}", file=sys.stderr)
    return 1 if ERRORS else 0


if __name__ == "__main__":
    sys.exit(main())
