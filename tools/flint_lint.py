#!/usr/bin/env python3
"""FLINT-specific lint: project rules clang-tidy cannot express.

Rules (suppress a finding with `// flint-lint: allow(<rule>): <why>` on the
offending line or the line above; file-level rules accept the comment anywhere
in the file):

  pragma-once     every header under src/ starts its include guard with
                  `#pragma once`.
  rng             no std::rand/srand/random_device or raw std::mt19937 outside
                  util/rng — all randomness flows through the seeded,
                  forkable util::Rng so simulations stay reproducible.
  throw           library code throws only flint::util::CheckError (via the
                  FLINT_CHECK macros or explicitly); bare rethrow `throw;` is
                  allowed. Other exception types bypass the runner's contract
                  reporting.
  byte-punning    reinterpret_cast is allowed only next to a
                  static_assert(std::is_trivially_copyable_v<...>) (the
                  util/bytes.h pattern); everything else routes through
                  std::memcpy helpers.
  config-checks   a .cpp under src/ that consumes a *Config struct must
                  FLINT_CHECK at least one config-derived quantity (module
                  entry points validate their inputs; bench/example drivers
                  rely on the library's checks).
  obs-spans       trace spans are opened/closed only through the RAII
                  FLINT_TRACE_SPAN macro; direct begin_span/end_span calls are
                  allowed only inside obs/ itself. A manual begin without a
                  guaranteed end corrupts the span pairing on early return.
  bench-artifact  every bench_*.cpp declares a bench::BenchArtifact (or a
                  custom main that calls core::write_run_artifact) so each
                  bench binary emits a BENCH_<name>.json the regression
                  pipeline (tools/flint_compare.py + CI smoke-bench) can diff.
  raw-thread      no raw std::thread/std::jthread outside util/thread_pool —
                  parallelism flows through util::ThreadPool so the runners'
                  deterministic-reduction contract (fixed-order future joins)
                  and the pool's instrumentation are never bypassed.
  rpc             raw socket plumbing (::socket/::connect/::send/::recv and
                  the <sys/socket.h> header family) is confined to
                  src/flint/rpc/ — every other layer speaks rpc::Transport
                  frames, so wire handling (CRC validation, length limits,
                  EOF semantics) lives in exactly one audited place.
  rpc-spans       code under src/flint/rpc/ opens spans only through the
                  propagation-aware obs::RpcSpanGuard, never the anonymous
                  FLINT_TRACE_SPAN macro or raw obs::SpanGuard — an rpc span
                  without trace/span ids breaks cross-process parentage in
                  merged traces (DESIGN.md §15).
  simd            raw SIMD intrinsics (<immintrin.h>/<arm_neon.h> includes,
                  _mm*/v*q_f32 calls) are confined to src/flint/ml/kernels/ —
                  everything else calls through the dispatched KernelTable so
                  the scalar/AVX2/NEON paths stay interchangeable and the
                  determinism contract (DESIGN.md §16) is auditable in one
                  place.

Usage: tools/flint_lint.py [paths...]   (default: src/ bench/)
Exit: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

# Shares the comment/string stripper with the determinism analyzer: rules
# must not fire on `throw` in a doc comment or a string literal, and a
# commented-out `// #pragma once` must not satisfy the header-guard rule.
from flint_analyze import strip_comments_and_strings

SUPPRESS_RE = re.compile(r"//\s*flint-lint:\s*allow\(([a-z-]+)\)")

# rng rule: forbidden outside util/rng.
RNG_FORBIDDEN = [
    (re.compile(r"\bstd::rand\b|\bsrand\s*\("), "std::rand/srand is unseeded global state"),
    (re.compile(r"\bstd::random_device\b"), "std::random_device breaks run reproducibility"),
    (re.compile(r"\bstd::mt19937(_64)?\b"), "raw engines bypass util::Rng seeding/forking"),
]

THROW_RE = re.compile(r"\bthrow\b(?!\s*;)")
THROW_ALLOWED_RE = re.compile(r"\bthrow\s+(::)?(flint::)?(util::)?CheckError\b")
REINTERPRET_RE = re.compile(r"\breinterpret_cast\b")
TRIVIAL_ASSERT_RE = re.compile(r"static_assert\s*\(\s*std::is_trivially_copyable")
CONFIG_PARAM_RE = re.compile(r"\b(const\s+)?\w*Config\s*[&*]\s*\w+|\bconst\s+\w*Config\s+\w+\s*[,)]")
FLINT_CHECK_RE = re.compile(r"\bFLINT_D?CHECK")
SPAN_CALL_RE = re.compile(r"\b(begin_span|end_span)\s*\(")
# rpc-spans: anonymous span entry points forbidden inside src/flint/rpc/.
# `\bSpanGuard\b` cannot match inside RpcSpanGuard (no word boundary there).
ANON_SPAN_RE = re.compile(r"\bFLINT_TRACE_SPAN\s*\(|\bSpanGuard\b")
RAW_THREAD_RE = re.compile(r"\bstd::j?thread\b")
RAW_SOCKET_CALL_RE = re.compile(
    r"::\s*(socket|connect|bind|listen|accept|send|recv|sendto|recvfrom"
    r"|setsockopt|getsockname|getpeername|poll)\s*\(")
SOCKET_HEADER_RE = re.compile(
    r"#\s*include\s*<(sys/socket\.h|sys/un\.h|netinet/[\w/]+\.h|arpa/inet\.h)>")
# simd: intrinsic headers and calls confined to src/flint/ml/kernels/.
SIMD_HEADER_RE = re.compile(r"#\s*include\s*<(immintrin|x86intrin|emmintrin|arm_neon)\.h>")
SIMD_INTRINSIC_RE = re.compile(r"\b_mm\d*_\w+\s*\(|\bv\w+q_(f|s|u)(8|16|32|64)\s*\(")


class Finding:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path, self.line, self.rule, self.message = path, line, rule, message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def suppressed(rule: str, lines: list[str], idx: int) -> bool:
    """True if line idx (0-based) or the line above carries an allow() for rule."""
    for i in (idx, idx - 1):
        if 0 <= i < len(lines):
            m = SUPPRESS_RE.search(lines[i])
            if m and m.group(1) == rule:
                return True
    return False


def file_suppressed(rule: str, text: str) -> bool:
    return any(m.group(1) == rule for m in SUPPRESS_RE.finditer(text))


def lint_file(path: Path) -> list[Finding]:
    text = path.read_text(encoding="utf-8", errors="replace")
    lines = text.splitlines()
    # Rules match against comment- and string-stripped lines (same indices);
    # suppression comments are read from the raw lines.
    code_text = strip_comments_and_strings(text)
    code_lines = code_text.splitlines()
    findings: list[Finding] = []
    in_util_rng = path.name.startswith("rng.") and path.parent.name == "util"
    in_thread_pool = path.name.startswith("thread_pool.") and path.parent.name == "util"
    in_obs = "obs" in path.parts
    in_rpc = "rpc" in path.parts
    in_kernels = "kernels" in path.parts
    is_header = path.suffix in (".h", ".hpp")

    # pragma-once — against stripped text, so a commented-out
    # `// #pragma once` does not satisfy the rule.
    if is_header and "#pragma once" not in code_text:
        if not file_suppressed("pragma-once", text):
            findings.append(Finding(path, 1, "pragma-once", "header missing '#pragma once'"))

    for idx, line in enumerate(code_lines):
        lineno = idx + 1
        if not line.strip():
            continue

        # rng
        if not in_util_rng:
            for pattern, why in RNG_FORBIDDEN:
                if pattern.search(line) and not suppressed("rng", lines, idx):
                    findings.append(Finding(path, lineno, "rng", f"{why}; use util::Rng"))

        # throw
        if THROW_RE.search(line) and not THROW_ALLOWED_RE.search(line):
            # `throw;` rethrow already excluded by the regex lookahead.
            if not suppressed("throw", lines, idx):
                findings.append(
                    Finding(path, lineno, "throw",
                            "library code must throw flint::util::CheckError "
                            "(use FLINT_CHECK / FLINT_CHECK_MSG)"))

        # raw-thread
        if not in_thread_pool and RAW_THREAD_RE.search(line) \
                and not suppressed("raw-thread", lines, idx):
            findings.append(
                Finding(path, lineno, "raw-thread",
                        "raw std::thread bypasses util::ThreadPool (fixed-order "
                        "joins + instrumentation); submit work to a pool instead"))

        # rpc
        if not in_rpc and (RAW_SOCKET_CALL_RE.search(line) or SOCKET_HEADER_RE.search(line)) \
                and not suppressed("rpc", lines, idx):
            findings.append(
                Finding(path, lineno, "rpc",
                        "raw socket plumbing is confined to src/flint/rpc/; "
                        "speak rpc::Transport frames instead"))

        # simd
        if not in_kernels and (SIMD_HEADER_RE.search(line) or SIMD_INTRINSIC_RE.search(line)) \
                and not suppressed("simd", lines, idx):
            findings.append(
                Finding(path, lineno, "simd",
                        "raw SIMD intrinsics are confined to src/flint/ml/kernels/; "
                        "call through ml::kernels::active() so every hot loop keeps "
                        "a scalar twin and the dispatch contract holds"))

        # rpc-spans
        if in_rpc and ANON_SPAN_RE.search(line) and not suppressed("rpc-spans", lines, idx):
            findings.append(
                Finding(path, lineno, "rpc-spans",
                        "rpc code must open spans via obs::RpcSpanGuard (carries "
                        "trace/span ids across processes); FLINT_TRACE_SPAN / raw "
                        "SpanGuard spans cannot be parented in merged traces"))

        # obs-spans
        if not in_obs and SPAN_CALL_RE.search(line) and not suppressed("obs-spans", lines, idx):
            findings.append(
                Finding(path, lineno, "obs-spans",
                        "open/close trace spans only via FLINT_TRACE_SPAN "
                        "(RAII); manual begin_span/end_span is reserved for "
                        "obs/ internals"))

        # byte-punning
        if REINTERPRET_RE.search(line) and not suppressed("byte-punning", lines, idx):
            window = code_lines[max(0, idx - 15):idx + 3]
            if not any(TRIVIAL_ASSERT_RE.search(w) for w in window):
                findings.append(
                    Finding(path, lineno, "byte-punning",
                            "reinterpret_cast without a nearby static_assert"
                            "(std::is_trivially_copyable_v<...>); route through "
                            "util/bytes.h memcpy helpers"))

    # config-checks (library .cpp only; headers hold declarations, and bench/
    # example drivers configure the library rather than validating for it)
    if path.suffix == ".cpp" and "src" in path.parts:
        has_config_param = any(CONFIG_PARAM_RE.search(l) for l in code_lines)
        uses_check = any(FLINT_CHECK_RE.search(l) for l in code_lines)
        if has_config_param and not uses_check and not file_suppressed("config-checks", text):
            findings.append(
                Finding(path, 1, "config-checks",
                        "consumes a *Config but never FLINT_CHECKs a "
                        "config-derived quantity"))

    # bench-artifact: every bench binary joins the regression pipeline.
    if path.name.startswith("bench_") and path.suffix == ".cpp":
        if "BenchArtifact" not in code_text and "write_run_artifact" not in code_text \
                and not file_suppressed("bench-artifact", text):
            findings.append(
                Finding(path, 1, "bench-artifact",
                        "bench binary never emits a run artifact; declare "
                        "bench::BenchArtifact(argc, argv, \"<name>\") in main "
                        "(see bench_helpers.h)"))

    return findings


def main(argv: list[str]) -> int:
    roots = [Path(p) for p in (argv[1:] or ["src"])]
    files: list[Path] = []
    for root in roots:
        if root.is_file():
            files.append(root)
        elif root.is_dir():
            files.extend(sorted(root.rglob("*.h")))
            files.extend(sorted(root.rglob("*.hpp")))
            files.extend(sorted(root.rglob("*.cpp")))
        else:
            print(f"flint_lint: no such path: {root}", file=sys.stderr)
            return 2

    findings: list[Finding] = []
    for f in files:
        findings.extend(lint_file(f))

    for finding in findings:
        print(finding)
    print(f"flint_lint: {len(files)} files, {len(findings)} finding(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
