#!/usr/bin/env python3
"""Gate the SIMD kernel win: every `scalars.kernels.*.speedup_vs_scalar` leaf
in a BENCH_micro_kernels artifact must meet the floor (default 2.0x).

Usage:
  tools/check_kernel_speedup.py BENCH_micro_kernels.json [--min 2.0]

The artifact's `kernels.simd_active` scalar records whether the sweep ran a
SIMD path; on a `--kernels=scalar` run every speedup is ~1.0 by construction,
so the gate passes with a note instead of failing. Absolute GB/s / GFLOP/s
leaves are machine-dependent and deliberately not checked here — CI diffs
them against bench/baselines/ with a loose prefix threshold via
flint_compare, while this script owns the hard >=Nx requirement.

Exit: 0 all kernels at or above the floor (or scalar-pinned run),
      1 at least one kernel below it (or no speedup leaves found),
      2 IO/usage problem.
"""

import argparse
import json
import sys

SUFFIX = ".speedup_vs_scalar"


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("artifact", help="BENCH_micro_kernels.json path")
    ap.add_argument("--min", type=float, default=2.0,
                    help="minimum required speedup (default: %(default)s)")
    args = ap.parse_args()

    try:
        with open(args.artifact, encoding="utf-8") as f:
            scalars = json.load(f).get("scalars", {})
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_kernel_speedup: cannot read {args.artifact}: {e}",
              file=sys.stderr)
        return 2

    if scalars.get("kernels.simd_active", 1.0) == 0.0:
        print("check_kernel_speedup: scalar-pinned run (kernels.simd_active=0), "
              "speedup gate skipped")
        return 0

    speedups = {k[len("kernels."):-len(SUFFIX)]: v for k, v in scalars.items()
                if k.startswith("kernels.") and k.endswith(SUFFIX)}
    if not speedups:
        print("check_kernel_speedup: no kernels.*.speedup_vs_scalar scalars "
              f"in {args.artifact}", file=sys.stderr)
        return 1

    failures = []
    for name in sorted(speedups):
        ok = speedups[name] >= args.min
        print(f"  {name:<22} {speedups[name]:6.2f}x  "
              f"{'ok' if ok else f'BELOW {args.min}x'}")
        if not ok:
            failures.append(name)

    if failures:
        print(f"check_kernel_speedup: {len(failures)}/{len(speedups)} kernels "
              f"below the {args.min}x floor: {', '.join(failures)}",
              file=sys.stderr)
        return 1
    print(f"check_kernel_speedup: {len(speedups)} kernels at >= {args.min}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
