// flint_executor — the executor side of the multi-process runtime
// (DESIGN.md §14). Connects to a leader, registers, and serves TaskLeases
// with the same compute_client_update the in-process paths run, until the
// leader sends Shutdown or the connection drops.
//
// Flags:
//   --connect-unix PATH     connect to a Unix-domain socket leader
//   --connect-tcp HOST      connect over TCP (requires --port)
//   --port N                TCP port
//   --name NAME             executor name reported at registration
//   --kernels SPEC          pin the kernel path (auto|scalar|avx2|neon);
//                           leaders forward their own spec so the fleet
//                           shares one set of numerics
//   --trace-out PATH        write this process's Chrome trace on exit
//   --metrics-out PATH      write this process's metrics JSONL on exit
//
// The process always runs with metrics enabled so its counters ship to the
// leader on each heartbeat (DESIGN.md §15); tracing turns on only with
// --trace-out. Telemetry is flushed on clean Shutdown, on CheckError, and —
// via atexit — on any other orderly exit, so tail events are never lost.
//
// The connect retries for a few seconds: the leader spawns executors right
// after binding, but a TCP listener in another process may not be accepting
// the instant the child starts.
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "flint/fl/remote_executor.h"
#include "flint/ml/kernels/kernels.h"
#include "flint/obs/telemetry.h"
#include "flint/rpc/executor_worker.h"
#include "flint/rpc/transport.h"
#include "flint/util/check.h"
#include "flint/util/logging.h"

namespace {

// atexit flush hook (satellite: clean shutdowns never lose tail events).
// Cleared once the normal path has exported, so a double export cannot
// happen; still set if exit() fires from an unexpected path.
flint::obs::Telemetry* g_atexit_telemetry = nullptr;

void flush_telemetry_at_exit() {
  if (g_atexit_telemetry != nullptr) {
    g_atexit_telemetry->export_all();
    g_atexit_telemetry = nullptr;
  }
}

std::unique_ptr<flint::rpc::Transport> connect_with_retry(const std::string& unix_path,
                                                          const std::string& tcp_host,
                                                          std::uint16_t tcp_port) {
  constexpr int kAttempts = 100;  // 100 * 100ms = 10s
  for (int attempt = 0;; ++attempt) {
    try {
      if (!unix_path.empty()) return flint::rpc::connect_unix(unix_path);
      return flint::rpc::connect_tcp(tcp_host, tcp_port);
    } catch (const flint::util::CheckError&) {
      if (attempt + 1 >= kAttempts) throw;
      ::usleep(100 * 1000);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string unix_path;
  std::string tcp_host;
  std::uint16_t tcp_port = 0;
  std::string name = "executor";
  std::string kernels_spec;
  std::string trace_out;
  std::string metrics_out;
  for (int i = 1; i < argc; ++i) {
    auto value = [&](const char* flag) -> const char* {
      if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc) return argv[++i];
      return nullptr;
    };
    if (const char* v = value("--connect-unix")) {
      unix_path = v;
    } else if (const char* v = value("--connect-tcp")) {
      tcp_host = v;
    } else if (const char* v = value("--port")) {
      tcp_port = static_cast<std::uint16_t>(std::strtoul(v, nullptr, 10));
    } else if (const char* v = value("--name")) {
      name = v;
    } else if (const char* v = value("--kernels")) {
      kernels_spec = v;
    } else if (const char* v = value("--trace-out")) {
      trace_out = v;
    } else if (const char* v = value("--metrics-out")) {
      metrics_out = v;
    } else {
      std::cerr << "flint_executor: unknown or incomplete flag " << argv[i] << "\n";
      return 2;
    }
  }
  if (unix_path.empty() && (tcp_host.empty() || tcp_port == 0)) {
    std::cerr << "flint_executor: need --connect-unix PATH or --connect-tcp HOST --port N\n";
    return 2;
  }
  if (!kernels_spec.empty()) {
    try {
      flint::ml::kernels::set_path(kernels_spec);
    } catch (const flint::util::CheckError& e) {
      std::cerr << "flint_executor: " << e.what() << "\n";
      return 2;
    }
  }

  // Metrics always on: the executor's registry ships to the leader on every
  // heartbeat. Tracing costs memory per span, so it gates on --trace-out.
  flint::obs::TelemetryConfig tc;
  tc.metrics_enabled = true;
  tc.tracing_enabled = !trace_out.empty();
  tc.trace_out = trace_out;
  tc.metrics_out = metrics_out;
  flint::obs::Telemetry telemetry(std::move(tc));
  flint::obs::ScopedTelemetry scoped(&telemetry);
  g_atexit_telemetry = &telemetry;
  std::atexit(flush_telemetry_at_exit);
  // Role upgraded to executor-<id> once the RegisterAck assigns an id.
  flint::util::Logger::instance().set_role("executor");

  try {
    auto transport = connect_with_retry(unix_path, tcp_host, tcp_port);
    flint::fl::LeaseTrainService service;
    flint::rpc::ExecutorWorker worker(*transport, service, name,
                                      /*ship_telemetry=*/true);
    worker.run();
    // Shutdown receipt (or leader hangup): flush here, then disarm the
    // atexit hook — it exists for exits that bypass this path.
    telemetry.export_all();
    g_atexit_telemetry = nullptr;
    std::cerr << "flint_executor " << name << ": served " << worker.leases_served()
              << " lease(s), exiting\n";
  } catch (const flint::util::CheckError& e) {
    telemetry.export_all();
    g_atexit_telemetry = nullptr;
    std::cerr << "flint_executor " << name << ": " << e.what() << "\n";
    return 1;
  }
  return 0;
}
