// flint_executor — the executor side of the multi-process runtime
// (DESIGN.md §14). Connects to a leader, registers, and serves TaskLeases
// with the same compute_client_update the in-process paths run, until the
// leader sends Shutdown or the connection drops.
//
// Flags:
//   --connect-unix PATH     connect to a Unix-domain socket leader
//   --connect-tcp HOST      connect over TCP (requires --port)
//   --port N                TCP port
//   --name NAME             executor name reported at registration
//
// The connect retries for a few seconds: the leader spawns executors right
// after binding, but a TCP listener in another process may not be accepting
// the instant the child starts.
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "flint/fl/remote_executor.h"
#include "flint/rpc/executor_worker.h"
#include "flint/rpc/transport.h"
#include "flint/util/check.h"

namespace {

std::unique_ptr<flint::rpc::Transport> connect_with_retry(const std::string& unix_path,
                                                          const std::string& tcp_host,
                                                          std::uint16_t tcp_port) {
  constexpr int kAttempts = 100;  // 100 * 100ms = 10s
  for (int attempt = 0;; ++attempt) {
    try {
      if (!unix_path.empty()) return flint::rpc::connect_unix(unix_path);
      return flint::rpc::connect_tcp(tcp_host, tcp_port);
    } catch (const flint::util::CheckError&) {
      if (attempt + 1 >= kAttempts) throw;
      ::usleep(100 * 1000);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string unix_path;
  std::string tcp_host;
  std::uint16_t tcp_port = 0;
  std::string name = "executor";
  for (int i = 1; i < argc; ++i) {
    auto value = [&](const char* flag) -> const char* {
      if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc) return argv[++i];
      return nullptr;
    };
    if (const char* v = value("--connect-unix")) {
      unix_path = v;
    } else if (const char* v = value("--connect-tcp")) {
      tcp_host = v;
    } else if (const char* v = value("--port")) {
      tcp_port = static_cast<std::uint16_t>(std::strtoul(v, nullptr, 10));
    } else if (const char* v = value("--name")) {
      name = v;
    } else {
      std::cerr << "flint_executor: unknown or incomplete flag " << argv[i] << "\n";
      return 2;
    }
  }
  if (unix_path.empty() && (tcp_host.empty() || tcp_port == 0)) {
    std::cerr << "flint_executor: need --connect-unix PATH or --connect-tcp HOST --port N\n";
    return 2;
  }

  try {
    auto transport = connect_with_retry(unix_path, tcp_host, tcp_port);
    flint::fl::LeaseTrainService service;
    flint::rpc::ExecutorWorker worker(*transport, service, name);
    worker.run();
    std::cerr << "flint_executor " << name << ": served " << worker.leases_served()
              << " lease(s), exiting\n";
  } catch (const flint::util::CheckError& e) {
    std::cerr << "flint_executor " << name << ": " << e.what() << "\n";
    return 1;
  }
  return 0;
}
