// Standalone ThreadSanitizer smoke: hammers CheckpointStore from several
// threads without pulling in gtest or the full library. scripts/tsan_smoke.sh
// compiles this TU plus src/flint/store/checkpoint.cpp directly with
// -fsanitize=thread, so the race check runs in seconds instead of requiring a
// full sanitizer tree. Registered as the `tsan_smoke` ctest entry.
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <thread>
#include <vector>

#include "flint/store/checkpoint.h"

int main() {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "flint_tsan_smoke";
  fs::remove_all(dir);

  constexpr int kThreads = 4;
  constexpr int kWritesPerThread = 16;
  std::atomic<int> failures{0};
  {
    flint::store::CheckpointStore store(dir.string());
    std::vector<std::thread> writers;
    writers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      writers.emplace_back([&store, &failures, t] {
        for (int i = 0; i < kWritesPerThread; ++i) {
          flint::store::SimCheckpoint ckpt;
          ckpt.virtual_time_s = static_cast<double>(i);
          ckpt.round = static_cast<std::uint64_t>(i) + 1;
          ckpt.model_parameters.assign(32, static_cast<float>(t));
          if (store.write(ckpt) < 1) failures.fetch_add(1);

          auto blob = flint::store::serialize_checkpoint(ckpt);
          auto back = flint::store::deserialize_checkpoint(blob);
          if (back.round != ckpt.round) failures.fetch_add(1);
        }
      });
    }
    for (auto& w : writers) w.join();

    if (store.checkpoint_count() !=
        static_cast<std::size_t>(kThreads * kWritesPerThread)) {
      std::fprintf(stderr, "tsan_smoke: expected %d checkpoints, found %zu\n",
                   kThreads * kWritesPerThread, store.checkpoint_count());
      failures.fetch_add(1);
    }
    if (!store.latest().has_value()) {
      std::fprintf(stderr, "tsan_smoke: latest() empty after writes\n");
      failures.fetch_add(1);
    }
  }
  fs::remove_all(dir);

  if (failures.load() != 0) {
    std::fprintf(stderr, "tsan_smoke: FAILED (%d)\n", failures.load());
    return 1;
  }
  std::puts("tsan_smoke: OK");
  return 0;
}
