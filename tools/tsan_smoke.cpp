// Standalone ThreadSanitizer smoke: hammers CheckpointStore, the obs
// MetricRegistry, and util::ThreadPool from several threads without pulling
// in gtest or the full library. scripts/tsan_smoke.sh compiles this TU plus
// the checkpoint, obs, and thread-pool TUs directly with -fsanitize=thread,
// so the race check runs in seconds instead of requiring a full sanitizer
// tree. Registered as the `tsan_smoke` ctest entry.
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <future>
#include <thread>
#include <vector>

#include "flint/obs/telemetry.h"
#include "flint/store/checkpoint.h"
#include "flint/util/thread_pool.h"

namespace {

// Mixed-operation hammer on one registry: concurrent lookup/creation of the
// same and distinct series, plus recording through the returned handles while
// another thread snapshots. Any unlocked map mutation or non-atomic metric
// update shows up as a TSan report here.
int hammer_registry() {
  constexpr int kThreads = 4;
  constexpr int kIters = 2000;
  flint::obs::MetricRegistry registry;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry, t] {
      for (int i = 0; i < kIters; ++i) {
        registry.counter("shared.counter").add(1);
        registry.counter("worker." + std::to_string(t) + ".counter").add(2);
        registry.gauge("shared.gauge").set(static_cast<double>(i));
        registry.histogram("shared.hist", 0.0, 100.0, 10).record(i % 100);
        if (i % 256 == 0) (void)registry.snapshot();
      }
    });
  }
  for (auto& w : workers) w.join();

  int failures = 0;
  const auto expected =
      static_cast<std::uint64_t>(kThreads) * static_cast<std::uint64_t>(kIters);
  if (registry.counter("shared.counter").value() != expected) {
    std::fprintf(stderr, "tsan_smoke: shared.counter lost updates\n");
    ++failures;
  }
  if (registry.series_count() != static_cast<std::size_t>(kThreads) + 3) {
    std::fprintf(stderr, "tsan_smoke: unexpected series count %zu\n",
                 registry.series_count());
    ++failures;
  }
  return failures;
}

// Pool hammer: concurrent submitters racing the workers, observer callbacks
// mutating shared counters, queue-depth/busy-seconds reads racing task
// execution, and a draining destructor with tasks still queued. Any missing
// lock in enqueue/worker_loop or non-atomic busy accounting trips TSan here.
int hammer_thread_pool() {
  constexpr int kSubmitters = 4;
  constexpr int kTasksPerSubmitter = 500;
  int failures = 0;

  std::atomic<std::uint64_t> observed_submissions{0};
  flint::util::ThreadPoolObserver observer;
  observer.on_task_submitted = [&observed_submissions] { observed_submissions.fetch_add(1); };
  observer.on_queue_depth = [](std::size_t) {};
  observer.on_busy_workers = [](std::size_t) {};
  observer.on_worker_busy = [](std::size_t, double) {};

  std::atomic<std::uint64_t> sum{0};
  {
    flint::util::ThreadPool pool(3, std::move(observer));
    std::vector<std::thread> submitters;
    submitters.reserve(kSubmitters);
    for (int t = 0; t < kSubmitters; ++t) {
      submitters.emplace_back([&pool, &sum, t] {
        std::vector<std::future<int>> futures;
        futures.reserve(kTasksPerSubmitter);
        for (int i = 0; i < kTasksPerSubmitter; ++i) {
          futures.push_back(pool.submit([t, i] {
            (void)flint::util::ThreadPool::worker_index();
            return t + i;
          }));
          if (i % 64 == 0) {
            (void)pool.queue_depth();
            (void)pool.busy_seconds(static_cast<std::size_t>(i) % 3);
          }
        }
        for (auto& f : futures) sum.fetch_add(static_cast<std::uint64_t>(f.get()));
      });
    }
    for (auto& s : submitters) s.join();
    // Leave a tail of unjoined tasks for the draining destructor.
    for (int i = 0; i < 100; ++i) pool.submit([&sum] { sum.fetch_add(1); });
  }

  std::uint64_t expected = 100;
  for (int t = 0; t < kSubmitters; ++t)
    for (int i = 0; i < kTasksPerSubmitter; ++i)
      expected += static_cast<std::uint64_t>(t + i);
  if (sum.load() != expected) {
    std::fprintf(stderr, "tsan_smoke: pool sum %llu != expected %llu\n",
                 static_cast<unsigned long long>(sum.load()),
                 static_cast<unsigned long long>(expected));
    ++failures;
  }
  if (observed_submissions.load() !=
      static_cast<std::uint64_t>(kSubmitters) * kTasksPerSubmitter + 100) {
    std::fprintf(stderr, "tsan_smoke: observer missed submissions\n");
    ++failures;
  }
  return failures;
}

}  // namespace

int main() {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "flint_tsan_smoke";
  fs::remove_all(dir);

  constexpr int kThreads = 4;
  constexpr int kWritesPerThread = 16;
  std::atomic<int> failures{0};
  failures.fetch_add(hammer_registry());
  failures.fetch_add(hammer_thread_pool());

  // Ambient telemetry so the checkpoint writers below also exercise the obs
  // cold recording path (checkpoint write latency/bytes) concurrently.
  flint::obs::TelemetryConfig telemetry_config;
  flint::obs::Telemetry telemetry(telemetry_config);
  flint::obs::ScopedTelemetry telemetry_scope(&telemetry);
  {
    flint::store::CheckpointStore store(dir.string());
    std::vector<std::thread> writers;
    writers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      writers.emplace_back([&store, &failures, t] {
        for (int i = 0; i < kWritesPerThread; ++i) {
          flint::store::SimCheckpoint ckpt;
          ckpt.virtual_time_s = static_cast<double>(i);
          ckpt.round = static_cast<std::uint64_t>(i) + 1;
          ckpt.model_parameters.assign(32, static_cast<float>(t));
          if (store.write(ckpt) < 1) failures.fetch_add(1);

          auto blob = flint::store::serialize_checkpoint(ckpt);
          auto back = flint::store::deserialize_checkpoint(blob);
          if (back.round != ckpt.round) failures.fetch_add(1);
        }
      });
    }
    for (auto& w : writers) w.join();

    if (store.checkpoint_count() !=
        static_cast<std::size_t>(kThreads * kWritesPerThread)) {
      std::fprintf(stderr, "tsan_smoke: expected %d checkpoints, found %zu\n",
                   kThreads * kWritesPerThread, store.checkpoint_count());
      failures.fetch_add(1);
    }
    if (!store.latest().has_value()) {
      std::fprintf(stderr, "tsan_smoke: latest() empty after writes\n");
      failures.fetch_add(1);
    }
  }
  fs::remove_all(dir);

  if (failures.load() != 0) {
    std::fprintf(stderr, "tsan_smoke: FAILED (%d)\n", failures.load());
    return 1;
  }
  std::puts("tsan_smoke: OK");
  return 0;
}
