file(REMOVE_RECURSE
  "CMakeFiles/decision_workflow_demo.dir/decision_workflow_demo.cpp.o"
  "CMakeFiles/decision_workflow_demo.dir/decision_workflow_demo.cpp.o.d"
  "decision_workflow_demo"
  "decision_workflow_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decision_workflow_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
