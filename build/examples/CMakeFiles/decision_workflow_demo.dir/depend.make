# Empty dependencies file for decision_workflow_demo.
# This may be replaced when dependencies are built.
