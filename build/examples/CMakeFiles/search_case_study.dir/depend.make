# Empty dependencies file for search_case_study.
# This may be replaced when dependencies are built.
