file(REMOVE_RECURSE
  "CMakeFiles/search_case_study.dir/search_case_study.cpp.o"
  "CMakeFiles/search_case_study.dir/search_case_study.cpp.o.d"
  "search_case_study"
  "search_case_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/search_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
