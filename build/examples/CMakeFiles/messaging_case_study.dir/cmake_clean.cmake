file(REMOVE_RECURSE
  "CMakeFiles/messaging_case_study.dir/messaging_case_study.cpp.o"
  "CMakeFiles/messaging_case_study.dir/messaging_case_study.cpp.o.d"
  "messaging_case_study"
  "messaging_case_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/messaging_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
