# Empty dependencies file for messaging_case_study.
# This may be replaced when dependencies are built.
