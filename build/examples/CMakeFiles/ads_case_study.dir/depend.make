# Empty dependencies file for ads_case_study.
# This may be replaced when dependencies are built.
