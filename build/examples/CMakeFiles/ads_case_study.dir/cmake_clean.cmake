file(REMOVE_RECURSE
  "CMakeFiles/ads_case_study.dir/ads_case_study.cpp.o"
  "CMakeFiles/ads_case_study.dir/ads_case_study.cpp.o.d"
  "ads_case_study"
  "ads_case_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ads_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
