# Empty dependencies file for fl_property_test.
# This may be replaced when dependencies are built.
