file(REMOVE_RECURSE
  "CMakeFiles/fl_property_test.dir/fl_property_test.cpp.o"
  "CMakeFiles/fl_property_test.dir/fl_property_test.cpp.o.d"
  "fl_property_test"
  "fl_property_test.pdb"
  "fl_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fl_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
