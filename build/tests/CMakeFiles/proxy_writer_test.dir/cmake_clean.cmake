file(REMOVE_RECURSE
  "CMakeFiles/proxy_writer_test.dir/proxy_writer_test.cpp.o"
  "CMakeFiles/proxy_writer_test.dir/proxy_writer_test.cpp.o.d"
  "proxy_writer_test"
  "proxy_writer_test.pdb"
  "proxy_writer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proxy_writer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
