# Empty compiler generated dependencies file for net_fairness_test.
# This may be replaced when dependencies are built.
