file(REMOVE_RECURSE
  "CMakeFiles/net_fairness_test.dir/net_fairness_test.cpp.o"
  "CMakeFiles/net_fairness_test.dir/net_fairness_test.cpp.o.d"
  "net_fairness_test"
  "net_fairness_test.pdb"
  "net_fairness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_fairness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
