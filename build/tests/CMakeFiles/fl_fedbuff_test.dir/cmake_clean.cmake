file(REMOVE_RECURSE
  "CMakeFiles/fl_fedbuff_test.dir/fl_fedbuff_test.cpp.o"
  "CMakeFiles/fl_fedbuff_test.dir/fl_fedbuff_test.cpp.o.d"
  "fl_fedbuff_test"
  "fl_fedbuff_test.pdb"
  "fl_fedbuff_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fl_fedbuff_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
