# Empty dependencies file for fl_fedbuff_test.
# This may be replaced when dependencies are built.
