
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ml_model_test.cpp" "tests/CMakeFiles/ml_model_test.dir/ml_model_test.cpp.o" "gcc" "tests/CMakeFiles/ml_model_test.dir/ml_model_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/flint_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flint_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flint_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flint_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flint_device.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flint_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flint_store.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flint_privacy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flint_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flint_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flint_feature.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flint_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
