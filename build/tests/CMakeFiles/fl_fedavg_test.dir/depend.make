# Empty dependencies file for fl_fedavg_test.
# This may be replaced when dependencies are built.
