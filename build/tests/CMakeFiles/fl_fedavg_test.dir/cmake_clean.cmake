file(REMOVE_RECURSE
  "CMakeFiles/fl_fedavg_test.dir/fl_fedavg_test.cpp.o"
  "CMakeFiles/fl_fedavg_test.dir/fl_fedavg_test.cpp.o.d"
  "fl_fedavg_test"
  "fl_fedavg_test.pdb"
  "fl_fedavg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fl_fedavg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
