# Empty dependencies file for synthetic_tasks_test.
# This may be replaced when dependencies are built.
