file(REMOVE_RECURSE
  "CMakeFiles/synthetic_tasks_test.dir/synthetic_tasks_test.cpp.o"
  "CMakeFiles/synthetic_tasks_test.dir/synthetic_tasks_test.cpp.o.d"
  "synthetic_tasks_test"
  "synthetic_tasks_test.pdb"
  "synthetic_tasks_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synthetic_tasks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
