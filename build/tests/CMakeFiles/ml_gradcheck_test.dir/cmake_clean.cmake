file(REMOVE_RECURSE
  "CMakeFiles/ml_gradcheck_test.dir/ml_gradcheck_test.cpp.o"
  "CMakeFiles/ml_gradcheck_test.dir/ml_gradcheck_test.cpp.o.d"
  "ml_gradcheck_test"
  "ml_gradcheck_test.pdb"
  "ml_gradcheck_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_gradcheck_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
