# Empty compiler generated dependencies file for ml_gradcheck_test.
# This may be replaced when dependencies are built.
