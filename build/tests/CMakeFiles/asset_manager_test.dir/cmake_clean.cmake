file(REMOVE_RECURSE
  "CMakeFiles/asset_manager_test.dir/asset_manager_test.cpp.o"
  "CMakeFiles/asset_manager_test.dir/asset_manager_test.cpp.o.d"
  "asset_manager_test"
  "asset_manager_test.pdb"
  "asset_manager_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asset_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
