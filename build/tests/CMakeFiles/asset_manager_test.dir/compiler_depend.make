# Empty compiler generated dependencies file for asset_manager_test.
# This may be replaced when dependencies are built.
