# Empty dependencies file for fl_extensions_test.
# This may be replaced when dependencies are built.
