file(REMOVE_RECURSE
  "CMakeFiles/device_store_test.dir/device_store_test.cpp.o"
  "CMakeFiles/device_store_test.dir/device_store_test.cpp.o.d"
  "device_store_test"
  "device_store_test.pdb"
  "device_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
