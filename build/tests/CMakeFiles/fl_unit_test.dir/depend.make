# Empty dependencies file for fl_unit_test.
# This may be replaced when dependencies are built.
