file(REMOVE_RECURSE
  "CMakeFiles/fl_unit_test.dir/fl_unit_test.cpp.o"
  "CMakeFiles/fl_unit_test.dir/fl_unit_test.cpp.o.d"
  "fl_unit_test"
  "fl_unit_test.pdb"
  "fl_unit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fl_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
