# Empty compiler generated dependencies file for serialize_session_io_test.
# This may be replaced when dependencies are built.
