file(REMOVE_RECURSE
  "CMakeFiles/serialize_session_io_test.dir/serialize_session_io_test.cpp.o"
  "CMakeFiles/serialize_session_io_test.dir/serialize_session_io_test.cpp.o.d"
  "serialize_session_io_test"
  "serialize_session_io_test.pdb"
  "serialize_session_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serialize_session_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
