# Empty compiler generated dependencies file for bench_fig10_lr_schedules.
# This may be replaced when dependencies are built.
