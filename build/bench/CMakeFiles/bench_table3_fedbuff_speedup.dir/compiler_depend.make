# Empty compiler generated dependencies file for bench_table3_fedbuff_speedup.
# This may be replaced when dependencies are built.
