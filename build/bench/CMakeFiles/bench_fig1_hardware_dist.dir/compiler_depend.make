# Empty compiler generated dependencies file for bench_fig1_hardware_dist.
# This may be replaced when dependencies are built.
