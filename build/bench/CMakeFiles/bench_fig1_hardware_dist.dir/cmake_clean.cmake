file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_hardware_dist.dir/bench_fig1_hardware_dist.cpp.o"
  "CMakeFiles/bench_fig1_hardware_dist.dir/bench_fig1_hardware_dist.cpp.o.d"
  "bench_fig1_hardware_dist"
  "bench_fig1_hardware_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_hardware_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
