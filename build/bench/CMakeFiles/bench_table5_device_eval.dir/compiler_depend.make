# Empty compiler generated dependencies file for bench_table5_device_eval.
# This may be replaced when dependencies are built.
