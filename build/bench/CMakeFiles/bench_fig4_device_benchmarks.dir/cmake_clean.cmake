file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_device_benchmarks.dir/bench_fig4_device_benchmarks.cpp.o"
  "CMakeFiles/bench_fig4_device_benchmarks.dir/bench_fig4_device_benchmarks.cpp.o.d"
  "bench_fig4_device_benchmarks"
  "bench_fig4_device_benchmarks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_device_benchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
