# Empty dependencies file for bench_fig4_device_benchmarks.
# This may be replaced when dependencies are built.
