# Empty compiler generated dependencies file for bench_table4_case_studies.
# This may be replaced when dependencies are built.
