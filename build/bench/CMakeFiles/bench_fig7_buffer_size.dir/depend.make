# Empty dependencies file for bench_fig7_buffer_size.
# This may be replaced when dependencies are built.
