file(REMOVE_RECURSE
  "CMakeFiles/bench_privacy_tradeoffs.dir/bench_privacy_tradeoffs.cpp.o"
  "CMakeFiles/bench_privacy_tradeoffs.dir/bench_privacy_tradeoffs.cpp.o.d"
  "bench_privacy_tradeoffs"
  "bench_privacy_tradeoffs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_privacy_tradeoffs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
