# Empty compiler generated dependencies file for bench_privacy_tradeoffs.
# This may be replaced when dependencies are built.
