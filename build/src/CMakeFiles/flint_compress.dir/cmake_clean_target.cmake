file(REMOVE_RECURSE
  "libflint_compress.a"
)
