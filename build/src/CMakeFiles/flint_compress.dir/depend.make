# Empty dependencies file for flint_compress.
# This may be replaced when dependencies are built.
