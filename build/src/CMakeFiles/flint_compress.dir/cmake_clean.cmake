file(REMOVE_RECURSE
  "CMakeFiles/flint_compress.dir/flint/compress/quantize.cpp.o"
  "CMakeFiles/flint_compress.dir/flint/compress/quantize.cpp.o.d"
  "libflint_compress.a"
  "libflint_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flint_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
