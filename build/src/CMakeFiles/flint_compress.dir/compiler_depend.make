# Empty compiler generated dependencies file for flint_compress.
# This may be replaced when dependencies are built.
