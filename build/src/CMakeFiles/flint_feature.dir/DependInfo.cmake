
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flint/feature/asset_manager.cpp" "src/CMakeFiles/flint_feature.dir/flint/feature/asset_manager.cpp.o" "gcc" "src/CMakeFiles/flint_feature.dir/flint/feature/asset_manager.cpp.o.d"
  "/root/repo/src/flint/feature/feature_cache.cpp" "src/CMakeFiles/flint_feature.dir/flint/feature/feature_cache.cpp.o" "gcc" "src/CMakeFiles/flint_feature.dir/flint/feature/feature_cache.cpp.o.d"
  "/root/repo/src/flint/feature/feature_catalog.cpp" "src/CMakeFiles/flint_feature.dir/flint/feature/feature_catalog.cpp.o" "gcc" "src/CMakeFiles/flint_feature.dir/flint/feature/feature_catalog.cpp.o.d"
  "/root/repo/src/flint/feature/feature_hashing.cpp" "src/CMakeFiles/flint_feature.dir/flint/feature/feature_hashing.cpp.o" "gcc" "src/CMakeFiles/flint_feature.dir/flint/feature/feature_hashing.cpp.o.d"
  "/root/repo/src/flint/feature/transform.cpp" "src/CMakeFiles/flint_feature.dir/flint/feature/transform.cpp.o" "gcc" "src/CMakeFiles/flint_feature.dir/flint/feature/transform.cpp.o.d"
  "/root/repo/src/flint/feature/vocab.cpp" "src/CMakeFiles/flint_feature.dir/flint/feature/vocab.cpp.o" "gcc" "src/CMakeFiles/flint_feature.dir/flint/feature/vocab.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/flint_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
