# Empty dependencies file for flint_feature.
# This may be replaced when dependencies are built.
