file(REMOVE_RECURSE
  "CMakeFiles/flint_feature.dir/flint/feature/asset_manager.cpp.o"
  "CMakeFiles/flint_feature.dir/flint/feature/asset_manager.cpp.o.d"
  "CMakeFiles/flint_feature.dir/flint/feature/feature_cache.cpp.o"
  "CMakeFiles/flint_feature.dir/flint/feature/feature_cache.cpp.o.d"
  "CMakeFiles/flint_feature.dir/flint/feature/feature_catalog.cpp.o"
  "CMakeFiles/flint_feature.dir/flint/feature/feature_catalog.cpp.o.d"
  "CMakeFiles/flint_feature.dir/flint/feature/feature_hashing.cpp.o"
  "CMakeFiles/flint_feature.dir/flint/feature/feature_hashing.cpp.o.d"
  "CMakeFiles/flint_feature.dir/flint/feature/transform.cpp.o"
  "CMakeFiles/flint_feature.dir/flint/feature/transform.cpp.o.d"
  "CMakeFiles/flint_feature.dir/flint/feature/vocab.cpp.o"
  "CMakeFiles/flint_feature.dir/flint/feature/vocab.cpp.o.d"
  "libflint_feature.a"
  "libflint_feature.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flint_feature.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
