file(REMOVE_RECURSE
  "libflint_feature.a"
)
