file(REMOVE_RECURSE
  "CMakeFiles/flint_core.dir/flint/core/decision_workflow.cpp.o"
  "CMakeFiles/flint_core.dir/flint/core/decision_workflow.cpp.o.d"
  "CMakeFiles/flint_core.dir/flint/core/experiment.cpp.o"
  "CMakeFiles/flint_core.dir/flint/core/experiment.cpp.o.d"
  "CMakeFiles/flint_core.dir/flint/core/fairness.cpp.o"
  "CMakeFiles/flint_core.dir/flint/core/fairness.cpp.o.d"
  "CMakeFiles/flint_core.dir/flint/core/forecasting.cpp.o"
  "CMakeFiles/flint_core.dir/flint/core/forecasting.cpp.o.d"
  "CMakeFiles/flint_core.dir/flint/core/platform.cpp.o"
  "CMakeFiles/flint_core.dir/flint/core/platform.cpp.o.d"
  "CMakeFiles/flint_core.dir/flint/core/report.cpp.o"
  "CMakeFiles/flint_core.dir/flint/core/report.cpp.o.d"
  "libflint_core.a"
  "libflint_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flint_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
