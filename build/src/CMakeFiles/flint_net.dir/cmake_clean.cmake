file(REMOVE_RECURSE
  "CMakeFiles/flint_net.dir/flint/net/bandwidth_model.cpp.o"
  "CMakeFiles/flint_net.dir/flint/net/bandwidth_model.cpp.o.d"
  "libflint_net.a"
  "libflint_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flint_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
