# Empty compiler generated dependencies file for flint_net.
# This may be replaced when dependencies are built.
