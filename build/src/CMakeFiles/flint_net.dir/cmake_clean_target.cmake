file(REMOVE_RECURSE
  "libflint_net.a"
)
