file(REMOVE_RECURSE
  "libflint_privacy.a"
)
