# Empty dependencies file for flint_privacy.
# This may be replaced when dependencies are built.
