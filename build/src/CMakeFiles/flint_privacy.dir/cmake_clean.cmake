file(REMOVE_RECURSE
  "CMakeFiles/flint_privacy.dir/flint/privacy/dp.cpp.o"
  "CMakeFiles/flint_privacy.dir/flint/privacy/dp.cpp.o.d"
  "CMakeFiles/flint_privacy.dir/flint/privacy/secure_agg.cpp.o"
  "CMakeFiles/flint_privacy.dir/flint/privacy/secure_agg.cpp.o.d"
  "libflint_privacy.a"
  "libflint_privacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flint_privacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
