# Empty dependencies file for flint_ml.
# This may be replaced when dependencies are built.
