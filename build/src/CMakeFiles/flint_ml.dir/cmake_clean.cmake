file(REMOVE_RECURSE
  "CMakeFiles/flint_ml.dir/flint/ml/layers.cpp.o"
  "CMakeFiles/flint_ml.dir/flint/ml/layers.cpp.o.d"
  "CMakeFiles/flint_ml.dir/flint/ml/loss.cpp.o"
  "CMakeFiles/flint_ml.dir/flint/ml/loss.cpp.o.d"
  "CMakeFiles/flint_ml.dir/flint/ml/metrics.cpp.o"
  "CMakeFiles/flint_ml.dir/flint/ml/metrics.cpp.o.d"
  "CMakeFiles/flint_ml.dir/flint/ml/model.cpp.o"
  "CMakeFiles/flint_ml.dir/flint/ml/model.cpp.o.d"
  "CMakeFiles/flint_ml.dir/flint/ml/model_zoo.cpp.o"
  "CMakeFiles/flint_ml.dir/flint/ml/model_zoo.cpp.o.d"
  "CMakeFiles/flint_ml.dir/flint/ml/optimizer.cpp.o"
  "CMakeFiles/flint_ml.dir/flint/ml/optimizer.cpp.o.d"
  "CMakeFiles/flint_ml.dir/flint/ml/serialize.cpp.o"
  "CMakeFiles/flint_ml.dir/flint/ml/serialize.cpp.o.d"
  "CMakeFiles/flint_ml.dir/flint/ml/tensor.cpp.o"
  "CMakeFiles/flint_ml.dir/flint/ml/tensor.cpp.o.d"
  "libflint_ml.a"
  "libflint_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flint_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
