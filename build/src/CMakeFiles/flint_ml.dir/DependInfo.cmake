
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flint/ml/layers.cpp" "src/CMakeFiles/flint_ml.dir/flint/ml/layers.cpp.o" "gcc" "src/CMakeFiles/flint_ml.dir/flint/ml/layers.cpp.o.d"
  "/root/repo/src/flint/ml/loss.cpp" "src/CMakeFiles/flint_ml.dir/flint/ml/loss.cpp.o" "gcc" "src/CMakeFiles/flint_ml.dir/flint/ml/loss.cpp.o.d"
  "/root/repo/src/flint/ml/metrics.cpp" "src/CMakeFiles/flint_ml.dir/flint/ml/metrics.cpp.o" "gcc" "src/CMakeFiles/flint_ml.dir/flint/ml/metrics.cpp.o.d"
  "/root/repo/src/flint/ml/model.cpp" "src/CMakeFiles/flint_ml.dir/flint/ml/model.cpp.o" "gcc" "src/CMakeFiles/flint_ml.dir/flint/ml/model.cpp.o.d"
  "/root/repo/src/flint/ml/model_zoo.cpp" "src/CMakeFiles/flint_ml.dir/flint/ml/model_zoo.cpp.o" "gcc" "src/CMakeFiles/flint_ml.dir/flint/ml/model_zoo.cpp.o.d"
  "/root/repo/src/flint/ml/optimizer.cpp" "src/CMakeFiles/flint_ml.dir/flint/ml/optimizer.cpp.o" "gcc" "src/CMakeFiles/flint_ml.dir/flint/ml/optimizer.cpp.o.d"
  "/root/repo/src/flint/ml/serialize.cpp" "src/CMakeFiles/flint_ml.dir/flint/ml/serialize.cpp.o" "gcc" "src/CMakeFiles/flint_ml.dir/flint/ml/serialize.cpp.o.d"
  "/root/repo/src/flint/ml/tensor.cpp" "src/CMakeFiles/flint_ml.dir/flint/ml/tensor.cpp.o" "gcc" "src/CMakeFiles/flint_ml.dir/flint/ml/tensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/flint_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
