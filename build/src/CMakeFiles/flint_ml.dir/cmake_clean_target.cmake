file(REMOVE_RECURSE
  "libflint_ml.a"
)
