
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flint/fl/client_selection.cpp" "src/CMakeFiles/flint_fl.dir/flint/fl/client_selection.cpp.o" "gcc" "src/CMakeFiles/flint_fl.dir/flint/fl/client_selection.cpp.o.d"
  "/root/repo/src/flint/fl/fedavg.cpp" "src/CMakeFiles/flint_fl.dir/flint/fl/fedavg.cpp.o" "gcc" "src/CMakeFiles/flint_fl.dir/flint/fl/fedavg.cpp.o.d"
  "/root/repo/src/flint/fl/fedbuff.cpp" "src/CMakeFiles/flint_fl.dir/flint/fl/fedbuff.cpp.o" "gcc" "src/CMakeFiles/flint_fl.dir/flint/fl/fedbuff.cpp.o.d"
  "/root/repo/src/flint/fl/lr_schedule.cpp" "src/CMakeFiles/flint_fl.dir/flint/fl/lr_schedule.cpp.o" "gcc" "src/CMakeFiles/flint_fl.dir/flint/fl/lr_schedule.cpp.o.d"
  "/root/repo/src/flint/fl/run_common.cpp" "src/CMakeFiles/flint_fl.dir/flint/fl/run_common.cpp.o" "gcc" "src/CMakeFiles/flint_fl.dir/flint/fl/run_common.cpp.o.d"
  "/root/repo/src/flint/fl/task_duration.cpp" "src/CMakeFiles/flint_fl.dir/flint/fl/task_duration.cpp.o" "gcc" "src/CMakeFiles/flint_fl.dir/flint/fl/task_duration.cpp.o.d"
  "/root/repo/src/flint/fl/trainer.cpp" "src/CMakeFiles/flint_fl.dir/flint/fl/trainer.cpp.o" "gcc" "src/CMakeFiles/flint_fl.dir/flint/fl/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/flint_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flint_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flint_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flint_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flint_privacy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flint_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flint_device.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flint_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flint_store.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
