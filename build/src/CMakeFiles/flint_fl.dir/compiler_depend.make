# Empty compiler generated dependencies file for flint_fl.
# This may be replaced when dependencies are built.
