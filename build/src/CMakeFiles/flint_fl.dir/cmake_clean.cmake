file(REMOVE_RECURSE
  "CMakeFiles/flint_fl.dir/flint/fl/client_selection.cpp.o"
  "CMakeFiles/flint_fl.dir/flint/fl/client_selection.cpp.o.d"
  "CMakeFiles/flint_fl.dir/flint/fl/fedavg.cpp.o"
  "CMakeFiles/flint_fl.dir/flint/fl/fedavg.cpp.o.d"
  "CMakeFiles/flint_fl.dir/flint/fl/fedbuff.cpp.o"
  "CMakeFiles/flint_fl.dir/flint/fl/fedbuff.cpp.o.d"
  "CMakeFiles/flint_fl.dir/flint/fl/lr_schedule.cpp.o"
  "CMakeFiles/flint_fl.dir/flint/fl/lr_schedule.cpp.o.d"
  "CMakeFiles/flint_fl.dir/flint/fl/run_common.cpp.o"
  "CMakeFiles/flint_fl.dir/flint/fl/run_common.cpp.o.d"
  "CMakeFiles/flint_fl.dir/flint/fl/task_duration.cpp.o"
  "CMakeFiles/flint_fl.dir/flint/fl/task_duration.cpp.o.d"
  "CMakeFiles/flint_fl.dir/flint/fl/trainer.cpp.o"
  "CMakeFiles/flint_fl.dir/flint/fl/trainer.cpp.o.d"
  "libflint_fl.a"
  "libflint_fl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flint_fl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
