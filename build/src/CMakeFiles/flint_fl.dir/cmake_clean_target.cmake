file(REMOVE_RECURSE
  "libflint_fl.a"
)
