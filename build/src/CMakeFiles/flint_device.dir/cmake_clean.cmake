file(REMOVE_RECURSE
  "CMakeFiles/flint_device.dir/flint/device/attribute_profile.cpp.o"
  "CMakeFiles/flint_device.dir/flint/device/attribute_profile.cpp.o.d"
  "CMakeFiles/flint_device.dir/flint/device/availability.cpp.o"
  "CMakeFiles/flint_device.dir/flint/device/availability.cpp.o.d"
  "CMakeFiles/flint_device.dir/flint/device/benchmark_harness.cpp.o"
  "CMakeFiles/flint_device.dir/flint/device/benchmark_harness.cpp.o.d"
  "CMakeFiles/flint_device.dir/flint/device/device_catalog.cpp.o"
  "CMakeFiles/flint_device.dir/flint/device/device_catalog.cpp.o.d"
  "CMakeFiles/flint_device.dir/flint/device/device_store.cpp.o"
  "CMakeFiles/flint_device.dir/flint/device/device_store.cpp.o.d"
  "CMakeFiles/flint_device.dir/flint/device/hardware_distribution.cpp.o"
  "CMakeFiles/flint_device.dir/flint/device/hardware_distribution.cpp.o.d"
  "CMakeFiles/flint_device.dir/flint/device/session_generator.cpp.o"
  "CMakeFiles/flint_device.dir/flint/device/session_generator.cpp.o.d"
  "CMakeFiles/flint_device.dir/flint/device/session_io.cpp.o"
  "CMakeFiles/flint_device.dir/flint/device/session_io.cpp.o.d"
  "libflint_device.a"
  "libflint_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flint_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
