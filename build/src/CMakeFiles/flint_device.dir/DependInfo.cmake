
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flint/device/attribute_profile.cpp" "src/CMakeFiles/flint_device.dir/flint/device/attribute_profile.cpp.o" "gcc" "src/CMakeFiles/flint_device.dir/flint/device/attribute_profile.cpp.o.d"
  "/root/repo/src/flint/device/availability.cpp" "src/CMakeFiles/flint_device.dir/flint/device/availability.cpp.o" "gcc" "src/CMakeFiles/flint_device.dir/flint/device/availability.cpp.o.d"
  "/root/repo/src/flint/device/benchmark_harness.cpp" "src/CMakeFiles/flint_device.dir/flint/device/benchmark_harness.cpp.o" "gcc" "src/CMakeFiles/flint_device.dir/flint/device/benchmark_harness.cpp.o.d"
  "/root/repo/src/flint/device/device_catalog.cpp" "src/CMakeFiles/flint_device.dir/flint/device/device_catalog.cpp.o" "gcc" "src/CMakeFiles/flint_device.dir/flint/device/device_catalog.cpp.o.d"
  "/root/repo/src/flint/device/device_store.cpp" "src/CMakeFiles/flint_device.dir/flint/device/device_store.cpp.o" "gcc" "src/CMakeFiles/flint_device.dir/flint/device/device_store.cpp.o.d"
  "/root/repo/src/flint/device/hardware_distribution.cpp" "src/CMakeFiles/flint_device.dir/flint/device/hardware_distribution.cpp.o" "gcc" "src/CMakeFiles/flint_device.dir/flint/device/hardware_distribution.cpp.o.d"
  "/root/repo/src/flint/device/session_generator.cpp" "src/CMakeFiles/flint_device.dir/flint/device/session_generator.cpp.o" "gcc" "src/CMakeFiles/flint_device.dir/flint/device/session_generator.cpp.o.d"
  "/root/repo/src/flint/device/session_io.cpp" "src/CMakeFiles/flint_device.dir/flint/device/session_io.cpp.o" "gcc" "src/CMakeFiles/flint_device.dir/flint/device/session_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/flint_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flint_ml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
