file(REMOVE_RECURSE
  "libflint_device.a"
)
