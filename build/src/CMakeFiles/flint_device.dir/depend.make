# Empty dependencies file for flint_device.
# This may be replaced when dependencies are built.
