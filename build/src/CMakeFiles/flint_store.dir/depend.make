# Empty dependencies file for flint_store.
# This may be replaced when dependencies are built.
