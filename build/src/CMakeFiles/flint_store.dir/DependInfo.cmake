
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flint/store/checkpoint.cpp" "src/CMakeFiles/flint_store.dir/flint/store/checkpoint.cpp.o" "gcc" "src/CMakeFiles/flint_store.dir/flint/store/checkpoint.cpp.o.d"
  "/root/repo/src/flint/store/model_store.cpp" "src/CMakeFiles/flint_store.dir/flint/store/model_store.cpp.o" "gcc" "src/CMakeFiles/flint_store.dir/flint/store/model_store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/flint_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flint_ml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
