file(REMOVE_RECURSE
  "libflint_store.a"
)
