# Empty compiler generated dependencies file for flint_store.
# This may be replaced when dependencies are built.
