file(REMOVE_RECURSE
  "CMakeFiles/flint_store.dir/flint/store/checkpoint.cpp.o"
  "CMakeFiles/flint_store.dir/flint/store/checkpoint.cpp.o.d"
  "CMakeFiles/flint_store.dir/flint/store/model_store.cpp.o"
  "CMakeFiles/flint_store.dir/flint/store/model_store.cpp.o.d"
  "libflint_store.a"
  "libflint_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flint_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
