# Empty compiler generated dependencies file for flint_data.
# This may be replaced when dependencies are built.
