
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flint/data/client_dataset.cpp" "src/CMakeFiles/flint_data.dir/flint/data/client_dataset.cpp.o" "gcc" "src/CMakeFiles/flint_data.dir/flint/data/client_dataset.cpp.o.d"
  "/root/repo/src/flint/data/dataset_stats.cpp" "src/CMakeFiles/flint_data.dir/flint/data/dataset_stats.cpp.o" "gcc" "src/CMakeFiles/flint_data.dir/flint/data/dataset_stats.cpp.o.d"
  "/root/repo/src/flint/data/partitioner.cpp" "src/CMakeFiles/flint_data.dir/flint/data/partitioner.cpp.o" "gcc" "src/CMakeFiles/flint_data.dir/flint/data/partitioner.cpp.o.d"
  "/root/repo/src/flint/data/proxy_generator.cpp" "src/CMakeFiles/flint_data.dir/flint/data/proxy_generator.cpp.o" "gcc" "src/CMakeFiles/flint_data.dir/flint/data/proxy_generator.cpp.o.d"
  "/root/repo/src/flint/data/proxy_writer.cpp" "src/CMakeFiles/flint_data.dir/flint/data/proxy_writer.cpp.o" "gcc" "src/CMakeFiles/flint_data.dir/flint/data/proxy_writer.cpp.o.d"
  "/root/repo/src/flint/data/synthetic_tasks.cpp" "src/CMakeFiles/flint_data.dir/flint/data/synthetic_tasks.cpp.o" "gcc" "src/CMakeFiles/flint_data.dir/flint/data/synthetic_tasks.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/flint_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flint_ml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
