file(REMOVE_RECURSE
  "libflint_data.a"
)
